// The paper's §6.1 case study end to end: find the FQ-CoDel starvation
// bug in the buggy fair-queuing scheduler of Figure 4, replay the
// discovered trace through the concrete interpreter, synthesize the
// general traffic pattern behind it (the FPerf-style back-end), and show
// the RFC 8290 fix eliminates the bug.
//
//	go run ./examples/fq-starvation
package main

import (
	"fmt"
	"log"

	"buffy/internal/core"
	"buffy/internal/qm"
)

func main() {
	const T, N = 6, 3
	analysis := core.Analysis{T: T, Params: map[string]int64{"N": N}}

	// --- 1. The buggy scheduler: can queue 1, with packets waiting in
	// every step, be served at most once over the whole horizon?
	buggy, err := core.Parse(qm.FQBuggyQuerySrc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := buggy.FindWitness(analysis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buggy scheduler, T=%d: %v (%v)\n", T, res.Status, res.Duration.Round(1000000))
	if res.Trace == nil {
		log.Fatal("expected a starvation witness")
	}
	fmt.Print(res.Trace)
	fmt.Printf("queue 1 served %d time(s) despite constant demand\n\n",
		res.Trace.Vars[T-1]["cdeq1"])

	// --- 2. Independent confirmation: replay the trace concretely.
	m, diffs, err := buggy.Replay(analysis, res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	if len(diffs) > 0 {
		log.Fatalf("interpreter disagrees with solver: %v", diffs)
	}
	fmt.Printf("replay: interpreter reproduces the trace exactly (%d asserts held — witness semantics)\n\n",
		T-len(m.Failures()))

	// --- 3. Generalize: what traffic pattern causes this? This is the
	// RFC's "transmits at just the right rate" flow, discovered
	// automatically.
	synth, err := buggy.SynthesizeWorkload(core.Analysis{T: 5, Params: map[string]int64{"N": 2}})
	if err != nil {
		log.Fatal(err)
	}
	if synth.Found {
		fmt.Printf("synthesized workload (T=5, N=2):\n  %v\n  (%d solver checks, %v)\n\n",
			synth.Workload, synth.Checks, synth.Duration.Round(1000000))
	}

	// --- 4. The RFC 8290 fix: same query, no witness.
	fixed, err := core.Parse(qm.FQFixedQuerySrc)
	if err != nil {
		log.Fatal(err)
	}
	fres, err := fixed.FindWitness(analysis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed scheduler, T=%d: %v (%v) — the deactivation change removes the bug\n",
		T, fres.Status, fres.Duration.Round(1000000))
}
