// Trace walkthrough: run one deliberately slow analysis — the §6.1
// FQ-CoDel starvation witness at T=6 — with span tracing enabled, print
// the recorded span tree, and read the stage breakdown off it.
//
// The same tree is what `buffyc -trace` prints, what buffy-serve returns
// from GET /v1/jobs/{id}/trace, and what feeds the per-stage Prometheus
// histograms (buffy_stage_duration_seconds{stage}); `buffy-bench -exp
// stages` aggregates it across the whole corpus. See "Observability" in
// DESIGN.md for the span model.
//
//	go run ./examples/trace-walkthrough
package main

import (
	"context"
	"fmt"
	"log"

	"buffy/internal/core"
	"buffy/internal/qm"
	"buffy/internal/telemetry"
)

func main() {
	// 1. Attach a trace to the context; every pipeline layer below —
	// parser, IR compiler, bit-blaster, CDCL search — records spans into
	// it. Without a trace on the context the same code paths cost one nil
	// check per span site.
	tr := telemetry.NewTraceN("fq-starvation", 4096)
	ctx := telemetry.WithTrace(context.Background(), tr)

	_, psp := telemetry.StartSpan(ctx, "parse")
	prog, err := core.Parse(qm.FQBuggyQuerySrc)
	psp.End()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The slow query: find the starvation witness at horizon T=6 with
	// N=3 flows. Encoding dominates at this size (~100k clauses), search
	// is a few hundred conflicts.
	res, err := prog.FindWitnessContext(ctx, core.Analysis{
		T: 6, Params: map[string]int64{"N": 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %v in %.3fs (%d conflicts)\n\n",
		prog.Name(), res.Status, res.Duration.Seconds(), res.SatStats.Conflicts)

	// 3. The span tree. Indentation is parentage; attributes carry the
	// stage-specific facts (clauses/vars for bitblast, conflicts and the
	// result for search, one span per CDCL restart).
	fmt.Print(tr.Snapshot().Render())

	// 4. The same trace, reduced to a stage breakdown: Durations() sums
	// ended spans by name — this is exactly the fold buffy-serve applies
	// into its buffy_stage_duration_seconds histograms.
	durs := tr.Durations()
	fmt.Println("\nstage breakdown:")
	for _, stage := range []string{"parse", "compile", "bitblast", "search"} {
		fmt.Printf("  %-10s %8.1fms\n", stage, float64(durs[stage].Microseconds())/1000)
	}
	encodeOther := durs["encode"] - durs["compile"] - durs["bitblast"]
	fmt.Printf("  %-10s %8.1fms  (encode minus compile+bitblast)\n",
		"encode-misc", float64(encodeOther.Microseconds())/1000)
}
