// Quickstart: model a tiny rate limiter in Buffy, simulate it, verify a
// property on all traffic, and extract a counterexample for a property
// that does not hold.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"buffy/internal/core"
	"buffy/internal/workload"
)

// A one-packet-per-step server: every step it forwards at most one packet
// from its input to its output. The monitor tracks total departures; the
// queries say (1) departures never exceed the elapsed steps (true) and
// (2) the queue never exceeds 2 packets (false for bursty input).
const src = `
limiter(buffer in0, buffer out0) {
  monitor int departed;
  local int n;
  n = backlog-p(in0);
  if (n > 1) { n = 1; }
  move-p(in0, out0, n);
  departed = departed + n;
  assert(departed <= t + 1);
  assert(backlog-p(in0) <= 2);
}
`

func main() {
	prog, err := core.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed program %q (inputs and queries included)\n\n", prog.Name())

	// --- Concrete simulation under a bursty workload.
	plan := workload.OnOff(6, []string{"in0"}, 2, 2) // bursts of 2 every 2 steps
	m, err := prog.Simulate(core.Analysis{T: 6}, plan.Generator())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: sent %d packets, delivered %d, %d assert failure(s)\n",
		plan.Total(), m.Buffer("out0").BacklogP(), len(m.Failures()))

	// --- Verification: with up to 2 arrivals per step the backlog bound
	// breaks; the solver hands us the offending traffic pattern.
	res, err := prog.Verify(core.Analysis{T: 4, ArrivalsPerStep: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverify (2 arrivals/step allowed): %v in %v\n", res.Status, res.Duration.Round(1000000))
	if res.Trace != nil {
		fmt.Print(res.Trace)
	}

	// --- Restrict traffic and verify again: at one arrival per step both
	// asserts hold on every execution.
	res, err = prog.Verify(core.Analysis{T: 6, ArrivalsPerStep: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverify (1 arrival/step): %v in %v — the limiter keeps up\n",
		res.Status, res.Duration.Round(1000000))
}
