// Byte-granularity analysis: a token-bucket traffic shaper modeled with
// move-b/backlog-b. The solver proves the shaper's output envelope
// (bytes out ≤ RATE·t + BURST) over all traffic and packet sizes, finds a
// maximal-burst witness, and the same model runs concretely under a
// bursty workload.
//
//	go run ./examples/shaper
package main

import (
	"fmt"
	"log"

	"buffy/internal/backend/smtbe"
	"buffy/internal/core"
	"buffy/internal/interp"
	"buffy/internal/qm"
)

func main() {
	prog, err := core.Parse(qm.ShaperSrc)
	if err != nil {
		log.Fatal(err)
	}
	a := core.Analysis{
		T: 4, Params: map[string]int64{"RATE": 2, "BURST": 3},
		MaxBytes: 3, ArrivalsPerStep: 2,
	}

	// --- The envelope holds on every execution (all arrival patterns, all
	// packet sizes in 1..3 bytes).
	res, err := prog.Verify(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shaper envelope (out ≤ RATE·t + BURST): %v over %d steps (%v, %d clauses)\n",
		res.Status, a.T, res.Duration.Round(1000000), res.NumClauses)
	if res.Status != smtbe.Holds {
		log.Fatalf("unexpected: %v", res.Status)
	}

	// --- Concrete simulation: an oversized head blocks the FIFO until
	// enough credit accumulates (move-b's prefix semantics).
	m, err := prog.Simulate(core.Analysis{
		T: 4, Params: map[string]int64{"RATE": 2, "BURST": 3},
	}, func(step int, input string) []interp.Packet {
		if step == 0 {
			return []interp.Packet{
				{Fields: []int64{0}, Bytes: 3}, // 3-byte packet: waits for credit
				{Fields: []int64{0}, Bytes: 1},
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: after 4 steps, %d bytes shaped through, %d packets still queued\n",
		m.Buffer("sout").BacklogB(), m.Buffer("sin").BacklogP())
	if fails := m.Failures(); len(fails) > 0 {
		log.Fatalf("assert failures: %v", fails)
	}
	fmt.Println("all shaper asserts held concretely")
}
