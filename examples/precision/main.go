// Buffer-model precision (§3): the same Buffy program analyzed at three
// abstraction levels without changing a line of it — the paper's central
// "plug-in buffer models" flexibility — plus the packet-ordering example
// that separates the levels, and the induction capability that abstraction
// enables.
//
//	go run ./examples/precision
package main

import (
	"fmt"
	"log"

	"buffy/internal/buffer"
	"buffy/internal/core"
	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

func main() {
	// --- One program, three precision levels.
	fmt.Println("round-robin starvation query, identical program, three buffer models:")
	for _, model := range []string{"count", "multiclass", "list"} {
		prog, err := core.Parse(qm.RRQuerySrc)
		if err != nil {
			log.Fatal(err)
		}
		res, err := prog.FindWitness(core.Analysis{
			T: 6, Params: map[string]int64{"N": 2}, Model: model,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s  %-11v  %8v  %7d clauses\n",
			model, res.Status, res.Duration.Round(1000000), res.NumClauses)
	}

	// --- The §3 ordering example: [1,1,1,2,2,2] and [1,2,1,2,1,2] have
	// identical per-flow counts; only an order-tracking model can tell
	// which packets depart first.
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	ctx := &buffer.Ctx{B: b, Assume: sv.Assert, Prefix: "ord"}
	departFlow2 := func(seq []int64) *term.Term {
		src := buffer.ListModel{}.Empty(ctx, buffer.Config{Cap: 6})
		for _, f := range seq {
			src.Arrive(ctx, buffer.Packet{Fields: []*term.Term{b.IntConst(f)}, Bytes: b.IntConst(1)}, b.True())
		}
		sink := buffer.ListModel{}.Empty(ctx, buffer.Config{Cap: 6})
		if err := src.MoveP(ctx, sink, b.IntConst(2), nil, b.True()); err != nil {
			log.Fatal(err)
		}
		n, err := sink.FilterBacklogP(ctx, buffer.Filter{Field: 0, Value: b.IntConst(2)})
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	a := departFlow2([]int64{1, 1, 1, 2, 2, 2})
	c := departFlow2([]int64{1, 2, 1, 2, 1, 2})
	fmt.Printf("\nordering example — flow-2 packets among the first 2 departures:\n")
	fmt.Printf("  [1,1,1,2,2,2] -> %s     [1,2,1,2,1,2] -> %s   (equal counts, different behaviour)\n", a, c)

	// --- What abstraction buys: with the count model the path server's
	// token bound proves by 1-induction for EVERY horizon.
	prog, err := core.Parse(qm.PathServerSrc)
	if err != nil {
		log.Fatal(err)
	}
	bound := func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
		bb := ctx.B
		return bb.Le(m.Var("tokens"), bb.IntConst(4))
	}
	res, err := prog.ProveForAllHorizons(core.Analysis{
		Params: map[string]int64{"C": 2, "B": 2}, Model: "count",
	}, bound)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntokens <= C+B for all horizons (count model, 1-induction): proved=%v in %v\n",
		res.Proved, res.Duration.Round(100000))
}
