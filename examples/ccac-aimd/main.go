// The paper's §6.2 case study: compose three independent Buffy programs —
// an AIMD congestion controller, CCAC's nondeterministic token-bucket path
// server, and a fixed-delay server — by connecting their buffers (Figure
// 7), then ask the solver whether the composed system can lose packets
// (the ack-burst scenario) and whether the token bucket's throughput
// guarantee holds.
//
//	go run ./examples/ccac-aimd
package main

import (
	"fmt"
	"log"

	"buffy/internal/compose"
	"buffy/internal/smt/solver"
)

func main() {
	// --- Loss at a shallow bottleneck: the path server may hold back
	// service (tokens accumulate), then release a burst; the returning ack
	// burst makes the window-driven sender overflow the 2-packet queue.
	sv := solver.New(solver.Options{})
	sys, err := compose.BuildCCAC(sv.Builder(), compose.CCACParams{
		C: 1, B: 1, IW: 2, K: 2, T: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Sys.CheckQuery(sv, sys.Loss(sv.Builder()))
	fmt.Printf("shallow bottleneck (C=1 B=1 K=2, T=8): loss reachable = %v (%v)\n",
		res.Sat, res.Duration.Round(1000000))
	if res.Sat {
		fmt.Printf("  witness: dropped=%d, final cwnd=%d, delivered=%d\n",
			sv.IntValue(sys.Path.Buffers()["pin"].Dropped()),
			sv.IntValue(sys.AIMD.Var("cwnd")),
			sv.IntValue(sys.Delivered()))
	}

	// --- A deep buffer absorbs the same dynamics.
	sv2 := solver.New(solver.Options{})
	sys2, err := compose.BuildCCAC(sv2.Builder(), compose.CCACParams{
		C: 1, B: 1, IW: 2, K: 20, T: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	res2 := sys2.Sys.CheckQuery(sv2, sys2.Loss(sv2.Builder()))
	fmt.Printf("deep bottleneck   (C=1 B=1 K=20, T=8): loss reachable = %v (%v)\n",
		res2.Sat, res2.Duration.Round(1000000))

	// --- The token bucket's service guarantee: delivered packets can
	// never exceed C*T + B, whatever the CCA and the nondeterministic
	// server do.
	sv3 := solver.New(solver.Options{})
	const C, B, T = 2, 1, 6
	sys3, err := compose.BuildCCAC(sv3.Builder(), compose.CCACParams{
		C: C, B: B, IW: 4, K: 20, T: T,
	})
	if err != nil {
		log.Fatal(err)
	}
	b3 := sv3.Builder()
	res3 := sys3.Sys.CheckQuery(sv3, b3.Lt(b3.IntConst(C*T+B), sys3.Delivered()))
	fmt.Printf("throughput bound  (delivered > C*T+B = %d): satisfiable = %v — the token bucket holds\n",
		C*T+B, res3.Sat)
}
