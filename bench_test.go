// Package repro's root benchmarks regenerate the paper's evaluation
// artifacts under `go test -bench`, one benchmark per table/figure plus
// the ablations (see DESIGN.md's per-experiment index and EXPERIMENTS.md
// for the paper-vs-measured record). The cmd/buffy-bench tool prints the
// same data as human-readable tables.
package repro

import (
	"fmt"
	"testing"

	"buffy/internal/backend/dafny"
	"buffy/internal/backend/fperf"
	"buffy/internal/backend/smtbe"
	"buffy/internal/backend/ts"
	"buffy/internal/buffer"
	"buffy/internal/compose"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/qm"
	"buffy/internal/qm/fperfenc"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
	"buffy/internal/synth"
)

func mustLoad(b *testing.B, src string) *typecheck.Info {
	b.Helper()
	info, err := qm.Load(src)
	if err != nil {
		b.Fatal(err)
	}
	return info
}

// BenchmarkTable1_LoC reports Table 1's lines-of-code comparison as
// custom metrics (loc-direct / loc-buffy per scheduler).
func BenchmarkTable1_LoC(b *testing.B) {
	rows := []struct {
		name          string
		direct, buffy int
	}{
		{"FairQueue", fperfenc.LoCFQ(), qm.CountLoC(qm.FQBuggySrc)},
		{"RoundRobin", fperfenc.LoCRR(), qm.CountLoC(qm.RRSrc)},
		{"StrictPriority", fperfenc.LoCSP(), qm.CountLoC(qm.SPSrc)},
	}
	for _, r := range rows {
		r := r
		b.Run(r.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r.direct <= r.buffy {
					b.Fatal("direct encoding must dwarf the Buffy program")
				}
			}
			b.ReportMetric(float64(r.direct), "loc-direct")
			b.ReportMetric(float64(r.buffy), "loc-buffy")
			b.ReportMetric(float64(r.direct)/float64(r.buffy), "ratio")
		})
	}
}

// BenchmarkFigure6_DafnyVerifyTime measures the Dafny-style verification
// time of the FQ scheduler (under the FPerf-synthesized workload) as T
// grows — the Figure 6 series. The ns/op trend is the figure.
func BenchmarkFigure6_DafnyVerifyTime(b *testing.B) {
	info := mustLoad(b, qm.FQBuggyQuerySrc)
	params := map[string]int64{"N": 3}
	for _, T := range []int{2, 3, 4, 5, 6} {
		T := T
		// Synthesize the workload once per horizon (setup, not measured).
		sres, err := fperf.Synthesize(info, fperf.Options{IR: ir.Options{T: T, Params: params}})
		if err != nil {
			b.Fatal(err)
		}
		if !sres.Found {
			b.Fatalf("T=%d: no workload", T)
		}
		wl := sres.Workload
		b.Run(fmt.Sprintf("T=%d", T), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dafny.Verify(info, dafny.VerifyOptions{
					IR: ir.Options{T: T, Params: params},
					ExtraAssume: func(c *ir.Compiled, sv *solver.Solver) {
						sv.Assert(wl.Term(c))
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Verified {
					b.Fatal("must verify under the synthesized workload")
				}
			}
		})
	}
}

// BenchmarkCS1_FQStarvation measures the witness search for the §6.1
// starvation query on the buggy scheduler across horizons.
func BenchmarkCS1_FQStarvation(b *testing.B) {
	info := mustLoad(b, qm.FQBuggyQuerySrc)
	for _, T := range []int{4, 6, 8} {
		T := T
		b.Run(fmt.Sprintf("T=%d", T), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := smtbe.Check(info, smtbe.Options{
					IR:   ir.Options{T: T, Params: map[string]int64{"N": 3}},
					Mode: smtbe.Witness,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != smtbe.WitnessFound {
					b.Fatalf("T=%d: %v", T, res.Status)
				}
			}
		})
	}
}

// BenchmarkCS1b_FQFixedNoWitness measures the (harder) unsat direction on
// the RFC 8290-fixed scheduler.
func BenchmarkCS1b_FQFixedNoWitness(b *testing.B) {
	info := mustLoad(b, qm.FQFixedQuerySrc)
	for i := 0; i < b.N; i++ {
		res, err := smtbe.Check(info, smtbe.Options{
			IR:   ir.Options{T: 6, Params: map[string]int64{"N": 3}},
			Mode: smtbe.Witness,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != smtbe.NoWitness {
			b.Fatal(res.Status)
		}
	}
}

// BenchmarkCS2_CCACAckBurst measures the composed CCAC loss query (§6.2).
func BenchmarkCS2_CCACAckBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sv := solver.New(solver.Options{})
		sys, err := compose.BuildCCAC(sv.Builder(), compose.CCACParams{
			C: 1, B: 1, IW: 2, K: 2, T: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Sys.CheckQuery(sv, sys.Loss(sv.Builder()))
		if !res.Sat {
			b.Fatal("loss must be reachable")
		}
	}
}

// BenchmarkA1_BufferPrecision compares the same query under the three
// buffer models (§3's precision/efficiency trade-off).
func BenchmarkA1_BufferPrecision(b *testing.B) {
	for _, model := range []string{"count", "multiclass", "list"} {
		model := model
		m, err := buffer.ModelByName(model)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(model, func(b *testing.B) {
			info := mustLoad(b, qm.RRQuerySrc)
			for i := 0; i < b.N; i++ {
				res, err := smtbe.Check(info, smtbe.Options{
					IR:   ir.Options{T: 6, Params: map[string]int64{"N": 2}, Model: m},
					Mode: smtbe.Witness,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != smtbe.NoWitness {
					b.Fatal(res.Status)
				}
			}
		})
	}
}

// BenchmarkA2_ModularVsMonolithic compares horizon-independent k-induction
// with monolithic BMC at growing horizons (§5's motivation).
func BenchmarkA2_ModularVsMonolithic(b *testing.B) {
	info := mustLoad(b, qm.PathServerSrc)
	params := map[string]int64{"C": 2, "B": 2}
	bound := func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
		bb := ctx.B
		return bb.Le(m.Var("tokens"), bb.IntConst(4))
	}
	b.Run("induction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ts.ProveInvariant(info, ts.Options{IR: ir.Options{Params: params}}, bound)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Proved {
				b.Fatal("must prove")
			}
		}
	})
	for _, T := range []int{8, 16, 24} {
		T := T
		b.Run(fmt.Sprintf("bmc-T=%d", T), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := ts.CheckBounded(info, ts.Options{IR: ir.Options{T: T, Params: params}}, bound)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("must hold")
				}
			}
		})
	}
}

// BenchmarkA3_Houdini measures grammar generation + Houdini pruning on the
// path server.
func BenchmarkA3_Houdini(b *testing.B) {
	info := mustLoad(b, qm.PathServerSrc)
	iro := ir.Options{Params: map[string]int64{"C": 2, "B": 2}}
	for i := 0; i < b.N; i++ {
		sv := solver.New(solver.Options{})
		probe, err := ir.NewMachine(info, sv.Builder(), iro)
		if err != nil {
			b.Fatal(err)
		}
		cands := synth.Grammar(info, probe, synth.GrammarOptions{Consts: []int64{0, 1, 4, 8}})
		res, err := synth.Houdini(info, ts.Options{IR: iro}, cands)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Survivors) == 0 {
			b.Fatal("expected survivors")
		}
	}
}

// BenchmarkS1_PipelineVsDirect measures the full Buffy pipeline against
// the hand-written FPerf-style encoding on the identical FQ query — the
// run-time cost of the language abstraction (it should be comparable).
func BenchmarkS1_PipelineVsDirect(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sv := solver.New(solver.Options{})
			enc := fperfenc.EncodeFQ(sv, 2, 5)
			sv.Assert(enc.Assume)
			sv.Assert(enc.Query)
			if sv.Check() != solver.Sat {
				b.Fatal("expected sat")
			}
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		info := mustLoad(b, qm.FQBuggyQuerySrc)
		for i := 0; i < b.N; i++ {
			res, err := smtbe.Check(info, smtbe.Options{
				IR: ir.Options{T: 5, Params: map[string]int64{"N": 2},
					Model: buffer.CountModel{}},
				Mode: smtbe.Witness,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != smtbe.WitnessFound {
				b.Fatal(res.Status)
			}
		}
	})
}
