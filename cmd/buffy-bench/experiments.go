package main

import (
	"fmt"
	"time"

	"buffy/internal/backend/dafny"
	"buffy/internal/backend/fperf"
	"buffy/internal/backend/ts"
	"buffy/internal/buffer"
	"buffy/internal/compose"
	"buffy/internal/core"
	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/qm/fperfenc"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
	"buffy/internal/synth"
)

// runTable1 regenerates Table 1: lines of code to model each scheduler
// with hand-written FPerf-style formula construction vs in Buffy. The
// paper reports FPerf 197/60/33 vs Buffy 18/10/7; our hand encodings are
// the Go equivalents in internal/qm/fperfenc.
func runTable1() error {
	rows := []struct {
		name   string
		direct int
		buffy  int
	}{
		{"Fair-Queue", fperfenc.LoCFQ(), qm.CountLoC(qm.FQBuggySrc)},
		{"Round-Robin", fperfenc.LoCRR(), qm.CountLoC(qm.RRSrc)},
		{"Strict-Priority", fperfenc.LoCSP(), qm.CountLoC(qm.SPSrc)},
	}
	fmt.Printf("%-16s  %18s  %10s  %6s\n", "Program", "FPerf-style (LoC)", "Buffy (LoC)", "ratio")
	for _, r := range rows {
		fmt.Printf("%-16s  %18d  %10d  %5.1fx\n", r.name, r.direct, r.buffy, float64(r.direct)/float64(r.buffy))
	}
	fmt.Println("(paper: Fair-Queue 197/18, Round-Robin 60/10, Strict-Priority 33/7)")
	return nil
}

// runFig6 regenerates Figure 6: verify the FQ scheduler with the
// Dafny-style mini checker, under the workload synthesized by the
// FPerf-style back-end, at increasing horizons T. The paper's observation
// is that unrolling+inlining makes verification time grow steeply with T.
func runFig6() error {
	prog, err := core.Parse(qm.FQBuggyQuerySrc)
	if err != nil {
		return err
	}
	params := map[string]int64{"N": 3}
	fmt.Printf("%3s  %12s  %10s  %10s\n", "T", "verify time", "clauses", "verified")
	for _, T := range []int{2, 3, 4, 5, 6, 7, 8} {
		// Synthesize the workload at this horizon (the paper uses FPerf's
		// synthesized traffic as the Dafny assumptions).
		sres, err := fperf.Synthesize(prog.Info, fperf.Options{
			IR: ir.Options{T: T, Params: params},
		})
		if err != nil {
			return err
		}
		if !sres.Found {
			fmt.Printf("%3d  (no workload: query unreachable at this horizon)\n", T)
			continue
		}
		wl := sres.Workload
		vres, err := dafny.Verify(prog.Info, dafny.VerifyOptions{
			IR: ir.Options{T: T, Params: params},
			ExtraAssume: func(c *ir.Compiled, sv *solver.Solver) {
				sv.Assert(wl.Term(c))
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%3d  %12.4fs  %10d  %10v\n", T, vres.Duration.Seconds(), vres.NumClauses, vres.Verified)
	}
	fmt.Println("(paper: verification time increases exponentially with T under unroll+inline)")
	return nil
}

// runCS1 reproduces §6.1: the buggy FQ scheduler admits a trace where
// queue 1, despite constant demand, is served at most once.
func runCS1() error {
	prog, err := core.Parse(qm.FQBuggyQuerySrc)
	if err != nil {
		return err
	}
	fmt.Printf("%3s  %10s  %8s  %9s  %s\n", "T", "status", "time", "conflicts", "q1 served")
	for _, T := range []int{4, 6, 8, 10} {
		res, err := prog.FindWitness(core.Analysis{T: T, Params: map[string]int64{"N": 3}})
		if err != nil {
			return err
		}
		served := int64(-1)
		if res.Trace != nil {
			served = res.Trace.Vars[T-1]["cdeq1"]
		}
		fmt.Printf("%3d  %10v  %7.3fs  %9d  %d\n", T, res.Status, res.Duration.Seconds(), res.SatStats.Conflicts, served)
	}
	fmt.Println("(the RFC 8290 starvation bug: witness found at every horizon)")
	return nil
}

// runCS1b shows the RFC 8290 fix removes the starvation witness.
func runCS1b() error {
	prog, err := core.Parse(qm.FQFixedQuerySrc)
	if err != nil {
		return err
	}
	// T >= 6 is needed to separate rotation latency from real starvation:
	// in a 4-step horizon even a fair scheduler serves queue 1 only once.
	fmt.Printf("%3s  %10s  %8s\n", "T", "status", "time")
	for _, T := range []int{6, 8, 10} {
		res, err := prog.FindWitness(core.Analysis{T: T, Params: map[string]int64{"N": 3}})
		if err != nil {
			return err
		}
		fmt.Printf("%3d  %10v  %7.3fs\n", T, res.Status, res.Duration.Seconds())
	}
	fmt.Println("(fixed scheduler: no starvation witness once T separates rotation latency)")
	return nil
}

// runCS2 reproduces §6.2: the composed CCA/path/delay system reaches
// packet loss when the nondeterministic token bucket delays service and
// releases an ack burst.
func runCS2() error {
	type cfg struct {
		C, B, IW int64
		K, T     int
	}
	cases := []cfg{
		{1, 1, 2, 2, 8},  // tight bottleneck: loss reachable
		{2, 2, 2, 3, 8},  // more service: safe at this horizon
		{2, 2, 2, 40, 6}, // deep buffer: safe
	}
	fmt.Printf("%-26s  %8s  %8s\n", "C/B/IW/K/T", "loss?", "time")
	for _, c := range cases {
		sv := solver.New(solver.Options{})
		sys, err := compose.BuildCCAC(sv.Builder(), compose.CCACParams{
			C: c.C, B: c.B, IW: c.IW, K: c.K, T: c.T,
		})
		if err != nil {
			return err
		}
		res := sys.Sys.CheckQuery(sv, sys.Loss(sv.Builder()))
		fmt.Printf("C=%d B=%d IW=%d K=%-2d T=%-2d      %8v  %7.3fs\n",
			c.C, c.B, c.IW, c.K, c.T, res.Sat, res.Duration.Seconds())
	}
	fmt.Println("(ack burst overflows a shallow bottleneck queue; deep buffers absorb it)")
	return nil
}

// runA1 compares buffer-model precision (§3): the same round-robin query
// under the count, multiclass and list models — encoding size and solve
// time — plus the paper's packet-order example that the count model
// cannot express.
func runA1() error {
	fmt.Printf("%-10s  %10s  %10s  %10s  %10s\n", "model", "status", "time", "clauses", "vars")
	for _, model := range []string{"count", "multiclass", "list"} {
		prog, err := core.Parse(qm.RRQuerySrc)
		if err != nil {
			return err
		}
		res, err := prog.FindWitness(core.Analysis{
			T: 6, Params: map[string]int64{"N": 2}, Model: model,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s  %10v  %9.3fs  %10d  %10d\n",
			model, res.Status, res.Duration.Seconds(), res.NumClauses, res.NumVars)
	}

	// The §3 ordering example: [1,1,1,2,2,2] vs [1,2,1,2,1,2] have equal
	// per-flow counts. The list model distinguishes them (head contents
	// after 2 departures differ); the count/multiclass models cannot.
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	ctx := &buffer.Ctx{B: b, Assume: sv.Assert, Prefix: "a1"}
	mk := func(seq []int64) buffer.State {
		st := buffer.ListModel{}.Empty(ctx, buffer.Config{Cap: 6})
		for _, f := range seq {
			st.Arrive(ctx, buffer.Packet{Fields: []*term.Term{b.IntConst(f)}, Bytes: b.IntConst(1)}, b.True())
		}
		return st
	}
	s1 := mk([]int64{1, 1, 1, 2, 2, 2})
	s2 := mk([]int64{1, 2, 1, 2, 1, 2})
	sink1 := buffer.ListModel{}.Empty(ctx, buffer.Config{Cap: 6})
	sink2 := buffer.ListModel{}.Empty(ctx, buffer.Config{Cap: 6})
	_ = s1.MoveP(ctx, sink1, b.IntConst(2), nil, b.True())
	_ = s2.MoveP(ctx, sink2, b.IntConst(2), nil, b.True())
	f := buffer.Filter{Field: 0, Value: b.IntConst(2)}
	c1, _ := sink1.FilterBacklogP(ctx, f)
	c2, _ := sink2.FilterBacklogP(ctx, f)
	fmt.Printf("ordering example: after 2 departures, flow-2 packets out: %s vs %s (list model distinguishes;\n", c1, c2)
	fmt.Println("a count-only model sees identical states — §3's precision trade-off)")
	return nil
}

// runA2 compares modular vs monolithic analysis (§5): proving the token
// bucket's credit bound for EVERY horizon by 1-induction vs re-running
// monolithic BMC at growing horizons.
func runA2() error {
	prog, err := core.Parse(qm.PathServerSrc)
	if err != nil {
		return err
	}
	params := map[string]int64{"C": 2, "B": 2}
	bound := func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
		b := ctx.B
		return b.Le(m.Var("tokens"), b.IntConst(4))
	}

	start := time.Now()
	ind, err := ts.ProveInvariant(prog.Info, ts.Options{IR: ir.Options{Params: params}}, bound)
	if err != nil {
		return err
	}
	fmt.Printf("modular (1-induction, any horizon): proved=%v in %.4fs\n", ind.Proved, time.Since(start).Seconds())

	fmt.Printf("%-28s  %8s  %8s\n", "monolithic BMC", "holds", "time")
	for _, T := range []int{4, 8, 16, 24} {
		st := time.Now()
		ok, err := ts.CheckBounded(prog.Info, ts.Options{IR: ir.Options{T: T, Params: params}}, bound)
		if err != nil {
			return err
		}
		fmt.Printf("T=%-3d                         %8v  %7.3fs\n", T, ok, time.Since(st).Seconds())
	}
	fmt.Println("(induction is horizon-independent; BMC cost keeps growing with T)")
	return nil
}

// runA3 reproduces the Houdini run: the predicate grammar over the path
// server is pruned to its inductive core.
func runA3() error {
	prog, err := core.Parse(qm.PathServerSrc)
	if err != nil {
		return err
	}
	sv := solver.New(solver.Options{})
	iro := ir.Options{Params: map[string]int64{"C": 2, "B": 2}}
	probe, err := ir.NewMachine(prog.Info, sv.Builder(), iro)
	if err != nil {
		return err
	}
	cands := synth.Grammar(prog.Info, probe, synth.GrammarOptions{Consts: []int64{0, 1, 4, 8}})
	res, err := synth.Houdini(prog.Info, ts.Options{IR: iro}, cands)
	if err != nil {
		return err
	}
	fmt.Printf("candidates: %d   survivors: %d   rounds: %d   checks: %d   time: %.3fs\n",
		len(res.Survivors)+len(res.Dropped), len(res.Survivors), res.Rounds, res.Checks, res.Duration.Seconds())
	for _, c := range res.Survivors {
		fmt.Printf("  inductive: %s\n", c.Name)
	}
	for _, c := range res.Dropped {
		fmt.Printf("  dropped:   %s\n", c.Name)
	}
	return nil
}

// runA4 measures the composed system's maximum achievable throughput as
// the ack-path delay D grows (each extra step of delay is one more chained
// instance of the one-step delay program): a longer control loop slows
// window growth, so less traffic can be delivered in the same horizon.
func runA4() error {
	fmt.Printf("%3s  %16s  %8s\n", "D", "max delivered", "time")
	for _, d := range []int{1, 2, 4} {
		start := time.Now()
		lo, hi := int64(0), int64(32)
		for lo < hi {
			mid := (lo + hi + 1) / 2
			sv := solver.New(solver.Options{})
			b := sv.Builder()
			sys, err := compose.BuildCCAC(b, compose.CCACParams{
				C: 2, B: 1, IW: 2, K: 12, T: 10, D: d,
			})
			if err != nil {
				return err
			}
			res := sys.Sys.CheckQuery(sv, b.Ge(sys.Delivered(), b.IntConst(mid)))
			if res.Sat {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		fmt.Printf("%3d  %16d  %7.3fs\n", d, lo, time.Since(start).Seconds())
	}
	fmt.Println("(longer feedback delay -> slower window growth -> lower bounded-horizon throughput)")
	return nil
}
