package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"buffy/internal/qm"
	"buffy/internal/service"
	"buffy/internal/store"
)

// storeOut is where -exp store writes its machine-readable summary.
var storeOut = flag.String("store-out", "BENCH_store.json",
	"JSON summary path for the durable-store warm-restart experiment")

// storeRow is one corpus query's cold-solve vs disk-hit comparison
// across a simulated restart.
type storeRow struct {
	Model   string  `json:"model"`
	Kind    string  `json:"kind"`
	Status  string  `json:"status"`
	ColdMS  float64 `json:"cold_ms"`
	DiskMS  float64 `json:"disk_ms"`
	Speedup float64 `json:"speedup"`
	DiskHit bool    `json:"disk_hit"`
}

// storeSummary is the experiment's JSON artifact; CI gates on HitRatio
// and MedianSpeedup.
type storeSummary struct {
	Rows          []storeRow `json:"rows"`
	HitRatio      float64    `json:"hit_ratio"`
	MedianSpeedup float64    `json:"median_speedup"`
	StoreBytes    int64      `json:"store_bytes"`
	StoreEntries  int        `json:"store_entries"`
	Fingerprint   string     `json:"fingerprint"`
}

// storeCorpus is a spread of solver-bound queries across the qm corpus:
// witnesses that exist, verifications that hold, a bound and a sweep, so
// the disk tier is exercised over every result shape.
func storeCorpus() []*service.Request {
	return []*service.Request{
		{Kind: service.KindWitness, Source: qm.FQBuggyQuerySrc, T: 6, Params: map[string]int64{"N": 3}},
		{Kind: service.KindVerify, Source: qm.FQFixedQuerySrc, T: 5, Params: map[string]int64{"N": 3}},
		{Kind: service.KindWitness, Source: qm.RRQuerySrc, T: 5, Params: map[string]int64{"N": 2}},
		{Kind: service.KindWitness, Source: qm.SPQuerySrc, T: 6, Params: map[string]int64{"N": 3}},
		{Kind: service.KindVerify, Source: qm.ShaperSrc, T: 8, Params: map[string]int64{"RATE": 2, "BURST": 3}},
		{Kind: service.KindSweep, Source: qm.FQBuggyQuerySrc, MaxT: 6, SweepMode: "witness", Params: map[string]int64{"N": 3}},
	}
}

func storeModelName(req *service.Request) string {
	switch req.Source {
	case qm.FQBuggyQuerySrc:
		if req.Kind == service.KindSweep {
			return "cs1-fq-buggy-sweep"
		}
		return "cs1-fq-buggy"
	case qm.FQFixedQuerySrc:
		return "cs1b-fq-fixed"
	case qm.RRQuerySrc:
		return "rr"
	case qm.SPQuerySrc:
		return "sp"
	case qm.ShaperSrc:
		return "shaper"
	}
	return "unknown"
}

// runStoreExp measures what the durable tier buys across a restart: the
// corpus is solved cold through an engine writing behind to a disk
// store, the engine is shut down and a fresh one opened over the same
// directory (a restart with zero memory), and the corpus replayed. Every
// replay must hit the disk tier with the same answer; the summary
// records per-query cold vs disk-hit latency. The CI gate requires a
// disk hit ratio >= 0.9 and a median speedup >= 2x.
func runStoreExp() error {
	dir, err := os.MkdirTemp("", "buffy-bench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fp := service.PipelineFingerprint()
	open := func() (*store.Store, error) {
		return store.Open(store.Options{Dir: dir, Fingerprint: fp, MaxBytes: 1 << 30})
	}

	corpus := storeCorpus()
	s1, err := open()
	if err != nil {
		return err
	}
	e1 := service.New(service.Config{Workers: 2, Store: s1})
	cold := make([]time.Duration, len(corpus))
	status := make([]string, len(corpus))
	for i, req := range corpus {
		r := *req // engines share the corpus; give each its own copy
		start := time.Now()
		res, err := solveOn(e1, &r)
		if err != nil {
			return fmt.Errorf("cold %s: %w", storeModelName(req), err)
		}
		cold[i] = time.Since(start)
		status[i] = res.Status
		if res.CacheHit {
			return fmt.Errorf("cold %s unexpectedly served from cache", storeModelName(req))
		}
	}
	if err := shutdownEngine(e1); err != nil { // flushes write-behinds, closes the store
		return err
	}

	// "Restart": a fresh store over the same directory (recovery scan
	// included) under a fresh engine with a cold memory tier.
	s2, err := open()
	if err != nil {
		return err
	}
	e2 := service.New(service.Config{Workers: 2, Store: s2})
	var rows []storeRow
	hits := 0
	fmt.Printf("%-20s  %-7s  %-10s  %9s  %9s  %8s  %s\n",
		"model", "kind", "status", "cold", "disk", "speedup", "tier")
	for i, req := range corpus {
		r := *req
		start := time.Now()
		res, err := solveOn(e2, &r)
		if err != nil {
			return fmt.Errorf("replay %s: %w", storeModelName(req), err)
		}
		disk := time.Since(start)
		hit := res.CacheHit && res.CacheTier == service.CacheTierDisk
		if hit {
			hits++
		}
		if res.Status != status[i] {
			return fmt.Errorf("replay %s: answer changed across restart: %s vs %s",
				storeModelName(req), res.Status, status[i])
		}
		row := storeRow{
			Model:  storeModelName(req),
			Kind:   string(req.Kind),
			Status: res.Status,
			ColdMS: float64(cold[i].Microseconds()) / 1000,
			DiskMS: float64(disk.Microseconds()) / 1000,

			DiskHit: hit,
		}
		if disk > 0 {
			row.Speedup = float64(cold[i]) / float64(disk)
		}
		rows = append(rows, row)
		fmt.Printf("%-20s  %-7s  %-10s  %8.2fms  %8.2fms  %7.1fx  %s\n",
			row.Model, row.Kind, row.Status, row.ColdMS, row.DiskMS, row.Speedup, res.CacheTier)
	}
	st := e2.Metrics().Store
	if err := shutdownEngine(e2); err != nil {
		return err
	}

	sum := storeSummary{
		Rows:          rows,
		HitRatio:      float64(hits) / float64(len(corpus)),
		MedianSpeedup: medianSpeedup(rows),
		Fingerprint:   fp,
	}
	if st != nil {
		sum.StoreBytes = st.Bytes
		sum.StoreEntries = st.Entries
	}
	fmt.Printf("\ndisk hit ratio %.2f (%d/%d), median speedup %.1fx, %d entries / %d bytes on disk\n",
		sum.HitRatio, hits, len(corpus), sum.MedianSpeedup, sum.StoreEntries, sum.StoreBytes)

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*storeOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *storeOut)

	if sum.HitRatio < 0.9 {
		return fmt.Errorf("disk hit ratio %.2f below the 0.9 gate", sum.HitRatio)
	}
	if sum.MedianSpeedup < 2 {
		return fmt.Errorf("median disk-hit speedup %.2fx below the 2x gate", sum.MedianSpeedup)
	}
	return nil
}

func shutdownEngine(e *service.Engine) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return e.Shutdown(ctx)
}

func solveOn(e *service.Engine, req *service.Request) (*service.Result, error) {
	job, err := e.Submit(req)
	if err != nil {
		return nil, err
	}
	if req.Kind == service.KindSweep {
		// Drain the verdict stream like a client would; the terminal
		// result still carries the full list.
		if ch := job.Verdicts(); ch != nil {
			for range ch {
			}
		}
	}
	<-job.Done()
	res, err := job.Result()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func medianSpeedup(rows []storeRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sp := make([]float64, 0, len(rows))
	for _, r := range rows {
		sp = append(sp, r.Speedup)
	}
	for i := 1; i < len(sp); i++ { // insertion sort: the corpus is tiny
		for j := i; j > 0 && sp[j] < sp[j-1]; j-- {
			sp[j], sp[j-1] = sp[j-1], sp[j]
		}
	}
	return sp[len(sp)/2]
}
