// Command buffy-bench regenerates every table and figure of the paper's
// evaluation, plus this repository's ablations. Each experiment prints the
// same rows/series the paper reports; see EXPERIMENTS.md for the
// paper-vs-measured comparison.
//
//	buffy-bench -exp table1   # Table 1: FPerf vs Buffy LoC
//	buffy-bench -exp fig6     # Figure 6: Dafny verification time vs T
//	buffy-bench -exp cs1      # §6.1: FQ starvation witness (buggy)
//	buffy-bench -exp cs1b     # extension: RFC 8290 fix removes the witness
//	buffy-bench -exp cs2      # §6.2: CCAC ack-burst loss (composition)
//	buffy-bench -exp a1       # ablation: buffer-model precision
//	buffy-bench -exp a2       # ablation: modular (k-induction) vs monolithic
//	buffy-bench -exp a3       # extension: Houdini invariant inference
//	buffy-bench -exp a4       # extension: throughput vs ack-path delay
//	buffy-bench -exp portfolio # extension: portfolio vs single-config solver
//	buffy-bench -exp stages   # extension: per-stage cost breakdown (spans)
//	buffy-bench -exp netcalc  # extension: analytical bounds vs SMT differential
//	buffy-bench -exp vet      # extension: static-tier latency vs solver time saved
//	buffy-bench -exp sweep    # extension: warm-session sweep vs cold per-horizon
//	buffy-bench -exp store    # extension: durable store, disk-hit vs cold across restart
//	buffy-bench -exp trajectory # extension: perf-gate probes -> BENCH_trajectory.json
//	buffy-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
)

var experiments = []struct {
	name string
	desc string
	run  func() error
}{
	{"table1", "Table 1 — FPerf vs Buffy lines of code", runTable1},
	{"fig6", "Figure 6 — Dafny verification time vs T", runFig6},
	{"cs1", "§6.1 — FQ scheduler starvation witness (buggy)", runCS1},
	{"cs1b", "extension — RFC 8290 fix removes the witness", runCS1b},
	{"cs2", "§6.2 — CCAC ack-burst loss via composition", runCS2},
	{"a1", "ablation — buffer-model precision (list vs count vs multiclass)", runA1},
	{"a2", "ablation — modular k-induction vs monolithic BMC", runA2},
	{"a3", "extension — Houdini invariant inference (§5)", runA3},
	{"a4", "extension — throughput vs ack-path delay (composed instances)", runA4},
	{"portfolio", "extension — portfolio vs single-config solver (first-wins race)", runPortfolioExp},
	{"stages", "extension — per-stage cost breakdown across the corpus (telemetry spans)", runStages},
	{"netcalc", "extension — network-calculus bounds (µs) vs SMT differential certification", runNetcalc},
	{"vet", "extension — static tier latency (µs) vs solver time saved", runVetExp},
	{"sweep", "extension — warm-session sweep vs cold per-horizon solves", runSweepExp},
	{"store", "extension — durable result store: disk-hit vs cold-solve across a restart", runStoreExp},
	{"trajectory", "extension — benchmark trajectory: median/IQR probes + work counters for buffy-benchdiff", runTrajectory},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (table1 fig6 cs1 cs1b cs2 a1 a2 a3 a4 portfolio stages netcalc vet sweep store trajectory all)")
	flag.Parse()
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "buffy-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "buffy-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
