package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"buffy/internal/backend/netcalc"
	"buffy/internal/qm"
)

// netcalcOut is where -exp netcalc writes its machine-readable summary.
var netcalcOut = flag.String("netcalc-out", "BENCH_netcalc.json",
	"JSON summary path for the netcalc-vs-SMT experiment")

// netcalcRow is one corpus model's analytical-vs-exhaustive comparison:
// the netcalc bound query's wall clock (microseconds), the SMT
// differential solve that certifies it at horizon T (milliseconds), and
// the bounds themselves as exact rationals.
type netcalcRow struct {
	Model     string  `json:"model"`
	T         int     `json:"t"`
	Bounded   bool    `json:"bounded"`
	Delay     string  `json:"delay,omitempty"`
	Backlog   string  `json:"backlog,omitempty"`
	NetcalcUS float64 `json:"netcalc_us"`
	SMTMS     float64 `json:"smt_ms"`
	Status    string  `json:"status"`
	Speedup   float64 `json:"speedup,omitempty"`
}

// runNetcalc sweeps the netcalc corpus: every model answers its bound
// query analytically in microseconds, then the SMT backend spends
// milliseconds-to-seconds certifying at horizon T that no execution beats
// the bound (domination). The experiment hard-fails on any disagreement —
// the same invariant the CI differential step enforces.
func runNetcalc() error {
	var rows []netcalcRow
	dominated := 0
	fmt.Printf("%-10s  %-9s  %8s  %8s  %12s  %10s  %-17s\n",
		"model", "bounded", "delay", "backlog", "netcalc", "smt", "status")
	for _, e := range netcalc.Corpus() {
		info, err := qm.Load(e.Src)
		if err != nil {
			return err
		}
		// Warm once so the timed run measures the algebra, not first-call
		// allocator effects, then re-run for the reported latency.
		if _, err := netcalc.Analyze(context.Background(), info, e.NetOptions()); err != nil {
			return err
		}
		r, err := netcalc.Analyze(context.Background(), info, e.NetOptions())
		if err != nil {
			return err
		}
		report, err := netcalc.CrossCheck(context.Background(), info, r,
			netcalc.CrossCheckOptions{IR: e.IROptions()})
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		row := netcalcRow{
			Model: e.Name, T: e.T, Bounded: r.Bounded,
			NetcalcUS: float64(r.Duration.Nanoseconds()) / 1e3,
			SMTMS:     float64(report.Duration.Microseconds()) / 1e3,
			Status:    report.Status,
		}
		if r.Bounded {
			row.Delay, row.Backlog = r.Delay.RatString(), r.Backlog.RatString()
			row.Speedup = float64(report.Duration) / float64(r.Duration)
		}
		if report.Status == "dominated" {
			dominated++
		}
		rows = append(rows, row)
		delay, backlog := "-", "-"
		if r.Bounded {
			delay, backlog = row.Delay, row.Backlog
		}
		fmt.Printf("%-10s  %-9v  %8s  %8s  %10.1fµs  %8.1fms  %-17s\n",
			e.Name, r.Bounded, delay, backlog, row.NetcalcUS, row.SMTMS, report.Status)
	}

	summary := struct {
		Rows      []netcalcRow `json:"rows"`
		Dominated int          `json:"dominated"`
	}{rows, dominated}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*netcalcOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("every bounded model dominated its SMT sweep (%d models); summary: %s\n",
		dominated, *netcalcOut)
	fmt.Println("(analytical bounds in microseconds; the solver pays milliseconds to certify them)")
	return nil
}
