package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"buffy/internal/core"
	"buffy/internal/qm"
	"buffy/internal/telemetry"
)

// runStages reports the per-stage cost breakdown (parse, compile,
// bitblast, encode bookkeeping, CDCL search) across the example corpus,
// using the telemetry tracer threaded through the pipeline. This is the
// observability counterpart of the scalability ablations: it shows where
// the wall clock goes as queries grow, which is what the paper's
// solver-time discussion (and FPerf's) is about.
func runStages() error {
	cases := []struct {
		name   string
		src    string
		kind   string
		t      int
		params map[string]int64
		model  string
	}{
		{"fq-witness", qm.FQBuggyQuerySrc, "witness", 6, map[string]int64{"N": 3}, ""},
		{"rr-witness", qm.RRQuerySrc, "witness", 6, map[string]int64{"N": 2}, ""},
		{"rr-count", qm.RRQuerySrc, "witness", 6, map[string]int64{"N": 2}, "count"},
		{"sp-verify", qm.SPQuerySrc, "verify", 5, map[string]int64{"N": 2}, ""},
	}
	// Stages in pipeline order; everything else a trace records (restarts,
	// portfolio configs, ...) is folded into "other".
	stages := []string{"parse", "compile", "bitblast", "encode", "search"}

	fmt.Printf("%-12s  %8s", "program", "total")
	for _, s := range stages {
		fmt.Printf("  %9s", s)
	}
	fmt.Printf("  %9s\n", "other")

	for _, c := range cases {
		tr := telemetry.NewTraceN(c.name, 4096)
		ctx := telemetry.WithTrace(context.Background(), tr)

		_, psp := telemetry.StartSpan(ctx, "parse")
		prog, err := core.Parse(c.src)
		psp.End()
		if err != nil {
			return err
		}
		a := core.Analysis{T: c.t, Params: c.params, Model: c.model}
		start := time.Now()
		switch c.kind {
		case "verify":
			_, err = prog.VerifyContext(ctx, a)
		default:
			_, err = prog.FindWitnessContext(ctx, a)
		}
		if err != nil {
			return err
		}
		total := time.Since(start)

		durs := tr.Durations()
		// compile and bitblast are children of encode; report encode as
		// the residue so the columns are disjoint and sum to the pipeline.
		if enc, ok := durs["encode"]; ok {
			durs["encode"] = enc - durs["compile"] - durs["bitblast"]
		}
		var other time.Duration
		known := map[string]bool{"parse": true, "compile": true, "bitblast": true, "encode": true, "search": true}
		names := make([]string, 0, len(durs))
		for name := range durs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !known[name] && name != "sat.restart" && name != "sat.simplify" {
				other += durs[name]
			}
		}

		fmt.Printf("%-12s  %7.3fs", c.name, total.Seconds())
		for _, s := range stages {
			fmt.Printf("  %8.3fs", durs[s].Seconds())
		}
		fmt.Printf("  %8.3fs\n", other.Seconds())
	}
	fmt.Println("(compile+bitblast are encode's children and reported separately; encode is the residue.")
	fmt.Println(" search dominates as horizons grow — the breakdown /metrics exports as buffy_stage_duration_seconds)")
	return nil
}
