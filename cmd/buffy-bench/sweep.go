package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"buffy/internal/backend/smtbe"
	"buffy/internal/core"
	"buffy/internal/qm"
)

// sweepOut is where -exp sweep writes its machine-readable summary.
var sweepOut = flag.String("sweep-out", "BENCH_sweep.json",
	"JSON summary path for the warm-vs-cold sweep experiment")

// sweepHorizonRow is one horizon's warm-vs-cold comparison.
type sweepHorizonRow struct {
	T      int     `json:"t"`
	Status string  `json:"status"`
	WarmUS float64 `json:"warm_us"`
	ColdUS float64 `json:"cold_us"`
}

// sweepRow is one corpus model's end-to-end sweep comparison: the total
// wall clock of solving horizons 1..stop cold (per-horizon compile +
// solve from scratch, what FindMinHorizon pays) against one warm session
// answering the same horizons by assumption-based re-solve.
type sweepRow struct {
	Model    string            `json:"model"`
	Mode     string            `json:"mode"`
	MaxT     int               `json:"max_t"`
	FoundAt  int               `json:"found_at"`
	Final    string            `json:"final"`
	ColdMS   float64           `json:"cold_ms"`
	WarmMS   float64           `json:"warm_ms"`
	Speedup  float64           `json:"speedup"`
	Horizons []sweepHorizonRow `json:"horizons"`
}

// sweepCase is one corpus entry of the experiment.
type sweepCase struct {
	name   string
	src    string
	params map[string]int64
	mode   smtbe.Mode
	maxT   int
}

// sweepCorpus picks models whose sweeps run deep: queries that answer
// the same way at every horizon (the RFC 8290 fix removes the starvation
// witness, round-robin never starves, the shaper envelope holds), so the
// sweep covers all of 1..maxT and warm reuse compounds across horizons.
// A buggy model rides along to show a sweep that terminates at the
// minimal witness horizon still agrees warm-vs-cold.
func sweepCorpus() []sweepCase {
	return []sweepCase{
		{"shaper", qm.ShaperSrc, map[string]int64{"RATE": 2, "BURST": 3}, smtbe.Verify, 12},
		{"tbrl", qm.TBRLSrc, map[string]int64{"RATE": 1, "BURST": 3, "C": 2}, smtbe.Verify, 8},
		{"sptandem", qm.SPTandemSrc, map[string]int64{"RH": 1, "BH": 2, "RV": 1, "BV": 2, "C": 3}, smtbe.Verify, 8},
		{"cs1-fq-buggy", qm.FQBuggyQuerySrc, map[string]int64{"N": 3}, smtbe.Witness, 8},
	}
}

// runSweepExp measures what the warm-session subsystem buys: for each
// model, horizons 1..maxT are solved cold (a fresh compile and solver per
// horizon — the pre-session FindMinHorizon cost model) and warm (one
// symbolic-T encoding, per-horizon assumptions, learnt clauses carried
// across horizons). Verdicts must agree horizon-for-horizon; the CI gate
// fails the build if fewer than two models clear a 2x speedup.
func runSweepExp() error {
	ctx := context.Background()
	var rows []sweepRow
	fmt.Printf("%-14s  %-8s  %5s  %8s  %9s  %9s  %8s\n",
		"model", "mode", "maxT", "found@", "cold", "warm", "speedup")
	for _, c := range sweepCorpus() {
		prog, err := core.Parse(c.src)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		a := core.Analysis{T: c.maxT, Params: c.params}

		// Cold reference: nil session forces a per-horizon compile+solve.
		cold, err := prog.SweepWithSession(ctx, nil, a, core.SweepOptions{MaxT: c.maxT, Mode: c.mode})
		if err != nil {
			return fmt.Errorf("%s cold: %w", c.name, err)
		}
		// Warm run: one session answers every horizon by re-solve.
		warm, err := prog.SweepContext(ctx, a, core.SweepOptions{MaxT: c.maxT, Mode: c.mode})
		if err != nil {
			return fmt.Errorf("%s warm: %w", c.name, err)
		}
		if !warm.Warm {
			return fmt.Errorf("%s: warm sweep fell back to cold solves", c.name)
		}

		// The whole point is identical answers for less time: disagreement
		// is a correctness bug, not a measurement artifact.
		if len(cold.Verdicts) != len(warm.Verdicts) || cold.FoundAt != warm.FoundAt {
			return fmt.Errorf("%s: cold found %v@%d over %d horizons, warm %v@%d over %d",
				c.name, cold.Final.Status, cold.FoundAt, len(cold.Verdicts),
				warm.Final.Status, warm.FoundAt, len(warm.Verdicts))
		}
		row := sweepRow{
			Model: c.name, Mode: c.mode.String(), MaxT: c.maxT,
			FoundAt: warm.FoundAt, Final: warm.Final.Status.String(),
			ColdMS:  float64(cold.Duration.Microseconds()) / 1e3,
			WarmMS:  float64(warm.Duration.Microseconds()) / 1e3,
			Speedup: float64(cold.Duration) / float64(warm.Duration),
		}
		for i, wv := range warm.Verdicts {
			cv := cold.Verdicts[i]
			if wv.Status != cv.Status {
				return fmt.Errorf("%s: horizon %d disagrees (warm %v, cold %v)",
					c.name, wv.T, wv.Status, cv.Status)
			}
			row.Horizons = append(row.Horizons, sweepHorizonRow{
				T: wv.T, Status: wv.Status.String(),
				WarmUS: float64(wv.Duration.Nanoseconds()) / 1e3,
				ColdUS: float64(cv.Duration.Nanoseconds()) / 1e3,
			})
		}
		rows = append(rows, row)
		fmt.Printf("%-14s  %-8s  %5d  %8d  %7.1fms  %7.1fms  %7.2fx\n",
			c.name, row.Mode, c.maxT, row.FoundAt, row.ColdMS, row.WarmMS, row.Speedup)
	}

	twoX := 0
	for _, r := range rows {
		if r.Speedup >= 2 {
			twoX++
		}
	}
	summary := struct {
		Rows         []sweepRow `json:"rows"`
		SpeedupFloor float64    `json:"speedup_floor"`
		ModelsAtTwoX int        `json:"models_at_2x"`
	}{rows, 2.0, twoX}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*sweepOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%d of %d models at >= 2x warm speedup; summary: %s\n", twoX, len(rows), *sweepOut)
	fmt.Println("(cold = fresh compile+solver per horizon; warm = one symbolic-T session re-solved under assumptions)")
	if twoX < 2 {
		return fmt.Errorf("sweep speedup floor violated: only %d models at >= 2x (need 2)", twoX)
	}
	return nil
}
