package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"buffy/internal/bench"
	"buffy/internal/core"
	"buffy/internal/qm"
)

var (
	// trajectoryOut is where -exp trajectory (and therefore -exp all)
	// writes the machine-readable run summary buffy-benchdiff consumes.
	trajectoryOut = flag.String("trajectory-out", "BENCH_trajectory.json",
		"JSON trajectory path for the perf regression gate (compare runs with buffy-benchdiff)")
	trajectoryRepeats = flag.Int("trajectory-repeats", 3,
		"repeat count per trajectory probe (median/IQR summarized)")
)

// trajectoryProbe is one gate probe: a closed analysis run that either
// yields machine-independent work counters (deterministic single-config
// solves — the cross-machine gate) or only a wall clock (analytical
// bounds, portfolio races — gated on same-machine runs only).
type trajectoryProbe struct {
	name     string
	timeOnly bool
	advisory bool // tracked but never gated (nondeterministic wall clock)
	run      func(ctx context.Context) (map[string]int64, error)
}

// trajectoryProbes covers the repository's perf-critical surfaces with
// one probe per experiment family: the paper's case-study witness, the
// fixed-scheduler UNSAT proof, two verify-tier models, the analytical
// backend, and the portfolio race. Work probes run a single solver
// configuration (Portfolio 0) because racing diversified configs is
// first-conclusive-answer-wins and therefore nondeterministic by
// design; those surfaces are covered by wall-clock-only probes.
func trajectoryProbes() []trajectoryProbe {
	solve := func(src string, params map[string]int64, t int, witness bool) func(context.Context) (map[string]int64, error) {
		return func(ctx context.Context) (map[string]int64, error) {
			prog, err := core.Parse(src)
			if err != nil {
				return nil, err
			}
			a := core.Analysis{T: t, Params: params}
			res, err := prog.VerifyContext(ctx, a)
			if witness {
				res, err = prog.FindWitnessContext(ctx, a)
			}
			if err != nil {
				return nil, err
			}
			s := res.SatStats
			return map[string]int64{
				"conflicts":    s.Conflicts,
				"decisions":    s.Decisions,
				"propagations": s.Propagations,
				"learnt":       s.Learnt,
				"clauses":      int64(res.NumClauses),
				"vars":         int64(res.NumVars),
			}, nil
		}
	}
	return []trajectoryProbe{
		{name: "cs1-fq-witness-t8", run: solve(qm.FQBuggyQuerySrc, map[string]int64{"N": 3}, 8, true)},
		{name: "fq-fixed-verify-t6", run: solve(qm.FQFixedQuerySrc, map[string]int64{"N": 3}, 6, false)},
		{name: "shaper-verify-t12", run: solve(qm.ShaperSrc, map[string]int64{"RATE": 2, "BURST": 3}, 12, false)},
		{name: "sptandem-verify-t8", run: solve(qm.SPTandemSrc, map[string]int64{"RH": 1, "BH": 2, "RV": 1, "BV": 2, "C": 3}, 8, false)},
		{name: "tbrl-netcalc-bound", timeOnly: true, run: func(ctx context.Context) (map[string]int64, error) {
			prog, err := core.Parse(qm.TBRLSrc)
			if err != nil {
				return nil, err
			}
			_, err = prog.BoundContext(ctx, core.Analysis{
				T: 6, Params: map[string]int64{"RATE": 1, "BURST": 3, "C": 2}})
			return nil, err
		}},
		// Advisory: a first-wins race's wall clock depends on which
		// config wins, which varies run to run — no threshold separates
		// a regression from an unlucky race, so benchdiff only notes it.
		{name: "portfolio-witness-wall", timeOnly: true, advisory: true, run: func(ctx context.Context) (map[string]int64, error) {
			prog, err := core.Parse(qm.FQBuggyQuerySrc)
			if err != nil {
				return nil, err
			}
			_, err = prog.FindWitnessPortfolioContext(ctx, core.Analysis{
				T: 8, Params: map[string]int64{"N": 3}, Portfolio: 4})
			return nil, err
		}},
	}
}

// runTrajectory answers -exp trajectory: run every probe -trajectory-
// repeats times, summarize median/IQR wall clock plus work counters,
// verify work determinism across repeats, and write the trajectory
// file. `buffy-benchdiff OLD NEW` then turns two of these files into a
// regression verdict; CI diffs the committed repo baseline against a
// fresh run.
func runTrajectory() error {
	ctx := context.Background()
	repeats := *trajectoryRepeats
	if repeats < 1 {
		repeats = 1
	}
	var exps []bench.Experiment
	fmt.Printf("%-24s  %9s  %8s  %7s  %s\n", "probe", "median", "iqr", "runs", "gate")
	for _, p := range trajectoryProbes() {
		var runs []float64
		var works []map[string]int64
		for i := 0; i < repeats; i++ {
			start := time.Now()
			work, err := p.run(ctx)
			if err != nil {
				return fmt.Errorf("%s: %w", p.name, err)
			}
			runs = append(runs, float64(time.Since(start).Microseconds())/1e3)
			works = append(works, work)
		}
		med, iqr := bench.MedianIQR(runs)
		det := !p.timeOnly && allWorkEqual(works)
		gate := "time (same machine only)"
		if det {
			gate = "work (cross-machine)"
		}
		if p.advisory {
			gate = "advisory (never gated)"
		}
		if !p.timeOnly && !det {
			// A probe that was supposed to be deterministic but drifted:
			// record it honestly so benchdiff falls back to the soft gate,
			// and say so, because it usually means a config leaked in.
			fmt.Printf("  note: %s work counters drifted across repeats; gating on time only\n", p.name)
		}
		exps = append(exps, bench.Experiment{
			Name: p.name, RunsMS: runs, MedianMS: med, IQRMS: iqr,
			Work: works[0], Deterministic: det, TimeOnly: p.timeOnly,
			Advisory: p.advisory,
		})
		fmt.Printf("%-24s  %7.1fms  %6.1fms  %7d  %s\n", p.name, med, iqr, repeats, gate)
	}
	out := bench.Trajectory{
		Schema:      bench.TrajectorySchema,
		CreatedUnix: time.Now().Unix(),
		GitRev:      gitRev(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		OS:          runtime.GOOS,
		Arch:        runtime.GOARCH,
		Repeats:     repeats,
		Experiments: exps,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*trajectoryOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("trajectory: %s (rev %s, go %s, P=%d; gate with buffy-benchdiff BASELINE %s)\n",
		*trajectoryOut, out.GitRev, out.GoVersion, out.GOMAXPROCS, *trajectoryOut)
	return nil
}

// allWorkEqual reports whether every repeat produced identical work
// counters — the determinism proof that licenses the hard gate.
func allWorkEqual(works []map[string]int64) bool {
	for _, w := range works[1:] {
		if len(w) != len(works[0]) {
			return false
		}
		for k, v := range works[0] {
			if w[k] != v {
				return false
			}
		}
	}
	return true
}

// gitRev best-efforts the current commit for provenance; trajectories
// written outside a checkout just omit it.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
