package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"buffy/internal/core"
	"buffy/internal/qm"
)

// portfolioOut is where -exp portfolio writes its machine-readable summary.
var portfolioOut = flag.String("portfolio-out", "portfolio-summary.json",
	"JSON summary path for the portfolio experiment")

// portfolioSizes are the race widths the experiment compares against the
// single classic config. Size 2 is the minimal hedge (classic plus its
// best-measured complement); size 4 is the service/CLI default.
var portfolioSizes = []int{2, 4}

// portfolioRow is one (example, size) single-vs-portfolio comparison,
// serialized into the JSON summary artifact.
type portfolioRow struct {
	Example         string  `json:"example"`
	Mode            string  `json:"mode"`
	T               int     `json:"t"`
	PortfolioSize   int     `json:"portfolio_size"`
	SingleMS        float64 `json:"single_ms"`
	SingleStatus    string  `json:"single_status"`
	PortfolioMS     float64 `json:"portfolio_ms"`
	PortfolioStatus string  `json:"portfolio_status"`
	Winner          string  `json:"winner"`
	Speedup         float64 `json:"speedup"`
}

// runPortfolioExp compares the single classic-config solver against
// portfolios of diversified configurations on the case-study queries:
// same answers on every row, and the race's wall clock is the first
// conclusive config's, so examples where a non-classic heuristic wins
// show a speedup > 1. On a single-CPU host the racing searches time-slice
// one core, so a width-N race only wins where some config beats classic
// by more than Nx; with real parallelism every fast-config win shows.
func runPortfolioExp() error {
	examples := []struct {
		name   string
		src    string
		mode   string // "verify" | "witness"
		t      int
		params map[string]int64
	}{
		{"cs1-fq-starvation", qm.FQBuggyQuerySrc, "witness", 8, map[string]int64{"N": 3}},
		{"sp-starvation", qm.SPQuerySrc, "witness", 6, map[string]int64{"N": 3}},
		{"rr-no-starvation", qm.RRQuerySrc, "witness", 6, map[string]int64{"N": 2}},
		{"shaper-envelope", qm.ShaperSrc, "verify", 5, map[string]int64{"RATE": 2, "BURST": 3}},
	}

	rows := make([]portfolioRow, 0, len(examples)*len(portfolioSizes))
	wins := 0
	fmt.Printf("%-20s  %-8s  %5s  %10s  %10s  %8s  %-14s\n",
		"example", "mode", "width", "single", "portfolio", "speedup", "winner")
	for _, ex := range examples {
		prog, err := core.Parse(ex.src)
		if err != nil {
			return err
		}
		a := core.Analysis{T: ex.t, Params: ex.params}

		var singleStatus string
		start := time.Now()
		if ex.mode == "verify" {
			res, err := prog.Verify(a)
			if err != nil {
				return err
			}
			singleStatus = res.Status.String()
		} else {
			res, err := prog.FindWitness(a)
			if err != nil {
				return err
			}
			singleStatus = res.Status.String()
		}
		single := time.Since(start)

		for _, size := range portfolioSizes {
			pa := a
			pa.Portfolio = size
			var portStatus, winner string
			var portWall time.Duration
			if ex.mode == "verify" {
				pr, err := prog.VerifyPortfolio(pa)
				if err != nil {
					return err
				}
				portStatus, winner, portWall = pr.Status.String(), pr.Winner, pr.WallClock
			} else {
				pr, err := prog.FindWitnessPortfolio(pa)
				if err != nil {
					return err
				}
				portStatus, winner, portWall = pr.Status.String(), pr.Winner, pr.WallClock
			}

			if portStatus != singleStatus {
				return fmt.Errorf("%s (width %d): portfolio answered %s but single config answered %s",
					ex.name, size, portStatus, singleStatus)
			}
			speedup := float64(single) / float64(portWall)
			if speedup > 1 {
				wins++
			}
			rows = append(rows, portfolioRow{
				Example: ex.name, Mode: ex.mode, T: ex.t, PortfolioSize: size,
				SingleMS: float64(single.Microseconds()) / 1e3, SingleStatus: singleStatus,
				PortfolioMS: float64(portWall.Microseconds()) / 1e3, PortfolioStatus: portStatus,
				Winner: winner, Speedup: speedup,
			})
			fmt.Printf("%-20s  %-8s  %5d  %9.3fs  %9.3fs  %7.2fx  %-14s\n",
				ex.name, ex.mode, size, single.Seconds(), portWall.Seconds(), speedup, winner)
		}
	}

	summary := struct {
		CPUs          int            `json:"cpus"`
		Rows          []portfolioRow `json:"rows"`
		WallClockWins int            `json:"wall_clock_wins"`
	}{runtime.NumCPU(), rows, wins}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*portfolioOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("portfolio beat the single config on %d/%d rows (%d CPUs); summary: %s\n",
		wins, len(rows), runtime.NumCPU(), *portfolioOut)
	fmt.Println("(every answer agreed across modes — diversification changes speed, never the verdict)")
	return nil
}
