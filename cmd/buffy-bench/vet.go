package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/core"
	"buffy/internal/ir"
	"buffy/internal/lang/sema"
	"buffy/internal/qm"
	"buffy/internal/vet"
)

// vetOut is where -exp vet writes its machine-readable summary.
var vetOut = flag.String("vet-out", "BENCH_vet.json",
	"JSON summary path for the static-tier experiment")

// Synthetic programs the static tier decides outright — the cases where
// the pre-solve gate saves the whole solver invocation.
const benchDeadAssert = `dead(in buffer a, out buffer b) {
  move-p(a, b, 1);
  assert(backlog-p(a) <= 8);
}
`

const benchContradiction = `contra(in buffer a, out buffer b) {
  local int n;
  n = backlog-p(a);
  assume(n > 2000);
  move-p(a, b, n);
  assert(backlog-p(a) == 0);
}
`

const benchNeverHolds = `never(in buffer a, out buffer b) {
  move-p(a, b, 1);
  assert(backlog-p(a) > 1000);
}
`

// vetRow is one program's gate-cost-vs-solver-cost measurement: the vet
// latency in microseconds (the overhead every query pays), whether the
// static tier decided the query, and the SMT solve time in milliseconds
// (the cost the gate saves when it decides, and the denominator of the
// overhead ratio when it does not).
type vetRow struct {
	Program string  `json:"program"`
	Mode    string  `json:"mode"`
	T       int     `json:"t"`
	VetUS   float64 `json:"vet_us"`
	Decided bool    `json:"decided"`
	Reason  string  `json:"reason,omitempty"`
	SMTMS   float64 `json:"smt_ms"`
	// SavedMS = SMTMS when the gate decided (the solver never runs);
	// otherwise 0 and the vet latency is pure — and tiny — overhead.
	SavedMS     float64 `json:"saved_ms"`
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// runVetExp measures the static tier against the solver across programs
// it decides (contradictions, dead and never-holding asserts) and real
// corpus queries it must pass through (the gate's overhead case). Any
// static verdict the SMT result contradicts fails the experiment — the
// same soundness contract the differential test pins.
func runVetExp() error {
	cases := []struct {
		name, src string
		mode      smtbe.Mode
		t         int
		params    map[string]int64
	}{
		{"dead-assert", benchDeadAssert, smtbe.Verify, 6, nil},
		{"contradiction", benchContradiction, smtbe.Witness, 6, nil},
		{"never-holds", benchNeverHolds, smtbe.Witness, 6, nil},
		{"fq-buggy-q", qm.FQBuggyQuerySrc, smtbe.Witness, 6, map[string]int64{"N": 3}},
		{"rr-q", qm.RRQuerySrc, smtbe.Witness, 6, map[string]int64{"N": 2}},
		{"sp-q", qm.SPQuerySrc, smtbe.Witness, 6, map[string]int64{"N": 2}},
	}

	var rows []vetRow
	var savedTotal, overheadTotal float64
	fmt.Printf("%-14s  %-7s  %9s  %-22s  %9s  %9s\n",
		"program", "mode", "vet", "decided", "smt", "saved")
	for _, c := range cases {
		opts := sema.Options{T: c.t, Params: c.params}

		// Best of three vet runs: the gate's cost is microseconds and a
		// single sample is mostly scheduler noise.
		var res *vet.Result
		best := time.Duration(1 << 62)
		for range 3 {
			start := time.Now()
			res = vet.Source(c.src, opts)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		v := res.Report.Verdict
		decided := v.Conclusive() && v.Reason != sema.ReasonNoAsserts

		// The solve the gate would have skipped (or precedes): run smtbe
		// directly so the measurement bypasses the gate itself.
		p, err := core.Parse(c.src)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		smtRes, err := smtbe.Check(p.Info, smtbe.Options{
			IR:   ir.Options{T: c.t, Params: c.params},
			Mode: c.mode,
		})
		if err != nil {
			return fmt.Errorf("%s: smt: %w", c.name, err)
		}
		if decided { // soundness: the static answer must match the solver's
			switch {
			case c.mode == smtbe.Verify && v.Verify == "holds" && smtRes.Status != smtbe.Holds:
				return fmt.Errorf("%s: static verify=holds but SMT says %v", c.name, smtRes.Status)
			case c.mode == smtbe.Witness && v.Witness == "no-witness" && smtRes.Status != smtbe.NoWitness:
				return fmt.Errorf("%s: static witness=no-witness but SMT says %v", c.name, smtRes.Status)
			}
		}

		row := vetRow{
			Program: c.name,
			Mode:    c.mode.String(),
			T:       c.t,
			VetUS:   float64(best.Nanoseconds()) / 1e3,
			Decided: decided,
			Reason:  v.Reason,
			SMTMS:   float64(smtRes.Duration.Microseconds()) / 1e3,
		}
		if decided {
			row.SavedMS = row.SMTMS
			savedTotal += row.SavedMS
		} else if row.SMTMS > 0 {
			row.OverheadPct = row.VetUS / 10 / row.SMTMS // (vet_us/1000)/smt_ms*100
			overheadTotal += row.VetUS / 1e3
		}
		rows = append(rows, row)

		decidedCol := "-"
		if decided {
			decidedCol = v.Reason
		}
		saved := "-"
		if decided {
			saved = fmt.Sprintf("%7.3fms", row.SavedMS)
		}
		fmt.Printf("%-14s  %-7s  %7.1fµs  %-22s  %7.3fms  %9s\n",
			c.name, row.Mode, row.VetUS, decidedCol, row.SMTMS, saved)
	}
	fmt.Printf("static tier saved %.3fms of solver time; undecided queries paid %.3fms total gate overhead\n",
		savedTotal, overheadTotal)

	out := struct {
		Rows         []vetRow `json:"rows"`
		SavedMSTotal float64  `json:"saved_ms_total"`
		GateMSTotal  float64  `json:"gate_overhead_ms_total"`
	}{rows, savedTotal, overheadTotal}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*vetOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *vetOut)
	return nil
}
