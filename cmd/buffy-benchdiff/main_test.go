package main

import (
	"testing"

	"buffy/internal/bench"
)

// TestGateFailsOnRegressedFixture is the CI gate's proof of life: a
// candidate trajectory whose deterministic work counters grew ~40%
// (testdata/regressed.json) must exit nonzero against the baseline.
func TestGateFailsOnRegressedFixture(t *testing.T) {
	if code := run("testdata/base.json", "testdata/regressed.json", bench.DiffOptions{}); code != 1 {
		t.Fatalf("regressed fixture: exit %d, want 1", code)
	}
}

// TestGatePassesOnIdenticalFixture pins the other direction: a run
// compared against itself is never a regression.
func TestGatePassesOnIdenticalFixture(t *testing.T) {
	if code := run("testdata/base.json", "testdata/base.json", bench.DiffOptions{}); code != 0 {
		t.Fatalf("identical fixture: exit %d, want 0", code)
	}
}

// TestGateUnreadableInputIsUsageError distinguishes "perf regressed"
// (1) from "could not even compare" (2) so CI failures read correctly.
func TestGateUnreadableInputIsUsageError(t *testing.T) {
	if code := run("testdata/does-not-exist.json", "testdata/base.json", bench.DiffOptions{}); code != 2 {
		t.Fatalf("missing baseline: exit %d, want 2", code)
	}
}
