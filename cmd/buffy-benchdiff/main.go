// Command buffy-benchdiff is the perf regression gate: it compares two
// BENCH_trajectory.json files written by `buffy-bench -exp trajectory`
// and exits nonzero when the candidate run regressed past the
// noise-aware thresholds.
//
//	buffy-bench -exp trajectory -trajectory-out /tmp/new.json
//	buffy-benchdiff BENCH_trajectory.json /tmp/new.json
//
// Deterministic solver work counters (conflicts, propagations, learnt
// clauses from fixed-seed single-config solves) gate hard at
// -max-work-regress on any machine. Wall-clock medians gate softly —
// only when the two runs' machine fingerprints match, only above
// -min-time-ms, and only when the delta clears both -max-time-regress
// and -iqr-mult times the larger run's IQR. An experiment present in
// the baseline but missing from the candidate is itself a regression.
//
// Exit status: 0 no regression, 1 regression, 2 usage or unreadable
// input.
package main

import (
	"flag"
	"fmt"
	"os"

	"buffy/internal/bench"
)

func main() {
	maxWork := flag.Float64("max-work-regress", 0.30,
		"allowed relative growth of a deterministic work counter (0.30 = +30%)")
	maxTime := flag.Float64("max-time-regress", 0.50,
		"allowed relative growth of a wall-clock median, same-machine runs only")
	minTimeMS := flag.Float64("min-time-ms", 20,
		"medians below this are scheduler noise and never gate")
	iqrMult := flag.Float64("iqr-mult", 3,
		"a time delta must also exceed this multiple of the larger IQR")
	minWork := flag.Int64("min-work", 500,
		"work counters below this absolute value never gate")
	ignoreTime := flag.Bool("ignore-time", false,
		"gate only on deterministic work counters, never wall clock")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: buffy-benchdiff [flags] BASELINE.json CANDIDATE.json")
		flag.PrintDefaults()
		os.Exit(2)
	}
	os.Exit(run(flag.Arg(0), flag.Arg(1), bench.DiffOptions{
		MaxWorkRegress: *maxWork,
		MaxTimeRegress: *maxTime,
		MinTimeMS:      *minTimeMS,
		IQRMult:        *iqrMult,
		MinWork:        *minWork,
		IgnoreTime:     *ignoreTime,
	}))
}

// run loads both trajectories, diffs them, and reports; split from main
// so tests can drive the gate end-to-end on fixture files and assert
// the exit code.
func run(basePath, candPath string, opts bench.DiffOptions) int {
	base, err := bench.Load(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "buffy-benchdiff: baseline: %v\n", err)
		return 2
	}
	cand, err := bench.Load(candPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "buffy-benchdiff: candidate: %v\n", err)
		return 2
	}
	regressions, notes := bench.Diff(base, cand, opts)
	fmt.Printf("baseline:  %s (rev %s, go %s, %s/%s P=%d)\n",
		basePath, orNone(base.GitRev), base.GoVersion, base.OS, base.Arch, base.GOMAXPROCS)
	fmt.Printf("candidate: %s (rev %s, go %s, %s/%s P=%d)\n",
		candPath, orNone(cand.GitRev), cand.GoVersion, cand.OS, cand.Arch, cand.GOMAXPROCS)
	for _, n := range notes {
		fmt.Printf("note: %s\n", n)
	}
	if len(regressions) == 0 {
		fmt.Printf("ok: %d experiments within thresholds\n", len(base.Experiments))
		return 0
	}
	for _, r := range regressions {
		fmt.Printf("REGRESSION %s\n", r)
	}
	fmt.Printf("%d regression(s)\n", len(regressions))
	return 1
}

func orNone(rev string) string {
	if rev == "" {
		return "unknown"
	}
	return rev
}
