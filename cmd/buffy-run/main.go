// Command buffy-run simulates a Buffy program concretely: it drives the
// interpreter with a generated or recorded workload and prints per-step
// observations — the quickest way to explore a model's behaviour before
// turning a question into a solver query.
//
//	buffy-run -T 8 -param N=3 -workload constant:1 sched.buffy
//	buffy-run -T 8 -param N=3 -workload fqstarve sched.buffy
//	buffy-run -T 8 -param N=3 -plan trace.json sched.buffy
//
// Workload spellings: constant:RATE, onoff:BURST:PERIOD, random:MAX,
// fqstarve.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"buffy/internal/core"
	"buffy/internal/workload"
)

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprintf("%v", map[string]int64(p)) }

func (p paramFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	v, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return err
	}
	p[parts[0]] = v
	return nil
}

func main() {
	params := paramFlags{}
	T := flag.Int("T", 8, "steps to simulate")
	wl := flag.String("workload", "constant:1", "constant:R | onoff:B:P | random:M | fqstarve")
	planPath := flag.String("plan", "", "JSON arrival plan (overrides -workload)")
	seed := flag.Int64("seed", 1, "seed for random workloads")
	flag.Var(params, "param", "compile-time parameter, name=value (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: buffy-run [flags] program.buffy")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := core.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	a := core.Analysis{T: *T, Params: params}

	// Discover the input buffer names via a probe run with no traffic.
	probe, err := prog.Simulate(core.Analysis{T: 1, Params: params}, nil)
	if err != nil {
		fatal(err)
	}
	inputs := probe.Inputs()

	var plan *workload.Plan
	switch {
	case *planPath != "":
		data, err := os.ReadFile(*planPath)
		if err != nil {
			fatal(err)
		}
		plan, err = workload.Unmarshal(data)
		if err != nil {
			fatal(err)
		}
	default:
		plan, err = buildWorkload(*wl, *T, inputs, *seed)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("simulating %s for %d steps over %d input buffer(s), %d packets\n",
		prog.Name(), *T, len(inputs), plan.Total())
	m, err := prog.Simulate(a, plan.Generator())
	if err != nil {
		fmt.Fprintf(os.Stderr, "buffy-run: execution stopped: %v\n", err)
	}
	if m == nil {
		os.Exit(1)
	}
	fmt.Println("\nfinal state:")
	var names []string
	names = append(names, m.Inputs()...)
	names = append(names, m.Outputs()...)
	for _, n := range names {
		b := m.Buffer(n)
		fmt.Printf("  backlog(%s) = %d   dropped = %d\n", n, b.BacklogP(), b.Dropped)
	}
	if fails := m.Failures(); len(fails) > 0 {
		fmt.Printf("\n%d assert failure(s):\n", len(fails))
		for _, f := range fails {
			fmt.Printf("  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("\nall asserts held")
}

func buildWorkload(spec string, T int, inputs []string, seed int64) (*workload.Plan, error) {
	parts := strings.Split(spec, ":")
	arg := func(i, def int) int {
		if i < len(parts) {
			if v, err := strconv.Atoi(parts[i]); err == nil {
				return v
			}
		}
		return def
	}
	switch parts[0] {
	case "constant":
		return workload.ConstantRate(T, inputs, arg(1, 1)), nil
	case "onoff":
		return workload.OnOff(T, inputs, arg(1, 2), arg(2, 3)), nil
	case "random":
		return workload.Random(T, inputs, arg(1, 2), len(inputs), seed), nil
	case "fqstarve":
		if len(inputs) < 2 {
			return nil, fmt.Errorf("fqstarve needs at least 2 input buffers")
		}
		return workload.FQStarvation(T, inputs[0], inputs[1]), nil
	}
	return nil, fmt.Errorf("unknown workload %q", spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "buffy-run:", err)
	os.Exit(1)
}
