// buffy-lint runs the project-specific solver hot-path linter
// (internal/lint) over one or more package directories:
//
//	buffy-lint [dir ...]
//
// With no arguments it lints the CDCL core and its driver
// (internal/smt/sat, internal/smt/solver) — the directories CI pins.
// Findings print in compiler format (file:line:col: rule: message) and
// any finding exits 1, so the command slots directly into CI next to go
// vet and staticcheck.
package main

import (
	"fmt"
	"os"

	"buffy/internal/lint"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"internal/smt/sat", "internal/smt/solver"}
	}
	bad := false
	for _, dir := range dirs {
		issues, err := lint.Dir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "buffy-lint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, iss := range issues {
			fmt.Println(iss)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
