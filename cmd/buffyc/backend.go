package main

import (
	"fmt"
	"sort"
	"strings"
)

// backendModes is the backend/mode compatibility matrix: each analysis
// backend answers only its own query shapes, and asking one for a mode it
// cannot serve is a user error buffyc must reject up front (exit 1 with
// the supported set) rather than run a different backend silently.
var backendModes = map[string]map[string]bool{
	"smt": {
		"verify": true, "witness": true, "synth": true, "sweep": true,
		"smtlib": true, "invariants": true,
	},
	"netcalc": {"bound": true},
	"dafny":   {"dafny": true, "dafny-verify": true},
}

// defaultMode is the mode an explicit -backend implies when -mode is left
// at its default: the backend's canonical query.
var defaultMode = map[string]string{
	"smt":     "verify",
	"netcalc": "bound",
	"dafny":   "dafny",
}

// checkBackendMode validates an explicit -backend against the requested
// mode. An empty backend means "infer from mode" and always passes; "fmt"
// is pure front-end and accepts no backend at all.
func checkBackendMode(backend, mode string) error {
	if backend == "" {
		return nil
	}
	modes, ok := backendModes[backend]
	if !ok {
		return fmt.Errorf("unknown backend %q (want smt | netcalc | dafny)", backend)
	}
	if mode == "fmt" {
		return fmt.Errorf("mode fmt is pure front-end formatting and uses no analysis backend; drop -backend")
	}
	if !modes[mode] {
		supported := make([]string, 0, len(modes))
		for m := range modes {
			supported = append(supported, m)
		}
		sort.Strings(supported)
		return fmt.Errorf("backend %s cannot answer mode %s (supported: %s); see -backend for the other backends",
			backend, mode, strings.Join(supported, ", "))
	}
	return nil
}
