package main

import (
	"strings"
	"testing"
)

func TestCheckBackendMode(t *testing.T) {
	ok := [][2]string{
		{"", "verify"}, {"", "bound"}, {"", "fmt"},
		{"smt", "verify"}, {"smt", "witness"}, {"smt", "synth"},
		{"smt", "smtlib"}, {"smt", "invariants"},
		{"netcalc", "bound"},
		{"dafny", "dafny"}, {"dafny", "dafny-verify"},
	}
	for _, c := range ok {
		if err := checkBackendMode(c[0], c[1]); err != nil {
			t.Errorf("checkBackendMode(%q, %q) = %v, want nil", c[0], c[1], err)
		}
	}
	bad := [][2]string{
		{"netcalc", "verify"}, {"netcalc", "witness"}, {"netcalc", "fmt"},
		{"smt", "bound"}, {"smt", "dafny"},
		{"dafny", "bound"}, {"dafny", "verify"},
		{"z3", "verify"}, // unknown backend
	}
	for _, c := range bad {
		if err := checkBackendMode(c[0], c[1]); err == nil {
			t.Errorf("checkBackendMode(%q, %q) = nil, want error", c[0], c[1])
		}
	}
}

// The mismatch message must name the supported modes so the user can
// self-correct without reading source.
func TestMismatchMessageNamesSupportedModes(t *testing.T) {
	err := checkBackendMode("netcalc", "verify")
	if err == nil || !strings.Contains(err.Error(), "bound") {
		t.Errorf("error %v should name the supported mode \"bound\"", err)
	}
}

func TestDefaultModePerBackend(t *testing.T) {
	for backend, mode := range defaultMode {
		if err := checkBackendMode(backend, mode); err != nil {
			t.Errorf("default mode %q invalid for backend %q: %v", mode, backend, err)
		}
	}
}
