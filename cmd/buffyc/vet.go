package main

import (
	"fmt"
	"os"

	"buffy/internal/lang/sema"
	"buffy/internal/vet"
)

// runVet executes -mode vet: static analysis only, no solver. It prints
// every diagnostic with a source excerpt, reports the static verdict if
// one was decided, and exits 1 on error findings (or on warnings too
// with -vet-strict).
func runVet(filename, src string, opts sema.Options, strict bool) {
	res := vet.Source(src, opts)
	vet.Render(os.Stdout, filename, src, res)
	fmt.Printf("%s: vet %s\n", filename, vet.Summary(res))
	if res.Report.HasErrors() || (strict && !res.Report.Clean()) {
		os.Exit(1)
	}
}
