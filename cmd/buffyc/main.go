// Command buffyc is the Buffy compiler and analysis driver: it parses a
// Buffy program and runs one of the framework's back-ends against it.
//
//	buffyc -mode verify   -T 6 -param N=3 sched.buffy   # BMC: asserts hold?
//	buffyc -mode witness  -T 6 -param N=3 sched.buffy   # find a query witness
//	buffyc -mode sweep -maxT 8 -param N=3 sched.buffy   # minimal-horizon sweep
//	                                                     # on one warm session
//	buffyc -mode synth    -T 5 -param N=2 sched.buffy   # FPerf-style workload
//	buffyc -backend netcalc -param RATE=1 -param BURST=3 -param C=2 tbrl.buffy
//	                                                     # analytical bounds (µs)
//	buffyc -mode bound -crosscheck -T 6 ... tbrl.buffy   # + SMT differential
//	buffyc -mode dafny    -T 4 -param N=3 sched.buffy   # emit Dafny source
//	buffyc -mode dafny-verify -T 4 -param N=3 sched.buffy
//	buffyc -mode smtlib   -T 3 sched.buffy               # emit SMT-LIB v2
//	buffyc -mode invariants -param C=2 -param B=2 path.buffy
//	buffyc -mode fmt sched.buffy                         # canonical formatting
//	buffyc -mode vet -T 6 sched.buffy                    # static analysis only
//
// Vet (static analysis) runs parse -> typecheck -> abstract
// interpretation and prints structured diagnostics with source excerpts;
// exit status 1 when any error-severity finding exists, 0 otherwise
// (warnings and infos do not fail the invocation unless -vet-strict).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"buffy/internal/backend/smtbe"
	"buffy/internal/core"
	"buffy/internal/lang/ast"
	"buffy/internal/lang/sema"
	"buffy/internal/portfolio"
	"buffy/internal/session"
	"buffy/internal/smt/sat"
	"buffy/internal/telemetry"
	"buffy/internal/workload"
)

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprintf("%v", map[string]int64(p)) }

func (p paramFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	v, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("parameter %s: %v", parts[0], err)
	}
	p[parts[0]] = v
	return nil
}

func main() {
	params := paramFlags{}
	mode := flag.String("mode", "verify", "verify | witness | sweep | synth | bound | vet | dafny | dafny-verify | smtlib | invariants | fmt")
	backend := flag.String("backend", "", "analysis backend: smt | netcalc | dafny (default: inferred from -mode; an incompatible pairing is an error)")
	crossCheck := flag.Bool("crosscheck", false, "differentially validate the netcalc bounds against the SMT backend at horizon T (mode bound)")
	vetStrict := flag.Bool("vet-strict", false, "mode vet: exit nonzero on warnings too, not just errors (the CI corpus gate)")
	T := flag.Int("T", 4, "time horizon (steps)")
	maxT := flag.Int("maxT", 8, "mode sweep: deepest horizon to try (warm session capacity)")
	sweepWitness := flag.Bool("sweep-witness", false, "mode sweep: sweep the witness direction instead of verify")
	model := flag.String("model", "list", "buffer model: list | count | multiclass")
	width := flag.Int("width", 0, "solver integer bit width (default 12)")
	arrivals := flag.Int("arrivals", 0, "max arrivals per input buffer per step (default 1)")
	cap := flag.Int("cap", 0, "buffer capacity (default 8)")
	planOut := flag.String("trace-out", "", "save the discovered trace as a replayable arrival plan (JSON)")
	stats := flag.Bool("stats", false, "print solver effort statistics (conflicts, decisions, propagations)")
	showTrace := flag.Bool("trace", false, "record a span trace of the analysis pipeline and print the tree (parse, compile, bitblast, search)")
	traceJSON := flag.Bool("trace-json", false, "record a span trace and print it as OTLP-shaped JSON (the exporter's wire format) instead of the tree")
	explain := flag.Bool("explain", false, "record solver search introspection and render the report: effort timelines, restart/simplify marks, depth/LBD histograms, per-config breakdown")
	nPortfolio := flag.Int("portfolio", 0, "race N diversified solver configs, first conclusive answer wins (verify/witness; 0 = single solver)")
	maxConflicts := flag.Int64("max-conflicts", 0, "per-solve conflict budget (0 = unlimited; exhaustion reports unknown)")
	maxProps := flag.Int64("max-propagations", 0, "per-solve propagation budget, a CPU-effort proxy (0 = unlimited)")
	maxLearnt := flag.Int64("max-learnt-bytes", 0, "learnt-clause memory budget per solve, estimated bytes (0 = unlimited)")
	flag.Var(params, "param", "compile-time parameter, name=value (repeatable)")
	flag.Parse()

	// An explicit -backend with -mode left at its default implies the
	// backend's canonical mode (buffyc -backend netcalc == -mode bound);
	// an explicit incompatible pairing is rejected before any work.
	modeSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "mode" {
			modeSet = true
		}
	})
	if *backend != "" && !modeSet {
		if m, ok := defaultMode[*backend]; ok {
			*mode = m
		}
	}
	if err := checkBackendMode(*backend, *mode); err != nil {
		fatal(err)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: buffyc [flags] program.buffy")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	// Vet is pure front-end static analysis: it must render parse and
	// type errors as diagnostics instead of dying on them, and it works
	// with unbound parameters, so it branches before core.Parse and the
	// missing-params check.
	if *mode == "vet" {
		runVet(flag.Arg(0), string(src), sema.Options{
			T: *T, Params: params, Width: *width,
			ArrivalsPerStep: *arrivals, BufferCap: *cap,
		}, *vetStrict)
		return
	}

	// With -trace, every pipeline layer records spans into tr; the tree is
	// printed after the analysis (see printTrace). -trace-json records the
	// same spans but prints the exporter's OTLP JSON instead.
	ctx := context.Background()
	var tr *telemetry.Trace
	if *showTrace || *traceJSON {
		tr = telemetry.NewTraceN(flag.Arg(0), 4096)
		ctx = telemetry.WithTrace(ctx, tr)
	}

	// With -explain, a SearchRecorder rides the progress feed; the report
	// is rendered after the analysis (see printExplain).
	var rec *sat.SearchRecorder
	var progress *sat.Progress
	if *explain {
		progress = &sat.Progress{}
		rec = sat.NewSearchRecorder()
		progress.SetRecorder(rec)
	}

	_, psp := telemetry.StartSpan(ctx, "parse")
	prog, err := core.Parse(string(src))
	psp.End()
	if err != nil {
		fatal(err)
	}
	if missing := missingParams(prog, params); len(missing) > 0 && *mode != "fmt" {
		fatal(fmt.Errorf("program %s needs -param values for: %s",
			prog.Name(), strings.Join(missing, ", ")))
	}
	a := core.Analysis{
		T: *T, Params: params, Model: *model, Width: *width,
		ArrivalsPerStep: *arrivals, BufferCap: *cap,
		Portfolio:    *nPortfolio,
		MaxConflicts: *maxConflicts, MaxPropagations: *maxProps, MaxLearntBytes: *maxLearnt,
		Progress: progress,
	}

	switch *mode {
	case "verify":
		if a.Portfolio > 1 {
			runPortfolio(ctx, prog, a, false, *stats, *planOut, rec)
			printTrace(tr, *traceJSON)
			return
		}
		res, err := prog.VerifyContext(ctx, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %v (%.3fs, %d clauses, %d vars, %d conflicts)\n",
			prog.Name(), res.Status, res.Duration.Seconds(), res.NumClauses, res.NumVars, res.SatStats.Conflicts)
		printStats(*stats, res)
		if res.Trace != nil {
			fmt.Print(res.Trace)
			savePlan(*planOut, res.Trace)
		}
	case "witness":
		if a.Portfolio > 1 {
			runPortfolio(ctx, prog, a, true, *stats, *planOut, rec)
			printTrace(tr, *traceJSON)
			return
		}
		res, err := prog.FindWitnessContext(ctx, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %v (%.3fs)\n", prog.Name(), res.Status, res.Duration.Seconds())
		printStats(*stats, res)
		if res.Trace != nil {
			fmt.Print(res.Trace)
			savePlan(*planOut, res.Trace)
			if len(res.Trace.Vars) > 0 {
				fmt.Println("final monitors/globals:")
				last := res.Trace.Vars[len(res.Trace.Vars)-1]
				for name, v := range last {
					fmt.Printf("  %s = %d\n", name, v)
				}
			}
		}
	case "sweep":
		runSweep(ctx, prog, a, *maxT, *sweepWitness, *stats, *planOut)
	case "synth":
		res, err := prog.SynthesizeWorkloadContext(ctx, a)
		if err != nil {
			fatal(err)
		}
		if !res.Found {
			if res.Inconclusive {
				fmt.Printf("%s: synthesis inconclusive — solver budget exhausted (%d checks)\n",
					prog.Name(), res.Checks)
			} else {
				fmt.Printf("%s: no workload guarantees the query\n", prog.Name())
			}
			return
		}
		fmt.Printf("%s: workload synthesized in %.3fs (%d checks):\n  %v\n",
			prog.Name(), res.Duration.Seconds(), res.Checks, res.Workload)
	case "bound":
		a.CrossCheck = *crossCheck
		res, err := prog.BoundContext(ctx, a)
		if err != nil {
			fatal(err)
		}
		if !res.Bounded {
			fmt.Printf("%s: flow %s is unbounded — the topology offers it no service guarantee\n",
				prog.Name(), res.Victim)
		} else {
			fmt.Printf("%s: flow %s delay <= %s steps, backlog <= %s pkts (%v)\n",
				prog.Name(), res.Victim, res.Delay.RatString(), res.Backlog.RatString(), res.Duration)
		}
		for _, fb := range res.Flows {
			fmt.Printf("  %-8s %s\n", fb.Flow, fb.String())
		}
		if cc := res.CrossCheck; cc != nil {
			fmt.Printf("cross-check: %s at T=%d (%v)\n", cc.Status, cc.T, cc.Duration)
		}
	case "dafny":
		out, err := prog.GenerateDafny(a)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "dafny-verify":
		res, err := prog.VerifyDafny(a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: verified=%v (%.3fs, %d VCs)\n",
			prog.Name(), res.Verified, res.Duration.Seconds(), len(res.VCs))
		for _, vc := range res.VCs {
			status := "ok"
			if !vc.Holds {
				status = "FAILS"
			}
			fmt.Printf("  assert at %v (step %d): %s (%.3fs)\n", vc.Pos, vc.Step, status, vc.Duration.Seconds())
		}
	case "fmt":
		fmt.Print(ast.Format(prog.Info.Prog))
	case "smtlib":
		out, err := prog.SMTLib(a)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "invariants":
		res, err := prog.InferInvariants(a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: Houdini kept %d of %d candidates (%d rounds, %d checks, %.3fs)\n",
			prog.Name(), len(res.Survivors), len(res.Survivors)+len(res.Dropped),
			res.Rounds, res.Checks, res.Duration.Seconds())
		for _, c := range res.Survivors {
			fmt.Printf("  invariant: %s\n", c.Name)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	printExplain(rec, "")
	printTrace(tr, *traceJSON)
}

// printTrace renders the recorded span tree after the analysis output (a
// no-op without -trace/-trace-json). With asJSON it prints the exporter's
// OTLP wire format instead, so `buffyc -trace-json | jq` shows exactly
// what buffy-serve -otlp-endpoint would push to a collector.
func printTrace(tr *telemetry.Trace, asJSON bool) {
	if tr == nil {
		return
	}
	snap := tr.Snapshot()
	if asJSON {
		req := telemetry.OTLPExportRequest{ResourceSpans: []telemetry.OTLPResourceSpans{
			telemetry.OTLPFromView(snap, telemetry.String("service.name", "buffyc")),
		}}
		data, err := json.MarshalIndent(req, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Print(snap.Render())
}

// printExplain renders the -explain search report after the analysis
// output (a no-op without -explain or when no solver ran). winner names
// the portfolio config that produced the answer, "" outside a race.
func printExplain(rec *sat.SearchRecorder, winner string) {
	rep := rec.Report()
	if rep == nil || rep.Totals.Solves == 0 {
		return
	}
	rep.Winner = winner
	for i := range rep.Configs {
		if rep.Configs[i].Name != "" && rep.Configs[i].Name == winner {
			rep.Configs[i].Winner = true
		}
	}
	fmt.Print(rep.Render())
}

func missingParams(p *core.Program, have map[string]int64) []string {
	var out []string
	for _, name := range p.Params() {
		if _, ok := have[name]; !ok {
			out = append(out, name)
		}
	}
	return out
}

// runSweep answers -mode sweep: solve horizons 1..maxT in order on one
// warm solver session (assumption-based re-solve, learnt clauses shared
// across horizons) until a trace appears, printing each horizon's verdict
// as it lands. Programs whose encoding shape depends on T fall back to
// cold per-horizon solves — same answers, no reuse.
func runSweep(ctx context.Context, prog *core.Program, a core.Analysis, maxT int, witness, stats bool, planOut string) {
	mode := smtbe.Verify
	if witness {
		mode = smtbe.Witness
	}
	sr, err := prog.SweepContext(ctx, a, core.SweepOptions{
		MaxT: maxT, Mode: mode,
		OnVerdict: func(v session.Verdict) {
			how := "warm"
			if !v.Warm {
				how = "cold"
			}
			fmt.Printf("  T=%-3d %-15v %8.3fs  %s (%d conflicts)\n",
				v.T, v.Status, v.Duration.Seconds(), how, v.Conflicts)
		},
	})
	if err != nil {
		fatal(err)
	}
	switch {
	case sr.FoundAt > 0:
		fmt.Printf("%s: %v at minimal horizon T=%d (%.3fs total)\n",
			prog.Name(), sr.Final.Status, sr.FoundAt, sr.Duration.Seconds())
	default:
		fmt.Printf("%s: %v up to T=%d (%.3fs total)\n",
			prog.Name(), sr.Final.Status, maxT, sr.Duration.Seconds())
	}
	printStats(stats, sr.Final)
	if sr.Final.Trace != nil {
		fmt.Print(sr.Final.Trace)
		savePlan(planOut, sr.Final.Trace)
	}
}

// runPortfolio races -portfolio diversified solver configurations on a
// verify or witness query, reporting the winning configuration and each
// config's search effort before rendering the winner's trace as usual.
func runPortfolio(ctx context.Context, prog *core.Program, a core.Analysis, witness, stats bool, planOut string, rec *sat.SearchRecorder) {
	var pr *portfolio.Result
	var err error
	if witness {
		pr, err = prog.FindWitnessPortfolioContext(ctx, a)
	} else {
		pr, err = prog.VerifyPortfolioContext(ctx, a)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %v (portfolio of %d, winner %s, %.3fs wall)\n",
		prog.Name(), pr.Status, len(pr.Runs), pr.Winner, pr.WallClock.Seconds())
	for _, run := range pr.Runs {
		marker := " "
		if run.Name == pr.Winner {
			marker = "*"
		}
		fmt.Printf(" %s %-14s %-8v %.3fs", marker, run.Name, run.Status, run.Duration.Seconds())
		if stats {
			fmt.Printf("  conflicts=%d decisions=%d restarts=%d",
				run.Stats.Conflicts, run.Stats.Decisions, run.Stats.Restarts)
		}
		if run.Err != "" {
			fmt.Printf("  error=%s", run.Err)
		}
		fmt.Println()
	}
	printExplain(rec, pr.Winner)
	printStats(stats, pr.Result)
	if pr.Trace != nil {
		fmt.Print(pr.Trace)
		savePlan(planOut, pr.Trace)
	}
}

// printStats renders the solver-effort counters behind the -stats flag,
// and always explains an Unknown outcome's stop reason (which budget was
// exhausted, or that the deadline/cancellation fired).
func printStats(enabled bool, res *smtbe.Result) {
	if res != nil && res.Status == smtbe.Unknown && res.Stop.String() != "" {
		if res.Stop.Budget() {
			fmt.Printf("search stopped: %s budget exhausted (raise -max-conflicts / -max-propagations / -max-learnt-bytes to search further)\n", res.Stop)
		} else {
			fmt.Printf("search stopped: %s\n", res.Stop)
		}
	}
	if !enabled || res == nil {
		return
	}
	s := res.SatStats
	fmt.Printf("solver stats: conflicts=%d decisions=%d propagations=%d restarts=%d learnt=%d removed=%d\n",
		s.Conflicts, s.Decisions, s.Propagations, s.Restarts, s.Learnt, s.Removed)
	fmt.Printf("encoding: %d clauses, %d vars\n", res.NumClauses, res.NumVars)
}

// savePlan writes a trace's arrivals as a buffy-run replayable plan.
func savePlan(path string, tr *smtbe.Trace) {
	if path == "" {
		return
	}
	data, err := workload.FromTrace(tr).Marshal()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("trace saved as arrival plan: %s (replay with buffy-run -plan)\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "buffyc:", err)
	os.Exit(1)
}
