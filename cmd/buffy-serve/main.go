// Command buffy-serve runs Buffy as a long-lived analysis service: an
// HTTP JSON API in front of the internal/service job engine, with a
// bounded worker pool, a content-addressed result cache, per-job
// deadlines and graceful drain on SIGINT/SIGTERM.
//
//	buffy-serve -addr :8080 -workers 8 -queue 128 -cache 512 -timeout 60s
//
//	curl -s localhost:8080/v1/witness -d '{"source":"...", "t":6, "params":{"N":3}}'
//	curl -s localhost:8080/v1/verify?async=1 -d @req.json   # 202 + job ID
//	curl -s localhost:8080/v1/jobs/j00000001
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"buffy/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solver worker pool size (default GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job queue depth")
	cacheN := flag.Int("cache", 256, "result cache entries (0 default, <0 disables)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
	retries := flag.Int("retries", 1, "max retries for transient failures (budget exhaustion, panic, disagreement)")
	backoff := flag.Duration("retry-backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: buffy-serve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	engine := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		DefaultTimeout: *timeout,
		MaxRetries:     *retries,
		RetryBackoff:   *backoff,
	})
	server := &http.Server{Addr: *addr, Handler: service.NewHandler(engine)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	log.Printf("buffy-serve listening on %s (workers=%d queue=%d cache=%d timeout=%v)",
		*addr, *workers, *queue, *cacheN, *timeout)

	select {
	case err := <-errc:
		log.Fatalf("buffy-serve: %v", err)
	case <-ctx.Done():
	}

	// Drain order matters for the probe split: fail readiness first (so
	// balancers stop routing here), drain the engine while the HTTP
	// server KEEPS serving — /healthz/ready answers 503, /healthz/live
	// answers 200, in-flight synchronous handlers finish, new submits get
	// 503 + Retry-After — and only then take the listener down.
	engine.BeginDrain()
	log.Printf("buffy-serve: draining (budget %v)...", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := engine.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("buffy-serve: engine drain: %v", err)
	}
	// Engine drained (or force-cancelled at the budget): flush remaining
	// handlers — including the 503s a forced drain wakes — and exit.
	flushCtx, flushCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer flushCancel()
	if err := server.Shutdown(flushCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("buffy-serve: connection flush: %v", err)
	}
	log.Printf("buffy-serve: bye")
}
