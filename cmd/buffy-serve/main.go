// Command buffy-serve runs Buffy as a long-lived analysis service: an
// HTTP JSON API in front of the internal/service job engine, with a
// bounded worker pool, a content-addressed result cache, per-job
// deadlines and graceful drain on SIGINT/SIGTERM.
//
//	buffy-serve -addr :8080 -workers 8 -queue 128 -cache 512 -timeout 60s
//
//	curl -s localhost:8080/v1/witness -d '{"source":"...", "t":6, "params":{"N":3}}'
//	curl -s localhost:8080/v1/verify?async=1 -d @req.json   # 202 + job ID
//	curl -s localhost:8080/v1/jobs/j00000001
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"buffy/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solver worker pool size (default GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job queue depth")
	cacheN := flag.Int("cache", 256, "result cache entries (0 default, <0 disables)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: buffy-serve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	engine := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		DefaultTimeout: *timeout,
	})
	server := &http.Server{Addr: *addr, Handler: service.NewHandler(engine)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	log.Printf("buffy-serve listening on %s (workers=%d queue=%d cache=%d timeout=%v)",
		*addr, *workers, *queue, *cacheN, *timeout)

	select {
	case err := <-errc:
		log.Fatalf("buffy-serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("buffy-serve: draining (budget %v)...", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Printf("buffy-serve: http shutdown: %v", err)
	}
	if err := engine.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("buffy-serve: engine drain: %v", err)
	}
	// A forced engine drain wakes synchronous handlers that still need to
	// write their 503s; give the HTTP server a moment to flush them before
	// the process exits.
	flushCtx, flushCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer flushCancel()
	if err := server.Shutdown(flushCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("buffy-serve: connection flush: %v", err)
	}
	log.Printf("buffy-serve: bye")
}
