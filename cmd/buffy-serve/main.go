// Command buffy-serve runs Buffy as a long-lived analysis service: an
// HTTP JSON API in front of the internal/service job engine, with a
// bounded worker pool, a content-addressed result cache, per-job
// deadlines, span tracing, structured logs and graceful drain on
// SIGINT/SIGTERM.
//
//	buffy-serve -addr :8080 -workers 8 -queue 128 -cache 512 -timeout 60s
//
//	curl -s localhost:8080/v1/witness -d '{"source":"...", "t":6, "params":{"N":3}}'
//	curl -sN localhost:8080/v1/sweep -d '{"source":"...", "max_t":8, "sweep_mode":"witness"}'
//	                                                        # NDJSON verdict stream
//	curl -s localhost:8080/v1/verify?async=1 -d @req.json   # 202 + job ID
//	curl -s localhost:8080/v1/jobs/j00000001
//	curl -s localhost:8080/v1/jobs/j00000001/trace          # span tree
//	curl -s localhost:8080/v1/jobs/j00000001/progress       # live solver effort
//	curl -s localhost:8080/v1/traces                        # recent traces
//	curl -s localhost:8080/metrics
//
// Profiling is opt-in: -pprof-addr 127.0.0.1:6060 serves net/http/pprof
// on a separate listener (keep it off the public address).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"buffy/internal/service"
	"buffy/internal/store"
	"buffy/internal/telemetry"
)

// validateSizing rejects zero/negative pool and store sizes at startup
// with a clear error, instead of letting a typo'd flag select library
// defaults (0) or disable a subsystem (<0) silently.
func validateSizing(sessions int, sessionBytes, storeBytes int64) error {
	if sessions <= 0 {
		return fmt.Errorf("-sessions must be positive (got %d)", sessions)
	}
	if sessionBytes <= 0 {
		return fmt.Errorf("-session-bytes must be positive (got %d)", sessionBytes)
	}
	if storeBytes <= 0 {
		return fmt.Errorf("-store-bytes must be positive (got %d)", storeBytes)
	}
	return nil
}

// validateExport rejects malformed OTLP endpoints at startup, same
// fail-fast discipline as validateSizing: a typo'd collector URL should
// refuse to boot, not silently drop every trace batch at runtime. (The
// spool dir is validated by telemetry.NewExporter, which probes it by
// creating the spool file.)
func validateExport(endpoint string) error {
	if endpoint == "" {
		return nil
	}
	return telemetry.ValidateEndpoint(endpoint)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solver worker pool size (default GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job queue depth")
	cacheN := flag.Int("cache", 256, "result cache entries (0 default, <0 disables)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
	retries := flag.Int("retries", 1, "max retries for transient failures (budget exhaustion, panic, disagreement)")
	backoff := flag.Duration("retry-backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt)")
	sessions := flag.Int("sessions", 32, "warm-session pool entries for /v1/sweep (must be positive)")
	sessionBytes := flag.Int64("session-bytes", 256<<20, "warm-session pool memory budget, estimated bytes (must be positive)")
	storeDir := flag.String("store-dir", "", "durable result store directory (empty disables the disk cache tier)")
	storeBytes := flag.Int64("store-bytes", 1<<30, "durable result store byte budget, LRU-evicted beyond it (must be positive)")
	traceSpans := flag.Int("trace-spans", 0, "max spans per job trace (0 default, <0 disables tracing)")
	traceKeep := flag.Int("trace-retention", 128, "finished traces kept for /v1/traces")
	otlpEndpoint := flag.String("otlp-endpoint", "", "OTLP/HTTP traces URL to push finished job traces to, e.g. http://localhost:4318/v1/traces (empty disables)")
	traceDir := flag.String("trace-dir", "", "directory for OTLP-shaped NDJSON trace spool files (empty disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: buffy-serve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if err := validateSizing(*sessions, *sessionBytes, *storeBytes); err != nil {
		fmt.Fprintf(os.Stderr, "buffy-serve: %v\n", err)
		os.Exit(2)
	}
	if err := validateExport(*otlpEndpoint); err != nil {
		fmt.Fprintf(os.Stderr, "buffy-serve: %v\n", err)
		os.Exit(2)
	}

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "buffy-serve: %v\n", err)
		os.Exit(2)
	}

	var exporter *telemetry.Exporter
	if *otlpEndpoint != "" || *traceDir != "" {
		exporter, err = telemetry.NewExporter(telemetry.ExportOptions{
			Endpoint: *otlpEndpoint,
			Dir:      *traceDir,
			Resource: []telemetry.Attr{
				telemetry.String("service.name", "buffy-serve"),
				telemetry.String("service.version", service.Version),
			},
			OnError: func(err error) { logger.Warn("trace export", "err", err.Error()) },
		})
		if err != nil {
			// Same deployment-error stance as a bad store dir: an unwritable
			// spool dir fails startup instead of dropping every batch later.
			fmt.Fprintf(os.Stderr, "buffy-serve: %v\n", err)
			os.Exit(2)
		}
		logger.Info("trace export enabled", "otlp_endpoint", *otlpEndpoint, "trace_dir", *traceDir)
	}

	var resultStore *store.Store
	if *storeDir != "" {
		resultStore, err = store.Open(store.Options{
			Dir:         *storeDir,
			Fingerprint: service.PipelineFingerprint(),
			MaxBytes:    *storeBytes,
			Logger:      logger,
		})
		if err != nil {
			// A misconfigured store dir is a deployment error: failing fast
			// beats silently running ephemeral.
			fmt.Fprintf(os.Stderr, "buffy-serve: %v\n", err)
			os.Exit(1)
		}
		logger.Info("durable result store open", "dir", *storeDir,
			"budget_bytes", *storeBytes, "read_only", resultStore.ReadOnly())
	}

	engine := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheN,
		DefaultTimeout:  *timeout,
		MaxRetries:      *retries,
		RetryBackoff:    *backoff,
		Logger:          logger,
		TraceSpans:      *traceSpans,
		TraceRetention:  *traceKeep,
		SessionEntries:  *sessions,
		SessionMaxBytes: *sessionBytes,
		Store:           resultStore,
		Exporter:        exporter,
	})
	handler := service.WithRequestLogging(logger, service.NewHandler(engine))
	server := &http.Server{Addr: *addr, Handler: handler}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener so profiling is never
		// reachable through the public API address.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				logger.Error("pprof server failed", "err", err.Error())
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	logger.Info("buffy-serve listening", "addr", *addr, "version", service.Version,
		"workers", *workers, "queue", *queue, "cache", *cacheN, "timeout", timeout.String())

	select {
	case err := <-errc:
		logger.Error("server failed", "err", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain order matters for the probe split: fail readiness first (so
	// balancers stop routing here), drain the engine while the HTTP
	// server KEEPS serving — /healthz/ready answers 503, /healthz/live
	// answers 200, in-flight synchronous handlers finish, new submits get
	// 503 + Retry-After — and only then take the listener down.
	engine.BeginDrain()
	logger.Info("draining", "budget", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := engine.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("engine drain incomplete", "err", err.Error())
	}
	// Engine drained (or force-cancelled at the budget): flush remaining
	// handlers — including the 503s a forced drain wakes — and exit.
	flushCtx, flushCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer flushCancel()
	if err := server.Shutdown(flushCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("connection flush failed", "err", err.Error())
	}
	// Workers are drained, so no new traces can arrive: flush whatever the
	// export queue still holds and close the spool.
	exporter.Close()
	logger.Info("bye")
}

// newLogger builds the process logger from the -log-format/-log-level
// flags. Logs go to stderr, keeping stdout clean for tooling.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q", format)
}
