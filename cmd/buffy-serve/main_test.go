package main

import (
	"strings"
	"testing"
)

func TestValidateSizing(t *testing.T) {
	cases := []struct {
		name         string
		sessions     int
		sessionBytes int64
		storeBytes   int64
		wantErr      string // substring; "" means valid
	}{
		{"defaults", 32, 256 << 20, 1 << 30, ""},
		{"minimal", 1, 1, 1, ""},
		{"zero sessions", 0, 256 << 20, 1 << 30, "-sessions"},
		{"negative sessions", -1, 256 << 20, 1 << 30, "-sessions"},
		{"zero session bytes", 32, 0, 1 << 30, "-session-bytes"},
		{"negative session bytes", 32, -5, 1 << 30, "-session-bytes"},
		{"zero store bytes", 32, 256 << 20, 0, "-store-bytes"},
		{"negative store bytes", 32, 256 << 20, -1, "-store-bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateSizing(tc.sessions, tc.sessionBytes, tc.storeBytes)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateSizing = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateSizing accepted invalid value, want error naming %s", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %s", err, tc.wantErr)
			}
		})
	}
}
