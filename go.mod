module buffy

go 1.22
