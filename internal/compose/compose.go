// Package compose implements Buffy's program composition (§3
// "Composition"): programs are wired together by connecting an output
// buffer of one to an input buffer of another, and at the end of every
// time step the contents of each connected output are flushed into the
// corresponding input, becoming visible at the next step. The user writes
// no plumbing code — declaring the connection is enough, exactly as the
// paper promises ("Buffy will augment programs to implement the mechanics
// of the composition").
//
// This is the machinery behind the CCAC case study (§6.2): the congestion
// control algorithm, the path server and the fixed-delay server are three
// independent Buffy programs composed through their buffers (Figure 7).
package compose

import (
	"fmt"
	"time"

	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/sat"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// Conn is one buffer connection.
type Conn struct {
	FromProg, FromBuf string // output buffer instance, e.g. "path", "pab"
	ToProg, ToBuf     string // input buffer instance, e.g. "delay", "din"
}

// System is a set of Buffy programs composed through buffer connections.
type System struct {
	b        *term.Builder
	machines map[string]*ir.Machine
	order    []string
	conns    []Conn
	// connectedIn marks input instances that receive flushes (and thus no
	// external symbolic arrivals).
	connectedIn  map[string]map[string]bool
	connectedOut map[string]map[string]bool

	ctx     *buffer.Ctx
	assumes []*term.Term
	steps   int
}

// NewSystem returns an empty system building terms in b.
func NewSystem(b *term.Builder) *System {
	s := &System{
		b:            b,
		machines:     make(map[string]*ir.Machine),
		connectedIn:  make(map[string]map[string]bool),
		connectedOut: make(map[string]map[string]bool),
	}
	s.ctx = &buffer.Ctx{
		B:      b,
		Assume: func(t *term.Term) { s.assumes = append(s.assumes, t) },
		Prefix: "compose",
	}
	return s
}

// Add instantiates a program in the system under its own name.
// opts.NoArrivals is forced: the system controls arrival injection per
// input buffer.
func (s *System) Add(info *typecheck.Info, opts ir.Options) (*ir.Machine, error) {
	return s.AddInstance(info.Prog.Name, info, opts)
}

// AddInstance instantiates a program under an explicit instance name,
// allowing the same program to appear several times (e.g. chaining D
// one-step delay stages for a delay of D). Instance names must be unique;
// they also namespace the instance's symbolic variables.
func (s *System) AddInstance(name string, info *typecheck.Info, opts ir.Options) (*ir.Machine, error) {
	if _, dup := s.machines[name]; dup {
		return nil, fmt.Errorf("compose: instance %q added twice", name)
	}
	opts.NoArrivals = true
	opts.NamePrefix = name
	m, err := ir.NewMachine(info, s.b, opts)
	if err != nil {
		return nil, err
	}
	s.machines[name] = m
	s.order = append(s.order, name)
	s.connectedIn[name] = make(map[string]bool)
	s.connectedOut[name] = make(map[string]bool)
	return m, nil
}

// Machine returns a program's machine by name.
func (s *System) Machine(prog string) *ir.Machine { return s.machines[prog] }

// Connect wires fromProg's output buffer instance to toProg's input buffer
// instance.
func (s *System) Connect(fromProg, fromBuf, toProg, toBuf string) error {
	from, ok := s.machines[fromProg]
	if !ok {
		return fmt.Errorf("compose: unknown program %q", fromProg)
	}
	to, ok := s.machines[toProg]
	if !ok {
		return fmt.Errorf("compose: unknown program %q", toProg)
	}
	if !contains(from.OutputNames(), fromBuf) {
		return fmt.Errorf("compose: %s has no output buffer %q", fromProg, fromBuf)
	}
	if !contains(to.InputNames(), toBuf) {
		return fmt.Errorf("compose: %s has no input buffer %q", toProg, toBuf)
	}
	if s.connectedOut[fromProg][fromBuf] {
		return fmt.Errorf("compose: output %s.%s already connected", fromProg, fromBuf)
	}
	if s.connectedIn[toProg][toBuf] {
		return fmt.Errorf("compose: input %s.%s already connected", toProg, toBuf)
	}
	s.connectedOut[fromProg][fromBuf] = true
	s.connectedIn[toProg][toBuf] = true
	s.conns = append(s.conns, Conn{fromProg, fromBuf, toProg, toBuf})
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Run executes T composed steps: external inputs receive symbolic
// arrivals, every program runs its step, then connected outputs flush into
// their inputs (visible next step).
func (s *System) Run(T int) error {
	s.steps = T
	for t := 0; t < T; t++ {
		for _, name := range s.order {
			m := s.machines[name]
			var external []string
			for _, in := range m.InputNames() {
				if !s.connectedIn[name][in] {
					external = append(external, in)
				}
			}
			m.InjectArrivalsInto(t, external)
			if err := m.RunStepWith(t); err != nil {
				return fmt.Errorf("compose: %s step %d: %w", name, t, err)
			}
		}
		for _, c := range s.conns {
			src := s.machines[c.FromProg].Buffers()[c.FromBuf]
			dst := s.machines[c.ToProg].Buffers()[c.ToBuf]
			if err := src.FlushInto(s.ctx, dst); err != nil {
				return fmt.Errorf("compose: flush %s.%s -> %s.%s: %w",
					c.FromProg, c.FromBuf, c.ToProg, c.ToBuf, err)
			}
		}
	}
	return nil
}

// Assumes returns all accumulated assumptions: per-program semantics and
// assume() statements plus flush side constraints.
func (s *System) Assumes() []*term.Term {
	out := append([]*term.Term(nil), s.assumes...)
	for _, name := range s.order {
		out = append(out, s.machines[name].Assumes()...)
	}
	return out
}

// Asserts returns all assert instances across programs.
func (s *System) Asserts() []ir.AssertInst {
	var out []ir.AssertInst
	for _, name := range s.order {
		out = append(out, s.machines[name].Asserts()...)
	}
	return out
}

// Arrivals returns all symbolic external arrivals across programs.
func (s *System) Arrivals() []ir.Arrival {
	var out []ir.Arrival
	for _, name := range s.order {
		out = append(out, s.machines[name].Result().Arrivals...)
	}
	return out
}

// Ctx returns the system's buffer context (for building query terms over
// buffer states).
func (s *System) Ctx() *buffer.Ctx { return s.ctx }

// CheckResult is the outcome of a system-level query.
type CheckResult struct {
	Sat      bool
	Unknown  bool
	Solver   *solver.Solver
	Duration time.Duration
	SatStats sat.Stats
}

// CheckQuery decides whether some execution of the composed system
// satisfies the query term together with all assumptions and program
// asserts treated as assumptions (witness semantics). The solver must be
// the one whose builder the system was created with.
func (s *System) CheckQuery(sv *solver.Solver, query *term.Term) *CheckResult {
	start := time.Now()
	for _, a := range s.Assumes() {
		sv.Assert(a)
	}
	for _, a := range s.Asserts() {
		sv.Assert(s.b.Implies(a.Guard, a.Cond))
	}
	sv.Assert(query)
	r := sv.Check()
	return &CheckResult{
		Sat:      r == solver.Sat,
		Unknown:  r == solver.Unknown,
		Solver:   sv,
		Duration: time.Since(start),
		SatStats: sv.Stats(),
	}
}
