package compose

import (
	"buffy/internal/backend/smtbe"
	"buffy/internal/buffer"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// SystemTrace is a concrete execution of a composed system extracted from
// a solver model: per-program external arrivals and havoc values (enough
// to replay the run through interp.System), plus the final observables to
// compare against.
type SystemTrace struct {
	T int
	// Packets and Havocs are keyed by program name.
	Packets map[string][]smtbe.PacketEvent
	Havocs  map[string][]smtbe.HavocEvent
	// Final observables, keyed by program then buffer/variable name.
	Backlogs map[string]map[string]int64
	Dropped  map[string]map[string]int64
	Vars     map[string]map[string]int64
}

// ExtractTrace decodes the solver model of a composed run.
func (s *System) ExtractTrace(sv *solver.Solver) *SystemTrace {
	tr := &SystemTrace{
		T:        s.steps,
		Packets:  make(map[string][]smtbe.PacketEvent),
		Havocs:   make(map[string][]smtbe.HavocEvent),
		Backlogs: make(map[string]map[string]int64),
		Dropped:  make(map[string]map[string]int64),
		Vars:     make(map[string]map[string]int64),
	}
	ctx := &buffer.Ctx{B: s.b, Assume: func(*term.Term) {}, Prefix: "systrace"}
	for _, name := range s.order {
		m := s.machines[name]
		res := m.Result()
		for _, a := range res.Arrivals {
			if !sv.BoolValue(a.Valid) {
				continue
			}
			ev := smtbe.PacketEvent{Step: a.Step, Buffer: a.Buffer, Bytes: sv.IntValue(a.Bytes)}
			for _, f := range a.Fields {
				ev.Fields = append(ev.Fields, sv.IntValue(f))
			}
			tr.Packets[name] = append(tr.Packets[name], ev)
		}
		for _, h := range res.Havocs {
			ev := smtbe.HavocEvent{Step: h.Step, Name: h.Name}
			if h.Var.Sort() == term.Bool {
				ev.Bool = true
				if sv.BoolValue(h.Var) {
					ev.Value = 1
				}
			} else {
				ev.Value = sv.IntValue(h.Var)
			}
			tr.Havocs[name] = append(tr.Havocs[name], ev)
		}
		bl := make(map[string]int64)
		dr := make(map[string]int64)
		for bn, st := range m.Buffers() {
			bl[bn] = sv.IntValue(st.BacklogP(ctx))
			dr[bn] = sv.IntValue(st.Dropped())
		}
		tr.Backlogs[name] = bl
		tr.Dropped[name] = dr
		vars := make(map[string]int64)
		for _, vn := range m.VarNames() {
			v := sv.Value(m.Var(vn))
			if v.Sort == term.Bool {
				if v.Bool {
					vars[vn] = 1
				}
			} else {
				vars[vn] = v.Int
			}
		}
		tr.Vars[name] = vars
	}
	return tr
}
