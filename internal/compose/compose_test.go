package compose

import (
	"testing"

	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// Two chained one-step delay stages: a packet entering stage 1 at step t
// is in stage 2's output at end of step t+1.
func TestDelayChain(t *testing.T) {
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	sys := NewSystem(b)

	d1Info, err := qm.Load(`d1(buffer din, buffer dout){ move-p(din, dout, backlog-p(din)); }`)
	if err != nil {
		t.Fatal(err)
	}
	d2Info, err := qm.Load(`d2(buffer din, buffer dout){ move-p(din, dout, backlog-p(din)); }`)
	if err != nil {
		t.Fatal(err)
	}
	const T = 3
	if _, err := sys.Add(d1Info, ir.Options{T: T}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Add(d2Info, ir.Options{T: T}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Connect("d1", "dout", "d2", "din"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(T); err != nil {
		t.Fatal(err)
	}
	for _, a := range sys.Assumes() {
		sv.Assert(a)
	}
	// Force exactly one arrival, at step 0 into d1.din.
	arr := sys.Arrivals()
	for _, a := range arr {
		if a.Step == 0 {
			sv.Assert(a.Valid)
		} else {
			sv.Assert(b.Not(a.Valid))
		}
	}
	out := sys.Machine("d2").Buffers()["dout"]
	// After 3 steps the packet must have traversed both stages: it leaves
	// d1 during step 0, flushes into d2 at end of step 0, leaves d2 during
	// step 1, so dout holds 1 packet from step 1 on.
	sv.Assert(b.Neq(out.BacklogP(sys.Ctx()), b.IntConst(1)))
	if got := sv.Check(); got != solver.Unsat {
		t.Fatalf("delay chain semantics wrong: %v", got)
	}
}

func TestConnectValidation(t *testing.T) {
	sv := solver.New(solver.Options{})
	sys := NewSystem(sv.Builder())
	info, _ := qm.Load(`d1(buffer din, buffer dout){ move-p(din, dout, 1); }`)
	if _, err := sys.Add(info, ir.Options{T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Connect("nosuch", "dout", "d1", "din"); err == nil {
		t.Error("unknown source program accepted")
	}
	if err := sys.Connect("d1", "din", "d1", "din"); err == nil {
		t.Error("input used as connection source accepted")
	}
	if err := sys.Connect("d1", "dout", "d1", "dout"); err == nil {
		t.Error("output used as connection target accepted")
	}
	info2, _ := qm.Load(`d2(buffer din, buffer dout){ move-p(din, dout, 1); }`)
	if _, err := sys.Add(info2, ir.Options{T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Connect("d1", "dout", "d2", "din"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Connect("d1", "dout", "d2", "din"); err == nil {
		t.Error("double connection accepted")
	}
}

// CS2: the CCAC ack-burst scenario — the composed AIMD/path/delay system
// can reach packet loss at the bottleneck when the path server delays
// service and releases a burst.
func TestCCACLossWitness(t *testing.T) {
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	sys, err := BuildCCAC(b, CCACParams{C: 1, B: 1, IW: 2, K: 2, T: 8})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Sys.CheckQuery(sv, sys.Loss(b))
	if !res.Sat {
		t.Fatalf("expected a loss witness (ack burst); got unsat/unknown")
	}
	// Sanity: the witness actually shows drops at the bottleneck.
	dropped := sv.IntValue(sys.Path.Buffers()["pin"].Dropped())
	if dropped <= 0 {
		t.Errorf("witness has dropped = %d, want > 0", dropped)
	}
}

// With a deep bottleneck queue, the same horizon admits no loss.
func TestCCACNoLossWithDeepBuffer(t *testing.T) {
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	sys, err := BuildCCAC(b, CCACParams{C: 2, B: 2, IW: 2, K: 40, T: 6})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Sys.CheckQuery(sv, sys.Loss(b))
	if res.Sat {
		t.Fatalf("deep buffer should admit no loss in 6 steps")
	}
}

// The path server's token bucket really bounds throughput: delivered can
// never exceed C*T + B.
func TestCCACThroughputBound(t *testing.T) {
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	const C, B2, T = 2, 1, 6
	sys, err := BuildCCAC(b, CCACParams{C: C, B: B2, IW: 4, K: 20, T: T})
	if err != nil {
		t.Fatal(err)
	}
	bound := b.IntConst(int64(C*T + B2))
	res := sys.Sys.CheckQuery(sv, b.Lt(bound, sys.Delivered()))
	if res.Sat {
		t.Fatalf("token bucket violated: delivered > C*T+B is satisfiable (delivered=%d)",
			sv.IntValue(sys.Delivered()))
	}
}

// Monitors survive composition: delivered equals the ack sink's total plus
// in-flight acks... simpler: delivered is non-negative and bounded by what
// the CCA ever sent.
func TestCCACDeliveredNonNegative(t *testing.T) {
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	sys, err := BuildCCAC(b, CCACParams{C: 1, B: 1, IW: 1, K: 5, T: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Sys.CheckQuery(sv, b.Lt(sys.Delivered(), b.IntConst(0)))
	if res.Sat {
		t.Fatal("delivered went negative")
	}
}

// A program with no term-level connections still runs standalone in a
// system, and its arrivals are all external.
func TestStandaloneProgramInSystem(t *testing.T) {
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	sys := NewSystem(b)
	info, _ := qm.Load(qm.SPSrc)
	if _, err := sys.Add(info, ir.Options{T: 2, Params: map[string]int64{"N": 2}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Arrivals()); got != 4 { // 2 inputs x 2 steps x 1 slot
		t.Errorf("arrivals = %d, want 4", got)
	}
	for _, a := range sys.Assumes() {
		sv.Assert(a)
	}
	if got := sv.Check(); got != solver.Sat {
		t.Fatalf("standalone system should be satisfiable, got %v", got)
	}
	_ = term.Bool
}

// Two instances of the SAME program compose into a 2-step delay chain;
// instance naming keeps their symbolic state disjoint.
func TestSameProgramTwiceViaInstances(t *testing.T) {
	sv := solver.New(solver.Options{})
	b := sv.Builder()
	sys := NewSystem(b)
	info, err := qm.Load(qm.DelaySrc)
	if err != nil {
		t.Fatal(err)
	}
	const T = 3
	if _, err := sys.AddInstance("stage1", info, ir.Options{T: T}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddInstance("stage2", info, ir.Options{T: T}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddInstance("stage1", info, ir.Options{T: T}); err == nil {
		t.Fatal("duplicate instance name accepted")
	}
	if err := sys.Connect("stage1", "dout", "stage2", "din"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(T); err != nil {
		t.Fatal(err)
	}
	for _, a := range sys.Assumes() {
		sv.Assert(a)
	}
	for _, a := range sys.Arrivals() {
		if a.Step == 0 {
			sv.Assert(a.Valid)
		} else {
			sv.Assert(b.Not(a.Valid))
		}
	}
	out := sys.Machine("stage2").Buffers()["dout"]
	sv.Assert(b.Neq(out.BacklogP(sys.Ctx()), b.IntConst(1)))
	if got := sv.Check(); got != solver.Unsat {
		t.Fatalf("instance chain semantics wrong: %v", got)
	}
}

// A longer ack-path delay slows the control loop: at the same horizon the
// sender gets fewer acks, so delivered throughput shrinks monotonically
// with D.
func TestCCACLongerDelayLowersThroughput(t *testing.T) {
	maxDelivered := func(d int) int64 {
		// Find the largest achievable delivered count by binary probing.
		lo, hi := int64(0), int64(32)
		for lo < hi {
			mid := (lo + hi + 1) / 2
			sv := solver.New(solver.Options{})
			b := sv.Builder()
			sys, err := BuildCCAC(b, CCACParams{C: 2, B: 1, IW: 2, K: 12, T: 10, D: d})
			if err != nil {
				t.Fatal(err)
			}
			res := sys.Sys.CheckQuery(sv, b.Ge(sys.Delivered(), b.IntConst(mid)))
			if res.Sat {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	d1, d3 := maxDelivered(1), maxDelivered(4)
	if d1 <= d3 {
		t.Errorf("delivered with D=1 (%d) should exceed D=4 (%d)", d1, d3)
	}
}
