package compose

import (
	"fmt"

	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/term"
)

// CCACParams parameterizes the Figure 7 composition.
type CCACParams struct {
	C  int64 // path server rate (packets per step)
	B  int64 // token-bucket burst
	IW int64 // congestion control initial window
	K  int   // path server queue capacity (loss happens past it)
	T  int   // time horizon
	// D is the fixed delay in steps on the ack path (default 1),
	// realized by chaining D instances of the one-step delay program.
	D int
	// Model selects the buffer precision level; nil means count — the
	// CCAC-appropriate abstraction (§3: CCAC "uses a single integer
	// variable to represent the number of bytes present in the queue").
	Model buffer.Model
}

// CCACSystem is the composed CCA + path + delay model with its
// query-relevant handles.
type CCACSystem struct {
	Sys   *System
	AIMD  *ir.Machine
	Path  *ir.Machine
	Delay []*ir.Machine // the delay stages, ack-path order
}

// BuildCCAC assembles the CCAC model from the three Buffy programs in qm:
//
//	aimd.net --> path.pin; path.pab --> delay.din; delay.dout --> aimd.acks
//
// The CCA's app buffer is the only external input (application data).
func BuildCCAC(b *term.Builder, p CCACParams) (*CCACSystem, error) {
	if p.Model == nil {
		p.Model = buffer.CountModel{}
	}
	sys := NewSystem(b)
	aimdInfo, err := qm.Load(qm.AIMDSrc)
	if err != nil {
		return nil, fmt.Errorf("ccac: %w", err)
	}
	pathInfo, err := qm.Load(qm.PathServerSrc)
	if err != nil {
		return nil, fmt.Errorf("ccac: %w", err)
	}
	delayInfo, err := qm.Load(qm.DelaySrc)
	if err != nil {
		return nil, fmt.Errorf("ccac: %w", err)
	}

	big := p.T*4 + 16 // roomy capacity for non-loss buffers
	aimd, err := sys.Add(aimdInfo, ir.Options{
		Model: p.Model, T: p.T,
		Params:          map[string]int64{"IW": p.IW},
		BufferCap:       big,
		OutBufferCap:    big,
		ArrivalsPerStep: 2,
	})
	if err != nil {
		return nil, err
	}
	path, err := sys.Add(pathInfo, ir.Options{
		Model: p.Model, T: p.T,
		Params:       map[string]int64{"C": p.C, "B": p.B},
		BufferCap:    p.K, // pin: the lossy bottleneck queue
		OutBufferCap: big,
	})
	if err != nil {
		return nil, err
	}
	if p.D <= 0 {
		p.D = 1
	}
	var delays []*ir.Machine
	var stageNames []string
	for i := 0; i < p.D; i++ {
		name := "delay"
		if p.D > 1 {
			name = fmt.Sprintf("delay%d", i+1)
		}
		d, err := sys.AddInstance(name, delayInfo, ir.Options{
			Model: p.Model, T: p.T,
			BufferCap:    big,
			OutBufferCap: big,
		})
		if err != nil {
			return nil, err
		}
		delays = append(delays, d)
		stageNames = append(stageNames, name)
	}
	if err := sys.Connect("aimd", "net", "path", "pin"); err != nil {
		return nil, err
	}
	if err := sys.Connect("path", "pab", stageNames[0], "din"); err != nil {
		return nil, err
	}
	for i := 0; i+1 < len(stageNames); i++ {
		if err := sys.Connect(stageNames[i], "dout", stageNames[i+1], "din"); err != nil {
			return nil, err
		}
	}
	if err := sys.Connect(stageNames[len(stageNames)-1], "dout", "aimd", "acks"); err != nil {
		return nil, err
	}
	if err := sys.Run(p.T); err != nil {
		return nil, err
	}
	return &CCACSystem{Sys: sys, AIMD: aimd, Path: path, Delay: delays}, nil
}

// Loss returns the term "packets were dropped at the bottleneck queue" —
// the CCAC case study's query (§6.2: "the query (occurrence of loss)").
func (c *CCACSystem) Loss(b *term.Builder) *term.Term {
	dropped := c.Path.Buffers()["pin"].Dropped()
	return b.Lt(b.IntConst(0), dropped)
}

// Delivered returns the path server's cumulative delivered-packet monitor.
func (c *CCACSystem) Delivered() *term.Term {
	return c.Path.Var("delivered")
}
