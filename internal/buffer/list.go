package buffer

import (
	"fmt"

	"buffy/internal/smt/term"
)

// ListModel models a buffer as a bounded, ordered list of packets — the
// FPerf precision level. Packet identity, order, per-packet fields and
// per-packet byte sizes are all tracked exactly.
type ListModel struct{}

// Name implements Model.
func (ListModel) Name() string { return "list" }

// listState stores packets in packed slots: all valid slots precede all
// invalid ones, and packets leave from the front (slot 0) in FIFO order.
type listState struct {
	cfg     Config
	valid   []*term.Term   // bool per slot
	fields  [][]*term.Term // [slot][field] int
	bytes   []*term.Term   // int per slot
	dropped *term.Term
}

// Empty implements Model.
func (ListModel) Empty(c *Ctx, cfg Config) State {
	cfg = cfg.Normalize()
	s := &listState{cfg: cfg, dropped: c.B.IntConst(0)}
	zero := c.B.IntConst(0)
	for i := 0; i < cfg.Cap; i++ {
		s.valid = append(s.valid, c.B.False())
		fs := make([]*term.Term, cfg.NumFields)
		for f := range fs {
			fs[f] = zero
		}
		s.fields = append(s.fields, fs)
		s.bytes = append(s.bytes, zero)
	}
	return s
}

// Symbolic implements Model: fresh per-slot variables under the packed
// invariant (valid slots form a prefix), unit-or-larger byte sizes on
// valid slots, field values within the class bound, and a non-negative
// drop counter.
func (ListModel) Symbolic(c *Ctx, cfg Config, prefix string) State {
	cfg = cfg.Normalize()
	b := c.B
	s := &listState{cfg: cfg}
	for i := 0; i < cfg.Cap; i++ {
		v := b.Var(fmt.Sprintf("%s.slot%d.valid", prefix, i), term.Bool)
		s.valid = append(s.valid, v)
		if i > 0 {
			c.Assume(b.Implies(v, s.valid[i-1]))
		}
		fs := make([]*term.Term, cfg.NumFields)
		for f := range fs {
			fv := b.Var(fmt.Sprintf("%s.slot%d.f%d", prefix, i, f), term.Int)
			c.Assume(b.Le(b.IntConst(0), fv))
			c.Assume(b.Lt(fv, b.IntConst(int64(cfg.NumClasses))))
			fs[f] = fv
		}
		s.fields = append(s.fields, fs)
		by := b.Var(fmt.Sprintf("%s.slot%d.bytes", prefix, i), term.Int)
		c.Assume(b.Implies(v, b.Le(b.IntConst(1), by)))
		c.Assume(b.Implies(b.Not(v), b.Eq(by, b.IntConst(0))))
		c.Assume(b.Le(by, b.IntConst(int64(cfg.MaxBytes))))
		s.bytes = append(s.bytes, by)
	}
	d := b.Var(prefix+".dropped", term.Int)
	c.Assume(b.Le(b.IntConst(0), d))
	s.dropped = d
	return s
}

// Ite implements Model.
func (ListModel) Ite(c *Ctx, cond *term.Term, then, els State) State {
	a, b2 := then.(*listState), els.(*listState)
	if a.cfg.Cap != b2.cfg.Cap || a.cfg.NumFields != b2.cfg.NumFields {
		panic("buffer: Ite on differently-shaped list states")
	}
	out := &listState{cfg: a.cfg, dropped: c.B.Ite(cond, a.dropped, b2.dropped)}
	for i := 0; i < a.cfg.Cap; i++ {
		out.valid = append(out.valid, c.B.Ite(cond, a.valid[i], b2.valid[i]))
		fs := make([]*term.Term, a.cfg.NumFields)
		for f := range fs {
			fs[f] = c.B.Ite(cond, a.fields[i][f], b2.fields[i][f])
		}
		out.fields = append(out.fields, fs)
		out.bytes = append(out.bytes, c.B.Ite(cond, a.bytes[i], b2.bytes[i]))
	}
	return out
}

func (s *listState) Model() Model   { return ListModel{} }
func (s *listState) Config() Config { return s.cfg }

func (s *listState) Clone() State {
	out := &listState{cfg: s.cfg, dropped: s.dropped}
	out.valid = append([]*term.Term(nil), s.valid...)
	out.bytes = append([]*term.Term(nil), s.bytes...)
	for _, fs := range s.fields {
		out.fields = append(out.fields, append([]*term.Term(nil), fs...))
	}
	return out
}

func (s *listState) Dropped() *term.Term { return s.dropped }

func boolToInt(b *term.Builder, t *term.Term) *term.Term {
	return b.Ite(t, b.IntConst(1), b.IntConst(0))
}

func (s *listState) count(c *Ctx) *term.Term {
	terms := make([]*term.Term, len(s.valid))
	for i, v := range s.valid {
		terms[i] = boolToInt(c.B, v)
	}
	return c.B.Add(terms...)
}

// BacklogP implements State.
func (s *listState) BacklogP(c *Ctx) *term.Term { return s.count(c) }

// BacklogB implements State.
func (s *listState) BacklogB(c *Ctx) *term.Term {
	terms := make([]*term.Term, len(s.valid))
	for i, v := range s.valid {
		terms[i] = c.B.Ite(v, s.bytes[i], c.B.IntConst(0))
	}
	return c.B.Add(terms...)
}

func (s *listState) matchMask(c *Ctx, f *Filter) []*term.Term {
	mask := make([]*term.Term, len(s.valid))
	for i := range s.valid {
		m := s.valid[i]
		if f != nil {
			m = c.B.And(m, c.B.Eq(s.fields[i][f.Field], f.Value))
		}
		mask[i] = m
	}
	return mask
}

// FilterBacklogP implements State.
func (s *listState) FilterBacklogP(c *Ctx, f Filter) (*term.Term, error) {
	if f.Field < 0 || f.Field >= s.cfg.NumFields {
		return nil, fmt.Errorf("buffer: field index %d out of range", f.Field)
	}
	mask := s.matchMask(c, &f)
	terms := make([]*term.Term, len(mask))
	for i, m := range mask {
		terms[i] = boolToInt(c.B, m)
	}
	return c.B.Add(terms...), nil
}

// FilterBacklogB implements State.
func (s *listState) FilterBacklogB(c *Ctx, f Filter) (*term.Term, error) {
	if f.Field < 0 || f.Field >= s.cfg.NumFields {
		return nil, fmt.Errorf("buffer: field index %d out of range", f.Field)
	}
	mask := s.matchMask(c, &f)
	terms := make([]*term.Term, len(mask))
	for i, m := range mask {
		terms[i] = c.B.Ite(m, s.bytes[i], c.B.IntConst(0))
	}
	return c.B.Add(terms...), nil
}

// move is the shared implementation of MoveP/MoveB: want[i] marks the
// packets that leave the receiver and are appended, in order, to dst.
func (s *listState) move(c *Ctx, dst State, want []*term.Term) error {
	d, ok := dst.(*listState)
	if !ok {
		return fmt.Errorf("buffer: cannot move between %s and %s states", s.Model().Name(), dst.Model().Name())
	}
	if d == s {
		return fmt.Errorf("buffer: move source and destination are the same buffer")
	}
	b := c.B
	zero := b.IntConst(0)

	// Moved packets, compacted in order: moved slot k holds the k-th
	// wanted packet.
	movedCount := zero
	wantRank := make([]*term.Term, len(want)) // # wanted before i
	for i, w := range want {
		wantRank[i] = movedCount
		movedCount = b.Add(movedCount, boolToInt(b, w))
	}
	selMoved := func(k int, proj func(i int) *term.Term) *term.Term {
		out := zero
		for i := len(want) - 1; i >= 0; i-- {
			hit := b.And(want[i], b.Eq(wantRank[i], b.IntConst(int64(k))))
			out = b.Ite(hit, proj(i), out)
		}
		return out
	}

	// Compact the receiver: keep = valid && !want.
	keep := make([]*term.Term, len(s.valid))
	keepRank := make([]*term.Term, len(s.valid))
	keepCount := zero
	for i := range s.valid {
		keep[i] = b.And(s.valid[i], b.Not(want[i]))
		keepRank[i] = keepCount
		keepCount = b.Add(keepCount, boolToInt(b, keep[i]))
	}
	newValid := make([]*term.Term, s.cfg.Cap)
	newFields := make([][]*term.Term, s.cfg.Cap)
	newBytes := make([]*term.Term, s.cfg.Cap)
	for j := 0; j < s.cfg.Cap; j++ {
		newValid[j] = b.Lt(b.IntConst(int64(j)), keepCount)
		selKeep := func(proj func(i int) *term.Term) *term.Term {
			out := zero
			for i := len(keep) - 1; i >= 0; i-- {
				hit := b.And(keep[i], b.Eq(keepRank[i], b.IntConst(int64(j))))
				out = b.Ite(hit, proj(i), out)
			}
			return out
		}
		fs := make([]*term.Term, s.cfg.NumFields)
		for f := 0; f < s.cfg.NumFields; f++ {
			f := f
			fs[f] = selKeep(func(i int) *term.Term { return s.fields[i][f] })
		}
		newFields[j] = fs
		newBytes[j] = selKeep(func(i int) *term.Term { return s.bytes[i] })
	}

	// Append the moved packets to dst (which may be the same shape but a
	// different capacity). Drops happen past dst capacity.
	dCount := d.count(c)
	dValid := make([]*term.Term, d.cfg.Cap)
	dFields := make([][]*term.Term, d.cfg.Cap)
	dBytes := make([]*term.Term, d.cfg.Cap)
	nf := d.cfg.NumFields
	if nf > s.cfg.NumFields {
		nf = s.cfg.NumFields
	}
	for j := 0; j < d.cfg.Cap; j++ {
		jT := b.IntConst(int64(j))
		isOld := b.Lt(jT, dCount)
		appIdx := b.Sub(jT, dCount) // index into the moved sequence
		isNew := b.And(b.Not(isOld), b.Lt(appIdx, movedCount))
		dValid[j] = b.Or(d.valid[j], isNew)
		selApp := func(proj func(i int) *term.Term) *term.Term {
			out := zero
			for k := len(want) - 1; k >= 0; k-- {
				hit := b.Eq(appIdx, b.IntConst(int64(k)))
				out = b.Ite(hit, selMoved(k, proj), out)
			}
			return out
		}
		fs := make([]*term.Term, d.cfg.NumFields)
		for f := 0; f < d.cfg.NumFields; f++ {
			f := f
			var app *term.Term
			if f < nf {
				app = selApp(func(i int) *term.Term { return s.fields[i][f] })
			} else {
				app = zero
			}
			fs[f] = b.Ite(isNew, app, d.fields[j][f])
		}
		dFields[j] = fs
		dBytes[j] = b.Ite(isNew, selApp(func(i int) *term.Term { return s.bytes[i] }), d.bytes[j])
	}
	// Packets that did not fit into dst are dropped there.
	overflow := b.Sub(b.Add(dCount, movedCount), b.IntConst(int64(d.cfg.Cap)))
	overflow = b.Max(overflow, zero)
	d.dropped = b.Add(d.dropped, overflow)

	s.valid, s.fields, s.bytes = newValid, newFields, newBytes
	d.valid, d.fields, d.bytes = dValid, dFields, dBytes
	return nil
}

// MoveP implements State: move the first min(n, matched) matching packets.
func (s *listState) MoveP(c *Ctx, dst State, n *term.Term, f *Filter, g *term.Term) error {
	if f != nil && (f.Field < 0 || f.Field >= s.cfg.NumFields) {
		return fmt.Errorf("buffer: field index %d out of range", f.Field)
	}
	b := c.B
	mask := s.matchMask(c, f)
	want := make([]*term.Term, len(mask))
	rank := b.IntConst(0)
	for i, m := range mask {
		want[i] = b.And(g, m, b.Lt(rank, n))
		rank = b.Add(rank, boolToInt(b, m))
	}
	return s.move(c, dst, want)
}

// MoveB implements State: move the maximal matching prefix whose cumulative
// byte size is at most n.
func (s *listState) MoveB(c *Ctx, dst State, n *term.Term, f *Filter, g *term.Term) error {
	if f != nil && (f.Field < 0 || f.Field >= s.cfg.NumFields) {
		return fmt.Errorf("buffer: field index %d out of range", f.Field)
	}
	b := c.B
	mask := s.matchMask(c, f)
	want := make([]*term.Term, len(mask))
	cum := b.IntConst(0)
	for i, m := range mask {
		cum = b.Add(cum, b.Ite(m, s.bytes[i], b.IntConst(0)))
		want[i] = b.And(g, m, b.Le(cum, n))
	}
	return s.move(c, dst, want)
}

// Arrive implements State.
func (s *listState) Arrive(c *Ctx, p Packet, g *term.Term) {
	b := c.B
	cnt := s.count(c)
	fits := b.Lt(cnt, b.IntConst(int64(s.cfg.Cap)))
	place := b.And(g, fits)
	for j := 0; j < s.cfg.Cap; j++ {
		here := b.And(place, b.Eq(cnt, b.IntConst(int64(j))))
		s.valid[j] = b.Or(s.valid[j], here)
		for f := 0; f < s.cfg.NumFields; f++ {
			var fv *term.Term
			if f < len(p.Fields) {
				fv = p.Fields[f]
			} else {
				fv = b.IntConst(0)
			}
			s.fields[j][f] = b.Ite(here, fv, s.fields[j][f])
		}
		bytes := p.Bytes
		if bytes == nil {
			bytes = b.IntConst(1)
		}
		s.bytes[j] = b.Ite(here, bytes, s.bytes[j])
	}
	s.dropped = b.Add(s.dropped, b.Ite(b.And(g, b.Not(fits)), b.IntConst(1), b.IntConst(0)))
}

// FlushInto implements State.
func (s *listState) FlushInto(c *Ctx, dst State) error {
	want := make([]*term.Term, len(s.valid))
	copy(want, s.valid)
	return s.move(c, dst, want)
}

// Slots implements State.
func (s *listState) Slots() []Slot {
	var out []Slot
	for i := range s.valid {
		out = append(out, Slot{fmt.Sprintf("slot%d.valid", i), s.valid[i]})
		for f := range s.fields[i] {
			out = append(out, Slot{fmt.Sprintf("slot%d.f%d", i, f), s.fields[i][f]})
		}
		out = append(out, Slot{fmt.Sprintf("slot%d.bytes", i), s.bytes[i]})
	}
	out = append(out, Slot{"dropped", s.dropped})
	return out
}

// SetSlots implements State.
func (s *listState) SetSlots(ts []*term.Term) {
	k := 0
	for i := range s.valid {
		s.valid[i] = ts[k]
		k++
		for f := range s.fields[i] {
			s.fields[i][f] = ts[k]
			k++
		}
		s.bytes[i] = ts[k]
		k++
	}
	s.dropped = ts[k]
}

// MultiFilterBacklog counts packets (or bytes) matching ALL the given
// filters — chained `|>` views, exact only at this precision level.
func (s *listState) MultiFilterBacklog(c *Ctx, fs []Filter, bytes bool) (*term.Term, error) {
	for _, f := range fs {
		if f.Field < 0 || f.Field >= s.cfg.NumFields {
			return nil, fmt.Errorf("buffer: field index %d out of range", f.Field)
		}
	}
	b := c.B
	terms := make([]*term.Term, len(s.valid))
	for i := range s.valid {
		m := s.valid[i]
		for _, f := range fs {
			m = b.And(m, b.Eq(s.fields[i][f.Field], f.Value))
		}
		if bytes {
			terms[i] = b.Ite(m, s.bytes[i], b.IntConst(0))
		} else {
			terms[i] = boolToInt(b, m)
		}
	}
	return b.Add(terms...), nil
}
