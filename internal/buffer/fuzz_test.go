package buffer

import (
	"fmt"
	"math/rand"
	"testing"

	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// refBuffer is an obviously-correct slice-based reference implementation
// of the list model's semantics (FIFO, capacity drops, filtered prefix
// moves, byte-budget moves).
type refBuffer struct {
	cap     int
	pkts    [][2]int64 // (flow, bytes)
	dropped int64
}

func (r *refBuffer) arrive(flow, bytes int64) {
	if len(r.pkts) >= r.cap {
		r.dropped++
		return
	}
	r.pkts = append(r.pkts, [2]int64{flow, bytes})
}

func (r *refBuffer) backlogP() int64 { return int64(len(r.pkts)) }

func (r *refBuffer) backlogB() int64 {
	var n int64
	for _, p := range r.pkts {
		n += p[1]
	}
	return n
}

func (r *refBuffer) filterP(flow int64) int64 {
	var n int64
	for _, p := range r.pkts {
		if p[0] == flow {
			n++
		}
	}
	return n
}

// moveP moves the first n packets matching (flow or any when flow<0) to d.
func (r *refBuffer) moveP(d *refBuffer, n int64, flow int64) {
	var kept [][2]int64
	for _, p := range r.pkts {
		if n > 0 && (flow < 0 || p[0] == flow) {
			n--
			if len(d.pkts) < d.cap {
				d.pkts = append(d.pkts, p)
			} else {
				d.dropped++
			}
		} else {
			kept = append(kept, p)
		}
	}
	r.pkts = kept
}

// moveB moves the maximal matching prefix whose cumulative bytes fit in n.
func (r *refBuffer) moveB(d *refBuffer, n int64, flow int64) {
	var kept [][2]int64
	var cum int64
	for _, p := range r.pkts {
		match := flow < 0 || p[0] == flow
		if match {
			cum += p[1]
		}
		if match && cum <= n {
			if len(d.pkts) < d.cap {
				d.pkts = append(d.pkts, p)
			} else {
				d.dropped++
			}
		} else {
			kept = append(kept, p)
		}
	}
	r.pkts = kept
}

// TestListModelAgainstReference drives random op sequences through the
// symbolic list model (with concrete operands, so terms fold) and the
// reference implementation, comparing all observables after every op.
func TestListModelAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 40; iter++ {
		sv := solver.New(solver.Options{})
		c := &Ctx{B: sv.Builder(), Assume: sv.Assert, Prefix: "fuzz"}
		b := sv.Builder()
		capA, capB := 2+rng.Intn(5), 2+rng.Intn(5)
		symA := ListModel{}.Empty(c, Config{Cap: capA, MaxBytes: 4})
		symB := ListModel{}.Empty(c, Config{Cap: capB, MaxBytes: 4})
		refA := &refBuffer{cap: capA}
		refB := &refBuffer{cap: capB}

		check := func(opIdx int, op string) {
			t.Helper()
			pairs := []struct {
				sym State
				ref *refBuffer
				nm  string
			}{{symA, refA, "A"}, {symB, refB, "B"}}
			for _, pr := range pairs {
				if got := pr.sym.BacklogP(c); got.Kind() != term.KindIntConst || got.IntVal() != pr.ref.backlogP() {
					t.Fatalf("iter %d op %d (%s): backlogP(%s) = %s, want %d", iter, opIdx, op, pr.nm, got, pr.ref.backlogP())
				}
				if got := pr.sym.BacklogB(c); got.IntVal() != pr.ref.backlogB() {
					t.Fatalf("iter %d op %d (%s): backlogB(%s) = %s, want %d", iter, opIdx, op, pr.nm, got, pr.ref.backlogB())
				}
				for flow := int64(0); flow < 3; flow++ {
					got, err := pr.sym.FilterBacklogP(c, Filter{Field: 0, Value: b.IntConst(flow)})
					if err != nil {
						t.Fatal(err)
					}
					if got.IntVal() != pr.ref.filterP(flow) {
						t.Fatalf("iter %d op %d (%s): filter(%s,%d) = %s, want %d",
							iter, opIdx, op, pr.nm, flow, got, pr.ref.filterP(flow))
					}
				}
				if got := pr.sym.Dropped(); got.IntVal() != pr.ref.dropped {
					t.Fatalf("iter %d op %d (%s): dropped(%s) = %s, want %d", iter, opIdx, op, pr.nm, got, pr.ref.dropped)
				}
			}
		}

		for opIdx := 0; opIdx < 25; opIdx++ {
			var op string
			switch rng.Intn(4) {
			case 0, 1: // arrive at A
				op = "arrive"
				flow, bytes := int64(rng.Intn(3)), int64(1+rng.Intn(3))
				symA.Arrive(c, Packet{
					Fields: []*term.Term{b.IntConst(flow)}, Bytes: b.IntConst(bytes),
				}, b.True())
				refA.arrive(flow, bytes)
			case 2: // move-p A -> B, possibly filtered
				op = "move-p"
				n := int64(rng.Intn(4))
				flow := int64(rng.Intn(4)) - 1 // -1 = unfiltered
				var f *Filter
				if flow >= 0 {
					f = &Filter{Field: 0, Value: b.IntConst(flow)}
				}
				if err := symA.MoveP(c, symB, b.IntConst(n), f, b.True()); err != nil {
					t.Fatal(err)
				}
				refA.moveP(refB, n, flow)
			case 3: // move-b A -> B
				op = "move-b"
				n := int64(rng.Intn(6))
				flow := int64(rng.Intn(4)) - 1
				var f *Filter
				if flow >= 0 {
					f = &Filter{Field: 0, Value: b.IntConst(flow)}
				}
				if err := symA.MoveB(c, symB, b.IntConst(n), f, b.True()); err != nil {
					t.Fatal(err)
				}
				refA.moveB(refB, n, flow)
			}
			check(opIdx, op)
		}
	}
}

// TestCountModelConservation: under random guarded ops with symbolic
// guards, packets are conserved (arrivals = in-buffers + dropped).
func TestCountModelConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		sv := solver.New(solver.Options{})
		b := sv.Builder()
		c := &Ctx{B: b, Assume: sv.Assert, Prefix: "cc"}
		a := CountModel{}.Empty(c, Config{Cap: 3})
		d := CountModel{}.Empty(c, Config{Cap: 2})
		arrivals := b.IntConst(0)
		for op := 0; op < 8; op++ {
			guard := b.Var(fmt.Sprintf("g%d_%d", iter, op), term.Bool)
			if rng.Intn(2) == 0 {
				a.Arrive(c, Packet{Fields: []*term.Term{b.IntConst(0)}}, guard)
				// Count attempted arrivals that were admitted or dropped.
				arrivals = b.Add(arrivals, b.Ite(guard, b.IntConst(1), b.IntConst(0)))
			} else {
				if err := a.MoveP(c, d, b.IntConst(int64(rng.Intn(3))), nil, guard); err != nil {
					t.Fatal(err)
				}
			}
		}
		total := b.Add(a.BacklogP(c), d.BacklogP(c), a.Dropped(), d.Dropped())
		sv.Assert(b.Neq(total, arrivals))
		if got := sv.Check(); got != solver.Unsat {
			t.Fatalf("iter %d: conservation violated (%v)", iter, got)
		}
	}
}
