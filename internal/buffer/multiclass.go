package buffer

import (
	"fmt"

	"buffy/internal/smt/term"
)

// MultiClassModel models a buffer as one packet counter per traffic class
// (the class is packet field 0, bounded by Config.NumClasses). Filters on
// field 0 are exact. Packet order inside the buffer is abstracted away, so
// an unfiltered partial move cannot know which classes the departing FIFO
// prefix belongs to: it is encoded as a nondeterministic split across
// classes — every FIFO behaviour is included, which makes the model a
// sound overapproximation at much lower encoding cost than the list model.
type MultiClassModel struct{}

// Name implements Model.
func (MultiClassModel) Name() string { return "multiclass" }

type multiClassState struct {
	cfg     Config
	counts  []*term.Term // per class
	dropped *term.Term
}

// Empty implements Model.
func (MultiClassModel) Empty(c *Ctx, cfg Config) State {
	cfg = cfg.Normalize()
	s := &multiClassState{cfg: cfg, dropped: c.B.IntConst(0)}
	for i := 0; i < cfg.NumClasses; i++ {
		s.counts = append(s.counts, c.B.IntConst(0))
	}
	return s
}

// Symbolic implements Model: fresh non-negative per-class counters whose
// total respects the capacity, plus a non-negative drop counter.
func (MultiClassModel) Symbolic(c *Ctx, cfg Config, prefix string) State {
	cfg = cfg.Normalize()
	b := c.B
	s := &multiClassState{cfg: cfg}
	sum := b.IntConst(0)
	for i := 0; i < cfg.NumClasses; i++ {
		cnt := b.Var(fmt.Sprintf("%s.class%d", prefix, i), term.Int)
		c.Assume(b.Le(b.IntConst(0), cnt))
		s.counts = append(s.counts, cnt)
		sum = b.Add(sum, cnt)
	}
	c.Assume(b.Le(sum, b.IntConst(int64(cfg.Cap))))
	d := b.Var(prefix+".dropped", term.Int)
	c.Assume(b.Le(b.IntConst(0), d))
	s.dropped = d
	return s
}

// Ite implements Model.
func (MultiClassModel) Ite(c *Ctx, cond *term.Term, then, els State) State {
	a, b2 := then.(*multiClassState), els.(*multiClassState)
	out := &multiClassState{cfg: a.cfg, dropped: c.B.Ite(cond, a.dropped, b2.dropped)}
	for i := range a.counts {
		out.counts = append(out.counts, c.B.Ite(cond, a.counts[i], b2.counts[i]))
	}
	return out
}

func (s *multiClassState) Model() Model   { return MultiClassModel{} }
func (s *multiClassState) Config() Config { return s.cfg }

func (s *multiClassState) Clone() State {
	out := &multiClassState{cfg: s.cfg, dropped: s.dropped}
	out.counts = append([]*term.Term(nil), s.counts...)
	return out
}

func (s *multiClassState) Dropped() *term.Term { return s.dropped }

func (s *multiClassState) total(c *Ctx) *term.Term {
	return c.B.Add(s.counts...)
}

// BacklogP implements State.
func (s *multiClassState) BacklogP(c *Ctx) *term.Term { return s.total(c) }

// BacklogB implements State (unit-size packets).
func (s *multiClassState) BacklogB(c *Ctx) *term.Term { return s.total(c) }

func (s *multiClassState) classCount(c *Ctx, val *term.Term) *term.Term {
	out := c.B.IntConst(0)
	for cl := len(s.counts) - 1; cl >= 0; cl-- {
		out = c.B.Ite(c.B.Eq(val, c.B.IntConst(int64(cl))), s.counts[cl], out)
	}
	return out
}

func (s *multiClassState) checkFilter(f Filter) error {
	if f.Field != 0 {
		return fmt.Errorf("buffer: the multiclass model only tracks field 0 (the class field); filter on field %d needs the list model", f.Field)
	}
	return nil
}

// FilterBacklogP implements State.
func (s *multiClassState) FilterBacklogP(c *Ctx, f Filter) (*term.Term, error) {
	if err := s.checkFilter(f); err != nil {
		return nil, err
	}
	return s.classCount(c, f.Value), nil
}

// FilterBacklogB implements State.
func (s *multiClassState) FilterBacklogB(c *Ctx, f Filter) (*term.Term, error) {
	return s.FilterBacklogP(c, f)
}

// MoveP implements State.
func (s *multiClassState) MoveP(c *Ctx, dst State, n *term.Term, f *Filter, g *term.Term) error {
	d, ok := dst.(*multiClassState)
	if !ok {
		return fmt.Errorf("buffer: cannot move between %s and %s states", s.Model().Name(), dst.Model().Name())
	}
	if len(d.counts) != len(s.counts) {
		return fmt.Errorf("buffer: class count mismatch (%d vs %d)", len(s.counts), len(d.counts))
	}
	if d == s {
		return fmt.Errorf("buffer: move source and destination are the same buffer")
	}
	b := c.B
	zero := b.IntConst(0)

	if f != nil {
		if err := s.checkFilter(*f); err != nil {
			return err
		}
		// Filtered move: exact — take from the selected class only.
		avail := s.classCount(c, f.Value)
		moved := b.Ite(g, b.Max(zero, b.Min(n, avail)), zero)
		for cl := range s.counts {
			isCl := b.Eq(f.Value, b.IntConst(int64(cl)))
			take := b.Ite(isCl, moved, zero)
			s.counts[cl] = b.Sub(s.counts[cl], take)
		}
		s.deposit(c, d, func(cl int) *term.Term {
			return b.Ite(b.Eq(f.Value, b.IntConst(int64(cl))), moved, zero)
		}, moved)
		return nil
	}

	// Unfiltered move: order is abstracted, so the class split of the
	// departing packets is a fresh nondeterministic choice constrained to
	// be feasible. This includes every FIFO behaviour (soundness) but also
	// non-FIFO ones (overapproximation) — the price of the cheaper model.
	total := s.total(c)
	moved := b.Ite(g, b.Max(zero, b.Min(n, total)), zero)
	takes := make([]*term.Term, len(s.counts))
	sum := zero
	for cl := range s.counts {
		tk := c.FreshInt(fmt.Sprintf("mcmove.c%d", cl))
		c.Assume(b.Le(zero, tk))
		c.Assume(b.Le(tk, s.counts[cl]))
		takes[cl] = tk
		sum = b.Add(sum, tk)
	}
	c.Assume(b.Eq(sum, moved))
	for cl := range s.counts {
		s.counts[cl] = b.Sub(s.counts[cl], takes[cl])
	}
	s.deposit(c, d, func(cl int) *term.Term { return takes[cl] }, moved)
	return nil
}

// deposit adds per-class arrivals into d, dropping overflow past capacity
// (the dropped packets' class split is again nondeterministic but
// consistent).
func (s *multiClassState) deposit(c *Ctx, d *multiClassState, take func(cl int) *term.Term, moved *term.Term) {
	b := c.B
	zero := b.IntConst(0)
	free := b.Max(zero, b.Sub(b.IntConst(int64(d.cfg.Cap)), d.total(c)))
	accepted := b.Min(moved, free)
	overflow := b.Sub(moved, accepted)
	// Accepted per class: nondeterministic split of 'accepted' bounded by
	// what actually arrived per class.
	acc := make([]*term.Term, len(d.counts))
	sum := zero
	for cl := range d.counts {
		a := c.FreshInt(fmt.Sprintf("mcacc.c%d", cl))
		c.Assume(b.Le(zero, a))
		c.Assume(b.Le(a, take(cl)))
		acc[cl] = a
		sum = b.Add(sum, a)
	}
	c.Assume(b.Eq(sum, accepted))
	for cl := range d.counts {
		d.counts[cl] = b.Add(d.counts[cl], acc[cl])
	}
	d.dropped = b.Add(d.dropped, overflow)
}

// MoveB implements State (unit-size packets).
func (s *multiClassState) MoveB(c *Ctx, dst State, n *term.Term, f *Filter, g *term.Term) error {
	return s.MoveP(c, dst, n, f, g)
}

// Arrive implements State.
func (s *multiClassState) Arrive(c *Ctx, p Packet, g *term.Term) {
	b := c.B
	zero := b.IntConst(0)
	cls := zero
	if len(p.Fields) > 0 {
		cls = p.Fields[0]
	}
	fits := b.Lt(s.total(c), b.IntConst(int64(s.cfg.Cap)))
	place := b.And(g, fits)
	for cl := range s.counts {
		here := b.And(place, b.Eq(cls, b.IntConst(int64(cl))))
		s.counts[cl] = b.Add(s.counts[cl], b.Ite(here, b.IntConst(1), zero))
	}
	s.dropped = b.Add(s.dropped, b.Ite(b.And(g, b.Not(fits)), b.IntConst(1), zero))
}

// FlushInto implements State.
func (s *multiClassState) FlushInto(c *Ctx, dst State) error {
	d, ok := dst.(*multiClassState)
	if !ok {
		return fmt.Errorf("buffer: cannot flush between %s and %s states", s.Model().Name(), dst.Model().Name())
	}
	// Flushing everything needs no nondeterminism: per-class counts move
	// wholesale (subject to capacity).
	b := c.B
	zero := b.IntConst(0)
	moved := s.total(c)
	free := b.Max(zero, b.Sub(b.IntConst(int64(d.cfg.Cap)), d.total(c)))
	accepted := b.Min(moved, free)
	overflow := b.Sub(moved, accepted)
	acc := make([]*term.Term, len(d.counts))
	sum := zero
	for cl := range d.counts {
		a := c.FreshInt(fmt.Sprintf("mcflush.c%d", cl))
		c.Assume(b.Le(zero, a))
		c.Assume(b.Le(a, s.counts[cl]))
		acc[cl] = a
		sum = b.Add(sum, a)
	}
	c.Assume(b.Eq(sum, accepted))
	for cl := range d.counts {
		d.counts[cl] = b.Add(d.counts[cl], acc[cl])
		s.counts[cl] = zero
	}
	d.dropped = b.Add(d.dropped, overflow)
	return nil
}

// Slots implements State.
func (s *multiClassState) Slots() []Slot {
	var out []Slot
	for cl, t := range s.counts {
		out = append(out, Slot{fmt.Sprintf("class%d", cl), t})
	}
	out = append(out, Slot{"dropped", s.dropped})
	return out
}

// SetSlots implements State.
func (s *multiClassState) SetSlots(ts []*term.Term) {
	copy(s.counts, ts[:len(s.counts)])
	s.dropped = ts[len(s.counts)]
}
