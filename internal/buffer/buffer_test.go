package buffer

import (
	"testing"

	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// testCtx returns a Ctx whose assumptions are asserted into the solver.
func testCtx(s *solver.Solver) *Ctx {
	return &Ctx{B: s.Builder(), Assume: s.Assert, Prefix: "test"}
}

// constVal extracts the constant value of a term that should have folded.
func constVal(t *testing.T, tm *term.Term) int64 {
	t.Helper()
	if tm.Kind() != term.KindIntConst {
		t.Fatalf("term %s did not fold to a constant", tm)
	}
	return tm.IntVal()
}

func pkt(b *term.Builder, flow int64, bytes int64) Packet {
	return Packet{Fields: []*term.Term{b.IntConst(flow)}, Bytes: b.IntConst(bytes)}
}

func models() []Model {
	return []Model{ListModel{}, CountModel{}, MultiClassModel{}}
}

func TestEmptyBacklogs(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		st := m.Empty(c, Config{})
		if v := constVal(t, st.BacklogP(c)); v != 0 {
			t.Errorf("%s: empty backlog-p = %d", m.Name(), v)
		}
		if v := constVal(t, st.BacklogB(c)); v != 0 {
			t.Errorf("%s: empty backlog-b = %d", m.Name(), v)
		}
		if v := constVal(t, st.Dropped()); v != 0 {
			t.Errorf("%s: empty dropped = %d", m.Name(), v)
		}
	}
}

func TestArriveAndBacklog(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		st := m.Empty(c, Config{Cap: 4})
		st.Arrive(c, pkt(b, 1, 1), b.True())
		st.Arrive(c, pkt(b, 2, 1), b.True())
		st.Arrive(c, pkt(b, 1, 1), b.False()) // guard false: no arrival
		if v := constVal(t, st.BacklogP(c)); v != 2 {
			t.Errorf("%s: backlog-p = %d, want 2", m.Name(), v)
		}
	}
}

func TestCapacityDrop(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		st := m.Empty(c, Config{Cap: 2})
		for i := 0; i < 4; i++ {
			st.Arrive(c, pkt(b, int64(i%2), 1), b.True())
		}
		if v := constVal(t, st.BacklogP(c)); v != 2 {
			t.Errorf("%s: backlog = %d, want 2 (cap)", m.Name(), v)
		}
		if v := constVal(t, st.Dropped()); v != 2 {
			t.Errorf("%s: dropped = %d, want 2", m.Name(), v)
		}
	}
}

func TestMovePreservesPackets(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		src := m.Empty(c, Config{Cap: 4})
		dst := m.Empty(c, Config{Cap: 4})
		for i := 0; i < 3; i++ {
			src.Arrive(c, pkt(b, int64(i), 1), b.True())
		}
		if err := src.MoveP(c, dst, b.IntConst(2), nil, b.True()); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		// The multiclass unfiltered move is nondeterministic, so check
		// totals through the solver rather than constant folding.
		total := b.Add(src.BacklogP(c), dst.BacklogP(c))
		s.Assert(b.Neq(total, b.IntConst(3)))
		if got := s.Check(); got != solver.Unsat {
			t.Errorf("%s: packet conservation violated (src+dst != 3 is %v)", m.Name(), got)
		}
	}
}

func TestMoveMoreThanBacklog(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		src := m.Empty(c, Config{Cap: 4})
		dst := m.Empty(c, Config{Cap: 8})
		src.Arrive(c, pkt(b, 0, 1), b.True())
		if err := src.MoveP(c, dst, b.IntConst(5), nil, b.True()); err != nil {
			t.Fatal(err)
		}
		s.Assert(b.Or(
			b.Neq(src.BacklogP(c), b.IntConst(0)),
			b.Neq(dst.BacklogP(c), b.IntConst(1))))
		if got := s.Check(); got != solver.Unsat {
			t.Errorf("%s: move clamp failed (%v)", m.Name(), got)
		}
	}
}

func TestMoveGuardFalse(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		src := m.Empty(c, Config{Cap: 4})
		dst := m.Empty(c, Config{Cap: 4})
		src.Arrive(c, pkt(b, 0, 1), b.True())
		if err := src.MoveP(c, dst, b.IntConst(1), nil, b.False()); err != nil {
			t.Fatal(err)
		}
		s.Assert(b.Or(
			b.Neq(src.BacklogP(c), b.IntConst(1)),
			b.Neq(dst.BacklogP(c), b.IntConst(0))))
		if got := s.Check(); got != solver.Unsat {
			t.Errorf("%s: guarded move leaked (%v)", m.Name(), got)
		}
	}
}

func TestListFIFOOrder(t *testing.T) {
	s := solver.New(solver.Options{})
	c := testCtx(s)
	b := s.Builder()
	src := ListModel{}.Empty(c, Config{Cap: 4})
	dst := ListModel{}.Empty(c, Config{Cap: 4})
	// Arrive flows 5, 6, 7; move 2; dst should hold [5, 6], src [7].
	for _, fl := range []int64{5, 6, 7} {
		src.Arrive(c, pkt(b, fl, 1), b.True())
	}
	if err := src.MoveP(c, dst, b.IntConst(2), nil, b.True()); err != nil {
		t.Fatal(err)
	}
	d := dst.(*listState)
	sl := src.(*listState)
	if v := constVal(t, d.fields[0][0]); v != 5 {
		t.Errorf("dst[0] flow = %d, want 5", v)
	}
	if v := constVal(t, d.fields[1][0]); v != 6 {
		t.Errorf("dst[1] flow = %d, want 6", v)
	}
	if v := constVal(t, sl.fields[0][0]); v != 7 {
		t.Errorf("src[0] flow = %d, want 7 (compacted)", v)
	}
	if v := constVal(t, src.BacklogP(c)); v != 1 {
		t.Errorf("src backlog = %d, want 1", v)
	}
}

func TestFilteredBacklog(t *testing.T) {
	for _, m := range []Model{ListModel{}, MultiClassModel{}} {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		st := m.Empty(c, Config{Cap: 6, NumClasses: 4})
		for _, fl := range []int64{1, 2, 1, 1, 3} {
			st.Arrive(c, pkt(b, fl, 1), b.True())
		}
		n, err := st.FilterBacklogP(c, Filter{Field: 0, Value: b.IntConst(1)})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if v := constVal(t, n); v != 3 {
			t.Errorf("%s: filtered backlog = %d, want 3", m.Name(), v)
		}
	}
}

func TestFilteredMove(t *testing.T) {
	for _, m := range []Model{ListModel{}, MultiClassModel{}} {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		src := m.Empty(c, Config{Cap: 6, NumClasses: 4})
		dst := m.Empty(c, Config{Cap: 6, NumClasses: 4})
		for _, fl := range []int64{1, 2, 1, 3} {
			src.Arrive(c, pkt(b, fl, 1), b.True())
		}
		f := &Filter{Field: 0, Value: b.IntConst(1)}
		if err := src.MoveP(c, dst, b.IntConst(5), f, b.True()); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		dstFiltered, _ := dst.FilterBacklogP(c, *f)
		srcFiltered, _ := src.FilterBacklogP(c, *f)
		s.Assert(b.Or(
			b.Neq(dstFiltered, b.IntConst(2)),
			b.Neq(srcFiltered, b.IntConst(0)),
			b.Neq(src.BacklogP(c), b.IntConst(2))))
		if got := s.Check(); got != solver.Unsat {
			t.Errorf("%s: filtered move wrong (%v)", m.Name(), got)
		}
	}
}

func TestCountModelRejectsFilters(t *testing.T) {
	s := solver.New(solver.Options{})
	c := testCtx(s)
	b := s.Builder()
	st := CountModel{}.Empty(c, Config{})
	if _, err := st.FilterBacklogP(c, Filter{Field: 0, Value: b.IntConst(1)}); err == nil {
		t.Error("count model should reject filters")
	}
	dst := CountModel{}.Empty(c, Config{})
	f := &Filter{Field: 0, Value: b.IntConst(1)}
	if err := st.MoveP(c, dst, b.IntConst(1), f, b.True()); err == nil {
		t.Error("count model should reject filtered moves")
	}
}

func TestMoveBytes(t *testing.T) {
	s := solver.New(solver.Options{})
	c := testCtx(s)
	b := s.Builder()
	src := ListModel{}.Empty(c, Config{Cap: 4, MaxBytes: 10})
	dst := ListModel{}.Empty(c, Config{Cap: 4, MaxBytes: 10})
	// Packets of sizes 3, 4, 2: move-b 7 should take exactly the first two.
	src.Arrive(c, Packet{Fields: []*term.Term{b.IntConst(0)}, Bytes: b.IntConst(3)}, b.True())
	src.Arrive(c, Packet{Fields: []*term.Term{b.IntConst(0)}, Bytes: b.IntConst(4)}, b.True())
	src.Arrive(c, Packet{Fields: []*term.Term{b.IntConst(0)}, Bytes: b.IntConst(2)}, b.True())
	if err := src.MoveB(c, dst, b.IntConst(7), nil, b.True()); err != nil {
		t.Fatal(err)
	}
	if v := constVal(t, dst.BacklogB(c)); v != 7 {
		t.Errorf("dst bytes = %d, want 7", v)
	}
	if v := constVal(t, dst.BacklogP(c)); v != 2 {
		t.Errorf("dst packets = %d, want 2", v)
	}
	if v := constVal(t, src.BacklogB(c)); v != 2 {
		t.Errorf("src bytes = %d, want 2", v)
	}
}

func TestMoveBytesPrefixBlocked(t *testing.T) {
	// First packet is larger than the budget: nothing moves even though a
	// later packet would fit (prefix semantics — FIFO head blocks).
	s := solver.New(solver.Options{})
	c := testCtx(s)
	b := s.Builder()
	src := ListModel{}.Empty(c, Config{Cap: 4, MaxBytes: 10})
	dst := ListModel{}.Empty(c, Config{Cap: 4, MaxBytes: 10})
	src.Arrive(c, Packet{Fields: []*term.Term{b.IntConst(0)}, Bytes: b.IntConst(5)}, b.True())
	src.Arrive(c, Packet{Fields: []*term.Term{b.IntConst(0)}, Bytes: b.IntConst(1)}, b.True())
	if err := src.MoveB(c, dst, b.IntConst(3), nil, b.True()); err != nil {
		t.Fatal(err)
	}
	if v := constVal(t, dst.BacklogP(c)); v != 0 {
		t.Errorf("dst packets = %d, want 0 (head blocks)", v)
	}
}

func TestFlushInto(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		src := m.Empty(c, Config{Cap: 4})
		dst := m.Empty(c, Config{Cap: 8})
		for i := 0; i < 3; i++ {
			src.Arrive(c, pkt(b, int64(i), 1), b.True())
		}
		if err := src.FlushInto(c, dst); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		s.Assert(b.Or(
			b.Neq(src.BacklogP(c), b.IntConst(0)),
			b.Neq(dst.BacklogP(c), b.IntConst(3))))
		if got := s.Check(); got != solver.Unsat {
			t.Errorf("%s: flush wrong (%v)", m.Name(), got)
		}
	}
}

func TestIteMerge(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		st := m.Empty(c, Config{Cap: 4})
		thenSt := st.Clone()
		thenSt.Arrive(c, pkt(b, 1, 1), b.True())
		cond := b.Var(m.Name()+"_cond", term.Bool)
		merged := m.Ite(c, cond, thenSt, st)
		// backlog(merged) == cond ? 1 : 0
		s.Assert(b.Neq(merged.BacklogP(c), b.Ite(cond, b.IntConst(1), b.IntConst(0))))
		if got := s.Check(); got != solver.Unsat {
			t.Errorf("%s: ite merge wrong (%v)", m.Name(), got)
		}
	}
}

func TestSymbolicArrivalMove(t *testing.T) {
	// A symbolic packet arrives; the solver must be able to pick its flow
	// field so a filtered move succeeds.
	s := solver.New(solver.Options{})
	c := testCtx(s)
	b := s.Builder()
	src := ListModel{}.Empty(c, Config{Cap: 4})
	dst := ListModel{}.Empty(c, Config{Cap: 4})
	flow := b.Var("in_flow", term.Int)
	s.Assert(b.Le(b.IntConst(0), flow))
	s.Assert(b.Lt(flow, b.IntConst(4)))
	src.Arrive(c, Packet{Fields: []*term.Term{flow}, Bytes: b.IntConst(1)}, b.True())
	f := &Filter{Field: 0, Value: b.IntConst(2)}
	if err := src.MoveP(c, dst, b.IntConst(1), f, b.True()); err != nil {
		t.Fatal(err)
	}
	s.Assert(b.Eq(dst.BacklogP(c), b.IntConst(1)))
	if got := s.Check(); got != solver.Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if v := s.IntValue(flow); v != 2 {
		t.Errorf("flow = %d, want 2 (only value allowing the filtered move)", v)
	}
}

func TestSlotsRoundTrip(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		st := m.Empty(c, Config{Cap: 3})
		st.Arrive(c, pkt(b, 1, 2), b.True())
		slots := st.Slots()
		if len(slots) == 0 {
			t.Fatalf("%s: no slots", m.Name())
		}
		fresh := m.Empty(c, Config{Cap: 3})
		ts := make([]*term.Term, len(slots))
		for i, sl := range slots {
			ts[i] = sl.Term
		}
		fresh.SetSlots(ts)
		if got, want := constVal(t, fresh.BacklogP(c)), constVal(t, st.BacklogP(c)); got != want {
			t.Errorf("%s: slot round-trip backlog %d != %d", m.Name(), got, want)
		}
	}
}

func TestSelfMoveRejected(t *testing.T) {
	for _, m := range models() {
		s := solver.New(solver.Options{})
		c := testCtx(s)
		b := s.Builder()
		st := m.Empty(c, Config{Cap: 4})
		if err := st.MoveP(c, st, b.IntConst(1), nil, b.True()); err == nil {
			t.Errorf("%s: self-move should be rejected", m.Name())
		}
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"list", "count", "multiclass"} {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Errorf("ModelByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := ModelByName("nosuch"); err == nil {
		t.Error("expected error for unknown model")
	}
	if m, _ := ModelByName(""); m.Name() != "list" {
		t.Error("empty name should default to list")
	}
}
