// Package buffer implements Buffy's buffer models at the paper's different
// precision levels (§3 "Buffer models with varying precision"):
//
//   - ListModel: a buffer is a bounded list of packets with per-packet
//     field values and sizes — FPerf's precision level. Supports everything:
//     packet order, filters, byte-granularity moves.
//   - CountModel: a buffer is just a packet counter — CCAC's precision
//     level (unit-size packets, so byte backlog equals packet backlog).
//     Filters are not expressible at this level and are rejected.
//   - MultiClassModel: per-traffic-class packet counters (the paper's
//     "sets of integers each representing the total number of packets ...
//     from different traffic classes"). Filters on the class field are
//     exact; packet order within the buffer is abstracted, so unfiltered
//     partial moves become a nondeterministic class split (a sound
//     overapproximation of FIFO order).
//
// All models encode buffer state as terms, so the same Buffy program
// compiles against any model without modification — the language-level
// operations (backlog, filter, move, arrive, flush) are the Model/State
// interface below.
package buffer

import (
	"fmt"

	"buffy/internal/smt/term"
)

// Ctx carries what models need to emit encodings: the term builder, a sink
// for semantic side constraints (used by nondeterministic encodings), and a
// fresh-variable source.
type Ctx struct {
	B *term.Builder

	// Assume records a constraint that is part of the buffer semantics and
	// must hold in every considered execution.
	Assume func(t *term.Term)

	fresh int
	// Prefix distinguishes variable namespaces (e.g. program/step).
	Prefix string
}

// FreshInt returns a fresh integer variable.
func (c *Ctx) FreshInt(hint string) *term.Term {
	c.fresh++
	return c.B.Var(fmt.Sprintf("%s!%s#%d", c.Prefix, hint, c.fresh), term.Int)
}

// FreshBool returns a fresh boolean variable.
func (c *Ctx) FreshBool(hint string) *term.Term {
	c.fresh++
	return c.B.Var(fmt.Sprintf("%s!%s#%d", c.Prefix, hint, c.fresh), term.Bool)
}

// Config describes a buffer's shape.
type Config struct {
	// Cap is the maximum number of packets the buffer can hold; arrivals
	// and moves beyond it are dropped (and counted). For the list model it
	// is also the representation bound.
	Cap int
	// NumFields is the number of packet fields (≥1).
	NumFields int
	// NumClasses bounds field-0 values for the multiclass model:
	// classes are 0..NumClasses-1.
	NumClasses int
	// MaxBytes bounds a single packet's byte size (list model arrivals).
	MaxBytes int
}

// Packet is a symbolic packet: per-field values and a byte size.
type Packet struct {
	Fields []*term.Term // ints
	Bytes  *term.Term   // int >= 1
}

// Filter restricts an operation to packets whose field Field equals Value.
type Filter struct {
	Field int
	Value *term.Term
}

// Model constructs buffer states of one precision level.
type Model interface {
	Name() string
	// Empty returns a concretely-empty buffer state.
	Empty(c *Ctx, cfg Config) State
	// Symbolic returns a state of fresh variables constrained (via
	// c.Assume) to the model's reachable-state well-formedness invariant —
	// the starting point for inductive reasoning over arbitrary horizons.
	Symbolic(c *Ctx, cfg Config, prefix string) State
	// Ite merges two states of this model: cond ? then : els.
	Ite(c *Ctx, cond *term.Term, then, els State) State
}

// State is the symbolic contents of one buffer. Mutating methods update the
// receiver in place; use Clone before branching.
type State interface {
	Model() Model
	Config() Config
	Clone() State

	// BacklogP returns the number of packets currently in the buffer.
	BacklogP(c *Ctx) *term.Term
	// BacklogB returns the number of bytes currently in the buffer.
	BacklogB(c *Ctx) *term.Term
	// FilterBacklogP returns the packet count of the filtered view.
	FilterBacklogP(c *Ctx, f Filter) (*term.Term, error)
	// FilterBacklogB returns the byte count of the filtered view.
	FilterBacklogB(c *Ctx, f Filter) (*term.Term, error)

	// MoveP moves min(n, filtered backlog) packets from the receiver into
	// dst, under guard g (no effect where g is false). f may be nil.
	MoveP(c *Ctx, dst State, n *term.Term, f *Filter, g *term.Term) error
	// MoveB moves the maximal prefix of (filtered) packets whose total
	// size is at most n bytes, under guard g.
	MoveB(c *Ctx, dst State, n *term.Term, f *Filter, g *term.Term) error

	// Arrive appends one packet under guard g (dropped if full).
	Arrive(c *Ctx, p Packet, g *term.Term)
	// FlushInto moves the entire contents into dst (dst capacity applies)
	// and empties the receiver.
	FlushInto(c *Ctx, dst State) error

	// Dropped returns the cumulative count of packets dropped at this
	// buffer (capacity overflow) — the loss signal for queries.
	Dropped() *term.Term

	// Slots exposes the state's raw term slots for transition-system
	// construction: a stable, ordered list of (name, term) pairs that
	// fully determines the state.
	Slots() []Slot
	// SetSlots replaces the state from raw terms in Slots() order.
	SetSlots(ts []*term.Term)
}

// Slot is one named component of a buffer state.
type Slot struct {
	Name string
	Term *term.Term
}

// ModelByName returns a model by its name ("list", "count", "multiclass").
func ModelByName(name string) (Model, error) {
	switch name {
	case "list", "":
		return ListModel{}, nil
	case "count":
		return CountModel{}, nil
	case "multiclass":
		return MultiClassModel{}, nil
	}
	return nil, fmt.Errorf("buffer: unknown model %q", name)
}

// Normalize fills config defaults.
func (cfg Config) Normalize() Config {
	if cfg.Cap <= 0 {
		cfg.Cap = 8
	}
	if cfg.NumFields <= 0 {
		cfg.NumFields = 1
	}
	if cfg.NumClasses <= 0 {
		cfg.NumClasses = 4
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 4
	}
	return cfg
}
