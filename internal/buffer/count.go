package buffer

import (
	"fmt"

	"buffy/internal/smt/term"
)

// CountModel models a buffer as a single packet counter — the CCAC
// precision level. Packets are unit-sized (byte backlog equals packet
// backlog; move-b behaves like move-p), and packet contents are abstracted
// away entirely, so filters are not expressible: programs using filters
// must use the list or multiclass model (§3's precision trade-off).
type CountModel struct{}

// Name implements Model.
func (CountModel) Name() string { return "count" }

type countState struct {
	cfg     Config
	n       *term.Term // packets in buffer
	dropped *term.Term
}

// Empty implements Model.
func (CountModel) Empty(c *Ctx, cfg Config) State {
	cfg = cfg.Normalize()
	return &countState{cfg: cfg, n: c.B.IntConst(0), dropped: c.B.IntConst(0)}
}

// Symbolic implements Model: a fresh counter within [0, Cap] plus a
// non-negative drop counter.
func (CountModel) Symbolic(c *Ctx, cfg Config, prefix string) State {
	cfg = cfg.Normalize()
	b := c.B
	n := b.Var(prefix+".n", term.Int)
	c.Assume(b.Le(b.IntConst(0), n))
	c.Assume(b.Le(n, b.IntConst(int64(cfg.Cap))))
	d := b.Var(prefix+".dropped", term.Int)
	c.Assume(b.Le(b.IntConst(0), d))
	return &countState{cfg: cfg, n: n, dropped: d}
}

// Ite implements Model.
func (CountModel) Ite(c *Ctx, cond *term.Term, then, els State) State {
	a, b2 := then.(*countState), els.(*countState)
	return &countState{
		cfg:     a.cfg,
		n:       c.B.Ite(cond, a.n, b2.n),
		dropped: c.B.Ite(cond, a.dropped, b2.dropped),
	}
}

func (s *countState) Model() Model   { return CountModel{} }
func (s *countState) Config() Config { return s.cfg }
func (s *countState) Clone() State   { cp := *s; return &cp }

func (s *countState) Dropped() *term.Term { return s.dropped }

// BacklogP implements State.
func (s *countState) BacklogP(c *Ctx) *term.Term { return s.n }

// BacklogB implements State.
func (s *countState) BacklogB(c *Ctx) *term.Term { return s.n }

var errCountFilter = fmt.Errorf("buffer: the count model abstracts packet contents away and cannot evaluate filters; use the list or multiclass model")

// FilterBacklogP implements State.
func (s *countState) FilterBacklogP(c *Ctx, f Filter) (*term.Term, error) {
	return nil, errCountFilter
}

// FilterBacklogB implements State.
func (s *countState) FilterBacklogB(c *Ctx, f Filter) (*term.Term, error) {
	return nil, errCountFilter
}

// MoveP implements State.
func (s *countState) MoveP(c *Ctx, dst State, n *term.Term, f *Filter, g *term.Term) error {
	if f != nil {
		return errCountFilter
	}
	d, ok := dst.(*countState)
	if !ok {
		return fmt.Errorf("buffer: cannot move between %s and %s states", s.Model().Name(), dst.Model().Name())
	}
	if d == s {
		return fmt.Errorf("buffer: move source and destination are the same buffer")
	}
	b := c.B
	zero := b.IntConst(0)
	moved := b.Max(zero, b.Min(n, s.n)) // clamp to [0, backlog]
	moved = b.Ite(g, moved, zero)
	free := b.Sub(b.IntConst(int64(d.cfg.Cap)), d.n)
	accepted := b.Min(moved, b.Max(free, zero))
	s.n = b.Sub(s.n, moved)
	d.n = b.Add(d.n, accepted)
	d.dropped = b.Add(d.dropped, b.Sub(moved, accepted))
	return nil
}

// MoveB implements State: unit-size packets make bytes equal packets.
func (s *countState) MoveB(c *Ctx, dst State, n *term.Term, f *Filter, g *term.Term) error {
	return s.MoveP(c, dst, n, f, g)
}

// Arrive implements State.
func (s *countState) Arrive(c *Ctx, p Packet, g *term.Term) {
	b := c.B
	fits := b.Lt(s.n, b.IntConst(int64(s.cfg.Cap)))
	s.n = b.Add(s.n, b.Ite(b.And(g, fits), b.IntConst(1), b.IntConst(0)))
	s.dropped = b.Add(s.dropped, b.Ite(b.And(g, b.Not(fits)), b.IntConst(1), b.IntConst(0)))
}

// FlushInto implements State.
func (s *countState) FlushInto(c *Ctx, dst State) error {
	return s.MoveP(c, dst, s.n, nil, c.B.True())
}

// Slots implements State.
func (s *countState) Slots() []Slot {
	return []Slot{{"n", s.n}, {"dropped", s.dropped}}
}

// SetSlots implements State.
func (s *countState) SetSlots(ts []*term.Term) {
	s.n, s.dropped = ts[0], ts[1]
}
