package core

import (
	"context"

	"buffy/internal/backend/smtbe"
	"buffy/internal/session"
)

// SweepOptions configures a horizon sweep (see Sweep).
type SweepOptions struct {
	// MaxT is the deepest horizon to try.
	MaxT int
	// Mode is the query direction for every horizon (default Verify).
	Mode smtbe.Mode
	// OnVerdict, when non-nil, receives each horizon's verdict as it
	// lands (the streaming hook).
	OnVerdict func(session.Verdict)
}

// NewSession builds a warm solver session for this program with capacity
// maxT, ready to answer assumption-based queries (any mode, any horizon
// up to maxT) on one shared encoding. Returns session.ErrConstHorizon
// when the program's use of T forces per-horizon compilation; callers
// then sweep cold. The analysis' Progress is intentionally not baked in:
// sessions outlive requests, so progress attaches per query.
func (p *Program) NewSession(a Analysis, maxT int) (*session.Session, error) {
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	iro.T = maxT
	so := a.solverOptions()
	so.Progress = nil
	return session.New(p.Info, session.Options{IR: iro, Solver: so})
}

// Sweep runs the minimal-horizon search on a fresh warm session: solve
// horizons 1..MaxT in order until one produces a trace, re-solving one
// warm encoding under per-horizon assumptions instead of N cold solves.
func (p *Program) Sweep(a Analysis, opts SweepOptions) (*session.SweepResult, error) {
	return p.SweepContext(context.Background(), a, opts)
}

// SweepContext is Sweep with cooperative cancellation.
func (p *Program) SweepContext(ctx context.Context, a Analysis, opts SweepOptions) (*session.SweepResult, error) {
	sess, err := p.NewSession(a, opts.MaxT)
	if err != nil && err != session.ErrConstHorizon {
		return nil, err
	}
	return p.SweepWithSession(ctx, sess, a, opts)
}

// SweepWithSession is SweepContext over a caller-managed (possibly
// shared, possibly nil) session — the service's pooled entry point. A nil
// session sweeps cold; a session evicted mid-sweep degrades the remaining
// horizons to cold solves.
func (p *Program) SweepWithSession(ctx context.Context, sess *session.Session, a Analysis, opts SweepOptions) (*session.SweepResult, error) {
	if err := p.vetGate(ctx, a); err != nil {
		return nil, err
	}
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	return session.Sweep(ctx, p.Info, sess, session.SweepOptions{
		MaxT:      opts.MaxT,
		Mode:      opts.Mode,
		OnVerdict: opts.OnVerdict,
		Backend:   smtbe.Options{IR: iro, Solver: a.solverOptions()},
		Query:     session.Query{Progress: a.Progress},
	})
}
