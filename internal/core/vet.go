package core

// The static analysis tier (DESIGN.md "Analysis tiers"): an always-on
// pre-solve gate in every *Context entry point. Before a query is
// compiled and bit-blasted, the sema abstract interpreter gets a few
// microseconds to decide it outright — contradictory workloads and
// trivially-true queries short-circuit here, and the solver is never
// constructed. (Assert-free programs are NOT short-circuited: the SMT
// backend's "nothing to check" input error is the established contract
// for those, and the gate preserves it.) The tier is sound by
// construction: over-approximate abstract interpretation can only
// answer in the directions where over-approximation proves the claim
// (Verify -> Holds, Witness -> NoWitness); anything needing a concrete
// execution falls through to the SMT tier.

import (
	"context"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/lang/sema"
	"buffy/internal/telemetry"
)

// semaOptions derives the static-analyzer configuration from an
// Analysis, mirroring the ir bounds so the abstract semantics match what
// the solver would encode.
func (a Analysis) semaOptions() sema.Options {
	return sema.Options{
		T:               a.T,
		Params:          a.Params,
		BufferCap:       a.BufferCap,
		OutBufferCap:    a.OutBufferCap,
		ArrivalsPerStep: a.ArrivalsPerStep,
		MaxBytes:        a.MaxBytes,
		ListCap:         a.ListCap,
		Width:           a.Width,
	}
}

// Vet runs the static analyzer over the program with this analysis
// configuration and returns the full diagnostic report.
func (p *Program) Vet(a Analysis) *sema.Report {
	return sema.Analyze(p.Info, a.semaOptions())
}

// staticTier is the pre-solve gate. It returns a conclusive static
// result for the given query mode, or nil when the query needs a solver.
// The gate declines to run when the context is already done (the solver
// path reports cancellation uniformly) or when parameters are unbound
// (the ir path reports the missing binding as an error).
func (p *Program) staticTier(ctx context.Context, a Analysis, mode smtbe.Mode) *smtbe.Result {
	if ctx.Err() != nil {
		return nil
	}
	for _, name := range p.Info.Params {
		if _, ok := a.Params[name]; !ok {
			return nil
		}
	}
	_, span := telemetry.StartSpan(ctx, "vet")
	start := time.Now()
	rep := sema.Analyze(p.Info, a.semaOptions())
	v := rep.Verdict
	span.SetAttrs(
		telemetry.Int("diags", int64(len(rep.Diags))),
		telemetry.String("verdict", v.Reason))
	span.End()

	if v.Reason == sema.ReasonNoAsserts {
		// Let smtbe report its "program has no assert()" error; a silent
		// static Holds would mask a malformed query.
		return nil
	}
	var status smtbe.Status
	switch {
	case mode == smtbe.Verify && v.Verify == "holds":
		status = smtbe.Holds
	case mode == smtbe.Witness && v.Witness == "no-witness":
		status = smtbe.NoWitness
	default:
		return nil
	}
	return &smtbe.Result{
		Status:   status,
		Mode:     mode,
		Duration: time.Since(start),
		Tier:     "static",
	}
}

// vetGate rejects programs whose static analysis produced error-severity
// diagnostics (contradictory assumptions, unusable horizon) before an
// expensive backend runs. Used by the backends that cannot otherwise
// consume a static verdict (workload synthesis, bound computation).
func (p *Program) vetGate(ctx context.Context, a Analysis) error {
	if ctx.Err() != nil {
		return nil
	}
	for _, name := range p.Info.Params {
		if _, ok := a.Params[name]; !ok {
			return nil
		}
	}
	_, span := telemetry.StartSpan(ctx, "vet")
	rep := sema.Analyze(p.Info, a.semaOptions())
	span.SetAttrs(telemetry.Int("diags", int64(len(rep.Diags))))
	span.End()
	if rep.HasErrors() {
		var errDiags []sema.Diagnostic
		for _, d := range rep.Diags {
			if d.Severity == sema.Error {
				errDiags = append(errDiags, d)
			}
		}
		return &sema.VetError{Diags: errDiags}
	}
	return nil
}
