// Package core is Buffy's front door: it ties the language front-end, the
// buffer models, the compiler and every analysis back-end into the
// solver-agnostic workflow of Figure 2 — the user writes one imperative
// Buffy program (network functionality + traffic assumptions + queries)
// and picks an analysis; the framework picks the representation.
//
//	prog, _ := core.Parse(src)
//	res, _  := prog.FindWitness(core.Analysis{T: 6, Params: ...})
//	pr, _   := prog.VerifyPortfolio(core.Analysis{T: 6, Portfolio: 4}) // race solver configs
//	wl, _   := prog.SynthesizeWorkload(...)   // FPerf-style back-end
//	dfy, _  := prog.GenerateDafny(...)        // Dafny back-end (source)
//	ver, _  := prog.VerifyDafny(...)          // Dafny-style mini-verifier
//	ok, _   := prog.ProveForAllHorizons(...)  // transition-system back-end
package core

import (
	"context"
	"time"

	"buffy/internal/backend/dafny"
	"buffy/internal/backend/fperf"
	"buffy/internal/backend/netcalc"
	"buffy/internal/backend/smtbe"
	"buffy/internal/backend/ts"
	"buffy/internal/buffer"
	"buffy/internal/interp"
	"buffy/internal/ir"
	"buffy/internal/lang/parser"
	"buffy/internal/lang/typecheck"
	"buffy/internal/portfolio"
	"buffy/internal/smt/sat"
	"buffy/internal/smt/smtlib"
	"buffy/internal/smt/solver"
	"buffy/internal/synth"
)

// Program is a parsed and checked Buffy program.
type Program struct {
	Info   *typecheck.Info
	Source string
}

// Parse parses and checks a single Buffy program.
func Parse(src string) (*Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		return nil, err
	}
	return &Program{Info: info, Source: src}, nil
}

// ParseFile parses a source file containing one or more programs.
func ParseFile(src string) ([]*Program, error) {
	progs, err := parser.ParseFile(src)
	if err != nil {
		return nil, err
	}
	out := make([]*Program, len(progs))
	for i, p := range progs {
		info, err := typecheck.Check(p)
		if err != nil {
			return nil, err
		}
		out[i] = &Program{Info: info, Source: src}
	}
	return out, nil
}

// Name returns the program's name.
func (p *Program) Name() string { return p.Info.Prog.Name }

// Params returns the compile-time parameters the program needs.
func (p *Program) Params() []string { return p.Info.Params }

// Analysis configures an analysis run. The zero value analyzes one step of
// a parameterless program with the list buffer model.
type Analysis struct {
	// T is the time horizon (number of steps).
	T int
	// Params binds compile-time parameters (the N in buffer[N]).
	Params map[string]int64
	// Model selects buffer precision: "list" (default), "count",
	// "multiclass" (§3's plug-in buffer models).
	Model string
	// BufferCap / OutBufferCap / ArrivalsPerStep / NumClasses / MaxBytes /
	// ListCap mirror ir.Options.
	BufferCap       int
	OutBufferCap    int
	ArrivalsPerStep int
	NumClasses      int
	MaxBytes        int
	ListCap         int
	// Width is the solver's integer bit width (default 12).
	Width int
	// MaxConflicts / MaxPropagations / MaxLearntBytes / Timeout bound each
	// solver call; exhausting one yields an Unknown result whose Stop
	// field names the budget, instead of an open-ended search.
	MaxConflicts    int64
	MaxPropagations int64
	MaxLearntBytes  int64
	Timeout         time.Duration
	// Search configures the CDCL search heuristics (restart schedule,
	// VSIDS decay, polarity, random branching). The zero value is the
	// classic configuration. Portfolio runs override it per config.
	Search sat.Options
	// Portfolio races this many diversified solver configurations per
	// verify/witness query, taking the first conclusive answer (see
	// VerifyPortfolio / FindWitnessPortfolio). 0 or 1 means a single
	// solver; plain Verify/FindWitness ignore the field.
	Portfolio int
	// Progress, when non-nil, receives live CDCL search counters from
	// every solver call made on behalf of this analysis (all portfolio
	// configs and fperf checks included), pollable while the analysis
	// runs. See sat.Progress.
	Progress *sat.Progress
	// K is the induction depth for ProveForAllHorizons (default 1).
	K int
	// CrossCheck makes Bound differentially validate its analytical bounds
	// against the SMT backend at horizon T (ErrDisagreement on violation).
	CrossCheck bool
}

func (a Analysis) irOptions() (ir.Options, error) {
	model, err := buffer.ModelByName(a.Model)
	if err != nil {
		return ir.Options{}, err
	}
	return ir.Options{
		Model:           model,
		T:               a.T,
		Params:          a.Params,
		BufferCap:       a.BufferCap,
		OutBufferCap:    a.OutBufferCap,
		ArrivalsPerStep: a.ArrivalsPerStep,
		NumClasses:      a.NumClasses,
		MaxBytes:        a.MaxBytes,
		ListCap:         a.ListCap,
	}, nil
}

func (a Analysis) solverOptions() solver.Options {
	return solver.Options{
		Width: a.Width, MaxConflicts: a.MaxConflicts,
		MaxPropagations: a.MaxPropagations, MaxLearntBytes: a.MaxLearntBytes,
		Timeout: a.Timeout, Search: a.Search, Progress: a.Progress,
	}
}

// Verify checks that every assert holds on all executions within the
// horizon (the bounded-model-checking direction). A counterexample trace
// is returned when one exists.
func (p *Program) Verify(a Analysis) (*smtbe.Result, error) {
	return p.VerifyContext(context.Background(), a)
}

// VerifyContext is Verify with cooperative cancellation: cancelling ctx
// (or passing its deadline) aborts the in-flight solve promptly.
func (p *Program) VerifyContext(ctx context.Context, a Analysis) (*smtbe.Result, error) {
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	if res := p.staticTier(ctx, a, smtbe.Verify); res != nil {
		return res, nil
	}
	return smtbe.CheckContext(ctx, p.Info, smtbe.Options{IR: iro, Solver: a.solverOptions(), Mode: smtbe.Verify})
}

// FindWitness searches for an execution satisfying the program's query
// (the FPerf "can this happen" direction), returning its traffic trace.
func (p *Program) FindWitness(a Analysis) (*smtbe.Result, error) {
	return p.FindWitnessContext(context.Background(), a)
}

// FindWitnessContext is FindWitness with cooperative cancellation.
func (p *Program) FindWitnessContext(ctx context.Context, a Analysis) (*smtbe.Result, error) {
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	if res := p.staticTier(ctx, a, smtbe.Witness); res != nil {
		return res, nil
	}
	return smtbe.CheckContext(ctx, p.Info, smtbe.Options{IR: iro, Solver: a.solverOptions(), Mode: smtbe.Witness})
}

// VerifyPortfolio is Verify through the portfolio layer: a.Portfolio
// diversified solver configurations race on the query and the first
// conclusive answer wins, with the losers cancelled cooperatively. The
// result carries the winning config's name and every config's effort.
func (p *Program) VerifyPortfolio(a Analysis) (*portfolio.Result, error) {
	return p.VerifyPortfolioContext(context.Background(), a)
}

// VerifyPortfolioContext is VerifyPortfolio with cooperative cancellation.
func (p *Program) VerifyPortfolioContext(ctx context.Context, a Analysis) (*portfolio.Result, error) {
	return p.portfolioCheck(ctx, a, smtbe.Verify)
}

// FindWitnessPortfolio is FindWitness through the portfolio layer.
func (p *Program) FindWitnessPortfolio(a Analysis) (*portfolio.Result, error) {
	return p.FindWitnessPortfolioContext(context.Background(), a)
}

// FindWitnessPortfolioContext is FindWitnessPortfolio with cooperative
// cancellation.
func (p *Program) FindWitnessPortfolioContext(ctx context.Context, a Analysis) (*portfolio.Result, error) {
	return p.portfolioCheck(ctx, a, smtbe.Witness)
}

func (p *Program) portfolioCheck(ctx context.Context, a Analysis, mode smtbe.Mode) (*portfolio.Result, error) {
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	if res := p.staticTier(ctx, a, mode); res != nil {
		return &portfolio.Result{Result: res, Winner: "static"}, nil
	}
	return portfolio.CheckContext(ctx, p.Info, portfolio.Options{
		N:    a.Portfolio,
		Base: smtbe.Options{IR: iro, Solver: a.solverOptions(), Mode: mode},
	})
}

// Bound runs the network-calculus back-end: analytical worst-case delay
// and backlog bounds for the program's victim flow, answered in
// microseconds (min-plus algebra, no solver search, no horizon). With
// a.CrossCheck set it additionally proves at horizon a.T that the bounds
// dominate every execution the SMT backend can reach — a SAT witness
// beyond the bound is the hard error netcalc.ErrDisagreement.
func (p *Program) Bound(a Analysis) (*netcalc.Result, error) {
	return p.BoundContext(context.Background(), a)
}

// BoundContext is Bound with cooperative cancellation (only the optional
// differential cross-check solve can block; the bound itself is instant).
func (p *Program) BoundContext(ctx context.Context, a Analysis) (*netcalc.Result, error) {
	if err := p.vetGate(ctx, a); err != nil {
		return nil, err
	}
	r, err := netcalc.Analyze(ctx, p.Info, netcalc.Options{
		Params: a.Params, ArrivalsPerStep: a.ArrivalsPerStep,
	})
	if err != nil {
		return nil, err
	}
	if a.CrossCheck {
		iro, err := a.irOptions()
		if err != nil {
			return nil, err
		}
		if _, err := netcalc.CrossCheck(ctx, p.Info, r, netcalc.CrossCheckOptions{
			IR: iro, Solver: a.solverOptions(),
		}); err != nil {
			return r, err
		}
	}
	return r, nil
}

// SynthesizeWorkload runs the FPerf-style back-end: find input-traffic
// conditions under which the query is guaranteed.
func (p *Program) SynthesizeWorkload(a Analysis) (*fperf.Result, error) {
	return p.SynthesizeWorkloadContext(context.Background(), a)
}

// SynthesizeWorkloadContext is SynthesizeWorkload with cooperative
// cancellation.
func (p *Program) SynthesizeWorkloadContext(ctx context.Context, a Analysis) (*fperf.Result, error) {
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	if err := p.vetGate(ctx, a); err != nil {
		return nil, err
	}
	return fperf.SynthesizeContext(ctx, p.Info, fperf.Options{IR: iro, Solver: a.solverOptions()})
}

// GenerateDafny emits the program as a Dafny method (unrolled, inlined,
// structured-havoc inputs), ready for the external Dafny toolchain.
func (p *Program) GenerateDafny(a Analysis) (string, error) {
	return dafny.Generate(p.Info, dafny.GenOptions{
		T: a.T, Params: a.Params,
		ArrivalsPerStep: a.ArrivalsPerStep, NumClasses: a.NumClasses,
	})
}

// VerifyDafny runs the Dafny-style mini annotation checker: each assert is
// discharged as its own verification condition (the Figure 6 workload).
func (p *Program) VerifyDafny(a Analysis) (*dafny.VerifyResult, error) {
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	return dafny.Verify(p.Info, dafny.VerifyOptions{IR: iro, Solver: a.solverOptions()})
}

// ProveForAllHorizons attempts a k-induction proof that prop holds at
// every time horizon (the transition-system back-end), optionally helped
// by auxiliary invariants.
func (p *Program) ProveForAllHorizons(a Analysis, prop ts.Prop, aux ...ts.Prop) (*ts.Result, error) {
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	iro.T = 0 // horizon-free
	return ts.ProveInvariant(p.Info, ts.Options{IR: iro, Solver: a.solverOptions(), K: a.K, Aux: aux}, prop)
}

// InferInvariants runs the grammar + Houdini loop (§5) and returns the
// surviving inductive invariants.
func (p *Program) InferInvariants(a Analysis) (*synth.HoudiniResult, error) {
	iro, err := a.irOptions()
	if err != nil {
		return nil, err
	}
	sv := solver.New(a.solverOptions())
	probe, err := ir.NewMachine(p.Info, sv.Builder(), iro)
	if err != nil {
		return nil, err
	}
	cap := a.BufferCap
	if cap <= 0 {
		cap = 8
	}
	cands := synth.Grammar(p.Info, probe, synth.GrammarOptions{BufferCap: cap})
	return synth.Houdini(p.Info, ts.Options{IR: iro, Solver: a.solverOptions()}, cands)
}

// SMTLib renders the program's bounded encoding in the standard SMT-LIB v2
// format (§4), consumable by external solvers such as Z3 or cvc5.
func (p *Program) SMTLib(a Analysis) (string, error) {
	iro, err := a.irOptions()
	if err != nil {
		return "", err
	}
	sv := solver.New(a.solverOptions())
	c, err := ir.Compile(p.Info, sv.Builder(), iro)
	if err != nil {
		return "", err
	}
	all := c.Assumes
	if len(c.Asserts) > 0 {
		all = append(all, c.B.Not(c.AssertHolds()))
	}
	return smtlib.Script(all), nil
}

// Simulate runs the program concretely for T steps, feeding arrivals from
// the supplied generator (step, inputName) -> packets.
func (p *Program) Simulate(a Analysis, gen func(step int, input string) []interp.Packet) (*interp.Machine, error) {
	m, err := interp.New(p.Info, interp.Options{
		T: a.T, Params: a.Params,
		BufferCap: a.BufferCap, OutBufferCap: a.OutBufferCap,
		ListCap: a.ListCap, Width: a.Width, ArrivalsPerStep: a.ArrivalsPerStep,
	})
	if err != nil {
		return nil, err
	}
	for t := 0; t < max(1, a.T); t++ {
		if gen != nil {
			for _, in := range m.Inputs() {
				for _, pkt := range gen(t, in) {
					m.Buffer(in).Arrive(pkt)
				}
			}
		}
		if err := m.Step(t); err != nil {
			return m, err
		}
	}
	return m, nil
}

// Replay re-executes a solver trace concretely and cross-checks the
// observations (the differential-validation entry point).
func (p *Program) Replay(a Analysis, tr *smtbe.Trace) (*interp.Machine, []string, error) {
	m, err := interp.Replay(p.Info, interp.Options{
		T: a.T, Params: a.Params,
		BufferCap: a.BufferCap, OutBufferCap: a.OutBufferCap,
		ListCap: a.ListCap, Width: a.Width, ArrivalsPerStep: a.ArrivalsPerStep,
	}, tr)
	if err != nil {
		return nil, nil, err
	}
	return m, interp.Diff(m, tr), nil
}
