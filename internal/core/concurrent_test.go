package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/qm"
)

// TestConcurrentAnalyses pins down that the whole pipeline — parse,
// typecheck, compile, blast, solve, trace extraction — is safe to call
// from many goroutines at once, both on a shared *Program and on
// per-goroutine ones. This is the contract the service worker pool relies
// on; run with -race.
func TestConcurrentAnalyses(t *testing.T) {
	shared, err := Parse(qm.FQBuggyQuerySrc)
	if err != nil {
		t.Fatal(err)
	}
	fqAnalysis := Analysis{T: 4, Params: map[string]int64{"N": 2}}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0, 1: // shared program, witness direction
				res, err := shared.FindWitness(fqAnalysis)
				if err != nil {
					errs <- err
					return
				}
				if res.Status != smtbe.WitnessFound || res.Trace == nil {
					t.Errorf("worker %d: witness status %v", i, res.Status)
				}
			case 2: // distinct program, verify direction
				prog, err := Parse(limiter)
				if err != nil {
					errs <- err
					return
				}
				res, err := prog.Verify(Analysis{T: 3})
				if err != nil {
					errs <- err
					return
				}
				if res.Status != smtbe.Holds {
					t.Errorf("worker %d: verify status %v", i, res.Status)
				}
			case 3: // shared program, verify direction (FQ starves: cex exists)
				res, err := shared.VerifyContext(context.Background(), fqAnalysis)
				if err != nil {
					errs <- err
					return
				}
				if res.Status != smtbe.CounterexampleFound {
					t.Errorf("worker %d: fq verify status %v", i, res.Status)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestContextCancelPreCompile: a context cancelled before the call aborts
// without doing any work.
func TestContextCancel(t *testing.T) {
	prog, err := Parse(qm.FQBuggyQuerySrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := prog.FindWitnessContext(ctx, Analysis{T: 10, Params: map[string]int64{"N": 3}}); err == nil {
		t.Error("expected a cancellation error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-cancelled analysis took %v", elapsed)
	}

	// Synthesize honours cancellation too.
	if _, err := prog.SynthesizeWorkloadContext(ctx, Analysis{T: 5, Params: map[string]int64{"N": 2}}); err == nil {
		t.Error("expected a cancellation error from synthesis")
	}
}
