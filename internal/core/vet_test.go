package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/lang/sema"
)

// deadQuery: the assert can never hold (backlog is capped at 8), so the
// static tier must answer the witness query without a solver.
const deadQuery = `dead_query(in buffer a, out buffer b) {
  move-p(a, b, 1);
  assert(backlog-p(a) > 1000);
}
`

// contradictory: no execution satisfies the assume; every solve must be
// rejected by the vet gate with the vet_rejected taxonomy.
const contradictory = `contra(in buffer a, out buffer b) {
  local int n;
  n = backlog-p(a);
  assume(n > 2000);
  move-p(a, b, n);
  assert(backlog-p(a) == 0);
}
`

func TestStaticTierAnswersWitness(t *testing.T) {
	p, err := Parse(deadQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.FindWitnessContext(context.Background(), Analysis{T: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != "static" {
		t.Errorf("tier = %q, want static (no solver needed)", res.Tier)
	}
	if res.Status != smtbe.NoWitness {
		t.Errorf("status = %v, want no-witness", res.Status)
	}
	if res.Solver != nil {
		t.Error("static tier must not construct a solver")
	}
}

func TestStaticTierDeclinesNoAsserts(t *testing.T) {
	p, err := Parse("noassert(in buffer a, out buffer b) {\n  move-p(a, b, 1);\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	// smtbe's established "nothing to check" error must survive the gate.
	if _, err := p.VerifyContext(context.Background(), Analysis{T: 4}); err == nil ||
		!strings.Contains(err.Error(), "no assert") {
		t.Errorf("verify error = %v, want smtbe's no-assert error", err)
	}
}

func TestStaticTierDeclinesCancelledContext(t *testing.T) {
	p, err := Parse(deadQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := p.FindWitnessContext(ctx, Analysis{T: 4})
	if err == nil && res != nil && res.Tier == "static" {
		t.Error("static tier answered on a cancelled context; the solver path must report cancellation")
	}
}

func TestStaticTierDeclinesUnboundParams(t *testing.T) {
	p, err := Parse("needsn(buffer[N] ibs, buffer ob) {\n  move-p(ibs[0], ob, 1);\n  assert(backlog-p(ob) > 1000);\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	// N unbound: the ir path must report the missing binding, not a
	// static answer computed with top-valued parameters.
	if _, err := p.FindWitnessContext(context.Background(), Analysis{T: 4}); err == nil {
		t.Error("want a missing-parameter error, got a result")
	}
}

func TestVetGateRejectsContradiction(t *testing.T) {
	p, err := Parse(contradictory)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() error{
		"synthesize": func() error {
			_, err := p.SynthesizeWorkloadContext(context.Background(), Analysis{T: 4})
			return err
		},
		"bound": func() error {
			_, err := p.BoundContext(context.Background(), Analysis{T: 4})
			return err
		},
	} {
		err := run()
		var vetErr *sema.VetError
		if !errors.As(err, &vetErr) {
			t.Errorf("%s: error = %v, want *sema.VetError", name, err)
			continue
		}
		if len(vetErr.Diags) == 0 || vetErr.Diags[0].Code != sema.CodeContradiction {
			t.Errorf("%s: vet error diags = %+v, want a %s finding", name, vetErr.Diags, sema.CodeContradiction)
		}
	}
}

func TestVerifyContradictionAnsweredStatically(t *testing.T) {
	p, err := Parse(contradictory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.VerifyContext(context.Background(), Analysis{T: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != "static" {
		t.Errorf("tier = %q, want static: a vacuous verify needs no solver", res.Tier)
	}
}
