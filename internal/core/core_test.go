package core

import (
	"strings"
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/term"
)

const limiter = `
limiter(buffer in0, buffer out0) {
  monitor int departed;
  local int n;
  n = backlog-p(in0);
  if (n > 1) { n = 1; }
  move-p(in0, out0, n);
  departed = departed + n;
  assert(departed <= t + 1);
}
`

func TestParseAndMetadata(t *testing.T) {
	prog, err := Parse(qm.FQBuggySrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "fq" {
		t.Errorf("name = %q", prog.Name())
	}
	if len(prog.Params()) != 1 || prog.Params()[0] != "N" {
		t.Errorf("params = %v", prog.Params())
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse("not a program"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Parse(`p(buffer a, buffer b) { x = 1; }`); err == nil {
		t.Error("expected type error")
	}
}

func TestParseFileMultiple(t *testing.T) {
	progs, err := ParseFile(qm.DelaySrc + "\n" + qm.SPSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 || progs[0].Name() != "delay" || progs[1].Name() != "sp" {
		t.Fatalf("got %d programs", len(progs))
	}
}

func TestVerifyAndWitness(t *testing.T) {
	prog, err := Parse(limiter)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Verify(Analysis{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smtbe.Holds {
		t.Errorf("verify: %v", res.Status)
	}
	w, err := prog.FindWitness(Analysis{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.Status != smtbe.WitnessFound {
		t.Errorf("witness: %v", w.Status)
	}
}

func TestUnknownModelRejected(t *testing.T) {
	prog, _ := Parse(limiter)
	if _, err := prog.Verify(Analysis{T: 1, Model: "quantum"}); err == nil {
		t.Error("expected unknown-model error")
	}
}

func TestSMTLibOutput(t *testing.T) {
	prog, _ := Parse(limiter)
	out, err := prog.SMTLib(Analysis{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(set-logic QF_LIA)", "(check-sat)", "(assert"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestGenerateDafnyThroughFacade(t *testing.T) {
	prog, _ := Parse(qm.RRSrc)
	out, err := prog.GenerateDafny(Analysis{T: 2, Params: map[string]int64{"N": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "method rr_T2(") {
		t.Error("missing generated method")
	}
}

func TestVerifyDafnyThroughFacade(t *testing.T) {
	prog, _ := Parse(limiter)
	res, err := prog.VerifyDafny(Analysis{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || len(res.VCs) != 3 {
		t.Errorf("verified=%v VCs=%d", res.Verified, len(res.VCs))
	}
}

func TestSynthesizeThroughFacade(t *testing.T) {
	prog, _ := Parse(`p(buffer a, buffer b) {
		move-p(a, b, 1);
		if (t == T - 1) { assert(backlog-p(b) == T); }
	}`)
	res, err := prog.SynthesizeWorkload(Analysis{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Workload) == 0 {
		t.Errorf("found=%v workload=%v", res.Found, res.Workload)
	}
}

func TestProveForAllHorizonsThroughFacade(t *testing.T) {
	prog, _ := Parse(qm.PathServerSrc)
	bound := func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
		b := ctx.B
		return b.Le(m.Var("tokens"), b.IntConst(4))
	}
	res, err := prog.ProveForAllHorizons(Analysis{Params: map[string]int64{"C": 2, "B": 2}, Model: "count"}, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Error("token bound should prove")
	}
}

func TestInferInvariantsThroughFacade(t *testing.T) {
	prog, _ := Parse(qm.PathServerSrc)
	res, err := prog.InferInvariants(Analysis{Params: map[string]int64{"C": 2, "B": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survivors) == 0 {
		t.Error("expected surviving invariants")
	}
}

func TestSimulateAndReplayRoundTrip(t *testing.T) {
	prog, _ := Parse(qm.FQBuggyQuerySrc)
	a := Analysis{T: 6, Params: map[string]int64{"N": 3}}
	res, err := prog.FindWitness(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	_, diffs, err := prog.Replay(a, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) > 0 {
		t.Errorf("replay differences: %v", diffs)
	}
}
