package vet

import (
	"strings"
	"testing"

	"buffy/internal/lang/sema"
)

func TestSourceWrapsParseErrors(t *testing.T) {
	res := Source("broken(in buffer a, out buffer b) {\n  move-p(a, b, 1;\n}\n", sema.Options{T: 4})
	if res.Program != "" {
		t.Errorf("program = %q, want empty (parse failed)", res.Program)
	}
	if len(res.Report.Diags) != 1 {
		t.Fatalf("diags = %+v, want exactly one", res.Report.Diags)
	}
	d := res.Report.Diags[0]
	if d.Code != sema.CodeParseError || d.Severity != sema.Error {
		t.Errorf("diag = %s/%v, want %s/error", d.Code, d.Severity, sema.CodeParseError)
	}
	if d.Pos.Line != 2 || d.Pos.Col <= 0 {
		t.Errorf("parse error at %s, want line 2 with a valid column", posString(d.Pos))
	}
	if !res.Report.HasErrors() {
		t.Error("parse failure must reject the program")
	}
}

func TestSourceWrapsTypeErrorsInOrder(t *testing.T) {
	src := `two_errs(in buffer a, out buffer b) {
  local bool flag;
  flag = 5;
  move-p(a, b, flag);
}
`
	res := Source(src, sema.Options{T: 4})
	if res.Program != "two_errs" {
		t.Errorf("program = %q, want two_errs", res.Program)
	}
	if len(res.Report.Diags) < 2 {
		t.Fatalf("diags = %+v, want at least two type errors", res.Report.Diags)
	}
	prev := 0
	for _, d := range res.Report.Diags {
		if d.Code != sema.CodeTypeError || d.Severity != sema.Error {
			t.Errorf("diag = %s/%v, want %s/error", d.Code, d.Severity, sema.CodeTypeError)
		}
		if d.Pos.Line < prev {
			t.Errorf("diagnostics out of source order: line %d after %d", d.Pos.Line, prev)
		}
		prev = d.Pos.Line
	}
}

func TestRenderFormat(t *testing.T) {
	src := `renderme(in buffer a, out buffer b) {
  global int unused;
  move-p(a, b, 1);
}
`
	res := Source(src, sema.Options{T: 4})
	var sb strings.Builder
	Render(&sb, "renderme.buffy", src, res)
	out := sb.String()

	for _, want := range []string{
		"renderme.buffy:2:14: warning[B001]:", // file:line:col: severity[CODE]
		"global int unused;",                  // the source excerpt
		"    hint: ",                          // the fix-it hint
		"renderme statically decided (no-asserts): verify: holds, witness: no-witness",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}

	if got := Summary(res); got != "0 error(s), 1 warning(s), 0 info" {
		t.Errorf("summary = %q", got)
	}
}

func TestSummaryClean(t *testing.T) {
	res := Source("ok(in buffer a, out buffer b) {\n  move-p(a, b, 1);\n}\n", sema.Options{T: 4})
	if got := Summary(res); got != "clean" {
		t.Errorf("summary = %q, want clean; diags: %+v", got, res.Report.Diags)
	}
	if res.Info == nil {
		t.Error("clean vet must carry the typecheck info")
	}
}
