// Package vet is the driver for Buffy's static analyzer: it takes raw
// source, runs parse -> typecheck -> sema and folds every stage's
// findings into one uniformly-rendered diagnostic report. Parse and type
// errors become position-carrying diagnostics (codes B030/B040) exactly
// like sema's own findings, so a user sees one consistent
// file:line:col format regardless of which stage complained.
package vet

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"buffy/internal/lang/lexer"
	"buffy/internal/lang/parser"
	"buffy/internal/lang/sema"
	"buffy/internal/lang/token"
	"buffy/internal/lang/typecheck"
)

// Fingerprint names the static-analysis semantics (parse, typecheck,
// sema interval analysis) for the durable result store's pipeline
// fingerprint. Bump it when a sema change could alter a static verdict
// or diagnostic that feeds an analysis answer.
const Fingerprint = "sema-intervals-v1"

// Result is the outcome of vetting one program.
type Result struct {
	// Program is the program's declared name ("" when parsing failed
	// before the name was seen).
	Program string `json:"program,omitempty"`
	// Report holds the diagnostics and any static verdict. Always
	// non-nil; on parse/type errors it contains the wrapped errors and
	// no verdict.
	Report *sema.Report `json:"report"`
	// Info is the typecheck result (nil when parse or typecheck failed).
	Info *typecheck.Info `json:"-"`
}

// Source vets one Buffy program from source. It never returns an error:
// every failure mode is a diagnostic in the report.
func Source(src string, opts sema.Options) *Result {
	res := &Result{Report: &sema.Report{}}

	prog, err := parser.Parse(src)
	if err != nil {
		res.Report.Diags = append(res.Report.Diags, wrapStageError(err, sema.CodeParseError))
		return res
	}
	res.Program = prog.Name

	info, errs := typecheck.CheckAll(prog)
	if len(errs) > 0 {
		for _, e := range errs {
			res.Report.Diags = append(res.Report.Diags, sema.Diagnostic{
				Code: sema.CodeTypeError, Severity: sema.Error, Pos: e.Pos, Msg: e.Msg,
			})
		}
		return res
	}
	res.Info = info
	res.Report = sema.Analyze(info, opts)
	return res
}

// wrapStageError converts a parse/lex error into a diagnostic, keeping
// its position when the concrete error type carries one.
func wrapStageError(err error, code string) sema.Diagnostic {
	d := sema.Diagnostic{Code: code, Severity: sema.Error, Msg: err.Error()}
	var pe *parser.Error
	var le *lexer.Error
	switch {
	case errors.As(err, &pe):
		d.Pos, d.Msg = pe.Pos, pe.Msg
	case errors.As(err, &le):
		d.Pos, d.Msg = le.Pos, le.Msg
	}
	return d
}

// Render writes the report human-readably: one line per diagnostic in
// compiler format (file:line:col: severity[CODE]: message), followed by
// a source excerpt with a caret and the fix-it hint. filename may be ""
// for anonymous sources.
func Render(w io.Writer, filename, src string, res *Result) {
	prefix := ""
	if filename != "" {
		prefix = filename + ":"
	}
	for _, d := range res.Report.Diags {
		fmt.Fprintf(w, "%s%d:%d: %s[%s]: %s\n", prefix, d.Pos.Line, d.Pos.Col, d.Severity, d.Code, d.Msg)
		if ex := sema.Excerpt(src, d.Pos); ex != "" {
			fmt.Fprintln(w, ex)
		}
		if d.Hint != "" {
			fmt.Fprintf(w, "    hint: %s\n", d.Hint)
		}
	}
	if v := res.Report.Verdict; v.Conclusive() {
		parts := []string{}
		if v.Verify != "" {
			parts = append(parts, "verify: "+v.Verify)
		}
		if v.Witness != "" {
			parts = append(parts, "witness: "+v.Witness)
		}
		fmt.Fprintf(w, "%s statically decided (%s): %s\n",
			nameOr(res.Program, "program"), v.Reason, strings.Join(parts, ", "))
	}
}

// Summary is a one-line outcome for CI logs: "clean", or the diagnostic
// severity histogram.
func Summary(res *Result) string {
	var nerr, nwarn, ninfo int
	for _, d := range res.Report.Diags {
		switch d.Severity {
		case sema.Error:
			nerr++
		case sema.Warn:
			nwarn++
		default:
			ninfo++
		}
	}
	if nerr+nwarn+ninfo == 0 {
		return "clean"
	}
	return fmt.Sprintf("%d error(s), %d warning(s), %d info", nerr, nwarn, ninfo)
}

func nameOr(s, fallback string) string {
	if s != "" {
		return s
	}
	return fallback
}

// Position formatting helper shared by tests.
func posString(p token.Pos) string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }
