package faultinject

import (
	"context"
	"testing"
	"time"
)

// TestDisabledIsNoOp runs in both builds: without the tag it pins that
// every hook is inert; with the tag it exercises arm/fire/cap/reset.
func TestHarness(t *testing.T) {
	defer Reset()

	if !Enabled {
		Enable(PointWorkerPanic, Fault{Panic: "boom"})
		Do(context.Background(), PointWorkerPanic) // must not panic
		if got := SkewDuration(PointClockSkew, time.Second); got != time.Second {
			t.Errorf("disabled SkewDuration altered the duration: %v", got)
		}
		if Fired(PointWorkerPanic) != 0 {
			t.Error("disabled build recorded a firing")
		}
		return
	}

	// Panic fault fires, respecting the Times cap.
	Enable(PointWorkerPanic, Fault{Panic: "boom", Times: 1})
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		Do(context.Background(), PointWorkerPanic)
		return
	}
	if !panicked() {
		t.Fatal("armed panic did not fire")
	}
	if panicked() {
		t.Fatal("Times=1 fault fired twice")
	}
	if Fired(PointWorkerPanic) != 1 {
		t.Errorf("fired = %d, want 1", Fired(PointWorkerPanic))
	}

	// Stall observes the context.
	Enable(PointSolverStall, Fault{Delay: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	Do(ctx, PointSolverStall)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("stall ignored cancellation (%v)", elapsed)
	}

	// Skew shrinks but never zeroes a deadline.
	Enable(PointClockSkew, Fault{Skew: -time.Hour})
	if got := SkewDuration(PointClockSkew, time.Second); got <= 0 || got > time.Second {
		t.Errorf("skewed duration = %v, want in (0, 1s]", got)
	}

	// Cancel storm calls the hook.
	done := make(chan struct{})
	Enable(PointCancelStorm, Fault{Delay: time.Millisecond})
	WithCancel(PointCancelStorm, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancel storm never fired")
	}

	// Reset disarms everything.
	Reset()
	if panicked() {
		t.Error("fault survived Reset")
	}
	if Fired(PointWorkerPanic) != 0 {
		t.Error("fire counter survived Reset")
	}
}
