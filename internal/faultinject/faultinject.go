// Package faultinject is Buffy's chaos-engineering harness: named
// injection points compiled into the service and solver layers that are
// complete no-ops in normal builds and become scriptable faults under the
// `faultinject` build tag (`go test -tags faultinject ...`).
//
// A production binary pays nothing: without the tag every function here
// is an empty inlineable stub and the Enabled constant lets callers guard
// any non-trivial setup with dead-code-eliminated branches. With the tag,
// tests call Enable to arm a point with a Fault — a panic, a stall, an
// allocation burst, a spurious cancellation, or a clock skew — and the
// chaos suite asserts the service stays live, never emits a wrong
// verdict, and recovers capacity once faults clear.
package faultinject

import "time"

// Injection point names. Each names a place in the runtime where a fault
// can be armed; sites fire them via Do / SkewDuration / WithCancel.
const (
	// PointSolverStall stalls a worker at the top of an analysis,
	// simulating a pathological solve that pins the worker.
	PointSolverStall = "service.solver.stall"
	// PointWorkerPanic panics inside the worker's shielded analysis
	// region, exercising the recover path and the retry ladder.
	PointWorkerPanic = "service.worker.panic"
	// PointAllocPressure allocates (and releases) a transient ballast
	// before the solve, simulating allocation pressure / GC churn.
	PointAllocPressure = "service.alloc.pressure"
	// PointCancelStorm cancels the job shortly after it starts running,
	// simulating a storm of client disconnects.
	PointCancelStorm = "service.cancel.storm"
	// PointClockSkew skews the per-job deadline computation, simulating
	// clock drift between admission and execution.
	PointClockSkew = "service.clock.skew"
)

// Fault scripts one injection point. Zero-valued fields do nothing, so a
// Fault describes exactly the failure mode under test.
type Fault struct {
	// Panic, when non-empty, panics with this message at the point.
	Panic string
	// Delay stalls the point (Do) or delays the injected cancellation
	// (WithCancel) by this much. Do's stall observes the job context, so
	// cancellation still unwinds a stalled worker.
	Delay time.Duration
	// AllocBytes allocates a transient ballast of this size at the point.
	AllocBytes int
	// Skew is added to durations passed through SkewDuration (negative
	// values shrink deadlines).
	Skew time.Duration
	// Times caps how often the fault fires (0 = every hit). Once spent,
	// the point reverts to a no-op — the "fault clears" half of chaos
	// recovery tests.
	Times int64
}
