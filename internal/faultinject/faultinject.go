// Package faultinject is Buffy's chaos-engineering harness: named
// injection points compiled into the service and solver layers that are
// complete no-ops in normal builds and become scriptable faults under the
// `faultinject` build tag (`go test -tags faultinject ...`).
//
// A production binary pays nothing: without the tag every function here
// is an empty inlineable stub and the Enabled constant lets callers guard
// any non-trivial setup with dead-code-eliminated branches. With the tag,
// tests call Enable to arm a point with a Fault — a panic, a stall, an
// allocation burst, a spurious cancellation, or a clock skew — and the
// chaos suite asserts the service stays live, never emits a wrong
// verdict, and recovers capacity once faults clear.
package faultinject

import "time"

// Injection point names. Each names a place in the runtime where a fault
// can be armed; sites fire them via Do / SkewDuration / WithCancel.
const (
	// PointSolverStall stalls a worker at the top of an analysis,
	// simulating a pathological solve that pins the worker.
	PointSolverStall = "service.solver.stall"
	// PointWorkerPanic panics inside the worker's shielded analysis
	// region, exercising the recover path and the retry ladder.
	PointWorkerPanic = "service.worker.panic"
	// PointAllocPressure allocates (and releases) a transient ballast
	// before the solve, simulating allocation pressure / GC churn.
	PointAllocPressure = "service.alloc.pressure"
	// PointCancelStorm cancels the job shortly after it starts running,
	// simulating a storm of client disconnects.
	PointCancelStorm = "service.cancel.storm"
	// PointClockSkew skews the per-job deadline computation, simulating
	// clock drift between admission and execution.
	PointClockSkew = "service.clock.skew"
	// PointStoreWrite fails durable-store entry writes via ErrAt,
	// simulating a full disk (ENOSPC) or a read-only filesystem (EROFS).
	PointStoreWrite = "store.write"
	// PointStoreCorrupt mutates the encoded entry bytes as they are
	// written via MutateBytes: a torn write (TearAfter) or bit rot
	// (Flip/FlipAt). The write is still acknowledged — exactly the
	// failure the recovery scan and per-entry checksums must catch.
	PointStoreCorrupt = "store.write.corrupt"
	// PointStoreRead fails durable-store entry reads via ErrAt,
	// simulating a transient I/O error on an otherwise intact entry.
	PointStoreRead = "store.read"
)

// Fault scripts one injection point. Zero-valued fields do nothing, so a
// Fault describes exactly the failure mode under test.
type Fault struct {
	// Panic, when non-empty, panics with this message at the point.
	Panic string
	// Delay stalls the point (Do) or delays the injected cancellation
	// (WithCancel) by this much. Do's stall observes the job context, so
	// cancellation still unwinds a stalled worker.
	Delay time.Duration
	// AllocBytes allocates a transient ballast of this size at the point.
	AllocBytes int
	// Skew is added to durations passed through SkewDuration (negative
	// values shrink deadlines).
	Skew time.Duration
	// Err, when non-nil, is returned by ErrAt at the point — e.g.
	// syscall.ENOSPC on a store write, simulating a full disk.
	Err error
	// TearAfter, when > 0, truncates byte payloads passed through
	// MutateBytes to at most this many bytes — a torn write that was
	// acknowledged but only partially reached stable storage.
	TearAfter int
	// Flip, when true, XOR-flips one bit of payloads passed through
	// MutateBytes at byte offset FlipAt (clamped to the payload's last
	// byte) — silent bit rot.
	Flip   bool
	FlipAt int
	// Times caps how often the fault fires (0 = every hit). Once spent,
	// the point reverts to a no-op — the "fault clears" half of chaos
	// recovery tests.
	Times int64
}
