//go:build !faultinject

package faultinject

import (
	"context"
	"time"
)

// Enabled reports whether the binary was built with fault injection
// compiled in. In normal builds every hook below is an empty stub.
const Enabled = false

// Enable arms a point (no-op without the faultinject tag).
func Enable(point string, f Fault) {}

// Disable disarms a point (no-op without the faultinject tag).
func Disable(point string) {}

// Reset disarms every point and clears fire counters (no-op without the
// faultinject tag).
func Reset() {}

// Fired reports how many times a point's fault has fired.
func Fired(point string) int64 { return 0 }

// Do fires a point's stall/alloc/panic fault, if armed.
func Do(ctx context.Context, point string) {}

// SkewDuration passes d through the point's clock-skew fault.
func SkewDuration(point string, d time.Duration) time.Duration { return d }

// ErrAt returns the point's scripted error, if armed (always nil without
// the faultinject tag).
func ErrAt(point string) error { return nil }

// MutateBytes passes a byte payload through the point's torn-write /
// bit-rot fault (identity without the faultinject tag).
func MutateBytes(point string, data []byte) []byte { return data }

// WithCancel registers a job's cancel function with the point's
// cancel-storm fault.
func WithCancel(point string, cancel func()) {}
