//go:build faultinject

package faultinject

import (
	"context"
	"sync"
	"time"
)

// Enabled reports whether the binary was built with fault injection
// compiled in.
const Enabled = true

type armed struct {
	fault Fault
	fired int64
}

var (
	mu     sync.Mutex
	points = map[string]*armed{}
)

// Enable arms a point: subsequent hits fire the fault until Disable,
// Reset, or the fault's Times cap is spent.
func Enable(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	points[point] = &armed{fault: f}
}

// Disable disarms a point.
func Disable(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, point)
}

// Reset disarms every point and clears fire counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*armed{}
}

// Fired reports how many times a point's fault has fired.
func Fired(point string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if a := points[point]; a != nil {
		return a.fired
	}
	return 0
}

// take consumes one firing of the point's fault, honoring the Times cap.
// It returns a copy of the fault, or false when the point is idle/spent.
func take(point string) (Fault, bool) {
	mu.Lock()
	defer mu.Unlock()
	a := points[point]
	if a == nil || (a.fault.Times > 0 && a.fired >= a.fault.Times) {
		return Fault{}, false
	}
	a.fired++
	return a.fault, true
}

// Do fires a point's fault in order: allocation pressure, stall, panic.
// The stall observes ctx so an injected hang still honors cancellation
// and deadlines — exactly like a real pathological solve.
func Do(ctx context.Context, point string) {
	f, ok := take(point)
	if !ok {
		return
	}
	if f.AllocBytes > 0 {
		ballast := make([]byte, f.AllocBytes)
		// Touch pages so the allocation is real, then let it die young.
		for i := 0; i < len(ballast); i += 4096 {
			ballast[i] = 1
		}
		_ = ballast
	}
	if f.Delay > 0 {
		if ctx == nil {
			time.Sleep(f.Delay)
		} else {
			select {
			case <-time.After(f.Delay):
			case <-ctx.Done():
			}
		}
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
}

// SkewDuration passes d through the point's clock-skew fault, clamping at
// a floor of 1ns so a skewed deadline stays a deadline rather than
// becoming "no deadline".
func SkewDuration(point string, d time.Duration) time.Duration {
	f, ok := take(point)
	if !ok || f.Skew == 0 {
		return d
	}
	if out := d + f.Skew; out > 0 {
		return out
	}
	return time.Nanosecond
}

// ErrAt returns the point's scripted error, if armed (nil otherwise).
// Filesystem sites use it to simulate ENOSPC/EROFS/EIO without touching
// the real disk.
func ErrAt(point string) error {
	f, ok := take(point)
	if !ok {
		return nil
	}
	return f.Err
}

// MutateBytes passes a byte payload through the point's torn-write /
// bit-rot fault. The input is never modified in place: a fired fault
// returns a mutated copy, an idle point returns data unchanged.
func MutateBytes(point string, data []byte) []byte {
	f, ok := take(point)
	if !ok || len(data) == 0 || (f.TearAfter <= 0 && !f.Flip) {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	if f.TearAfter > 0 && f.TearAfter < len(out) {
		out = out[:f.TearAfter]
	}
	if f.Flip && len(out) > 0 {
		at := f.FlipAt
		if at < 0 {
			at = 0
		}
		if at >= len(out) {
			at = len(out) - 1
		}
		out[at] ^= 0x01
	}
	return out
}

// WithCancel registers a job's cancel function with the point's
// cancel-storm fault: the job is cancelled Delay after it starts running,
// simulating a client disconnect mid-solve.
func WithCancel(point string, cancel func()) {
	f, ok := take(point)
	if !ok {
		return
	}
	go func() {
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		cancel()
	}()
}
