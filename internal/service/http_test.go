package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"buffy/internal/qm"
)

const quickProg = `
limiter(buffer in0, buffer out0) {
  monitor int departed;
  local int n;
  n = backlog-p(in0);
  if (n > 1) { n = 1; }
  move-p(in0, out0, n);
  departed = departed + n;
  assert(departed <= t + 1);
}
`

func newTestServer(t *testing.T, cfg Config) (*Engine, *httptest.Server) {
	t.Helper()
	e := New(cfg)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	return e, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPWitnessCacheFlow is the end-to-end acceptance scenario:
// submitting the CS1 FQ-starvation query twice over HTTP returns the same
// trace, with the second response served from cache, as confirmed by the
// cache-hit counter in /metrics.
func TestHTTPWitnessCacheFlow(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	req := map[string]any{"source": qm.FQBuggyQuerySrc, "t": 6, "params": map[string]int64{"N": 3}}

	resp1, body1 := postJSON(t, srv.URL+"/v1/witness", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d: %s", resp1.StatusCode, body1)
	}
	var v1 JobView
	if err := json.Unmarshal(body1, &v1); err != nil {
		t.Fatal(err)
	}
	if v1.State != StateDone || v1.Result == nil || v1.Result.Status != "witness" || v1.Result.Trace == nil {
		t.Fatalf("first response: %s", body1)
	}
	if v1.Result.CacheHit {
		t.Error("first response must not be a cache hit")
	}

	resp2, body2 := postJSON(t, srv.URL+"/v1/witness", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d: %s", resp2.StatusCode, body2)
	}
	var v2 JobView
	if err := json.Unmarshal(body2, &v2); err != nil {
		t.Fatal(err)
	}
	if !v2.Result.CacheHit {
		t.Error("second response should be served from cache")
	}
	tr1, _ := json.Marshal(v1.Result.Trace)
	tr2, _ := json.Marshal(v2.Result.Trace)
	if string(tr1) != string(tr2) {
		t.Error("cached response returned a different trace")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(prom), "buffy_cache_hits_total 1") {
		t.Errorf("metrics missing cache hit counter:\n%s", prom)
	}
	if !strings.Contains(string(prom), `buffy_jobs_submitted_total{kind="witness"} 2`) {
		t.Errorf("metrics missing submit counter:\n%s", prom)
	}
	if !strings.Contains(string(prom), "buffy_sat_conflicts_total") ||
		!strings.Contains(string(prom), "buffy_solve_duration_seconds_count 1") {
		t.Errorf("metrics missing solver effort:\n%s", prom)
	}

	jresp, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.CacheHits != 1 || snap.CacheMisses != 1 || snap.SolveCount != 1 {
		t.Errorf("snapshot: %+v", snap)
	}
}

func TestHTTPAsyncJobPoll(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, srv.URL+"/v1/verify?async=1", map[string]any{"source": quickProg, "t": 3})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d: %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.ID == "" || resp.Header.Get("Location") != "/v1/jobs/"+view.ID {
		t.Fatalf("bad async response: %s (Location %q)", body, resp.Header.Get("Location"))
	}

	deadline := time.Now().Add(time.Minute)
	for {
		jr, err := http.Get(srv.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		if err := json.Unmarshal(data, &view); err != nil {
			t.Fatalf("poll: %v (%s)", err, data)
		}
		if view.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.State != StateDone || view.Result == nil || view.Result.Status != "holds" {
		t.Fatalf("final job view: %+v", view)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(srv.URL+"/v1/witness", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, srv.URL+"/v1/witness", map[string]any{"source": quickProg, "bogus_field": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, srv.URL+"/v1/witness", map[string]any{"source": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty source: %d, want 400", resp.StatusCode)
	}

	// An out-of-range width must be rejected up front (400), never panic a
	// worker: this request used to be a one-shot remote crash.
	resp, _ = postJSON(t, srv.URL+"/v1/witness", map[string]any{"source": quickProg, "width": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("width 1: %d, want 400", resp.StatusCode)
	}

	// A program that fails to parse is the client's fault: 422.
	resp, body := postJSON(t, srv.URL+"/v1/verify", map[string]any{"source": "not a program", "t": 2})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("parse error: %d, want 422 (%s)", resp.StatusCode, body)
	}

	jr, err := http.Get(srv.URL + "/v1/jobs/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: %d, want 404", jr.StatusCode)
	}
}

// TestHTTPClientAbandonCancelsSolve pins the tentpole guarantee: a client
// that gives up on a synchronous request aborts its in-flight solve
// instead of burning a worker.
func TestHTTPClientAbandonCancelsSolve(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1})

	data, _ := json.Marshal(map[string]any{"source": qm.FQBuggyQuerySrc, "t": 10, "params": map[string]int64{"N": 3}})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/witness", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Wait until the solve is actually running, then walk away.
		for e.Metrics().WorkersBusy == 0 {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("expected the client-side cancellation error")
	}

	deadline := time.Now().Add(10 * time.Second)
	for e.Metrics().JobsCanceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned request did not cancel its job: %+v", e.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The worker is free again shortly after.
	for e.Metrics().WorkersBusy != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker still busy after abandonment")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHTTPShutdownCancelReturns503 pins the status of a synchronous
// request whose solve is canceled by Shutdown's forced drain: the client
// never disconnected, so it gets 503 (shutting down), not 499.
func TestHTTPShutdownCancelReturns503(t *testing.T) {
	e := New(Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	type outcome struct {
		status int
		body   []byte
	}
	got := make(chan outcome, 1)
	go func() {
		data, _ := json.Marshal(map[string]any{"source": qm.FQBuggyQuerySrc, "t": 10, "params": map[string]int64{"N": 3}})
		resp, err := http.Post(srv.URL+"/v1/witness", "application/json", bytes.NewReader(data))
		if err != nil {
			got <- outcome{}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		got <- outcome{resp.StatusCode, body}
	}()
	for e.Metrics().WorkersBusy == 0 {
		time.Sleep(time.Millisecond)
	}

	// An already-expired drain context forces immediate cancellation of the
	// in-flight solve.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("forced shutdown: %v", err)
	}
	select {
	case o := <-got:
		if o.status != http.StatusServiceUnavailable {
			t.Errorf("status = %d, want 503 (%s)", o.status, o.body)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("synchronous request did not return after forced shutdown")
	}
}

func TestHTTPHealthz(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d, want 200", resp.StatusCode)
	}

	ctx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelDrain()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPConcurrentLoad drives mixed cached/uncached traffic through the
// full HTTP stack — the service must be race-clean under parallel clients.
func TestHTTPConcurrentLoad(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 4})
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			// Two distinct requests, each submitted 4 times: exercises
			// both solve and cache paths concurrently.
			req := map[string]any{"source": quickProg, "t": 2 + i%2}
			resp, body := postJSONNoFatal(srv.URL+"/v1/verify", req)
			if resp == nil {
				errs <- fmt.Errorf("request failed")
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var view JobView
			if err := json.Unmarshal(body, &view); err != nil {
				errs <- err
				return
			}
			if view.Result == nil || view.Result.Status != "holds" {
				errs <- fmt.Errorf("unexpected result: %s", body)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func postJSONNoFatal(url string, body any) (*http.Response, []byte) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

// TestHTTPPortfolioMetrics drives a portfolio request end to end and
// asserts the per-config win counter and race histogram show up in both
// Prometheus and JSON metric expositions (satellite: portfolio telemetry).
func TestHTTPPortfolioMetrics(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	req := map[string]any{
		"source": qm.FQBuggyQuerySrc, "t": 5,
		"params": map[string]int64{"N": 3}, "portfolio": 4,
	}

	resp, body := postJSON(t, srv.URL+"/v1/witness", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || v.Result == nil || v.Result.Status != "witness" {
		t.Fatalf("response: %s", body)
	}
	if v.Result.PortfolioSize != 4 || v.Result.PortfolioWinner == "" {
		t.Errorf("portfolio fields missing from result: %s", body)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	want := fmt.Sprintf("buffy_portfolio_wins_total{config=%q} 1", v.Result.PortfolioWinner)
	if !strings.Contains(string(prom), want) {
		t.Errorf("metrics missing %s:\n%s", want, prom)
	}
	if !strings.Contains(string(prom), "buffy_portfolio_duration_seconds_count 1") {
		t.Errorf("metrics missing portfolio race histogram:\n%s", prom)
	}

	jresp, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.PortfolioCount != 1 || snap.PortfolioWins[v.Result.PortfolioWinner] != 1 {
		t.Errorf("snapshot portfolio telemetry: %+v", snap)
	}
}
