// Package service is Buffy's analysis service layer: a job engine that
// fans analysis requests out across a bounded worker pool, deduplicates
// repeated work through a content-addressed result cache, enforces
// per-job deadlines through cooperative solver cancellation, and exposes
// the observability counters (queue depth, cache hit rate, solve
// latencies, cumulative SAT effort) a long-lived query service needs.
//
// The package is the bridge between the one-shot core facade and the
// cmd/buffy-serve HTTP front-end: handlers submit Requests, workers run
// them through core.Program's context-aware entry points, and results
// are cached under a hash of everything that determines the answer.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
	"time"

	"buffy/internal/backend/fperf"
	"buffy/internal/backend/netcalc"
	"buffy/internal/backend/smtbe"
	"buffy/internal/core"
	"buffy/internal/portfolio"
	"buffy/internal/session"
	"buffy/internal/smt/bitblast"
	"buffy/internal/smt/sat"
)

// Kind selects which analysis a request runs.
type Kind string

// Analysis kinds, mirroring the core facade's query directions.
const (
	KindVerify     Kind = "verify"     // BMC: do the asserts hold on all executions?
	KindWitness    Kind = "witness"    // FPerf direction: find a query witness trace
	KindSynthesize Kind = "synthesize" // FPerf back-end: synthesize a guaranteeing workload
	KindBound      Kind = "bound"      // network-calculus analytical delay/backlog bounds
	KindSweep      Kind = "sweep"      // minimal-horizon sweep on a warm pooled session
)

func (k Kind) valid() bool {
	switch k {
	case KindVerify, KindWitness, KindSynthesize, KindBound, KindSweep:
		return true
	}
	return false
}

// Request is one analysis query. Every field that can change the answer
// participates in the cache key.
type Request struct {
	Kind   Kind   `json:"kind,omitempty"`
	Source string `json:"source"`
	// T is the time horizon (steps); defaults to 4 like buffyc.
	T      int              `json:"t,omitempty"`
	Params map[string]int64 `json:"params,omitempty"`
	// Model selects buffer precision: "list" (default), "count", "multiclass".
	Model string `json:"model,omitempty"`
	// Width is the solver integer bit width (0 = default 12).
	Width           int `json:"width,omitempty"`
	BufferCap       int `json:"buffer_cap,omitempty"`
	OutBufferCap    int `json:"out_buffer_cap,omitempty"`
	ArrivalsPerStep int `json:"arrivals_per_step,omitempty"`
	NumClasses      int `json:"num_classes,omitempty"`
	MaxBytes        int `json:"max_bytes,omitempty"`
	ListCap         int `json:"list_cap,omitempty"`
	// MaxConflicts bounds each solver call (0 = unlimited).
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	// MaxPropagations bounds each solver call's unit propagations — a
	// deterministic CPU-effort proxy (0 = unlimited).
	MaxPropagations int64 `json:"max_propagations,omitempty"`
	// MaxLearntBytes bounds the learnt-clause database's estimated memory
	// footprint per solver call (0 = unlimited).
	MaxLearntBytes int64 `json:"max_learnt_bytes,omitempty"`
	// TimeoutMS bounds the whole job's wall time; 0 uses the engine's
	// default. The deadline aborts the in-flight CDCL search cooperatively.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Portfolio races this many diversified solver configurations on a
	// verify/witness query and returns the first conclusive answer,
	// cancelling the losers (0 or 1 = single solver). Capped at
	// MaxPortfolio; ignored for synthesize jobs.
	Portfolio int `json:"portfolio,omitempty"`
	// Search heuristics for single-config solves (portfolio runs use the
	// built-in diversified set instead). Zero values are the defaults;
	// every knob participates in the cache key — two requests with
	// different search options never alias to one cached result.
	RestartBase  int64   `json:"restart_base,omitempty"`
	GeomRestarts bool    `json:"geom_restarts,omitempty"`
	VarDecay     float64 `json:"var_decay,omitempty"`
	InitPhase    bool    `json:"init_phase,omitempty"`
	RandSeed     uint64  `json:"rand_seed,omitempty"`
	RandFreq     float64 `json:"rand_freq,omitempty"`
	// CrossCheck makes a bound job differentially validate its analytical
	// bounds against the SMT backend at horizon T (kind == bound only): a
	// reachable execution beyond the bound fails the job hard.
	CrossCheck bool `json:"cross_check,omitempty"`
	// MaxT is the sweep's deepest horizon (kind == sweep; default 8). It is
	// also the warm session's capacity, so it participates in the session
	// fingerprint: sweeps to different depths use different sessions.
	MaxT int `json:"max_t,omitempty"`
	// SweepMode is the per-horizon query direction for a sweep: "verify"
	// (default) or "witness".
	SweepMode string `json:"sweep_mode,omitempty"`
}

// MaxPortfolio bounds how many solver configurations one request may
// race: each costs a goroutine, a full encoding and a CDCL search, so an
// unchecked value would let a single request monopolize the machine.
const MaxPortfolio = 16

// MaxHorizon bounds accepted time horizons: the encoding grows with T and
// a service must not let one request monopolize the pool indefinitely.
const MaxHorizon = 256

// Validate rejects malformed requests before they reach the queue.
func (r *Request) Validate() error {
	if !r.Kind.valid() {
		return fmt.Errorf("service: unknown kind %q (want verify | witness | synthesize | bound)", r.Kind)
	}
	if r.Source == "" {
		return fmt.Errorf("service: empty program source")
	}
	if r.T < 0 || r.T > MaxHorizon {
		return fmt.Errorf("service: horizon T=%d out of range [0, %d]", r.T, MaxHorizon)
	}
	// bitblast.New panics outside [MinWidth, MaxWidth]; an unchecked width
	// must never reach a worker.
	if r.Width != 0 && (r.Width < bitblast.MinWidth || r.Width > bitblast.MaxWidth) {
		return fmt.Errorf("service: width %d out of range (0 for default, else [%d, %d])",
			r.Width, bitblast.MinWidth, bitblast.MaxWidth)
	}
	for name, v := range map[string]int{
		"buffer_cap": r.BufferCap, "out_buffer_cap": r.OutBufferCap,
		"arrivals_per_step": r.ArrivalsPerStep, "num_classes": r.NumClasses,
		"max_bytes": r.MaxBytes, "list_cap": r.ListCap,
	} {
		if v < 0 {
			return fmt.Errorf("service: negative %s", name)
		}
	}
	if r.MaxConflicts < 0 {
		return fmt.Errorf("service: negative max_conflicts")
	}
	if r.MaxPropagations < 0 {
		return fmt.Errorf("service: negative max_propagations")
	}
	if r.MaxLearntBytes < 0 {
		return fmt.Errorf("service: negative max_learnt_bytes")
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("service: negative timeout_ms")
	}
	if r.Portfolio < 0 || r.Portfolio > MaxPortfolio {
		return fmt.Errorf("service: portfolio %d out of range [0, %d]", r.Portfolio, MaxPortfolio)
	}
	if r.RestartBase < 0 {
		return fmt.Errorf("service: negative restart_base")
	}
	if r.VarDecay < 0 || r.VarDecay > 1 {
		return fmt.Errorf("service: var_decay %g out of range [0, 1]", r.VarDecay)
	}
	if r.RandFreq < 0 || r.RandFreq > 1 {
		return fmt.Errorf("service: rand_freq %g out of range [0, 1]", r.RandFreq)
	}
	if r.MaxT < 0 || r.MaxT > MaxHorizon {
		return fmt.Errorf("service: max_t %d out of range [0, %d]", r.MaxT, MaxHorizon)
	}
	switch r.SweepMode {
	case "", "verify", "witness":
	default:
		return fmt.Errorf("service: sweep_mode %q (want verify | witness)", r.SweepMode)
	}
	return nil
}

// effMaxT is the sweep depth with the default applied.
func (r *Request) effMaxT() int {
	if r.MaxT == 0 {
		return 8
	}
	return r.MaxT
}

// searchOptions maps the request's heuristic knobs to sat.Options.
func (r *Request) searchOptions() sat.Options {
	return sat.Options{
		RestartBase:  r.RestartBase,
		GeomRestarts: r.GeomRestarts,
		VarDecay:     r.VarDecay,
		InitPhase:    r.InitPhase,
		RandSeed:     r.RandSeed,
		RandFreq:     r.RandFreq,
	}
}

func (r *Request) analysis() core.Analysis {
	t := r.T
	if t == 0 {
		t = 4
	}
	return core.Analysis{
		T:               t,
		Params:          r.Params,
		Model:           r.Model,
		Width:           r.Width,
		BufferCap:       r.BufferCap,
		OutBufferCap:    r.OutBufferCap,
		ArrivalsPerStep: r.ArrivalsPerStep,
		NumClasses:      r.NumClasses,
		MaxBytes:        r.MaxBytes,
		ListCap:         r.ListCap,
		MaxConflicts:    r.MaxConflicts,
		MaxPropagations: r.MaxPropagations,
		MaxLearntBytes:  r.MaxLearntBytes,
		Timeout:         time.Duration(r.TimeoutMS) * time.Millisecond,
		Search:          r.searchOptions(),
		Portfolio:       r.Portfolio,
		CrossCheck:      r.CrossCheck,
	}
}

// CacheKey returns the content address of the request: a hash over the
// program source, buffer model, horizon, query kind, compile-time
// parameters, solver options and search heuristics. Two requests with
// equal keys are guaranteed to produce the same analysis answer, so the
// engine serves repeats straight from cache without re-solving. The
// heuristic knobs and portfolio size cannot change a *correct* answer,
// but they do change which result object (trace, effort counters,
// winning config) comes back — so they participate in the key and
// differently-configured requests never alias.
func (r *Request) CacheKey() string {
	h := newKeyHasher()
	h.field(string(r.Kind))
	h.int(int64(r.T))
	h.int(int64(r.Portfolio))
	h.bool(r.CrossCheck)
	h.int(int64(r.MaxT))
	h.field(r.SweepMode)
	r.writeSolverFields(h)
	return h.sum()
}

// SessionKey is the content address of the warm-session fingerprint: a
// hash over everything that determines the session's encoding and solver
// behavior — program source, buffer model, compile-time parameters,
// capacity heuristics, bit width, per-call solver budgets and search
// heuristics, and the session capacity (effMaxT). Deliberately absent:
// the query direction and per-request horizon (those are retractable
// assumptions on one shared encoding — the whole point of a session) and
// the wall-clock timeout (a context property, not a solver one). Two
// requests with equal session keys may safely share one warm session.
func (r *Request) SessionKey() string {
	h := newKeyHasher()
	h.int(int64(r.effMaxT()))
	r.writeSolverFields(h)
	return h.sum()
}

// writeSolverFields hashes every knob that changes the encoding or the
// solver's behavior — the shared core of CacheKey and SessionKey. Adding
// a solver-relevant Request field means adding it here, which keeps the
// two keys from silently diverging (TestSessionKeyDiscriminates enforces
// this per field).
func (r *Request) writeSolverFields(h *keyHasher) {
	h.field(r.Source)
	h.field(r.Model)
	h.int(int64(r.Width))
	h.int(int64(r.BufferCap))
	h.int(int64(r.OutBufferCap))
	h.int(int64(r.ArrivalsPerStep))
	h.int(int64(r.NumClasses))
	h.int(int64(r.MaxBytes))
	h.int(int64(r.ListCap))
	h.int(r.MaxConflicts)
	h.int(r.MaxPropagations)
	h.int(r.MaxLearntBytes)
	h.int(r.RestartBase)
	h.bool(r.GeomRestarts)
	h.float(r.VarDecay)
	h.bool(r.InitPhase)
	h.uint(r.RandSeed)
	h.float(r.RandFreq)
	names := make([]string, 0, len(r.Params))
	for name := range r.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.field(name)
		h.int(r.Params[name])
	}
}

// keyHasher is a length-prefixed sha256 field hasher shared by the cache
// and session keys.
type keyHasher struct{ h hash.Hash }

func newKeyHasher() *keyHasher { return &keyHasher{h: sha256.New()} }

func (k *keyHasher) field(s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	k.h.Write(n[:])
	k.h.Write([]byte(s))
}

func (k *keyHasher) int(v int64) { k.uint(uint64(v)) }

func (k *keyHasher) uint(v uint64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	k.h.Write(n[:])
}

func (k *keyHasher) float(v float64) { k.uint(math.Float64bits(v)) }

func (k *keyHasher) bool(v bool) {
	if v {
		k.int(1)
	} else {
		k.int(0)
	}
}

func (k *keyHasher) sum() string { return hex.EncodeToString(k.h.Sum(nil)) }

// Result is the serializable outcome of an analysis job. Trace is set for
// verify/witness results that produced one; Workload for synthesis.
type Result struct {
	Kind   Kind         `json:"kind"`
	Status string       `json:"status"`
	Trace  *smtbe.Trace `json:"trace,omitempty"`
	// Synthesis outcome (kind == synthesize).
	WorkloadFound bool   `json:"workload_found,omitempty"`
	Workload      string `json:"workload,omitempty"`
	Checks        int    `json:"checks,omitempty"`
	// Bound outcome (kind == bound): the victim flow's analytical bounds as
	// exact rationals ("13/5"), Delay in steps, Backlog in packets; both
	// empty when the flow is unbounded. DurationUS is the analytical solve
	// time — microseconds, where a millisecond counter would read zero.
	Victim     string                    `json:"victim,omitempty"`
	Delay      string                    `json:"delay,omitempty"`
	Backlog    string                    `json:"backlog,omitempty"`
	DurationUS int64                     `json:"duration_us,omitempty"`
	CrossCheck *netcalc.CrossCheckReport `json:"cross_check,omitempty"`
	// Solver effort and encoding size.
	SatStats   sat.Stats `json:"sat_stats"`
	NumClauses int       `json:"num_clauses,omitempty"`
	NumVars    int       `json:"num_vars,omitempty"`
	DurationMS int64     `json:"duration_ms"`
	// Portfolio outcome (requests with portfolio > 1): how many configs
	// raced and which one produced the first conclusive answer.
	PortfolioSize   int    `json:"portfolio,omitempty"`
	PortfolioWinner string `json:"portfolio_winner,omitempty"`
	// CacheHit marks a response served from the result cache; CacheTier
	// says which tier served it (CacheTierMemory or CacheTierDisk —
	// empty for solved responses).
	CacheHit  bool   `json:"cache_hit"`
	CacheTier string `json:"cache_tier,omitempty"`
	// Tier names the analysis tier that answered: "static" when the
	// pre-solve analyzer decided the query without a solver, else empty
	// (SMT tier).
	Tier string `json:"tier,omitempty"`
	// StopReason names which resource budget (or deadline/cancel) halted
	// the search when Status is "unknown": "conflicts", "propagations",
	// "learnt-bytes", "deadline" or "cancel".
	StopReason string `json:"stop_reason,omitempty"`
	// Attempts counts how many times the engine ran the analysis (1 = no
	// retry); Degraded names the degradation step applied, if any.
	Attempts int    `json:"attempts,omitempty"`
	Degraded string `json:"degraded,omitempty"`
	// Sweep outcome (kind == sweep): every solved horizon's verdict in
	// order, the first horizon that produced a trace (0 = none up to
	// max_t), whether every horizon ran warm, and whether the sweep reused
	// an already-pooled session (false: it built — and pooled — a new one).
	Verdicts   []SweepVerdict `json:"verdicts,omitempty"`
	FoundAt    int            `json:"found_at,omitempty"`
	Warm       bool           `json:"warm,omitempty"`
	SessionHit bool           `json:"session_hit,omitempty"`
	// Search is the solver introspection record (timeline samples,
	// restart/simplify marks, depth/LBD distributions, per-portfolio-
	// config effort): the payload behind /v1/jobs/{id}/explain and
	// buffyc -explain. Only present when a solver actually ran — static-
	// tier and netcalc answers carry none. Rides the result through both
	// cache tiers, so explain works on cache hits.
	Search *sat.SearchReport `json:"search_report,omitempty"`
}

// SweepVerdict is the wire form of one horizon's answer within a sweep.
type SweepVerdict struct {
	T          int    `json:"t"`
	Status     string `json:"status"`
	Warm       bool   `json:"warm"`
	DurationUS int64  `json:"duration_us"`
	Conflicts  int64  `json:"conflicts"`
}

// Cache tiers stamped into Result.CacheTier on a hit.
const (
	// CacheTierMemory is the in-process LRU.
	CacheTierMemory = "memory"
	// CacheTierDisk is the durable result store (the entry is promoted
	// into the memory tier as it is served).
	CacheTierDisk = "disk"
)

// conclusive reports whether the result is a definite answer worth
// caching; Unknown outcomes (budget exhausted, cancelled) are not.
func (res *Result) conclusive() bool {
	switch res.Status {
	case smtbe.Holds.String(), smtbe.CounterexampleFound.String(),
		smtbe.WitnessFound.String(), smtbe.NoWitness.String():
		return true
	case "synthesized", "no-workload":
		return true
	case "bounded", "unbounded":
		return true
	}
	return false
}

func resultFromCheck(kind Kind, r *smtbe.Result) *Result {
	return &Result{
		Kind:       kind,
		Status:     r.Status.String(),
		Trace:      r.Trace,
		SatStats:   r.SatStats,
		NumClauses: r.NumClauses,
		NumVars:    r.NumVars,
		DurationMS: r.Duration.Milliseconds(),
		StopReason: r.Stop.String(),
		Tier:       r.Tier,
	}
}

// resultFromPortfolio flattens a portfolio outcome into the wire result:
// the winner's analysis result stamped with the race's shape. DurationMS
// is the portfolio's wall clock (what the client actually waited), not
// the winning config's solo solve time.
func resultFromPortfolio(kind Kind, size int, pr *portfolio.Result) *Result {
	if pr.Result == nil {
		return &Result{Kind: kind, Status: smtbe.Unknown.String(),
			PortfolioSize: size, DurationMS: pr.WallClock.Milliseconds()}
	}
	res := resultFromCheck(kind, pr.Result)
	res.PortfolioSize = size
	res.PortfolioWinner = pr.Winner
	res.DurationMS = pr.WallClock.Milliseconds()
	return res
}

// resultFromBound flattens a netcalc bound answer into the wire result.
// Status "bounded" carries the exact rational bounds; "unbounded" is a
// definite negative answer (the topology offers the victim no guarantee),
// not an Unknown — both cache. The cross-check report rides along when a
// differential validation ran; a disagreement never reaches here (it is a
// hard job failure).
func resultFromBound(r *netcalc.Result) *Result {
	res := &Result{
		Kind:       KindBound,
		Status:     "unbounded",
		Victim:     r.Victim,
		DurationMS: r.Duration.Milliseconds(),
		DurationUS: r.Duration.Microseconds(),
		CrossCheck: r.CrossCheck,
	}
	if r.Bounded {
		res.Status = "bounded"
		res.Delay = r.Delay.RatString()
		res.Backlog = r.Backlog.RatString()
	}
	return res
}

// resultFromSweep flattens a sweep outcome into the wire result. The
// top-level status, trace and solver-effort fields are the final
// horizon's (the one that ended the sweep); the per-horizon story rides
// in Verdicts.
func resultFromSweep(sr *session.SweepResult, hit bool) *Result {
	res := resultFromCheck(KindSweep, sr.Final)
	res.DurationMS = sr.Duration.Milliseconds()
	res.FoundAt = sr.FoundAt
	res.Warm = sr.Warm
	res.SessionHit = hit
	for _, v := range sr.Verdicts {
		res.Verdicts = append(res.Verdicts, SweepVerdict{
			T: v.T, Status: v.Status.String(), Warm: v.Warm,
			DurationUS: v.Duration.Microseconds(), Conflicts: v.Conflicts,
		})
	}
	return res
}

func resultFromSynth(r *fperf.Result) *Result {
	// A Found=false answer is only the definite "no-workload" when every
	// solver check was conclusive; a budget-exhausted synthesis is Unknown
	// and must not be cached as a definite answer.
	status := "no-workload"
	if r.Inconclusive {
		status = "unknown"
	}
	res := &Result{
		Kind:          KindSynthesize,
		Status:        status,
		WorkloadFound: r.Found,
		Checks:        r.Checks,
		DurationMS:    r.Duration.Milliseconds(),
	}
	if r.Found {
		res.Status = "synthesized"
		res.Workload = r.Workload.String()
	}
	return res
}
