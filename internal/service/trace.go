package service

import (
	"runtime"
	"sync"
	"time"

	"buffy/internal/telemetry"
)

// Version identifies the service build. It is a variable (not a const) so
// release builds can stamp it via -ldflags "-X buffy/internal/service.Version=...".
var Version = "0.6.0-dev"

// VersionInfo is the /v1/version payload.
type VersionInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// UptimeSeconds counts since the engine started.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func goVersion() string { return runtime.Version() }

// TraceSummary is one entry of the /v1/traces listing: enough to decide
// which trace to fetch in full, without shipping every span tree.
type TraceSummary struct {
	JobID      string    `json:"job_id"`
	Kind       string    `json:"kind"`
	State      string    `json:"state"`
	StartedAt  time.Time `json:"started_at"`
	DurationMS int64     `json:"duration_ms"`
	NumSpans   int       `json:"num_spans"`
}

// traceRing retains the N most recent finished traces so /v1/traces and
// /v1/jobs/{id}/trace keep working after job retention prunes the Job
// (and so an operator can browse recent history without knowing IDs).
type traceRing struct {
	mu      sync.Mutex
	max     int
	entries []traceEntry // oldest first
}

type traceEntry struct {
	summary TraceSummary
	trace   *telemetry.Trace
}

func newTraceRing(max int) *traceRing {
	if max <= 0 {
		max = 128
	}
	return &traceRing{max: max}
}

// add records a finished job's trace, evicting the oldest past capacity.
func (r *traceRing) add(sum TraceSummary, tr *telemetry.Trace) {
	if tr == nil {
		return
	}
	r.mu.Lock()
	r.entries = append(r.entries, traceEntry{sum, tr})
	if len(r.entries) > r.max {
		r.entries = r.entries[len(r.entries)-r.max:]
	}
	r.mu.Unlock()
}

// get returns the retained trace for a job ID.
func (r *traceRing) get(jobID string) (*telemetry.Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.entries) - 1; i >= 0; i-- {
		if r.entries[i].summary.JobID == jobID {
			return r.entries[i].trace, true
		}
	}
	return nil, false
}

// summaries lists retained traces, newest first.
func (r *traceRing) summaries() []TraceSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, len(r.entries))
	for i := len(r.entries) - 1; i >= 0; i-- {
		out = append(out, r.entries[i].summary)
	}
	return out
}
