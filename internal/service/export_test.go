package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"buffy/internal/telemetry"
)

// TestEngineExportsJobTraces is the acceptance scenario for the export
// layer: a real verify job runs through the engine and the stub
// collector receives well-formed OTLP ResourceSpans for it, carrying
// the job-level resource attributes the engine stamps at the trace tail.
func TestEngineExportsJobTraces(t *testing.T) {
	type push struct {
		rss []telemetry.OTLPResourceSpans
	}
	got := make(chan push, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req telemetry.OTLPExportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("collector received undecodable body: %v", err)
		}
		got <- push{rss: req.ResourceSpans}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	exp, err := telemetry.NewExporter(telemetry.ExportOptions{
		Endpoint:      srv.URL,
		FlushInterval: 50 * time.Millisecond,
		Resource:      []telemetry.Attr{telemetry.String("service.name", "buffy-serve")},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 1, Exporter: exp})

	job, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, 2*time.Minute)
	if res.Status != "witness" {
		t.Fatalf("status = %s, want witness", res.Status)
	}
	shutdown(t, e)
	exp.Close()

	var rss []telemetry.OTLPResourceSpans
	select {
	case p := <-got:
		rss = p.rss
	default:
		t.Fatal("collector received nothing for a finished job")
	}
	if len(rss) != 1 {
		t.Fatalf("collector received %d ResourceSpans, want 1", len(rss))
	}
	attrs := map[string]string{}
	for _, kv := range rss[0].Resource.Attributes {
		if kv.Value.StringValue != nil {
			attrs[kv.Key] = *kv.Value.StringValue
		}
	}
	if attrs["service.name"] != "buffy-serve" {
		t.Errorf("resource service.name = %q", attrs["service.name"])
	}
	if attrs["buffy.job_kind"] != "witness" {
		t.Errorf("resource buffy.job_kind = %q, want witness", attrs["buffy.job_kind"])
	}
	if attrs["buffy.job_state"] == "" {
		t.Error("resource missing buffy.job_state")
	}
	spans := rss[0].ScopeSpans[0].Spans
	if len(spans) < 2 {
		t.Fatalf("job trace exported only %d spans", len(spans))
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
		if len(sp.TraceID) != 32 || len(sp.SpanID) != 16 {
			t.Errorf("span %s: malformed ids %q/%q", sp.Name, sp.TraceID, sp.SpanID)
		}
		if sp.TraceID != spans[0].TraceID {
			t.Errorf("span %s: trace id differs within one job", sp.Name)
		}
	}
	if !names["job"] {
		t.Errorf("exported spans %v missing the root job span", names)
	}

	// The engine's metrics snapshot surfaces the exporter's counters.
	m := e.Metrics()
	if m.TraceExport == nil || m.TraceExport.Traces == 0 || m.TraceExport.Pushed == 0 {
		t.Errorf("metrics trace_export = %+v, want >=1 trace pushed", m.TraceExport)
	}
}

// TestEngineExportEndpointDownNeverFailsSolves pins non-interference:
// with the collector unreachable, jobs must still complete normally and
// promptly — export failures are counted, never propagated.
func TestEngineExportEndpointDownNeverFailsSolves(t *testing.T) {
	exp, err := telemetry.NewExporter(telemetry.ExportOptions{
		Endpoint:     "http://127.0.0.1:1/v1/traces", // reserved port: refused
		QueueSize:    2,
		Retries:      1,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, Exporter: exp})
	defer func() { shutdown(t, e); exp.Close() }()

	var jobs []*Job
	for _, tt := range []int{5, 6, 7} {
		j, err := e.Submit(fqWitnessReq(tt))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		res := waitDone(t, j, 2*time.Minute)
		if res.Status != "witness" {
			t.Fatalf("job %s: status = %s with the collector down, want witness", j.ID, res.Status)
		}
		if res.Search == nil {
			t.Errorf("job %s lost its search report when export failed", j.ID)
		}
	}
	// The failure is visible in metrics, not in results.
	if st := exp.Stats(); st.Traces == 0 {
		t.Errorf("exporter saw no traces: %+v", st)
	}
}
