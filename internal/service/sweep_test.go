package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"buffy/internal/qm"
)

func sweepReq(mode string, maxT int) *Request {
	return &Request{
		Kind:      KindSweep,
		Source:    qm.FQBuggyQuerySrc,
		Params:    map[string]int64{"N": 3},
		MaxT:      maxT,
		SweepMode: mode,
	}
}

// TestSweepJob is the sweep happy path: a witness sweep on the CS1 buggy
// scheduler finds the starvation witness at its minimal horizon, streams
// one verdict per solved horizon, and a second sweep with a different
// query direction (distinct cache key, same session fingerprint) reuses
// the pooled session.
func TestSweepJob(t *testing.T) {
	e := New(Config{Workers: 2})
	defer shutdown(t, e)

	j1, err := e.Submit(sweepReq("witness", 6))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []SweepVerdict
	for v := range j1.Verdicts() {
		streamed = append(streamed, v)
	}
	r1 := waitDone(t, j1, 2*time.Minute)
	if r1.Kind != KindSweep || r1.Status != "witness" || r1.Trace == nil {
		t.Fatalf("sweep: kind=%s status=%s trace=%v", r1.Kind, r1.Status, r1.Trace)
	}
	if r1.FoundAt == 0 || r1.FoundAt != len(r1.Verdicts) {
		t.Fatalf("FoundAt=%d with %d verdicts", r1.FoundAt, len(r1.Verdicts))
	}
	if !r1.Warm || r1.SessionHit {
		t.Fatalf("first sweep: warm=%v session_hit=%v, want warm miss", r1.Warm, r1.SessionHit)
	}
	if len(streamed) != len(r1.Verdicts) {
		t.Fatalf("streamed %d verdicts, result has %d", len(streamed), len(r1.Verdicts))
	}
	for i, v := range streamed {
		if v != r1.Verdicts[i] {
			t.Fatalf("streamed verdict %d = %+v, result %+v", i, v, r1.Verdicts[i])
		}
	}

	// Same program and solver knobs, different query direction: a cache
	// miss but a session hit.
	j2, err := e.Submit(sweepReq("verify", 6))
	if err != nil {
		t.Fatal(err)
	}
	r2 := waitDone(t, j2, 2*time.Minute)
	if r2.CacheHit {
		t.Fatal("verify sweep must not alias the witness sweep's cache entry")
	}
	if !r2.SessionHit || !r2.Warm {
		t.Fatalf("second sweep: session_hit=%v warm=%v, want warm hit", r2.SessionHit, r2.Warm)
	}

	// Identical resubmit: served from the result cache, verdicts intact.
	j3, err := e.Submit(sweepReq("witness", 6))
	if err != nil {
		t.Fatal(err)
	}
	r3 := waitDone(t, j3, 5*time.Second)
	if !r3.CacheHit || len(r3.Verdicts) != len(r1.Verdicts) {
		t.Fatalf("cache replay: hit=%v verdicts=%d want %d", r3.CacheHit, len(r3.Verdicts), len(r1.Verdicts))
	}
	if j3.Verdicts() != nil {
		t.Fatal("cache-hit sweep job must not carry a verdict stream")
	}

	m := e.Metrics()
	if m.SessionMisses != 1 || m.SessionHits != 1 {
		t.Fatalf("session hits=%d misses=%d, want 1/1", m.SessionHits, m.SessionMisses)
	}
	if m.SessionsLive != 1 {
		t.Fatalf("sessions_live=%d, want 1", m.SessionsLive)
	}
}

// TestConcurrentSweepsShareSession: many clients sweeping the same
// program fingerprint concurrently share ONE warm session — the first
// builds it (single-flight), the rest wait and reuse. Run with -race:
// the session serializes queries internally, the pool must not.
func TestConcurrentSweepsShareSession(t *testing.T) {
	e := New(Config{Workers: 4})
	defer shutdown(t, e)

	const clients = 4
	results := make([]*Result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		// Alternate modes so no two in-flight requests alias in the result
		// cache path by luck of scheduling; all share the session key.
		req := sweepReq("witness", 6)
		if i%2 == 1 {
			req.SweepMode = "verify"
		}
		req.RandSeed = 0 // identical solver knobs across all clients
		wg.Add(1)
		go func(i int, req *Request) {
			defer wg.Done()
			job, err := e.Submit(req)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			res, err := job.Wait(t.Context())
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i] = res
		}(i, req)
	}
	wg.Wait()

	m := e.Metrics()
	if m.SessionsLive != 1 {
		t.Fatalf("sessions_live=%d, want exactly 1 shared session", m.SessionsLive)
	}
	if m.SessionMisses != 1 {
		t.Fatalf("session_misses=%d, want 1 (single-flight build)", m.SessionMisses)
	}
	// Everyone except cache-served repeats touched the pool; at least one
	// must have been a hit on the shared session.
	if m.SessionHits < 1 {
		t.Fatalf("session_hits=%d, want >= 1", m.SessionHits)
	}
	// Same-mode clients must agree verdict-for-verdict.
	for i := 2; i < clients; i++ {
		a, b := results[i-2], results[i]
		if a == nil || b == nil {
			t.Fatal("missing result")
		}
		if a.Status != b.Status || a.FoundAt != b.FoundAt {
			t.Fatalf("clients %d/%d disagree: %s@%d vs %s@%d",
				i-2, i, a.Status, a.FoundAt, b.Status, b.FoundAt)
		}
	}
}

// TestSweepEvictionStorm: a pool squeezed to one entry and a byte budget
// too small for any session evicts constantly while concurrent sweeps of
// distinct fingerprints run. Answers must match an unpooled engine's
// (eviction degrades to cold solves, never changes verdicts), and the
// pool must end within its budgets.
func TestSweepEvictionStorm(t *testing.T) {
	e := New(Config{Workers: 4, SessionEntries: 1, SessionMaxBytes: 1})
	defer shutdown(t, e)
	cold := New(Config{Workers: 2, SessionEntries: -1})
	defer shutdown(t, cold)

	reqs := []*Request{
		sweepReq("witness", 5),
		{Kind: KindSweep, Source: qm.RRQuerySrc, Params: map[string]int64{"N": 2}, MaxT: 4, SweepMode: "witness"},
		{Kind: KindSweep, Source: qm.SPQuerySrc, Params: map[string]int64{"N": 3}, MaxT: 4, SweepMode: "witness"},
		{Kind: KindSweep, Source: qm.FQFixedQuerySrc, Params: map[string]int64{"N": 3}, MaxT: 4, SweepMode: "verify"},
	}
	type outcome struct {
		status  string
		foundAt int
	}
	got := make([]outcome, len(reqs))
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		for i, req := range reqs {
			// Distinct RandSeed per round: new fingerprints, fresh builds,
			// more eviction pressure (round 0 reuses are cache hits anyway).
			r := *req
			r.Params = req.Params
			r.RandSeed = uint64(round * 100)
			wg.Add(1)
			go func(i int, r *Request) {
				defer wg.Done()
				job, err := e.Submit(r)
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				res, err := job.Wait(t.Context())
				if err != nil {
					t.Errorf("job %d: %v", i, err)
					return
				}
				got[i] = outcome{res.Status, res.FoundAt}
			}(i, &r)
		}
		wg.Wait()
	}

	for i, req := range reqs {
		job, err := cold.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := job.Wait(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		if got[i].status != want.Status || got[i].foundAt != want.FoundAt {
			t.Errorf("req %d: storm answered %s@%d, cold %s@%d",
				i, got[i].status, got[i].foundAt, want.Status, want.FoundAt)
		}
	}

	m := e.Metrics()
	if m.SessionBytes > 1 {
		t.Fatalf("pool over byte budget after storm: %d bytes", m.SessionBytes)
	}
	var evictions int64
	for _, n := range m.SessionEvictions {
		evictions += n
	}
	if evictions == 0 {
		t.Fatal("storm produced no evictions; test is vacuous")
	}
}

// TestSessionKeyDiscriminates: every solver-relevant knob must change the
// session fingerprint (sharing across them would answer with the wrong
// encoding or budgets), while query-level knobs — direction, horizon
// within capacity, portfolio, timeout — must NOT (sharing across them is
// the whole point of a warm session).
func TestSessionKeyDiscriminates(t *testing.T) {
	base := func() *Request { return sweepReq("witness", 6) }
	baseKey := base().SessionKey()

	distinct := map[string]func(*Request){
		"source":           func(r *Request) { r.Source += " " },
		"model":            func(r *Request) { r.Model = "count" },
		"params":           func(r *Request) { r.Params = map[string]int64{"N": 4} },
		"width":            func(r *Request) { r.Width = 14 },
		"buffer_cap":       func(r *Request) { r.BufferCap = 9 },
		"out_buffer_cap":   func(r *Request) { r.OutBufferCap = 9 },
		"arrivals":         func(r *Request) { r.ArrivalsPerStep = 2 },
		"num_classes":      func(r *Request) { r.NumClasses = 3 },
		"max_bytes":        func(r *Request) { r.MaxBytes = 64 },
		"list_cap":         func(r *Request) { r.ListCap = 5 },
		"max_conflicts":    func(r *Request) { r.MaxConflicts = 100 },
		"max_propagations": func(r *Request) { r.MaxPropagations = 1000 },
		"max_learnt_bytes": func(r *Request) { r.MaxLearntBytes = 1 << 20 },
		"restart_base":     func(r *Request) { r.RestartBase = 50 },
		"geom_restarts":    func(r *Request) { r.GeomRestarts = true },
		"var_decay":        func(r *Request) { r.VarDecay = 0.9 },
		"init_phase":       func(r *Request) { r.InitPhase = true },
		"rand_seed":        func(r *Request) { r.RandSeed = 7 },
		"rand_freq":        func(r *Request) { r.RandFreq = 0.05 },
		"max_t":            func(r *Request) { r.MaxT = 9 },
	}
	seen := map[string]string{baseKey: "base"}
	for name, mutate := range distinct {
		r := base()
		mutate(r)
		key := r.SessionKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("%s: session key collides with %s", name, prev)
		}
		seen[key] = name
	}

	same := map[string]func(*Request){
		"kind":       func(r *Request) { r.Kind = KindVerify },
		"sweep_mode": func(r *Request) { r.SweepMode = "verify" },
		"t":          func(r *Request) { r.T = 3 },
		"portfolio":  func(r *Request) { r.Portfolio = 4 },
		"timeout":    func(r *Request) { r.TimeoutMS = 9000 },
		"crosscheck": func(r *Request) { r.CrossCheck = true },
	}
	for name, mutate := range same {
		r := base()
		mutate(r)
		if key := r.SessionKey(); key != baseKey {
			t.Errorf("%s: must not change the session key (it is retractable per query)", name)
		}
		// ... but each still discriminates the result cache (timeout is in
		// neither key: only uncacheable Unknown outcomes depend on it).
		if name != "timeout" && r.CacheKey() == base().CacheKey() {
			t.Errorf("%s: must still change the cache key", name)
		}
	}
}

// TestSweepHTTPStream covers POST /v1/sweep end to end: NDJSON verdict
// lines followed by a terminal done line, and the cached replay matching.
func TestSweepHTTPStream(t *testing.T) {
	e := New(Config{Workers: 2})
	defer shutdown(t, e)
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	body, _ := json.Marshal(sweepReq("witness", 6))
	post := func() (verdicts []SweepVerdict, done *JobView) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content-type %q", ct)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var l sweepLine
			if err := json.Unmarshal([]byte(line), &l); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			switch {
			case l.Verdict != nil:
				if done != nil {
					t.Fatal("verdict line after done line")
				}
				verdicts = append(verdicts, *l.Verdict)
			case l.Done != nil:
				done = l.Done
			default:
				t.Fatalf("line %q has neither verdict nor done", line)
			}
		}
		if done == nil {
			t.Fatal("stream ended without a done line")
		}
		return verdicts, done
	}

	v1, d1 := post()
	if d1.State != StateDone || d1.Result == nil || d1.Result.Status != "witness" {
		t.Fatalf("done line: state=%s result=%+v", d1.State, d1.Result)
	}
	if len(v1) == 0 || len(v1) != len(d1.Result.Verdicts) {
		t.Fatalf("streamed %d verdicts, result carries %d", len(v1), len(d1.Result.Verdicts))
	}
	for i := range v1 {
		if v1[i] != d1.Result.Verdicts[i] {
			t.Fatalf("line %d: %+v != %+v", i, v1[i], d1.Result.Verdicts[i])
		}
	}

	// Cached replay keeps the same line protocol.
	v2, d2 := post()
	if !d2.Result.CacheHit {
		t.Fatal("second post should hit the result cache")
	}
	if len(v2) != len(v1) {
		t.Fatalf("cached replay streamed %d verdicts, want %d", len(v2), len(v1))
	}

	// The Prometheus exposition carries the session metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, want := range []string{
		"buffy_sessions_live 1",
		"buffy_session_hits_total",
		"buffy_session_misses_total 1",
		"buffy_session_evictions_total",
		fmt.Sprintf("buffy_jobs_submitted_total{kind=%q}", KindSweep),
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestSweepValidation rejects malformed sweep requests at submit.
func TestSweepValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	for _, req := range []*Request{
		{Kind: KindSweep, Source: "x", MaxT: MaxHorizon + 1},
		{Kind: KindSweep, Source: "x", MaxT: -1},
		{Kind: KindSweep, Source: "x", SweepMode: "sideways"},
	} {
		if _, err := e.Submit(req); err == nil {
			t.Errorf("Submit(%+v) should fail validation", req)
		}
	}
}
