package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"buffy/internal/portfolio"
)

// TestClassify pins the failure taxonomy: every outcome the worker can
// see maps to exactly one class and metric reason.
func TestClassify(t *testing.T) {
	cases := []struct {
		name   string
		res    *Result
		err    error
		class  failureClass
		reason string
	}{
		{"conclusive", &Result{Status: "witness"}, nil, failNone, ""},
		{"unknown-no-stop", &Result{Status: "unknown"}, nil, failNone, ""},
		{"budget-conflicts", &Result{Status: "unknown", StopReason: "conflicts"}, nil, failTransient, "budget-conflicts"},
		{"budget-propagations", &Result{Status: "unknown", StopReason: "propagations"}, nil, failTransient, "budget-propagations"},
		{"budget-learnt", &Result{Status: "unknown", StopReason: "learnt-bytes"}, nil, failTransient, "budget-learnt-bytes"},
		{"deadline-stop-not-budget", &Result{Status: "unknown", StopReason: "deadline"}, nil, failNone, ""},
		{"canceled", nil, context.Canceled, failCanceled, "canceled"},
		{"deadline", nil, context.DeadlineExceeded, failDeadline, "deadline"},
		{"panic", nil, fmt.Errorf("%w: oops", ErrAnalysisPanic), failTransient, "panic"},
		{"disagreement", nil, fmt.Errorf("check: %w", portfolio.ErrDisagreement), failTransient, "disagreement"},
		{"parse-error", nil, errors.New("parse: unexpected token"), failPermanent, "input"},
	}
	for _, tc := range cases {
		class, reason := classify(tc.res, tc.err)
		if class != tc.class || reason != tc.reason {
			t.Errorf("%s: classify = (%v, %q), want (%v, %q)",
				tc.name, class, reason, tc.class, tc.reason)
		}
	}
}

// TestDegradeLadder pins the degradation ladder's three rungs.
func TestDegradeLadder(t *testing.T) {
	// Budget exhaustion escalates every set budget, leaving unset ones off.
	req := &Request{MaxConflicts: 100, MaxLearntBytes: 1 << 20}
	if step := degradeForRetry(req, "budget-conflicts"); step != "budget-escalated" {
		t.Errorf("step = %q, want budget-escalated", step)
	}
	if req.MaxConflicts != 100*escalationFactor {
		t.Errorf("MaxConflicts = %d, want %d", req.MaxConflicts, 100*escalationFactor)
	}
	if req.MaxLearntBytes != (1<<20)*escalationFactor {
		t.Errorf("MaxLearntBytes = %d, want %d", req.MaxLearntBytes, (1<<20)*escalationFactor)
	}
	if req.MaxPropagations != 0 {
		t.Errorf("unset budget escalated to %d", req.MaxPropagations)
	}

	// A panicking portfolio degrades to a single default config first...
	req = &Request{Portfolio: 4}
	if step := degradeForRetry(req, "panic"); step != "portfolio-off" || req.Portfolio != 0 {
		t.Errorf("step=%q portfolio=%d, want portfolio-off / 0", step, req.Portfolio)
	}
	// ...and an already-single config gets a tight bounded budget.
	if step := degradeForRetry(req, "panic"); step != "budget-reduced" || req.MaxConflicts != retryConflictBudget {
		t.Errorf("step=%q conflicts=%d, want budget-reduced / %d", step, req.MaxConflicts, retryConflictBudget)
	}
	// A third rung does nothing: the request is already minimal.
	if step := degradeForRetry(req, "panic"); step != "" {
		t.Errorf("step = %q, want no-op", step)
	}
}

// TestAdmissionRejectsUnmeetableDeadline is the acceptance scenario for
// deadline-aware admission: with synthetic EWMA state saying witness
// queries take ~10s, a 50ms-deadline submission is rejected at submit
// time with ErrDeadlineUnmeetable instead of queuing up to time out.
func TestAdmissionRejectsUnmeetableDeadline(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	e.admit.observe(KindWitness, 10*time.Second)

	req := fqWitnessReq(2)
	req.TimeoutMS = 50
	if _, err := e.Submit(req); !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("Submit = %v, want ErrDeadlineUnmeetable", err)
	}
	m := e.Metrics()
	if m.AdmissionRejected != 1 {
		t.Errorf("AdmissionRejected = %d, want 1", m.AdmissionRejected)
	}
	if m.JobsRejected != 1 {
		t.Errorf("JobsRejected = %d, want 1", m.JobsRejected)
	}

	// A deadline the estimate fits inside is admitted and solves.
	req = fqWitnessReq(2)
	req.TimeoutMS = 60_000
	job, err := e.Submit(req)
	if err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
	waitDone(t, job, time.Minute)

	// Unknown request classes (no EWMA yet) are always admitted.
	synth := &Request{Kind: KindVerify, Source: fqWitnessReq(2).Source,
		Params: map[string]int64{"N": 3}, T: 2, TimeoutMS: 1}
	if _, err := e.Submit(synth); errors.Is(err, ErrDeadlineUnmeetable) {
		t.Error("class without latency history must be admitted")
	}
}

// TestAdmissionEWMATracksLatency pins the estimator itself.
func TestAdmissionEWMATracksLatency(t *testing.T) {
	a := newAdmission()
	if _, ok := a.estimate(KindVerify); ok {
		t.Fatal("estimate before any observation")
	}
	a.observe(KindVerify, time.Second)
	if est, _ := a.estimate(KindVerify); est != time.Second {
		t.Errorf("first observation = %v, want 1s", est)
	}
	a.observe(KindVerify, 2*time.Second)
	est, _ := a.estimate(KindVerify)
	if est <= time.Second || est >= 2*time.Second {
		t.Errorf("EWMA = %v, want strictly between 1s and 2s", est)
	}
	if got := a.maxEstimate(); got != est {
		t.Errorf("maxEstimate = %v, want %v", got, est)
	}
	// Classes are independent.
	if _, ok := a.estimate(KindSynthesize); ok {
		t.Error("unobserved class has an estimate")
	}
}

// TestRetryEscalatesBudget runs a budget-starved CS1 witness query with
// retries enabled: the first attempt exhausts its 1-conflict budget, the
// engine escalates and retries, and the job still finishes as Done (the
// final outcome may be the witness or a wider Unknown — both are valid;
// what must not happen is a failure or a hang).
func TestRetryEscalatesBudget(t *testing.T) {
	e := New(Config{Workers: 1, MaxRetries: 2, RetryBackoff: time.Millisecond})
	defer shutdown(t, e)

	req := fqWitnessReq(6)
	req.MaxConflicts = 1
	job, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, 2*time.Minute)
	if res.Attempts < 2 {
		t.Errorf("Attempts = %d, want >= 2 (first attempt must exhaust its budget)", res.Attempts)
	}
	if res.Degraded != "budget-escalated" {
		t.Errorf("Degraded = %q, want budget-escalated", res.Degraded)
	}
	m := e.Metrics()
	if m.JobRetries["budget-conflicts"] < 1 {
		t.Errorf("JobRetries[budget-conflicts] = %d, want >= 1", m.JobRetries["budget-conflicts"])
	}
	if m.BudgetExhausted["conflicts"] < 1 {
		t.Errorf("BudgetExhausted[conflicts] = %d, want >= 1", m.BudgetExhausted["conflicts"])
	}
	if m.JobsDegraded < 1 {
		t.Errorf("JobsDegraded = %d, want >= 1", m.JobsDegraded)
	}
}

// TestPanicRetriedThenFails pins the transient-exhausted path: a request
// that panics on every attempt (unsupported bit width, bypassing
// Validate) is retried with degradation and then fails with the panic
// reason — counted under jobs_failed{reason="panic"}.
func TestPanicRetriedThenFails(t *testing.T) {
	e := New(Config{Workers: 1, MaxRetries: 1, RetryBackoff: time.Millisecond})
	defer shutdown(t, e)
	req := fqWitnessReq(2)
	req.Width = 1 // bitblast.New panics on this
	e.mu.Lock()
	job := e.newJobLocked(req)
	e.mu.Unlock()
	e.runJob(job)

	if st := job.State(); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	if _, err := job.Result(); !errors.Is(err, ErrAnalysisPanic) {
		t.Errorf("error = %v, want ErrAnalysisPanic", err)
	}
	m := e.Metrics()
	if m.JobsFailedBy["panic"] != 1 {
		t.Errorf("JobsFailedBy[panic] = %d, want 1", m.JobsFailedBy["panic"])
	}
	if m.JobRetries["panic"] != 1 {
		t.Errorf("JobRetries[panic] = %d, want 1", m.JobRetries["panic"])
	}
}

// TestBudgetUnknownWithoutRetries pins the opt-out default: MaxRetries=0
// finishes a budget-exhausted solve as Done/unknown on the first attempt,
// stamped with its stop reason — the pre-retry library semantics.
func TestBudgetUnknownWithoutRetries(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	req := fqWitnessReq(6)
	req.MaxConflicts = 1
	job, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, time.Minute)
	if res.Status != "unknown" {
		t.Fatalf("status = %s, want unknown", res.Status)
	}
	if res.StopReason != "conflicts" {
		t.Errorf("StopReason = %q, want conflicts", res.StopReason)
	}
	if res.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", res.Attempts)
	}
	if m := e.Metrics(); m.BudgetExhausted["conflicts"] != 1 {
		t.Errorf("BudgetExhausted[conflicts] = %d, want 1", m.BudgetExhausted["conflicts"])
	}
}
