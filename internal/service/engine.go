package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/core"
	"buffy/internal/faultinject"
	"buffy/internal/session"
	"buffy/internal/smt/sat"
	"buffy/internal/store"
	"buffy/internal/telemetry"
)

// Submission errors.
var (
	// ErrQueueFull is returned when the bounded queue has no room; callers
	// should shed load (HTTP 503) rather than block the accept loop.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed is returned once Shutdown has begun.
	ErrClosed = errors.New("service: engine shut down")
	// ErrDeadlineUnmeetable is returned by deadline-aware admission: given
	// the queue backlog and the request class's recent latency, the job
	// would blow its deadline before a worker could finish it — so it is
	// rejected at submit time instead of timing out later.
	ErrDeadlineUnmeetable = errors.New("service: deadline unmeetable under current load")
)

// State is a job's lifecycle phase.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one analysis in flight. All accessors are safe for concurrent
// use; Done() closes exactly once when the job reaches a terminal state.
type Job struct {
	ID  string
	Req *Request

	engine *Engine
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// trace and progress are created with the job and immutable after:
	// readers poll them concurrently with the solve (both types are
	// internally synchronized). Cache-hit jobs carry neither.
	trace    *telemetry.Trace
	progress *sat.Progress
	// recorder accumulates the progress feed into a SearchReport
	// (attached to the result, served by /v1/jobs/{id}/explain). Rides
	// on progress, so cache-hit jobs carry none.
	recorder *sat.SearchRecorder

	// verdicts streams a sweep job's per-horizon answers to a listening
	// handler. Buffered for the deepest possible sweep so the worker never
	// blocks on a slow (or absent) reader; closed by the worker when the
	// sweep ends. Nil for non-sweep and cache-hit jobs.
	verdicts chan SweepVerdict

	mu        sync.Mutex
	state     State
	result    *Result
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Trace returns the job's span trace (nil for cache-hit jobs). Safe to
// snapshot while the job runs.
func (j *Job) Trace() *telemetry.Trace { return j.trace }

// Progress returns the job's live solver-effort counters (nil for
// cache-hit jobs). Safe to poll while the job runs.
func (j *Job) Progress() *sat.Progress { return j.progress }

// SearchRecorder returns the job's search-introspection recorder (nil
// for cache-hit jobs). Safe to Report() while the job runs.
func (j *Job) SearchRecorder() *sat.SearchRecorder { return j.recorder }

// Verdicts returns the sweep job's per-horizon verdict stream (nil for
// non-sweep and cache-hit jobs). The worker closes it when the sweep
// ends; a job canceled while queued never closes it, so readers must
// also select on Done.
func (j *Job) Verdicts() <-chan SweepVerdict { return j.verdicts }

// sendVerdict forwards one horizon verdict to the stream. The buffer
// covers the deepest sweep, so a full channel can only mean a logic bug;
// dropping (rather than blocking a worker forever) is the safe failure.
func (j *Job) sendVerdict(v SweepVerdict) {
	select {
	case j.verdicts <- v:
	default:
	}
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's outcome once terminal (nil, nil before that).
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Wait blocks until the job is terminal or ctx expires. On ctx expiry the
// job keeps running (callers decide whether to Cancel).
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel aborts the job: a queued job completes immediately as canceled,
// a running job's solver observes the cancellation cooperatively and
// unwinds within a bounded number of search steps.
func (j *Job) Cancel() {
	j.cancel()
	// A queued job will never be started by a worker once canceled, so it
	// must be finished here or waiters would hang.
	if j.finish(StateCanceled, nil, context.Canceled) {
		j.engine.met.canceled.Add(1)
		j.engine.noteFinished(j.ID)
	}
}

// tryStart flips queued → running; false means the job was canceled
// while waiting and the worker must skip it.
func (j *Job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state exactly once; the first caller
// wins. It reports whether this call performed the transition — but a
// queued job is only finished by Cancel, never by a worker.
func (j *Job) finish(st State, res *Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	if st == StateCanceled && j.state == StateRunning {
		// Cancel of a running job: let the worker unwind and record the
		// terminal state (it observes ctx cancellation from the solver).
		return false
	}
	j.state = st
	j.result = res
	j.err = err
	j.finished = time.Now()
	close(j.done)
	return true
}

// finishFromWorker is finish for the owning worker: it may complete a
// running job with any terminal state.
func (j *Job) finishFromWorker(st State, res *Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = st
	j.result = res
	j.err = err
	j.finished = time.Now()
	close(j.done)
}

// Times returns the submit/start/finish timestamps (zero if not reached).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// Config sizes the engine. Zero values pick production-sane defaults.
type Config struct {
	// Workers is the solver pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64). Beyond
	// it Submit returns ErrQueueFull.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int
	// DefaultTimeout is the per-job deadline when a request does not set
	// one (default 60s; negative means no deadline).
	DefaultTimeout time.Duration
	// Retention caps how many finished jobs stay queryable via Job()
	// (default 1024).
	Retention int
	// MaxRetries caps how many times a transient failure (budget
	// exhaustion, recovered panic, portfolio disagreement) is retried with
	// an escalated or degraded configuration. Default 0: every attempt's
	// outcome is final, preserving the library's one-shot semantics;
	// buffy-serve opts in via its -retries flag.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 50ms).
	RetryBackoff time.Duration
	// Logger receives structured job-lifecycle logs (default: discard).
	Logger *slog.Logger
	// TraceSpans bounds each job trace's span count (default
	// telemetry.DefaultMaxSpans; negative disables tracing).
	TraceSpans int
	// TraceRetention caps how many finished traces stay browsable via
	// /v1/traces after their jobs are pruned (default 128).
	TraceRetention int
	// SessionEntries bounds the warm-session pool for sweep jobs (default
	// 32; negative disables pooling — every sweep builds a private
	// session).
	SessionEntries int
	// SessionMaxBytes bounds the pool's estimated memory: problem
	// encodings plus learnt-clause databases (default 256 MiB; sessions
	// whose learnt DB grows push colder entries out).
	SessionMaxBytes int64
	// Store, when non-nil, is the durable second cache tier: conclusive
	// results are written behind (asynchronously) and missed keys are
	// read through on Submit. The engine takes ownership and closes it
	// on Shutdown. Open it under service.PipelineFingerprint() so a
	// pipeline change invalidates stored answers.
	Store *store.Store
	// Exporter, when non-nil, receives every finished job's trace
	// snapshot for OTLP export. The engine only enqueues (never blocks);
	// the caller that built the exporter owns its lifecycle and closes
	// it after Shutdown drains the workers.
	Exporter *telemetry.Exporter
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.Retention <= 0 {
		c.Retention = 1024
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.TraceSpans == 0 {
		c.TraceSpans = telemetry.DefaultMaxSpans
	}
	if c.TraceRetention <= 0 {
		c.TraceRetention = 128
	}
	if c.SessionEntries == 0 {
		c.SessionEntries = 32
	}
	if c.SessionMaxBytes == 0 {
		c.SessionMaxBytes = 256 << 20
	}
	return c
}

// Engine is the analysis job engine: a bounded queue feeding a worker
// pool, fronted by a content-addressed result cache.
type Engine struct {
	cfg      Config
	queue    chan *Job
	cache    *cache
	met      *metrics
	admit    *admission
	log      *slog.Logger
	traces   *traceRing
	sessions *sessionPool

	// Durable second cache tier (nil when not configured). Writes ride a
	// bounded queue drained by a single writer goroutine so disk latency
	// never blocks a solver worker; a full queue drops the write (the
	// answer is still cached in memory) and counts it.
	store     *store.Store
	storeQ    chan storeWrite
	storeWG   sync.WaitGroup
	storeOnce sync.Once

	draining atomic.Bool

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	finished []string // finished job IDs, oldest first, for retention pruning
	nextID   int64

	wg sync.WaitGroup
}

// New starts an engine with cfg.Workers solver workers.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	met := newMetrics()
	e := &Engine{
		cfg:        cfg,
		queue:      make(chan *Job, cfg.QueueDepth),
		cache:      newCache(cfg.CacheEntries),
		met:        met,
		admit:      newAdmission(),
		log:        cfg.Logger,
		traces:     newTraceRing(cfg.TraceRetention),
		sessions:   newSessionPool(cfg.SessionEntries, cfg.SessionMaxBytes, met),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	if cfg.Store != nil {
		e.store = cfg.Store
		e.storeQ = make(chan storeWrite, 256)
		e.storeWG.Add(1)
		go e.storeWriter()
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Submit validates and enqueues a request. A cache hit — in the memory
// LRU or, missing that, the durable disk tier — returns an
// already-terminal job carrying the cached result, no worker involved;
// a disk hit is also promoted into the memory tier.
func (e *Engine) Submit(req *Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	key := req.CacheKey()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if cached, ok := e.cache.get(key); ok {
		job := e.serveCachedLocked(req, cached, CacheTierMemory)
		e.mu.Unlock()
		return job, nil
	}
	e.mu.Unlock()

	// Disk read-through runs outside the engine lock: a store Get is real
	// I/O (read + checksum) and must not serialize submissions.
	if cached, ok := e.storeGet(key); ok {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, ErrClosed
		}
		tier := CacheTierDisk
		if mem, ok := e.cache.get(key); ok {
			// A racing identical submit promoted the entry while we read
			// the disk; serve the memory copy.
			cached, tier = mem, CacheTierMemory
		} else {
			e.cache.put(key, cached)
		}
		job := e.serveCachedLocked(req, cached, tier)
		e.mu.Unlock()
		return job, nil
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}

	// Deadline-aware admission: with queueLen jobs already waiting for
	// cfg.Workers workers, this job starts after roughly queueLen/workers
	// typical solves and then needs one more of its own. If that cannot
	// fit inside its deadline, admitting it only converts a fast 503 into
	// a slow 504 while burning a queue slot.
	if est, ok := e.admit.estimate(req.Kind); ok {
		deadline := time.Duration(req.TimeoutMS) * time.Millisecond
		if deadline <= 0 {
			deadline = e.cfg.DefaultTimeout
		}
		if deadline > 0 {
			eta := est + est*time.Duration(len(e.queue))/time.Duration(e.cfg.Workers)
			if eta > deadline {
				e.met.rejected.Add(1)
				e.met.admissionRejected.Add(1)
				return nil, fmt.Errorf("%w: estimated completion %v > deadline %v",
					ErrDeadlineUnmeetable, eta.Round(time.Millisecond), deadline)
			}
		}
	}

	job := e.newJobLocked(req)
	select {
	case e.queue <- job:
	default:
		delete(e.jobs, job.ID)
		job.cancel()
		// Rejected work never counts as submitted: submitted must
		// reconcile with completed+failed+canceled.
		e.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
	e.met.recordSubmit(req.Kind)
	e.met.cacheMisses.Add(1)
	return job, nil
}

// serveCachedLocked builds the already-terminal job a cache hit returns,
// stamped with the tier that served it.
func (e *Engine) serveCachedLocked(req *Request, cached *Result, tier string) *Job {
	e.met.recordSubmit(req.Kind)
	e.met.cacheHits.Add(1)
	job := e.newJobLocked(req)
	// A cache hit never runs the pipeline: no spans to record, no
	// live progress to poll, no verdicts to stream (they ride in the
	// cached result).
	job.trace, job.progress, job.recorder, job.verdicts = nil, nil, nil, nil
	// Shallow copy: the trace/workload payload is shared (immutable),
	// only the per-response CacheHit/CacheTier stamps differ.
	res := *cached
	res.CacheHit = true
	res.CacheTier = tier
	job.state = StateDone
	job.result = &res
	job.started = job.submitted
	job.finished = job.submitted
	close(job.done)
	e.met.completed.Add(1)
	e.noteFinishedLocked(job.ID)
	return job
}

// storeGet reads a result through the durable tier. The store has
// already verified checksum and pipeline fingerprint; what remains is
// semantic validation of the decoded payload — an entry that is
// bit-exact yet undecodable or inconclusive is quarantined, never
// served.
func (e *Engine) storeGet(key string) (*Result, bool) {
	if e.store == nil {
		return nil, false
	}
	payload, ok := e.store.Get(key)
	if !ok {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(payload, &res); err != nil {
		e.store.Quarantine(key, "decode")
		return nil, false
	}
	if !res.conclusive() {
		e.store.Quarantine(key, "inconclusive")
		return nil, false
	}
	// The promoted copy re-enters the memory tier as a fresh answer; the
	// serving path stamps CacheHit/CacheTier per response.
	res.CacheHit = false
	res.CacheTier = ""
	return &res, true
}

// storeWrite is one pending write-behind: a cache key and its
// JSON-encoded conclusive Result.
type storeWrite struct {
	key     string
	payload []byte
}

// storePutAsync hands a conclusive result to the store writer without
// blocking the solver worker. A full write queue drops the write — the
// answer stays served from memory; only restart warmth is lost — and
// counts the drop.
func (e *Engine) storePutAsync(key string, res *Result) {
	if e.store == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		e.met.storeDropped.Add(1)
		e.log.Warn("store write dropped: result not serializable", "key", key, "err", err.Error())
		return
	}
	select {
	case e.storeQ <- storeWrite{key: key, payload: payload}:
	default:
		e.met.storeDropped.Add(1)
	}
}

// storeWriter drains the write-behind queue. Write failures (full disk,
// read-only store) are logged and counted by the store; the in-memory
// answer the client already received is unaffected.
func (e *Engine) storeWriter() {
	defer e.storeWG.Done()
	for w := range e.storeQ {
		if err := e.store.Put(w.key, w.payload); err != nil {
			e.log.Warn("store write failed", "key", w.key, "err", err.Error())
		}
	}
}

func (e *Engine) newJobLocked(req *Request) *Job {
	e.nextID++
	ctx, cancel := context.WithCancel(e.baseCtx)
	job := &Job{
		ID:        fmt.Sprintf("j%08d", e.nextID),
		Req:       req,
		engine:    e,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	if e.cfg.TraceSpans > 0 {
		job.trace = telemetry.NewTraceN(job.ID, e.cfg.TraceSpans)
		job.progress = &sat.Progress{}
		job.recorder = sat.NewSearchRecorder()
		job.progress.SetRecorder(job.recorder)
	}
	if req.Kind == KindSweep {
		job.verdicts = make(chan SweepVerdict, MaxHorizon+1)
	}
	e.jobs[job.ID] = job
	return job
}

// Closed reports whether Shutdown has begun.
func (e *Engine) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// BeginDrain marks the engine as draining: readiness probes start
// failing so load balancers stop routing new work here, while already
// accepted jobs keep running. Call it ahead of Shutdown to drain
// gracefully behind a balancer.
func (e *Engine) BeginDrain() { e.draining.Store(true) }

// Ready reports whether the engine should receive new work: true until
// BeginDrain or Shutdown. Liveness is separate — a draining engine is
// alive but not ready.
func (e *Engine) Ready() bool { return !e.draining.Load() && !e.Closed() }

// RetryAfter estimates, in whole seconds (min 1), how long a shed client
// should wait before retrying: the queue backlog divided across the
// worker pool, priced at the slowest request class's recent latency.
func (e *Engine) RetryAfter() int {
	est := e.admit.maxEstimate()
	if est <= 0 {
		return 1
	}
	wait := est * time.Duration(len(e.queue)+1) / time.Duration(e.cfg.Workers)
	if secs := int(math.Ceil(wait.Seconds())); secs > 1 {
		return secs
	}
	return 1
}

// Job looks up a job by ID (live or within the retention window).
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Metrics returns a point-in-time snapshot of all counters.
func (e *Engine) Metrics() Snapshot {
	live, bytes := e.sessions.stats()
	s := e.met.snapshot(len(e.queue), e.cfg.Workers, e.cache.len(), live, bytes)
	if e.store != nil {
		s.Store = &StoreSnapshot{
			Stats:   e.store.Stats(),
			Dropped: e.met.storeDropped.Load(),
		}
	}
	if e.cfg.Exporter != nil {
		ex := e.cfg.Exporter.Stats()
		s.TraceExport = &ex
	}
	return s
}

// Shutdown stops accepting jobs and drains the pool gracefully: queued
// and running jobs finish normally. If ctx expires first, every
// in-flight solve is force-cancelled cooperatively and Shutdown returns
// once workers unwind.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.draining.Store(true)
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		e.baseCancel() // abort in-flight CDCL searches
		<-drained
		err = ctx.Err()
	}
	// Workers are gone, so no new write-behinds can arrive: flush what is
	// queued and close the store so the entry set is durable for the next
	// process. Guarded for repeated Shutdown calls.
	e.storeOnce.Do(func() {
		if e.store != nil {
			close(e.storeQ)
			e.storeWG.Wait()
			e.store.Close()
		}
	})
	e.sessions.closeAll()
	return err
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for job := range e.queue {
		e.runJob(job)
	}
}

func (e *Engine) runJob(job *Job) {
	if !job.tryStart() {
		return // canceled while queued
	}
	e.met.workersBusy.Add(1)
	defer e.met.workersBusy.Add(-1)

	ctx := job.ctx
	timeout := time.Duration(job.Req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	timeout = faultinject.SkewDuration(faultinject.PointClockSkew, timeout)
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	faultinject.WithCancel(faultinject.PointCancelStorm, job.cancel)

	log := e.log.With("job", job.ID, "kind", string(job.Req.Kind), "trace", job.trace.ID())
	log.Info("job started", "queued_ms", time.Since(job.submitted).Milliseconds())

	ctx = telemetry.WithTrace(ctx, job.trace)
	ctx, jobSpan := telemetry.StartSpan(ctx, "job")

	// Effective request: the degradation ladder mutates this copy between
	// attempts; the cache key stays the original request's.
	eff := *job.Req
	req := &eff

	start := time.Now()
	var (
		res      *Result
		err      error
		class    failureClass
		reason   string
		degraded string
	)
	attempt := 0
	for {
		attempt++
		actx := ctx
		var asp *telemetry.Span
		if attempt > 1 {
			// Retries get their own span so a degraded re-run is visible
			// in the tree; the first attempt's stages sit directly under
			// the job span, keeping the common case flat.
			actx, asp = telemetry.StartSpan(ctx, "attempt")
			asp.SetAttrs(telemetry.Int("n", int64(attempt)), telemetry.String("degraded", degraded))
		}
		if req.Kind == KindSweep {
			res, err = e.runSweepSafe(actx, job, req)
		} else {
			res, err = runAnalysisSafe(actx, req, job.progress)
		}
		asp.End()
		class, reason = classify(res, err)
		if strings.HasPrefix(reason, "budget-") {
			e.met.recordBudget(strings.TrimPrefix(reason, "budget-"))
		}
		if req.Kind == KindSweep {
			// Sweeps sit outside the retry ladder: their verdicts already
			// streamed to the client, so a re-run would replay horizons the
			// reader has seen (and the degradation ladder's knobs would
			// change the session fingerprint mid-stream anyway).
			break
		}
		if class != failTransient || attempt > e.cfg.MaxRetries {
			break
		}
		e.met.recordRetry(reason)
		if step := degradeForRetry(req, reason); step != "" {
			degraded = step
			e.met.degradedJobs.Add(1)
		}
		log.Warn("job retrying", "attempt", attempt, "reason", reason, "degraded", degraded)
		// Exponential backoff, interruptible by deadline or cancel: a
		// context that dies mid-backoff ends the job with the context's
		// own classification instead of burning another attempt.
		backoff := e.cfg.RetryBackoff << (attempt - 1)
		timer := time.NewTimer(backoff)
		ctxDied := false
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			res, err = nil, ctx.Err()
			class, reason = classify(res, err)
			ctxDied = true
		}
		if ctxDied {
			break
		}
	}
	elapsed := time.Since(start)
	jobSpan.SetAttrs(telemetry.Int("attempts", int64(attempt)))
	jobSpan.End()

	switch class {
	case failNone, failTransient:
		if err != nil {
			// Transient error (panic, disagreement) with retries exhausted.
			e.met.recordFailed(reason)
			job.finishFromWorker(StateFailed, nil, err)
			break
		}
		// Either a definite answer or an Unknown the caller must interpret
		// (budget exhausted with no retries left is still a valid Unknown).
		e.met.completed.Add(1)
		e.met.recordSolve(elapsed, res.SatStats)
		e.admit.observe(job.Req.Kind, elapsed)
		if res.Tier == "static" {
			e.met.staticAnswered.Add(1)
		}
		if res.PortfolioSize > 1 {
			e.met.recordPortfolio(res.PortfolioWinner, elapsed)
		}
		res.Attempts = attempt
		res.Degraded = degraded
		if rep := job.recorder.Report(); rep != nil && rep.Totals.Solves > 0 {
			// Attach the search introspection record to the result (and
			// therefore to both cache tiers: explain works on cache hits
			// too). Static-tier and netcalc answers never ran a solver, so
			// they carry no report. The winner is known only here, where
			// the portfolio outcome is.
			rep.Winner = res.PortfolioWinner
			for i := range rep.Configs {
				if rep.Configs[i].Name != "" && rep.Configs[i].Name == rep.Winner {
					rep.Configs[i].Winner = true
				}
			}
			res.Search = rep
		}
		if res.conclusive() {
			key := job.Req.CacheKey()
			e.cache.put(key, res)
			e.storePutAsync(key, res)
		}
		job.finishFromWorker(StateDone, res, nil)
	case failCanceled:
		e.met.canceled.Add(1)
		job.finishFromWorker(StateCanceled, nil, err)
	case failDeadline:
		// The timeout is a lower bound on the true latency; feeding it to
		// the admission EWMA keeps the estimate honest under overload.
		e.met.recordFailed(reason)
		e.admit.observe(job.Req.Kind, elapsed)
		job.finishFromWorker(StateFailed, nil, err)
	default: // failPermanent: parse/type/compile errors.
		e.met.recordFailed(reason)
		job.finishFromWorker(StateFailed, nil, err)
	}

	if job.trace != nil {
		// Fold the finished trace into the stage histograms and retain it
		// for /v1/traces (the Job itself is pruned by retention earlier).
		e.met.recordStages(job.trace.Durations())
		snap := job.trace.Snapshot()
		if snap.Dropped > 0 {
			// Span truncation is invisible in the tree itself; count it so
			// an undersized -trace-spans shows up on /metrics.
			e.met.traceSpansDropped.Add(int64(snap.Dropped))
		}
		e.traces.add(TraceSummary{
			JobID:      job.ID,
			Kind:       string(job.Req.Kind),
			State:      string(job.State()),
			StartedAt:  snap.StartedAt,
			DurationMS: elapsed.Milliseconds(),
			NumSpans:   snap.NumSpans,
		}, job.trace)
		// Ship the finished trace to the OTLP exporter (if configured).
		// Enqueue never blocks: a slow or down collector costs dropped
		// snapshots, never solver latency.
		e.cfg.Exporter.Enqueue(snap,
			telemetry.String("buffy.job_kind", string(job.Req.Kind)),
			telemetry.String("buffy.job_state", string(job.State())))
	}
	switch st := job.State(); st {
	case StateDone:
		log.Info("job finished", "state", string(st), "result", res.Status,
			"attempts", attempt, "elapsed_ms", elapsed.Milliseconds())
	default:
		log.Warn("job finished", "state", string(st), "reason", reason,
			"attempts", attempt, "elapsed_ms", elapsed.Milliseconds(), "err", errString(err))
	}
	e.noteFinished(job.ID)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// runAnalysisSafe shields the worker pool from panics escaping the
// analysis stack: Validate should reject anything that can panic, but a
// panic that slips through must fail one job, not crash the service. The
// recovered panic is wrapped in ErrAnalysisPanic so the failure taxonomy
// can classify it as transient.
func runAnalysisSafe(ctx context.Context, req *Request, prog *sat.Progress) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrAnalysisPanic, r)
		}
	}()
	faultinject.Do(ctx, faultinject.PointAllocPressure)
	faultinject.Do(ctx, faultinject.PointSolverStall)
	faultinject.Do(ctx, faultinject.PointWorkerPanic)
	return runAnalysis(ctx, req, prog)
}

// runSweepSafe is runSweep behind the worker-pool panic shield, with the
// guarantee that the job's verdict stream closes however the sweep ends —
// the streaming handler's read loop must never outlive the worker.
func (e *Engine) runSweepSafe(ctx context.Context, job *Job, req *Request) (res *Result, err error) {
	defer close(job.verdicts)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrAnalysisPanic, r)
		}
	}()
	faultinject.Do(ctx, faultinject.PointAllocPressure)
	faultinject.Do(ctx, faultinject.PointSolverStall)
	faultinject.Do(ctx, faultinject.PointWorkerPanic)
	return e.runSweep(ctx, job, req)
}

// runSweep answers a sweep request on a pooled warm session: acquire (or
// single-flight build) the session for the request's fingerprint, then
// deepen 1..max_t by assumption-based re-solve, streaming each horizon's
// verdict to the job as it lands. A program whose encoding cannot be
// shared across horizons (session.ErrConstHorizon) sweeps cold; a session
// evicted mid-sweep degrades the remaining horizons to cold solves.
func (e *Engine) runSweep(ctx context.Context, job *Job, req *Request) (*Result, error) {
	_, psp := telemetry.StartSpan(ctx, "parse")
	prog, err := core.Parse(req.Source)
	psp.End()
	if err != nil {
		return nil, err
	}
	maxT := req.effMaxT()
	a := req.analysis()
	a.T = maxT // session capacity; also what the pre-solve vet gate sees
	a.Progress = job.progress
	mode := smtbe.Verify
	if req.SweepMode == "witness" {
		mode = smtbe.Witness
	}
	sess, release, hit, err := e.sessions.acquire(ctx, req.SessionKey(), func() (*session.Session, error) {
		return prog.NewSession(a, maxT)
	})
	if err != nil {
		return nil, err
	}
	defer release()
	sr, err := prog.SweepWithSession(ctx, sess, a, core.SweepOptions{
		MaxT: maxT, Mode: mode,
		OnVerdict: func(v session.Verdict) {
			job.sendVerdict(SweepVerdict{
				T: v.T, Status: v.Status.String(), Warm: v.Warm,
				DurationUS: v.Duration.Microseconds(), Conflicts: v.Conflicts,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	return resultFromSweep(sr, hit), nil
}

// runAnalysis executes one request through the core facade's
// context-aware entry points.
func runAnalysis(ctx context.Context, req *Request, progress *sat.Progress) (*Result, error) {
	_, psp := telemetry.StartSpan(ctx, "parse")
	prog, err := core.Parse(req.Source)
	psp.End()
	if err != nil {
		return nil, err
	}
	a := req.analysis()
	a.Progress = progress
	switch req.Kind {
	case KindVerify:
		if req.Portfolio > 1 {
			pr, err := prog.VerifyPortfolioContext(ctx, a)
			if err != nil {
				return nil, err
			}
			return resultFromPortfolio(KindVerify, req.Portfolio, pr), nil
		}
		r, err := prog.VerifyContext(ctx, a)
		if err != nil {
			return nil, err
		}
		return resultFromCheck(KindVerify, r), nil
	case KindWitness:
		if req.Portfolio > 1 {
			pr, err := prog.FindWitnessPortfolioContext(ctx, a)
			if err != nil {
				return nil, err
			}
			return resultFromPortfolio(KindWitness, req.Portfolio, pr), nil
		}
		r, err := prog.FindWitnessContext(ctx, a)
		if err != nil {
			return nil, err
		}
		return resultFromCheck(KindWitness, r), nil
	case KindSynthesize:
		r, err := prog.SynthesizeWorkloadContext(ctx, a)
		if err != nil {
			return nil, err
		}
		return resultFromSynth(r), nil
	case KindBound:
		r, err := prog.BoundContext(ctx, a)
		if err != nil {
			return nil, err
		}
		return resultFromBound(r), nil
	}
	return nil, fmt.Errorf("service: unknown kind %q", req.Kind)
}

func (e *Engine) noteFinished(id string) {
	e.mu.Lock()
	e.noteFinishedLocked(id)
	e.mu.Unlock()
}

// noteFinishedLocked records a finished job for retention pruning: once
// more than cfg.Retention jobs have finished, the oldest are forgotten.
func (e *Engine) noteFinishedLocked(id string) {
	e.finished = append(e.finished, id)
	for len(e.finished) > e.cfg.Retention {
		delete(e.jobs, e.finished[0])
		e.finished = e.finished[1:]
	}
}
