package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"buffy/internal/core"
)

// Submission errors.
var (
	// ErrQueueFull is returned when the bounded queue has no room; callers
	// should shed load (HTTP 503) rather than block the accept loop.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed is returned once Shutdown has begun.
	ErrClosed = errors.New("service: engine shut down")
)

// State is a job's lifecycle phase.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one analysis in flight. All accessors are safe for concurrent
// use; Done() closes exactly once when the job reaches a terminal state.
type Job struct {
	ID  string
	Req *Request

	engine *Engine
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     State
	result    *Result
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's outcome once terminal (nil, nil before that).
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Wait blocks until the job is terminal or ctx expires. On ctx expiry the
// job keeps running (callers decide whether to Cancel).
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel aborts the job: a queued job completes immediately as canceled,
// a running job's solver observes the cancellation cooperatively and
// unwinds within a bounded number of search steps.
func (j *Job) Cancel() {
	j.cancel()
	// A queued job will never be started by a worker once canceled, so it
	// must be finished here or waiters would hang.
	if j.finish(StateCanceled, nil, context.Canceled) {
		j.engine.met.canceled.Add(1)
		j.engine.noteFinished(j.ID)
	}
}

// tryStart flips queued → running; false means the job was canceled
// while waiting and the worker must skip it.
func (j *Job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state exactly once; the first caller
// wins. It reports whether this call performed the transition — but a
// queued job is only finished by Cancel, never by a worker.
func (j *Job) finish(st State, res *Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	if st == StateCanceled && j.state == StateRunning {
		// Cancel of a running job: let the worker unwind and record the
		// terminal state (it observes ctx cancellation from the solver).
		return false
	}
	j.state = st
	j.result = res
	j.err = err
	j.finished = time.Now()
	close(j.done)
	return true
}

// finishFromWorker is finish for the owning worker: it may complete a
// running job with any terminal state.
func (j *Job) finishFromWorker(st State, res *Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = st
	j.result = res
	j.err = err
	j.finished = time.Now()
	close(j.done)
}

// Times returns the submit/start/finish timestamps (zero if not reached).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// Config sizes the engine. Zero values pick production-sane defaults.
type Config struct {
	// Workers is the solver pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64). Beyond
	// it Submit returns ErrQueueFull.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int
	// DefaultTimeout is the per-job deadline when a request does not set
	// one (default 60s; negative means no deadline).
	DefaultTimeout time.Duration
	// Retention caps how many finished jobs stay queryable via Job()
	// (default 1024).
	Retention int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.Retention <= 0 {
		c.Retention = 1024
	}
	return c
}

// Engine is the analysis job engine: a bounded queue feeding a worker
// pool, fronted by a content-addressed result cache.
type Engine struct {
	cfg   Config
	queue chan *Job
	cache *cache
	met   *metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	finished []string // finished job IDs, oldest first, for retention pruning
	nextID   int64

	wg sync.WaitGroup
}

// New starts an engine with cfg.Workers solver workers.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:        cfg,
		queue:      make(chan *Job, cfg.QueueDepth),
		cache:      newCache(cfg.CacheEntries),
		met:        newMetrics(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Submit validates and enqueues a request. A cache hit returns an
// already-terminal job carrying the cached result — no worker involved.
func (e *Engine) Submit(req *Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	key := req.CacheKey()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}

	if cached, ok := e.cache.get(key); ok {
		e.met.recordSubmit(req.Kind)
		e.met.cacheHits.Add(1)
		job := e.newJobLocked(req)
		// Shallow copy: the trace/workload payload is shared (immutable),
		// only the per-response CacheHit stamp differs.
		res := *cached
		res.CacheHit = true
		job.state = StateDone
		job.result = &res
		job.started = job.submitted
		job.finished = job.submitted
		close(job.done)
		e.met.completed.Add(1)
		e.noteFinishedLocked(job.ID)
		return job, nil
	}

	job := e.newJobLocked(req)
	select {
	case e.queue <- job:
	default:
		delete(e.jobs, job.ID)
		job.cancel()
		// Rejected work never counts as submitted: submitted must
		// reconcile with completed+failed+canceled.
		e.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
	e.met.recordSubmit(req.Kind)
	e.met.cacheMisses.Add(1)
	return job, nil
}

func (e *Engine) newJobLocked(req *Request) *Job {
	e.nextID++
	ctx, cancel := context.WithCancel(e.baseCtx)
	job := &Job{
		ID:        fmt.Sprintf("j%08d", e.nextID),
		Req:       req,
		engine:    e,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	e.jobs[job.ID] = job
	return job
}

// Closed reports whether Shutdown has begun.
func (e *Engine) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Job looks up a job by ID (live or within the retention window).
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Metrics returns a point-in-time snapshot of all counters.
func (e *Engine) Metrics() Snapshot {
	return e.met.snapshot(len(e.queue), e.cfg.Workers, e.cache.len())
}

// Shutdown stops accepting jobs and drains the pool gracefully: queued
// and running jobs finish normally. If ctx expires first, every
// in-flight solve is force-cancelled cooperatively and Shutdown returns
// once workers unwind.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		e.baseCancel() // abort in-flight CDCL searches
		<-drained
		return ctx.Err()
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for job := range e.queue {
		e.runJob(job)
	}
}

func (e *Engine) runJob(job *Job) {
	if !job.tryStart() {
		return // canceled while queued
	}
	e.met.workersBusy.Add(1)
	defer e.met.workersBusy.Add(-1)

	ctx := job.ctx
	timeout := time.Duration(job.Req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := runAnalysisSafe(ctx, job.Req)
	elapsed := time.Since(start)

	switch {
	case err == nil:
		e.met.completed.Add(1)
		e.met.recordSolve(elapsed, res.SatStats)
		if res.PortfolioSize > 1 {
			e.met.recordPortfolio(res.PortfolioWinner, elapsed)
		}
		if res.conclusive() {
			e.cache.put(job.Req.CacheKey(), res)
		}
		job.finishFromWorker(StateDone, res, nil)
	case errors.Is(err, context.Canceled):
		e.met.canceled.Add(1)
		job.finishFromWorker(StateCanceled, nil, err)
	default:
		// Deadline expiry, parse/type errors, compile errors.
		e.met.failed.Add(1)
		job.finishFromWorker(StateFailed, nil, err)
	}
	e.noteFinished(job.ID)
}

// runAnalysisSafe shields the worker pool from panics escaping the
// analysis stack: Validate should reject anything that can panic, but a
// panic that slips through must fail one job, not crash the service.
func runAnalysisSafe(ctx context.Context, req *Request) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: analysis panicked: %v", r)
		}
	}()
	return runAnalysis(ctx, req)
}

// runAnalysis executes one request through the core facade's
// context-aware entry points.
func runAnalysis(ctx context.Context, req *Request) (*Result, error) {
	prog, err := core.Parse(req.Source)
	if err != nil {
		return nil, err
	}
	a := req.analysis()
	switch req.Kind {
	case KindVerify:
		if req.Portfolio > 1 {
			pr, err := prog.VerifyPortfolioContext(ctx, a)
			if err != nil {
				return nil, err
			}
			return resultFromPortfolio(KindVerify, req.Portfolio, pr), nil
		}
		r, err := prog.VerifyContext(ctx, a)
		if err != nil {
			return nil, err
		}
		return resultFromCheck(KindVerify, r), nil
	case KindWitness:
		if req.Portfolio > 1 {
			pr, err := prog.FindWitnessPortfolioContext(ctx, a)
			if err != nil {
				return nil, err
			}
			return resultFromPortfolio(KindWitness, req.Portfolio, pr), nil
		}
		r, err := prog.FindWitnessContext(ctx, a)
		if err != nil {
			return nil, err
		}
		return resultFromCheck(KindWitness, r), nil
	case KindSynthesize:
		r, err := prog.SynthesizeWorkloadContext(ctx, a)
		if err != nil {
			return nil, err
		}
		return resultFromSynth(r), nil
	}
	return nil, fmt.Errorf("service: unknown kind %q", req.Kind)
}

func (e *Engine) noteFinished(id string) {
	e.mu.Lock()
	e.noteFinishedLocked(id)
	e.mu.Unlock()
}

// noteFinishedLocked records a finished job for retention pruning: once
// more than cfg.Retention jobs have finished, the oldest are forgotten.
func (e *Engine) noteFinishedLocked(id string) {
	e.finished = append(e.finished, id)
	for len(e.finished) > e.cfg.Retention {
		delete(e.jobs, e.finished[0])
		e.finished = e.finished[1:]
	}
}
