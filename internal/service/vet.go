package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"buffy/internal/lang/sema"
	"buffy/internal/vet"
)

// VetResponse is the wire shape of POST /v1/vet: the static analyzer's
// findings and — when the program is trivially decidable — the static
// query verdict, answered inline in microseconds with no job queued and
// no solver constructed.
type VetResponse struct {
	Program string `json:"program,omitempty"`
	// Clean: no error- or warning-severity findings.
	Clean bool `json:"clean"`
	// Rejected: error-severity findings present; a solve of this program
	// would fail with the vet_rejected taxonomy class.
	Rejected    bool              `json:"rejected"`
	Summary     string            `json:"summary"`
	Diagnostics []sema.Diagnostic `json:"diagnostics"`
	// Static verdict, when conclusive (see sema.Verdict).
	Verify     string `json:"verify,omitempty"`
	Witness    string `json:"witness,omitempty"`
	Reason     string `json:"reason,omitempty"`
	DurationUS int64  `json:"duration_us"`
}

// vetHandler serves POST /v1/vet. Vetting is orders of magnitude cheaper
// than any queue round-trip, so it bypasses the job engine entirely; the
// engine is only consulted for metrics and drain state.
func vetHandler(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if req.Source == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing source"))
			return
		}

		a := req.analysis()
		start := time.Now()
		res := vet.Source(req.Source, sema.Options{
			T:               a.T,
			Params:          a.Params,
			BufferCap:       a.BufferCap,
			OutBufferCap:    a.OutBufferCap,
			ArrivalsPerStep: a.ArrivalsPerStep,
			MaxBytes:        a.MaxBytes,
			ListCap:         a.ListCap,
			Width:           a.Width,
		})
		elapsed := time.Since(start)

		e.met.vetRequests.Add(1)
		resp := VetResponse{
			Program:     res.Program,
			Clean:       res.Report.Clean(),
			Rejected:    res.Report.HasErrors(),
			Summary:     vet.Summary(res),
			Diagnostics: res.Report.Diags,
			Verify:      res.Report.Verdict.Verify,
			Witness:     res.Report.Verdict.Witness,
			Reason:      res.Report.Verdict.Reason,
			DurationUS:  elapsed.Microseconds(),
		}
		if resp.Diagnostics == nil {
			resp.Diagnostics = []sema.Diagnostic{}
		}
		if resp.Rejected {
			e.met.vetRejected.Add(1)
			e.met.recordFailed("vet_rejected")
		}
		writeJSON(w, http.StatusOK, resp)
	}
}
