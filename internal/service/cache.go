package service

import (
	"container/list"
	"sync"
)

// cache is a bounded LRU mapping content-address keys to completed
// Results. Entries are immutable once stored: hits return the shared
// *Result, which callers must treat as read-only (the engine copies the
// top-level struct before stamping per-response fields like CacheHit).
type cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

func newCache(max int) *cache {
	return &cache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

func (c *cache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *cache) put(key string, res *Result) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
