package service

import (
	"net/http"
	"strconv"
	"testing"
	"time"
)

// TestHTTPLivenessReadinessSplit pins the probe split: liveness stays 200
// through a drain (the process is healthy — restarting it would kill
// in-flight jobs), while readiness flips to 503 the moment BeginDrain is
// called so balancers stop routing new work here.
func TestHTTPLivenessReadinessSplit(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1})

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp
	}

	for _, path := range []string{"/healthz", "/healthz/ready", "/healthz/live"} {
		if resp := get(path); resp.StatusCode != http.StatusOK {
			t.Errorf("%s before drain: %d, want 200", path, resp.StatusCode)
		}
	}

	e.BeginDrain()
	for _, path := range []string{"/healthz", "/healthz/ready"} {
		resp := get(path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s during drain: %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s during drain: missing Retry-After", path)
		}
	}
	if resp := get("/healthz/live"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz/live during drain: %d, want 200 (draining is not dead)", resp.StatusCode)
	}
}

// TestHTTPRetryAfterOn503 pins that every shed submission carries a
// Retry-After hint derived from the latency EWMA and queue backlog.
func TestHTTPRetryAfterOn503(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1})

	// Admission rejection: synthetic EWMA says witness takes 30s, so a
	// 10ms deadline is unmeetable and the hint reflects the estimate.
	e.admit.observe(KindWitness, 30*time.Second)
	req := fqWitnessReq(2)
	req.TimeoutMS = 10
	resp, _ := postJSON(t, srv.URL+"/v1/witness", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unmeetable deadline: %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	if m := e.Metrics(); m.AdmissionRejected != 1 {
		t.Errorf("AdmissionRejected = %d, want 1", m.AdmissionRejected)
	}
}
