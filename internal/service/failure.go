package service

import (
	"context"
	"errors"
	"strings"

	"buffy/internal/backend/netcalc"
	"buffy/internal/lang/sema"
	"buffy/internal/portfolio"
	"buffy/internal/smt/sat"
)

// ErrAnalysisPanic wraps a panic recovered inside the worker's shielded
// analysis region. It is transient from the engine's point of view: the
// panic may be a corrupted heuristic state or an injected fault, so a
// retry — degraded to a simpler configuration — is worth one attempt.
var ErrAnalysisPanic = errors.New("service: analysis panicked")

// failureClass partitions every attempt outcome by what the engine should
// do about it. The taxonomy is the policy core of the fault-tolerant
// runtime: permanent failures propagate immediately (the client sent a
// bad program; retrying cannot help), transient failures enter the
// retry/degradation ladder, deadline expiry is fatal to the job but says
// nothing about the input, and cancellation is the client's own choice.
type failureClass int

const (
	// failNone: the attempt produced a result worth returning (conclusive
	// or an acceptable Unknown).
	failNone failureClass = iota
	// failTransient: budget exhaustion, a recovered panic, or a portfolio
	// disagreement — retrying with an escalated or degraded configuration
	// may succeed.
	failTransient
	// failDeadline: the job's wall-clock deadline expired. No retry can
	// fit inside an already-spent deadline.
	failDeadline
	// failCanceled: the client (or shutdown drain) canceled the job.
	failCanceled
	// failPermanent: parse/type/compile errors — properties of the input,
	// not of the run.
	failPermanent
)

// budgetReason reports whether a stop-reason string names a resource
// budget (as opposed to deadline/cancel stops).
func budgetReason(stop string) bool {
	switch stop {
	case sat.StopConflicts.String(), sat.StopPropagations.String(), sat.StopLearntBytes.String():
		return true
	}
	return false
}

// classify maps one attempt's outcome to its failure class and a short
// metric-label reason. A nil error with an Unknown result that stopped on
// a resource budget is transient ("budget-<resource>"): the engine may
// escalate the budget and retry, and if retries are exhausted the Unknown
// itself is still a valid (uncached) answer.
func classify(res *Result, err error) (failureClass, string) {
	if err == nil {
		if res != nil && budgetReason(res.StopReason) {
			return failTransient, "budget-" + res.StopReason
		}
		return failNone, ""
	}
	switch {
	case errors.Is(err, context.Canceled):
		return failCanceled, "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return failDeadline, "deadline"
	case errors.Is(err, ErrAnalysisPanic):
		return failTransient, "panic"
	case errors.Is(err, portfolio.ErrDisagreement):
		return failTransient, "disagreement"
	case errors.Is(err, netcalc.ErrDisagreement):
		// Both sides are deterministic — the analytical bound and the
		// exhaustive horizon check can't disagree differently on a retry.
		// This is a soundness bug surfacing, not a flake.
		return failPermanent, "bound-disagreement"
	}
	var vetErr *sema.VetError
	if errors.As(err, &vetErr) {
		// The static analyzer rejected the program (contradictory
		// assumptions, unusable horizon): a property of the input.
		return failPermanent, "vet_rejected"
	}
	return failPermanent, "input"
}

// escalationFactor multiplies every set budget on a budget-exhaustion
// retry, so the retry has a real chance of concluding rather than
// re-running the identical bounded search.
const escalationFactor = 4

// retryConflictBudget bounds a degraded retry after a panic or
// disagreement on an already single-config request: the rerun must not
// hang on the same pathological input, so it gets a tight conflict cap
// and at worst comes back Unknown.
const retryConflictBudget = 1 << 16

// degradeForRetry walks the degradation ladder one rung before a
// transient retry, mutating the effective request in place:
//
//	budget exhaustion      → escalate every set budget (×escalationFactor)
//	panic / disagreement   → portfolio N → single default config
//	                       → already single → tightly bounded budget
//
// It returns a label naming the step taken ("" when the request was left
// unchanged).
func degradeForRetry(req *Request, reason string) string {
	if strings.HasPrefix(reason, "budget-") {
		if req.MaxConflicts > 0 {
			req.MaxConflicts *= escalationFactor
		}
		if req.MaxPropagations > 0 {
			req.MaxPropagations *= escalationFactor
		}
		if req.MaxLearntBytes > 0 {
			req.MaxLearntBytes *= escalationFactor
		}
		return "budget-escalated"
	}
	// panic / disagreement: simplify before rerunning.
	if req.Portfolio > 1 {
		req.Portfolio = 0
		return "portfolio-off"
	}
	if req.MaxConflicts == 0 || req.MaxConflicts > retryConflictBudget {
		req.MaxConflicts = retryConflictBudget
		return "budget-reduced"
	}
	return ""
}
