//go:build faultinject

package service

import (
	"syscall"
	"testing"
	"time"

	"buffy/internal/faultinject"
	"buffy/internal/store"
)

// Durable-tier chaos at the service level: every injected filesystem
// fault — full disk, torn write, bit rot, read-only store — must degrade
// to a cache miss (a re-solve with the correct answer), never to a
// wrong, stale, or partial answer, with the failure visible in the
// labeled buffy_store_* counters.

// solveAndFlush submits the CS1 witness query, requires the correct
// verdict, and waits for the write-behind to reach the store (attempted
// or failed — writes+write_errors+dropped covers both).
func solveAndFlush(t *testing.T, e *Engine) *Result {
	t.Helper()
	job, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, 2*time.Minute)
	assertNoWrongVerdict(t, res)
	if res.Status != "witness" {
		t.Fatalf("status = %q, want witness", res.Status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := e.Metrics().Store; st != nil && st.Writes+st.WriteErrors+st.Dropped > 0 {
			return res
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("write-behind never reached the store")
	return nil
}

// TestChaosStoreENOSPC fills the disk under the write-behind: the answer
// is still served and cached in memory, the store counts a write error,
// and a restart over the same directory is a plain miss that re-solves
// correctly.
func TestChaosStoreENOSPC(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	e := New(Config{Workers: 1, Store: openTestStore(t, dir, "")})

	faultinject.Enable(faultinject.PointStoreWrite, faultinject.Fault{Err: syscall.ENOSPC, Times: 1})
	solveAndFlush(t, e)
	st := e.Metrics().Store
	if st.WriteErrors != 1 || st.Entries != 0 {
		t.Fatalf("store snapshot = %+v, want the ENOSPC write counted and no entry", st)
	}
	// The in-memory tier still has the answer.
	j, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	if res := waitDone(t, j, time.Minute); !res.CacheHit || res.CacheTier != CacheTierMemory {
		t.Fatalf("memory tier lost the answer under ENOSPC (hit=%v tier=%q)", res.CacheHit, res.CacheTier)
	}
	shutdown(t, e)

	// Restart: nothing durable landed, so the query re-solves — a miss,
	// not a wrong or partial answer.
	e2 := New(Config{Workers: 1, Store: openTestStore(t, dir, "")})
	defer shutdown(t, e2)
	j2, err := e2.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j2, 2*time.Minute)
	assertNoWrongVerdict(t, res)
	if res.CacheHit {
		t.Fatal("restart served a hit although the write never landed")
	}
	if res.Status != "witness" {
		t.Fatalf("recovery status = %q, want witness", res.Status)
	}
}

// TestChaosStoreTornWrite tears the entry mid-write (acknowledged, half
// persisted): the restart's recovery scan must quarantine it and the
// replay must be a miss that re-solves to the correct verdict.
func TestChaosStoreTornWrite(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	e := New(Config{Workers: 1, Store: openTestStore(t, dir, "")})
	faultinject.Enable(faultinject.PointStoreCorrupt, faultinject.Fault{TearAfter: 64, Times: 1})
	solveAndFlush(t, e)
	shutdown(t, e)

	e2 := New(Config{Workers: 1, Store: openTestStore(t, dir, "")})
	defer shutdown(t, e2)
	st := e2.Metrics().Store
	if st.Quarantined != 1 {
		t.Fatalf("store snapshot = %+v, want the torn entry quarantined at recovery", st)
	}
	j, err := e2.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j, 2*time.Minute)
	assertNoWrongVerdict(t, res)
	if res.CacheHit {
		t.Fatal("torn entry served as a hit")
	}
	if res.Status != "witness" {
		t.Fatalf("recovery status = %q, want witness", res.Status)
	}
}

// TestChaosStoreBitRot flips one payload bit after the checksum was
// computed: the live read path must catch it (checksum), quarantine the
// entry, and fall through to a correct re-solve.
func TestChaosStoreBitRot(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	e := New(Config{Workers: 1, Store: openTestStore(t, dir, "")})
	defer shutdown(t, e)
	// FlipAt well past the ~100-byte header lands inside the payload.
	faultinject.Enable(faultinject.PointStoreCorrupt, faultinject.Fault{Flip: true, FlipAt: 300, Times: 1})
	solveAndFlush(t, e)

	// Bypass the memory tier (which still holds the good copy) and read
	// the disk tier directly: the checksum must reject the rotted entry.
	key := fqWitnessReq(6).CacheKey()
	if _, ok := e.store.Get(key); ok {
		t.Fatal("bit-rotted entry served by the disk tier")
	}
	st := e.Metrics().Store
	if st.Quarantined != 1 {
		t.Fatalf("store snapshot = %+v, want the rotted entry quarantined", st)
	}
}

// TestChaosStoreReadOnly runs the whole engine over a store degraded to
// read-only with an empty, trusted entry set: every query is a miss that
// solves correctly, every write-behind fails visibly, and nothing is
// ever served stale.
func TestChaosStoreReadOnly(t *testing.T) {
	defer faultinject.Reset()
	s, err := store.Open(store.Options{Dir: t.TempDir(), Fingerprint: PipelineFingerprint(), ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 1, Store: s})
	defer shutdown(t, e)

	solveAndFlush(t, e)
	st := e.Metrics().Store
	if !st.ReadOnly {
		t.Fatal("store snapshot does not report read-only")
	}
	if st.WriteErrors == 0 || st.Writes != 0 || st.Entries != 0 {
		t.Fatalf("store snapshot = %+v, want failed writes and no entries on a read-only store", st)
	}
	mustWitness(t, e) // capacity intact: the degraded tier costs misses only
}
