package service

import (
	"container/list"
	"context"
	"sync"

	"buffy/internal/session"
)

// sessionPool is a bounded, memory-accounted LRU of warm solver sessions
// keyed by the request's session fingerprint (SessionKey). A hit re-solves
// on an encoding some earlier request already paid for; a miss builds the
// session once under single-flight admission (concurrent requesters for
// the same key wait on the first builder instead of racing N compiles).
//
// Eviction is by entry count and by estimated bytes: every session's
// footprint (problem encoding + learnt-clause database) is charged against
// the pool budget and re-read after each use, so a session whose learnt DB
// balloons pushes the pool over budget and gets colder entries — or
// itself — evicted. Eviction closes the session even while holders are
// mid-sweep: Close never blocks, the holder's next query observes
// session.ErrClosed and degrades to cold solves, never a wrong answer.
type sessionPool struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	totalBytes int64
	order      *list.List // front = most recently used; values are *poolEntry
	entries    map[string]*list.Element

	met *metrics
}

type poolEntry struct {
	key string
	// ready is closed when the single-flight build completes (sess or err
	// set); waiters block on it without holding the pool lock.
	ready chan struct{}
	sess  *session.Session
	err   error
	built bool
	refs  int
	bytes int64
}

// newSessionPool sizes the pool; maxEntries <= 0 disables pooling (every
// acquire builds a private session).
func newSessionPool(maxEntries int, maxBytes int64, met *metrics) *sessionPool {
	return &sessionPool{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
		met:        met,
	}
}

// acquire returns a warm session for key, building one with build on a
// miss. hit reports whether an already-built pooled session answered.
// The returned release must be called exactly once when the caller is done
// with the session (it re-reads the footprint and triggers eviction).
// A nil session with nil error means "sweep cold" (the program cannot
// share an encoding); any other build error is the caller's to surface.
func (p *sessionPool) acquire(ctx context.Context, key string, build func() (*session.Session, error)) (sess *session.Session, release func(), hit bool, err error) {
	noop := func() {}
	if p.maxEntries <= 0 {
		// Pooling disabled: a private session still wins within one sweep
		// (horizons share the encoding) but is never reused across requests.
		s, err := build()
		if err == session.ErrConstHorizon {
			return nil, noop, false, nil
		}
		return s, noop, false, err
	}

	p.mu.Lock()
	if el, ok := p.entries[key]; ok {
		ent := el.Value.(*poolEntry)
		ent.refs++
		p.order.MoveToFront(el)
		p.mu.Unlock()
		select {
		case <-ent.ready:
		case <-ctx.Done():
			p.release(ent)
			return nil, noop, false, ctx.Err()
		}
		if ent.err != nil {
			// The build we waited on failed; the builder already removed the
			// entry from the index, so release only drops our ref count.
			p.release(ent)
			if ent.err == session.ErrConstHorizon {
				return nil, noop, false, nil
			}
			return nil, noop, false, ent.err
		}
		p.met.sessionHits.Add(1)
		return ent.sess, func() { p.release(ent) }, true, nil
	}

	// Miss: insert a building placeholder so concurrent requesters for the
	// same key wait on us, then build outside the lock.
	ent := &poolEntry{key: key, ready: make(chan struct{}), refs: 1}
	p.entries[key] = p.order.PushFront(ent)
	p.mu.Unlock()
	p.met.sessionMisses.Add(1)

	s, berr := build()

	p.mu.Lock()
	ent.sess, ent.err, ent.built = s, berr, true
	if berr != nil {
		// Failed builds never occupy a slot; waiters observe ent.err.
		p.removeLocked(ent)
	} else {
		ent.bytes = s.Footprint()
		p.totalBytes += ent.bytes
		p.evictLocked()
	}
	p.mu.Unlock()
	close(ent.ready)

	if berr == session.ErrConstHorizon {
		return nil, noop, false, nil
	}
	if berr != nil {
		return nil, noop, false, berr
	}
	return s, func() { p.release(ent) }, false, nil
}

// release drops one holder's reference and re-accounts the session's
// footprint (the learnt DB grew while the holder queried).
func (p *sessionPool) release(ent *poolEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ent.refs > 0 {
		ent.refs--
	}
	if ent.sess != nil {
		if _, live := p.entries[ent.key]; live {
			nb := ent.sess.Footprint()
			p.totalBytes += nb - ent.bytes
			ent.bytes = nb
			p.evictLocked()
		}
	}
}

// evictLocked enforces both budgets, oldest-first, skipping entries still
// building (their cost is unknown and their builder holds no verdicts
// yet). Evicted sessions are closed immediately — holders mid-sweep see
// ErrClosed on their next query and degrade to cold solves.
func (p *sessionPool) evictLocked() {
	for p.order.Len() > p.maxEntries {
		if !p.evictOldestLocked("entries") {
			break
		}
	}
	for p.maxBytes > 0 && p.totalBytes > p.maxBytes && p.order.Len() > 1 {
		if !p.evictOldestLocked("memory") {
			break
		}
	}
	// A single session over the whole budget is evicted too: better an
	// occasional cold rebuild than unbounded learnt-clause growth.
	if p.maxBytes > 0 && p.totalBytes > p.maxBytes {
		p.evictOldestLocked("memory")
	}
}

func (p *sessionPool) evictOldestLocked(reason string) bool {
	for el := p.order.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*poolEntry)
		if !ent.built {
			continue
		}
		p.removeLocked(ent)
		ent.sess.Close()
		p.met.recordSessionEviction(reason)
		return true
	}
	return false
}

// removeLocked detaches an entry from the index and the byte accounting.
func (p *sessionPool) removeLocked(ent *poolEntry) {
	el, ok := p.entries[ent.key]
	if !ok || el.Value.(*poolEntry) != ent {
		return
	}
	p.order.Remove(el)
	delete(p.entries, ent.key)
	p.totalBytes -= ent.bytes
}

// stats reports the pool's live-entry count and accounted bytes.
func (p *sessionPool) stats() (live int, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len(), p.totalBytes
}

// closeAll evicts everything (shutdown).
func (p *sessionPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.order.Front(); el != nil; el = el.Next() {
		if ent := el.Value.(*poolEntry); ent.built && ent.sess != nil {
			ent.sess.Close()
		}
	}
	p.order.Init()
	p.entries = make(map[string]*list.Element)
	p.totalBytes = 0
}
