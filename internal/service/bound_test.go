package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"buffy/internal/backend/netcalc"
	"buffy/internal/qm"
)

// TestHTTPBoundFlow: a cross-checked bound query over HTTP answers
// "bounded" with exact rational bounds and a "dominated" differential
// report, and the repeat is served from cache.
func TestHTTPBoundFlow(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	req := map[string]any{
		"source": qm.TBRLSrc, "t": 6, "model": "count",
		"params":            map[string]int64{"RATE": 1, "BURST": 3, "C": 2},
		"arrivals_per_step": 2, "buffer_cap": 16,
		"cross_check": true,
	}

	resp1, body1 := postJSON(t, srv.URL+"/v1/bound", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d: %s", resp1.StatusCode, body1)
	}
	var v1 JobView
	if err := json.Unmarshal(body1, &v1); err != nil {
		t.Fatal(err)
	}
	if v1.State != StateDone || v1.Result == nil || v1.Result.Status != "bounded" {
		t.Fatalf("first response: %s", body1)
	}
	if v1.Result.Delay != "3/2" || v1.Result.Backlog != "3" {
		t.Errorf("bounds = (%s, %s), want (3/2, 3)", v1.Result.Delay, v1.Result.Backlog)
	}
	if v1.Result.CrossCheck == nil || v1.Result.CrossCheck.Status != "dominated" {
		t.Fatalf("cross-check missing or not dominated: %s", body1)
	}

	resp2, body2 := postJSON(t, srv.URL+"/v1/bound", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d: %s", resp2.StatusCode, body2)
	}
	var v2 JobView
	if err := json.Unmarshal(body2, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Result == nil || !v2.Result.CacheHit {
		t.Fatalf("second response not a cache hit: %s", body2)
	}
	if v2.Result.Delay != v1.Result.Delay || v2.Result.Backlog != v1.Result.Backlog {
		t.Error("cached bound differs from the original")
	}
}

// TestHTTPBoundUnbounded: "unbounded" is a definite, cacheable answer.
func TestHTTPBoundUnbounded(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1})
	req := map[string]any{
		"source": qm.SPQuerySrc, "t": 4,
		"params": map[string]int64{"N": 2},
	}
	resp, body := postJSON(t, srv.URL+"/v1/bound", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Result == nil || v.Result.Status != "unbounded" {
		t.Fatalf("response: %s", body)
	}
	if v.Result.Delay != "" || v.Result.Backlog != "" {
		t.Errorf("unbounded answer carries bounds: %s", body)
	}
	if hits := e.Metrics().CacheHits; hits != 0 {
		t.Fatalf("cache hits before repeat = %d", hits)
	}
	resp2, body2 := postJSON(t, srv.URL+"/v1/bound", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d: %s", resp2.StatusCode, body2)
	}
	if hits := e.Metrics().CacheHits; hits != 1 {
		t.Errorf("cache hits after repeat = %d, want 1", hits)
	}
}

// TestHTTPBoundUnsupportedProgram: a program with no netcalc lowering is a
// permanent input failure (422), not a retryable service fault.
func TestHTTPBoundUnsupportedProgram(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, srv.URL+"/v1/bound", map[string]any{"source": quickProg, "t": 4})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", resp.StatusCode, body)
	}
}

// TestBoundDisagreementClassifiesPermanent: the differential hard error is
// a soundness bug, not a flake — the taxonomy must not retry it.
func TestBoundDisagreementClassifiesPermanent(t *testing.T) {
	class, reason := classify(nil, fmt.Errorf("wrapped: %w", netcalc.ErrDisagreement))
	if class != failPermanent || reason != "bound-disagreement" {
		t.Errorf("classify = (%v, %q), want (failPermanent, bound-disagreement)", class, reason)
	}
}
