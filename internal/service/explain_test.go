package service

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"buffy/internal/smt/sat"
)

// explainBody is the explain endpoint's response shape.
type explainBody struct {
	ID     string            `json:"id"`
	State  string            `json:"state"`
	Search *sat.SearchReport `json:"search"`
}

func getExplain(t *testing.T, e *Engine, id string) (int, explainBody) {
	t.Helper()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + id + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body explainBody
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, body
}

// TestExplainEndpointSolverJob is the acceptance scenario: a solver-tier
// witness job (CS1 at T=8) must explain with a non-empty timeline — at
// least two samples — restart marks, and distributions; and the report
// attached to the Result must match what the endpoint serves.
func TestExplainEndpointSolverJob(t *testing.T) {
	e := New(Config{Workers: 2})
	defer shutdown(t, e)

	job, err := e.Submit(fqWitnessReq(8))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, 2*time.Minute)
	if res.Status != "witness" {
		t.Fatalf("status = %s, want witness", res.Status)
	}
	if res.Search == nil {
		t.Fatal("solver-tier result carries no search report")
	}

	code, body := getExplain(t, e, job.ID)
	if code != 200 {
		t.Fatalf("explain returned %d", code)
	}
	rep := body.Search
	if rep == nil {
		t.Fatal("explain body has no search report")
	}
	if len(rep.Samples) < 2 {
		t.Fatalf("timeline has %d samples, want >= 2", len(rep.Samples))
	}
	restarts := 0
	for _, ev := range rep.Events {
		if ev.Kind == "restart" {
			restarts++
		}
	}
	if restarts == 0 {
		t.Error("no restart marks in the report (CS1 at T=8 restarts many times)")
	}
	if rep.Totals.Solves < 1 || rep.Totals.Conflicts == 0 {
		t.Errorf("totals = %+v, want at least one solve with conflicts", rep.Totals)
	}
	if rep.Depth.Count == 0 || rep.LBD.Count == 0 {
		t.Errorf("distributions empty: depth %d, lbd %d", rep.Depth.Count, rep.LBD.Count)
	}
	// The endpoint serves the same report the result carries.
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(res.Search)
	if string(a) != string(b) {
		t.Error("explain endpoint and result search report differ")
	}
}

// TestExplainStaticTierJob404: a query the static analyzer decides runs
// no solver, so explain must 404 rather than serve an all-zero report.
func TestExplainStaticTierJob404(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)

	job, err := e.Submit(&Request{
		Kind: KindVerify,
		// The limiter's per-step invariant is interval-provable (same
		// program the CI smoke uses for its static-tier check).
		Source: "limiter(buffer in0, buffer out0) { monitor int departed; local int n; n = backlog-p(in0); if (n > 1) { n = 1; } move-p(in0, out0, n); departed = departed + n; assert(departed <= t + 1); }",
		T:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, time.Minute)
	if res.Tier != "static" {
		t.Fatalf("tier = %q, want static", res.Tier)
	}
	if res.Search != nil {
		t.Error("static-tier result carries a search report")
	}
	if code, _ := getExplain(t, e, job.ID); code != 404 {
		t.Errorf("explain on a static-tier job returned %d, want 404", code)
	}
}

// TestExplainCacheHit: a cache-hit job has no recorder of its own but
// must still explain — the report rides the cached result.
func TestExplainCacheHit(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)

	j1, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	r1 := waitDone(t, j1, 2*time.Minute)
	j2, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	r2 := waitDone(t, j2, 5*time.Second)
	if !r2.CacheHit {
		t.Fatal("second submit should hit the cache")
	}
	code, body := getExplain(t, e, j2.ID)
	if code != 200 || body.Search == nil {
		t.Fatalf("cache-hit explain: code %d, search %v", code, body.Search)
	}
	a, _ := json.Marshal(r1.Search)
	b, _ := json.Marshal(body.Search)
	if string(a) != string(b) {
		t.Error("cache-hit explain differs from the original solve's report")
	}
}

// TestTraceSpanTruncationSurfaced: an undersized -trace-spans must be
// visible — dropped_spans in the trace view and the
// buffy_trace_spans_dropped_total counter on /metrics.
func TestTraceSpanTruncationSurfaced(t *testing.T) {
	e := New(Config{Workers: 1, TraceSpans: 2})
	defer shutdown(t, e)

	job, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 2*time.Minute)

	snap := job.Trace().Snapshot()
	if snap.Dropped == 0 {
		t.Fatal("a 2-span trace of a solver job dropped nothing")
	}
	m := e.Metrics()
	if m.TraceSpansDropped != int64(snap.Dropped) {
		t.Errorf("metric trace_spans_dropped = %d, trace dropped %d", m.TraceSpansDropped, snap.Dropped)
	}
	// The JSON wire shape carries it too (the trace endpoint serves
	// this exact struct).
	data, _ := json.Marshal(snap)
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["dropped_spans"]; !ok {
		t.Errorf("trace view JSON missing dropped_spans: %s", data)
	}
}
