package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsLabelSets drives a representative job mix through the engine
// — verify (plus a cache hit), witness, synthesize, a budget-exhausted
// retry that degrades, and a panic-failed job — then asserts that every
// documented metric name and label set appears on /metrics. This is the
// contract a scrape config and alert rules are written against; a rename
// or dropped label must fail here, not in a dashboard.
func TestMetricsLabelSets(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 2, MaxRetries: 1, RetryBackoff: time.Millisecond})

	// verify ×2 (second is a cache hit) — quick limiter program.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, srv.URL+"/v1/verify", map[string]any{"source": quickProg, "t": 3})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	// witness — CS1 starvation query.
	if resp, body := postJSON(t, srv.URL+"/v1/witness", map[string]any{
		"source": fqWitnessReq(4).Source, "t": 4, "params": map[string]int64{"N": 3},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("witness: %d: %s", resp.StatusCode, body)
	}
	// synthesize — tiny workload-synthesis program.
	if resp, body := postJSON(t, srv.URL+"/v1/synthesize", map[string]any{
		"source": `p(buffer a, buffer b) {
			move-p(a, b, 1);
			if (t == T - 1) { assert(backlog-p(b) == T); }
		}`, "t": 2,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: %d: %s", resp.StatusCode, body)
	}
	// budget-exhausted retry: 1-conflict budget forces StopConflicts, the
	// engine escalates (degraded="budget-escalated") and retries.
	budgetReq := fqWitnessReq(5)
	budgetReq.MaxConflicts = 1
	job, err := e.Submit(budgetReq)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 2*time.Minute)
	// panic-failed job: unsupported width bypasses Submit validation, the
	// shielded worker retries degraded, then fails with reason "panic".
	panicReq := fqWitnessReq(2)
	panicReq.Width = 1
	e.mu.Lock()
	pj := e.newJobLocked(panicReq)
	e.mu.Unlock()
	e.runJob(pj)
	if st := pj.State(); st != StateFailed {
		t.Fatalf("panic job state = %s, want failed", st)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	prom := string(raw)

	for _, want := range []string{
		// Submission/outcome counters, by kind and in aggregate.
		`buffy_jobs_submitted_total{kind="verify"}`,
		`buffy_jobs_submitted_total{kind="witness"}`,
		`buffy_jobs_submitted_total{kind="synthesize"}`,
		"buffy_jobs_completed_total",
		"buffy_jobs_failed_total",
		`buffy_jobs_failed_reason_total{reason="panic"}`,
		"buffy_jobs_canceled_total",
		"buffy_jobs_rejected_total",
		"buffy_admission_rejected_total",
		// Failure-taxonomy labels from the retry ladder.
		`buffy_job_retries_total{reason="budget-conflicts"}`,
		`buffy_job_retries_total{reason="panic"}`,
		`buffy_budget_exhausted_total{resource="conflicts"}`,
		"buffy_jobs_degraded_total",
		// Pool and cache gauges.
		"buffy_queue_depth",
		"buffy_workers",
		"buffy_workers_busy",
		"buffy_cache_hits_total",
		"buffy_cache_misses_total",
		"buffy_cache_entries",
		"buffy_cache_hit_rate",
		// Solver-effort counters.
		"buffy_sat_conflicts_total",
		"buffy_sat_decisions_total",
		"buffy_sat_propagations_total",
		"buffy_sat_restarts_total",
		// Solve latency histogram.
		`buffy_solve_duration_seconds_bucket{le="+Inf"}`,
		"buffy_solve_duration_seconds_sum",
		"buffy_solve_duration_seconds_count",
		// Per-stage histograms derived from traces: every pipeline stage
		// must have been observed by this mix.
		`buffy_stage_duration_seconds_bucket{stage="parse",le="+Inf"}`,
		`buffy_stage_duration_seconds_bucket{stage="compile",le="+Inf"}`,
		`buffy_stage_duration_seconds_bucket{stage="encode",le="+Inf"}`,
		`buffy_stage_duration_seconds_bucket{stage="bitblast",le="+Inf"}`,
		`buffy_stage_duration_seconds_bucket{stage="search",le="+Inf"}`,
		`buffy_stage_duration_seconds_sum{stage="search"}`,
		`buffy_stage_duration_seconds_count{stage="search"}`,
		// The pre-solve static tier traces as its own stage.
		`buffy_stage_duration_seconds_bucket{stage="vet",le="+Inf"}`,
		`buffy_stage_duration_seconds_bucket{stage="job",le="0.01"}`,
		// Build metadata.
		`buffy_build_info{version="` + Version + `"`,
		"buffy_uptime_seconds",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", prom)
	}

	// Value-level checks via the JSON snapshot: the mix must have produced
	// the counts the labels promise.
	m := e.Metrics()
	if m.CacheHits < 1 {
		t.Errorf("cache hits = %d, want >= 1", m.CacheHits)
	}
	if m.JobsDegraded < 2 { // budget-escalated + budget-reduced (panic retry)
		t.Errorf("degraded jobs = %d, want >= 2", m.JobsDegraded)
	}
	if m.JobsFailedBy["panic"] != 1 {
		t.Errorf("failed[panic] = %d, want 1", m.JobsFailedBy["panic"])
	}
	// Five jobs solved (the cache hit does not trace): verify, witness,
	// synthesize, budget retry, panic job — each contributes one "job"
	// stage observation.
	if m.StageCount["job"] < 5 {
		t.Errorf("stage job count = %d, want >= 5 (have %v)", m.StageCount["job"], m.StageCount)
	}
	// The quick verify job is decided by the static tier (its assert is
	// provable by interval analysis) and never reaches the CDCL search;
	// the panic job dies before search. That leaves witness, synthesize
	// and the budget retry as search-stage contributors.
	if m.StageCount["search"] < 3 {
		t.Errorf("stage search count = %d, want >= 3", m.StageCount["search"])
	}
	if m.StageCount["vet"] < 1 {
		t.Errorf("stage vet count = %d, want >= 1", m.StageCount["vet"])
	}
	// Histogram invariant: +Inf bucket (the count) dominates every bound.
	for stage, buckets := range m.StageBuckets {
		for bound, n := range buckets {
			if n > m.StageCount[stage] {
				t.Errorf("stage %s bucket %s = %d exceeds count %d", stage, bound, n, m.StageCount[stage])
			}
		}
	}
	if m.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", m.UptimeSeconds)
	}
}
