package service

import (
	"sync"
	"time"
)

// ewmaAlpha weights the newest observation in the latency estimate. 0.2
// tracks regime shifts (a burst of heavy queries) within a handful of
// jobs without letting one outlier dominate.
const ewmaAlpha = 0.2

// admission holds an exponentially weighted moving average of recent
// solve latency per request class (Kind). The engine uses it for
// deadline-aware admission control: a job whose deadline cannot be met
// given the current queue backlog and the class's typical latency is
// rejected at submit time — failing in microseconds instead of tying up
// a queue slot only to time out later.
type admission struct {
	mu  sync.Mutex
	est map[Kind]time.Duration
}

func newAdmission() *admission {
	return &admission{est: make(map[Kind]time.Duration)}
}

// observe folds a finished solve's wall time into the class estimate.
// Deadline-expired jobs are observed too (at their timeout), which is a
// lower bound on the true latency — exactly the conservative direction
// admission control wants.
func (a *admission) observe(k Kind, d time.Duration) {
	if d <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	prev, ok := a.est[k]
	if !ok {
		a.est[k] = d
		return
	}
	a.est[k] = time.Duration(ewmaAlpha*float64(d) + (1-ewmaAlpha)*float64(prev))
}

// estimate returns the class's current latency estimate; ok is false
// until the first observation (unknown classes are always admitted).
func (a *admission) estimate(k Kind) (time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.est[k]
	return d, ok
}

// maxEstimate returns the largest per-class estimate, used to derive a
// conservative Retry-After hint when shedding load.
func (a *admission) maxEstimate() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var max time.Duration
	for _, d := range a.est {
		if d > max {
			max = d
		}
	}
	return max
}
