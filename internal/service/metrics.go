package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"buffy/internal/smt/sat"
	"buffy/internal/store"
	"buffy/internal/telemetry"
)

// StoreSnapshot is the durable disk tier's point-in-time counters plus
// the engine-side count of write-behinds dropped before reaching it.
type StoreSnapshot struct {
	store.Stats
	Dropped int64 `json:"dropped"`
}

// latencyBuckets are the cumulative-histogram upper bounds (seconds) for
// solve latency, chosen to straddle the sub-second interactive regime and
// the multi-second heavy-solve regime.
var latencyBuckets = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// metrics aggregates engine-wide counters. All fields are updated with
// atomics except the latency histogram, which takes a short mutex.
type metrics struct {
	submittedVerify     atomic.Int64
	submittedWitness    atomic.Int64
	submittedSynthesize atomic.Int64
	submittedBound      atomic.Int64
	submittedSweep      atomic.Int64

	completed atomic.Int64 // jobs that produced a conclusive or unknown result
	failed    atomic.Int64 // jobs that errored (parse/type/compile errors, deadline)
	canceled  atomic.Int64 // jobs aborted by explicit cancel or client abandonment
	rejected  atomic.Int64 // submissions shed (queue full or unmeetable deadline)

	admissionRejected atomic.Int64 // subset of rejected: deadline-aware admission
	degradedJobs      atomic.Int64 // retries that stepped down the degradation ladder

	// Labeled failure-taxonomy counters: failure reasons, retry reasons
	// and exhausted budget resources. One mutex guards all three maps;
	// they are touched once per job outcome, not per solver step.
	labMu     sync.Mutex
	failedBy  map[string]int64 // reason  → jobs failed (deadline, input, panic, ...)
	retriesBy map[string]int64 // reason  → retries attempted
	budgetBy  map[string]int64 // resource → solves stopped by that budget

	// Static-tier telemetry: /v1/vet traffic and how many of those
	// programs the analyzer rejected, plus solver jobs the pre-solve
	// static tier answered without any search.
	vetRequests    atomic.Int64
	vetRejected    atomic.Int64
	staticAnswered atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Write-behinds dropped before reaching the durable store (full
	// write queue or unserializable result); the store's own counters
	// cover everything that reached it.
	storeDropped atomic.Int64

	// Spans lost to per-trace caps across all finished jobs: nonzero
	// means -trace-spans is undersized for the workload and trace trees
	// are silently incomplete.
	traceSpansDropped atomic.Int64

	// Warm-session pool telemetry: sweep jobs served by an already-built
	// session vs. builds, and evictions by reason ("entries": LRU slot
	// pressure, "memory": byte-budget pressure, learnt-DB growth included).
	sessionHits   atomic.Int64
	sessionMisses atomic.Int64
	evictMu       sync.Mutex
	evictionsBy   map[string]int64

	workersBusy atomic.Int64

	// Cumulative solver effort across all jobs (satellite: surfaced
	// sat.Stats, aggregated service-wide).
	satConflicts    atomic.Int64
	satDecisions    atomic.Int64
	satPropagations atomic.Int64
	satRestarts     atomic.Int64

	latMu       sync.Mutex
	latCount    int64
	latSumNanos int64
	latBuckets  []int64 // cumulative counts per latencyBuckets bound

	// Portfolio telemetry: which config won each race, and the race's
	// end-to-end wall clock (same bounds as the solve histogram).
	portMu       sync.Mutex
	portWins     map[string]int64
	portCount    int64
	portSumNanos int64
	portBuckets  []int64

	// Per-stage histograms derived from finished traces: stage name
	// (parse, compile, encode, bitblast, search, ...) → latency histogram
	// over the solve buckets.
	stageMu       sync.Mutex
	stageCount    map[string]int64
	stageSumNanos map[string]int64
	stageBuckets  map[string][]int64

	start time.Time
}

func newMetrics() *metrics {
	return &metrics{
		evictionsBy:   make(map[string]int64),
		latBuckets:    make([]int64, len(latencyBuckets)),
		portWins:      make(map[string]int64),
		portBuckets:   make([]int64, len(latencyBuckets)),
		failedBy:      make(map[string]int64),
		retriesBy:     make(map[string]int64),
		budgetBy:      make(map[string]int64),
		stageCount:    make(map[string]int64),
		stageSumNanos: make(map[string]int64),
		stageBuckets:  make(map[string][]int64),
		start:         time.Now(),
	}
}

// recordStages folds one finished trace's per-stage durations (the sum of
// that trace's ended spans by name) into the stage histograms. Internal
// high-cardinality span names (per-restart, per-check) are aggregated by
// name just like the pipeline stages, so they cost one label value each.
func (m *metrics) recordStages(stages map[string]time.Duration) {
	if len(stages) == 0 {
		return
	}
	m.stageMu.Lock()
	for name, d := range stages {
		m.stageCount[name]++
		m.stageSumNanos[name] += d.Nanoseconds()
		b := m.stageBuckets[name]
		if b == nil {
			b = make([]int64, len(latencyBuckets))
			m.stageBuckets[name] = b
		}
		secs := d.Seconds()
		for i, bound := range latencyBuckets {
			if secs <= bound {
				b[i]++
			}
		}
	}
	m.stageMu.Unlock()
}

// recordSessionEviction counts one pool eviction under its reason.
func (m *metrics) recordSessionEviction(reason string) {
	m.evictMu.Lock()
	m.evictionsBy[reason]++
	m.evictMu.Unlock()
}

// recordFailed counts one failed job under its taxonomy reason.
func (m *metrics) recordFailed(reason string) {
	m.failed.Add(1)
	m.labMu.Lock()
	m.failedBy[reason]++
	m.labMu.Unlock()
}

// recordRetry counts one retry attempt under the transient reason that
// triggered it.
func (m *metrics) recordRetry(reason string) {
	m.labMu.Lock()
	m.retriesBy[reason]++
	m.labMu.Unlock()
}

// recordBudget counts one solver run stopped by a resource budget.
func (m *metrics) recordBudget(resource string) {
	m.labMu.Lock()
	m.budgetBy[resource]++
	m.labMu.Unlock()
}

func (m *metrics) recordSubmit(kind Kind) {
	switch kind {
	case KindVerify:
		m.submittedVerify.Add(1)
	case KindWitness:
		m.submittedWitness.Add(1)
	case KindSynthesize:
		m.submittedSynthesize.Add(1)
	case KindBound:
		m.submittedBound.Add(1)
	case KindSweep:
		m.submittedSweep.Add(1)
	}
}

func (m *metrics) recordSolve(d time.Duration, stats sat.Stats) {
	m.satConflicts.Add(stats.Conflicts)
	m.satDecisions.Add(stats.Decisions)
	m.satPropagations.Add(stats.Propagations)
	m.satRestarts.Add(stats.Restarts)

	secs := d.Seconds()
	m.latMu.Lock()
	m.latCount++
	m.latSumNanos += d.Nanoseconds()
	for i, bound := range latencyBuckets {
		if secs <= bound {
			m.latBuckets[i]++
		}
	}
	m.latMu.Unlock()
}

// recordPortfolio tallies a finished portfolio race: the winning config
// ("" when no config concluded) and the race's wall clock.
func (m *metrics) recordPortfolio(winner string, d time.Duration) {
	if winner == "" {
		winner = "none"
	}
	secs := d.Seconds()
	m.portMu.Lock()
	m.portWins[winner]++
	m.portCount++
	m.portSumNanos += d.Nanoseconds()
	for i, bound := range latencyBuckets {
		if secs <= bound {
			m.portBuckets[i]++
		}
	}
	m.portMu.Unlock()
}

// Snapshot is a point-in-time copy of all service metrics, JSON-friendly.
type Snapshot struct {
	JobsSubmitted map[string]int64 `json:"jobs_submitted"`
	JobsCompleted int64            `json:"jobs_completed"`
	JobsFailed    int64            `json:"jobs_failed"`
	JobsCanceled  int64            `json:"jobs_canceled"`
	JobsRejected  int64            `json:"jobs_rejected"`

	JobsFailedBy      map[string]int64 `json:"jobs_failed_by_reason,omitempty"`
	JobRetries        map[string]int64 `json:"job_retries,omitempty"`
	BudgetExhausted   map[string]int64 `json:"budget_exhausted,omitempty"`
	JobsDegraded      int64            `json:"jobs_degraded"`
	AdmissionRejected int64            `json:"admission_rejected"`

	QueueDepth  int `json:"queue_depth"`
	Workers     int `json:"workers"`
	WorkersBusy int `json:"workers_busy"`

	VetRequests    int64 `json:"vet_requests"`
	VetRejected    int64 `json:"vet_rejected"`
	StaticAnswered int64 `json:"static_tier_answers"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Store is the durable disk tier's snapshot (nil when no store is
	// configured).
	Store *StoreSnapshot `json:"store,omitempty"`

	// TraceSpansDropped counts spans lost to per-trace caps; TraceExport
	// is the OTLP exporter's snapshot (nil when export is not
	// configured).
	TraceSpansDropped int64                  `json:"trace_spans_dropped"`
	TraceExport       *telemetry.ExportStats `json:"trace_export,omitempty"`

	SessionsLive     int              `json:"sessions_live"`
	SessionBytes     int64            `json:"session_bytes"`
	SessionHits      int64            `json:"session_hits"`
	SessionMisses    int64            `json:"session_misses"`
	SessionEvictions map[string]int64 `json:"session_evictions,omitempty"`

	SatConflicts    int64 `json:"sat_conflicts"`
	SatDecisions    int64 `json:"sat_decisions"`
	SatPropagations int64 `json:"sat_propagations"`
	SatRestarts     int64 `json:"sat_restarts"`

	SolveCount      int64            `json:"solve_count"`
	SolveSecondsSum float64          `json:"solve_seconds_sum"`
	SolveBuckets    map[string]int64 `json:"solve_latency_buckets"`

	PortfolioWins       map[string]int64 `json:"portfolio_wins"`
	PortfolioCount      int64            `json:"portfolio_count"`
	PortfolioSecondsSum float64          `json:"portfolio_seconds_sum"`
	PortfolioBuckets    map[string]int64 `json:"portfolio_latency_buckets"`

	StageCount      map[string]int64            `json:"stage_count,omitempty"`
	StageSecondsSum map[string]float64          `json:"stage_seconds_sum,omitempty"`
	StageBuckets    map[string]map[string]int64 `json:"stage_latency_buckets,omitempty"`

	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (m *metrics) snapshot(queueDepth, workers, cacheEntries, sessionsLive int, sessionBytes int64) Snapshot {
	s := Snapshot{
		JobsSubmitted: map[string]int64{
			string(KindVerify):     m.submittedVerify.Load(),
			string(KindWitness):    m.submittedWitness.Load(),
			string(KindSynthesize): m.submittedSynthesize.Load(),
			string(KindBound):      m.submittedBound.Load(),
			string(KindSweep):      m.submittedSweep.Load(),
		},
		JobsCompleted: m.completed.Load(),
		JobsFailed:    m.failed.Load(),
		JobsCanceled:  m.canceled.Load(),
		JobsRejected:  m.rejected.Load(),

		JobsDegraded:      m.degradedJobs.Load(),
		AdmissionRejected: m.admissionRejected.Load(),

		QueueDepth:  queueDepth,
		Workers:     workers,
		WorkersBusy: int(m.workersBusy.Load()),

		VetRequests:    m.vetRequests.Load(),
		VetRejected:    m.vetRejected.Load(),
		StaticAnswered: m.staticAnswered.Load(),

		CacheHits:    m.cacheHits.Load(),
		CacheMisses:  m.cacheMisses.Load(),
		CacheEntries: cacheEntries,

		SessionsLive:  sessionsLive,
		SessionBytes:  sessionBytes,
		SessionHits:   m.sessionHits.Load(),
		SessionMisses: m.sessionMisses.Load(),

		SatConflicts:    m.satConflicts.Load(),
		SatDecisions:    m.satDecisions.Load(),
		SatPropagations: m.satPropagations.Load(),
		SatRestarts:     m.satRestarts.Load(),

		TraceSpansDropped: m.traceSpansDropped.Load(),

		SolveBuckets: make(map[string]int64, len(latencyBuckets)),
	}
	if total := s.CacheHits + s.CacheMisses; total > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(total)
	}
	m.labMu.Lock()
	if len(m.failedBy) > 0 {
		s.JobsFailedBy = make(map[string]int64, len(m.failedBy))
		for k, v := range m.failedBy {
			s.JobsFailedBy[k] = v
		}
	}
	if len(m.retriesBy) > 0 {
		s.JobRetries = make(map[string]int64, len(m.retriesBy))
		for k, v := range m.retriesBy {
			s.JobRetries[k] = v
		}
	}
	if len(m.budgetBy) > 0 {
		s.BudgetExhausted = make(map[string]int64, len(m.budgetBy))
		for k, v := range m.budgetBy {
			s.BudgetExhausted[k] = v
		}
	}
	m.labMu.Unlock()
	m.evictMu.Lock()
	if len(m.evictionsBy) > 0 {
		s.SessionEvictions = make(map[string]int64, len(m.evictionsBy))
		for k, v := range m.evictionsBy {
			s.SessionEvictions[k] = v
		}
	}
	m.evictMu.Unlock()
	m.latMu.Lock()
	s.SolveCount = m.latCount
	s.SolveSecondsSum = float64(m.latSumNanos) / 1e9
	for i, bound := range latencyBuckets {
		s.SolveBuckets[fmt.Sprintf("le_%g", bound)] = m.latBuckets[i]
	}
	m.latMu.Unlock()
	s.PortfolioWins = make(map[string]int64)
	s.PortfolioBuckets = make(map[string]int64, len(latencyBuckets))
	m.portMu.Lock()
	for cfg, n := range m.portWins {
		s.PortfolioWins[cfg] = n
	}
	s.PortfolioCount = m.portCount
	s.PortfolioSecondsSum = float64(m.portSumNanos) / 1e9
	for i, bound := range latencyBuckets {
		s.PortfolioBuckets[fmt.Sprintf("le_%g", bound)] = m.portBuckets[i]
	}
	m.portMu.Unlock()
	m.stageMu.Lock()
	if len(m.stageCount) > 0 {
		s.StageCount = make(map[string]int64, len(m.stageCount))
		s.StageSecondsSum = make(map[string]float64, len(m.stageCount))
		s.StageBuckets = make(map[string]map[string]int64, len(m.stageCount))
		for name, n := range m.stageCount {
			s.StageCount[name] = n
			s.StageSecondsSum[name] = float64(m.stageSumNanos[name]) / 1e9
			bk := make(map[string]int64, len(latencyBuckets))
			for i, bound := range latencyBuckets {
				bk[fmt.Sprintf("le_%g", bound)] = m.stageBuckets[name][i]
			}
			s.StageBuckets[name] = bk
		}
	}
	m.stageMu.Unlock()
	s.Version = Version
	s.GoVersion = goVersion()
	s.UptimeSeconds = time.Since(m.start).Seconds()
	return s
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (counters and gauges; solve latency as a cumulative histogram).
func (s Snapshot) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP buffy_jobs_submitted_total Analysis jobs submitted, by kind.\n# TYPE buffy_jobs_submitted_total counter\n")
	kinds := make([]string, 0, len(s.JobsSubmitted))
	for k := range s.JobsSubmitted {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "buffy_jobs_submitted_total{kind=%q} %d\n", k, s.JobsSubmitted[k])
	}
	labeled := func(name, help, label string, by map[string]int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(by))
		for k := range by {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, by[k])
		}
	}

	counter("buffy_jobs_completed_total", "Jobs that finished with a result.", s.JobsCompleted)
	counter("buffy_jobs_failed_total", "Jobs that failed (bad program, deadline, panic).", s.JobsFailed)
	labeled("buffy_jobs_failed_reason_total", "Failed jobs by failure-taxonomy reason.",
		"reason", s.JobsFailedBy)
	counter("buffy_jobs_canceled_total", "Jobs aborted by cancellation.", s.JobsCanceled)
	counter("buffy_jobs_rejected_total", "Submissions shed (queue full or unmeetable deadline).", s.JobsRejected)
	counter("buffy_admission_rejected_total", "Submissions rejected by deadline-aware admission.", s.AdmissionRejected)
	labeled("buffy_job_retries_total", "Transient-failure retries by reason.",
		"reason", s.JobRetries)
	labeled("buffy_budget_exhausted_total", "Solver runs stopped by a resource budget.",
		"resource", s.BudgetExhausted)
	counter("buffy_jobs_degraded_total", "Retries that stepped down the degradation ladder.", s.JobsDegraded)

	gauge("buffy_queue_depth", "Jobs waiting for a worker.", float64(s.QueueDepth))
	gauge("buffy_workers", "Configured worker pool size.", float64(s.Workers))
	gauge("buffy_workers_busy", "Workers currently solving.", float64(s.WorkersBusy))

	counter("buffy_vet_requests_total", "POST /v1/vet static-analysis requests served.", s.VetRequests)
	counter("buffy_vet_rejected_total", "Vet requests whose program had error-severity findings.", s.VetRejected)
	counter("buffy_static_tier_answers_total", "Solver jobs answered by the pre-solve static tier.", s.StaticAnswered)

	counter("buffy_cache_hits_total", "Analyses served from the result cache.", s.CacheHits)
	counter("buffy_cache_misses_total", "Analyses that had to solve.", s.CacheMisses)
	gauge("buffy_cache_entries", "Results currently cached.", float64(s.CacheEntries))
	gauge("buffy_cache_hit_rate", "Lifetime cache hit fraction.", s.CacheHitRate)

	if st := s.Store; st != nil {
		counter("buffy_store_hits_total", "Durable-tier reads that verified and served an entry.", st.Hits)
		counter("buffy_store_misses_total", "Durable-tier reads that found no servable entry.", st.Misses)
		counter("buffy_store_writes_total", "Entries written durably (temp + fsync + rename).", st.Writes)
		counter("buffy_store_write_errors_total", "Durable writes that failed (full disk, read-only store).", st.WriteErrors)
		counter("buffy_store_read_errors_total", "Durable reads that failed at the I/O layer.", st.ReadErrors)
		counter("buffy_store_dropped_total", "Write-behinds dropped before reaching the store.", st.Dropped)
		counter("buffy_store_quarantined_total", "Entries withdrawn to quarantine (torn, bit-rotted, mismatched).", st.Quarantined)
		counter("buffy_store_evictions_total", "Valid entries deleted by the LRU byte-budget GC.", st.Evictions)
		counter("buffy_store_invalidations_total", "Wholesale entry-set invalidations (pipeline fingerprint changed).", st.Invalidations)
		gauge("buffy_store_entries", "Entries resident in the durable tier.", float64(st.Entries))
		gauge("buffy_store_bytes", "Bytes resident in the durable tier.", float64(st.Bytes))
		ro := 0.0
		if st.ReadOnly {
			ro = 1
		}
		gauge("buffy_store_read_only", "1 when the durable tier is degraded to read-only.", ro)
	}

	gauge("buffy_sessions_live", "Warm solver sessions currently pooled.", float64(s.SessionsLive))
	gauge("buffy_session_bytes", "Estimated pool memory: encodings plus learnt-clause databases.", float64(s.SessionBytes))
	counter("buffy_session_hits_total", "Sweeps served by an already-warm pooled session.", s.SessionHits)
	counter("buffy_session_misses_total", "Sweeps that built a new session.", s.SessionMisses)
	labeled("buffy_session_evictions_total", "Pool evictions by reason (entries: LRU slots, memory: byte budget).",
		"reason", s.SessionEvictions)

	counter("buffy_trace_spans_dropped_total", "Spans lost to per-trace caps (undersized -trace-spans).", s.TraceSpansDropped)
	if ex := s.TraceExport; ex != nil {
		counter("buffy_trace_export_traces_total", "Trace snapshots accepted for OTLP export.", ex.Traces)
		counter("buffy_trace_export_dropped_total", "Trace snapshots dropped: export queue full.", ex.Dropped)
		counter("buffy_trace_export_pushed_total", "OTLP batches pushed to the collector.", ex.Pushed)
		counter("buffy_trace_export_push_retries_total", "OTLP push attempts retried (transient failures).", ex.PushRetries)
		counter("buffy_trace_export_push_failed_total", "OTLP batches abandoned after retries or on 4xx.", ex.PushFailed)
		counter("buffy_trace_export_spooled_total", "ResourceSpans lines written to the NDJSON spool.", ex.Spooled)
		counter("buffy_trace_export_spool_errors_total", "Spool write/marshal failures.", ex.SpoolErrors)
	}

	counter("buffy_sat_conflicts_total", "Cumulative CDCL conflicts.", s.SatConflicts)
	counter("buffy_sat_decisions_total", "Cumulative CDCL decisions.", s.SatDecisions)
	counter("buffy_sat_propagations_total", "Cumulative unit propagations.", s.SatPropagations)
	counter("buffy_sat_restarts_total", "Cumulative CDCL restarts.", s.SatRestarts)

	fmt.Fprintf(w, "# HELP buffy_solve_duration_seconds Analysis solve wall time.\n# TYPE buffy_solve_duration_seconds histogram\n")
	for _, bound := range latencyBuckets {
		fmt.Fprintf(w, "buffy_solve_duration_seconds_bucket{le=%q} %d\n",
			fmt.Sprintf("%g", bound), s.SolveBuckets[fmt.Sprintf("le_%g", bound)])
	}
	fmt.Fprintf(w, "buffy_solve_duration_seconds_bucket{le=\"+Inf\"} %d\n", s.SolveCount)
	fmt.Fprintf(w, "buffy_solve_duration_seconds_sum %g\n", s.SolveSecondsSum)
	fmt.Fprintf(w, "buffy_solve_duration_seconds_count %d\n", s.SolveCount)

	fmt.Fprintf(w, "# HELP buffy_portfolio_wins_total Portfolio races won, by solver configuration.\n# TYPE buffy_portfolio_wins_total counter\n")
	cfgs := make([]string, 0, len(s.PortfolioWins))
	for cfg := range s.PortfolioWins {
		cfgs = append(cfgs, cfg)
	}
	sort.Strings(cfgs)
	for _, cfg := range cfgs {
		fmt.Fprintf(w, "buffy_portfolio_wins_total{config=%q} %d\n", cfg, s.PortfolioWins[cfg])
	}
	fmt.Fprintf(w, "# HELP buffy_portfolio_duration_seconds Portfolio race wall time (first conclusive answer).\n# TYPE buffy_portfolio_duration_seconds histogram\n")
	for _, bound := range latencyBuckets {
		fmt.Fprintf(w, "buffy_portfolio_duration_seconds_bucket{le=%q} %d\n",
			fmt.Sprintf("%g", bound), s.PortfolioBuckets[fmt.Sprintf("le_%g", bound)])
	}
	fmt.Fprintf(w, "buffy_portfolio_duration_seconds_bucket{le=\"+Inf\"} %d\n", s.PortfolioCount)
	fmt.Fprintf(w, "buffy_portfolio_duration_seconds_sum %g\n", s.PortfolioSecondsSum)
	fmt.Fprintf(w, "buffy_portfolio_duration_seconds_count %d\n", s.PortfolioCount)

	fmt.Fprintf(w, "# HELP buffy_stage_duration_seconds Per-pipeline-stage time from finished traces.\n# TYPE buffy_stage_duration_seconds histogram\n")
	stages := make([]string, 0, len(s.StageCount))
	for name := range s.StageCount {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	for _, name := range stages {
		for _, bound := range latencyBuckets {
			fmt.Fprintf(w, "buffy_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n",
				name, fmt.Sprintf("%g", bound), s.StageBuckets[name][fmt.Sprintf("le_%g", bound)])
		}
		fmt.Fprintf(w, "buffy_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", name, s.StageCount[name])
		fmt.Fprintf(w, "buffy_stage_duration_seconds_sum{stage=%q} %g\n", name, s.StageSecondsSum[name])
		fmt.Fprintf(w, "buffy_stage_duration_seconds_count{stage=%q} %d\n", name, s.StageCount[name])
	}

	fmt.Fprintf(w, "# HELP buffy_build_info Build metadata (value is always 1).\n# TYPE buffy_build_info gauge\n")
	fmt.Fprintf(w, "buffy_build_info{version=%q,goversion=%q} 1\n", s.Version, s.GoVersion)
	gauge("buffy_uptime_seconds", "Seconds since the engine started.", s.UptimeSeconds)
}
