package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"buffy/internal/qm"
)

// sessionRefs sums the acquire-side reference counts across the pool: 0
// means no sweep currently holds a pooled session.
func sessionRefs(e *Engine) int {
	e.sessions.mu.Lock()
	defer e.sessions.mu.Unlock()
	n := 0
	for el := e.sessions.order.Front(); el != nil; el = el.Next() {
		n += el.Value.(*poolEntry).refs
	}
	return n
}

// TestSweepClientDisconnect cancels a /v1/sweep HTTP request mid-stream
// and asserts the cancellation propagates all the way down: the solve
// stops (the job goes canceled, not done), the pooled session's
// reference is released rather than leaked, and the engine keeps
// serving.
func TestSweepClientDisconnect(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// A sweep long enough that the stream is alive well after the first
	// verdict (~2.5s total on one worker), so the cancel point is
	// unambiguously mid-solve.
	body, _ := json.Marshal(&Request{
		Kind: KindSweep, Source: qm.FQFixedQuerySrc,
		Params: map[string]int64{"N": 6}, MaxT: 20, SweepMode: "verify",
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// Read exactly one streamed verdict — proof the solve is running and
	// the session is held — then hang up.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("stream ended before the first verdict: %v", sc.Err())
	}
	var line sweepLine
	if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Verdict == nil {
		t.Fatalf("first line %q is not a verdict (err %v)", sc.Bytes(), err)
	}
	if refs := sessionRefs(e); refs != 1 {
		t.Fatalf("session refs mid-sweep = %d, want 1", refs)
	}
	cancel()

	// The handler observes the dead request context and cancels the job;
	// the worker's solver unwinds cooperatively.
	e.mu.Lock()
	if len(e.jobs) != 1 {
		e.mu.Unlock()
		t.Fatalf("expected exactly one job, have %d", len(e.jobs))
	}
	var job *Job
	for _, j := range e.jobs {
		job = j
	}
	e.mu.Unlock()
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job still %s 30s after client disconnect: cancellation not propagated", job.State())
	}
	if st := job.State(); st != StateCanceled {
		t.Fatalf("job state = %s, want canceled", st)
	}

	// The session reference must be released promptly, not leaked until
	// pool eviction.
	deadline := time.Now().Add(5 * time.Second)
	for sessionRefs(e) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session refs = %d 5s after cancellation: session leaked", sessionRefs(e))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m := e.Metrics(); m.JobsCanceled != 1 {
		t.Fatalf("JobsCanceled = %d, want 1", m.JobsCanceled)
	}

	// And the engine still serves: the same sweep, uncanceled, completes.
	j2, err := e.Submit(sweepReq("witness", 4))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j2, 2*time.Minute)
	if res.Status == "" {
		t.Fatal("follow-up sweep produced no status")
	}
}
