package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"buffy/internal/qm"
	"buffy/internal/telemetry"
)

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// TestTraceEndpoint is the tentpole acceptance scenario: POST /v1/verify,
// then GET /v1/jobs/{id}/trace returns a span tree containing parse,
// compile, encode, bitblast and search spans, with the top-level spans'
// durations summing to roughly the job's wall clock.
func TestTraceEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	req := map[string]any{"source": qm.FQBuggyQuerySrc, "t": 5, "params": map[string]int64{"N": 3}}

	resp, body := postJSON(t, srv.URL+"/v1/verify", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/verify: %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	wallUS := v.FinishedAt.Sub(*v.StartedAt).Microseconds()

	var view telemetry.View
	if r := getJSON(t, srv.URL+"/v1/jobs/"+v.ID+"/trace", &view); r.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d", r.StatusCode)
	}
	if view.ID != v.ID || view.NumSpans == 0 {
		t.Fatalf("trace view: %+v", view)
	}

	// Flatten and index by name.
	found := map[string]int64{}
	var walk func(spans []*telemetry.SpanView)
	walk = func(spans []*telemetry.SpanView) {
		for _, s := range spans {
			found[s.Name] += s.DurUS
			walk(s.Spans)
		}
	}
	walk(view.Spans)
	for _, stage := range []string{"job", "parse", "compile", "encode", "bitblast", "search"} {
		if _, ok := found[stage]; !ok {
			t.Errorf("span %q missing from trace (have %v)", stage, found)
		}
	}
	// The root "job" span covers the whole attempt loop; it must account
	// for most of the job's wall clock (scheduling slop allowed).
	if job := found["job"]; job > wallUS+50_000 || (wallUS > 20_000 && job < wallUS/2) {
		t.Errorf("job span %dus vs wall %dus — span tree does not cover the job", job, wallUS)
	}
	// parse + encode + search are the disjoint top-level pipeline stages;
	// they must not exceed the job span they nest under.
	if sum := found["parse"] + found["encode"] + found["search"]; sum > found["job"]+10_000 {
		t.Errorf("stage sum %dus exceeds job span %dus", sum, found["job"])
	}
}

// TestTraceListedAndRetained: finished traces appear in /v1/traces
// (newest first) and survive there with their span trees fetchable.
func TestTraceListedAndRetained(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, srv.URL+"/v1/verify", map[string]any{"source": quickProg, "t": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	var list struct {
		Traces []TraceSummary `json:"traces"`
	}
	getJSON(t, srv.URL+"/v1/traces", &list)
	if len(list.Traces) != 1 || list.Traces[0].JobID != v.ID || list.Traces[0].NumSpans == 0 {
		t.Fatalf("trace listing: %+v", list)
	}
	if list.Traces[0].State != string(StateDone) || list.Traces[0].Kind != string(KindVerify) {
		t.Errorf("summary metadata: %+v", list.Traces[0])
	}

	// A cache hit records no trace: the second submit's job 404s.
	_, body2 := postJSON(t, srv.URL+"/v1/verify", map[string]any{"source": quickProg, "t": 2})
	var v2 JobView
	if err := json.Unmarshal(body2, &v2); err != nil {
		t.Fatal(err)
	}
	if r := getJSON(t, srv.URL+"/v1/jobs/"+v2.ID+"/trace", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("cache-hit trace: status %d, want 404", r.StatusCode)
	}
}

// TestProgressEndpoint: polling /v1/jobs/{id}/progress during a hard
// solve returns monotonically nondecreasing conflict counts that end
// above zero.
func TestProgressEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	// A hard query submitted async so the test can poll while it solves. A
	// conflict budget bounds the test's runtime; the poller tolerates the
	// job finishing early.
	req := map[string]any{
		"source": qm.FQBuggyQuerySrc, "t": 7, "params": map[string]int64{"N": 3},
		"max_conflicts": 30000,
	}
	resp, body := postJSON(t, srv.URL+"/v1/verify?async=1", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	type progressResp struct {
		ID       string           `json:"id"`
		State    State            `json:"state"`
		Progress ProgressSnapshot `json:"progress"`
	}
	var snaps []progressResp
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var pr progressResp
		if r := getJSON(t, srv.URL+"/v1/jobs/"+v.ID+"/progress", &pr); r.StatusCode != http.StatusOK {
			t.Fatalf("GET progress: %d", r.StatusCode)
		}
		snaps = append(snaps, pr)
		if pr.State.terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if last := snaps[len(snaps)-1]; !last.State.terminal() {
		t.Fatalf("job still %s after deadline", last.State)
	}
	var prev int64 = -1
	for i, s := range snaps {
		if s.Progress.Conflicts < prev {
			t.Fatalf("poll %d: conflicts went backwards (%d -> %d)", i, prev, s.Progress.Conflicts)
		}
		prev = s.Progress.Conflicts
	}
	if prev == 0 {
		t.Error("final progress shows zero conflicts for a hard solve")
	}
}

// ProgressSnapshot alias keeps the test self-describing without importing
// sat directly everywhere.
type ProgressSnapshot struct {
	Conflicts    int64   `json:"conflicts"`
	Propagations int64   `json:"propagations"`
	Solves       int64   `json:"solves"`
	Budget       float64 `json:"budget_fraction"`
}

// TestVersionEndpoint: /v1/version reports the build and Go versions
// plus a sane uptime.
func TestVersionEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	var vi VersionInfo
	getJSON(t, srv.URL+"/v1/version", &vi)
	if vi.Version != Version || !strings.HasPrefix(vi.GoVersion, "go") {
		t.Errorf("version info: %+v", vi)
	}
	if vi.UptimeSeconds < 0 || vi.UptimeSeconds > 3600 {
		t.Errorf("implausible uptime %v", vi.UptimeSeconds)
	}
}

// TestTraceRingEviction: the ring keeps only the configured number of
// traces, newest preserved.
func TestTraceRingEviction(t *testing.T) {
	r := newTraceRing(2)
	for i := 0; i < 5; i++ {
		tr := telemetry.NewTrace(fmt.Sprintf("j%d", i))
		tr.StartSpan(nil, "x").End()
		r.add(TraceSummary{JobID: tr.ID()}, tr)
	}
	s := r.summaries()
	if len(s) != 2 || s[0].JobID != "j4" || s[1].JobID != "j3" {
		t.Fatalf("summaries after eviction: %+v", s)
	}
	if _, ok := r.get("j0"); ok {
		t.Error("evicted trace still fetchable")
	}
	if _, ok := r.get("j4"); !ok {
		t.Error("latest trace not fetchable")
	}
}
