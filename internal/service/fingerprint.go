package service

import (
	"buffy/internal/backend/netcalc"
	"buffy/internal/backend/smtbe"
	"buffy/internal/smt/sat"
	"buffy/internal/vet"
)

// resultSchemaVersion names the wire shape of Result as stored on disk.
// Bump it when a Result field changes meaning (renames and additions that
// old payloads decode correctly do not require a bump).
const resultSchemaVersion = 1

// PipelineFingerprint hashes the version fingerprint of every
// answer-relevant component — the SMT encoding, the decision procedure,
// the static analyzer, the analytical bound backend, and the stored
// result schema — into the single version string the durable store
// files entries under. Any component bump changes the fingerprint and
// wholesale-invalidates previously stored results.
//
// Deliberately excluded: service.Version (release numbering should not
// flush the cache) and anything that only affects performance, not
// answers (worker counts, budgets, portfolio heuristics).
func PipelineFingerprint() string {
	h := newKeyHasher()
	h.field("encoder")
	h.field(smtbe.EncodingFingerprint)
	h.field("solver")
	h.field(sat.Fingerprint)
	h.field("sema")
	h.field(vet.Fingerprint)
	h.field("netcalc")
	h.field(netcalc.Fingerprint)
	h.field("result-schema")
	h.int(resultSchemaVersion)
	return h.sum()
}
