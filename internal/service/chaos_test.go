//go:build faultinject

package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"buffy/internal/faultinject"
)

// The chaos suite (go test -tags faultinject ./internal/service/...)
// injects faults at the named points and asserts the three invariants of
// the fault-tolerant runtime:
//
//  1. the service stays live — a fault fails (at most) the faulted job,
//     never the engine;
//  2. no fault ever causes a wrong verdict — the CS1 witness query's
//     answer is "witness", so any Done result claiming "no-witness"
//     would be a soundness bug injected by the fault path;
//  3. capacity recovers — once the fault clears, the same query solves
//     correctly again.

// assertNoWrongVerdict fails the test if a result contradicts the known
// CS1 ground truth. Unknown is acceptable under faults; a confident
// wrong answer is not.
func assertNoWrongVerdict(t *testing.T, res *Result) {
	t.Helper()
	if res == nil {
		return
	}
	if res.Status == "no-witness" {
		t.Fatalf("wrong verdict under fault injection: got %q for a query whose ground truth is witness", res.Status)
	}
}

// mustWitness submits the CS1 query with no faults armed and requires the
// correct verdict — the "capacity recovered" probe.
func mustWitness(t *testing.T, e *Engine) {
	t.Helper()
	job, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatalf("recovery submit: %v", err)
	}
	res := waitDone(t, job, 2*time.Minute)
	if res.Status != "witness" {
		t.Fatalf("recovery solve: status = %q, want witness", res.Status)
	}
}

// TestChaosWorkerPanic arms a one-shot panic inside the worker's shielded
// region: the first attempt dies, the retry ladder reruns the analysis,
// and the job still produces the correct verdict.
func TestChaosWorkerPanic(t *testing.T) {
	defer faultinject.Reset()
	e := New(Config{Workers: 1, MaxRetries: 2, RetryBackoff: time.Millisecond})
	defer shutdown(t, e)

	faultinject.Enable(faultinject.PointWorkerPanic, faultinject.Fault{Panic: "chaos", Times: 1})
	job, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, 2*time.Minute)
	assertNoWrongVerdict(t, res)
	if res.Status != "witness" {
		t.Fatalf("status = %q, want witness (retry should survive a one-shot panic)", res.Status)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Attempts)
	}
	if m := e.Metrics(); m.JobRetries["panic"] != 1 {
		t.Errorf("JobRetries[panic] = %d, want 1", m.JobRetries["panic"])
	}
	if got := faultinject.Fired(faultinject.PointWorkerPanic); got != 1 {
		t.Errorf("panic fired %d times, want 1", got)
	}
}

// TestChaosPanicStormWithoutRetries floods every attempt with panics on
// an engine with retries off: each faulted job fails cleanly, the engine
// survives, and capacity returns once the storm clears.
func TestChaosPanicStormWithoutRetries(t *testing.T) {
	defer faultinject.Reset()
	e := New(Config{Workers: 2})
	defer shutdown(t, e)

	faultinject.Enable(faultinject.PointWorkerPanic, faultinject.Fault{Panic: "storm"})
	const n = 6
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		req := fqWitnessReq(6)
		req.Params = map[string]int64{"N": 3, "storm": int64(i)} // defeat the cache
		job, err := e.Submit(req)
		if err != nil {
			t.Fatalf("submit %d during storm: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	for i, job := range jobs {
		select {
		case <-job.Done():
		case <-time.After(time.Minute):
			t.Fatalf("job %d hung under panic storm", i)
		}
		res, err := job.Result()
		assertNoWrongVerdict(t, res)
		if !errors.Is(err, ErrAnalysisPanic) {
			t.Errorf("job %d: err = %v, want ErrAnalysisPanic", i, err)
		}
	}
	if m := e.Metrics(); m.JobsFailedBy["panic"] != n {
		t.Errorf("JobsFailedBy[panic] = %d, want %d", m.JobsFailedBy["panic"], n)
	}
	faultinject.Reset()
	mustWitness(t, e)
}

// TestChaosSolverStall pins deadline handling under a stalled solve: the
// stall eats the job's deadline, the job fails as a deadline (not a
// hang, not an input error), and the worker is back for the next job.
func TestChaosSolverStall(t *testing.T) {
	defer faultinject.Reset()
	e := New(Config{Workers: 1})
	defer shutdown(t, e)

	faultinject.Enable(faultinject.PointSolverStall,
		faultinject.Fault{Delay: 30 * time.Second, Times: 1})
	req := fqWitnessReq(6)
	req.TimeoutMS = 300
	job, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(time.Minute):
		t.Fatal("stalled job ignored its deadline")
	}
	res, err := job.Result()
	assertNoWrongVerdict(t, res)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if m := e.Metrics(); m.JobsFailedBy["deadline"] != 1 {
		t.Errorf("JobsFailedBy[deadline] = %d, want 1", m.JobsFailedBy["deadline"])
	}
	mustWitness(t, e)
}

// TestChaosCancelStorm cancels every job shortly after it starts running
// — a storm of client disconnects. Jobs end canceled (or done, if the
// solve won the race), never wedged, and never with a wrong verdict.
func TestChaosCancelStorm(t *testing.T) {
	defer faultinject.Reset()
	e := New(Config{Workers: 2})
	defer shutdown(t, e)

	faultinject.Enable(faultinject.PointCancelStorm, faultinject.Fault{Delay: time.Millisecond})
	const n = 8
	for i := 0; i < n; i++ {
		req := fqWitnessReq(6)
		req.Params = map[string]int64{"N": 3, "storm": int64(i)}
		job, err := e.Submit(req)
		if err != nil {
			t.Fatalf("submit %d during cancel storm: %v", i, err)
		}
		select {
		case <-job.Done():
		case <-time.After(time.Minute):
			t.Fatalf("job %d wedged under cancel storm", i)
		}
		res, err := job.Result()
		assertNoWrongVerdict(t, res)
		st := job.State()
		if st != StateCanceled && st != StateDone {
			t.Errorf("job %d: state = %s, want canceled or done", i, st)
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, err)
		}
	}
	faultinject.Reset()
	mustWitness(t, e)
}

// TestChaosAllocPressure runs the solve behind a transient 64 MiB
// allocation burst: pure GC churn must not change the verdict.
func TestChaosAllocPressure(t *testing.T) {
	defer faultinject.Reset()
	e := New(Config{Workers: 1})
	defer shutdown(t, e)

	faultinject.Enable(faultinject.PointAllocPressure, faultinject.Fault{AllocBytes: 64 << 20})
	job, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, 2*time.Minute)
	assertNoWrongVerdict(t, res)
	if res.Status != "witness" {
		t.Fatalf("status = %q, want witness", res.Status)
	}
}

// TestChaosClockSkew skews the per-job deadline computation hard
// negative: the deadline clamps to its 1ns floor, the job fails fast as
// a deadline — not a hang, not a wrong answer — and the next job's
// timing is back to normal.
func TestChaosClockSkew(t *testing.T) {
	defer faultinject.Reset()
	e := New(Config{Workers: 1})
	defer shutdown(t, e)

	faultinject.Enable(faultinject.PointClockSkew, faultinject.Fault{Skew: -time.Hour, Times: 1})
	job, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(time.Minute):
		t.Fatal("skewed job never finished")
	}
	res, err := job.Result()
	assertNoWrongVerdict(t, res)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded under negative skew", err)
	}
	mustWitness(t, e)
}

// TestChaosMetricsStayCoherent cross-checks the ledger after a mixed
// chaos run: submitted must reconcile with completed+failed+canceled,
// under faults exactly as in normal operation.
func TestChaosMetricsStayCoherent(t *testing.T) {
	defer faultinject.Reset()
	e := New(Config{Workers: 2, MaxRetries: 1, RetryBackoff: time.Millisecond})
	defer shutdown(t, e)

	faultinject.Enable(faultinject.PointWorkerPanic, faultinject.Fault{Panic: "mixed", Times: 3})
	jobs := make([]*Job, 0, 8)
	for i := 0; i < 8; i++ {
		req := fqWitnessReq(6)
		req.Params = map[string]int64{"N": 3, "mix": int64(i)}
		job, err := e.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	for i, job := range jobs {
		select {
		case <-job.Done():
		case <-time.After(2 * time.Minute):
			t.Fatalf("job %d hung", i)
		}
		res, _ := job.Result()
		assertNoWrongVerdict(t, res)
	}
	m := e.Metrics()
	var submitted int64
	for _, n := range m.JobsSubmitted {
		submitted += n
	}
	if got := m.JobsCompleted + m.JobsFailed + m.JobsCanceled; got != submitted {
		t.Errorf("ledger: completed+failed+canceled = %d, submitted = %d (%s)",
			got, submitted, fmt.Sprintf("%+v", m))
	}
}
