package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

const contraProg = `
contra(in buffer a, out buffer b) {
  local int n;
  n = backlog-p(a);
  assume(n > 2000);
  move-p(a, b, n);
  assert(backlog-p(a) == 0);
}
`

func TestVetEndpointClean(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, srv.URL+"/v1/vet", Request{Source: quickProg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var v VetResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Clean || v.Rejected {
		t.Errorf("clean=%v rejected=%v, want clean; body %s", v.Clean, v.Rejected, body)
	}
	if v.Program != "limiter" {
		t.Errorf("program = %q, want limiter", v.Program)
	}
	// quickProg's assert is an interval-provable invariant.
	if v.Verify != "holds" {
		t.Errorf("verify = %q, want holds (body %s)", v.Verify, body)
	}
	if v.Diagnostics == nil {
		t.Error("diagnostics must be [] on the wire, not null")
	}
}

func TestVetEndpointRejectsAndCounts(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, srv.URL+"/v1/vet", Request{Source: contraProg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var v VetResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Rejected || v.Clean {
		t.Errorf("clean=%v rejected=%v, want rejected; body %s", v.Clean, v.Rejected, body)
	}
	found := false
	for _, d := range v.Diagnostics {
		if d.Code == "B103" {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics missing the B103 contradiction: %s", body)
	}

	m := e.Metrics()
	if m.VetRequests < 1 || m.VetRejected < 1 {
		t.Errorf("vet counters = %d requests / %d rejected, want >= 1 each", m.VetRequests, m.VetRejected)
	}
	if m.JobsFailedBy["vet_rejected"] < 1 {
		t.Errorf("failure taxonomy missing vet_rejected: %v", m.JobsFailedBy)
	}
}

func TestVetEndpointBadRequest(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, _ := postJSON(t, srv.URL+"/v1/vet", Request{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty source: status = %d, want 400", resp.StatusCode)
	}
}

// TestVerifyJobAnsweredByStaticTier drives a full queue round-trip and
// checks the wire result is labeled with the answering tier.
func TestVerifyJobAnsweredByStaticTier(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, srv.URL+"/v1/verify", Request{Source: quickProg, T: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Result == nil || view.Result.Tier != "static" {
		t.Fatalf("result tier != static: %s", body)
	}
	if got := e.Metrics().StaticAnswered; got < 1 {
		t.Errorf("static_tier_answers = %d, want >= 1", got)
	}
}
