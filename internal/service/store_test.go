package service

import (
	"encoding/json"
	"testing"
	"time"

	"buffy/internal/store"
)

// openTestStore opens a store over dir under the given fingerprint with
// a tight default budget; fp "" means the real pipeline fingerprint.
func openTestStore(t *testing.T, dir, fp string) *store.Store {
	t.Helper()
	if fp == "" {
		fp = PipelineFingerprint()
	}
	s, err := store.Open(store.Options{Dir: dir, Fingerprint: fp, MaxBytes: 64 << 20})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

// TestStoreWarmRestart is the tentpole scenario: solve, shut the engine
// down ("crash" the process politely enough to flush the write-behind),
// start a fresh engine over the same store directory and observe the
// same query served from the disk tier without a worker — then from
// memory, because the disk hit was promoted.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := New(Config{Workers: 2, Store: openTestStore(t, dir, "")})
	j, err := e1.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	cold := waitDone(t, j, 2*time.Minute)
	if cold.Status != "witness" {
		t.Fatalf("cold solve status = %s", cold.Status)
	}
	shutdown(t, e1) // flushes the write-behind queue and closes the store

	e2 := New(Config{Workers: 2, Store: openTestStore(t, dir, "")})
	defer shutdown(t, e2)
	j2, err := e2.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	warm := waitDone(t, j2, 10*time.Second)
	if !warm.CacheHit || warm.CacheTier != CacheTierDisk {
		t.Fatalf("restart replay: cache_hit=%v tier=%q, want a disk hit", warm.CacheHit, warm.CacheTier)
	}
	if warm.Status != cold.Status {
		t.Fatalf("disk tier changed the answer: %s vs %s", warm.Status, cold.Status)
	}
	if cold.Trace == nil || warm.Trace == nil || len(warm.Trace.Packets) != len(cold.Trace.Packets) {
		t.Fatal("disk tier lost the witness trace")
	}
	st := e2.Metrics().Store
	if st == nil || st.Hits != 1 {
		t.Fatalf("store snapshot = %+v, want 1 disk hit", st)
	}

	// Third submit: the disk hit was promoted into the memory LRU.
	j3, err := e2.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	mem := waitDone(t, j3, 10*time.Second)
	if !mem.CacheHit || mem.CacheTier != CacheTierMemory {
		t.Fatalf("post-promotion replay: cache_hit=%v tier=%q, want a memory hit", mem.CacheHit, mem.CacheTier)
	}
}

// TestStoreFingerprintInvalidation is the satellite: entries written
// under one pipeline fingerprint must be misses — quarantined, never
// served — once the fingerprint changes, and re-solved results must be
// served by the new generation.
func TestStoreFingerprintInvalidation(t *testing.T) {
	dir := t.TempDir()
	e1 := New(Config{Workers: 2, Store: openTestStore(t, dir, "encoder-v1")})
	j, err := e1.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 2*time.Minute)
	shutdown(t, e1)

	// Same directory, bumped fingerprint — as if smtbe.EncodingFingerprint
	// changed between deployments.
	e2 := New(Config{Workers: 2, Store: openTestStore(t, dir, "encoder-v2")})
	defer shutdown(t, e2)
	j2, err := e2.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j2, 2*time.Minute)
	if res.CacheHit {
		t.Fatal("stale entry from the old fingerprint served as a hit")
	}
	st := e2.Metrics().Store
	if st == nil || st.Invalidations != 1 || st.Quarantined == 0 {
		t.Fatalf("store snapshot = %+v, want 1 invalidation with quarantined entries", st)
	}
	// The re-solved result was written back under the new fingerprint.
	waitStoreWrites(t, e2, 1)
}

// TestStoreOnlyConclusiveWritten asserts the durable tier never stores
// an Unknown: a budget-starved solve completes inconclusively and
// nothing lands on disk.
func TestStoreOnlyConclusiveWritten(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{Workers: 1, Store: openTestStore(t, dir, "")})
	defer shutdown(t, e)

	req := fqWitnessReq(6)
	req.MaxConflicts = 1 // starve the solver: Unknown, not an answer
	j, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j, time.Minute)
	if res.Status != "unknown" {
		t.Skipf("expected an unknown under a 1-conflict budget, got %s", res.Status)
	}
	// Give the write-behind queue a moment; nothing may arrive.
	time.Sleep(200 * time.Millisecond)
	if st := e.Metrics().Store; st == nil || st.Writes != 0 || st.Entries != 0 {
		t.Fatalf("store snapshot = %+v, want no writes for an inconclusive result", st)
	}
}

// TestStoreSweepReplayFromDisk covers the streaming path: a sweep's
// per-horizon verdicts ride inside the stored Result, so a restart
// replays the full verdict list from the disk tier.
func TestStoreSweepReplayFromDisk(t *testing.T) {
	dir := t.TempDir()
	e1 := New(Config{Workers: 2, Store: openTestStore(t, dir, "")})
	j, err := e1.Submit(sweepReq("witness", 6))
	if err != nil {
		t.Fatal(err)
	}
	cold := waitDone(t, j, 2*time.Minute)
	if len(cold.Verdicts) == 0 {
		t.Fatalf("cold sweep produced no verdicts (status %s)", cold.Status)
	}
	shutdown(t, e1)

	e2 := New(Config{Workers: 2, Store: openTestStore(t, dir, "")})
	defer shutdown(t, e2)
	j2, err := e2.Submit(sweepReq("witness", 6))
	if err != nil {
		t.Fatal(err)
	}
	warm := waitDone(t, j2, 10*time.Second)
	if !warm.CacheHit || warm.CacheTier != CacheTierDisk {
		t.Fatalf("sweep replay: cache_hit=%v tier=%q, want a disk hit", warm.CacheHit, warm.CacheTier)
	}
	if len(warm.Verdicts) != len(cold.Verdicts) {
		t.Fatalf("disk tier lost sweep verdicts: %d vs %d", len(warm.Verdicts), len(cold.Verdicts))
	}
	for i := range warm.Verdicts {
		if warm.Verdicts[i] != cold.Verdicts[i] {
			t.Fatalf("verdict %d differs across the disk tier: %+v vs %+v", i, warm.Verdicts[i], cold.Verdicts[i])
		}
	}
}

// TestStoreResultJSONRoundtrip pins the stored wire shape: a Result
// survives the exact encode/decode the store tier uses, including the
// trace payload (bump resultSchemaVersion if this ever needs loosening).
func TestStoreResultJSONRoundtrip(t *testing.T) {
	e := New(Config{Workers: 2})
	defer shutdown(t, e)
	j, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j, 2*time.Minute)

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Status != res.Status || back.Kind != res.Kind {
		t.Fatalf("roundtrip changed the verdict: %+v vs %+v", back, res)
	}
	if !back.conclusive() {
		t.Fatal("roundtripped result no longer conclusive")
	}
	if res.Trace != nil && (back.Trace == nil || len(back.Trace.Packets) != len(res.Trace.Packets)) {
		t.Fatal("roundtrip lost the trace")
	}
}

// waitStoreWrites polls the engine's store snapshot until at least n
// writes have landed (the write-behind is asynchronous).
func waitStoreWrites(t *testing.T, e *Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := e.Metrics().Store; st != nil && st.Writes >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := e.Metrics().Store
	t.Fatalf("store writes did not reach %d (snapshot %+v)", n, st)
}
