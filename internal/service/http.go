package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// StatusClientClosedRequest mirrors nginx's non-standard 499: the client
// abandoned a synchronous analysis and its solve was cancelled.
const StatusClientClosedRequest = 499

// maxRequestBody bounds request JSON (programs are small; 4 MiB is ample).
const maxRequestBody = 4 << 20

// NewHandler returns the buffy-serve HTTP API:
//
//	POST /v1/verify             run a BMC verify            (body: Request JSON)
//	POST /v1/witness            find a query witness trace
//	POST /v1/synthesize         synthesize a workload
//	POST /v1/bound              network-calculus delay/backlog bounds
//	POST /v1/vet                static analysis only: diagnostics + static verdict
//	GET  /v1/jobs/{id}          poll a job
//	GET  /v1/jobs/{id}/trace    the job's span tree (live or finished)
//	GET  /v1/jobs/{id}/progress live solver-effort counters while it runs
//	GET  /v1/jobs/{id}/explain  solver search introspection (SearchReport)
//	GET  /v1/traces             recent finished traces, newest first
//	GET  /v1/version            build version, Go version, uptime
//	GET  /healthz               readiness (alias of /healthz/ready)
//	GET  /healthz/live          liveness: 200 while the process serves requests
//	GET  /healthz/ready         readiness: 503 once draining or shut down
//	GET  /metrics               Prometheus text (?format=json for a JSON snapshot)
//
// POST /v1/sweep runs a minimal-horizon sweep on a warm pooled solver
// session and streams NDJSON: one {"verdict": ...} line per horizon as it
// is solved, then a final {"done": <job view>} line with the full result.
// With ?async=1 it behaves like the other analysis posts (202 + job ID;
// the verdicts arrive with the polled result instead of streaming).
//
// Analysis posts are synchronous by default: the handler waits for the
// job and the response carries the result. Abandoning the request
// (client disconnect) cancels the in-flight solve. With ?async=1 the
// handler returns 202 and a job ID to poll instead.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", submitHandler(e, KindVerify))
	mux.HandleFunc("POST /v1/witness", submitHandler(e, KindWitness))
	mux.HandleFunc("POST /v1/synthesize", submitHandler(e, KindSynthesize))
	mux.HandleFunc("POST /v1/bound", submitHandler(e, KindBound))
	mux.HandleFunc("POST /v1/sweep", sweepHandler(e))
	mux.HandleFunc("POST /v1/vet", vetHandler(e))
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, viewOf(job))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// Live jobs carry their trace; pruned jobs may still be in the
		// retained-trace ring.
		if job, ok := e.Job(id); ok {
			if job.Trace() == nil {
				writeError(w, http.StatusNotFound, fmt.Errorf("job %q has no trace (cache hit or tracing disabled)", id))
				return
			}
			writeJSON(w, http.StatusOK, job.Trace().Snapshot())
			return
		}
		if tr, ok := e.traces.get(id); ok {
			writeJSON(w, http.StatusOK, tr.Snapshot())
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/explain", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := e.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
			return
		}
		// Live (or just-finished) jobs build the report from their
		// recorder; cache-hit jobs have no recorder but carry the original
		// solve's report inside the cached result.
		if rec := job.SearchRecorder(); rec != nil {
			rep := rec.Report()
			if res, _ := job.Result(); res != nil {
				// Terminal job: prefer the result's attached report — it
				// carries the winner annotation (and is byte-identical to
				// what the cache tiers serve).
				if res.Search != nil {
					rep = res.Search
				}
			}
			if rep.Totals.Solves == 0 {
				writeError(w, http.StatusNotFound, fmt.Errorf("job %q ran no solver (static tier, netcalc, or not started)", id))
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{
				"id":     job.ID,
				"state":  job.State(),
				"search": rep,
			})
			return
		}
		if res, _ := job.Result(); res != nil && res.Search != nil {
			writeJSON(w, http.StatusOK, map[string]any{
				"id":     job.ID,
				"state":  job.State(),
				"search": res.Search,
			})
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q has no search report (cache hit without one, static tier, or tracing disabled)", id))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/progress", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := e.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
			return
		}
		if job.Progress() == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("job %q has no progress (cache hit or tracing disabled)", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":       job.ID,
			"state":    job.State(),
			"progress": job.Progress().Snapshot(),
		})
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"traces": e.traces.summaries()})
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, VersionInfo{
			Version:       Version,
			GoVersion:     goVersion(),
			UptimeSeconds: time.Since(e.met.start).Seconds(),
		})
	})
	// Liveness vs readiness: liveness answers "is the process able to
	// serve HTTP at all" (restart me if not); readiness answers "should a
	// balancer route new work here" and fails as soon as a drain begins,
	// while in-flight jobs are still finishing. /healthz keeps its
	// pre-split readiness semantics for existing probes.
	ready := func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		state := "ok"
		if !e.Ready() {
			status = http.StatusServiceUnavailable
			state = "draining"
			w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter()))
		}
		writeJSON(w, status, map[string]any{"status": state, "queue_depth": len(e.queue)})
	}
	mux.HandleFunc("GET /healthz", ready)
	mux.HandleFunc("GET /healthz/ready", ready)
	mux.HandleFunc("GET /healthz/live", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "alive"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := e.Metrics()
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, http.StatusOK, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	})
	return mux
}

func submitHandler(e *Engine, kind Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		req.Kind = kind // the path is authoritative

		job, err := e.Submit(&req)
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDeadlineUnmeetable), errors.Is(err, ErrClosed):
			// Shed load with a data-driven hint: queue backlog divided
			// across the pool, priced at recent solve latency.
			w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter()))
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}

		if async := r.URL.Query().Get("async"); async == "1" || async == "true" {
			w.Header().Set("Location", "/v1/jobs/"+job.ID)
			writeJSON(w, http.StatusAccepted, viewOf(job))
			return
		}

		// Synchronous: wait for the job; an abandoned request aborts the
		// solve instead of burning a worker.
		select {
		case <-job.Done():
		case <-r.Context().Done():
			job.Cancel()
			writeError(w, StatusClientClosedRequest, fmt.Errorf("request abandoned: %w", r.Context().Err()))
			return
		}
		status := statusOf(e, job)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter()))
		}
		writeJSON(w, status, viewOf(job))
	}
}

// sweepLine is one NDJSON line of a streamed sweep response: exactly one
// of Verdict (a horizon landed) or Done (the job is terminal) is set.
type sweepLine struct {
	Verdict *SweepVerdict `json:"verdict,omitempty"`
	Done    *JobView      `json:"done,omitempty"`
}

// sweepHandler serves POST /v1/sweep: submit a sweep job and stream its
// per-horizon verdicts as NDJSON while the worker deepens, finishing with
// the terminal job view. Cache hits replay their verdicts from the cached
// result so the wire shape is identical either way.
func sweepHandler(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		req.Kind = KindSweep

		job, err := e.Submit(&req)
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDeadlineUnmeetable), errors.Is(err, ErrClosed):
			w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter()))
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}

		if async := r.URL.Query().Get("async"); async == "1" || async == "true" {
			w.Header().Set("Location", "/v1/jobs/"+job.ID)
			writeJSON(w, http.StatusAccepted, viewOf(job))
			return
		}

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		writeLine := func(line sweepLine) {
			enc.Encode(line)
			if flusher != nil {
				flusher.Flush()
			}
		}

		// Cache hits carry no stream; replay the cached verdicts so clients
		// see the same line protocol.
		ch := job.Verdicts()
	stream:
		for ch != nil {
			select {
			case v, ok := <-ch:
				if !ok {
					break stream
				}
				writeLine(sweepLine{Verdict: &v})
			case <-job.Done():
				// Canceled while queued (the worker never ran, so the
				// channel never closes): drain whatever is buffered.
				for {
					select {
					case v, ok := <-ch:
						if ok {
							writeLine(sweepLine{Verdict: &v})
							continue
						}
					default:
					}
					break stream
				}
			case <-r.Context().Done():
				job.Cancel()
				return
			}
		}
		select {
		case <-job.Done():
		case <-r.Context().Done():
			job.Cancel()
			return
		}
		if res, _ := job.Result(); res != nil && res.CacheHit {
			for i := range res.Verdicts {
				writeLine(sweepLine{Verdict: &res.Verdicts[i]})
			}
		}
		view := viewOf(job)
		writeLine(sweepLine{Done: &view})
	}
}

// statusOf maps a terminal job to its HTTP status via the failure
// taxonomy: deadline expiry is the gateway's timeout (504), an exhausted
// transient failure (panic, portfolio disagreement) is the service's
// fault (500), and everything else failing is the client's input (422).
func statusOf(e *Engine, job *Job) int {
	switch job.State() {
	case StateDone:
		return http.StatusOK
	case StateCanceled:
		// A job can also be canceled by Shutdown's forced drain; the client
		// did nothing wrong then and gets 503, not 499.
		if e.Closed() {
			return http.StatusServiceUnavailable
		}
		return StatusClientClosedRequest
	default: // StateFailed
		_, err := job.Result()
		switch class, _ := classify(nil, err); class {
		case failDeadline:
			return http.StatusGatewayTimeout
		case failTransient:
			return http.StatusInternalServerError
		}
		return http.StatusUnprocessableEntity
	}
}

// JobView is the wire representation of a job.
type JobView struct {
	ID          string     `json:"id"`
	Kind        Kind       `json:"kind"`
	State       State      `json:"state"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Error       string     `json:"error,omitempty"`
	Result      *Result    `json:"result,omitempty"`
}

func viewOf(job *Job) JobView {
	res, err := job.Result()
	submitted, started, finished := job.Times()
	v := JobView{
		ID:          job.ID,
		Kind:        job.Req.Kind,
		State:       job.State(),
		SubmittedAt: submitted,
		Result:      res,
	}
	if !started.IsZero() {
		v.StartedAt = &started
	}
	if !finished.IsZero() {
		v.FinishedAt = &finished
	}
	if err != nil {
		v.Error = err.Error()
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusWriter captures the response status for the logging middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// WithRequestLogging wraps a handler with structured per-request logs
// (method, path, status, duration) on log. Health and metrics probes are
// skipped — they fire every few seconds and would drown the job logs.
func WithRequestLogging(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/healthz") || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Info("http request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "elapsed_ms", time.Since(start).Milliseconds())
	})
}
