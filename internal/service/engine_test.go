package service

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"buffy/internal/qm"
)

// fqWitnessReq is the §6.1 case study (CS1): find the FQ-CoDel starvation
// witness in the buggy fair-queuing scheduler.
func fqWitnessReq(T int) *Request {
	return &Request{
		Kind:   KindWitness,
		Source: qm.FQBuggyQuerySrc,
		T:      T,
		Params: map[string]int64{"N": 3},
	}
}

func waitDone(t *testing.T, job *Job, within time.Duration) *Result {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(within):
		t.Fatalf("job %s not done within %v (state %s)", job.ID, within, job.State())
	}
	res, err := job.Result()
	if err != nil {
		t.Fatalf("job %s: %v", job.ID, err)
	}
	return res
}

func shutdown(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestCacheRoundTrip is the acceptance scenario: the same CS1 witness
// query twice — second answer identical and served from cache.
func TestCacheRoundTrip(t *testing.T) {
	e := New(Config{Workers: 2})
	defer shutdown(t, e)

	j1, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	r1 := waitDone(t, j1, 2*time.Minute)
	if r1.Status != "witness" || r1.Trace == nil {
		t.Fatalf("first run: status=%s trace=%v", r1.Status, r1.Trace)
	}
	if r1.CacheHit {
		t.Error("first run must not be a cache hit")
	}

	j2, err := e.Submit(fqWitnessReq(6))
	if err != nil {
		t.Fatal(err)
	}
	r2 := waitDone(t, j2, 5*time.Second)
	if !r2.CacheHit {
		t.Error("second run should be served from cache")
	}
	t1, _ := json.Marshal(r1.Trace)
	t2, _ := json.Marshal(r2.Trace)
	if string(t1) != string(t2) {
		t.Errorf("cached trace differs:\n%s\nvs\n%s", t1, t2)
	}

	m := e.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.SolveCount != 1 {
		t.Errorf("solve count = %d, want 1 (cache hit must not re-solve)", m.SolveCount)
	}
	if m.SatConflicts == 0 || m.SatPropagations == 0 {
		t.Errorf("cumulative sat stats not recorded: %+v", m)
	}
	if m.CacheHitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", m.CacheHitRate)
	}
}

// TestCancelAbortsRunningSolve is the acceptance cancellation scenario:
// cancelling a job's context aborts its CDCL search promptly and leaks no
// goroutines.
func TestCancelAbortsRunningSolve(t *testing.T) {
	before := runtime.NumGoroutine()

	e := New(Config{Workers: 1})
	// T=10 takes seconds of search, so a cancel shortly after start lands
	// mid-solve.
	job, err := e.Submit(fqWitnessReq(10))
	if err != nil {
		t.Fatal(err)
	}
	for job.State() != StateRunning {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let the search get going

	cancelAt := time.Now()
	job.Cancel()
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("solver did not unwind after cancel")
	}
	unwound := time.Since(cancelAt)
	// The CDCL loop polls the cancel channel every 64 search steps; even
	// under -race this is far below the full multi-second solve.
	if unwound > 3*time.Second {
		t.Errorf("solver took %v to unwind after cancel", unwound)
	}
	if st := job.State(); st != StateCanceled {
		t.Errorf("state = %s, want canceled", st)
	}
	if _, err := job.Result(); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if m := e.Metrics(); m.JobsCanceled != 1 {
		t.Errorf("canceled counter = %d, want 1", m.JobsCanceled)
	}

	shutdown(t, e)
	// All workers exited; goroutine count returns to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)

	running, err := e.Submit(fqWitnessReq(10))
	if err != nil {
		t.Fatal(err)
	}
	for running.State() != StateRunning {
		time.Sleep(time.Millisecond)
	}
	queued, err := e.Submit(fqWitnessReq(8))
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateQueued {
		t.Fatalf("state = %s, want queued", st)
	}
	queued.Cancel()
	select {
	case <-queued.Done():
	case <-time.After(time.Second):
		t.Fatal("queued job not finished by cancel")
	}
	if st := queued.State(); st != StateCanceled {
		t.Errorf("state = %s, want canceled", st)
	}
	running.Cancel() // don't make shutdown wait out the full solve
}

func TestQueueFull(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer shutdown(t, e)

	first, err := e.Submit(fqWitnessReq(10))
	if err != nil {
		t.Fatal(err)
	}
	for first.State() != StateRunning {
		time.Sleep(time.Millisecond)
	}
	second, err := e.Submit(fqWitnessReq(8))
	if err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if _, err := e.Submit(fqWitnessReq(9)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	m := e.Metrics()
	if m.JobsRejected != 1 {
		t.Errorf("rejected counter = %d, want 1", m.JobsRejected)
	}
	// A shed submission must not count as submitted, or submitted would
	// never reconcile with completed+failed+canceled.
	if got := m.JobsSubmitted[string(KindWitness)]; got != 2 {
		t.Errorf("submitted counter = %d, want 2 (rejection must not count)", got)
	}
	first.Cancel()
	second.Cancel()
	if j, ok := e.Job(first.ID); !ok || j != first {
		t.Error("job lookup failed")
	}
}

func TestValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	cases := []*Request{
		{Kind: "frobnicate", Source: "x"},
		{Kind: KindVerify, Source: ""},
		{Kind: KindVerify, Source: "x", T: MaxHorizon + 1},
		{Kind: KindVerify, Source: "x", TimeoutMS: -1},
		// Widths outside [2, 62] would panic in bitblast.New; the
		// validator must stop them at the door.
		{Kind: KindVerify, Source: "x", Width: 1},
		{Kind: KindVerify, Source: "x", Width: -4},
		{Kind: KindVerify, Source: "x", Width: 63},
		{Kind: KindVerify, Source: "x", MaxConflicts: -1},
		{Kind: KindVerify, Source: "x", BufferCap: -1},
		{Kind: KindVerify, Source: "x", ListCap: -1},
	}
	for i, req := range cases {
		if _, err := e.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

func TestParseErrorFailsJob(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	job, err := e.Submit(&Request{Kind: KindVerify, Source: "not a program", T: 2})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish")
	}
	if st := job.State(); st != StateFailed {
		t.Errorf("state = %s, want failed", st)
	}
	if _, err := job.Result(); err == nil {
		t.Error("expected a parse error")
	}
	if m := e.Metrics(); m.JobsFailed != 1 {
		t.Errorf("failed counter = %d, want 1", m.JobsFailed)
	}
}

func TestDeadlineAbortsSolve(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	req := fqWitnessReq(10)
	req.TimeoutMS = 100
	job, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	select {
	case <-job.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("deadline did not abort the solve")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline abort took %v", elapsed)
	}
	if st := job.State(); st != StateFailed {
		t.Errorf("state = %s, want failed", st)
	}
	if _, err := job.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestInconclusiveNotCached pins that Unknown results (budget exhausted)
// never enter the cache: a retry with a bigger budget must re-solve.
func TestInconclusiveNotCached(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	req := fqWitnessReq(6)
	req.MaxConflicts = 1
	j1, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	r1 := waitDone(t, j1, time.Minute)
	if r1.Status != "unknown" {
		t.Fatalf("status = %s, want unknown", r1.Status)
	}
	j2, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	r2 := waitDone(t, j2, time.Minute)
	if r2.CacheHit {
		t.Error("unknown result must not be served from cache")
	}
	if m := e.Metrics(); m.CacheHits != 0 {
		t.Errorf("cache hits = %d, want 0", m.CacheHits)
	}
}

// TestPanicFailsJobNotService pins the worker-pool panic shield: a panic
// escaping the analysis stack fails that one job instead of crashing the
// process. The request bypasses Submit's validation to simulate a panic
// source Validate does not know about (here: an unsupported bit width).
func TestPanicFailsJobNotService(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	req := fqWitnessReq(2)
	req.Width = 1 // bitblast.New panics on this
	e.mu.Lock()
	job := e.newJobLocked(req)
	e.mu.Unlock()
	e.runJob(job) // must not propagate the panic
	if st := job.State(); st != StateFailed {
		t.Errorf("state = %s, want failed", st)
	}
	if _, err := job.Result(); err == nil {
		t.Error("expected a panic-derived error")
	}
	if m := e.Metrics(); m.JobsFailed != 1 {
		t.Errorf("failed counter = %d, want 1", m.JobsFailed)
	}
}

// TestSynthInconclusiveNotCached pins that a budget-exhausted synthesis
// reports Unknown — not a definite (and cacheable) "no-workload".
func TestSynthInconclusiveNotCached(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	req := fqWitnessReq(6)
	req.Kind = KindSynthesize
	req.MaxConflicts = 1
	j1, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	r1 := waitDone(t, j1, time.Minute)
	if r1.Status != "unknown" {
		t.Fatalf("status = %s, want unknown", r1.Status)
	}
	if r1.WorkloadFound {
		t.Error("inconclusive synthesis must not claim a workload")
	}
	j2, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := waitDone(t, j2, time.Minute); r2.CacheHit {
		t.Error("inconclusive synthesis must not be served from cache")
	}
}

func TestSynthesizeThroughEngine(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	job, err := e.Submit(&Request{
		Kind: KindSynthesize,
		T:    2,
		Source: `p(buffer a, buffer b) {
			move-p(a, b, 1);
			if (t == T - 1) { assert(backlog-p(b) == T); }
		}`,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, job, time.Minute)
	if !res.WorkloadFound || res.Workload == "" {
		t.Errorf("synthesis failed: %+v", res)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	e := New(Config{Workers: 2})
	job, err := e.Submit(fqWitnessReq(4))
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, e)
	// The queued/running job completed during drain.
	select {
	case <-job.Done():
	default:
		t.Error("drain returned with job unfinished")
	}
	if _, err := e.Submit(fqWitnessReq(4)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	base := fqWitnessReq(6)
	same := fqWitnessReq(6)
	if base.CacheKey() != same.CacheKey() {
		t.Error("identical requests must share a key")
	}
	vary := []*Request{
		fqWitnessReq(7),
		{Kind: KindVerify, Source: base.Source, T: 6, Params: base.Params},
		{Kind: KindWitness, Source: base.Source + " ", T: 6, Params: base.Params},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: map[string]int64{"N": 4}},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, Model: "count"},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, Width: 14},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, MaxConflicts: 10},
		// Search heuristics and portfolio size change which result object
		// (trace, effort counters, winner) comes back, so they must never
		// alias to one cached result (satellite: cache-key correctness).
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, Portfolio: 4},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, RestartBase: 50},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, GeomRestarts: true},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, VarDecay: 0.9},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, InitPhase: true},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, RandSeed: 7},
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, RandSeed: 7, RandFreq: 0.05},
		// A cross-checked bound carries the differential report in its
		// result, so it must not alias with the plain bound's cache entry.
		{Kind: KindWitness, Source: base.Source, T: 6, Params: base.Params, CrossCheck: true},
	}
	for i, req := range vary {
		if req.CacheKey() == base.CacheKey() {
			t.Errorf("case %d: differing request shares the cache key", i)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", &Result{Status: "a"})
	c.put("b", &Result{Status: "b"})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", &Result{Status: "c"}) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}
