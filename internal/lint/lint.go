// Package lint is a project-specific static checker for the solver's
// hot paths, built directly on go/ast (no external analysis framework).
// It enforces two invariants that ordinary vet/staticcheck cannot see:
//
//	timecall: wall-clock reads (time.Now / time.Since) in the CDCL core
//	  are syscalls on some platforms and must never land on the
//	  per-propagation path. They are allowed only in an explicit set of
//	  budget-accounting functions, and inside any loop there they must
//	  sit under an amortizing cadence guard (a "counter&mask == 0" test).
//
//	cancelpoll: any unconditional for-loop in a function that carries a
//	  resource budget (a Limits parameter) is a solve loop and can spin
//	  for minutes; it must poll cancellation (Limits.Cancel /
//	  .cancelled() / .budgetStop(...)) somewhere in its body, or a
//	  client disconnect cannot stop the search.
//
// The checker is intentionally conservative in scope: it lints the
// package directories it is pointed at (CI points it at internal/smt/...)
// and reports violations with file:line:col positions.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Issue is one finding.
type Issue struct {
	Pos  token.Position
	Rule string // "timecall" or "cancelpoll"
	Msg  string
}

func (i Issue) String() string {
	return fmt.Sprintf("%s: %s: %s", i.Pos, i.Rule, i.Msg)
}

// timeCallAllowed lists the functions (by bare name) that may read the
// wall clock in linted packages: the budgeted solve entry point, its
// budget-fraction accounting helper, and the search-recorder functions
// — the recorder only runs on the amortized Progress publish cadence
// (every 64 conflicts/decisions) or at solve boundaries, never on the
// per-propagation path.
var timeCallAllowed = map[string]bool{
	"SolveLimited":      true,
	"budgetFraction":    true,
	"NewSearchRecorder": true,
	"observe":           true,
	"event":             true,
	"Report":            true,
}

// Dir lints every non-test .go file in dir (non-recursive) and returns
// the findings sorted by position.
func Dir(dir string) ([]Issue, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var issues []Issue
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		issues = append(issues, File(fset, f)...)
	}
	sort.Slice(issues, func(i, j int) bool {
		a, b := issues[i].Pos, issues[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return issues, nil
}

// File lints one parsed file.
func File(fset *token.FileSet, f *ast.File) []Issue {
	var issues []Issue
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		issues = append(issues, checkTimeCalls(fset, f.Name.Name, fn)...)
		issues = append(issues, checkCancelPolling(fset, fn)...)
	}
	return issues
}

// ----- rule: timecall -----

// checkTimeCalls applies the allowlist strictly in package sat (the
// CDCL core, where every function is on or near the per-propagation
// path); elsewhere one-shot setup reads are fine and only in-loop calls
// without a cadence guard are flagged.
func checkTimeCalls(fset *token.FileSet, pkg string, fn *ast.FuncDecl) []Issue {
	var issues []Issue
	walkWithStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTimeCall(call) {
			return
		}
		sel := call.Fun.(*ast.SelectorExpr).Sel.Name
		switch {
		case pkg == "sat" && !timeCallAllowed[fn.Name.Name]:
			issues = append(issues, Issue{
				Pos:  fset.Position(call.Pos()),
				Rule: "timecall",
				Msg: fmt.Sprintf("time.%s in %s: wall-clock reads are restricted to the budget-accounting functions (%s)",
					sel, fn.Name.Name, allowedNames()),
			})
		case insideLoop(stack) && !cadenceGuarded(stack):
			issues = append(issues, Issue{
				Pos:  fset.Position(call.Pos()),
				Rule: "timecall",
				Msg: fmt.Sprintf("time.%s inside a loop in %s without a cadence guard (counter&mask == 0): this lands on the per-iteration hot path",
					sel, fn.Name.Name),
			})
		}
	})
	return issues
}

func isTimeCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "time" && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since")
}

func allowedNames() string {
	names := make([]string, 0, len(timeCallAllowed))
	for n := range timeCallAllowed {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func insideLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// cadenceGuarded reports whether some enclosing if-statement's condition
// contains an "expr&mask == 0" (or "== 0" with the &-expression on either
// side) amortization test. The deadline checks in SolveLimited look like
//
//	if ... && s.stats.Conflicts&1023 == 0 && time.Now().After(...) { ... }
//
// where the time call itself sits inside the guarded condition; calls in
// the if body are equally fine.
func cadenceGuarded(stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(e ast.Node) bool {
			if isCadenceTest(e) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isCadenceTest(n ast.Node) bool {
	cmp, ok := n.(*ast.BinaryExpr)
	if !ok || cmp.Op != token.EQL {
		return false
	}
	isAnd := func(e ast.Expr) bool {
		b, ok := e.(*ast.BinaryExpr)
		return ok && b.Op == token.AND
	}
	isZero := func(e ast.Expr) bool {
		lit, ok := e.(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return (isAnd(cmp.X) && isZero(cmp.Y)) || (isAnd(cmp.Y) && isZero(cmp.X))
}

// ----- rule: cancelpoll -----

func checkCancelPolling(fset *token.FileSet, fn *ast.FuncDecl) []Issue {
	if !hasLimitsParam(fn) {
		return nil
	}
	var issues []Issue
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !pollsCancellation(loop.Body) {
			issues = append(issues, Issue{
				Pos:  fset.Position(loop.Pos()),
				Rule: "cancelpoll",
				Msg: fmt.Sprintf("unconditional for-loop in budgeted function %s never polls cancellation (Limits.Cancel / cancelled() / budgetStop)",
					fn.Name.Name),
			})
		}
		return true
	})
	return issues
}

func hasLimitsParam(fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		switch tt := t.(type) {
		case *ast.Ident:
			if tt.Name == "Limits" {
				return true
			}
		case *ast.SelectorExpr:
			if tt.Sel.Name == "Limits" {
				return true
			}
		}
	}
	return false
}

func pollsCancellation(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Cancel", "cancelled", "budgetStop":
			found = true
			return false
		}
		return true
	})
	return found
}

// walkWithStack visits every node with the ancestor chain (outermost
// first, excluding the node itself).
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
