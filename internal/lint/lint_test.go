package lint

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func lintSource(t *testing.T, src string) []Issue {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return File(fset, f)
}

func TestTimeCallOutsideAllowlist(t *testing.T) {
	issues := lintSource(t, `package sat
import "time"
func (s *Solver) propagate() {
	start := time.Now()
	_ = start
}
`)
	if len(issues) != 1 || issues[0].Rule != "timecall" {
		t.Fatalf("issues = %v, want one timecall finding", issues)
	}
	if issues[0].Pos.Line != 4 {
		t.Errorf("finding at line %d, want 4", issues[0].Pos.Line)
	}
}

func TestTimeCallInLoopNeedsCadenceGuard(t *testing.T) {
	unguarded := `package sat
import "time"
func (s *Solver) SolveLimited(lim Limits) int {
	for {
		if time.Now().After(lim.Deadline) {
			return 0
		}
	}
}
`
	// (The loop also legitimately trips cancelpoll — it never polls
	// Limits.Cancel — so filter to the rule under test.)
	var timecalls []Issue
	for _, iss := range lintSource(t, unguarded) {
		if iss.Rule == "timecall" {
			timecalls = append(timecalls, iss)
		}
	}
	if len(timecalls) != 1 {
		t.Fatalf("timecall issues = %v, want exactly one for the unguarded loop call", timecalls)
	}

	guarded := `package sat
import "time"
func (s *Solver) SolveLimited(lim Limits) int {
	tick := 0
	for {
		tick++
		if tick&1023 == 0 && time.Now().After(lim.Deadline) {
			return 0
		}
	}
}
`
	for _, iss := range lintSource(t, guarded) {
		if iss.Rule == "timecall" {
			t.Errorf("cadence-guarded call flagged: %v", iss)
		}
	}
}

func TestTimeCallOutsideLoopInAllowedFunc(t *testing.T) {
	src := `package sat
import "time"
func (s *Solver) SolveLimited(lim Limits) int {
	start := time.Now()
	_ = start
	return 0
}
`
	if issues := lintSource(t, src); len(issues) != 0 {
		t.Errorf("per-call timestamp flagged: %v", issues)
	}
}

func TestCancelPollMissing(t *testing.T) {
	src := `package sat
func (s *Solver) SolveLimited(lim Limits) int {
	for {
		s.step()
	}
}
`
	issues := lintSource(t, src)
	found := false
	for _, iss := range issues {
		if iss.Rule == "cancelpoll" && iss.Pos.Line == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("issues = %v, want a cancelpoll finding at line 3", issues)
	}
}

func TestCancelPollSatisfied(t *testing.T) {
	src := `package sat
func (s *Solver) SolveLimited(lim Limits) int {
	for {
		if lim.cancelled() {
			return 0
		}
		s.step()
	}
}
`
	for _, iss := range lintSource(t, src) {
		if iss.Rule == "cancelpoll" {
			t.Errorf("polling loop flagged: %v", iss)
		}
	}
}

func TestUnbudgetedLoopsExempt(t *testing.T) {
	// Bounded utility loops (heap sift-down etc.) carry no Limits and are
	// exempt from the cancelpoll rule.
	src := `package sat
func (s *Solver) heapDown(i int) {
	for {
		if i > 10 {
			break
		}
		i++
	}
}
`
	for _, iss := range lintSource(t, src) {
		if iss.Rule == "cancelpoll" {
			t.Errorf("utility loop flagged: %v", iss)
		}
	}
}

// TestSolverHotPathsAreClean pins the real CDCL core: the shipped sat and
// solver packages must lint clean, so CI fails the moment a wall-clock
// read or non-polling solve loop lands on the hot path.
func TestSolverHotPathsAreClean(t *testing.T) {
	for _, dir := range []string{
		filepath.Join("..", "smt", "sat"),
		filepath.Join("..", "smt", "solver"),
	} {
		issues, err := Dir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		var msgs []string
		for _, iss := range issues {
			msgs = append(msgs, iss.String())
		}
		if len(issues) != 0 {
			t.Errorf("%s is not lint-clean:\n%s", dir, strings.Join(msgs, "\n"))
		}
	}
}
