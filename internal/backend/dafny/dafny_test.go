package dafny

import (
	"strings"
	"testing"

	"buffy/internal/ir"
	"buffy/internal/qm"
)

func TestGenerateSimple(t *testing.T) {
	info, err := qm.Load(`p(buffer a, buffer b) {
		global int g;
		monitor int m;
		g = g + 1;
		move-p(a, b, 1);
		m = m + backlog-p(b);
		assert(backlog-p(a) >= 0);
	}`)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(info, GenOptions{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"method p_T2(",
		"in_a_t0_k0_valid: bool",
		"in_a_t1_k0_flow: int",
		"requires 0 <= in_a_t0_k0_flow < 2",
		"var buf_a: seq<int> := [];",
		"var var_g: int := 0;",
		"var var_m: int := 0;",
		"// ---- time step 0 ----",
		"// ---- time step 1 ----",
		"var_g := (var_g + 1);",
		"buf_b := buf_b + take(buf_a,",
		"assert (|buf_a| >= 0);",
		"function take(s: seq<int>, n: int): seq<int>",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated Dafny missing %q\n%s", want, src)
		}
	}
}

func TestGenerateFQ(t *testing.T) {
	info, err := qm.Load(qm.FQBuggySrc)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(info, GenOptions{T: 3, Params: map[string]int64{"N": 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"method fq_T3(",
		"var buf_ibs_0: seq<int> := [];",
		"var buf_ibs_2: seq<int> := [];",
		"var list_nq: seq<int> := [];",
		"// unrolled i = 2",
		"var_head := if |list_nq| > 0 then list_nq[0] else 0;",
		"list_oq := list_oq + [var_head];",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated Dafny missing %q", want)
		}
	}
	// Runtime buffer index produces a case split per instance.
	if got := strings.Count(src, "if (var_head) == 0 {"); got == 0 {
		t.Error("expected case split on runtime index var_head")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	info, _ := qm.Load(qm.RRSrc)
	a, err := Generate(info, GenOptions{T: 2, Params: map[string]int64{"N": 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(info, GenOptions{T: 2, Params: map[string]int64{"N": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestGenerateHavoc(t *testing.T) {
	info, _ := qm.Load(`p(buffer a, buffer b) {
		local int x;
		havoc x;
		assume(x >= 0);
		move-p(a, b, x);
	}`)
	src, err := Generate(info, GenOptions{T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "var_x := *;") {
		t.Error("havoc should lower to Dafny nondeterministic assignment")
	}
	if !strings.Contains(src, "assume (var_x >= 0);") {
		t.Error("assume should lower to Dafny assume")
	}
}

func TestGenerateRejectsMoveB(t *testing.T) {
	info, _ := qm.Load(`p(buffer a, buffer b) { move-b(a, b, 3); }`)
	if _, err := Generate(info, GenOptions{T: 1}); err == nil {
		t.Error("move-b should be rejected by the Dafny generator")
	}
}

func TestGenerateMissingParam(t *testing.T) {
	info, _ := qm.Load(qm.RRSrc)
	if _, err := Generate(info, GenOptions{T: 1}); err == nil {
		t.Error("missing N should be an error")
	}
}

func TestVerifyHolds(t *testing.T) {
	info, _ := qm.Load(`p(buffer a, buffer b) {
		monitor int served;
		move-p(a, b, 1);
		served = served + 1;
		assert(served == t + 1);
	}`)
	res, err := Verify(info, VerifyOptions{IR: ir.Options{T: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("expected verified; VCs: %+v", res.VCs)
	}
	if len(res.VCs) != 4 {
		t.Errorf("VCs = %d, want 4 (one per step)", len(res.VCs))
	}
}

func TestVerifyFindsFailure(t *testing.T) {
	info, _ := qm.Load(`p(buffer a, buffer b) {
		assert(backlog-p(a) == 0);
		move-p(a, b, backlog-p(a));
	}`)
	res, err := Verify(info, VerifyOptions{IR: ir.Options{T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("expected a failing VC")
	}
	failing := 0
	for _, vc := range res.VCs {
		if !vc.Holds {
			failing++
		}
	}
	if failing == 0 {
		t.Error("no failing VC recorded")
	}
}

// The Figure 6 workload: verify the FQ scheduler under a synthesized-style
// workload assumption, at increasing T. Here we only check it verifies and
// that VC count scales; the bench harness measures the times.
func TestVerifyFQScaling(t *testing.T) {
	info, err := qm.Load(qm.FQBuggyQuerySrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []int{3, 4} {
		res, err := Verify(info, VerifyOptions{IR: ir.Options{
			T: T, Params: map[string]int64{"N": 3},
		}})
		if err != nil {
			t.Fatal(err)
		}
		// The starvation assert does NOT hold for all workloads (that is
		// the bug), so verification must fail — with a concrete failing VC
		// at the final step.
		if res.Verified {
			t.Errorf("T=%d: buggy FQ should not verify", T)
		}
	}
}
