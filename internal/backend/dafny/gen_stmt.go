package dafny

import (
	"fmt"

	"buffy/internal/lang/ast"
)

// Note on fidelity: the generated Dafny model follows the paper's hand
// translation — buffers are unbounded seq<int> holding flow ids. Capacity
// and byte-size modeling live in the solver back-ends; move-b therefore has
// no Dafny translation.

type loopEnv map[string]int64

func (g *gen) emitStmts(stmts []ast.Stmt, le loopEnv) error {
	for _, s := range stmts {
		if err := g.emitStmt(s, le); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) emitStmt(s ast.Stmt, le loopEnv) error {
	switch n := s.(type) {
	case *ast.Assign:
		return g.emitAssign(n, le)
	case *ast.PushBack:
		lname := n.List.(*ast.Ident).Name
		arg, err := g.expr(n.Arg, le)
		if err != nil {
			return err
		}
		g.line("list_%s := list_%s + [%s];", lname, lname, arg)
		return nil
	case *ast.Move:
		return g.emitMove(n, le)
	case *ast.If:
		cond, err := g.expr(n.Cond, le)
		if err != nil {
			return err
		}
		g.line("if %s {", cond)
		g.ind++
		if err := g.emitStmts(n.Then, le); err != nil {
			return err
		}
		g.ind--
		if len(n.Else) > 0 {
			g.line("} else {")
			g.ind++
			if err := g.emitStmts(n.Else, le); err != nil {
				return err
			}
			g.ind--
		}
		g.line("}")
		return nil
	case *ast.For:
		lo, err := g.constEval(n.Lo, le)
		if err != nil {
			return err
		}
		hi, err := g.constEval(n.Hi, le)
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			inner := loopEnv{}
			for k, v := range le {
				inner[k] = v
			}
			inner[n.Var] = i
			g.line("// unrolled %s = %d", n.Var, i)
			if err := g.emitStmts(n.Body, inner); err != nil {
				return err
			}
		}
		return nil
	case *ast.Assert:
		c, err := g.expr(n.Cond, le)
		if err != nil {
			return err
		}
		g.line("assert %s;", c)
		return nil
	case *ast.Assume:
		c, err := g.expr(n.Cond, le)
		if err != nil {
			return err
		}
		g.line("assume %s;", c)
		return nil
	case *ast.Havoc:
		g.line("var_%s := *;", n.Target.Name)
		return nil
	}
	return fmt.Errorf("dafny: unhandled statement %T", s)
}

func (g *gen) emitAssign(n *ast.Assign, le loopEnv) error {
	// pop_front: guarded head read + tail update.
	if pf, ok := n.RHS.(*ast.PopFront); ok {
		lname := pf.List.(*ast.Ident).Name
		lhs, err := g.lvalueScalar(n.LHS, le)
		if err != nil {
			return err
		}
		g.line("%s := if |list_%s| > 0 then list_%s[0] else 0;", lhs, lname, lname)
		g.line("if |list_%s| > 0 { list_%s := list_%s[1..]; }", lname, lname, lname)
		return nil
	}
	rhs, err := g.expr(n.RHS, le)
	if err != nil {
		return err
	}
	switch tgt := n.LHS.(type) {
	case *ast.Ident:
		g.line("var_%s := %s;", tgt.Name, rhs)
		return nil
	case *ast.Index:
		base := tgt.X.(*ast.Ident).Name
		size, err := g.arraySize(base)
		if err != nil {
			return err
		}
		idx, err := g.expr(tgt.Idx, le)
		if err != nil {
			return err
		}
		tmp := g.fresh("idx")
		g.line("var %s: int := %s;", tmp, idx)
		for i := int64(0); i < size; i++ {
			g.line("if %s == %d { var_%s_%d := %s; }", tmp, i, base, i, rhs)
		}
		return nil
	}
	return fmt.Errorf("dafny: bad assignment target")
}

func (g *gen) lvalueScalar(e ast.Expr, le loopEnv) (string, error) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", fmt.Errorf("dafny: pop_front target must be a scalar variable")
	}
	return "var_" + id.Name, nil
}

func (g *gen) arraySize(name string) (int64, error) {
	for _, d := range g.info.Prog.Decls {
		if d.Name == name && d.Type.IsArray() {
			return g.constEval(d.Type.Size, nil)
		}
	}
	return 0, fmt.Errorf("dafny: %q is not an array", name)
}

// bufCase is one candidate instance of a buffer expression.
type bufCase struct {
	cond string // Dafny boolean expression; "" means unconditional
	name string // Dafny seq variable
}

// resolveBuf resolves a buffer expression into candidate cases plus an
// optional filter value expression.
func (g *gen) resolveBuf(e ast.Expr, le loopEnv) ([]bufCase, string, error) {
	switch n := e.(type) {
	case *ast.Ident:
		return []bufCase{{name: "buf_" + n.Name}}, "", nil
	case *ast.Index:
		base := n.X.(*ast.Ident).Name
		bp := g.bufParam(base)
		if bp == nil {
			return nil, "", fmt.Errorf("dafny: %q is not a buffer array", base)
		}
		size, err := g.constEval(bp.Size, nil)
		if err != nil {
			return nil, "", err
		}
		idx, err := g.expr(n.Idx, le)
		if err != nil {
			return nil, "", err
		}
		var cases []bufCase
		for i := int64(0); i < size; i++ {
			cases = append(cases, bufCase{
				cond: fmt.Sprintf("(%s) == %d", idx, i),
				name: fmt.Sprintf("buf_%s_%d", base, i),
			})
		}
		return cases, "", nil
	case *ast.Filter:
		cases, f, err := g.resolveBuf(n.Buf, le)
		if err != nil {
			return nil, "", err
		}
		if f != "" {
			return nil, "", fmt.Errorf("dafny: chained filters are not supported in the Dafny translation")
		}
		v, err := g.expr(n.Value, le)
		if err != nil {
			return nil, "", err
		}
		return cases, v, nil
	}
	return nil, "", fmt.Errorf("dafny: expected buffer expression")
}

func (g *gen) bufParam(name string) *ast.BufferParam {
	for _, bp := range g.info.Prog.Params {
		if bp.Name == name {
			return bp
		}
	}
	return nil
}

func (g *gen) emitMove(n *ast.Move, le loopEnv) error {
	if n.Bytes {
		return fmt.Errorf("dafny: move-b has no Dafny translation (buffers are flow sequences); use the solver back-ends")
	}
	srcCases, filt, err := g.resolveBuf(n.Src, le)
	if err != nil {
		return err
	}
	dstCases, dfilt, err := g.resolveBuf(n.Dst, le)
	if err != nil {
		return err
	}
	if dfilt != "" {
		return fmt.Errorf("dafny: move destination cannot be filtered")
	}
	cnt, err := g.expr(n.Count, le)
	if err != nil {
		return err
	}
	m := g.fresh("mv")
	g.line("var %s: int := %s;", m, cnt)
	g.line("if %s < 0 { %s := 0; }", m, m)
	for _, sc := range srcCases {
		if sc.cond != "" {
			g.line("if %s {", sc.cond)
			g.ind++
		}
		for _, dc := range dstCases {
			if dc.name == sc.name {
				continue // self-move is a no-op
			}
			if dc.cond != "" {
				g.line("if %s {", dc.cond)
				g.ind++
			}
			if filt == "" {
				g.line("%s := %s + take(%s, %s);", dc.name, dc.name, sc.name, m)
				g.line("%s := drop(%s, %s);", sc.name, sc.name, m)
			} else {
				g.line("%s := %s + takeF(%s, %s, %s);", dc.name, dc.name, sc.name, filt, m)
				g.line("%s := dropF(%s, %s, %s);", sc.name, sc.name, filt, m)
			}
			if dc.cond != "" {
				g.ind--
				g.line("}")
			}
		}
		if sc.cond != "" {
			g.ind--
			g.line("}")
		}
	}
	return nil
}

// expr renders an expression as Dafny text.
func (g *gen) expr(e ast.Expr, le loopEnv) (string, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return fmt.Sprintf("%d", n.Value), nil
	case *ast.BoolLit:
		return fmt.Sprintf("%t", n.Value), nil
	case *ast.Ident:
		return g.identExpr(n, le)
	case *ast.Unary:
		x, err := g.expr(n.X, le)
		if err != nil {
			return "", err
		}
		if n.Op == ast.OpNot {
			return "!(" + x + ")", nil
		}
		return "-(" + x + ")", nil
	case *ast.Binary:
		return g.binaryExpr(n, le)
	case *ast.Index:
		return g.indexExpr(n, le)
	case *ast.Backlog:
		cases, filt, err := g.resolveBuf(n.Buf, le)
		if err != nil {
			return "", err
		}
		if n.Bytes {
			return "", fmt.Errorf("dafny: backlog-b has no Dafny translation")
		}
		measure := func(name string) string {
			if filt == "" {
				return "|" + name + "|"
			}
			return fmt.Sprintf("countF(%s, %s)", name, filt)
		}
		if len(cases) == 1 && cases[0].cond == "" {
			return measure(cases[0].name), nil
		}
		out := "0"
		for i := len(cases) - 1; i >= 0; i-- {
			out = fmt.Sprintf("(if %s then %s else %s)", cases[i].cond, measure(cases[i].name), out)
		}
		return out, nil
	case *ast.ListQuery:
		lname := n.List.(*ast.Ident).Name
		switch n.Op {
		case ast.ListEmpty:
			return fmt.Sprintf("|list_%s| == 0", lname), nil
		case ast.ListSize:
			return fmt.Sprintf("|list_%s|", lname), nil
		case ast.ListHas:
			arg, err := g.expr(n.Arg, le)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(%s) in list_%s", arg, lname), nil
		}
	case *ast.PopFront:
		return "", fmt.Errorf("dafny: pop_front outside assignment")
	}
	return "", fmt.Errorf("dafny: unhandled expression %T", e)
}

func (g *gen) identExpr(n *ast.Ident, le loopEnv) (string, error) {
	if le != nil {
		if v, ok := le[n.Name]; ok {
			return fmt.Sprintf("%d", v), nil
		}
	}
	for _, d := range g.info.Prog.Decls {
		if d.Name == n.Name {
			return "var_" + n.Name, nil
		}
	}
	if n.Name == "t" {
		return fmt.Sprintf("%d", g.step), nil
	}
	if v, ok := g.opts.Params[n.Name]; ok {
		return fmt.Sprintf("%d", v), nil
	}
	if n.Name == "T" {
		return fmt.Sprintf("%d", g.opts.T), nil
	}
	return "", fmt.Errorf("dafny: unbound identifier %q", n.Name)
}

var dafnyOps = map[ast.BinOp]string{
	ast.OpAdd: "+", ast.OpSub: "-", ast.OpMul: "*",
	ast.OpEq: "==", ast.OpNeq: "!=", ast.OpLt: "<", ast.OpLe: "<=",
	ast.OpGt: ">", ast.OpGe: ">=", ast.OpAnd: "&&", ast.OpOr: "||",
}

func (g *gen) binaryExpr(n *ast.Binary, le loopEnv) (string, error) {
	if n.Op == ast.OpDiv || n.Op == ast.OpMod {
		v, err := g.constEval(n, le)
		if err != nil {
			return "", fmt.Errorf("dafny: / and %% need constant operands: %w", err)
		}
		return fmt.Sprintf("%d", v), nil
	}
	x, err := g.expr(n.X, le)
	if err != nil {
		return "", err
	}
	y, err := g.expr(n.Y, le)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("(%s %s %s)", x, dafnyOps[n.Op], y), nil
}

func (g *gen) indexExpr(n *ast.Index, le loopEnv) (string, error) {
	base := n.X.(*ast.Ident).Name
	size, err := g.arraySize(base)
	if err != nil {
		return "", err
	}
	idx, err := g.expr(n.Idx, le)
	if err != nil {
		return "", err
	}
	out := "0"
	for i := size - 1; i >= 0; i-- {
		out = fmt.Sprintf("(if (%s) == %d then var_%s_%d else %s)", idx, i, base, i, out)
	}
	return out, nil
}

// constEval evaluates compile-time constants during generation.
func (g *gen) constEval(e ast.Expr, le loopEnv) (int64, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return n.Value, nil
	case *ast.Ident:
		if le != nil {
			if v, ok := le[n.Name]; ok {
				return v, nil
			}
		}
		if v, ok := g.opts.Params[n.Name]; ok {
			return v, nil
		}
		if n.Name == "T" {
			return int64(g.opts.T), nil
		}
		if n.Name == "t" {
			return int64(g.step), nil
		}
		return 0, fmt.Errorf("%q is not constant", n.Name)
	case *ast.Unary:
		v, err := g.constEval(n.X, le)
		if err != nil {
			return 0, err
		}
		if n.Op == ast.OpNegate {
			return -v, nil
		}
		return 0, fmt.Errorf("operator ! not constant")
	case *ast.Binary:
		x, err := g.constEval(n.X, le)
		if err != nil {
			return 0, err
		}
		y, err := g.constEval(n.Y, le)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case ast.OpAdd:
			return x + y, nil
		case ast.OpSub:
			return x - y, nil
		case ast.OpMul:
			return x * y, nil
		case ast.OpDiv:
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x / y, nil
		case ast.OpMod:
			if y == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return x % y, nil
		}
	}
	return 0, fmt.Errorf("not a constant expression")
}
