package dafny

import (
	"time"

	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/solver"
)

// VerifyOptions configures the mini annotation checker.
type VerifyOptions struct {
	IR     ir.Options
	Solver solver.Options
	// ExtraAssume adds caller-supplied constraints — typically a
	// synthesized workload, matching §6.1's "use assume statements to
	// restrict [havoc inputs] to FPerf's synthesized traffic pattern".
	ExtraAssume func(c *ir.Compiled, sv *solver.Solver)
}

// VCResult is the outcome of one verification condition (one assert
// instance), checked separately the way Dafny discharges assertions.
type VCResult struct {
	Step     int
	Pos      ir.Pos
	Holds    bool
	Unknown  bool
	Duration time.Duration
}

// VerifyResult aggregates a verification run — the measurement behind
// Figure 6 (verification time as a function of the horizon T under full
// unrolling and inlining).
type VerifyResult struct {
	Verified   bool
	VCs        []VCResult
	Duration   time.Duration
	NumClauses int
	NumVars    int
}

// Verify unrolls and inlines the program over opts.IR.T steps (the
// transformations §6.1 applies before handing the model to Dafny) and
// discharges every assert instance as a separate verification condition
// using this repository's solver as the underlying decision procedure.
func Verify(info *typecheck.Info, opts VerifyOptions) (*VerifyResult, error) {
	start := time.Now()
	sv := solver.New(opts.Solver)
	c, err := ir.Compile(info, sv.Builder(), opts.IR)
	if err != nil {
		return nil, err
	}
	for _, a := range c.Assumes {
		sv.Assert(a)
	}
	if opts.ExtraAssume != nil {
		opts.ExtraAssume(c, sv)
	}
	b := sv.Builder()
	res := &VerifyResult{Verified: true}
	for _, a := range c.Asserts {
		if a.Guard == b.False() {
			continue // unreachable instance: vacuously discharged
		}
		vcStart := time.Now()
		vc := VCResult{Step: a.Step, Pos: a.Pos}
		switch sv.CheckAssuming(b.And(a.Guard, b.Not(a.Cond))) {
		case solver.Unsat:
			vc.Holds = true
		case solver.Sat:
			vc.Holds = false
			res.Verified = false
		default:
			vc.Unknown = true
			res.Verified = false
		}
		vc.Duration = time.Since(vcStart)
		res.VCs = append(res.VCs, vc)
	}
	res.Duration = time.Since(start)
	res.NumClauses = sv.NumClauses()
	res.NumVars = sv.NumVars()
	return res, nil
}
