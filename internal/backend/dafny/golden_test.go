package dafny

import (
	"os"
	"path/filepath"
	"testing"

	"buffy/internal/qm"
)

// The dafny/ directory at the repository root contains generated Dafny
// models for the case studies (the paper's companion repository ships the
// equivalent hand-translated .dfy files). This golden test keeps them in
// sync with the generator.
func TestGoldenDafnyArtifacts(t *testing.T) {
	root := filepath.Join("..", "..", "..", "dafny")
	cases := []struct {
		file string
		src  string
		opts GenOptions
	}{
		{"fq_buggy_T4.dfy", qm.FQBuggyQuerySrc, GenOptions{T: 4, Params: map[string]int64{"N": 3}}},
		{"rr_T4.dfy", qm.RRSrc, GenOptions{T: 4, Params: map[string]int64{"N": 3}}},
		{"aimd_T4.dfy", qm.AIMDSrc, GenOptions{T: 4, Params: map[string]int64{"IW": 2}}},
		{"path_server_T4.dfy", qm.PathServerSrc, GenOptions{T: 4, Params: map[string]int64{"C": 2, "B": 2}}},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			info, err := qm.Load(c.src)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Generate(info, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(root, c.file))
			if err != nil {
				t.Fatalf("golden file missing (regenerate with buffyc -mode dafny): %v", err)
			}
			if string(got) != want {
				t.Errorf("%s is stale; regenerate with buffyc -mode dafny", c.file)
			}
		})
	}
}
