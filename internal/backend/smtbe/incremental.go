package smtbe

import (
	"fmt"
	"time"

	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/solver"
)

// Deepening runs incremental bounded deepening on ONE solver: the machine
// extends the unrolling step by step, newly created semantic constraints
// are asserted permanently, and the horizon-specific query is checked
// under assumptions — so clause learning is shared across horizons instead
// of restarting from scratch like FindMinHorizon. Returns the result and
// minimal horizon exactly like FindMinHorizon.
//
// Queries that read the builtin T (the corpus norm: asserts guarded by
// t == T - 1) are handled exactly: the unrolling is compiled with a
// symbolic horizon (ir.Options.SymbolicT) and each horizon k is solved
// under the assumption T == k, so the T-referencing guards select the
// right step by themselves. Historically this function fixed T to maxT
// and silently answered the wrong query for such programs. Programs that
// use T in a compile-time constant position (loop bounds, array sizes)
// cannot share one encoding at all; those fall back to per-horizon
// compilation (FindMinHorizon), cold but correct. internal/session
// builds the pooled, service-facing version of this warm path.
func Deepening(info *typecheck.Info, opts Options, maxT int) (*Result, int, error) {
	horizon := ir.ScanHorizon(info)
	if horizon == ir.HorizonConst {
		return FindMinHorizon(info, opts, maxT)
	}
	start := time.Now()
	sv := solver.New(opts.Solver)
	iro := opts.IR
	iro.T = maxT // fixes capacity heuristics so all horizons share shapes
	iro.SymbolicT = true
	m, err := ir.NewMachine(info, sv.Builder(), iro)
	if err != nil {
		return nil, 0, err
	}
	b := sv.Builder()
	asserted := 0
	for T := 1; T <= maxT; T++ {
		if err := m.RunStep(T - 1); err != nil {
			return nil, 0, err
		}
		// Assert the semantic constraints added by this step.
		assumes := m.Assumes()
		for ; asserted < len(assumes); asserted++ {
			sv.Assert(assumes[asserted])
		}
		c := m.Result()
		if len(c.Asserts) == 0 {
			continue
		}
		var query = b.False()
		switch opts.Mode {
		case Witness:
			query = b.And(c.AssertHoldsUpTo(T), c.AssertReachedUpTo(T))
		case Verify:
			query = c.ViolationUpTo(T)
		}
		outcome := sv.CheckAssuming(b.Eq(m.TVar(), b.IntConst(int64(T))), query)
		if outcome == solver.Unknown {
			res := &Result{Status: Unknown, Mode: opts.Mode, Compiled: c, Solver: sv,
				Duration: time.Since(start)}
			return res, T, nil
		}
		if outcome == solver.Sat {
			res := &Result{Mode: opts.Mode, Compiled: c, Solver: sv,
				SatStats: sv.Stats(), NumClauses: sv.NumClauses(), NumVars: sv.NumVars(),
				Duration: time.Since(start)}
			if opts.Mode == Witness {
				res.Status = WitnessFound
			} else {
				res.Status = CounterexampleFound
			}
			res.Trace = ExtractTrace(c, sv)
			return res, T, nil
		}
	}
	c := m.Result()
	if len(c.Asserts) == 0 {
		return nil, 0, fmt.Errorf("smtbe: program %s has no assert() — nothing to check", info.Prog.Name)
	}
	res := &Result{Mode: opts.Mode, Compiled: c, Solver: sv,
		SatStats: sv.Stats(), NumClauses: sv.NumClauses(), NumVars: sv.NumVars(),
		Duration: time.Since(start)}
	if opts.Mode == Witness {
		res.Status = NoWitness
	} else {
		res.Status = Holds
	}
	return res, maxT, nil
}
