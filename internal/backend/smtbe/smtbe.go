// Package smtbe is Buffy's SMT back-end: it plays the role Z3 plays for
// FPerf (§4 "Back-end for Z3 and FPerf"). A Buffy program is unrolled over
// a bounded horizon by the ir package and the resulting constraints are
// decided by this repository's own solver. Two query modes cover the
// paper's use cases:
//
//   - Verify: do the assert() statements hold on every execution allowed
//     by the assume() statements? A Sat answer yields a counterexample
//     input-traffic trace.
//   - Witness: is there an execution on which the asserts hold (and at
//     least one is reached)? This is the FPerf-style "can the query be
//     satisfied" direction — e.g. finding a trace where one queue takes
//     far more than its fair share.
//
// Every model the solver returns is decoded into a concrete Trace of input
// packets, which callers (tests, the interpreter) replay independently.
package smtbe

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/sat"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
	"buffy/internal/telemetry"
)

// EncodingFingerprint names the semantics of the bounded-horizon
// encoding this backend produces. It is folded into the durable result
// store's pipeline fingerprint: bump it whenever a change to the
// unrolling, the constraint shapes, or the trace decoding could alter
// the answer to any query, so stored results from the old encoding are
// invalidated rather than served.
const EncodingFingerprint = "bmc-unroll-v1"

// Mode selects the query direction.
type Mode int

// Query modes.
const (
	// Verify checks that asserts hold on all executions.
	Verify Mode = iota
	// Witness searches for an execution where all reached asserts hold and
	// at least one assert is reached.
	Witness
)

func (m Mode) String() string {
	if m == Witness {
		return "witness"
	}
	return "verify"
}

// Status is the analysis outcome.
type Status int

// Outcomes. For Verify: Holds / CounterexampleFound. For Witness:
// WitnessFound / NoWitness.
const (
	Unknown Status = iota
	Holds
	CounterexampleFound
	WitnessFound
	NoWitness
)

func (s Status) String() string {
	switch s {
	case Holds:
		return "holds"
	case CounterexampleFound:
		return "counterexample"
	case WitnessFound:
		return "witness"
	case NoWitness:
		return "no-witness"
	}
	return "unknown"
}

// PacketEvent is one concrete arriving packet in a trace.
type PacketEvent struct {
	Step   int
	Buffer string
	Fields []int64
	Bytes  int64
}

// HavocEvent is the concrete value a havoc variable took, in program
// execution order within its step.
type HavocEvent struct {
	Step  int
	Name  string
	Value int64
	Bool  bool // the variable is boolean; Value is 0/1
}

// Trace is a concrete execution: the input traffic plus observed state.
type Trace struct {
	T       int
	Packets []PacketEvent
	// Havocs lists havoc values in the order the havoc statements
	// executed (the order ir recorded them).
	Havocs []HavocEvent
	// Vars[t][name] is the value of each global/monitor at the end of
	// step t (bools are 0/1).
	Vars []map[string]int64
	// Backlogs[t][buffer] is each buffer's packet backlog at end of step t.
	Backlogs []map[string]int64
	// Dropped[t][buffer] is each buffer's cumulative drop count.
	Dropped []map[string]int64
}

// String renders the trace compactly for logs and error messages.
func (tr *Trace) String() string {
	s := fmt.Sprintf("trace over %d steps:\n", tr.T)
	for t := 0; t < tr.T; t++ {
		s += fmt.Sprintf("  step %d: arrivals", t)
		any := false
		for _, p := range tr.Packets {
			if p.Step == t {
				s += fmt.Sprintf(" %s<-flow%d", p.Buffer, p.Fields[0])
				any = true
			}
		}
		if !any {
			s += " (none)"
		}
		s += "\n"
	}
	return s
}

// Result is the outcome of a Check.
type Result struct {
	Status   Status
	Mode     Mode
	Trace    *Trace // set when Status is CounterexampleFound or WitnessFound
	Compiled *ir.Compiled
	Solver   *solver.Solver
	SatStats sat.Stats
	Duration time.Duration
	// Stop explains an Unknown status: which resource budget was
	// exhausted, or that the deadline/cancellation fired. sat.StopNone
	// for conclusive answers.
	Stop sat.StopReason
	// Encoding sizes, for scalability experiments.
	NumClauses int
	NumVars    int
	// Tier names the analysis tier that produced the answer: "" or "smt"
	// for a solver run, "static" when the pre-solve static analyzer
	// (internal/lang/sema) decided the query without solving.
	Tier string
}

// Options configures a Check.
type Options struct {
	IR     ir.Options
	Solver solver.Options
	Mode   Mode
	// ExtraAssume adds caller-provided constraints (e.g. synthesized
	// workload conditions) on top of the program's own assumes. It runs
	// after compilation, receiving the compiled program.
	ExtraAssume func(c *ir.Compiled, s *solver.Solver)
}

// Check compiles and analyses the program.
func Check(info *typecheck.Info, opts Options) (*Result, error) {
	return CheckContext(context.Background(), info, opts)
}

// CheckContext is Check with cooperative cancellation: when ctx is
// cancelled or its deadline passes, the in-flight CDCL search aborts and
// the result comes back with Status Unknown alongside ctx.Err().
func CheckContext(ctx context.Context, info *typecheck.Info, opts Options) (*Result, error) {
	start := time.Now()
	e, err := EncodeContext(ctx, info, opts)
	if err != nil {
		return nil, err
	}
	return e.solveOn(ctx, e.S, start)
}

// Encoded is a compiled, bit-blasted query ready to be solved — possibly
// several times under different search heuristics. The portfolio layer
// encodes once and forks the solver per configuration, so the heavy
// compile+bitblast phase is paid once per race rather than once per
// config.
type Encoded struct {
	Mode Mode
	C    *ir.Compiled
	// S is the solver holding the encoding. Solve it at most once (or use
	// SolveContext, which forks and leaves it untouched).
	S *solver.Solver
	// mu serializes model snapshots and trace extraction: forks share the
	// parent's term builder, which trace decoding appends to.
	mu sync.Mutex
}

// EncodeContext compiles the program and asserts the query constraints,
// stopping just before the solve.
func EncodeContext(ctx context.Context, info *typecheck.Info, opts Options) (*Encoded, error) {
	ectx, esp := telemetry.StartSpan(ctx, "encode")
	defer esp.End()
	s := solver.New(opts.Solver)
	c, err := ir.CompileContext(ectx, info, s.Builder(), opts.IR)
	if err != nil {
		return nil, err
	}
	if len(c.Asserts) == 0 {
		return nil, fmt.Errorf("smtbe: program %s has no assert() — nothing to check", info.Prog.Name)
	}
	_, bsp := telemetry.StartSpan(ectx, "bitblast")
	for _, a := range c.Assumes {
		// Bit-blasting large assumes is part of the heavy encode path;
		// keep cancellation responsive through it too.
		if err := ctx.Err(); err != nil {
			bsp.End()
			return nil, err
		}
		s.Assert(a)
	}
	if opts.ExtraAssume != nil {
		opts.ExtraAssume(c, s)
	}
	switch opts.Mode {
	case Verify:
		s.Assert(c.Violation())
	case Witness:
		s.Assert(c.AssertHolds())
		s.Assert(c.AssertReached())
	}
	bsp.SetAttrs(
		telemetry.Int("clauses", int64(s.NumClauses())),
		telemetry.Int("vars", int64(s.NumVars())))
	bsp.End()
	return &Encoded{Mode: opts.Mode, C: c, S: s}, nil
}

// SolveContext searches the encoded query under the given CDCL heuristics
// on a fork of the encoding solver, leaving the encoding reusable for
// further solves. SolveContext is safe to call from concurrent goroutines;
// the searches race freely and only model decoding serializes.
func (e *Encoded) SolveContext(ctx context.Context, search sat.Options) (*Result, error) {
	start := time.Now()
	return e.solveOn(ctx, e.S.Fork(search), start)
}

// solveOn runs the search on s (the encoding solver itself or a fork) and
// interprets the outcome. Duration counts from start, so callers fold the
// encode time into the first result they produce.
func (e *Encoded) solveOn(ctx context.Context, s *solver.Solver, start time.Time) (*Result, error) {
	res := &Result{Mode: e.Mode, Compiled: e.C, Solver: s}
	outcome := s.CheckContextNoModel(ctx)
	res.SatStats = s.Stats()
	res.NumClauses = s.NumClauses()
	res.NumVars = s.NumVars()
	switch {
	case outcome == solver.Unknown:
		res.Status = Unknown
		res.Stop = s.StopReason()
	case outcome == solver.Sat && e.Mode == Verify:
		res.Status = CounterexampleFound
	case outcome == solver.Unsat && e.Mode == Verify:
		res.Status = Holds
	case outcome == solver.Sat && e.Mode == Witness:
		res.Status = WitnessFound
	default:
		res.Status = NoWitness
	}
	if outcome == solver.Sat {
		e.mu.Lock()
		s.SnapshotModel()
		res.Trace = ExtractTrace(e.C, s)
		e.mu.Unlock()
	}
	res.Duration = time.Since(start)
	if res.Status == Unknown && ctx.Err() != nil {
		return res, ctx.Err()
	}
	return res, nil
}

// ExtractTrace decodes the solver model into a concrete trace.
func ExtractTrace(c *ir.Compiled, s *solver.Solver) *Trace {
	tr := &Trace{T: len(c.Steps)}
	for _, a := range c.Arrivals {
		if !s.BoolValue(a.Valid) {
			continue
		}
		ev := PacketEvent{Step: a.Step, Buffer: a.Buffer, Bytes: s.IntValue(a.Bytes)}
		for _, f := range a.Fields {
			ev.Fields = append(ev.Fields, s.IntValue(f))
		}
		tr.Packets = append(tr.Packets, ev)
	}
	for _, h := range c.Havocs {
		ev := HavocEvent{Step: h.Step, Name: h.Name}
		if h.Var.Sort() == term.Bool {
			ev.Bool = true
			if s.BoolValue(h.Var) {
				ev.Value = 1
			}
		} else {
			ev.Value = s.IntValue(h.Var)
		}
		tr.Havocs = append(tr.Havocs, ev)
	}
	sort.SliceStable(tr.Packets, func(i, j int) bool {
		if tr.Packets[i].Step != tr.Packets[j].Step {
			return tr.Packets[i].Step < tr.Packets[j].Step
		}
		return tr.Packets[i].Buffer < tr.Packets[j].Buffer
	})
	ctx := machineCtx(c, s)
	for _, snap := range c.Steps {
		vars := make(map[string]int64, len(snap.Vars))
		for name, t := range snap.Vars {
			v := s.Value(t)
			if v.Sort == term.Bool {
				if v.Bool {
					vars[name] = 1
				}
			} else {
				vars[name] = v.Int
			}
		}
		tr.Vars = append(tr.Vars, vars)
		bl := make(map[string]int64, len(snap.Buffers))
		dr := make(map[string]int64, len(snap.Buffers))
		for name, st := range snap.Buffers {
			bl[name] = s.IntValue(st.BacklogP(ctx))
			dr[name] = s.IntValue(st.Dropped())
		}
		tr.Backlogs = append(tr.Backlogs, bl)
		tr.Dropped = append(tr.Dropped, dr)
	}
	return tr
}

// machineCtx builds a side-effect-free buffer context for reading backlog
// terms out of snapshots (backlog queries never emit constraints).
func machineCtx(c *ir.Compiled, s *solver.Solver) *buffer.Ctx {
	return &buffer.Ctx{B: c.B, Assume: func(*term.Term) {}, Prefix: "trace"}
}

// FindMinHorizon runs iterative bounded deepening: it increases the
// horizon from 1 to maxT until the check produces a trace (a witness or a
// counterexample, per the mode), returning that result and the horizon it
// appeared at. When no horizon up to maxT yields a trace, the last result
// and maxT are returned. This is the standard BMC usage loop — the paper's
// bounded tools leave picking T to the user; this automates the search.
func FindMinHorizon(info *typecheck.Info, opts Options, maxT int) (*Result, int, error) {
	var last *Result
	for T := 1; T <= maxT; T++ {
		o := opts
		o.IR.T = T
		res, err := Check(info, o)
		if err != nil {
			return nil, 0, err
		}
		last = res
		if res.Trace != nil {
			return res, T, nil
		}
	}
	return last, maxT, nil
}
