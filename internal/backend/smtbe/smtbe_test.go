package smtbe

import (
	"testing"

	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
)

func load(t *testing.T, src string) *typecheck.Info {
	t.Helper()
	info, err := qm.Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return info
}

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res, err := Check(load(t, src), opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return res
}

// A trivially-true per-step assert must verify.
func TestVerifyTrivialHolds(t *testing.T) {
	src := `p(buffer a, buffer b) {
		move-p(a, b, 1);
		assert(backlog-p(a) >= 0);
	}`
	res := run(t, src, Options{IR: ir.Options{T: 3}, Mode: Verify})
	if res.Status != Holds {
		t.Fatalf("status = %v, want holds", res.Status)
	}
}

// backlog can exceed 0 when a packet arrives: verification must find a
// counterexample with an arriving packet.
func TestVerifyFindsCounterexample(t *testing.T) {
	src := `p(buffer a, buffer b) {
		assert(backlog-p(a) == 0);
		move-p(a, b, backlog-p(a));
	}`
	res := run(t, src, Options{IR: ir.Options{T: 2}, Mode: Verify})
	if res.Status != CounterexampleFound {
		t.Fatalf("status = %v, want counterexample", res.Status)
	}
	if len(res.Trace.Packets) == 0 {
		t.Fatal("counterexample should contain at least one arriving packet")
	}
}

// Assumes prune executions: with arrivals forbidden by assumption, the
// same assert holds.
func TestAssumeRestrictsTraffic(t *testing.T) {
	src := `p(buffer a, buffer b) {
		assume(backlog-p(a) == 0);
		assert(backlog-p(a) == 0);
		move-p(a, b, backlog-p(a));
	}`
	res := run(t, src, Options{IR: ir.Options{T: 3}, Mode: Verify})
	if res.Status != Holds {
		t.Fatalf("status = %v, want holds", res.Status)
	}
}

// Witness mode: find an execution where the output accumulates exactly 3
// packets over 3 steps.
func TestWitnessThroughput(t *testing.T) {
	src := `p(buffer a, buffer b) {
		move-p(a, b, 1);
		if (t == 2) { assert(backlog-p(b) == 3); }
	}`
	res := run(t, src, Options{IR: ir.Options{T: 3}, Mode: Witness})
	if res.Status != WitnessFound {
		t.Fatalf("status = %v, want witness", res.Status)
	}
	// The witness needs a packet available every step.
	if len(res.Trace.Packets) < 3 {
		t.Errorf("witness has %d arrivals, want >= 3\n%s", len(res.Trace.Packets), res.Trace)
	}
	if got := res.Trace.Backlogs[2]["b"]; got != 3 {
		t.Errorf("end backlog(b) = %d, want 3", got)
	}
}

// An impossible witness: 3 departures in 2 steps at one per step.
func TestWitnessImpossible(t *testing.T) {
	src := `p(buffer a, buffer b) {
		move-p(a, b, 1);
		if (t == 1) { assert(backlog-p(b) == 3); }
	}`
	res := run(t, src, Options{IR: ir.Options{T: 2}, Mode: Witness})
	if res.Status != NoWitness {
		t.Fatalf("status = %v, want no-witness", res.Status)
	}
}

// Globals persist across steps; locals reset.
func TestGlobalPersistsLocalResets(t *testing.T) {
	src := `p(buffer a, buffer b) {
		global int g;
		local int l;
		g = g + 1;
		l = l + 1;
		assert(l == 1);
		if (t == 3) { assert(g == 4); }
		move-p(a, b, 1);
	}`
	res := run(t, src, Options{IR: ir.Options{T: 4}, Mode: Verify})
	if res.Status != Holds {
		t.Fatalf("status = %v, want holds (locals reset, globals persist)", res.Status)
	}
}

// Monitor arithmetic and T/2 constant folding.
func TestMonitorAndConstDivision(t *testing.T) {
	src := `p(buffer a, buffer b) {
		monitor int served;
		local int n;
		n = backlog-p(a);
		if (n > 1) { n = 1; }
		move-p(a, b, n);
		served = served + n;
		if (t == T - 1) { assert(served <= T); }
		if (t == T - 1) { assert(served >= T/2 - T/2); }
	}`
	res := run(t, src, Options{IR: ir.Options{T: 4}, Mode: Verify})
	if res.Status != Holds {
		t.Fatalf("status = %v, want holds", res.Status)
	}
}

// Havoc introduces genuine nondeterminism bounded by assumes.
func TestHavocNondeterminism(t *testing.T) {
	src := `p(buffer a, buffer b) {
		local int x;
		havoc x;
		assume(x >= 0);
		assume(x <= 2);
		assert(x <= 1);
		move-p(a, b, 1);
	}`
	res := run(t, src, Options{IR: ir.Options{T: 1}, Mode: Verify})
	if res.Status != CounterexampleFound {
		t.Fatalf("status = %v, want counterexample (x=2 breaks the assert)", res.Status)
	}
	// Narrow the assume and it holds.
	src2 := `p(buffer a, buffer b) {
		local int x;
		havoc x;
		assume(x >= 0);
		assume(x <= 1);
		assert(x <= 1);
		move-p(a, b, 1);
	}`
	res2 := run(t, src2, Options{IR: ir.Options{T: 1}, Mode: Verify})
	if res2.Status != Holds {
		t.Fatalf("status = %v, want holds", res2.Status)
	}
}

// Packet conservation: arrivals = backlog(a) + backlog(b) when b only
// receives from a.
func TestConservationProperty(t *testing.T) {
	src := `p(buffer a, buffer b) {
		move-p(a, b, 2);
		assert(backlog-p(a) >= 0);
	}`
	info := load(t, src)
	s := solver.New(solver.Options{})
	c, err := ir.Compile(info, s.Builder(), ir.Options{T: 3, ArrivalsPerStep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range c.Assumes {
		s.Assert(a)
	}
	b := s.Builder()
	// Count arrivals symbolically.
	total := b.IntConst(0)
	for _, a := range c.Arrivals {
		total = b.Add(total, b.Ite(a.Valid, b.IntConst(1), b.IntConst(0)))
	}
	last := c.Steps[len(c.Steps)-1]
	cctx := machineCtx(c, s)
	sum := b.Add(last.Buffers["a"].BacklogP(cctx), last.Buffers["b"].BacklogP(cctx))
	s.Assert(b.Neq(total, sum))
	if got := s.Check(); got != solver.Unsat {
		t.Fatalf("conservation violated: %v", got)
	}
}

// Scheduler sanity: strict priority gives queue 0 everything it asks for.
func TestSPWitness(t *testing.T) {
	res := run(t, qm.SPQuerySrc, Options{
		IR:   ir.Options{T: 5, Params: map[string]int64{"N": 2}},
		Mode: Witness,
	})
	if res.Status != WitnessFound {
		t.Fatalf("status = %v, want witness (SP starves by design)", res.Status)
	}
	if got := res.Trace.Vars[4]["cdeq1"]; got > 1 {
		t.Errorf("cdeq1 = %d, want <= 1 (queue 1 starved)", got)
	}
}

// Scheduler sanity: round-robin cannot starve under constant demand.
func TestRRNoWitness(t *testing.T) {
	res := run(t, qm.RRQuerySrc, Options{
		IR:   ir.Options{T: 6, Params: map[string]int64{"N": 2}},
		Mode: Witness,
	})
	if res.Status != NoWitness {
		t.Fatalf("status = %v, want no-witness (RR is fair)", res.Status)
	}
}

// The headline case study (CS1): the buggy FQ scheduler admits a
// starvation witness.
func TestFQBuggyStarvationWitness(t *testing.T) {
	res := run(t, qm.FQBuggyQuerySrc, Options{
		IR:   ir.Options{T: 6, Params: map[string]int64{"N": 3}},
		Mode: Witness,
	})
	if res.Status != WitnessFound {
		t.Fatalf("status = %v, want witness (the FQ-CoDel bug)", res.Status)
	}
	if got := res.Trace.Vars[5]["cdeq1"]; got > 1 {
		t.Errorf("cdeq1 = %d, want <= 1 (queue 1 starved)\n%s", got, res.Trace)
	}
}

// CS1b: with the RFC 8290 fix the same witness search fails.
func TestFQFixedNoStarvationWitness(t *testing.T) {
	res := run(t, qm.FQFixedQuerySrc, Options{
		IR:   ir.Options{T: 6, Params: map[string]int64{"N": 3}},
		Mode: Witness,
	})
	if res.Status != NoWitness {
		t.Fatalf("status = %v, want no-witness (fix removes the bug)", res.Status)
	}
}

// Iterative deepening finds the minimal horizon at which a query first
// becomes satisfiable.
func TestFindMinHorizon(t *testing.T) {
	// Accumulating 4 packets at one departure per step needs exactly T=4.
	info := load(t, `p(buffer a, buffer b) {
		move-p(a, b, 1);
		if (t == T - 1) { assert(backlog-p(b) == 4); }
	}`)
	res, T, err := FindMinHorizon(info, Options{Mode: Witness}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != WitnessFound || T != 4 {
		t.Fatalf("status=%v T=%d, want witness at exactly 4", res.Status, T)
	}
	// An unreachable query exhausts the budget without a trace.
	info2 := load(t, `p(buffer a, buffer b) {
		move-p(a, b, 1);
		if (t == T - 1) { assert(backlog-p(b) == 100); }
	}`)
	res2, T2, err := FindMinHorizon(info2, Options{Mode: Witness}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil || T2 != 3 {
		t.Fatalf("unreachable query: trace=%v T=%d", res2.Trace, T2)
	}
}

// Deepening agrees with FindMinHorizon on a per-step query and reuses one
// solver across horizons.
func TestDeepening(t *testing.T) {
	src := `p(buffer a, buffer b) {
		move-p(a, b, 1);
		assert(backlog-p(b) < 3);
	}`
	info := load(t, src)
	res, T, err := Deepening(info, Options{Mode: Verify}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// backlog(b) reaches 3 after 3 serviced steps: minimal failing horizon 3.
	if res.Status != CounterexampleFound || T != 3 {
		t.Fatalf("status=%v T=%d, want counterexample at 3", res.Status, T)
	}
	if len(res.Trace.Packets) < 3 {
		t.Errorf("counterexample needs >= 3 arrivals, got %d", len(res.Trace.Packets))
	}
	// Cross-check against the non-incremental search.
	res2, T2, err := FindMinHorizon(info, Options{Mode: Verify}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != res.Status || T2 != T {
		t.Errorf("FindMinHorizon disagrees: %v at %d", res2.Status, T2)
	}
	// A safe per-step property deepens to Holds.
	safe := load(t, `p(buffer a, buffer b) {
		move-p(a, b, backlog-p(a));
		assert(backlog-p(a) == 0);
	}`)
	res3, _, err := Deepening(safe, Options{Mode: Verify}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Status != Holds {
		t.Errorf("safe property: %v", res3.Status)
	}
}
