// Package fperf implements Buffy's FPerf-style back-end (§4): instead of
// merely checking a query, it synthesizes a *workload* — a set of
// constraints on the input traffic — under which the query is guaranteed
// to hold on every execution. This is FPerf's headline capability ("FPerf
// can synthesize a set of input packet traffic sequences that satisfy a
// given query") reproduced with this repository's own solver.
//
// The synthesis is guess-and-check (the approach §5 advocates):
//
//  1. Find one concrete witness execution of the query (a model).
//  2. Abstract the witness into a fully-concrete candidate workload: one
//     arrival-count atom per (step, input buffer).
//  3. Generalize greedily: try to drop each atom, then to relax equalities
//     into one-sided bounds; a candidate survives only if the solver
//     proves "workload ⇒ query" (the check), and remains non-vacuous
//     (some traffic satisfies it).
//
// The result is a human-readable workload like FPerf's synthesized traffic
// patterns — e.g. "queue 0 receives >= 1 packet in every step; queue 1
// receives >= 2 packets at step 0".
package fperf

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
	"buffy/internal/telemetry"
)

// Op is an atom's comparison operator.
type Op int

// Atom operators.
const (
	OpEq Op = iota
	OpGe
	OpLe
)

func (o Op) String() string {
	switch o {
	case OpGe:
		return ">="
	case OpLe:
		return "<="
	}
	return "=="
}

// Atom constrains the number of packets arriving at one input buffer in
// one step.
type Atom struct {
	Buffer string
	Step   int
	Op     Op
	K      int64
}

func (a Atom) String() string {
	return fmt.Sprintf("cnt(%s, t=%d) %v %d", a.Buffer, a.Step, a.Op, a.K)
}

// Workload is a conjunction of atoms.
type Workload []Atom

func (w Workload) String() string {
	if len(w) == 0 {
		return "true (any traffic)"
	}
	parts := make([]string, len(w))
	for i, a := range w {
		parts[i] = a.String()
	}
	return strings.Join(parts, " && ")
}

// Options configures synthesis.
type Options struct {
	IR     ir.Options
	Solver solver.Options
}

// Result is the synthesis outcome.
type Result struct {
	Found    bool
	Workload Workload
	// Inconclusive is set when a solver check returned Unknown (conflict
	// budget exhausted). A Found=false result with Inconclusive set means
	// "don't know", not a proof that no workload exists; a Found=true
	// result is still sound (every kept candidate passed definite checks)
	// but may be under-generalized.
	Inconclusive bool
	// Checks counts solver queries spent in generalization.
	Checks   int
	Duration time.Duration
	Compiled *ir.Compiled
}

// Synthesize searches for a workload under which every execution satisfies
// the program's query (all reached asserts hold, at least one is reached).
func Synthesize(info *typecheck.Info, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), info, opts)
}

// SynthesizeContext is Synthesize with cooperative cancellation: each
// solver query aborts soon after ctx is cancelled and the whole synthesis
// returns ctx.Err().
func SynthesizeContext(ctx context.Context, info *typecheck.Info, opts Options) (*Result, error) {
	start := time.Now()
	ctx, ssp := telemetry.StartSpan(ctx, "synthesize")
	res := &Result{}
	defer func() {
		ssp.SetAttrs(
			telemetry.Int("checks", int64(res.Checks)),
			telemetry.Bool("found", res.Found))
		ssp.End()
	}()
	sv := solver.New(opts.Solver)
	c, err := ir.CompileContext(ctx, info, sv.Builder(), opts.IR)
	if err != nil {
		return nil, err
	}
	if len(c.Asserts) == 0 {
		return nil, fmt.Errorf("fperf: program %s has no assert() query", info.Prog.Name)
	}
	for _, a := range c.Assumes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sv.Assert(a)
	}
	b := sv.Builder()
	holds := b.And(c.AssertHolds(), c.AssertReached())
	res.Compiled = c

	// check runs one solver query and reports whether it came back with the
	// wanted outcome. Unknown without a cancelled context means the conflict
	// budget ran out: the overall answer is then inconclusive, not definite.
	check := func(t *term.Term, want solver.Result) bool {
		res.Checks++
		cctx, csp := telemetry.StartSpan(ctx, "fperf.check")
		out := sv.CheckAssumingContext(cctx, t)
		csp.SetAttrs(
			telemetry.Int("n", int64(res.Checks)),
			telemetry.String("result", out.String()))
		csp.End()
		if out == solver.Unknown && ctx.Err() == nil {
			res.Inconclusive = true
		}
		return out == want
	}

	// Step 1: find one witness.
	if !check(holds, solver.Sat) {
		res.Duration = time.Since(start)
		if err := ctx.Err(); err != nil {
			return res, err
		}
		return res, nil // Unsat: query unreachable, no workload exists
	}

	// Step 2: abstract the witness into concrete per-(step,buffer) counts.
	counts := arrivalCounts(c, sv)
	var wl Workload
	for _, k := range sortedKeys(counts) {
		wl = append(wl, Atom{Buffer: k.buf, Step: k.step, Op: OpEq, K: counts[k]})
	}

	// The implication check: workload ⇒ query on all executions.
	implies := func(w Workload) bool {
		ant := w.Term(c)
		// Unsat(workload ∧ ¬holds) means the workload guarantees the query.
		if !check(b.And(ant, b.Not(holds)), solver.Unsat) {
			return false
		}
		// Non-vacuity: some traffic satisfies the workload (and the
		// program assumptions).
		return check(ant, solver.Sat)
	}

	if !implies(wl) {
		// The fully concrete workload must imply the query (it pins the
		// entire input); if not, nondeterminism beyond traffic (havocs)
		// can break the query and no traffic-only workload exists.
		res.Duration = time.Since(start)
		if err := ctx.Err(); err != nil {
			return res, err
		}
		return res, nil
	}

	// Step 3a: drop atoms greedily.
	for i := 0; i < len(wl); {
		cand := append(append(Workload{}, wl[:i]...), wl[i+1:]...)
		if implies(cand) {
			wl = cand
		} else {
			i++
		}
	}
	// Step 3b: relax remaining equalities to one-sided bounds.
	for i := range wl {
		for _, op := range []Op{OpGe, OpLe} {
			cand := append(Workload{}, wl...)
			cand[i].Op = op
			if implies(cand) {
				wl = cand
				break
			}
		}
	}

	res.Duration = time.Since(start)
	// Cancellation mid-generalization makes every implies() check fail
	// fast; the candidate may be under-generalized, so report the abort
	// rather than a (valid but unpolished) workload.
	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.Found = true
	res.Workload = wl
	return res, nil
}

// Term renders the workload as a constraint over the compiled arrivals.
func (w Workload) Term(c *ir.Compiled) *term.Term {
	b := c.B
	parts := make([]*term.Term, 0, len(w))
	for _, a := range w {
		cnt := b.IntConst(0)
		for _, arr := range c.Arrivals {
			if arr.Buffer == a.Buffer && arr.Step == a.Step {
				cnt = b.Add(cnt, b.Ite(arr.Valid, b.IntConst(1), b.IntConst(0)))
			}
		}
		k := b.IntConst(a.K)
		switch a.Op {
		case OpGe:
			parts = append(parts, b.Ge(cnt, k))
		case OpLe:
			parts = append(parts, b.Le(cnt, k))
		default:
			parts = append(parts, b.Eq(cnt, k))
		}
	}
	return b.And(parts...)
}

type cntKey struct {
	step int
	buf  string
}

func arrivalCounts(c *ir.Compiled, sv *solver.Solver) map[cntKey]int64 {
	counts := make(map[cntKey]int64)
	for _, a := range c.Arrivals {
		k := cntKey{a.Step, a.Buffer}
		if _, ok := counts[k]; !ok {
			counts[k] = 0
		}
		if sv.BoolValue(a.Valid) {
			counts[k]++
		}
	}
	return counts
}

func sortedKeys(m map[cntKey]int64) []cntKey {
	out := make([]cntKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].step != out[j].step {
			return out[i].step < out[j].step
		}
		return out[i].buf < out[j].buf
	})
	return out
}
