package fperf

import (
	"testing"

	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
)

func synth(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	info, err := qm.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(info, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A throughput query: output accumulates T packets iff a packet arrives
// every step. Synthesis must find (a generalization of) that workload.
func TestSynthesizeThroughputWorkload(t *testing.T) {
	src := `p(buffer a, buffer b) {
		move-p(a, b, 1);
		if (t == T - 1) { assert(backlog-p(b) == T); }
	}`
	res := synth(t, src, Options{IR: ir.Options{T: 3}})
	if !res.Found {
		t.Fatal("expected a synthesized workload")
	}
	// The workload must constrain every step's arrivals (one packet must
	// arrive each step for full throughput).
	if len(res.Workload) != 3 {
		t.Errorf("workload = %v, want one atom per step", res.Workload)
	}
	for _, a := range res.Workload {
		if a.K != 1 {
			t.Errorf("atom %v: K = %d, want 1", a, a.K)
		}
		if a.Op == OpLe {
			t.Errorf("atom %v: <= cannot force arrivals", a)
		}
	}
}

// A vacuously reachable query over-approximates nothing: if the query asks
// for an empty buffer, the workload generalizes to very few atoms.
func TestSynthesizeGeneralizes(t *testing.T) {
	src := `p(buffer a, buffer b) {
		move-p(a, b, backlog-p(a));
		if (t == T - 1) { assert(backlog-p(a) == 0); }
	}`
	// a is fully drained every step, so the assert holds for ALL traffic:
	// generalization should drop every atom.
	res := synth(t, src, Options{IR: ir.Options{T: 3}})
	if !res.Found {
		t.Fatal("expected a synthesized workload")
	}
	if len(res.Workload) != 0 {
		t.Errorf("workload = %v, want empty (query holds universally)", res.Workload)
	}
}

// An unreachable query yields no workload.
func TestSynthesizeUnreachable(t *testing.T) {
	src := `p(buffer a, buffer b) {
		move-p(a, b, 1);
		if (t == 0) { assert(backlog-p(b) == 5); }
	}`
	res := synth(t, src, Options{IR: ir.Options{T: 2}})
	if res.Found {
		t.Fatalf("query is unreachable; got workload %v", res.Workload)
	}
}

// The paper's use case: synthesize the traffic pattern that starves
// queue 1 in the buggy FQ scheduler (§6.1: "FPerf synthesizes a set of
// conditions on the input traffic ... that will satisfy the query").
func TestSynthesizeFQStarvationWorkload(t *testing.T) {
	info, err := qm.Load(qm.FQBuggyQuerySrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(info, Options{IR: ir.Options{
		T: 5, Params: map[string]int64{"N": 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("expected a starvation workload on the buggy scheduler")
	}
	// Validate the result end to end: workload && assumes must imply the
	// query (re-checked on a fresh solver to rule out state leakage).
	sv := solver.New(solver.Options{})
	c, err := ir.Compile(info, sv.Builder(), ir.Options{T: 5, Params: map[string]int64{"N": 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range c.Assumes {
		sv.Assert(a)
	}
	b := sv.Builder()
	sv.Assert(res.Workload.Term(c))
	sv.Assert(b.Not(b.And(c.AssertHolds(), c.AssertReached())))
	if got := sv.Check(); got != solver.Unsat {
		t.Fatalf("synthesized workload does not guarantee the query: %v\nworkload: %v", got, res.Workload)
	}
	t.Logf("synthesized workload: %v (%d checks in %v)", res.Workload, res.Checks, res.Duration)
}

// Havoc-driven failure: when a havoc (not traffic) controls the assert, no
// traffic-only workload can guarantee the query.
func TestSynthesizeHavocBlocksWorkload(t *testing.T) {
	src := `p(buffer a, buffer b) {
		local int x;
		havoc x;
		assume(x >= 0);
		assume(x <= 1);
		move-p(a, b, 1);
		assert(x == 0);
	}`
	res := synth(t, src, Options{IR: ir.Options{T: 1}})
	if res.Found {
		t.Fatalf("no traffic workload can control the havoc; got %v", res.Workload)
	}
}
