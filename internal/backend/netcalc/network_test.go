package netcalc

import (
	"testing"
)

// spTandemNet is the strict-priority tandem used throughout: two servers of
// rate 3, a high-priority token-bucket flow (rate 1, burst 2) at each hop,
// and a shaped victim (rate 1, burst 2) crossing both.
func spTandemNet() *Network {
	return &Network{
		Servers: []*Server{
			{Name: "hop1", Beta: RateLatency(ratI(3), ratI(0)), Mux: MuxPriority,
				Prio: map[string]int{"h1": 0, "v": 1}},
			{Name: "hop2", Beta: RateLatency(ratI(3), ratI(0)), Mux: MuxPriority,
				Prio: map[string]int{"h2": 0, "v": 1}},
		},
		Flows: []*Flow{
			{Name: "h1", Alpha: TokenBucket(ratI(1), ratI(2)), Path: []string{"hop1"}},
			{Name: "h2", Alpha: TokenBucket(ratI(1), ratI(2)), Path: []string{"hop2"}},
			{Name: "v", Alpha: TokenBucket(ratI(1), ratI(2)), Path: []string{"hop1", "hop2"}},
		},
	}
}

func flowBounds(t *testing.T, bounds []FlowBounds, name string) FlowBounds {
	t.Helper()
	for _, fb := range bounds {
		if fb.Flow == name {
			return fb
		}
	}
	t.Fatalf("no bounds for flow %q", name)
	return FlowBounds{}
}

// TestSPTandemHandComputed pins the tandem's bounds to hand-derived values:
// the victim's residual at each hop is beta_{2,1}, so SFA sees the
// end-to-end curve beta_{2,2} (pay latency once) while TFA pays the burst
// at both hops.
func TestSPTandemHandComputed(t *testing.T) {
	bounds, err := spTandemNet().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	v := flowBounds(t, bounds, "v")
	if !v.SFA.Bounded || !v.TFA.Bounded {
		t.Fatalf("victim should be bounded: %+v", v)
	}
	// SFA: hdev(gamma_{1,2}, beta_{2,2}) = 2 + 2/2 = 3; vdev = alpha(2) = 4.
	wantRat(t, v.SFA.Delay, 3, 1)
	wantRat(t, v.SFA.Backlog, 4, 1)
	// TFA: hop1 d = hdev(gamma_{1,2}, beta_{2,1}) = 2, q = vdev = 3; the
	// output curve gamma_{1,4} then meets hop2's beta_{2,1}: d = 3, q = 5.
	wantRat(t, v.TFA.Delay, 5, 1)
	wantRat(t, v.TFA.Backlog, 8, 1)
	// Best takes SFA here.
	wantRat(t, v.Best.Delay, 3, 1)
	wantRat(t, v.Best.Backlog, 4, 1)

	// The high-priority flows see the full server: hdev(gamma_{1,2},
	// beta_{3,0}) = 2/3, vdev = 2.
	h1 := flowBounds(t, bounds, "h1")
	wantRat(t, h1.Best.Delay, 2, 3)
	wantRat(t, h1.Best.Backlog, 2, 1)
}

// TestUnboundedFlow: sustained arrival rate above the service rate is
// reported as unbounded, not an error.
func TestUnboundedFlow(t *testing.T) {
	n := &Network{
		Servers: []*Server{{Name: "s", Beta: RateLatency(ratI(1), ratI(0)), Mux: MuxAggregate}},
		Flows: []*Flow{
			{Name: "a", Alpha: TokenBucket(ratI(1), ratI(1)), Path: []string{"s"}},
			{Name: "b", Alpha: TokenBucket(ratI(1), ratI(1)), Path: []string{"s"}},
		},
	}
	bounds, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, fb := range bounds {
		if fb.Best.Bounded {
			t.Fatalf("flow %s should be unbounded (aggregate rate 2 > service rate 1)", fb.Flow)
		}
	}
}

// TestGuaranteedMux: a round-robin-style latency-rate guarantee
// beta_{1/2,1} bounds a gamma_{1/3,1} flow at delay 1 + 1/(1/2) = 3.
func TestGuaranteedMux(t *testing.T) {
	n := &Network{
		Servers: []*Server{{
			Name: "rr", Beta: RateLatency(ratI(1), ratI(0)), Mux: MuxGuaranteed,
			Guaranteed: map[string]Curve{
				"f": RateLatency(rat(1, 2), ratI(1)),
			},
		}},
		Flows: []*Flow{{Name: "f", Alpha: TokenBucket(rat(1, 3), ratI(1)), Path: []string{"rr"}}},
	}
	bounds, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	f := flowBounds(t, bounds, "f")
	wantRat(t, f.Best.Delay, 3, 1)
	// vdev(gamma_{1/3,1}, beta_{1/2,1}) = 1 + 1/3 (at the latency kink).
	wantRat(t, f.Best.Backlog, 4, 3)
}

// TestAggregateFIFO: two flows FIFO-sharing a server; both see the
// aggregate delay hdev(gamma_{2,3}, beta_{3,1}) = 1 + 3/3 = 2, and each
// flow's backlog bound is its own curve at that delay.
func TestAggregateFIFO(t *testing.T) {
	n := &Network{
		Servers: []*Server{{Name: "s", Beta: RateLatency(ratI(3), ratI(1)), Mux: MuxAggregate}},
		Flows: []*Flow{
			{Name: "a", Alpha: TokenBucket(ratI(1), ratI(1)), Path: []string{"s"}},
			{Name: "b", Alpha: TokenBucket(ratI(1), ratI(2)), Path: []string{"s"}},
		},
	}
	bounds, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	a := flowBounds(t, bounds, "a")
	wantRat(t, a.TFA.Delay, 2, 1)
	wantRat(t, a.TFA.Backlog, 3, 1) // gamma_{1,1}(2) = 3
	b := flowBounds(t, bounds, "b")
	wantRat(t, b.TFA.Delay, 2, 1)
	wantRat(t, b.TFA.Backlog, 4, 1) // gamma_{1,2}(2) = 4
}

// TestPureDelayChain: delta stages add their delay and keep flows bounded.
func TestPureDelayChain(t *testing.T) {
	n := &Network{
		Servers: []*Server{
			{Name: "d1", Beta: Delay(ratI(1)), Mux: MuxAggregate},
			{Name: "d2", Beta: Delay(ratI(1)), Mux: MuxAggregate},
		},
		Flows: []*Flow{{Name: "f", Alpha: TokenBucket(ratI(1), ratI(1)), Path: []string{"d1", "d2"}}},
	}
	bounds, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	f := flowBounds(t, bounds, "f")
	if !f.Best.Bounded {
		t.Fatal("delay chain should be bounded")
	}
	// SFA: delta_1 (x) delta_1 = delta_2; hdev = 2.
	wantRat(t, f.SFA.Delay, 2, 1)
	wantRat(t, f.TFA.Delay, 2, 1)
}

// TestCycleRejected: cyclic topologies are a malformed-network error.
func TestCycleRejected(t *testing.T) {
	n := &Network{
		Servers: []*Server{
			{Name: "a", Beta: RateLatency(ratI(2), ratI(0)), Mux: MuxAggregate},
			{Name: "b", Beta: RateLatency(ratI(2), ratI(0)), Mux: MuxAggregate},
		},
		Flows: []*Flow{
			{Name: "f", Alpha: TokenBucket(ratI(1), ratI(1)), Path: []string{"a", "b"}},
			{Name: "g", Alpha: TokenBucket(ratI(1), ratI(1)), Path: []string{"b", "a"}},
		},
	}
	if _, err := n.Analyze(); err == nil {
		t.Fatal("cyclic topology should be rejected")
	}
}
