// Package netcalc is Buffy's analytical backend: a (min,+) network-calculus
// engine that answers bound queries — worst-case per-flow delay and backlog —
// in microseconds, without any solver search. Arrival curves are concave
// piecewise-linear functions (token buckets and their minima), service curves
// are convex piecewise-linear functions (rate-latency servers, pure delays,
// and their residuals), and the classic theorems connect them:
//
//	backlog(f) <= vdev(alpha_f, beta_f)   (maximum vertical deviation)
//	delay(f)   <= hdev(alpha_f, beta_f)   (maximum horizontal deviation)
//
// Bounds are computed over exact rationals (math/big), so there is no
// floating-point soundness gap between the analytical answer and the integer
// SMT semantics it is differentially checked against (differential.go).
package netcalc

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// point is a curve breakpoint. Coordinates are exact rationals.
type point struct {
	x, y *big.Rat
}

// Curve is a piecewise-linear function f: [0, inf) -> [0, inf].
//
// Representation: breakpoints with strictly increasing x starting at x=0,
// linear interpolation between consecutive breakpoints, and slope tail
// after the last one. A nil tail means the curve jumps to +inf immediately
// after its last breakpoint (pure-delay service curves).
//
// By network-calculus convention every curve has f(0) = 0; pts[0].y stores
// the right-limit f(0+), so a token bucket's burst appears as pts[0].y > 0.
// All algorithms work on this right-continuous extension, which is exactly
// the sup/inf the deviation bounds need. Curves are continuous on (0, inf)
// apart from the single jump to +inf a nil tail encodes.
type Curve struct {
	pts  []point
	tail *big.Rat // slope after the last breakpoint; nil = +inf
}

// rat builds an exact rational from an int64 pair.
func rat(num, den int64) *big.Rat { return big.NewRat(num, den) }

// ratI builds an exact rational from an int64.
func ratI(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }

var zero = new(big.Rat)

// TokenBucket is the affine arrival curve gamma_{r,b}(t) = r*t + b for t > 0
// (and 0 at t = 0): a flow that can burst b packets and sustain rate r.
func TokenBucket(r, b *big.Rat) Curve {
	return Curve{pts: []point{{x: new(big.Rat), y: new(big.Rat).Set(b)}}, tail: new(big.Rat).Set(r)}
}

// RateLatency is the convex service curve beta_{R,L}(t) = R * max(0, t-L):
// a server that, once backlogged, may stall for L time units but then
// guarantees rate R.
func RateLatency(r, l *big.Rat) Curve {
	if l.Sign() <= 0 {
		return Curve{pts: []point{{x: new(big.Rat), y: new(big.Rat)}}, tail: new(big.Rat).Set(r)}
	}
	return Curve{
		pts:  []point{{x: new(big.Rat), y: new(big.Rat)}, {x: new(big.Rat).Set(l), y: new(big.Rat)}},
		tail: new(big.Rat).Set(r),
	}
}

// Delay is the pure-delay service curve delta_d: 0 up to d, then +inf. It is
// the service curve of a stage that holds traffic for at most d time units.
func Delay(d *big.Rat) Curve {
	if d.Sign() <= 0 {
		return Curve{pts: []point{{x: new(big.Rat), y: new(big.Rat)}}, tail: nil}
	}
	return Curve{
		pts:  []point{{x: new(big.Rat), y: new(big.Rat)}, {x: new(big.Rat).Set(d), y: new(big.Rat)}},
		tail: nil,
	}
}

// Zero is the constant-zero curve (a server that guarantees nothing).
func Zero() Curve {
	return Curve{pts: []point{{x: new(big.Rat), y: new(big.Rat)}}, tail: new(big.Rat)}
}

// last returns the final breakpoint.
func (c Curve) last() point { return c.pts[len(c.pts)-1] }

// Eval returns the right-continuous extension f(x+); the boolean is false
// when the value is +inf (x past the last breakpoint of a nil-tail curve).
// x must be >= 0.
func (c Curve) Eval(x *big.Rat) (*big.Rat, bool) {
	lp := c.last()
	if x.Cmp(lp.x) >= 0 {
		if c.tail == nil {
			if x.Cmp(lp.x) == 0 {
				return new(big.Rat).Set(lp.y), true
			}
			return nil, false
		}
		d := new(big.Rat).Sub(x, lp.x)
		return d.Mul(d, c.tail).Add(d, lp.y), true
	}
	// Binary search for the segment containing x: pts[i].x <= x < pts[i+1].x.
	i := sort.Search(len(c.pts), func(j int) bool { return c.pts[j].x.Cmp(x) > 0 }) - 1
	a, b := c.pts[i], c.pts[i+1]
	// Linear interpolation a -> b.
	w := new(big.Rat).Sub(b.x, a.x)
	s := new(big.Rat).Sub(b.y, a.y)
	s.Quo(s, w)
	d := new(big.Rat).Sub(x, a.x)
	return d.Mul(d, s).Add(d, a.y), true
}

// slopeAt returns the slope of the segment starting at breakpoint i (the
// tail slope for the last breakpoint); nil means +inf.
func (c Curve) slopeAt(i int) *big.Rat {
	if i == len(c.pts)-1 {
		return c.tail
	}
	s := new(big.Rat).Sub(c.pts[i+1].y, c.pts[i].y)
	w := new(big.Rat).Sub(c.pts[i+1].x, c.pts[i].x)
	return s.Quo(s, w)
}

// normalize drops redundant collinear breakpoints.
func normalize(pts []point, tail *big.Rat) Curve {
	out := pts[:1]
	for i := 1; i < len(pts); i++ {
		out = append(out, pts[i])
		for len(out) >= 3 {
			a, b, c := out[len(out)-3], out[len(out)-2], out[len(out)-1]
			// b redundant when (a->b) and (b->c) share a slope:
			// (b.y-a.y)*(c.x-b.x) == (c.y-b.y)*(b.x-a.x).
			l := new(big.Rat).Sub(b.y, a.y)
			l.Mul(l, new(big.Rat).Sub(c.x, b.x))
			r := new(big.Rat).Sub(c.y, b.y)
			r.Mul(r, new(big.Rat).Sub(b.x, a.x))
			if l.Cmp(r) != 0 {
				break
			}
			out[len(out)-2] = c
			out = out[:len(out)-1]
		}
	}
	// The last breakpoint is redundant when the tail continues the final
	// segment's slope.
	for len(out) >= 2 && tail != nil {
		a, b := out[len(out)-2], out[len(out)-1]
		s := new(big.Rat).Sub(b.y, a.y)
		w := new(big.Rat).Sub(b.x, a.x)
		if s.Quo(s, w).Cmp(tail) != 0 {
			break
		}
		out = out[:len(out)-1]
	}
	return Curve{pts: out, tail: tail}
}

// breakXs returns the sorted union of both curves' breakpoint abscissae.
func breakXs(f, g Curve) []*big.Rat {
	var xs []*big.Rat
	i, j := 0, 0
	for i < len(f.pts) || j < len(g.pts) {
		switch {
		case j == len(g.pts):
			xs = append(xs, f.pts[i].x)
			i++
		case i == len(f.pts):
			xs = append(xs, g.pts[j].x)
			j++
		default:
			c := f.pts[i].x.Cmp(g.pts[j].x)
			xs = append(xs, f.pts[i].x)
			if c <= 0 {
				i++
			}
			if c >= 0 {
				if c > 0 {
					xs[len(xs)-1] = g.pts[j].x
				}
				j++
			}
		}
	}
	return xs
}

// Add returns f + g (pointwise). Regions where either operand is +inf are
// +inf in the sum, so the result's finite domain is the intersection.
func Add(f, g Curve) Curve {
	end := f.last().x
	var tail *big.Rat
	switch {
	case f.tail == nil && g.tail == nil:
		if g.last().x.Cmp(end) < 0 {
			end = g.last().x
		}
	case f.tail == nil:
	case g.tail == nil:
		end = g.last().x
	default:
		end = nil // both finite everywhere
		tail = new(big.Rat).Add(f.tail, g.tail)
	}
	var pts []point
	for _, x := range breakXs(f, g) {
		if end != nil && x.Cmp(end) > 0 {
			break
		}
		fv, ok1 := f.Eval(x)
		gv, ok2 := g.Eval(x)
		if !ok1 || !ok2 {
			break
		}
		pts = append(pts, point{x: new(big.Rat).Set(x), y: new(big.Rat).Add(fv, gv)})
	}
	return normalize(pts, tail)
}

// Sub returns f - g pointwise on g's finite domain (g must be finite wherever
// f is; used for residual service curves beta - alpha where alpha is a
// finite arrival curve). Negative values are allowed in the result; callers
// clamp with MaxZero.
func Sub(f, g Curve) Curve {
	if g.tail == nil {
		panic("netcalc: Sub requires a finite subtrahend")
	}
	var pts []point
	end := (*big.Rat)(nil)
	if f.tail == nil {
		end = f.last().x
	}
	for _, x := range breakXs(f, g) {
		if end != nil && x.Cmp(end) > 0 {
			break
		}
		fv, _ := f.Eval(x)
		gv, _ := g.Eval(x)
		pts = append(pts, point{x: new(big.Rat).Set(x), y: new(big.Rat).Sub(fv, gv)})
	}
	var tail *big.Rat
	if f.tail != nil {
		tail = new(big.Rat).Sub(f.tail, g.tail)
	}
	return normalize(pts, tail)
}

// crossing returns the abscissa in (a, b) where the two linear pieces of f
// and g over [a, b] cross sign, or nil. fa, ga are values at a; fb, gb at b.
func crossing(a, b, fa, ga, fb, gb *big.Rat) *big.Rat {
	da := new(big.Rat).Sub(fa, ga)
	db := new(big.Rat).Sub(fb, gb)
	if da.Sign() == 0 || db.Sign() == 0 || da.Sign() == db.Sign() {
		return nil
	}
	// x = a + (b-a) * da / (da - db)
	t := new(big.Rat).Sub(da, db)
	t.Quo(da, t)
	w := new(big.Rat).Sub(b, a)
	return t.Mul(t, w).Add(t, a)
}

// minmax computes the pointwise min (useMin) or max of f and g, inserting
// breakpoints where the curves cross. Min requires both tails finite (an
// interior jump to +inf would make the minimum discontinuous mid-domain,
// which the representation cannot hold); Max supports +inf tails.
func minmax(f, g Curve, useMin bool) Curve {
	if useMin && (f.tail == nil || g.tail == nil) {
		panic("netcalc: Min requires finite-tailed curves")
	}
	// Max: once either curve is +inf, the max is +inf. The result's finite
	// region ends at the earlier nil-tail boundary.
	end := (*big.Rat)(nil)
	var tail *big.Rat
	hasTail := true
	if f.tail == nil || g.tail == nil {
		if f.tail == nil {
			end = f.last().x
		}
		if g.tail == nil && (end == nil || g.last().x.Cmp(end) < 0) {
			end = g.last().x
		}
		hasTail = false
	}
	xs := breakXs(f, g)
	var pts []point
	var prevX, prevFV, prevGV *big.Rat
	for _, x := range xs {
		if end != nil && x.Cmp(end) > 0 {
			break
		}
		fv, _ := f.Eval(x)
		gv, _ := g.Eval(x)
		if prevX != nil {
			if cx := crossing(prevX, x, prevFV, prevGV, fv, gv); cx != nil {
				cv, _ := f.Eval(cx)
				pts = append(pts, point{x: cx, y: cv})
			}
		}
		y := fv
		if (gv.Cmp(fv) < 0) == useMin {
			y = gv
		}
		pts = append(pts, point{x: new(big.Rat).Set(x), y: new(big.Rat).Set(y)})
		prevX, prevFV, prevGV = x, fv, gv
	}
	if !hasTail {
		return normalize(pts, nil)
	}
	// Both tails finite: past the last shared breakpoint both curves are
	// affine; they cross at most once more.
	lastX := pts[len(pts)-1].x
	fv, _ := f.Eval(lastX)
	gv, _ := g.Eval(lastX)
	// Evaluate both one unit further to reuse the segment-crossing helper.
	step := new(big.Rat).Add(lastX, ratI(1))
	fv2, _ := f.Eval(step)
	gv2, _ := g.Eval(step)
	df := new(big.Rat).Sub(fv2, fv)
	dg := new(big.Rat).Sub(gv2, gv)
	diff0 := new(big.Rat).Sub(fv, gv)
	dd := new(big.Rat).Sub(df, dg)
	if diff0.Sign() != 0 && dd.Sign() != 0 && diff0.Sign() != dd.Sign() {
		// Lines cross at lastX + (-diff0 / dd); insert the kink if it is
		// strictly ahead.
		off := new(big.Rat).Neg(diff0)
		off.Quo(off, dd)
		if off.Sign() > 0 {
			cx := new(big.Rat).Add(lastX, off)
			cv, _ := f.Eval(cx)
			pts = append(pts, point{x: cx, y: cv})
		}
	}
	// Tail slope: the smaller (min) or larger (max) of the two tail rates.
	tail = new(big.Rat).Set(f.tail)
	if (g.tail.Cmp(f.tail) < 0) == useMin {
		tail.Set(g.tail)
	}
	return normalize(pts, tail)
}

// Min returns the pointwise minimum. Both curves must have finite tails
// (arrival-curve territory: the min of token buckets).
func Min(f, g Curve) Curve { return minmax(f, g, true) }

// Max returns the pointwise maximum (+inf regions win).
func Max(f, g Curve) Curve { return minmax(f, g, false) }

// MaxZero clamps a curve at zero from below: [f]^+ = max(f, 0). This is the
// non-decreasing closure step of residual service curves [beta - alpha]^+.
func MaxZero(f Curve) Curve { return Max(f, Zero()) }

// ConvolveConcave returns the (min,+) convolution of two concave curves with
// f(0) = g(0) = 0, which collapses to the pointwise minimum — the standard
// identity for concave arrival curves.
func ConvolveConcave(f, g Curve) Curve { return Min(f, g) }

// segment is a (width, slope) run used by the convex convolution; a nil
// slope marks the jump to +inf.
type segment struct {
	width *big.Rat // nil = unbounded (the tail)
	slope *big.Rat
}

// segments decomposes a curve into its ordered (width, slope) runs,
// including the tail as a final unbounded segment.
func segments(c Curve) []segment {
	var segs []segment
	for i := 0; i+1 < len(c.pts); i++ {
		w := new(big.Rat).Sub(c.pts[i+1].x, c.pts[i].x)
		segs = append(segs, segment{width: w, slope: c.slopeAt(i)})
	}
	segs = append(segs, segment{width: nil, slope: c.tail})
	return segs
}

// ConvolveConvex returns the (min,+) convolution of two convex curves with
// f(0+) = g(0+) = 0: concatenate both curves' slope runs in ascending slope
// order. Rate-latency convolution beta_{R1,L1} (x) beta_{R2,L2} =
// beta_{min(R1,R2), L1+L2} is the special case.
func ConvolveConvex(f, g Curve) Curve {
	if f.pts[0].y.Sign() != 0 || g.pts[0].y.Sign() != 0 {
		panic("netcalc: convex convolution requires curves starting at 0")
	}
	segs := append(segments(f), segments(g)...)
	// The result's tail rate is the smaller of the two tail rates (nil =
	// +inf loses to any finite rate; two nils stay nil). Finite segments
	// with slope above the tail rate are pushed past the tail's unbounded
	// run and never materialize.
	var tail *big.Rat
	switch {
	case f.tail == nil && g.tail == nil:
		tail = nil
	case f.tail == nil:
		tail = g.tail
	case g.tail == nil:
		tail = f.tail
	default:
		tail = f.tail
		if g.tail.Cmp(tail) < 0 {
			tail = g.tail
		}
	}
	var finite []segment
	for _, s := range segs {
		if s.width == nil {
			continue
		}
		if tail != nil && s.slope.Cmp(tail) >= 0 {
			continue
		}
		finite = append(finite, s)
	}
	sort.SliceStable(finite, func(i, j int) bool { return finite[i].slope.Cmp(finite[j].slope) < 0 })
	pts := []point{{x: new(big.Rat), y: new(big.Rat)}}
	x, y := new(big.Rat), new(big.Rat)
	for _, s := range finite {
		x = new(big.Rat).Add(x, s.width)
		dy := new(big.Rat).Mul(s.width, s.slope)
		y = new(big.Rat).Add(y, dy)
		pts = append(pts, point{x: x, y: y})
	}
	return normalize(pts, tail)
}

// Deconvolve returns the exact (min,+) deconvolution
// (alpha (/) beta)(t) = sup_u (alpha(t+u) - beta(u)) — the tight arrival
// curve of a flow with arrival curve alpha after crossing a server with
// service curve beta. alpha must be concave with a finite tail, beta
// convex. The boolean is false when the output is unbounded (the flow's
// sustained rate exceeds the service rate). Token-bucket through
// rate-latency is the special case gamma_{r,b} (/) beta_{R,L} =
// gamma_{r, b+r*L}.
//
// The map (t,u) -> alpha(t+u) - beta(u) is jointly concave, so the result
// is concave PWL; its kinks occur where the optimal u regime changes, i.e.
// at t = a_i - b_j for breakpoints a_i of alpha and b_j of beta. Computing
// the exact sup at each such candidate t and interpolating is exact.
func Deconvolve(alpha, beta Curve) (Curve, bool) {
	if beta.tail != nil && alpha.tail.Cmp(beta.tail) > 0 {
		return Curve{}, false
	}
	var ts []*big.Rat
	seen := map[string]bool{}
	add := func(t *big.Rat) {
		if t.Sign() < 0 || seen[t.RatString()] {
			return
		}
		seen[t.RatString()] = true
		ts = append(ts, t)
	}
	add(new(big.Rat))
	for _, a := range alpha.pts {
		for _, b := range beta.pts {
			add(new(big.Rat).Sub(a.x, b.x))
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Cmp(ts[j]) < 0 })
	pts := make([]point, 0, len(ts))
	for _, t := range ts {
		pts = append(pts, point{x: t, y: supShiftMinusBeta(alpha, beta, t)})
	}
	return normalize(pts, new(big.Rat).Set(alpha.tail)), true
}

// supShiftMinusBeta computes sup_{u>=0} (alpha(t+u) - beta(u)) for a fixed
// shift t, assuming alpha's rate does not exceed beta's. The objective is
// concave in u with kinks where t+u hits an alpha breakpoint or u hits a
// beta breakpoint, so the sup sits at one of those candidates.
func supShiftMinusBeta(alpha, beta Curve, t *big.Rat) *big.Rat {
	best := (*big.Rat)(nil)
	consider := func(u *big.Rat) {
		if u.Sign() < 0 {
			return
		}
		bv, ok := beta.Eval(u)
		if !ok {
			return // beta is +inf here: objective is -inf
		}
		av, _ := alpha.Eval(new(big.Rat).Add(t, u))
		d := new(big.Rat).Sub(av, bv)
		if best == nil || d.Cmp(best) > 0 {
			best = d
		}
	}
	for _, b := range beta.pts {
		consider(b.x)
	}
	for _, a := range alpha.pts {
		consider(new(big.Rat).Sub(a.x, t))
	}
	return best
}

// VDev returns the maximum vertical deviation sup_t (alpha(t) - beta(t)) —
// the backlog bound — for concave alpha (finite tail) and convex beta. ok is
// false when the deviation is unbounded.
func VDev(alpha, beta Curve) (*big.Rat, bool) {
	if beta.tail != nil && alpha.tail.Cmp(beta.tail) > 0 {
		return nil, false
	}
	best := new(big.Rat)
	consider := func(x *big.Rat) {
		av, ok1 := alpha.Eval(x)
		bv, ok2 := beta.Eval(x)
		if !ok1 || !ok2 {
			return
		}
		d := new(big.Rat).Sub(av, bv)
		if d.Cmp(best) > 0 {
			best = d
		}
	}
	// alpha - beta is concave, so the sup sits at a breakpoint of either
	// curve (or at 0+, covered since both curves have an x=0 breakpoint).
	// Past a nil-tail beta's last breakpoint the deviation is -inf.
	for _, p := range alpha.pts {
		consider(p.x)
	}
	for _, p := range beta.pts {
		consider(p.x)
	}
	return best, true
}

// betaInv returns inf{ s : beta(s) >= y } for convex nondecreasing beta; ok
// is false when no such s exists (beta plateaus below y).
func betaInv(beta Curve, y *big.Rat) (*big.Rat, bool) {
	if y.Sign() <= 0 {
		return new(big.Rat), true
	}
	for i, p := range beta.pts {
		if p.y.Cmp(y) >= 0 {
			// Reached within segment i-1 (or exactly at a breakpoint).
			a := beta.pts[i-1] // i > 0: pts[0].y = 0 < y
			s := beta.slopeAt(i - 1)
			if s.Sign() == 0 {
				return new(big.Rat).Set(a.x), true // jumped at a kink; cannot happen mid-plateau
			}
			d := new(big.Rat).Sub(y, a.y)
			d.Quo(d, s)
			return d.Add(d, a.x), true
		}
	}
	lp := beta.last()
	if beta.tail == nil {
		// beta is +inf immediately past lp.x, so the infimum is lp.x.
		return new(big.Rat).Set(lp.x), true
	}
	if beta.tail.Sign() == 0 {
		return nil, false
	}
	d := new(big.Rat).Sub(y, lp.y)
	d.Quo(d, beta.tail)
	return d.Add(d, lp.x), true
}

// HDev returns the maximum horizontal deviation — the delay bound
// sup_t inf{ d : alpha(t) <= beta(t+d) } — for concave alpha (finite tail)
// and convex beta. ok is false when the delay is unbounded.
func HDev(alpha, beta Curve) (*big.Rat, bool) {
	betaRate := beta.tail // nil = +inf
	if betaRate != nil {
		if betaRate.Sign() == 0 {
			// beta plateaus: bounded only if alpha plateaus at or below it.
			if alpha.tail.Sign() > 0 {
				return nil, false
			}
			lv := alpha.last().y
			if bv, ok := beta.Eval(new(big.Rat).Add(beta.last().x, ratI(1))); !ok || lv.Cmp(bv) > 0 {
				if !ok || lv.Sign() > 0 {
					return nil, false
				}
			}
		} else if alpha.tail.Cmp(betaRate) > 0 {
			return nil, false
		}
	}
	// d(t) = betaInv(alpha(t+)) - t is piecewise affine; its kinks occur at
	// alpha's breakpoints and at preimages (under alpha) of beta's
	// breakpoint ordinates. Beyond the last kink d is affine with
	// non-positive slope (alpha rate <= beta rate), so the sup is attained
	// at a candidate — plus one sentinel past the last kink to cover the
	// equal-rates plateau.
	var cands []*big.Rat
	maxC := new(big.Rat)
	add := func(t *big.Rat) {
		if t.Sign() < 0 {
			return
		}
		cands = append(cands, t)
		if t.Cmp(maxC) > 0 {
			maxC = t
		}
	}
	add(new(big.Rat)) // t = 0+: the burst
	for _, p := range alpha.pts {
		add(p.x)
	}
	for _, p := range beta.pts {
		if t, ok := alphaPreimage(alpha, p.y); ok {
			add(t)
		}
	}
	add(new(big.Rat).Add(maxC, ratI(1)))
	best := new(big.Rat)
	for _, t := range cands {
		av, _ := alpha.Eval(t)
		s, ok := betaInv(beta, av)
		if !ok {
			return nil, false
		}
		d := new(big.Rat).Sub(s, t)
		if d.Cmp(best) > 0 {
			best = d
		}
	}
	return best, true
}

// alphaPreimage returns some t with alpha(t+) = y for nondecreasing concave
// alpha; ok is false when y is below alpha(0+) or above alpha's range.
func alphaPreimage(alpha Curve, y *big.Rat) (*big.Rat, bool) {
	if y.Cmp(alpha.pts[0].y) < 0 {
		return nil, false
	}
	for i := 0; i+1 < len(alpha.pts); i++ {
		if alpha.pts[i+1].y.Cmp(y) >= 0 {
			s := alpha.slopeAt(i)
			if s.Sign() == 0 {
				return new(big.Rat).Set(alpha.pts[i].x), true
			}
			d := new(big.Rat).Sub(y, alpha.pts[i].y)
			d.Quo(d, s)
			return d.Add(d, alpha.pts[i].x), true
		}
	}
	lp := alpha.last()
	if alpha.tail.Sign() == 0 {
		if lp.y.Cmp(y) >= 0 {
			return new(big.Rat).Set(lp.x), true
		}
		return nil, false
	}
	d := new(big.Rat).Sub(y, lp.y)
	d.Quo(d, alpha.tail)
	return d.Add(d, lp.x), true
}

// DelayedOutput returns the arrival curve of a flow after a stage that
// delays it by at most d: alpha'(t) = alpha(t + d). This is the TFA output
// propagation rule (a left shift).
func (c Curve) DelayedOutput(d *big.Rat) Curve {
	if d.Sign() <= 0 {
		return c
	}
	if c.tail == nil {
		panic("netcalc: DelayedOutput requires a finite-tailed arrival curve")
	}
	y0, _ := c.Eval(d)
	pts := []point{{x: new(big.Rat), y: y0}}
	for _, p := range c.pts {
		if p.x.Cmp(d) <= 0 {
			continue
		}
		pts = append(pts, point{x: new(big.Rat).Sub(p.x, d), y: new(big.Rat).Set(p.y)})
	}
	return normalize(pts, new(big.Rat).Set(c.tail))
}

// String renders the curve for logs and error messages.
func (c Curve) String() string {
	var sb strings.Builder
	for i, p := range c.pts {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "(%s,%s)", p.x.RatString(), p.y.RatString())
	}
	if c.tail == nil {
		sb.WriteString(" then +inf")
	} else {
		fmt.Fprintf(&sb, " slope %s", c.tail.RatString())
	}
	return sb.String()
}
