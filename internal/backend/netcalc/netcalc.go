package netcalc

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"buffy/internal/lang/typecheck"
	"buffy/internal/telemetry"
)

// Fingerprint names the analytical bound semantics (min-plus arrival /
// service curves, TFA and SFA composition) for the durable result
// store's pipeline fingerprint. Bump it when a curve construction or
// composition change could tighten or loosen any reported bound.
const Fingerprint = "minplus-tfa-sfa-v1"

// Options configure a bound analysis. They mirror the compile-time knobs
// of ir.Options that affect worst-case traffic (the bound is analytical —
// no horizon, no search budgets).
type Options struct {
	// Params are the program's compile-time parameter bindings.
	Params map[string]int64
	// ArrivalsPerStep bounds per-input arrivals per step (default 1); it is
	// the peak rate of unshaped input flows' arrival curves.
	ArrivalsPerStep int
}

// QuerySpec ties the analytical network back to the compiled program: which
// flow the bound query is about and which concrete ir state realizes it.
// The differential harness reads these to compare analytical bounds with
// SMT-witnessed executions.
type QuerySpec struct {
	// Victim is the flow whose bounds answer the query.
	Victim string
	// PathBuffers are the ir buffer instances the victim occupies while in
	// the measured system (its queue at every hop).
	PathBuffers []string
	// DepartureVar names a monitor counting victim departures, when the
	// model declares one ("" otherwise). It gives the differential harness
	// a departure clock for checking the delay bound.
	DepartureVar string
	// DepartureSink names an output buffer that accumulates victim
	// departures ("" when DepartureVar serves instead).
	DepartureSink string
}

// Result is a bound query's answer.
type Result struct {
	Program string
	Victim  string
	// Flows carries every flow's TFA/SFA bounds.
	Flows []FlowBounds
	// Bounded, Delay, Backlog are the victim flow's best bounds: Delay in
	// steps, Backlog in packets. Delay and Backlog are nil when unbounded.
	Bounded bool
	Delay   *big.Rat
	Backlog *big.Rat
	// Spec is the query binding used by the differential harness.
	Spec QuerySpec
	// Duration is the analysis wall-clock (microseconds territory).
	Duration time.Duration
	// CrossCheck is filled when a differential cross-check ran.
	CrossCheck *CrossCheckReport
}

// Analyze lowers a checked program to a feed-forward network, runs the TFA
// and SFA traversals and returns the victim flow's bounds. Unknown
// programs (no registered lowering) and missing parameters are errors;
// an unbounded flow is a negative answer, not an error.
func Analyze(ctx context.Context, info *typecheck.Info, opts Options) (*Result, error) {
	_, sp := telemetry.StartSpan(ctx, "netcalc")
	defer sp.End()
	start := time.Now()
	net, spec, err := Lower(info, opts)
	if err != nil {
		return nil, err
	}
	bounds, err := net.Analyze()
	if err != nil {
		return nil, err
	}
	r := &Result{Program: info.Prog.Name, Victim: spec.Victim, Flows: bounds, Spec: spec}
	for _, fb := range bounds {
		if fb.Flow == spec.Victim {
			r.Bounded = fb.Best.Bounded
			r.Delay = fb.Best.Delay
			r.Backlog = fb.Best.Backlog
		}
	}
	r.Duration = time.Since(start)
	sp.SetAttrs(
		telemetry.String("program", r.Program),
		telemetry.Bool("bounded", r.Bounded))
	return r, nil
}

// CorpusEntry is one qm model instance the netcalc corpus exercises: the
// source, the compile-time configuration, and whether the victim flow is
// expected to be bounded under it. The differential harness checks
// domination on the bounded entries and the honest "unbounded" answer on
// the rest.
type CorpusEntry struct {
	Name      string
	Src       string
	T         int // differential horizon
	Params    map[string]int64
	Arrivals  int // ArrivalsPerStep
	BufferCap int
	MaxBytes  int
	Bounded   bool
}

func missingParam(prog, name string) error {
	return fmt.Errorf("netcalc: program %s needs parameter %s for a bound query", prog, name)
}
