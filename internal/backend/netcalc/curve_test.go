package netcalc

import (
	"math/big"
	"math/rand"
	"testing"
)

// evalOK evaluates and fails the test on +inf.
func evalOK(t *testing.T, c Curve, x *big.Rat) *big.Rat {
	t.Helper()
	v, ok := c.Eval(x)
	if !ok {
		t.Fatalf("Eval(%s) on %s: unexpectedly +inf", x.RatString(), c)
	}
	return v
}

func wantRat(t *testing.T, got *big.Rat, num, den int64) {
	t.Helper()
	if want := big.NewRat(num, den); got.Cmp(want) != 0 {
		t.Fatalf("got %s, want %s", got.RatString(), want.RatString())
	}
}

// TestClosedForms pins the textbook identities the rest of the backend
// leans on.
func TestClosedForms(t *testing.T) {
	// beta_{2,1} (x) beta_{3,2} = beta_{2,3}.
	conv := ConvolveConvex(RateLatency(ratI(2), ratI(1)), RateLatency(ratI(3), ratI(2)))
	for _, tc := range []struct{ x, num, den int64 }{{0, 0, 1}, {3, 0, 1}, {4, 2, 1}, {10, 14, 1}} {
		wantRat(t, evalOK(t, conv, ratI(tc.x)), tc.num, tc.den)
	}

	// gamma_{r,b} (/) beta_{R,L} = gamma_{r, b+rL} (r=2, b=3, R=5, L=2).
	dec, ok := Deconvolve(TokenBucket(ratI(2), ratI(3)), RateLatency(ratI(5), ratI(2)))
	if !ok {
		t.Fatal("deconvolution unexpectedly unbounded")
	}
	wantRat(t, evalOK(t, dec, ratI(0)), 7, 1)  // b + rL = 3 + 4
	wantRat(t, evalOK(t, dec, ratI(3)), 13, 1) // 7 + 2*3

	// vdev(gamma_{r,b}, beta_{R,L}) = b + rL; hdev = L + b/R.
	v, ok := VDev(TokenBucket(ratI(2), ratI(3)), RateLatency(ratI(5), ratI(2)))
	if !ok {
		t.Fatal("vdev unexpectedly unbounded")
	}
	wantRat(t, v, 7, 1)
	h, ok := HDev(TokenBucket(ratI(2), ratI(3)), RateLatency(ratI(5), ratI(2)))
	if !ok {
		t.Fatal("hdev unexpectedly unbounded")
	}
	wantRat(t, h, 13, 5) // 2 + 3/5

	// Pure delay: hdev(alpha, delta_d) = d regardless of alpha's shape.
	h, ok = HDev(TokenBucket(ratI(7), ratI(100)), Delay(ratI(4)))
	if !ok {
		t.Fatal("hdev vs delta unexpectedly unbounded")
	}
	wantRat(t, h, 4, 1)

	// Unbounded detection: sustained rate above service rate.
	if _, ok := VDev(TokenBucket(ratI(3), ratI(1)), RateLatency(ratI(2), ratI(0))); ok {
		t.Fatal("vdev should be unbounded when r > R")
	}
	if _, ok := HDev(TokenBucket(ratI(3), ratI(1)), RateLatency(ratI(2), ratI(0))); ok {
		t.Fatal("hdev should be unbounded when r > R")
	}
	// Equal rates stay bounded.
	h, ok = HDev(TokenBucket(ratI(2), ratI(4)), RateLatency(ratI(2), ratI(1)))
	if !ok {
		t.Fatal("hdev with equal rates should be bounded")
	}
	wantRat(t, h, 3, 1) // L + b/R = 1 + 2
}

// randConcave samples a concave arrival curve as the min of up to 3 token
// buckets with small integer parameters.
func randConcave(rng *rand.Rand) Curve {
	c := TokenBucket(ratI(int64(rng.Intn(5))), ratI(int64(1+rng.Intn(6))))
	for i := rng.Intn(3); i > 0; i-- {
		c = Min(c, TokenBucket(ratI(int64(rng.Intn(5))), ratI(int64(1+rng.Intn(6)))))
	}
	return c
}

// randConvex samples a convex service curve as the convolution of up to 3
// rate-latency curves with small integer parameters.
func randConvex(rng *rand.Rand) Curve {
	c := RateLatency(ratI(int64(1+rng.Intn(5))), ratI(int64(rng.Intn(4))))
	for i := rng.Intn(3); i > 0; i-- {
		c = ConvolveConvex(c, RateLatency(ratI(int64(1+rng.Intn(5))), ratI(int64(rng.Intn(4)))))
	}
	return c
}

// sampleXs is a quarter-integer grid covering every kink the small integer
// parameters above can produce.
func sampleXs() []*big.Rat {
	var xs []*big.Rat
	for i := int64(0); i <= 80; i++ {
		xs = append(xs, rat(i, 4))
	}
	return xs
}

// TestConcaveConvolutionProperties: commutativity, associativity and
// monotonicity of the concave (min,+) convolution on sampled curves.
func TestConcaveConvolutionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := sampleXs()
	for iter := 0; iter < 50; iter++ {
		f, g, h := randConcave(rng), randConcave(rng), randConcave(rng)
		fg := ConvolveConcave(f, g)
		gf := ConvolveConcave(g, f)
		l := ConvolveConcave(fg, h)
		r := ConvolveConcave(f, ConvolveConcave(g, h))
		for _, x := range xs {
			if evalOK(t, fg, x).Cmp(evalOK(t, gf, x)) != 0 {
				t.Fatalf("commutativity broken at %s: f=%s g=%s", x.RatString(), f, g)
			}
			if evalOK(t, l, x).Cmp(evalOK(t, r, x)) != 0 {
				t.Fatalf("associativity broken at %s: f=%s g=%s h=%s", x.RatString(), f, g, h)
			}
			// Monotone: conv never exceeds either operand.
			if v := evalOK(t, fg, x); v.Cmp(evalOK(t, f, x)) > 0 || v.Cmp(evalOK(t, g, x)) > 0 {
				t.Fatalf("conv exceeds an operand at %s: f=%s g=%s", x.RatString(), f, g)
			}
		}
	}
}

// TestConvexConvolutionProperties: associativity plus the defining
// inequality conv(f,g)(x+y) <= f(x) + g(y), with equality attained on the
// integer grid (all kinks are integral for integer parameters).
func TestConvexConvolutionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		f, g, h := randConvex(rng), randConvex(rng), randConvex(rng)
		fg := ConvolveConvex(f, g)
		l := ConvolveConvex(fg, h)
		r := ConvolveConvex(f, ConvolveConvex(g, h))
		for i := int64(0); i <= 20; i++ {
			x := ratI(i)
			lv := evalOK(t, l, x)
			if lv.Cmp(evalOK(t, r, x)) != 0 {
				t.Fatalf("associativity broken at %d: f=%s g=%s h=%s", i, f, g, h)
			}
			// Defining infimum: conv(t) = inf_u f(u) + g(t-u); check <= on
			// every integer split and equality for some split.
			cv := evalOK(t, fg, x)
			attained := false
			for u := int64(0); u <= i; u++ {
				s := new(big.Rat).Add(evalOK(t, f, ratI(u)), evalOK(t, g, ratI(i-u)))
				if cv.Cmp(s) > 0 {
					t.Fatalf("conv above a split at t=%d u=%d: f=%s g=%s", i, u, f, g)
				}
				if cv.Cmp(s) == 0 {
					attained = true
				}
			}
			if !attained {
				t.Fatalf("conv infimum not attained on grid at t=%d: f=%s g=%s", i, f, g)
			}
		}
	}
}

// TestDeconvolutionIdentities: the deconvolution evaluated at 0+ is the
// vertical deviation, and the output curve dominates the input shifted
// through the server (alpha (/) beta >= alpha - "what beta guarantees").
func TestDeconvolutionIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := sampleXs()
	for iter := 0; iter < 50; iter++ {
		alpha, beta := randConcave(rng), randConvex(rng)
		dec, okD := Deconvolve(alpha, beta)
		v, okV := VDev(alpha, beta)
		if okD != okV {
			t.Fatalf("deconv/vdev boundedness disagree: alpha=%s beta=%s", alpha, beta)
		}
		if !okD {
			continue
		}
		if evalOK(t, dec, ratI(0)).Cmp(v) != 0 {
			t.Fatalf("(alpha (/) beta)(0) != vdev: alpha=%s beta=%s", alpha, beta)
		}
		// Definition: dec(t) >= alpha(t+u) - beta(u) for all t, u >= 0.
		for _, x := range xs[:40] {
			dv := evalOK(t, dec, x)
			for u := int64(0); u <= 10; u++ {
				av := evalOK(t, alpha, new(big.Rat).Add(x, ratI(u)))
				bv := evalOK(t, beta, ratI(u))
				if diff := new(big.Rat).Sub(av, bv); dv.Cmp(diff) < 0 {
					t.Fatalf("deconv not dominating at t=%s u=%d: alpha=%s beta=%s", x.RatString(), u, alpha, beta)
				}
			}
		}
	}
}

// TestMinMaxPointwise checks Min/Max against direct evaluation.
func TestMinMaxPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := sampleXs()
	for iter := 0; iter < 50; iter++ {
		f, g := randConcave(rng), randConvex(rng)
		mx := Max(f, g)
		for _, x := range xs {
			fv, gv := evalOK(t, f, x), evalOK(t, g, x)
			want := fv
			if gv.Cmp(fv) > 0 {
				want = gv
			}
			if evalOK(t, mx, x).Cmp(want) != 0 {
				t.Fatalf("max wrong at %s: f=%s g=%s", x.RatString(), f, g)
			}
		}
		f2 := randConcave(rng)
		mn := Min(f, f2)
		for _, x := range xs {
			fv, gv := evalOK(t, f, x), evalOK(t, f2, x)
			want := fv
			if gv.Cmp(fv) < 0 {
				want = gv
			}
			if evalOK(t, mn, x).Cmp(want) != 0 {
				t.Fatalf("min wrong at %s: f=%s g=%s", x.RatString(), f, f2)
			}
		}
	}
}

// TestDelayedOutput: shifting left by d matches evaluating at t + d.
func TestDelayedOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 50; iter++ {
		alpha := randConcave(rng)
		d := rat(int64(rng.Intn(12)), int64(1+rng.Intn(3)))
		shifted := alpha.DelayedOutput(d)
		for i := int64(0); i <= 40; i++ {
			x := rat(i, 2)
			want := evalOK(t, alpha, new(big.Rat).Add(x, d))
			if evalOK(t, shifted, x).Cmp(want) != 0 {
				t.Fatalf("DelayedOutput wrong at %s (d=%s): alpha=%s", x.RatString(), d.RatString(), alpha)
			}
		}
	}
}

// TestDeviationSoundness cross-checks both deviations against their
// defining inequalities on a dense grid: alpha(t) - beta(t) <= vdev for
// every t, and beta(t + hdev + eps) >= alpha(t) for every t (eps absorbs
// infima that are approached but not attained, e.g. against pure delays).
func TestDeviationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	eps := rat(1, 1000)
	for iter := 0; iter < 50; iter++ {
		alpha, beta := randConcave(rng), randConvex(rng)
		if h, ok := HDev(alpha, beta); ok {
			for i := int64(0); i <= 80; i++ {
				x := rat(i, 2)
				av := evalOK(t, alpha, x)
				probe := new(big.Rat).Add(x, h)
				probe.Add(probe, eps)
				if bv, okB := beta.Eval(probe); okB && bv.Cmp(av) < 0 {
					t.Fatalf("hdev %s too small at t=%s: alpha=%s beta=%s",
						h.RatString(), x.RatString(), alpha, beta)
				}
			}
		}
		if v, ok := VDev(alpha, beta); ok {
			for i := int64(0); i <= 80; i++ {
				x := rat(i, 2)
				bv, okB := beta.Eval(x)
				if !okB {
					continue
				}
				if d := new(big.Rat).Sub(evalOK(t, alpha, x), bv); d.Cmp(v) > 0 {
					t.Fatalf("vdev %s too small at t=%s: alpha=%s beta=%s",
						v.RatString(), x.RatString(), alpha, beta)
				}
			}
		}
	}
}
