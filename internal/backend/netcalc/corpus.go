package netcalc

import (
	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/qm"
)

// Corpus returns the standard netcalc model corpus: every qm topology with
// a registered lowering, configured at small horizons the SMT backend can
// exhaust, so the differential harness gets a complete sweep. Bounded marks
// the entries whose victim flow has finite analytical bounds; the others
// are expected to answer "unbounded" (strict priority offers the victim no
// guarantee, and rr/drr fair shares of 1/N are below the integral arrival
// rate of 1).
// NetOptions returns the entry's netcalc analysis options.
func (e CorpusEntry) NetOptions() Options {
	return Options{Params: e.Params, ArrivalsPerStep: e.Arrivals}
}

// IROptions returns the entry's compile options for the differential SMT
// solve. The count buffer model keeps the encoding small; every corpus
// model's behaviour depends only on backlogs, so it is exact here.
func (e CorpusEntry) IROptions() ir.Options {
	return ir.Options{
		T: e.T, Params: e.Params, ArrivalsPerStep: e.Arrivals,
		BufferCap: e.BufferCap, MaxBytes: e.MaxBytes,
		Model: buffer.CountModel{},
	}
}

func Corpus() []CorpusEntry {
	return []CorpusEntry{
		{
			Name: "tbrl", Src: qm.TBRLSrc, T: 6,
			Params:   map[string]int64{"RATE": 1, "BURST": 3, "C": 2},
			Arrivals: 2, BufferCap: 16, Bounded: true,
		},
		{
			Name: "sptandem", Src: qm.SPTandemSrc, T: 5,
			Params:   map[string]int64{"RH": 1, "BH": 2, "RV": 1, "BV": 2, "C": 3},
			Arrivals: 2, BufferCap: 16, Bounded: true,
		},
		{
			Name: "shaper", Src: qm.ShaperSrc, T: 5,
			Params:   map[string]int64{"RATE": 2, "BURST": 2},
			Arrivals: 2, BufferCap: 16, MaxBytes: 1, Bounded: true,
		},
		{
			Name: "delay", Src: qm.DelaySrc, T: 5,
			Arrivals: 1, BufferCap: 8, Bounded: true,
		},
		{
			Name: "sp", Src: qm.SPQuerySrc, T: 4,
			Params:   map[string]int64{"N": 2},
			Arrivals: 1, BufferCap: 8, Bounded: false,
		},
		{
			Name: "rr", Src: qm.RRQuerySrc, T: 4,
			Params:   map[string]int64{"N": 2},
			Arrivals: 1, BufferCap: 8, Bounded: false,
		},
		{
			Name: "drr", Src: qm.DRRSrc, T: 4,
			Params:   map[string]int64{"N": 2, "Q": 2},
			Arrivals: 1, BufferCap: 8, Bounded: false,
		},
	}
}
