package netcalc

import (
	"fmt"
	"math/big"
)

// Mux says how a server arbitrates between the flows that cross it; it
// decides which residual service curve each flow sees.
type Mux int

const (
	// MuxAggregate: FIFO aggregation — all flows share the full service
	// curve and per-flow delay is bounded by the aggregate's delay.
	MuxAggregate Mux = iota
	// MuxPriority: strict priority — a flow's residual service is the
	// server's curve minus the arrival curves of all higher-or-equal
	// priority competitors (blind multiplexing within a priority class).
	MuxPriority
	// MuxGuaranteed: the server dedicates an explicit per-flow service
	// curve (round-robin and DRR latency-rate guarantees).
	MuxGuaranteed
)

// Server is one service element of a feed-forward network.
type Server struct {
	Name string
	Beta Curve
	Mux  Mux
	// Prio maps flow name -> priority for MuxPriority; lower is served
	// first.
	Prio map[string]int
	// Guaranteed maps flow name -> dedicated service curve for
	// MuxGuaranteed.
	Guaranteed map[string]Curve
}

// Flow is a traffic class with a token-bucket-style arrival curve entering
// the network at the first server of its path.
type Flow struct {
	Name  string
	Alpha Curve
	Path  []string // server names, in traversal order
}

// Network is a feed-forward composition of servers and flows.
type Network struct {
	Servers []*Server
	Flows   []*Flow
}

func (n *Network) server(name string) *Server {
	for _, s := range n.Servers {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// MethodBounds is one analysis method's answer for one flow.
type MethodBounds struct {
	Bounded bool
	Delay   *big.Rat // end-to-end delay bound (steps), valid when Bounded
	Backlog *big.Rat // total in-flight backlog bound (packets), valid when Bounded
}

// FlowBounds carries both traversals' answers plus the per-flow best.
type FlowBounds struct {
	Flow     string
	TFA, SFA MethodBounds
	// Best is the pointwise minimum of the bounded methods.
	Best MethodBounds
}

// String renders one method's answer, e.g. "delay<=13/5 backlog<=7".
func (m MethodBounds) String() string {
	if !m.Bounded {
		return "unbounded"
	}
	return fmt.Sprintf("delay<=%s backlog<=%s", m.Delay.RatString(), m.Backlog.RatString())
}

// String renders the flow's answers from both traversals.
func (fb FlowBounds) String() string {
	return fmt.Sprintf("tfa[%s] sfa[%s] best[%s]", fb.TFA, fb.SFA, fb.Best)
}

// Analyze runs both traversals over a feed-forward network and returns
// per-flow bounds. An error means the network itself is malformed (unknown
// server in a path, cyclic topology); an unbounded flow is not an error —
// it is reported as !Bounded.
func (n *Network) Analyze() ([]FlowBounds, error) {
	order, err := n.topoOrder()
	if err != nil {
		return nil, err
	}
	alphas, perHop, err := n.tfaPropagate(order)
	if err != nil {
		return nil, err
	}
	var out []FlowBounds
	for _, f := range n.Flows {
		fb := FlowBounds{Flow: f.Name}
		fb.TFA = tfaBounds(f, perHop)
		fb.SFA = n.sfaBounds(f, alphas)
		fb.Best = bestOf(fb.TFA, fb.SFA)
		out = append(out, fb)
	}
	return out, nil
}

func bestOf(a, b MethodBounds) MethodBounds {
	if !a.Bounded {
		return b
	}
	if !b.Bounded {
		return a
	}
	best := MethodBounds{Bounded: true, Delay: a.Delay, Backlog: a.Backlog}
	if b.Delay.Cmp(best.Delay) < 0 {
		best.Delay = b.Delay
	}
	if b.Backlog.Cmp(best.Backlog) < 0 {
		best.Backlog = b.Backlog
	}
	return best
}

// topoOrder orders servers so that every flow traverses them left to right
// (Kahn's algorithm over consecutive-hop edges). A cycle is an error: TFA
// and SFA as implemented here require feed-forward topologies.
func (n *Network) topoOrder() ([]*Server, error) {
	indeg := make(map[string]int, len(n.Servers))
	succ := make(map[string][]string)
	for _, s := range n.Servers {
		indeg[s.Name] = 0
	}
	for _, f := range n.Flows {
		for i, h := range f.Path {
			if n.server(h) == nil {
				return nil, fmt.Errorf("netcalc: flow %q crosses unknown server %q", f.Name, h)
			}
			if i > 0 {
				succ[f.Path[i-1]] = append(succ[f.Path[i-1]], h)
				indeg[h]++
			}
		}
	}
	var order []*Server
	var ready []string
	for _, s := range n.Servers {
		if indeg[s.Name] == 0 {
			ready = append(ready, s.Name)
		}
	}
	for len(ready) > 0 {
		h := ready[0]
		ready = ready[1:]
		order = append(order, n.server(h))
		for _, nx := range succ[h] {
			if indeg[nx]--; indeg[nx] == 0 {
				ready = append(ready, nx)
			}
		}
	}
	if len(order) != len(n.Servers) {
		return nil, fmt.Errorf("netcalc: cyclic topology (feed-forward required)")
	}
	return order, nil
}

// hopKey identifies a (flow, server) hop.
type hopKey struct{ flow, server string }

// hopBounds is a flow's per-hop TFA result.
type hopBounds struct {
	bounded bool
	delay   *big.Rat // delay bound through this hop
	backlog *big.Rat // this flow's backlog bound inside this hop
}

// tfaPropagate walks the servers in topological order, computing each
// flow's arrival curve at each hop (the TFA output-propagation rule:
// alpha' (t) = alpha(t + d_hop)) and the per-hop delay/backlog bounds.
//
// It returns the per-hop arrival curves (used by SFA for cross traffic)
// and the per-hop bounds (used for the TFA totals). An unbounded hop stops
// propagation for the flows it carries: their curves at later hops are
// absent and every flow through those hops reports unbounded.
func (n *Network) tfaPropagate(order []*Server) (map[hopKey]Curve, map[hopKey]hopBounds, error) {
	alphas := make(map[hopKey]Curve)
	perHop := make(map[hopKey]hopBounds)
	// hopIndex[flow][server] = position of server in the flow's path.
	hopIndex := make(map[string]map[string]int)
	for _, f := range n.Flows {
		hopIndex[f.Name] = make(map[string]int)
		for i, h := range f.Path {
			hopIndex[f.Name][h] = i
		}
		if len(f.Path) > 0 {
			alphas[hopKey{f.Name, f.Path[0]}] = f.Alpha
		}
	}
	for _, s := range order {
		// Flows crossing this server with a known arrival curve.
		type crossing struct {
			f     *Flow
			alpha Curve
		}
		var here []crossing
		for _, f := range n.Flows {
			if _, ok := hopIndex[f.Name][s.Name]; !ok {
				continue
			}
			a, ok := alphas[hopKey{f.Name, s.Name}]
			if !ok {
				continue // upstream hop was unbounded; flow already poisoned
			}
			here = append(here, crossing{f, a})
		}
		if len(here) == 0 {
			continue
		}
		// Aggregate delay (FIFO) is shared; residual-based muxes get
		// per-flow delays.
		var aggDelay *big.Rat
		aggBounded := true
		if s.Mux == MuxAggregate {
			agg := here[0].alpha
			for _, c := range here[1:] {
				agg = Add(agg, c.alpha)
			}
			aggDelay, aggBounded = HDev(agg, s.Beta)
		}
		for _, c := range here {
			hb := hopBounds{}
			switch s.Mux {
			case MuxAggregate:
				if aggBounded {
					// Per-flow backlog under FIFO: every packet of the flow
					// has been in the hop for at most the aggregate delay.
					if v, ok := c.alpha.Eval(aggDelay); ok {
						hb = hopBounds{bounded: true, delay: aggDelay, backlog: v}
					}
				}
			case MuxPriority, MuxGuaranteed:
				resid, ok := n.residual(s, c.f, alphas)
				if ok {
					d, okD := HDev(c.alpha, resid)
					q, okQ := VDev(c.alpha, resid)
					if okD && okQ {
						hb = hopBounds{bounded: true, delay: d, backlog: q}
					}
				}
			}
			perHop[hopKey{c.f.Name, s.Name}] = hb
			// Propagate to the flow's next hop.
			i := hopIndex[c.f.Name][s.Name]
			if hb.bounded && i+1 < len(c.f.Path) {
				alphas[hopKey{c.f.Name, c.f.Path[i+1]}] = c.alpha.DelayedOutput(hb.delay)
			}
		}
	}
	return alphas, perHop, nil
}

// residual returns the service curve flow f sees at server s, given every
// flow's arrival curve at that hop. ok is false when a competitor's curve
// is unknown (poisoned upstream) or the mux has no guarantee for f.
//
// Both MuxAggregate and MuxPriority use the blind-multiplexing residual
// [beta - alpha_cross]^+, which is valid under any work-conserving
// arbitration: for aggregate servers the competitors are all other flows
// at the server, for priority servers those at a priority at or above f's
// (equal priority stays conservative — no FIFO assumption within a class).
func (n *Network) residual(s *Server, f *Flow, alphas map[hopKey]Curve) (Curve, bool) {
	if s.Mux == MuxGuaranteed {
		g, ok := s.Guaranteed[f.Name]
		return g, ok
	}
	myPrio := 0
	if s.Mux == MuxPriority {
		p, ok := s.Prio[f.Name]
		if !ok {
			return Curve{}, false
		}
		myPrio = p
	}
	var cross *Curve
	for _, g := range n.Flows {
		if g.Name == f.Name {
			continue
		}
		if !crossesServer(g, s.Name) {
			continue
		}
		if s.Mux == MuxPriority {
			p, competes := s.Prio[g.Name]
			if !competes || p > myPrio {
				continue
			}
		}
		a, known := alphas[hopKey{g.Name, s.Name}]
		if !known {
			return Curve{}, false
		}
		if cross == nil {
			c := a
			cross = &c
		} else {
			c := Add(*cross, a)
			cross = &c
		}
	}
	if cross == nil {
		return s.Beta, true
	}
	return MaxZero(Sub(s.Beta, *cross)), true
}

func crossesServer(f *Flow, server string) bool {
	for _, h := range f.Path {
		if h == server {
			return true
		}
	}
	return false
}

// tfaBounds sums a flow's per-hop bounds along its path.
func tfaBounds(f *Flow, perHop map[hopKey]hopBounds) MethodBounds {
	delay := new(big.Rat)
	backlog := new(big.Rat)
	for _, h := range f.Path {
		hb := perHop[hopKey{f.Name, h}]
		if !hb.bounded {
			return MethodBounds{}
		}
		delay.Add(delay, hb.delay)
		backlog.Add(backlog, hb.backlog)
	}
	return MethodBounds{Bounded: true, Delay: delay, Backlog: backlog}
}

// sfaBounds computes the flow's end-to-end service curve — the (min,+)
// convolution of its per-hop residuals — and takes a single deviation
// against the flow's ingress arrival curve. Compared to TFA this pays the
// flow's burst only once, which is what makes SFA tighter on tandems.
func (n *Network) sfaBounds(f *Flow, alphas map[hopKey]Curve) MethodBounds {
	if len(f.Path) == 0 {
		return MethodBounds{Bounded: true, Delay: new(big.Rat), Backlog: new(big.Rat)}
	}
	var e2e *Curve
	for _, h := range f.Path {
		s := n.server(h)
		resid, ok := n.residual(s, f, alphas)
		if !ok {
			return MethodBounds{}
		}
		if e2e == nil {
			e2e = &resid
		} else {
			c := ConvolveConvex(*e2e, resid)
			e2e = &c
		}
	}
	d, okD := HDev(f.Alpha, *e2e)
	q, okQ := VDev(f.Alpha, *e2e)
	if !okD || !okQ {
		return MethodBounds{}
	}
	return MethodBounds{Bounded: true, Delay: d, Backlog: q}
}
