package netcalc

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
	"buffy/internal/telemetry"
)

// ErrDisagreement is the hard failure of the differential harness: the SMT
// backend exhibited a concrete execution whose backlog or delay exceeds
// the analytical bound. Either the lowering or the min-plus algebra is
// unsound for this model — never ignore it (mirrors portfolio.ErrDisagreement).
var ErrDisagreement = errors.New("netcalc: analytical bound violated by an SMT witness")

// CrossCheckOptions configure the differential solve: the same compile
// knobs an smtbe run would use (T is the exhaustive horizon) plus solver
// search options.
type CrossCheckOptions struct {
	IR     ir.Options
	Solver solver.Options
}

// CrossCheckReport records a differential cross-check outcome.
type CrossCheckReport struct {
	// Checked is false when the bound is unbounded — nothing to dominate.
	Checked bool `json:"checked"`
	// Status: "dominated" (UNSAT: no execution up to horizon T beats the
	// bound), "disagreement" (SAT: a concrete witness exceeds it),
	// "unknown" (search budget exhausted), or "skipped-unbounded".
	Status string `json:"status"`
	// T is the exhaustively-checked horizon.
	T int `json:"t,omitempty"`
	// BacklogFloor is the integer threshold the SMT side tried to exceed:
	// a concrete backlog > floor(bound) would disprove domination.
	BacklogFloor int64 `json:"backlog_floor,omitempty"`
	// DelayFloor is the delay threshold, -1 when the model has no
	// departure clock to check delays against.
	DelayFloor int64 `json:"delay_floor,omitempty"`
	// Witness describes the violating execution on disagreement.
	Witness string `json:"witness,omitempty"`
	// Stop is the solver's stop reason when Status is "unknown".
	Stop string `json:"stop,omitempty"`
	// Duration is the differential solve wall-clock.
	Duration time.Duration `json:"duration_ns"`
}

// floorInt64 returns floor(r) for a non-negative rational bound.
func floorInt64(r *big.Rat) int64 {
	return new(big.Int).Div(r.Num(), r.Denom()).Int64()
}

// CrossCheck proves, at horizon T, that the analytical bounds dominate
// every concrete execution the SMT backend can produce: it asserts the
// program's assume()s plus "some step exceeds the bound" and expects
// UNSAT.
//
// Backlog: the victim's in-system packet count at any step — the sum of
// its path buffers' backlogs — must not exceed floor(Backlog). Delay: by
// the virtual-delay characterization, delay <= d iff the cumulative
// arrivals A(t) have departed by t+d, so the harness searches for a step t
// with A(t) > D(t+d), where D is the model's departure clock (a monitor or
// an accumulating sink buffer) and A(t) = path backlog + D(t).
//
// A SAT outcome returns ErrDisagreement (wrapped, with the witness); the
// report is attached to r.CrossCheck in every case.
func CrossCheck(ctx context.Context, info *typecheck.Info, r *Result, opts CrossCheckOptions) (*CrossCheckReport, error) {
	cctx, sp := telemetry.StartSpan(ctx, "netcalc.crosscheck")
	defer sp.End()
	start := time.Now()
	report := &CrossCheckReport{T: opts.IR.T, DelayFloor: -1}
	r.CrossCheck = report
	if !r.Bounded {
		report.Status = "skipped-unbounded"
		report.Duration = time.Since(start)
		return report, nil
	}
	report.Checked = true
	report.BacklogFloor = floorInt64(r.Backlog)

	sv := solver.New(opts.Solver)
	b := sv.Builder()
	c, err := ir.CompileContext(cctx, info, b, opts.IR)
	if err != nil {
		return report, err
	}
	for _, a := range c.Assumes {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		sv.Assert(a)
	}
	bufCtx := &buffer.Ctx{B: c.B, Assume: func(*term.Term) {}, Prefix: "netcalc"}

	// pathBacklog(t): the victim's in-system packets at the end of step t.
	pathBacklog := func(t int) (*term.Term, error) {
		var sum *term.Term
		for _, name := range r.Spec.PathBuffers {
			st, ok := c.Steps[t].Buffers[name]
			if !ok {
				return nil, fmt.Errorf("netcalc: lowering names buffer %q absent from compiled program %s", name, r.Program)
			}
			bl := st.BacklogP(bufCtx)
			if sum == nil {
				sum = bl
			} else {
				sum = b.Add(sum, bl)
			}
		}
		if sum == nil {
			return nil, fmt.Errorf("netcalc: lowering for %s has no path buffers", r.Program)
		}
		return sum, nil
	}
	// departures(t): the victim's cumulative departure count after step t.
	departures := func(t int) (*term.Term, error) {
		if r.Spec.DepartureVar != "" {
			v, ok := c.Steps[t].Vars[r.Spec.DepartureVar]
			if !ok {
				return nil, fmt.Errorf("netcalc: lowering names monitor %q absent from compiled program %s", r.Spec.DepartureVar, r.Program)
			}
			return v, nil
		}
		st, ok := c.Steps[t].Buffers[r.Spec.DepartureSink]
		if !ok {
			return nil, fmt.Errorf("netcalc: lowering names sink %q absent from compiled program %s", r.Spec.DepartureSink, r.Program)
		}
		return st.BacklogP(bufCtx), nil
	}

	T := len(c.Steps)
	var viols []*term.Term
	backlogs := make([]*term.Term, T)
	for t := 0; t < T; t++ {
		pb, err := pathBacklog(t)
		if err != nil {
			return report, err
		}
		backlogs[t] = pb
		// Backlog violation: path backlog > floor(bound).
		viols = append(viols, b.Lt(b.IntConst(report.BacklogFloor), pb))
	}
	hasClock := r.Spec.DepartureVar != "" || r.Spec.DepartureSink != ""
	var deps []*term.Term
	if hasClock {
		d := floorInt64(r.Delay)
		report.DelayFloor = d
		deps = make([]*term.Term, T)
		for t := 0; t < T; t++ {
			dt, err := departures(t)
			if err != nil {
				return report, err
			}
			deps[t] = dt
		}
		// Delay violation at t: traffic counted into the system by step t
		// (path backlog + departures so far) has not fully departed by
		// step t+d. Only steps with t+d inside the horizon are conclusive.
		for t := 0; t+int(d) < T; t++ {
			arrived := b.Add(backlogs[t], deps[t])
			viols = append(viols, b.Lt(deps[t+int(d)], arrived))
		}
	}
	sv.Assert(b.Or(viols...))

	outcome := sv.CheckContextNoModel(cctx)
	report.Duration = time.Since(start)
	switch outcome {
	case solver.Unsat:
		report.Status = "dominated"
		sp.SetAttrs(telemetry.String("status", report.Status))
		return report, nil
	case solver.Unknown:
		report.Status = "unknown"
		report.Stop = sv.StopReason().String()
		sp.SetAttrs(telemetry.String("status", report.Status))
		if err := ctx.Err(); err != nil {
			return report, err
		}
		return report, nil
	}
	// SAT: decode the witness for the error message.
	sv.SnapshotModel()
	report.Status = "disagreement"
	sp.SetAttrs(telemetry.String("status", report.Status))
	worstBacklog, worstStep := int64(-1), -1
	for t := 0; t < T; t++ {
		if v := sv.IntValue(backlogs[t]); v > worstBacklog {
			worstBacklog, worstStep = v, t
		}
	}
	report.Witness = fmt.Sprintf("path backlog %d at step %d (bound %s)",
		worstBacklog, worstStep, r.Backlog.RatString())
	if hasClock {
		for t := 0; t+int(report.DelayFloor) < T; t++ {
			arrived := sv.IntValue(backlogs[t]) + sv.IntValue(deps[t])
			departed := sv.IntValue(deps[t+int(report.DelayFloor)])
			if arrived > departed {
				report.Witness += fmt.Sprintf("; %d packets arrived by step %d, only %d departed by step %d (delay bound %s)",
					arrived, t, departed, t+int(report.DelayFloor), r.Delay.RatString())
				break
			}
		}
	}
	return report, fmt.Errorf("%w: %s on %s at T=%d", ErrDisagreement, report.Witness, r.Program, T)
}
