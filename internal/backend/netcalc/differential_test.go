package netcalc_test

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"

	"buffy/internal/backend/netcalc"
	"buffy/internal/qm"
)

// TestCorpusDomination is the headline differential: on every bounded
// corpus instance the analytical bound must dominate any concrete
// backlog/delay the SMT backend can witness at horizon T (UNSAT on the
// violation query), and every entry's boundedness must match expectation.
func TestCorpusDomination(t *testing.T) {
	for _, e := range netcalc.Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			info, err := qm.Load(e.Src)
			if err != nil {
				t.Fatal(err)
			}
			r, err := netcalc.Analyze(context.Background(), info, e.NetOptions())
			if err != nil {
				t.Fatal(err)
			}
			if r.Bounded != e.Bounded {
				t.Fatalf("bounded = %v, corpus expects %v", r.Bounded, e.Bounded)
			}
			report, err := netcalc.CrossCheck(context.Background(), info, r,
				netcalc.CrossCheckOptions{IR: e.IROptions()})
			if err != nil {
				t.Fatalf("cross-check: %v", err)
			}
			if !e.Bounded {
				if report.Status != "skipped-unbounded" {
					t.Fatalf("unbounded entry status = %q", report.Status)
				}
				return
			}
			if report.Status != "dominated" {
				t.Fatalf("status = %q (stop: %s, witness: %s)", report.Status, report.Stop, report.Witness)
			}
			t.Logf("%s: delay <= %s steps, backlog <= %s pkts, dominated at T=%d in %v",
				e.Name, r.Delay.RatString(), r.Backlog.RatString(), report.T, report.Duration)
		})
	}
}

// TestDisagreementIsHardError plants an artificially tightened bound and
// expects the harness to surface ErrDisagreement: the SMT side can reach a
// victim backlog of 1 in the sptandem queues (burst into vq1 while the
// high-priority flow takes the slot), so a claimed bound of 0 must be
// refuted.
func TestDisagreementIsHardError(t *testing.T) {
	var entry netcalc.CorpusEntry
	for _, e := range netcalc.Corpus() {
		if e.Name == "sptandem" {
			entry = e
		}
	}
	info, err := qm.Load(entry.Src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := netcalc.Analyze(context.Background(), info, entry.NetOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Bounded {
		t.Fatal("sptandem should be bounded")
	}
	r.Backlog = new(big.Rat) // claim an impossible backlog bound of 0
	report, err := netcalc.CrossCheck(context.Background(), info, r,
		netcalc.CrossCheckOptions{IR: entry.IROptions()})
	if !errors.Is(err, netcalc.ErrDisagreement) {
		t.Fatalf("want ErrDisagreement, got %v (status %q)", err, report.Status)
	}
	if report.Status != "disagreement" || report.Witness == "" {
		t.Fatalf("report = %+v", report)
	}
}

// TestBoundLatency asserts the acceptance criterion: every corpus model
// answers its bound query via netcalc in under a millisecond.
func TestBoundLatency(t *testing.T) {
	for _, e := range netcalc.Corpus() {
		info, err := qm.Load(e.Src)
		if err != nil {
			t.Fatal(err)
		}
		// Warm once (first-call allocations), then measure.
		if _, err := netcalc.Analyze(context.Background(), info, e.NetOptions()); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		r, err := netcalc.Analyze(context.Background(), info, e.NetOptions())
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed >= time.Millisecond {
			t.Errorf("%s: bound query took %v, want < 1ms", e.Name, elapsed)
		}
		t.Logf("%s: %v (bounded=%v)", e.Name, elapsed, r.Bounded)
	}
}

// TestUnsupportedProgram: programs without a lowering get a clear error.
func TestUnsupportedProgram(t *testing.T) {
	info, err := qm.Load(qm.FQBuggySrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netcalc.Analyze(context.Background(), info, netcalc.Options{}); err == nil {
		t.Fatal("fq has no lowering; Analyze should error")
	}
}
