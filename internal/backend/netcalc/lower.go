package netcalc

import (
	"fmt"
	"math/big"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/typecheck"
)

// Lower maps a checked qm program to its feed-forward network and query
// binding. The registry is keyed by program name, so query-instrumented
// variants (rr_query.buffy declares rr, sp_query.buffy declares sp) lower
// identically to their plain versions.
//
// Soundness notes per topology live with each lowering; the shared rules:
//
//   - An unshaped input buffer receiving at most A packets per step has
//     arrival curve gamma_{A,A}: A*k + A over any window of k steps, with
//     the +A absorbing the instantaneous batch at a step boundary.
//   - A credit regulator (gain R per step, cap B, spend on release) releases
//     at most B + R*k packets in any k-step window: curve gamma_{R,B}.
//   - Buffer drops only discard traffic, which never increases a backlog or
//     delay witness, so bounds for the lossless fluid network dominate the
//     capacity-clamped discrete system.
func Lower(info *typecheck.Info, opts Options) (*Network, QuerySpec, error) {
	f, ok := lowerings[info.Prog.Name]
	if !ok {
		return nil, QuerySpec{}, fmt.Errorf(
			"netcalc: no bound lowering for program %q (supported: delay, drr, rr, shaper, sp, sptandem, tbrl)",
			info.Prog.Name)
	}
	return f(info, opts)
}

type lowering func(*typecheck.Info, Options) (*Network, QuerySpec, error)

var lowerings = map[string]lowering{
	"tbrl":     lowerTBRL,
	"sptandem": lowerSPTandem,
	"shaper":   lowerShaper,
	"delay":    lowerDelay,
	"sp":       lowerSP,
	"rr":       lowerRR,
	"drr":      lowerDRR,
}

// arrivals returns the effective per-step arrival bound (ir's default: 1).
func (o Options) arrivals() int64 {
	if o.ArrivalsPerStep <= 0 {
		return 1
	}
	return int64(o.ArrivalsPerStep)
}

func (o Options) param(prog, name string) (int64, error) {
	v, ok := o.Params[name]
	if !ok {
		return 0, missingParam(prog, name)
	}
	return v, nil
}

// hasMonitor reports whether the program declares a monitor of that name —
// lowerings use it to bind a departure clock when the query variant of a
// model provides one.
func hasMonitor(info *typecheck.Info, name string) bool {
	for _, d := range info.Prog.Decls {
		if d.Storage == ast.Monitor && d.Name == name {
			return true
		}
	}
	return false
}

// lowerTBRL: token-bucket regulator (RATE, BURST) feeding a constant-rate
// server of C packets per step. The measured flow is the regulated release
// process, so its arrival curve is the regulator's shaping curve and the
// path is the single queue q.
func lowerTBRL(info *typecheck.Info, opts Options) (*Network, QuerySpec, error) {
	rate, err := opts.param("tbrl", "RATE")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	burst, err := opts.param("tbrl", "BURST")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	c, err := opts.param("tbrl", "C")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	net := &Network{
		Servers: []*Server{{Name: "srv", Beta: RateLatency(ratI(c), ratI(0)), Mux: MuxAggregate}},
		Flows:   []*Flow{{Name: "f", Alpha: TokenBucket(ratI(rate), ratI(burst)), Path: []string{"srv"}}},
	}
	return net, QuerySpec{Victim: "f", PathBuffers: []string{"q"}, DepartureVar: "dep"}, nil
}

// lowerSPTandem: two rate-C strict-priority hops; a shaped high-priority
// cross flow (RH, BH) preempts the victim (RV, BV) at each hop. The victim
// crosses both hops — the topology where SFA's pay-bursts-only-once beats
// hop-by-hop TFA.
func lowerSPTandem(info *typecheck.Info, opts Options) (*Network, QuerySpec, error) {
	var vals [5]int64
	for i, name := range []string{"RH", "BH", "RV", "BV", "C"} {
		v, err := opts.param("sptandem", name)
		if err != nil {
			return nil, QuerySpec{}, err
		}
		vals[i] = v
	}
	rh, bh, rv, bv, c := vals[0], vals[1], vals[2], vals[3], vals[4]
	net := &Network{
		Servers: []*Server{
			{Name: "hop1", Beta: RateLatency(ratI(c), ratI(0)), Mux: MuxPriority,
				Prio: map[string]int{"h1": 0, "v": 1}},
			{Name: "hop2", Beta: RateLatency(ratI(c), ratI(0)), Mux: MuxPriority,
				Prio: map[string]int{"h2": 0, "v": 1}},
		},
		Flows: []*Flow{
			{Name: "h1", Alpha: TokenBucket(ratI(rh), ratI(bh)), Path: []string{"hop1"}},
			{Name: "h2", Alpha: TokenBucket(ratI(rh), ratI(bh)), Path: []string{"hop2"}},
			{Name: "v", Alpha: TokenBucket(ratI(rv), ratI(bv)), Path: []string{"hop1", "hop2"}},
		},
	}
	return net, QuerySpec{
		Victim: "v", PathBuffers: []string{"vq1", "vq2"}, DepartureVar: "vdep",
	}, nil
}

// lowerShaper: the greedy token-bucket shaper guarantees at least
// min(RATE, BURST) units of service every step once backlogged (post-refill
// credit never drops below that), i.e. the rate-latency curve
// beta_{min(RATE,BURST), 0}. Byte-granularity packet blocking is absorbed
// by analyzing at MaxBytes = 1 (unit packets), which the corpus pins.
func lowerShaper(info *typecheck.Info, opts Options) (*Network, QuerySpec, error) {
	rate, err := opts.param("shaper", "RATE")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	burst, err := opts.param("shaper", "BURST")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	guaranteed := rate
	if burst < guaranteed {
		guaranteed = burst
	}
	a := opts.arrivals()
	net := &Network{
		Servers: []*Server{{Name: "shp", Beta: RateLatency(ratI(guaranteed), ratI(0)), Mux: MuxAggregate}},
		Flows:   []*Flow{{Name: "f", Alpha: TokenBucket(ratI(a), ratI(a)), Path: []string{"shp"}}},
	}
	return net, QuerySpec{Victim: "f", PathBuffers: []string{"sin"}, DepartureSink: "sout"}, nil
}

// lowerDelay: the fixed-delay stage forwards everything within the step —
// service curve delta_1 (delay at most one step, no backlog carried over).
func lowerDelay(info *typecheck.Info, opts Options) (*Network, QuerySpec, error) {
	a := opts.arrivals()
	net := &Network{
		Servers: []*Server{{Name: "d", Beta: Delay(ratI(1)), Mux: MuxAggregate}},
		Flows:   []*Flow{{Name: "f", Alpha: TokenBucket(ratI(a), ratI(a)), Path: []string{"d"}}},
	}
	return net, QuerySpec{Victim: "f", PathBuffers: []string{"din"}, DepartureSink: "dout"}, nil
}

// queueFlows builds one gamma_{A,A} flow per input queue of an N-queue
// scheduler, named q0..q(N-1), all crossing server s.
func queueFlows(n, a int64) []*Flow {
	var flows []*Flow
	for i := int64(0); i < n; i++ {
		flows = append(flows, &Flow{
			Name:  fmt.Sprintf("q%d", i),
			Alpha: TokenBucket(ratI(a), ratI(a)),
			Path:  []string{"s"},
		})
	}
	return flows
}

// starvationSpec is the shared query binding for the N-queue schedulers:
// the starvation victim is queue 1 (matching the rr/sp/fq query sources),
// with the cdeq1 monitor as the departure clock when the query variant
// declares it.
func starvationSpec(info *typecheck.Info) QuerySpec {
	spec := QuerySpec{Victim: "q1", PathBuffers: []string{"ibs[1]"}}
	if hasMonitor(info, "cdeq1") {
		spec.DepartureVar = "cdeq1"
	}
	return spec
}

// lowerSP: strict priority over N queues at one departure per step. Queue
// i's residual subtracts all higher-or-equal-priority arrival curves; with
// every queue able to sustain one packet per step, any queue below the top
// is honestly unbounded — strict priority offers it no guarantee.
func lowerSP(info *typecheck.Info, opts Options) (*Network, QuerySpec, error) {
	n, err := opts.param("sp", "N")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	prio := map[string]int{}
	for i := int64(0); i < n; i++ {
		prio[fmt.Sprintf("q%d", i)] = int(i)
	}
	net := &Network{
		Servers: []*Server{{Name: "s", Beta: RateLatency(ratI(1), ratI(0)), Mux: MuxPriority, Prio: prio}},
		Flows:   queueFlows(n, opts.arrivals()),
	}
	return net, starvationSpec(info), nil
}

// lowerRR: round-robin over N queues guarantees each queue the
// latency-rate curve beta_{1/N, N-1}: in any backlogged stretch a queue
// waits at most N-1 steps for its slot and then gets every N-th step.
func lowerRR(info *typecheck.Info, opts Options) (*Network, QuerySpec, error) {
	n, err := opts.param("rr", "N")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	guaranteed := map[string]Curve{}
	for i := int64(0); i < n; i++ {
		guaranteed[fmt.Sprintf("q%d", i)] = RateLatency(big.NewRat(1, n), ratI(n-1))
	}
	net := &Network{
		Servers: []*Server{{Name: "s", Beta: RateLatency(ratI(1), ratI(0)), Mux: MuxGuaranteed, Guaranteed: guaranteed}},
		Flows:   queueFlows(n, opts.arrivals()),
	}
	return net, starvationSpec(info), nil
}

// lowerDRR: deficit round robin with quantum Q over N queues guarantees
// each queue rate Q/(N*Q) = 1/N with latency at most (N-1)*(Q+1) steps (a
// full rotation of the other queues' quanta plus their idle turns).
func lowerDRR(info *typecheck.Info, opts Options) (*Network, QuerySpec, error) {
	n, err := opts.param("drr", "N")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	q, err := opts.param("drr", "Q")
	if err != nil {
		return nil, QuerySpec{}, err
	}
	guaranteed := map[string]Curve{}
	for i := int64(0); i < n; i++ {
		guaranteed[fmt.Sprintf("q%d", i)] = RateLatency(big.NewRat(1, n), ratI((n-1)*(q+1)))
	}
	net := &Network{
		Servers: []*Server{{Name: "s", Beta: RateLatency(ratI(1), ratI(0)), Mux: MuxGuaranteed, Guaranteed: guaranteed}},
		Flows:   queueFlows(n, opts.arrivals()),
	}
	return net, starvationSpec(info), nil
}
