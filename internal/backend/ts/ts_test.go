package ts

import (
	"testing"

	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/qm"
	"buffy/internal/smt/term"
)

func load(t *testing.T, src string) *typecheck.Info {
	t.Helper()
	info, err := qm.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// tokensBound is the token bucket's service-credit invariant.
func tokensBound(k int64) Prop {
	return func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
		b := ctx.B
		return b.Le(m.Var("tokens"), b.IntConst(k))
	}
}

func tokensNonNeg(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
	b := ctx.B
	return b.Le(b.IntConst(0), m.Var("tokens"))
}

// The path server's credit can never exceed C+B — provable for EVERY
// horizon by 1-induction (the §7 "arbitrarily-bounded time horizon"
// capability).
func TestPathServerTokensInvariant(t *testing.T) {
	info := load(t, qm.PathServerSrc)
	opts := Options{IR: ir.Options{Params: map[string]int64{"C": 2, "B": 2}}}
	res, err := ProveInvariant(info, opts, tokensBound(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatalf("tokens <= C+B should be 1-inductive: base=%v step=%v", res.BaseOK, res.StepOK)
	}
}

// A too-tight bound fails the induction step (and is genuinely violated).
func TestPathServerTooTightBoundFails(t *testing.T) {
	info := load(t, qm.PathServerSrc)
	opts := Options{IR: ir.Options{Params: map[string]int64{"C": 2, "B": 2}}}
	res, err := ProveInvariant(info, opts, tokensBound(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved {
		t.Fatal("tokens <= 1 is false (tokens reaches C+B=4)")
	}
	// It is not just non-inductive: BMC refutes it within 2 steps.
	ok, err := CheckBounded(info, Options{IR: ir.Options{T: 2, Params: map[string]int64{"C": 2, "B": 2}}}, tokensBound(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("BMC should refute tokens <= 1")
	}
}

// Auxiliary invariants unlock non-inductive properties: tokens >= 0 alone
// may need the upper bound as a lemma against wrap-around reasoning; the
// conjunction is inductive.
func TestAuxiliaryInvariants(t *testing.T) {
	info := load(t, qm.PathServerSrc)
	opts := Options{
		IR:  ir.Options{Params: map[string]int64{"C": 2, "B": 2}},
		Aux: []Prop{tokensBound(4)},
	}
	res, err := ProveInvariant(info, opts, tokensNonNeg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatalf("tokens >= 0 with aux tokens <= C+B should prove: base=%v step=%v", res.BaseOK, res.StepOK)
	}
}

// A time-dependent program is rejected.
func TestRejectsTimeDependentProgram(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) {
		global int g;
		if (t == 0) { g = 5; }
		move-p(a, b, 1);
	}`)
	_, err := ProveInvariant(info, Options{}, tokensNonNeg)
	if err == nil {
		t.Fatal("expected rejection of t-dependent program")
	}
}

// Backlog never exceeds capacity: holds by construction in every model,
// and is 1-inductive from the symbolic well-formed state.
func TestBacklogCapInvariant(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) { move-p(a, b, 1); }`)
	prop := func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
		b := ctx.B
		return b.Le(m.Buffers()["a"].BacklogP(ctx), b.IntConst(4))
	}
	res, err := ProveInvariant(info, Options{IR: ir.Options{BufferCap: 4}}, prop)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatalf("backlog <= cap should be inductive: base=%v step=%v", res.BaseOK, res.StepOK)
	}
}

// A work-conserving single queue drains one packet per step: with at most
// one arrival per step the backlog never exceeds 1 — needs k=1 induction
// over the right strengthening... here the plain property is inductive.
func TestSingleServerOccupancy(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) { move-p(a, b, backlog-p(a)); }`)
	prop := func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
		b := ctx.B
		// After each step a is empty; the symbolic pre-state is arbitrary,
		// so the provable invariant is just the capacity bound.
		return b.Le(m.Buffers()["a"].BacklogP(ctx), b.IntConst(8))
	}
	res, err := ProveInvariant(info, Options{}, prop)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatal("capacity bound should be inductive")
	}
}

func TestCheckBoundedHolds(t *testing.T) {
	info := load(t, qm.PathServerSrc)
	ok, err := CheckBounded(info, Options{IR: ir.Options{T: 5, Params: map[string]int64{"C": 1, "B": 3}}}, tokensBound(4))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tokens <= C+B must hold over 5 steps")
	}
}
