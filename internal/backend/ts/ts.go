// Package ts is Buffy's transition-system back-end, the representation §4
// plans for symbolic model checkers ("Buffy can transform the program into
// a transition system as the IR"). A program's one-step semantics becomes
// a symbolic step function over an explicit state vector (globals, lists,
// buffer slots), from which the package implements:
//
//   - BMC: bounded reachability from the initial (empty) state, and
//   - k-induction: prove a state property for EVERY horizon — the
//     "arbitrarily-bounded time horizon" improvement over tools like
//     FPerf that §7 describes, provided the property (possibly helped by
//     auxiliary invariants à la §5's interface specifications) is
//     k-inductive.
//
// Programs analyzed here must be step-independent: reading the builtin t
// makes the transition relation vary per step and is rejected.
package ts

import (
	"fmt"
	"time"

	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/lang/ast"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// Prop builds a property term over a machine's current state. It must be a
// pure observation (read variables and buffer backlogs; no mutation).
type Prop func(m *ir.Machine, ctx *buffer.Ctx) *term.Term

// Options configures an induction proof.
type Options struct {
	IR     ir.Options
	Solver solver.Options
	// K is the induction depth (default 1).
	K int
	// Aux are auxiliary invariants: assumed on every pre-state of the
	// induction step AND themselves proven alongside the main property
	// (so the combined conjunction is what is actually established).
	Aux []Prop
}

// Result reports an induction attempt.
type Result struct {
	// Proved means base and step both succeeded: the property holds for
	// every horizon.
	Proved bool
	// BaseOK: no violation within the first K steps from the initial state.
	BaseOK bool
	// StepOK: assuming the property on K consecutive symbolic states, the
	// next state satisfies it.
	StepOK   bool
	Duration time.Duration
}

// usesTime reports whether the program reads the step counter t.
func usesTime(info *typecheck.Info) bool {
	found := false
	ast.WalkExprs(info.Prog.Body, func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name == "t" {
			if sym := info.Symbols[id]; sym != nil && sym.Kind == typecheck.SymBuiltin {
				found = true
			}
		}
	})
	return found
}

// ProveInvariant attempts a k-induction proof that prop (together with the
// auxiliary invariants) holds in every reachable state at every horizon.
func ProveInvariant(info *typecheck.Info, opts Options, prop Prop) (*Result, error) {
	start := time.Now()
	if usesTime(info) {
		return nil, fmt.Errorf("ts: program %s reads the step counter t; its transition relation is not step-independent", info.Prog.Name)
	}
	if opts.K <= 0 {
		opts.K = 1
	}
	all := append([]Prop{prop}, opts.Aux...)
	conj := func(m *ir.Machine, ctx *buffer.Ctx, b *term.Builder) *term.Term {
		parts := make([]*term.Term, len(all))
		for i, p := range all {
			parts[i] = p(m, ctx)
		}
		return b.And(parts...)
	}

	res := &Result{}

	// ---- Base case: the property holds in the first K+1 states reached
	// from the empty initial state.
	{
		sv := solver.New(opts.Solver)
		b := sv.Builder()
		m, err := ir.NewMachine(info, b, opts.IR)
		if err != nil {
			return nil, err
		}
		ctx := readCtx(b)
		var bad []*term.Term
		bad = append(bad, b.Not(conj(m, ctx, b))) // initial state
		for i := 0; i < opts.K; i++ {
			if err := m.RunStep(i); err != nil {
				return nil, err
			}
			bad = append(bad, b.Not(conj(m, ctx, b)))
		}
		for _, a := range m.Assumes() {
			sv.Assert(a)
		}
		sv.Assert(b.Or(bad...))
		switch sv.Check() {
		case solver.Unsat:
			res.BaseOK = true
		case solver.Unknown:
			res.Duration = time.Since(start)
			return res, nil
		}
	}

	// ---- Induction step: from K consecutive property-satisfying states,
	// the next state satisfies the property.
	{
		sv := solver.New(opts.Solver)
		b := sv.Builder()
		m, err := ir.NewMachine(info, b, opts.IR)
		if err != nil {
			return nil, err
		}
		ctx := readCtx(b)
		Symbolize(m, b, "ind")
		var pre []*term.Term
		pre = append(pre, conj(m, ctx, b))
		for i := 0; i < opts.K; i++ {
			if err := m.RunStep(i); err != nil {
				return nil, err
			}
			if i < opts.K-1 {
				pre = append(pre, conj(m, ctx, b))
			}
		}
		post := conj(m, ctx, b)
		for _, a := range m.Assumes() {
			sv.Assert(a)
		}
		for _, p := range pre {
			sv.Assert(p)
		}
		sv.Assert(b.Not(post))
		switch sv.Check() {
		case solver.Unsat:
			res.StepOK = true
		}
	}

	res.Proved = res.BaseOK && res.StepOK
	res.Duration = time.Since(start)
	return res, nil
}

// CheckBounded is plain BMC over the transition system: does the property
// hold in every state reachable within T steps?
func CheckBounded(info *typecheck.Info, opts Options, prop Prop) (bool, error) {
	sv := solver.New(opts.Solver)
	b := sv.Builder()
	m, err := ir.NewMachine(info, b, opts.IR)
	if err != nil {
		return false, err
	}
	ctx := readCtx(b)
	var bad []*term.Term
	bad = append(bad, b.Not(prop(m, ctx)))
	T := opts.IR.T
	if T <= 0 {
		T = 1
	}
	for i := 0; i < T; i++ {
		if err := m.RunStep(i); err != nil {
			return false, err
		}
		bad = append(bad, b.Not(prop(m, ctx)))
	}
	for _, a := range m.Assumes() {
		sv.Assert(a)
	}
	sv.Assert(b.Or(bad...))
	return sv.Check() == solver.Unsat, nil
}

// Symbolize replaces a machine's state (variables, lists, buffers) with
// fresh symbolic values constrained to each component's well-formedness
// invariant — the "arbitrary reachable-ish state" an induction step starts
// from.
func Symbolize(m *ir.Machine, b *term.Builder, prefix string) {
	ctx := m.Ctx()
	for _, name := range m.VarNames() {
		cur := m.Var(name)
		v := b.Var(fmt.Sprintf("%s!%s", prefix, name), cur.Sort())
		m.SetVar(name, v)
	}
	for _, name := range m.ListNames() {
		elems, _ := m.List(name)
		fresh := make([]*term.Term, len(elems))
		for i := range fresh {
			fresh[i] = b.Var(fmt.Sprintf("%s!%s.e%d", prefix, name, i), term.Int)
		}
		size := b.Var(fmt.Sprintf("%s!%s.size", prefix, name), term.Int)
		ctx.Assume(b.Le(b.IntConst(0), size))
		ctx.Assume(b.Le(size, b.IntConst(int64(len(elems)))))
		m.SetList(name, fresh, size)
	}
	for _, name := range m.BufferNames() {
		st := m.Buffers()[name]
		sym := st.Model().Symbolic(ctx, st.Config(), fmt.Sprintf("%s!%s", prefix, name))
		m.SetBuffer(name, sym)
	}
}

// readCtx builds a side-effect-free context for evaluating props.
func readCtx(b *term.Builder) *buffer.Ctx {
	return &buffer.Ctx{B: b, Assume: func(*term.Term) {}, Prefix: "prop"}
}
