package portfolio

import (
	"fmt"

	"buffy/internal/smt/sat"
)

// Config is one named solver configuration in a portfolio: a full set of
// CDCL search heuristics. Diversity across configs — restart schedules,
// decay rates, polarities, branching seeds — is what makes racing them
// pay off: solve latency under a single heuristic is high-variance, and
// the portfolio's latency is the minimum across the set.
type Config struct {
	Name   string
	Search sat.Options
}

// DefaultSize is the portfolio width used when callers ask for "a
// portfolio" without sizing it.
const DefaultSize = 4

// builtinConfigs is the hand-diversified head of the config sequence,
// ordered so that a prefix of any length is still a diverse set: classic
// first (the previously hardcoded heuristics), then a different restart
// family with fast decay (empirically the strongest complement to classic
// on the BMC corpus — small portfolios lead with the best-measured pair),
// then opposite polarity, then randomized branching, and so on.
func builtinConfigs() []Config {
	return []Config{
		{Name: "luby-classic", Search: sat.Options{}},
		{Name: "geom-agile", Search: sat.Options{GeomRestarts: true, RestartBase: 50, RestartGrowth: 1.3, VarDecay: 0.90}},
		{Name: "luby-pos-slow", Search: sat.Options{InitPhase: true, VarDecay: 0.99, RestartBase: 400}},
		{Name: "rand-luby", Search: sat.Options{RandSeed: 0x9E3779B97F4A7C15, RandFreq: 0.05, RestartBase: 200}},
		{Name: "luby-focused", Search: sat.Options{RestartBase: 60, VarDecay: 0.85}},
		{Name: "geom-tiny-db", Search: sat.Options{GeomRestarts: true, RestartGrowth: 1.5, LearntFrac: 0.1, LearntBase: 300}},
		{Name: "rand-geom-pos", Search: sat.Options{RandSeed: 0xD1B54A32D192ED03, RandFreq: 0.1, InitPhase: true, GeomRestarts: true, RestartBase: 30, RestartGrowth: 1.2}},
		{Name: "luby-patient", Search: sat.Options{RestartBase: 1000, VarDecay: 0.99, ClauseDecay: 0.9995}},
	}
}

// DefaultConfigs returns the built-in diversified portfolio of size n
// (n <= 0 yields DefaultSize). The first len(builtinConfigs()) entries
// are hand-picked; beyond them the set is extended with reseeded
// random-branching variants, so any n is supported.
func DefaultConfigs(n int) []Config {
	if n <= 0 {
		n = DefaultSize
	}
	base := builtinConfigs()
	out := make([]Config, 0, n)
	for i := 0; i < n; i++ {
		if i < len(base) {
			out = append(out, base[i])
			continue
		}
		out = append(out, Config{
			Name: fmt.Sprintf("rand-seed-%d", i),
			Search: sat.Options{
				RandSeed:  splitmix64(uint64(i)),
				RandFreq:  0.07,
				InitPhase: i%2 == 1,
			},
		})
	}
	return out
}

// splitmix64 whitens an index into a branching seed (never returns 0,
// which would disable random branching).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
