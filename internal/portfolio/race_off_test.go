//go:build !race

package portfolio

// raceEnabled mirrors race_on_test.go; see the comment there.
const raceEnabled = false
