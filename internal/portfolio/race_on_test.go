//go:build race

package portfolio

// raceEnabled trims the heavyweight differential corpus when the race
// detector multiplies solver time ~15x: the race step hunts data races in
// the fork/cancel machinery, not heuristic bugs, so a smaller corpus
// keeps CI inside its budget without losing that coverage.
const raceEnabled = true
