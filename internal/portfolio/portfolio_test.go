package portfolio

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/qm"
	"buffy/internal/smt/sat"
	"buffy/internal/smt/solver"
)

// stubCheck installs a scripted per-config solve keyed by the config's
// RestartBase (a convenient identifier the stub can read back out of the
// search options), restoring the real encode/solve phases on cleanup.
func stubCheck(t *testing.T, script map[int64]func(ctx context.Context) (*smtbe.Result, error)) {
	t.Helper()
	origEnc, origSolve := encodeFn, solveFn
	encodeFn = func(ctx context.Context, info *typecheck.Info, o smtbe.Options) (*smtbe.Encoded, error) {
		return &smtbe.Encoded{Mode: o.Mode}, nil
	}
	solveFn = func(ctx context.Context, enc *smtbe.Encoded, search sat.Options) (*smtbe.Result, error) {
		fn, ok := script[search.RestartBase]
		if !ok {
			return nil, fmt.Errorf("stub: no script for RestartBase=%d", search.RestartBase)
		}
		return fn(ctx)
	}
	t.Cleanup(func() { encodeFn, solveFn = origEnc, origSolve })
}

// TestFirstWinsCancelsLosers scripts the race: a fast conclusive config
// and a slow one that only returns once it observes cancellation. The
// portfolio must return the fast answer, cancel the loser, and still
// account the loser's effort.
func TestFirstWinsCancelsLosers(t *testing.T) {
	slowSawCancel := make(chan struct{}, 1)
	stubCheck(t, map[int64]func(ctx context.Context) (*smtbe.Result, error){
		1: func(ctx context.Context) (*smtbe.Result, error) {
			return &smtbe.Result{Status: smtbe.Holds, SatStats: sat.Stats{Conflicts: 7}}, nil
		},
		2: func(ctx context.Context) (*smtbe.Result, error) {
			select {
			case <-ctx.Done():
				slowSawCancel <- struct{}{}
				return &smtbe.Result{Status: smtbe.Unknown, SatStats: sat.Stats{Conflicts: 3}}, ctx.Err()
			case <-time.After(30 * time.Second):
				return nil, errors.New("stub: loser was never cancelled")
			}
		},
	})

	res, err := Check(nil, Options{Configs: []Config{
		{Name: "fast", Search: sat.Options{RestartBase: 1}},
		{Name: "slow", Search: sat.Options{RestartBase: 2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "fast" || res.Status != smtbe.Holds {
		t.Fatalf("winner=%q status=%v, want fast/holds", res.Winner, res.Status)
	}
	select {
	case <-slowSawCancel:
	default:
		t.Fatal("losing config did not observe cancellation")
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(res.Runs))
	}
	if res.Runs[1].Status != smtbe.Unknown || res.Runs[1].Stats.Conflicts != 3 {
		t.Errorf("loser run = %+v, want Unknown with its partial stats", res.Runs[1])
	}
	if res.Runs[1].Err != "" {
		t.Errorf("loser's cancellation recorded as failure: %q", res.Runs[1].Err)
	}
	if res.Runs[0].Status != smtbe.Holds || res.Runs[0].Stats.Conflicts != 7 {
		t.Errorf("winner run = %+v", res.Runs[0])
	}
}

// TestDisagreementFlagged pins the differential safety net: two
// conclusive configs with different answers must fail the whole analysis.
func TestDisagreementFlagged(t *testing.T) {
	second := make(chan struct{})
	stubCheck(t, map[int64]func(ctx context.Context) (*smtbe.Result, error){
		1: func(ctx context.Context) (*smtbe.Result, error) {
			return &smtbe.Result{Status: smtbe.Holds}, nil
		},
		2: func(ctx context.Context) (*smtbe.Result, error) {
			<-second // lose the race, then answer conclusively anyway
			return &smtbe.Result{Status: smtbe.CounterexampleFound}, nil
		},
	})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(second)
	}()

	res, err := Check(nil, Options{Configs: []Config{
		{Name: "a", Search: sat.Options{RestartBase: 1}},
		{Name: "b", Search: sat.Options{RestartBase: 2}},
	}})
	if !errors.Is(err, ErrDisagreement) {
		t.Fatalf("err = %v, want ErrDisagreement", err)
	}
	if res == nil || !res.Disagreement {
		t.Fatalf("result must flag the disagreement: %+v", res)
	}
}

// TestPanickingConfigFailsGracefully: a panic inside one config must
// neither crash the process nor poison the race.
func TestPanickingConfigFailsGracefully(t *testing.T) {
	stubCheck(t, map[int64]func(ctx context.Context) (*smtbe.Result, error){
		1: func(ctx context.Context) (*smtbe.Result, error) { panic("boom") },
		2: func(ctx context.Context) (*smtbe.Result, error) {
			return &smtbe.Result{Status: smtbe.NoWitness}, nil
		},
	})
	res, err := Check(nil, Options{Configs: []Config{
		{Name: "bad", Search: sat.Options{RestartBase: 1}},
		{Name: "good", Search: sat.Options{RestartBase: 2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "good" || res.Status != smtbe.NoWitness {
		t.Fatalf("winner=%q status=%v", res.Winner, res.Status)
	}
	if res.Runs[0].Err == "" {
		t.Error("panicking config's run must carry its error")
	}
}

// TestAllUnknownReturnsUnknown: when every config exhausts its budget the
// portfolio reports Unknown without error, like a single solver would.
func TestAllUnknownReturnsUnknown(t *testing.T) {
	info := qm.MustLoad(qm.FQBuggyQuerySrc)
	res, err := Check(info, Options{
		Configs: DefaultConfigs(2),
		Base: smtbe.Options{
			IR:     ir.Options{T: 8, Params: map[string]int64{"N": 3}},
			Solver: solver.Options{MaxConflicts: 1},
			Mode:   smtbe.Witness,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "" || res.Status != smtbe.Unknown {
		t.Fatalf("winner=%q status=%v, want no winner / unknown", res.Winner, res.Status)
	}
}

// TestCallerCancellationPropagates: cancelling the caller's context
// aborts every configuration and surfaces ctx.Err().
func TestCallerCancellationPropagates(t *testing.T) {
	info := qm.MustLoad(qm.FQBuggyQuerySrc)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := CheckContext(ctx, info, Options{
		N: 2,
		Base: smtbe.Options{
			IR:   ir.Options{T: 12, Params: map[string]int64{"N": 3}},
			Mode: smtbe.Witness,
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPortfolioRealRaceLosersStopEarly is the acceptance scenario on the
// real solver stack: a 4-wide portfolio where three configs branch purely
// at random (hopeless on a structured BMC instance) races one classic
// config. The classic config wins with a conclusive answer and every
// crippled loser observes cancellation mid-search — visible as Status
// Unknown with partial sat.Stats.
func TestPortfolioRealRaceLosersStopEarly(t *testing.T) {
	info := qm.MustLoad(qm.FQBuggyQuerySrc)
	crippled := func(name string, seed uint64) Config {
		return Config{Name: name, Search: sat.Options{
			RandSeed: seed, RandFreq: 1.0, VarDecay: 0.999, RestartBase: 2_000_000,
		}}
	}
	res, err := Check(info, Options{
		Configs: []Config{
			{Name: "classic"},
			crippled("rand-a", 101),
			crippled("rand-b", 202),
			crippled("rand-c", 303),
		},
		Base: smtbe.Options{
			IR:   ir.Options{T: 6, Params: map[string]int64{"N": 3}},
			Mode: smtbe.Witness,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "classic" || res.Status != smtbe.WitnessFound {
		t.Fatalf("winner=%q status=%v, want classic/witness", res.Winner, res.Status)
	}
	if res.Trace == nil {
		t.Fatal("winner's result must carry the witness trace")
	}
	stopped := 0
	for _, run := range res.Runs[1:] {
		if run.Status == smtbe.Unknown {
			stopped++
			if run.Stats.Decisions == 0 {
				t.Errorf("loser %s reported no search effort before stopping", run.Name)
			}
		}
	}
	if stopped == 0 {
		t.Error("no loser observed cancellation — first-wins cancel is not working")
	}
}

func TestDefaultConfigsShape(t *testing.T) {
	if got := len(DefaultConfigs(0)); got != DefaultSize {
		t.Errorf("DefaultConfigs(0) len = %d, want %d", got, DefaultSize)
	}
	cfgs := DefaultConfigs(12)
	if len(cfgs) != 12 {
		t.Fatalf("len = %d, want 12", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if seen[c.Name] {
			t.Errorf("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
	}
	// Extended configs must have live random branching.
	for _, c := range cfgs[len(builtinConfigs()):] {
		if c.Search.RandSeed == 0 || c.Search.RandFreq == 0 {
			t.Errorf("extended config %q lacks a branching seed", c.Name)
		}
	}
}
