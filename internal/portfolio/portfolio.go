// Package portfolio races N diversified CDCL configurations on the same
// bounded analysis and returns the first conclusive (sat/unsat) answer,
// cooperatively cancelling the losers. It is the layer between Buffy's
// analysis back-ends and the solver stack: verify/witness queries all
// bottom out in one CDCL search whose latency is hostage to a single
// heuristic configuration's luck, and racing a diverse set turns that
// variance into speedup — the first-conclusive-answer latency is the
// minimum over the set. The expensive compile+bitblast phase is shared:
// the query is encoded once and every configuration searches a CNF fork
// of that encoding (solver.Fork), so a race costs N searches but only one
// encoding.
//
// Because every configuration decides the same formula, any two
// conclusive answers must agree; the runner cross-checks them and flags a
// disagreement as ErrDisagreement. For a from-scratch solver this doubles
// as a continuous differential test: a heuristic-dependent soundness bug
// surfaces as a disagreement in production rather than a silent wrong
// answer.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/sat"
	"buffy/internal/telemetry"
)

// ErrDisagreement means two configurations both reached a conclusive
// answer and the answers differ — a solver soundness bug, never a
// legitimate outcome. The caller must treat the whole analysis as failed.
var ErrDisagreement = errors.New("portfolio: conclusive configurations disagree")

// Options configures a portfolio run.
type Options struct {
	// N is how many diversified default configurations to race
	// (<= 0 means DefaultSize). Ignored when Configs is set.
	N int
	// Configs overrides the built-in config set.
	Configs []Config
	// Base is the analysis to run: program horizon and IR options, base
	// solver options (each config's fork replaces Solver.Search with its
	// own), and the query mode. Portfolio queries are Verify or Witness.
	Base smtbe.Options
}

func (o Options) configs() []Config {
	if len(o.Configs) > 0 {
		return o.Configs
	}
	return DefaultConfigs(o.N)
}

// ConfigRun is one configuration's outcome, reported for every config in
// the portfolio — winners and losers alike. A loser cancelled mid-search
// reports Status Unknown with the sat.Stats it had accumulated when it
// observed the cancellation.
type ConfigRun struct {
	Name     string
	Status   smtbe.Status
	Stats    sat.Stats
	Duration time.Duration
	Err      string
}

// Result is a portfolio outcome: the winning configuration's full
// analysis result plus per-config telemetry.
type Result struct {
	// Result is the winner's analysis result (or, with no conclusive
	// config, an arbitrary Unknown result for its stats). Nil only when
	// every config failed before producing a result.
	*smtbe.Result
	// Winner is the name of the first conclusive config ("" if none).
	Winner string
	// Runs reports every configuration, in portfolio order.
	Runs []ConfigRun
	// Disagreement is set when two conclusive configs differed; the
	// accompanying error wraps ErrDisagreement.
	Disagreement bool
	// WallClock is the portfolio's end-to-end time, including waiting
	// for cancelled losers to unwind.
	WallClock time.Duration
}

// encodeFn and solveFn are the two phases of a race — compile+bitblast
// once, then search per config on solver forks sharing that encoding.
// Test stubs replace them to script win/lose timing deterministically.
var (
	encodeFn = smtbe.EncodeContext
	solveFn  = func(ctx context.Context, enc *smtbe.Encoded, search sat.Options) (*smtbe.Result, error) {
		return enc.SolveContext(ctx, search)
	}
)

// conclusive reports whether a run produced a definite answer.
func conclusive(res *smtbe.Result, err error) bool {
	return err == nil && res != nil && res.Status != smtbe.Unknown
}

// Check is CheckContext without cancellation.
func Check(info *typecheck.Info, opts Options) (*Result, error) {
	return CheckContext(context.Background(), info, opts)
}

// CheckContext races the portfolio's configurations on the query and
// returns the first conclusive answer. Losing searches are cancelled
// cooperatively and observed to completion (their stats are collected)
// before the call returns. Cancelling ctx aborts every configuration.
func CheckContext(ctx context.Context, info *typecheck.Info, opts Options) (*Result, error) {
	cfgs := opts.configs()
	start := time.Now()

	// Encode once: compile + bitblast is the expensive, heuristic-free
	// phase, so every config races on a CNF fork of the same encoding
	// instead of redoing it N times.
	enc, err := encodeFn(ctx, info, opts.Base)
	if err != nil {
		return nil, err
	}

	runCtx, cancelLosers := context.WithCancel(ctx)
	defer cancelLosers()

	type outcome struct {
		idx int
		res *smtbe.Result
		err error
		dur time.Duration
		sp  *telemetry.Span
	}
	ch := make(chan outcome, len(cfgs))
	for i, cfg := range cfgs {
		go func(i int, cfg Config) {
			t0 := time.Now()
			cctx, sp := telemetry.StartSpan(runCtx, "portfolio:"+cfg.Name)
			res, err := runOne(cctx, enc, cfg)
			if sp != nil && res != nil {
				sp.SetAttrs(
					telemetry.String("status", res.Status.String()),
					telemetry.Int("conflicts", res.SatStats.Conflicts))
			}
			sp.End()
			ch <- outcome{i, res, err, time.Since(t0), sp}
		}(i, cfg)
	}

	// First conclusive answer wins; the rest are cancelled but still
	// awaited so their effort is accounted and their answers cross-checked.
	outs := make([]outcome, len(cfgs))
	winner := -1
	for n := 0; n < len(cfgs); n++ {
		o := <-ch
		outs[o.idx] = o
		if winner < 0 && conclusive(o.res, o.err) {
			winner = o.idx
			cancelLosers()
		}
	}

	runs := make([]ConfigRun, len(cfgs))
	var firstErr error
	for i, o := range outs {
		run := ConfigRun{Name: cfgs[i].Name, Duration: o.dur}
		if o.res != nil {
			run.Status = o.res.Status
			run.Stats = o.res.SatStats
		}
		// Cancellation of losers is the expected mechanism, not a failure.
		if o.err != nil && !errors.Is(o.err, context.Canceled) && !errors.Is(o.err, context.DeadlineExceeded) {
			run.Err = o.err.Error()
			if firstErr == nil {
				firstErr = o.err
			}
		}
		runs[i] = run
	}

	if winner >= 0 {
		// Annotate the winning config's span after the race settles
		// (SetAttrs on an ended span is allowed for exactly this).
		outs[winner].sp.SetAttrs(telemetry.Bool("winner", true))
		pr := &Result{
			Result:    outs[winner].res,
			Winner:    cfgs[winner].Name,
			Runs:      runs,
			WallClock: time.Since(start),
		}
		// Differential safety net: any other conclusive config must agree.
		for i, o := range outs {
			if i == winner || !conclusive(o.res, o.err) {
				continue
			}
			if o.res.Status != pr.Status {
				pr.Disagreement = true
				return pr, fmt.Errorf("%w: %s says %v, %s says %v",
					ErrDisagreement, cfgs[winner].Name, pr.Status, cfgs[i].Name, o.res.Status)
			}
		}
		return pr, nil
	}

	// No conclusive answer: surface the caller's cancellation, then any
	// real error (parse/compile failures hit every config identically),
	// then a budget-exhausted Unknown.
	pr := &Result{Runs: runs, WallClock: time.Since(start)}
	for _, o := range outs {
		if o.res != nil {
			pr.Result = o.res
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return pr, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return pr, nil
}

// runOne executes a single configuration's search, shielding the
// portfolio (and the service worker above it) from panics escaping the
// solver stack.
func runOne(ctx context.Context, enc *smtbe.Encoded, cfg Config) (res *smtbe.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("portfolio: config %s panicked: %v", cfg.Name, r)
		}
	}()
	// Stamp the portfolio label onto the search options so telemetry
	// (SearchReport per-config breakdowns) can attribute effort. Name is
	// not a heuristic; this cannot change the search.
	search := cfg.Search
	search.Name = cfg.Name
	return solveFn(ctx, enc, search)
}
