package portfolio

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/smt/sat"
)

// checkGoroutineLeak asserts that the goroutine count settles back to
// (roughly) its pre-test level: the fork/cancel machinery must not strand
// config runners. The small allowance absorbs runtime housekeeping
// goroutines; a real leak under the storm below is two per iteration and
// blows straight past it.
func checkGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before storm, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelStorm hammers the race machinery the way an flaky client
// does: submit a portfolio race, cancel it mid-flight, immediately
// resubmit — 100 times, with the cancellation landing before, during and
// after the race. Run under -race this is the data-race probe for the
// fork/cancel paths; the leak check asserts every loser unwound. The
// scripted ground truth is Holds, so any conclusive answer that is not
// Holds is a wrong verdict smuggled in by a cancellation path.
func TestCancelStorm(t *testing.T) {
	blockerEntered := make(chan struct{}, 1)
	stubCheck(t, map[int64]func(ctx context.Context) (*smtbe.Result, error){
		1: func(ctx context.Context) (*smtbe.Result, error) {
			// The eventual winner: conclusive after a short beat, unless
			// the storm cancels it first.
			select {
			case <-time.After(2 * time.Millisecond):
				return &smtbe.Result{Status: smtbe.Holds, SatStats: sat.Stats{Conflicts: 1}}, nil
			case <-ctx.Done():
				return &smtbe.Result{Status: smtbe.Unknown}, ctx.Err()
			}
		},
		2: func(ctx context.Context) (*smtbe.Result, error) {
			// The perpetual loser: blocks until cancelled (by the winner or
			// by the storm) — the goroutine the leak check watches for.
			select {
			case blockerEntered <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return &smtbe.Result{Status: smtbe.Unknown}, ctx.Err()
		},
	})
	opts := Options{Configs: []Config{
		{Name: "winner", Search: sat.Options{RestartBase: 1}},
		{Name: "blocker", Search: sat.Options{RestartBase: 2}},
	}}

	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		switch i % 3 {
		case 0:
			// Cancel before the race even starts.
			cancel()
		case 1:
			// Cancel mid-race, racing the 2ms winner.
			go func() {
				time.Sleep(time.Duration(i%4) * time.Millisecond)
				cancel()
			}()
		case 2:
			// Let the race finish; cancel afterwards (the resubmit path).
		}

		res, err := CheckContext(ctx, nil, opts)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want nil or context.Canceled", i, err)
		}
		if res != nil && res.Status != smtbe.Unknown && res.Status != smtbe.Holds {
			t.Fatalf("iteration %d: wrong verdict %v under cancellation (truth is Holds)", i, res.Status)
		}
		if i%3 == 2 {
			if err != nil {
				t.Fatalf("iteration %d: uncancelled race failed: %v", i, err)
			}
			if res.Status != smtbe.Holds || res.Winner != "winner" {
				t.Fatalf("iteration %d: status=%v winner=%q, want Holds/winner", i, res.Status, res.Winner)
			}
		}
		cancel()
	}

	select {
	case <-blockerEntered:
	default:
		t.Fatal("storm never exercised the blocking loser")
	}
	checkGoroutineLeak(t, before)
}
