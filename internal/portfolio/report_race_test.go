package portfolio

import (
	"sync"
	"testing"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/sat"
	"buffy/internal/smt/solver"
)

// TestSearchReportConcurrentWithRace samples a live portfolio race from
// the outside — the pattern behind GET /v1/jobs/{id}/explain on a
// running job: N diversified solvers publish into one shared Progress
// with a SearchRecorder attached, while a poller goroutine repeatedly
// snapshots Report() mid-solve. Run under -race in CI; the assertions
// pin internal consistency of every mid-flight snapshot, and that the
// final report attributes effort to each racing config by name.
func TestSearchReportConcurrentWithRace(t *testing.T) {
	info := qm.MustLoad(qm.FQBuggyQuerySrc)
	p := &sat.Progress{}
	rec := sat.NewSearchRecorder()
	p.SetRecorder(rec)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reports []*sat.SearchReport
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if rep := rec.Report(); rep != nil {
					reports = append(reports, rep)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	res, err := Check(info, Options{
		N: 4,
		Base: smtbe.Options{
			IR:     ir.Options{T: 8, Params: map[string]int64{"N": 3}},
			Solver: solver.Options{Progress: p},
			Mode:   smtbe.Witness,
		},
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smtbe.WitnessFound {
		t.Fatalf("status = %v, want WitnessFound", res.Status)
	}

	// Every mid-flight snapshot is internally consistent: monotone
	// sample timelines, totals never shrinking between snapshots.
	var lastConflicts int64
	for i, rep := range reports {
		if rep.Totals.Conflicts < lastConflicts {
			t.Fatalf("snapshot %d: job conflicts went backwards (%d -> %d)",
				i, lastConflicts, rep.Totals.Conflicts)
		}
		lastConflicts = rep.Totals.Conflicts
		for j := 1; j < len(rep.Samples); j++ {
			if rep.Samples[j].Conflicts < rep.Samples[j-1].Conflicts {
				t.Fatalf("snapshot %d sample %d: cumulative conflicts decreased", i, j)
			}
		}
	}

	final := rec.Report()
	if final.Totals.Solves != 4 {
		t.Errorf("solves = %d, want 4 (one per racing config)", final.Totals.Solves)
	}
	// Each config's effort is attributed under its portfolio name.
	names := map[string]bool{}
	for _, c := range final.Configs {
		names[c.Name] = true
		if c.Name == "" {
			t.Errorf("config effort recorded without a name: %+v", c)
		}
	}
	for _, run := range res.Runs {
		if !names[run.Name] {
			t.Errorf("racing config %q missing from the report's breakdown %v", run.Name, names)
		}
	}
	// The report's job-wide totals agree with what Progress accumulated.
	if snap := p.Snapshot(); final.Totals.Conflicts != snap.Conflicts {
		t.Errorf("report conflicts %d != progress %d", final.Totals.Conflicts, snap.Conflicts)
	}
}
