package portfolio

import (
	"fmt"
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/ir"
	"buffy/internal/qm"
)

// corpusEntry is one example analysis: the same programs and queries the
// examples/ walkthroughs and the paper's case studies exercise, at
// horizons small enough to run every config in CI.
type corpusEntry struct {
	name   string
	src    string
	mode   smtbe.Mode
	t      int
	params map[string]int64
	want   smtbe.Status
}

// corpus returns the differential-test corpus. Every entry has a known
// conclusive answer, so heuristic-dependent solver bugs show up as either
// a wrong status or cross-config disagreement. Under the race detector
// (raceEnabled) the corpus shrinks to one sat and one unsat entry: that
// run exists to catch data races in the fork/cancel machinery, and the
// full heuristic sweep stays with the regular test run.
func corpus() []corpusEntry {
	all := []corpusEntry{
		{"fq-buggy-starvation", qm.FQBuggyQuerySrc, smtbe.Witness, 5, map[string]int64{"N": 3}, smtbe.WitnessFound},
		{"shaper-envelope", qm.ShaperSrc, smtbe.Verify, 4, map[string]int64{"RATE": 2, "BURST": 3}, smtbe.Holds},
		{"rr-no-starvation", qm.RRQuerySrc, smtbe.Witness, 6, map[string]int64{"N": 2}, smtbe.NoWitness},
		{"sp-starvation", qm.SPQuerySrc, smtbe.Witness, 4, map[string]int64{"N": 3}, smtbe.WitnessFound},
		{"drr-work-conserving", qm.DRRSrc, smtbe.Verify, 4, map[string]int64{"N": 2, "Q": 2}, smtbe.Holds},
	}
	if raceEnabled {
		return all[:2]
	}
	return all
}

// TestDifferentialAllConfigsAgree runs every built-in portfolio config
// over the corpus as a single-config "portfolio" and asserts every
// conclusive answer matches the known-good status: the heuristics may
// only change how the search goes, never where it lands. This is the
// offline twin of the runner's online disagreement cross-check.
func TestDifferentialAllConfigsAgree(t *testing.T) {
	for _, entry := range corpus() {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			t.Parallel()
			info := qm.MustLoad(entry.src)
			for _, cfg := range builtinConfigs() {
				res, err := Check(info, Options{
					Configs: []Config{cfg},
					Base: smtbe.Options{
						IR:   ir.Options{T: entry.t, Params: entry.params},
						Mode: entry.mode,
					},
				})
				if err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				if res.Status != entry.want {
					t.Errorf("%s: status %v, want %v — heuristic-dependent solver bug",
						cfg.Name, res.Status, entry.want)
				}
				if res.Winner != cfg.Name {
					t.Errorf("%s: winner %q", cfg.Name, res.Winner)
				}
			}
		})
	}
}

// TestPortfolioMatchesSingleConfigOnCorpus runs the full default
// portfolio on every corpus entry and asserts the first-wins answer
// equals the known single-config answer — the acceptance criterion that
// portfolio and single-config solves agree on every example.
func TestPortfolioMatchesSingleConfigOnCorpus(t *testing.T) {
	for _, entry := range corpus() {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			t.Parallel()
			info := qm.MustLoad(entry.src)
			res, err := Check(info, Options{
				N: 4,
				Base: smtbe.Options{
					IR:   ir.Options{T: entry.t, Params: entry.params},
					Mode: entry.mode,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != entry.want {
				t.Errorf("portfolio status %v (winner %s), want %v", res.Status, res.Winner, entry.want)
			}
			if res.Winner == "" {
				t.Error("no winning config on a conclusive corpus entry")
			}
			if len(res.Runs) != 4 {
				t.Errorf("runs = %d, want 4", len(res.Runs))
			}
		})
	}
}

// TestDifferentialConfigNamesPrintable keeps bench/metrics labels sane.
func TestDifferentialConfigNamesPrintable(t *testing.T) {
	for i, cfg := range DefaultConfigs(16) {
		if cfg.Name == "" {
			t.Errorf("config %d has empty name", i)
		}
		if got := fmt.Sprintf("%q", cfg.Name); len(got) > 40 {
			t.Errorf("config name %s too long for a metric label", got)
		}
	}
}
