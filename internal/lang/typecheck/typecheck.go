// Package typecheck implements semantic analysis for Buffy programs: symbol
// resolution, type checking of every expression and command, ghost-code
// (monitor) discipline, and collection of the program's compile-time
// parameters (the N in `buffer[N] ibs`, loop bounds, and any other free
// identifiers, which per §7 must be bound to constants before analysis).
package typecheck

import (
	"fmt"
	"sort"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/token"
)

// Error is a semantic error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// ErrorList is every semantic error found in one checking run, in source
// order. It implements error so callers that only care about failure can
// treat it opaquely, while diagnostic renderers (internal/vet) get all
// positions at once.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	if len(l) == 1 {
		return l[0].Error()
	}
	return fmt.Sprintf("%v (and %d more errors)", l[0], len(l)-1)
}

// SymKind classifies resolved identifiers.
type SymKind int

// Symbol kinds.
const (
	SymVar     SymKind = iota // global/local/monitor variable
	SymBuffer                 // buffer parameter
	SymLoopVar                // bounded-for induction variable
	SymParam                  // free identifier: compile-time parameter
	SymBuiltin                // t (current step) and T (horizon)
)

// Symbol is a resolved identifier.
type Symbol struct {
	Kind SymKind
	Name string
	Decl *ast.VarDecl     // for SymVar
	Buf  *ast.BufferParam // for SymBuffer
	Type ast.Type         // declared type (SymVar); int for others
}

// ExprType describes the type of an expression, extending ast's value types
// with buffer-ness (buffers are second-class: only usable in buffer
// positions).
type ExprType struct {
	Kind    ast.TypeKind
	IsArray bool
}

func (t ExprType) String() string {
	if t.IsArray {
		return t.Kind.String() + "[]"
	}
	return t.Kind.String()
}

// Info is the result of checking a program.
type Info struct {
	Prog *ast.Program

	// Params are the program's compile-time integer parameters, sorted by
	// name. Values for all of them must be supplied at compile time.
	Params []string

	// Symbols resolves every identifier use.
	Symbols map[*ast.Ident]*Symbol

	// Types records the type of every expression.
	Types map[ast.Expr]ExprType

	// Globals, Locals and Monitors list the declared variables by class.
	Globals  []*ast.VarDecl
	Locals   []*ast.VarDecl
	Monitors []*ast.VarDecl

	// Inputs and Outputs are the buffer parameters by direction.
	Inputs  []*ast.BufferParam
	Outputs []*ast.BufferParam

	// FieldIndex maps declared packet field names to their index.
	FieldIndex map[string]int
}

type checker struct {
	prog   *ast.Program
	info   *Info
	errs   []*Error
	vars   map[string]*Symbol // declared variables
	bufs   map[string]*Symbol
	loops  map[string]*Symbol // active loop variables (scoped)
	params map[string]bool    // free identifiers
}

// Check analyses the program and returns symbol/type information. On
// failure it returns the first error; use CheckAll to collect every
// diagnostic with its position.
func Check(prog *ast.Program) (*Info, error) {
	info, errs := CheckAll(prog)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return info, nil
}

// CheckAll analyses the program and returns symbol/type information plus
// every semantic error found (nil Info when errs is non-empty). All
// errors carry source positions, so vet and typecheck findings render
// uniformly as file:line:col.
func CheckAll(prog *ast.Program) (*Info, ErrorList) {
	c := &checker{
		prog: prog,
		info: &Info{
			Prog:       prog,
			Symbols:    make(map[*ast.Ident]*Symbol),
			Types:      make(map[ast.Expr]ExprType),
			FieldIndex: make(map[string]int),
		},
		vars:   make(map[string]*Symbol),
		bufs:   make(map[string]*Symbol),
		loops:  make(map[string]*Symbol),
		params: make(map[string]bool),
	}
	c.collectFields()
	c.collectBuffers()
	c.collectVars()
	c.checkStmts(prog.Body, false)
	if len(c.errs) > 0 {
		sort.SliceStable(c.errs, func(i, j int) bool {
			a, b := c.errs[i].Pos, c.errs[j].Pos
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Col < b.Col
		})
		return nil, ErrorList(c.errs)
	}
	for name := range c.params {
		c.info.Params = append(c.info.Params, name)
	}
	sort.Strings(c.info.Params)
	return c.info, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) collectFields() {
	for i, f := range c.prog.Fields {
		if _, dup := c.info.FieldIndex[f]; dup {
			pos := c.prog.NamePos
			if i < len(c.prog.FieldsPos) {
				pos = c.prog.FieldsPos[i]
			}
			c.errorf(pos, "duplicate packet field %q", f)
			continue
		}
		c.info.FieldIndex[f] = i
	}
}

func (c *checker) collectBuffers() {
	for _, bp := range c.prog.Params {
		if _, dup := c.bufs[bp.Name]; dup {
			c.errorf(bp.NamePos, "duplicate buffer parameter %q", bp.Name)
			continue
		}
		sym := &Symbol{Kind: SymBuffer, Name: bp.Name, Buf: bp}
		c.bufs[bp.Name] = sym
		if bp.Dir == ast.DirIn {
			c.info.Inputs = append(c.info.Inputs, bp)
		} else {
			c.info.Outputs = append(c.info.Outputs, bp)
		}
		if bp.Size != nil {
			c.checkConstExpr(bp.Size)
		}
	}
	if len(c.info.Outputs) == 0 {
		c.errorf(c.prog.NamePos, "program %s has no output buffer", c.prog.Name)
	}
}

func (c *checker) collectVars() {
	for _, d := range c.prog.Decls {
		if _, dup := c.vars[d.Name]; dup {
			c.errorf(d.NamePos, "variable %q redeclared", d.Name)
			continue
		}
		if _, isBuf := c.bufs[d.Name]; isBuf {
			c.errorf(d.NamePos, "variable %q shadows buffer parameter", d.Name)
			continue
		}
		if d.Name == "t" || d.Name == "T" {
			c.errorf(d.NamePos, "%q is reserved (current step / horizon)", d.Name)
			continue
		}
		if d.Type.Kind == ast.TBuffer {
			c.errorf(d.NamePos, "buffers can only be program parameters")
			continue
		}
		if d.Type.Kind == ast.TList && d.Storage == ast.Local {
			c.errorf(d.NamePos, "lists must be global (they persist across steps)")
		}
		sym := &Symbol{Kind: SymVar, Name: d.Name, Decl: d, Type: d.Type}
		c.vars[d.Name] = sym
		switch d.Storage {
		case ast.Global:
			c.info.Globals = append(c.info.Globals, d)
		case ast.Local:
			c.info.Locals = append(c.info.Locals, d)
		case ast.Monitor:
			c.info.Monitors = append(c.info.Monitors, d)
		}
		if d.Type.Size != nil {
			c.checkConstExpr(d.Type.Size)
		}
		if d.Init != nil {
			want := ast.TInt
			if d.Type.Kind == ast.TBool {
				want = ast.TBool
			}
			if d.Type.Kind == ast.TList {
				c.errorf(d.NamePos, "lists cannot have initializers")
			} else {
				got := c.checkExpr(d.Init, false)
				if got.Kind != want || got.IsArray {
					c.errorf(d.Init.Pos(), "initializer for %s has type %v, want %v", d.Name, got, want)
				}
			}
		}
	}
}

// checkConstExpr checks size/bound expressions: integer-typed, and made
// only of literals, parameters and +,-,*,/,%.
func (c *checker) checkConstExpr(e ast.Expr) {
	switch n := e.(type) {
	case *ast.IntLit:
	case *ast.Ident:
		c.resolveConstIdent(n)
	case *ast.Binary:
		switch n.Op {
		case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
			c.checkConstExpr(n.X)
			c.checkConstExpr(n.Y)
		default:
			c.errorf(e.Pos(), "operator %v not allowed in constant expression", n.Op)
		}
	case *ast.Unary:
		if n.Op != ast.OpNegate {
			c.errorf(e.Pos(), "operator %v not allowed in constant expression", n.Op)
		}
		c.checkConstExpr(n.X)
	default:
		c.errorf(e.Pos(), "size/bound must be a compile-time constant expression (§7)")
	}
}

// resolveConstIdent resolves an identifier in constant position: a
// compile-time parameter or T.
func (c *checker) resolveConstIdent(id *ast.Ident) {
	if id.Name == "T" || id.Name == "t" {
		c.info.Symbols[id] = &Symbol{Kind: SymBuiltin, Name: id.Name}
		c.info.Types[id] = ExprType{Kind: ast.TInt}
		return
	}
	if _, isVar := c.vars[id.Name]; isVar {
		c.errorf(id.IdPos, "size/bound must be compile-time constant; %q is a variable", id.Name)
		return
	}
	if _, isLoop := c.loops[id.Name]; isLoop {
		// Loop variables are unrolled to constants, so they are permitted
		// in nested bounds.
		c.info.Symbols[id] = c.loops[id.Name]
		c.info.Types[id] = ExprType{Kind: ast.TInt}
		return
	}
	c.params[id.Name] = true
	c.info.Symbols[id] = &Symbol{Kind: SymParam, Name: id.Name}
	c.info.Types[id] = ExprType{Kind: ast.TInt}
}

// checkStmts checks a statement list. ghost is true inside monitor-update
// context (currently: assert/assume handled separately).
func (c *checker) checkStmts(stmts []ast.Stmt, ghost bool) {
	for _, s := range stmts {
		c.checkStmt(s, ghost)
	}
}

func (c *checker) checkStmt(s ast.Stmt, ghost bool) {
	switch n := s.(type) {
	case *ast.VarDecl:
		c.errorf(n.NamePos, "declarations must precede statements") // decls are hoisted by parser
	case *ast.Assign:
		c.checkAssign(n)
	case *ast.PushBack:
		lt := c.checkExpr(n.List, false)
		if lt.Kind != ast.TList {
			c.errorf(n.List.Pos(), "push_back on non-list %v", lt)
		}
		at := c.checkExpr(n.Arg, false)
		if at.Kind != ast.TInt || at.IsArray {
			c.errorf(n.Arg.Pos(), "push_back argument must be int, got %v", at)
		}
	case *ast.Move:
		c.checkBufferExpr(n.Src, "move source")
		c.checkBufferExpr(n.Dst, "move destination")
		if _, isFilter := n.Dst.(*ast.Filter); isFilter {
			c.errorf(n.Dst.Pos(), "move destination cannot be a filtered view")
		}
		ct := c.checkExpr(n.Count, false)
		if ct.Kind != ast.TInt || ct.IsArray {
			c.errorf(n.Count.Pos(), "move count must be int, got %v", ct)
		}
	case *ast.If:
		ct := c.checkExpr(n.Cond, ghost)
		if ct.Kind != ast.TBool {
			c.errorf(n.Cond.Pos(), "if condition must be bool, got %v", ct)
		}
		c.checkStmts(n.Then, ghost)
		c.checkStmts(n.Else, ghost)
	case *ast.For:
		c.checkConstExpr(n.Lo)
		c.checkConstExpr(n.Hi)
		if _, exists := c.loops[n.Var]; exists {
			c.errorf(n.KwPos, "loop variable %q shadows an enclosing loop variable", n.Var)
		}
		if _, isVar := c.vars[n.Var]; isVar {
			c.errorf(n.KwPos, "loop variable %q shadows a declared variable", n.Var)
		}
		sym := &Symbol{Kind: SymLoopVar, Name: n.Var}
		c.loops[n.Var] = sym
		c.checkStmts(n.Body, ghost)
		delete(c.loops, n.Var)
	case *ast.Assert:
		ct := c.checkExpr(n.Cond, true)
		if ct.Kind != ast.TBool {
			c.errorf(n.Cond.Pos(), "assert condition must be bool, got %v", ct)
		}
	case *ast.Assume:
		ct := c.checkExpr(n.Cond, true)
		if ct.Kind != ast.TBool {
			c.errorf(n.Cond.Pos(), "assume condition must be bool, got %v", ct)
		}
	case *ast.Havoc:
		sym := c.lookupVar(n.Target)
		if sym == nil {
			return
		}
		if sym.Type.IsArray() {
			c.errorf(n.KwPos, "cannot havoc a whole array")
		}
		if sym.Decl != nil && sym.Decl.Storage == ast.Monitor {
			c.errorf(n.KwPos, "cannot havoc a monitor (ghost code)")
		}
	default:
		c.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

func (c *checker) checkAssign(n *ast.Assign) {
	// Resolve the target.
	var targetSym *Symbol
	switch lhs := n.LHS.(type) {
	case *ast.Ident:
		targetSym = c.lookupVar(lhs)
		if targetSym == nil {
			return
		}
		if targetSym.Type.IsArray() {
			c.errorf(lhs.IdPos, "cannot assign whole array %q", lhs.Name)
			return
		}
	case *ast.Index:
		base, ok := lhs.X.(*ast.Ident)
		if !ok {
			c.errorf(lhs.Pos(), "invalid assignment target")
			return
		}
		targetSym = c.lookupVar(base)
		if targetSym == nil {
			return
		}
		if !targetSym.Type.IsArray() {
			c.errorf(base.IdPos, "%q is not an array", base.Name)
			return
		}
		it := c.checkExpr(lhs.Idx, false)
		if it.Kind != ast.TInt || it.IsArray {
			c.errorf(lhs.Idx.Pos(), "array index must be int, got %v", it)
		}
	default:
		c.errorf(n.LHS.Pos(), "invalid assignment target")
		return
	}
	c.info.Types[n.LHS] = ExprType{Kind: targetSym.Type.Kind}

	ghostTarget := targetSym.Decl != nil && targetSym.Decl.Storage == ast.Monitor

	// pop_front is only legal as the entire RHS.
	if pf, ok := n.RHS.(*ast.PopFront); ok {
		lt := c.checkExpr(pf.List, ghostTarget)
		if lt.Kind != ast.TList {
			c.errorf(pf.List.Pos(), "pop_front on non-list %v", lt)
		}
		if targetSym.Type.Kind != ast.TInt {
			c.errorf(n.LHS.Pos(), "pop_front yields int; target %q is %v", targetSym.Name, targetSym.Type.Kind)
		}
		if ghostTarget {
			c.errorf(n.LHS.Pos(), "pop_front mutates program state; monitors are ghost code")
		}
		c.info.Types[n.RHS] = ExprType{Kind: ast.TInt}
		return
	}
	rt := c.checkExpr(n.RHS, ghostTarget)
	if rt.IsArray {
		c.errorf(n.RHS.Pos(), "cannot assign an array value")
		return
	}
	if rt.Kind != targetSym.Type.Kind {
		c.errorf(n.RHS.Pos(), "cannot assign %v to %v variable %q", rt, targetSym.Type.Kind, targetSym.Name)
	}
}

func (c *checker) lookupVar(id *ast.Ident) *Symbol {
	if sym, ok := c.vars[id.Name]; ok {
		c.info.Symbols[id] = sym
		return sym
	}
	if _, isLoop := c.loops[id.Name]; isLoop {
		c.errorf(id.IdPos, "cannot assign to loop variable %q", id.Name)
		return nil
	}
	if _, isBuf := c.bufs[id.Name]; isBuf {
		c.errorf(id.IdPos, "cannot assign to buffer %q (use move-p/move-b)", id.Name)
		return nil
	}
	c.errorf(id.IdPos, "assignment to undeclared variable %q", id.Name)
	return nil
}

// checkBufferExpr checks that e denotes a buffer (possibly indexed from a
// buffer array, possibly filtered) and returns whether it did.
func (c *checker) checkBufferExpr(e ast.Expr, what string) bool {
	t := c.checkExpr(e, false)
	if t.Kind != ast.TBuffer || t.IsArray {
		c.errorf(e.Pos(), "%s must be a buffer, got %v", what, t)
		return false
	}
	return true
}

// checkExpr computes and records the type of e. ghost reports whether the
// expression occurs in ghost context (assert/assume conditions or monitor
// updates), where reading monitors is allowed.
func (c *checker) checkExpr(e ast.Expr, ghost bool) ExprType {
	t := c.exprType(e, ghost)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr, ghost bool) ExprType {
	switch n := e.(type) {
	case *ast.IntLit:
		return ExprType{Kind: ast.TInt}
	case *ast.BoolLit:
		return ExprType{Kind: ast.TBool}
	case *ast.Ident:
		return c.identType(n, ghost)
	case *ast.Unary:
		xt := c.checkExpr(n.X, ghost)
		if n.Op == ast.OpNot {
			if xt.Kind != ast.TBool || xt.IsArray {
				c.errorf(n.X.Pos(), "operand of ! must be bool, got %v", xt)
			}
			return ExprType{Kind: ast.TBool}
		}
		if xt.Kind != ast.TInt || xt.IsArray {
			c.errorf(n.X.Pos(), "operand of unary - must be int, got %v", xt)
		}
		return ExprType{Kind: ast.TInt}
	case *ast.Binary:
		return c.binaryType(n, ghost)
	case *ast.Index:
		xt := c.checkExpr(n.X, ghost)
		it := c.checkExpr(n.Idx, ghost)
		if it.Kind != ast.TInt || it.IsArray {
			c.errorf(n.Idx.Pos(), "index must be int, got %v", it)
		}
		if !xt.IsArray {
			c.errorf(n.X.Pos(), "cannot index non-array %v", xt)
			return ExprType{Kind: xt.Kind}
		}
		return ExprType{Kind: xt.Kind}
	case *ast.Backlog:
		c.checkBufferExpr(n.Buf, "backlog argument")
		return ExprType{Kind: ast.TInt}
	case *ast.Filter:
		c.checkBufferExpr(n.Buf, "filter base")
		if _, ok := c.info.FieldIndex[n.Field]; !ok {
			c.errorf(n.Buf.Pos(), "unknown packet field %q (declare with `fields`)", n.Field)
		}
		vt := c.checkExpr(n.Value, ghost)
		if vt.Kind != ast.TInt || vt.IsArray {
			c.errorf(n.Value.Pos(), "filter value must be int, got %v", vt)
		}
		return ExprType{Kind: ast.TBuffer}
	case *ast.ListQuery:
		lt := c.checkExpr(n.List, ghost)
		if lt.Kind != ast.TList || lt.IsArray {
			c.errorf(n.List.Pos(), "%v on non-list %v", n.Op, lt)
		}
		if n.Op == ast.ListHas {
			at := c.checkExpr(n.Arg, ghost)
			if at.Kind != ast.TInt || at.IsArray {
				c.errorf(n.Arg.Pos(), "has argument must be int, got %v", at)
			}
			return ExprType{Kind: ast.TBool}
		}
		if n.Op == ast.ListEmpty {
			return ExprType{Kind: ast.TBool}
		}
		return ExprType{Kind: ast.TInt}
	case *ast.PopFront:
		c.errorf(n.Pos(), "pop_front may only appear as the entire right-hand side of an assignment")
		return ExprType{Kind: ast.TInt}
	}
	c.errorf(e.Pos(), "unhandled expression %T", e)
	return ExprType{Kind: ast.TInt}
}

func (c *checker) identType(id *ast.Ident, ghost bool) ExprType {
	if sym, ok := c.vars[id.Name]; ok {
		c.info.Symbols[id] = sym
		if sym.Decl.Storage == ast.Monitor && !ghost {
			c.errorf(id.IdPos, "monitor %q is ghost code and cannot influence program behaviour (§3)", id.Name)
		}
		return ExprType{Kind: sym.Type.Kind, IsArray: sym.Type.IsArray()}
	}
	if sym, ok := c.loops[id.Name]; ok {
		c.info.Symbols[id] = sym
		return ExprType{Kind: ast.TInt}
	}
	if sym, ok := c.bufs[id.Name]; ok {
		c.info.Symbols[id] = sym
		return ExprType{Kind: ast.TBuffer, IsArray: sym.Buf.Size != nil}
	}
	if id.Name == "t" || id.Name == "T" {
		c.info.Symbols[id] = &Symbol{Kind: SymBuiltin, Name: id.Name}
		return ExprType{Kind: ast.TInt}
	}
	// Free identifier: compile-time parameter.
	c.params[id.Name] = true
	c.info.Symbols[id] = &Symbol{Kind: SymParam, Name: id.Name}
	return ExprType{Kind: ast.TInt}
}

func (c *checker) binaryType(n *ast.Binary, ghost bool) ExprType {
	xt := c.checkExpr(n.X, ghost)
	yt := c.checkExpr(n.Y, ghost)
	intInt := func(what string) {
		if xt.Kind != ast.TInt || xt.IsArray {
			c.errorf(n.X.Pos(), "left operand of %s must be int, got %v", what, xt)
		}
		if yt.Kind != ast.TInt || yt.IsArray {
			c.errorf(n.Y.Pos(), "right operand of %s must be int, got %v", what, yt)
		}
	}
	switch n.Op {
	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
		intInt(n.Op.String())
		return ExprType{Kind: ast.TInt}
	case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		intInt(n.Op.String())
		return ExprType{Kind: ast.TBool}
	case ast.OpEq, ast.OpNeq:
		if xt.IsArray || yt.IsArray {
			c.errorf(n.X.Pos(), "cannot compare arrays")
		} else if xt.Kind != yt.Kind {
			c.errorf(n.X.Pos(), "cannot compare %v with %v", xt, yt)
		} else if xt.Kind == ast.TBuffer || xt.Kind == ast.TList {
			c.errorf(n.X.Pos(), "cannot compare %v values", xt.Kind)
		}
		return ExprType{Kind: ast.TBool}
	case ast.OpAnd, ast.OpOr:
		if xt.Kind != ast.TBool || xt.IsArray {
			c.errorf(n.X.Pos(), "left operand of %v must be bool, got %v", n.Op, xt)
		}
		if yt.Kind != ast.TBool || yt.IsArray {
			c.errorf(n.Y.Pos(), "right operand of %v must be bool, got %v", n.Op, yt)
		}
		return ExprType{Kind: ast.TBool}
	}
	c.errorf(n.Pos(), "unhandled operator %v", n.Op)
	return ExprType{Kind: ast.TInt}
}
