package typecheck

import (
	"strings"
	"testing"

	"buffy/internal/lang/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, sub string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Fatalf("error %q does not contain %q", err, sub)
	}
}

const fig4 = `
fq(buffer[N] ibs, buffer ob){
  global list nq; global list oq;
  for (i in 0..N) do{
    if ( backlog-p(ibs[i]) > 0 & !oq.has(i) & !nq.has(i))
      nq.enq(i);}
  local bool dequeued; local int head;
  local dequeued = false;
  for (i in 0..N) do {
    if (!dequeued) {
      head = -1;
      if (!nq.empty()) { head = nq.pop_front();}
      else {
        if (!oq.empty()) { head = oq.pop_front();}}
      if (head != -1) {
        if ( backlog-p(ibs[head]) > 1) {
          oq.push_back(head);}
        if ( backlog-p(ibs[head]) > 0) {
          move-p(ibs[head], ob, 1);
          dequeued = true;}}}}}
`

func TestCheckFigure4(t *testing.T) {
	info := mustCheck(t, fig4)
	if len(info.Params) != 1 || info.Params[0] != "N" {
		t.Errorf("params = %v, want [N]", info.Params)
	}
	if len(info.Globals) != 2 || len(info.Locals) != 2 {
		t.Errorf("globals=%d locals=%d, want 2,2", len(info.Globals), len(info.Locals))
	}
	if len(info.Inputs) != 1 || len(info.Outputs) != 1 {
		t.Errorf("inputs=%d outputs=%d", len(info.Inputs), len(info.Outputs))
	}
}

func TestCheckMonitorQuery(t *testing.T) {
	info := mustCheck(t, `
p(buffer a, buffer b) {
	monitor int served;
	move-p(a, b, 1);
	served = served + 1;
	if (t == T-1) { assert(served >= T/2); }
}`)
	if len(info.Monitors) != 1 {
		t.Errorf("monitors = %d, want 1", len(info.Monitors))
	}
	if len(info.Params) != 0 {
		t.Errorf("params = %v, want none (t and T are builtins)", info.Params)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ name, src, sub string }{
		{"assign to buffer",
			`p(buffer a, buffer b) { a = 3; }`, "cannot assign to buffer"},
		{"assign to loop var",
			`p(buffer a, buffer b) { for (i in 0..2) { i = 3; } }`, "loop variable"},
		{"undeclared assignment",
			`p(buffer a, buffer b) { x = 3; }`, "undeclared"},
		{"bool plus int",
			`p(buffer a, buffer b) { local int x; x = true + 1; }`, "must be int"},
		{"if on int",
			`p(buffer a, buffer b) { local int x; if (x) { } }`, "must be bool"},
		{"monitor influences behaviour",
			`p(buffer a, buffer b) { monitor int m; local int x; x = m; }`, "ghost"},
		{"monitor in move count",
			`p(buffer a, buffer b) { monitor int m; move-p(a, b, m); }`, "ghost"},
		{"monitor in if condition",
			`p(buffer a, buffer b) { monitor int m; if (m > 0) { move-p(a,b,1); } }`, "ghost"},
		{"pop_front nested",
			`p(buffer a, buffer b) { global list l; local int x; x = l.pop_front() + 1; }`, "entire right-hand side"},
		{"pop into bool",
			`p(buffer a, buffer b) { global list l; local bool q; q = l.pop_front(); }`, "yields int"},
		{"push non-list",
			`p(buffer a, buffer b) { local int x; x.push_back(1); }`, "non-list"},
		{"has on int",
			`p(buffer a, buffer b) { local int x; local bool q; q = x.has(3); }`, "non-list"},
		{"backlog of int",
			`p(buffer a, buffer b) { local int x; x = backlog-p(x); }`, "must be a buffer"},
		{"unknown field",
			`p(buffer a, buffer b) { local int x; x = backlog-p(a |> nosuch == 1); }`, "unknown packet field"},
		{"move to filter",
			`p(buffer a, buffer b) { move-p(a, b |> flow == 1, 1); }`, "cannot be a filtered view"},
		{"redeclared var",
			`p(buffer a, buffer b) { local int x; local bool x; }`, "redeclared"},
		{"no output buffer",
			`p(in buffer a) { local int x; x = 1; }`, "no output buffer"},
		{"variable loop bound",
			`p(buffer a, buffer b) { local int n; for (i in 0..n) { } }`, "compile-time constant"},
		{"local list",
			`p(buffer a, buffer b) { local list l; }`, "must be global"},
		{"buffer decl",
			`p(buffer a, buffer b) { global buffer q; }`, "only be program parameters"},
		{"reserved t",
			`p(buffer a, buffer b) { local int t; }`, "reserved"},
		{"shadow buffer",
			`p(buffer a, buffer b) { local int a; }`, "shadows buffer"},
		{"index non-array",
			`p(buffer a, buffer b) { local int x; x = x[0]; }`, "non-array"},
		{"compare buffer",
			`p(buffer a, buffer b) { local bool q; q = a == b; }`, "cannot compare buffer"},
		{"whole array assign",
			`p(buffer a, buffer b) { local int[3] arr; arr = 0; }`, "whole array"},
		{"monitor pop",
			`p(buffer a, buffer b) { global list l; monitor int m; m = l.pop_front(); }`, "ghost"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantErr(t, c.src, c.sub) })
	}
}

func TestCheckArrays(t *testing.T) {
	info := mustCheck(t, `
p(buffer[N] ins, buffer ob) {
	global int[N] credit;
	for (i in 0..N) {
		credit[i] = credit[i] + 1;
		if (credit[i] > 0 & backlog-p(ins[i]) > 0) {
			move-p(ins[i], ob, 1);
			credit[i] = credit[i] - 1;
		}
	}
}`)
	if len(info.Params) != 1 || info.Params[0] != "N" {
		t.Errorf("params = %v", info.Params)
	}
}

func TestCheckGhostReadInAssert(t *testing.T) {
	mustCheck(t, `
p(buffer a, buffer b) {
	monitor int m;
	m = m + backlog-p(a);
	assert(m <= 100);
	assume(m >= 0);
	move-p(a, b, 1);
}`)
}

func TestCheckFilterChain(t *testing.T) {
	mustCheck(t, `
p(buffer a, buffer b) {
	fields flow, prio;
	local int n;
	n = backlog-p(a |> flow == 1 |> prio == 2);
	move-p(a |> flow == 1, b, n);
}`)
}

func TestCheckParamsSorted(t *testing.T) {
	info := mustCheck(t, `
p(buffer[Z] a, buffer b) {
	local int x;
	for (i in 0..Alpha) { x = x + M; }
	move-p(a[0], b, x);
}`)
	want := []string{"Alpha", "M", "Z"}
	if len(info.Params) != len(want) {
		t.Fatalf("params = %v, want %v", info.Params, want)
	}
	for i := range want {
		if info.Params[i] != want[i] {
			t.Errorf("params[%d] = %q, want %q", i, info.Params[i], want[i])
		}
	}
}

func TestHavocChecks(t *testing.T) {
	mustCheck(t, `p(buffer a, buffer b) {
		local int x; global bool q;
		havoc x;
		havoc q;
		assume(x >= 0);
		move-p(a, b, x);
	}`)
	cases := []struct{ name, src, sub string }{
		{"havoc undeclared",
			`p(buffer a, buffer b) { havoc nosuch; move-p(a,b,1); }`, "undeclared"},
		{"havoc monitor",
			`p(buffer a, buffer b) { monitor int m; havoc m; move-p(a,b,1); }`, "ghost"},
		{"havoc array",
			`p(buffer a, buffer b) { local int[3] xs; havoc xs; move-p(a,b,1); }`, "whole array"},
		{"havoc buffer",
			`p(buffer a, buffer b) { havoc a; move-p(a,b,1); }`, "buffer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantErr(t, c.src, c.sub) })
	}
}

func TestSymbolsResolved(t *testing.T) {
	info := mustCheck(t, fig4)
	kinds := map[SymKind]int{}
	for _, sym := range info.Symbols {
		kinds[sym.Kind]++
	}
	if kinds[SymVar] == 0 || kinds[SymBuffer] == 0 || kinds[SymLoopVar] == 0 {
		t.Errorf("symbol kinds missing: %v", kinds)
	}
}

func TestFieldIndices(t *testing.T) {
	info := mustCheck(t, `p(buffer a, buffer b) {
		fields flow, prio, size;
		local int n;
		n = backlog-p(a |> size == 1);
		move-p(a, b, n);
	}`)
	if info.FieldIndex["flow"] != 0 || info.FieldIndex["prio"] != 1 || info.FieldIndex["size"] != 2 {
		t.Errorf("field indices: %v", info.FieldIndex)
	}
}

func TestDuplicateField(t *testing.T) {
	wantErr(t, `p(buffer a, buffer b) { fields flow, flow; move-p(a, b, 1); }`, "duplicate packet field")
}
