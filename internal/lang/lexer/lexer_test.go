package lexer

import (
	"testing"

	"buffy/internal/lang/token"
)

func kinds(src string) []token.Kind {
	var out []token.Kind
	for _, t := range New(src).All() {
		out = append(out, t.Kind)
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	want = append(want, token.EOF)
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("%q: got %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%q: token %d = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "= == != < <= > >= + - * / %",
		token.ASSIGN, token.EQ, token.NEQ, token.LT, token.LE, token.GT,
		token.GE, token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT)
	expectKinds(t, "& && | || ! |>",
		token.AND, token.AND, token.OR, token.OR, token.NOT, token.PIPE)
	expectKinds(t, "( ) { } [ ] , ; . .. :",
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACKET, token.RBRACKET, token.COMMA, token.SEMICOLON,
		token.DOT, token.DOTDOT, token.COLON)
}

func TestHyphenatedKeywords(t *testing.T) {
	expectKinds(t, "backlog-p backlog-b move-p move-b",
		token.KwBacklogP, token.KwBacklogB, token.KwMoveP, token.KwMoveB)
	// Underscore aliases.
	expectKinds(t, "backlog_p move_b", token.KwBacklogP, token.KwMoveB)
	// A '-' after other identifiers stays subtraction.
	expectKinds(t, "backlog - p", token.IDENT, token.MINUS, token.IDENT)
	expectKinds(t, "backlogx-p", token.IDENT, token.MINUS, token.IDENT)
	// backlog-q is not a keyword: must lex as backlog, -, q.
	expectKinds(t, "backlog-q", token.IDENT, token.MINUS, token.IDENT)
	// move-p1 is not a keyword either.
	expectKinds(t, "move-p1", token.IDENT, token.MINUS, token.IDENT)
}

func TestKeywordsVsIdents(t *testing.T) {
	expectKinds(t, "program buffer int bool list global local monitor if else for in out do true false assert assume fields param havoc",
		token.KwProgram, token.KwBuffer, token.KwInt, token.KwBool, token.KwList,
		token.KwGlobal, token.KwLocal, token.KwMonitor, token.KwIf, token.KwElse,
		token.KwFor, token.KwIn, token.KwOut, token.KwDo, token.KwTrue,
		token.KwFalse, token.KwAssert, token.KwAssume, token.KwFields,
		token.KwParam, token.KwHavoc)
	expectKinds(t, "programx iff Buffer", token.IDENT, token.IDENT, token.IDENT)
}

func TestNumbersAndPositions(t *testing.T) {
	lx := New("x = 42;\n  y = 7;")
	toks := lx.All()
	if toks[2].Lit != "42" || toks[2].Kind != token.INT {
		t.Errorf("got %v", toks[2])
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("x at %v, want 1:1", toks[0].Pos)
	}
	if toks[4].Pos.Line != 2 || toks[4].Pos.Col != 3 {
		t.Errorf("y at %v, want 2:3", toks[4].Pos)
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\nb /* block\ncomment */ c",
		token.IDENT, token.IDENT, token.IDENT)
}

func TestUnterminatedBlockComment(t *testing.T) {
	lx := New("a /* never closed")
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Error("expected unterminated-comment error")
	}
}

func TestIllegalCharacter(t *testing.T) {
	lx := New("a @ b")
	toks := lx.All()
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("got %v, want ILLEGAL", toks[1])
	}
	if len(lx.Errors()) == 0 {
		t.Error("expected lexical error")
	}
}

func TestMalformedNumber(t *testing.T) {
	lx := New("x = 12ab;")
	toks := lx.All()
	found := false
	for _, tok := range toks {
		if tok.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found || len(lx.Errors()) == 0 {
		t.Error("expected malformed-number error")
	}
}

func TestDotDotVersusDot(t *testing.T) {
	expectKinds(t, "0..N", token.INT, token.DOTDOT, token.IDENT)
	expectKinds(t, "l.has", token.IDENT, token.DOT, token.IDENT)
}
