// Package lexer tokenizes Buffy source text. The only unusual feature is
// hyphenated keywords (backlog-p, move-b, ...): a '-' inside an identifier
// is consumed only when the resulting word is one of the known hyphenated
// keywords, so ordinary subtraction like "a-b" still lexes as three tokens.
package lexer

import (
	"fmt"

	"buffy/internal/lang/token"
)

// Error is a lexical error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// Lexer scans Buffy source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []*Error
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...interface{}) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()

	switch {
	case isLetter(c):
		return l.scanWord(pos, c)
	case isDigit(c):
		return l.scanNumber(pos, c)
	}

	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: pos} }
	switch c {
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EQ)
		}
		return mk(token.ASSIGN)
	case '+':
		return mk(token.PLUS)
	case '-':
		return mk(token.MINUS)
	case '*':
		return mk(token.STAR)
	case '/':
		return mk(token.SLASH)
	case '%':
		return mk(token.PERCENT)
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(token.LE)
		}
		return mk(token.LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.GE)
		}
		return mk(token.GT)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NEQ)
		}
		return mk(token.NOT)
	case '&':
		if l.peek() == '&' {
			l.advance()
		}
		return mk(token.AND)
	case '|':
		if l.peek() == '>' {
			l.advance()
			return mk(token.PIPE)
		}
		if l.peek() == '|' {
			l.advance()
		}
		return mk(token.OR)
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case '[':
		return mk(token.LBRACKET)
	case ']':
		return mk(token.RBRACKET)
	case ',':
		return mk(token.COMMA)
	case ';':
		return mk(token.SEMICOLON)
	case ':':
		return mk(token.COLON)
	case '.':
		if l.peek() == '.' {
			l.advance()
			return mk(token.DOTDOT)
		}
		return mk(token.DOT)
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanWord(pos token.Pos, first byte) token.Token {
	start := l.off - 1
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	word := l.src[start:l.off]
	// Hyphenated keyword lookahead: "backlog" + "-p" etc. Only consume the
	// hyphen when the combined word is a known keyword.
	if l.peek() == '-' && (word == "backlog" || word == "move") {
		save := *l
		l.advance() // '-'
		if isLetter(l.peek()) {
			s2 := l.off
			for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
				l.advance()
			}
			combined := word + "-" + l.src[s2:l.off]
			if k, ok := token.Keywords[combined]; ok {
				return token.Token{Kind: k, Lit: combined, Pos: pos}
			}
		}
		*l = save // not a hyphenated keyword; restore
	}
	if k, ok := token.Keywords[word]; ok {
		return token.Token{Kind: k, Lit: word, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: word, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos, first byte) token.Token {
	start := l.off - 1
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if isLetter(l.peek()) {
		bad := l.pos()
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		l.errorf(bad, "malformed number %q", l.src[start:l.off])
		return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Pos: pos}
	}
	return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
}

// All tokenizes the whole input (testing helper).
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
