package sema

// Pass 3 well-formedness lints for queueing-model programs. These are
// heuristic (keyed on the corpus's parameter naming conventions) and
// therefore never error-severity: a rate of zero or a burst below one
// packet is almost always a configuration mistake, but the program is
// still analyzable.

import (
	"fmt"
	"regexp"
	"sort"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/typecheck"
)

var (
	// Rate/capacity/weight/quantum-style parameters: service rates (RATE,
	// C, R, CH/CV), weights (W1, WH), quanta (Q, Q1), window sizes (IW).
	rateishName = regexp.MustCompile(`^(RATE|C|R|CH|CV|RH|RV|W[0-9A-Z]*|Q[0-9A-Z]*|IW)$`)
	// Token-bucket burst parameters.
	burstishName = regexp.MustCompile(`^(BURST|B[HV]?[0-9]*)$`)
	// Priority/weight parameters eligible for the tie lint.
	weightishName = regexp.MustCompile(`^(W[0-9A-Z]*|PRIO[0-9A-Z]*)$`)
)

func lintPass(info *typecheck.Info, opts Options, rep *Report) {
	prog := info.Prog

	// Parameters used as array sizes must be positive regardless of name.
	sizeParams := make(map[string]bool)
	noteSize := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			sizeParams[id.Name] = true
		}
	}
	for _, bp := range prog.Params {
		if bp.Size != nil {
			noteSize(bp.Size)
		}
	}
	for _, d := range prog.Decls {
		if d.Type.Size != nil {
			noteSize(d.Type.Size)
		}
	}

	// B201 / B202 fire only on parameters with bound values: an unbound
	// parameter's value is unknown, and guessing from the name alone
	// would be noise.
	for _, name := range info.Params {
		v, bound := opts.Params[name]
		if !bound {
			continue
		}
		switch {
		case v <= 0 && (rateishName.MatchString(name) || sizeParams[name]):
			what := "rate/weight"
			if sizeParams[name] {
				what = "array-size"
			}
			rep.add(Diagnostic{
				Code: CodeBadRate, Severity: Warn, Pos: prog.NamePos,
				Msg:  fmt.Sprintf("%s parameter %s = %d is not positive", what, name, v),
				Hint: "a non-positive value disables the mechanism it configures; bind a positive constant",
			})
		case v < 1 && burstishName.MatchString(name):
			rep.add(Diagnostic{
				Code: CodeTinyBurst, Severity: Warn, Pos: prog.NamePos,
				Msg:  fmt.Sprintf("token-bucket burst %s = %d admits no packet (one packet needs burst >= 1)", name, v),
				Hint: "the bucket can never accumulate enough credit to release a packet; raise the burst",
			})
		}
	}

	// B204: priority/weight ties. Equal weights make "strict priority"
	// scheds degenerate and FQ/DRR shares identical — usually a typo in
	// a model meant to differentiate classes.
	byValue := make(map[int64][]string)
	for _, name := range info.Params {
		if v, bound := opts.Params[name]; bound && weightishName.MatchString(name) {
			byValue[v] = append(byValue[v], name)
		}
	}
	vals := make([]int64, 0, len(byValue))
	for v := range byValue {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		names := byValue[v]
		if len(names) < 2 {
			continue
		}
		sort.Strings(names)
		rep.add(Diagnostic{
			Code: CodePriorityTie, Severity: Info, Pos: prog.NamePos,
			Msg:  fmt.Sprintf("priority/weight parameters %v all equal %d", names, v),
			Hint: "equal weights make the classes indistinguishable to the scheduler; differentiate them if that is not intended",
		})
	}
}
