package sema

// Analyze orchestrates the three analysis passes and assembles the
// static verdict. See the package comment in diag.go for the pass
// inventory and DESIGN.md "Analysis tiers" for the soundness contract.

import (
	"fmt"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/token"
	"buffy/internal/lang/typecheck"
)

// maxIntervalT caps the horizon the interval pass will unroll; beyond it
// the pass is skipped (structural checks and lints still run). Far above
// any horizon the solver itself could handle.
const maxIntervalT = 1024

// maxArrayInstances caps per-array instance tracking; larger (or
// unknown-size) arrays are summarized with weak updates.
const maxArrayInstances = 64

// Options configure an analysis. The bounds mirror ir.Options so the
// abstract semantics match what the solver will actually encode; zero
// values take the same defaults ir applies.
type Options struct {
	// T is the time horizon (number of unrolled steps).
	T int
	// Params binds the program's compile-time parameters. Unbound
	// parameters are analyzed as unknown (top) — sound, but conclusive
	// verdicts then usually require the structural facts alone.
	Params map[string]int64
	// BufferCap / OutBufferCap / ArrivalsPerStep / MaxBytes / ListCap
	// mirror the ir.Options fields of the same names.
	BufferCap       int
	OutBufferCap    int
	ArrivalsPerStep int
	MaxBytes        int
	ListCap         int
	// Width is the solver's integer bit width (0: bitblast.DefaultWidth).
	// The interval domain refuses to conclude anything about values that
	// could wrap at this width.
	Width int
}

// DefaultWidth mirrors bitblast.DefaultWidth without importing it (sema
// sits below the backends in the dependency order).
const DefaultWidth = 12

func (o Options) withDefaults(numInputs int) Options {
	if o.T <= 0 {
		o.T = 1
	}
	if o.BufferCap <= 0 {
		o.BufferCap = 8
	}
	if o.ArrivalsPerStep <= 0 {
		o.ArrivalsPerStep = 1
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1
	}
	if o.ListCap <= 0 {
		o.ListCap = numInputs
		if o.ListCap < 4 {
			o.ListCap = 4
		}
	}
	if o.OutBufferCap <= 0 {
		o.OutBufferCap = o.T*o.ArrivalsPerStep*numInputs + o.BufferCap
		if o.OutBufferCap < o.BufferCap {
			o.OutBufferCap = o.BufferCap
		}
	}
	if o.Width <= 0 {
		o.Width = DefaultWidth
	}
	return o
}

// Analyze runs all passes over a type-checked program and returns the
// diagnostics plus, when the program is trivially decidable, a static
// query verdict. It never solves anything and is intended to cost
// microseconds.
func Analyze(info *typecheck.Info, opts Options) *Report {
	rep := &Report{}

	numInputs := 0
	sizeOf := func(bp *ast.BufferParam, params map[string]int64) int64 {
		if bp.Size == nil {
			return 1
		}
		if v, ok := constWithParams(bp.Size, params, opts.T); ok && v > 0 {
			return v
		}
		return -1 // unknown
	}
	for _, bp := range info.Inputs {
		if n := sizeOf(bp, opts.Params); n > 0 {
			numInputs += int(n)
		} else {
			numInputs++
		}
	}
	// Structural checks see the caller's raw horizon (B003 must observe a
	// non-positive T); everything after runs on the defaulted bounds.
	badHorizon := structuralPass(info, opts, rep)
	opts = opts.withDefaults(numInputs)

	syntacticAsserts := 0
	ast.Walk(info.Prog.Body, func(s ast.Stmt) {
		if _, ok := s.(*ast.Assert); ok {
			syntacticAsserts++
		}
	})

	var az *analyzer
	if !badHorizon && opts.T <= maxIntervalT {
		az = newAnalyzer(info, opts, rep, sizeOf)
		az.runIntervals()
	}

	lintPass(info, opts, rep)

	// Verdict assembly — only the over-approximation-sound directions.
	switch {
	case badHorizon:
		// An unusable horizon is an input error, not a decidable query.
	case syntacticAsserts == 0:
		rep.Verdict = Verdict{Verify: "holds", Witness: "no-witness", Reason: ReasonNoAsserts}
	case az == nil:
		// Interval pass didn't run; no dynamic facts to conclude from.
	case az.contradiction:
		rep.Verdict = Verdict{Verify: "holds", Witness: "no-witness", Reason: ReasonAssumeContradiction}
	case az.assertInstances == 0:
		// Every assert sits on a statically-dead path: no execution
		// reaches one, so all hold vacuously and none can witness.
		rep.Verdict = Verdict{Verify: "holds", Witness: "no-witness", Reason: ReasonAssertsUnreachable}
	default:
		if az.assertDefTrue == az.assertInstances {
			rep.Verdict = Verdict{Verify: "holds", Reason: ReasonAssertsAlwaysTrue}
		}
		if az.assertUncondFalse {
			rep.Verdict.Witness = "no-witness"
			rep.Verdict.Reason = ReasonAssertNeverHolds
		}
	}

	rep.Sort()
	return rep
}

func newAnalyzer(info *typecheck.Info, opts Options, rep *Report,
	sizeOf func(*ast.BufferParam, map[string]int64) int64) *analyzer {
	a := &analyzer{
		info:       info,
		opts:       opts,
		d:          newDom(opts.Width),
		rep:        rep,
		bufs:       make(map[string]*bufInfo),
		arrSize:    make(map[string]int64),
		listCap:    int64(opts.ListCap),
		loopVars:   make(map[string]ival),
		condAgg:    make(map[token.Pos]*agg),
		assertAgg:  make(map[token.Pos]*agg),
		negMoveAgg: make(map[token.Pos]*agg),
		overflowAt: make(map[token.Pos]bool),
		contraAt:   make(map[token.Pos]Severity),
	}
	addBuf := func(bp *ast.BufferParam) {
		cap := int64(opts.BufferCap)
		if bp.Dir == ast.DirOut {
			cap = int64(opts.OutBufferCap)
		}
		bi := &bufInfo{param: bp, cap: cap}
		n := sizeOf(bp, opts.Params)
		switch {
		case bp.Size == nil:
			bi.keys = []string{bp.Name}
		case n > 0 && n <= maxArrayInstances:
			for i := int64(0); i < n; i++ {
				bi.keys = append(bi.keys, fmt.Sprintf("%s[%d]", bp.Name, i))
			}
		default:
			bi.keys, bi.summ = []string{bp.Name + "[*]"}, true
		}
		a.bufs[bp.Name] = bi
	}
	for _, bp := range info.Inputs {
		addBuf(bp)
	}
	for _, bp := range info.Outputs {
		addBuf(bp)
	}
	for _, decls := range [][]*ast.VarDecl{info.Globals, info.Locals, info.Monitors} {
		for _, d := range decls {
			if !d.Type.IsArray() {
				continue
			}
			if v, ok := constWithParams(d.Type.Size, opts.Params, opts.T); ok && v > 0 && v <= maxArrayInstances {
				a.arrSize[d.Name] = v
			} else {
				a.arrSize[d.Name] = -1
			}
		}
	}
	return a
}

// constWithParams folds a constant expression given parameter bindings;
// used before an analyzer exists (sizing buffers and arrays).
func constWithParams(e ast.Expr, params map[string]int64, horizon int) (int64, bool) {
	a := &analyzer{opts: Options{T: horizon, Params: params}, loopVars: map[string]ival{}}
	return a.constEval(e)
}
