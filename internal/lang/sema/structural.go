package sema

// Pass 2 structural checks: declaration hygiene, horizon sanity, and
// buffer-topology analysis. These need no abstract execution — they read
// the typed AST and the resolved symbol table.

import (
	"fmt"
	"sort"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/token"
	"buffy/internal/lang/typecheck"
)

// structuralPass appends structural diagnostics to rep. It returns true
// when the horizon is unusable (T <= 0), in which case the interval pass
// must be skipped.
func structuralPass(info *typecheck.Info, opts Options, rep *Report) (badHorizon bool) {
	prog := info.Prog

	// B003: horizon sanity. opts.withDefaults clamps T to >= 1, so probe
	// the caller-supplied value through the report only when it arrives
	// non-positive — Analyze passes the raw value separately.
	if opts.T <= 0 {
		rep.add(Diagnostic{
			Code: CodeBadHorizon, Severity: Error, Pos: prog.NamePos,
			Msg:  fmt.Sprintf("horizon T = %d: analysis needs at least one step", opts.T),
			Hint: "pass -T with a positive horizon",
		})
		badHorizon = true
	}

	// Which declarations and buffer parameters are ever referenced. The
	// symbol table maps every identifier *use* (declarations are not
	// Idents), so presence in it is exactly "referenced somewhere".
	usedDecl := make(map[*ast.VarDecl]bool)
	usedBuf := make(map[*ast.BufferParam]bool)
	for _, sym := range info.Symbols {
		switch sym.Kind {
		case typecheck.SymVar:
			usedDecl[sym.Decl] = true
		case typecheck.SymBuffer:
			usedBuf[sym.Buf] = true
		}
	}

	// B001: declared but never referenced (neither read nor written).
	for _, decls := range [][]*ast.VarDecl{info.Globals, info.Locals, info.Monitors} {
		for _, d := range decls {
			if !usedDecl[d] {
				rep.add(Diagnostic{
					Code: CodeUnusedVar, Severity: Warn, Pos: d.NamePos,
					Msg:  fmt.Sprintf("%v %s %q is declared but never used", d.Storage, d.Type, d.Name),
					Hint: "remove the declaration (every variable widens the solver's state space)",
				})
			}
		}
	}

	// B002: buffer parameter never referenced. Unused buffers still cost
	// the solver arrival variables and capacity tracking every step.
	for _, bufs := range [][]*ast.BufferParam{info.Inputs, info.Outputs} {
		for _, bp := range bufs {
			if !usedBuf[bp] {
				rep.add(Diagnostic{
					Code: CodeUnusedBuffer, Severity: Warn, Pos: bp.NamePos,
					Msg:  fmt.Sprintf("%v buffer %q is never moved from, moved to, or observed", bp.Dir, bp.Name),
					Hint: "drop the parameter or route traffic through it",
				})
			}
		}
	}

	// B006: loop variable shadowing a compile-time parameter. The body
	// then silently sees the induction value, not the constant.
	paramSet := make(map[string]bool, len(info.Params))
	for _, p := range info.Params {
		paramSet[p] = true
	}
	ast.Walk(prog.Body, func(s ast.Stmt) {
		if f, ok := s.(*ast.For); ok && paramSet[f.Var] {
			rep.add(Diagnostic{
				Code: CodeShadowParam, Severity: Warn, Pos: f.KwPos,
				Msg:  fmt.Sprintf("loop variable %q shadows the compile-time parameter of the same name", f.Var),
				Hint: "rename the loop variable; inside the loop it hides the constant",
			})
		}
	})

	// Buffer move topology: an edge src -> dst per move command, with
	// array instances collapsed to their base buffer.
	edges := make(map[string]map[string]bool)
	addEdge := func(src, dst string) {
		if src == "" || dst == "" || src == dst {
			if src != "" && src == dst {
				// self-loop: a buffer feeding itself is a cycle too
				if edges[src] == nil {
					edges[src] = make(map[string]bool)
				}
				edges[src][dst] = true
			}
			return
		}
		if edges[src] == nil {
			edges[src] = make(map[string]bool)
		}
		edges[src][dst] = true
	}
	ast.Walk(prog.Body, func(s ast.Stmt) {
		if mv, ok := s.(*ast.Move); ok {
			addEdge(baseBufferName(mv.Src), baseBufferName(mv.Dst))
		}
	})

	// B005: cycle detection. The netcalc lowering needs a feed-forward
	// network; a cycle guarantees it will refuse the program.
	if cyc := findCycle(edges); len(cyc) > 0 {
		rep.add(Diagnostic{
			Code: CodeNotFeedFwd, Severity: Warn, Pos: movePosFor(prog, cyc[0]),
			Msg:  fmt.Sprintf("buffer topology is not feed-forward: cycle %s", cycleString(cyc)),
			Hint: "netcalc lowering (-backend netcalc, POST /v1/bound) will reject this program; only the SMT tier can analyze it",
		})
	} else if !badHorizon {
		// B004: horizon shallower than the longest input->output path —
		// packets cannot traverse the pipeline inside the horizon, so
		// end-to-end asserts are typically vacuous. Only meaningful on a
		// DAG (longest path is undefined under cycles).
		depth := longestPath(edges, info)
		if depth > 0 && opts.T < depth {
			rep.add(Diagnostic{
				Code: CodeShallowT, Severity: Info, Pos: prog.NamePos,
				Msg:  fmt.Sprintf("horizon T = %d is smaller than the pipeline depth %d", opts.T, depth),
				Hint: fmt.Sprintf("packets need %d steps to reach the output; raise -T to at least %d for end-to-end properties", depth, depth),
			})
		}
	}
	return badHorizon
}

// baseBufferName strips indexing and filtering down to the buffer
// parameter's name ("" when the expression is not rooted at one).
func baseBufferName(e ast.Expr) string {
	switch n := e.(type) {
	case *ast.Ident:
		return n.Name
	case *ast.Index:
		return baseBufferName(n.X)
	case *ast.Filter:
		return baseBufferName(n.Buf)
	}
	return ""
}

// movePosFor finds the first move statement whose source is the given
// buffer, for anchoring the topology diagnostic.
func movePosFor(prog *ast.Program, src string) (pos token.Pos) {
	pos = prog.NamePos
	found := false
	ast.Walk(prog.Body, func(s ast.Stmt) {
		if found {
			return
		}
		if mv, ok := s.(*ast.Move); ok && baseBufferName(mv.Src) == src {
			pos, found = mv.KwPos, true
		}
	})
	return pos
}

// findCycle returns one cycle in the move graph as a node sequence
// (first node repeated at the end), or nil when the graph is a DAG.
func findCycle(edges map[string]map[string]bool) []string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var cycle []string
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = grey
		stack = append(stack, n)
		for m := range edges[n] {
			switch color[m] {
			case grey:
				// unwind the stack back to m
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == m {
						cycle = append(append([]string{}, stack[i:]...), m)
						return true
					}
				}
				cycle = []string{m, m}
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	// Deterministic iteration: sort roots.
	roots := make([]string, 0, len(edges))
	for n := range edges {
		roots = append(roots, n)
	}
	sort.Strings(roots)
	for _, n := range roots {
		if color[n] == white && visit(n) {
			return cycle
		}
	}
	return nil
}

func cycleString(cyc []string) string {
	s := ""
	for i, n := range cyc {
		if i > 0 {
			s += " -> "
		}
		s += n
	}
	return s
}

// longestPath computes the longest input->output path length (in hops)
// of the feed-forward move graph. Each hop costs one step: a move
// executes within a step, but a packet arriving at step t is only
// observable downstream after traversing each queue in sequence.
func longestPath(edges map[string]map[string]bool, info *typecheck.Info) int {
	outSet := make(map[string]bool)
	for _, bp := range info.Outputs {
		outSet[bp.Name] = true
	}
	memo := make(map[string]int)
	var depth func(n string) int
	depth = func(n string) int {
		if d, ok := memo[n]; ok {
			return d
		}
		memo[n] = 0 // cycle guard; graph is a DAG when we get here
		best := 0
		for m := range edges[n] {
			d := depth(m) + 1
			if d > best {
				best = d
			}
		}
		if best == 0 && !outSet[n] {
			// Dead-ends that are not outputs contribute no meaningful
			// pipeline depth.
			best = 0
		}
		memo[n] = best
		return best
	}
	best := 0
	for _, bp := range info.Inputs {
		if d := depth(bp.Name); d > best {
			best = d
		}
	}
	return best
}
