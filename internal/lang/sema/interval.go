package sema

// The interval abstract domain. Every abstract value is a closed integer
// interval [lo, hi]; booleans embed as [0,1] with [1,1] = true and
// [0,0] = false. An empty interval (lo > hi) marks an infeasible path.
//
// Soundness against the solver's fixed-width two's-complement semantics:
// the backends evaluate integers modulo 2^W (W = solver bit width), so
// any arithmetic whose exact result could leave [minInt(W), maxInt(W)]
// must not pretend to know the wrapped value. Interval operations
// therefore clamp: a result that cannot be proven to stay inside the
// width's range widens to the full range (top), and conclusions are only
// drawn from intervals the width can represent exactly.

import "math"

type ival struct{ lo, hi int64 }

// tri is three-valued truth.
type tri int

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

func (a ival) empty() bool          { return a.lo > a.hi }
func (a ival) isConst() bool        { return a.lo == a.hi }
func (a ival) contains(v int64) bool { return a.lo <= v && v <= a.hi }

func single(v int64) ival { return ival{v, v} }

func boolIval(t tri) ival {
	switch t {
	case triTrue:
		return single(1)
	case triFalse:
		return single(0)
	}
	return ival{0, 1}
}

func (a ival) truth() tri {
	switch {
	case a.empty():
		return triUnknown
	case a.lo >= 1:
		return triTrue
	case a.hi <= 0:
		return triFalse
	}
	return triUnknown
}

func join(a, b ival) ival {
	if a.empty() {
		return b
	}
	if b.empty() {
		return a
	}
	return ival{minI(a.lo, b.lo), maxI(a.hi, b.hi)}
}

func meet(a, b ival) ival {
	return ival{maxI(a.lo, b.lo), minI(a.hi, b.hi)}
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// dom is the value domain for one analysis: the representable range of
// the solver's bit width. All arithmetic routes through it so overflow
// collapses to top instead of producing wrapped nonsense.
type dom struct{ min, max int64 }

func newDom(width int) dom {
	// Mirrors bitblast: W-bit two's complement.
	return dom{min: -(int64(1) << (width - 1)), max: int64(1)<<(width-1) - 1}
}

func (d dom) top() ival { return ival{d.min, d.max} }

// fits reports whether the interval is exactly representable at width.
func (d dom) fits(a ival) bool { return a.lo >= d.min && a.hi <= d.max }

// norm returns a unchanged when representable, else top: a computation
// that may wrap is a computation we know nothing about.
func (d dom) norm(a ival) ival {
	if a.empty() || d.fits(a) {
		return a
	}
	return d.top()
}

// konst embeds a literal; a literal outside the width's range would wrap
// in the solver, so it degrades to top.
func (d dom) konst(v int64) ival { return d.norm(single(v)) }

func (d dom) add(a, b ival) ival {
	if a.empty() || b.empty() {
		return a
	}
	lo, ok1 := addChecked(a.lo, b.lo)
	hi, ok2 := addChecked(a.hi, b.hi)
	if !ok1 || !ok2 {
		return d.top()
	}
	return d.norm(ival{lo, hi})
}

func (d dom) sub(a, b ival) ival {
	if a.empty() || b.empty() {
		return a
	}
	return d.add(a, d.neg(b))
}

func (d dom) neg(a ival) ival {
	if a.empty() {
		return a
	}
	if a.lo == math.MinInt64 || a.hi == math.MinInt64 {
		return d.top()
	}
	return d.norm(ival{-a.hi, -a.lo})
}

func (d dom) mul(a, b ival) ival {
	if a.empty() || b.empty() {
		return a
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, x := range [2]int64{a.lo, a.hi} {
		for _, y := range [2]int64{b.lo, b.hi} {
			p, ok := mulChecked(x, y)
			if !ok {
				return d.top()
			}
			lo, hi = minI(lo, p), maxI(hi, p)
		}
	}
	return d.norm(ival{lo, hi})
}

// div and mod only fold when both sides are the same constant the
// language's §7 restriction guarantees anyway; everything else is top.
func (d dom) div(a, b ival) ival {
	if a.isConst() && b.isConst() && b.lo != 0 {
		return d.konst(a.lo / b.lo)
	}
	return d.top()
}

func (d dom) mod(a, b ival) ival {
	if a.isConst() && b.isConst() && b.lo != 0 {
		return d.konst(a.lo % b.lo)
	}
	return d.top()
}

// clamp intersects with [lo, hi] — used for quantities with structural
// range guarantees (backlogs in [0, cap], list sizes in [0, cap]).
func (d dom) clamp(a ival, lo, hi int64) ival {
	return meet(a, ival{lo, hi})
}

// Comparisons return three-valued truth over all pairs drawn from the
// operand intervals.

func cmpLt(a, b ival) tri {
	if a.empty() || b.empty() {
		return triUnknown
	}
	if a.hi < b.lo {
		return triTrue
	}
	if a.lo >= b.hi {
		return triFalse
	}
	return triUnknown
}

func cmpLe(a, b ival) tri {
	if a.empty() || b.empty() {
		return triUnknown
	}
	if a.hi <= b.lo {
		return triTrue
	}
	if a.lo > b.hi {
		return triFalse
	}
	return triUnknown
}

func cmpEq(a, b ival) tri {
	if a.empty() || b.empty() {
		return triUnknown
	}
	if a.isConst() && b.isConst() && a.lo == b.lo {
		return triTrue
	}
	if meet(a, b).empty() {
		return triFalse
	}
	return triUnknown
}

func triNot(t tri) tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	}
	return triUnknown
}

func triAnd(a, b tri) tri {
	if a == triFalse || b == triFalse {
		return triFalse
	}
	if a == triTrue && b == triTrue {
		return triTrue
	}
	return triUnknown
}

func triOr(a, b tri) tri {
	if a == triTrue || b == triTrue {
		return triTrue
	}
	if a == triFalse && b == triFalse {
		return triFalse
	}
	return triUnknown
}

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}
