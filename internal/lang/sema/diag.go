// Package sema is Buffy's static analyzer: a multi-pass semantic
// analysis over the typed AST that emits structured, position-carrying
// diagnostics and — when the program is trivially decidable — answers
// verify/witness queries without running a solver (the "static" analysis
// tier, see DESIGN.md "Analysis tiers").
//
// Three passes run in order:
//
//  1. structural checks (unused declarations, horizon sanity, topology),
//  2. interval abstract interpretation over the unrolled transition
//     system (unreachable branches, dead constraints, contradictory
//     assumptions, guaranteed capacity violations),
//  3. well-formedness lints for queueing-model programs (non-positive
//     rates/weights, sub-packet token-bucket bursts, priority ties).
//
// Every diagnostic carries a stable code (B001, B101, ...) so tests and
// CI can assert on exact findings, and a source position so the vet
// driver can render file:line:col excerpts uniformly with parse and
// type errors.
package sema

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"buffy/internal/lang/token"
)

// Severity ranks a diagnostic.
type Severity int

// Diagnostic severities, most severe first.
const (
	// Error: the program cannot be analyzed meaningfully (contradictory
	// assumptions, bad horizon). Errors gate solving.
	Error Severity = iota
	// Warn: almost certainly a bug in the model, but analysis can
	// proceed.
	Warn
	// Info: a finding worth knowing (dead constraint, sub-optimal
	// horizon) that needs no action.
	Info
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warn:
		return "warning"
	case Info:
		return "info"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic codes. Codes are stable across releases: tests, CI and
// editor integrations key on them.
const (
	CodeUnusedVar     = "B001" // declared variable never referenced
	CodeUnusedBuffer  = "B002" // buffer parameter never referenced
	CodeBadHorizon    = "B003" // horizon T <= 0
	CodeShallowT      = "B004" // horizon smaller than pipeline depth
	CodeNotFeedFwd    = "B005" // buffer topology has a cycle
	CodeShadowParam   = "B006" // loop variable shadows a compile-time parameter
	CodeCondTrue      = "B101" // branch condition always true
	CodeCondFalse     = "B102" // branch condition always false
	CodeContradiction = "B103" // assume constraints are unsatisfiable
	CodeDeadAssert    = "B104" // assert always holds (dead constraint)
	CodeNeverAssert   = "B105" // assert can never hold
	CodeOverflow      = "B106" // guaranteed buffer capacity violation
	CodeBadRate       = "B201" // rate/weight/size parameter not positive
	CodeTinyBurst     = "B202" // token-bucket burst admits no packet
	CodeNegativeMove  = "B203" // move count is always negative
	CodePriorityTie   = "B204" // equal priority/weight parameters
	CodeParseError    = "B030" // parse error (wrapped by the vet driver)
	CodeTypeError     = "B040" // type error (wrapped by the vet driver)
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Code     string    `json:"code"`
	Severity Severity  `json:"-"`
	Pos      token.Pos `json:"-"`
	Msg      string    `json:"msg"`
	// Hint is an optional fix-it suggestion.
	Hint string `json:"hint,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%v: %v[%s]: %s", d.Pos, d.Severity, d.Code, d.Msg)
	if d.Hint != "" {
		s += " (" + d.Hint + ")"
	}
	return s
}

// MarshalJSON exposes severity and position in wire-friendly form; the
// struct tags above keep the raw fields out of the default encoding.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(diagJSON{
		Code: d.Code, Severity: d.Severity.String(),
		Line: d.Pos.Line, Col: d.Pos.Col, Msg: d.Msg, Hint: d.Hint,
	})
}

type diagJSON struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Msg      string `json:"msg"`
	Hint     string `json:"hint,omitempty"`
}

// Report is the outcome of analyzing one program.
type Report struct {
	Diags []Diagnostic
	// Verdict is the statically-determined query outcome, if any.
	Verdict Verdict
}

// Verdict is sema's answer to the verify/witness questions when the
// program is decidable by over-approximation alone. Over-approximate
// abstract interpretation is sound only in the "nothing bad can happen"
// directions, so a verdict can say Holds or NoWitness but never
// CounterexampleFound or WitnessFound — those require exhibiting a
// concrete execution, which is the solver's job.
type Verdict struct {
	// Verify is "holds" when every execution within the horizon
	// satisfies all reachable asserts ("" = statically unknown).
	Verify string
	// Witness is "no-witness" when no execution can satisfy the query
	// ("" = statically unknown).
	Witness string
	// Reason names why; one of the Reason* constants below.
	Reason string
}

// Verdict reasons.
const (
	// ReasonNoAsserts: the program has no assert statements at all.
	// Verify holds and no witness exists vacuously — but note the SMT
	// backend refuses such queries outright ("nothing to check"), so the
	// pre-solve gate passes them through rather than answering.
	ReasonNoAsserts = "no-asserts"
	// ReasonAssumeContradiction: the conjoined workload assumptions admit
	// no execution; every query over the program is vacuous.
	ReasonAssumeContradiction = "assume-contradiction"
	// ReasonAssertsAlwaysTrue: every reachable assert instance is an
	// interval-provable invariant.
	ReasonAssertsAlwaysTrue = "asserts-always-true"
	// ReasonAssertsUnreachable: asserts exist syntactically but all sit on
	// statically-dead paths.
	ReasonAssertsUnreachable = "asserts-unreachable"
	// ReasonAssertNeverHolds: some assert is reached unconditionally and
	// its condition is false on every execution.
	ReasonAssertNeverHolds = "assert-never-holds"
)

// Conclusive reports whether the verdict decides the given direction.
func (v Verdict) Conclusive() bool { return v.Verify != "" || v.Witness != "" }

func (r *Report) add(d Diagnostic) { r.Diags = append(r.Diags, d) }

// HasErrors reports whether any diagnostic is error-severity.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Clean reports whether the program produced no errors and no warnings
// (info findings are allowed — they need no action).
func (r *Report) Clean() bool {
	for _, d := range r.Diags {
		if d.Severity != Info {
			return false
		}
	}
	return true
}

// Sort orders diagnostics by position, then severity, then code, so
// output is deterministic across map-iteration orders.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		return a.Code < b.Code
	})
}

// VetError carries error-severity diagnostics across an API boundary: the
// core facade returns it when the pre-solve gate rejects a program, and
// the service maps it to the vet_rejected failure class.
type VetError struct {
	Diags []Diagnostic
}

func (e *VetError) Error() string {
	n := 0
	var first Diagnostic
	for _, d := range e.Diags {
		if d.Severity == Error {
			if n == 0 {
				first = d
			}
			n++
		}
	}
	if n == 0 && len(e.Diags) > 0 {
		first, n = e.Diags[0], 1
	}
	if n > 1 {
		return fmt.Sprintf("vet: %s (and %d more)", first, n-1)
	}
	return "vet: " + first.String()
}

// Excerpt renders the source line at pos with a caret column marker, the
// classic compiler fix-it layout:
//
//	  7 |   assume(x < 3);
//	    |          ^
func Excerpt(src string, pos token.Pos) string {
	if !pos.IsValid() {
		return ""
	}
	lines := strings.Split(src, "\n")
	if pos.Line < 1 || pos.Line > len(lines) {
		return ""
	}
	line := strings.ReplaceAll(lines[pos.Line-1], "\t", " ")
	num := fmt.Sprintf("%4d", pos.Line)
	caret := strings.Repeat(" ", maxInt(0, pos.Col-1)) + "^"
	return fmt.Sprintf("%s | %s\n%s | %s", num, line, strings.Repeat(" ", len(num)), caret)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
