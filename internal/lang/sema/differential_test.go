package sema_test

// Differential soundness check: the static tier may answer a query
// only by over-approximation (Verify -> Holds, Witness -> NoWitness).
// Every verdict the analyzer produces over the testdata corpus is
// replayed against the SMT backend under identical model options; any
// disagreement is an analyzer soundness bug, not a test flake.

import (
	"strings"
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/core"
	"buffy/internal/interp"
	"buffy/internal/ir"
	"buffy/internal/lang/parser"
	"buffy/internal/lang/sema"
	"buffy/internal/lang/typecheck"
)

func irOptionsFor(tc vetCase) ir.Options {
	return ir.Options{
		T:               tc.opts.T,
		Params:          tc.opts.Params,
		BufferCap:       tc.opts.BufferCap,
		ArrivalsPerStep: tc.opts.ArrivalsPerStep,
	}
}

func TestStaticVerdictsAgreeWithSMT(t *testing.T) {
	for _, tc := range vetCases {
		if tc.skipDifferential || (tc.verify == "" && tc.witness == "") {
			continue
		}
		t.Run(tc.file, func(t *testing.T) {
			prog, err := parser.Parse(readTestdata(t, tc.file))
			if err != nil {
				t.Fatal(err)
			}
			info, err := typecheck.Check(prog)
			if err != nil {
				t.Fatal(err)
			}
			if tc.reason == sema.ReasonNoAsserts {
				// The static verdict is vacuous (no asserts) and the
				// pre-solve gate never answers it; agreement here means
				// smtbe also classifies the program as assert-free.
				_, err := smtbe.Check(info, smtbe.Options{IR: irOptionsFor(tc), Mode: smtbe.Verify})
				if err == nil || !strings.Contains(err.Error(), "no assert") {
					t.Errorf("static tier says no-asserts, SMT says %v", err)
				}
				return
			}
			if tc.verify == "holds" {
				res, err := smtbe.Check(info, smtbe.Options{IR: irOptionsFor(tc), Mode: smtbe.Verify})
				if err != nil {
					t.Fatalf("smt verify: %v", err)
				}
				if res.Status != smtbe.Holds {
					t.Errorf("static tier says verify holds, SMT says %v", res.Status)
				}
			}
			if tc.witness == "no-witness" {
				res, err := smtbe.Check(info, smtbe.Options{IR: irOptionsFor(tc), Mode: smtbe.Witness})
				if err != nil {
					t.Fatalf("smt witness: %v", err)
				}
				if res.Status != smtbe.NoWitness {
					t.Errorf("static tier says no witness exists, SMT says %v", res.Status)
				}
			}
		})
	}
}

// TestLateWitnessVerifyNotClaimed pins the asymmetry of the witness
// semantics: late_witness.buffy's assert really is violated (steps 0-1),
// so the SMT verify query finds a counterexample — the static tier must
// NOT have claimed verify=holds for it (the shared corpus loop already
// cross-checks its no-witness claim).
func TestLateWitnessVerifyNotClaimed(t *testing.T) {
	prog, err := parser.Parse(readTestdata(t, "late_witness.buffy"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := smtbe.Check(info, smtbe.Options{IR: ir.Options{T: 4}, Mode: smtbe.Verify})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smtbe.CounterexampleFound {
		t.Fatalf("SMT verify status = %v, want a counterexample at step 0", res.Status)
	}
}

// TestOverflowDiagnosticIsReal confirms B106's claim concretely: run the
// flagged program on the interpreter under an admissible workload (both
// assumes satisfied) and observe the destination buffer actually drop.
func TestOverflowDiagnosticIsReal(t *testing.T) {
	p, err := core.Parse(readTestdata(t, "overflow.buffy"))
	if err != nil {
		t.Fatal(err)
	}
	// Three packets per step into each input keeps every arrival inside
	// the 4-packet capacity and satisfies both backlog >= 3 assumes.
	m, err := p.Simulate(core.Analysis{T: 4, BufferCap: 4, ArrivalsPerStep: 6},
		func(step int, input string) []interp.Packet {
			return []interp.Packet{{}, {}, {}}
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Buffer("m").Dropped; got == 0 {
		t.Errorf("B106 flags a guaranteed drop at buffer m, but the simulation dropped nothing")
	}
}
