package sema_test

// The testdata corpus: each file is a deliberately broken (or
// deliberately trivial) program exercising exactly one analyzer
// behaviour. Tests assert the exact diagnostic codes and source lines,
// the rejected/clean classification, and the static verdict. The
// companion differential_test.go cross-checks every static verdict
// against the SMT backend.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"buffy/internal/lang/sema"
	"buffy/internal/vet"
)

type wantDiag struct {
	code string
	line int
}

type vetCase struct {
	file string
	opts sema.Options
	want []wantDiag
	// rejected: error-severity findings present (solves would fail with
	// the vet_rejected class).
	rejected bool
	// static verdict expectations ("" = undecided for that mode).
	verify, witness, reason string
	// skipDifferential marks files that cannot reach the SMT backend
	// (parse/type errors) or whose options it cannot replay.
	skipDifferential bool
}

// vetCases is shared with differential_test.go.
var vetCases = []vetCase{
	{
		file: "unused_var.buffy", opts: sema.Options{T: 4},
		want:   []wantDiag{{"B001", 3}, {"B001", 4}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "unused_buffer.buffy", opts: sema.Options{T: 4},
		want:   []wantDiag{{"B002", 2}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "bad_horizon.buffy", opts: sema.Options{T: 0},
		want:     []wantDiag{{"B003", 2}},
		rejected: true, skipDifferential: true, // no horizon to replay
	},
	{
		file: "shallow_t.buffy", opts: sema.Options{T: 1},
		want:   []wantDiag{{"B004", 2}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "not_feed_forward.buffy", opts: sema.Options{T: 4},
		want:   []wantDiag{{"B005", 4}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "shadow_param.buffy", opts: sema.Options{T: 4, Params: map[string]int64{"N": 2}},
		want:   []wantDiag{{"B006", 3}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "cond_true.buffy", opts: sema.Options{T: 4},
		want:   []wantDiag{{"B101", 3}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "cond_false.buffy", opts: sema.Options{T: 4},
		want:   []wantDiag{{"B102", 4}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "contradiction.buffy", opts: sema.Options{T: 4},
		want:     []wantDiag{{"B103", 5}},
		rejected: true,
		verify:   "holds", witness: "no-witness", reason: "assume-contradiction",
	},
	{
		file: "dead_assert.buffy", opts: sema.Options{T: 4},
		want:   []wantDiag{{"B104", 4}, {"B104", 5}},
		verify: "holds", reason: "asserts-always-true",
	},
	{
		file: "never_assert.buffy", opts: sema.Options{T: 4},
		want:    []wantDiag{{"B105", 4}},
		witness: "no-witness", reason: "assert-never-holds",
	},
	{
		file: "asserts_unreachable.buffy", opts: sema.Options{T: 4},
		want:   []wantDiag{{"B102", 5}},
		verify: "holds", witness: "no-witness", reason: "asserts-unreachable",
	},
	{
		file: "overflow.buffy", opts: sema.Options{T: 4, BufferCap: 4, ArrivalsPerStep: 6},
		want:   []wantDiag{{"B106", 9}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "negative_move.buffy", opts: sema.Options{T: 4},
		want:   []wantDiag{{"B203", 3}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "bad_rate.buffy", opts: sema.Options{T: 4, Params: map[string]int64{"RATE": 0}},
		want:   []wantDiag{{"B201", 2}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "tiny_burst.buffy", opts: sema.Options{T: 4, Params: map[string]int64{"BURST": 0}},
		want:   []wantDiag{{"B202", 2}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		file: "priority_tie.buffy", opts: sema.Options{T: 4, Params: map[string]int64{"W1": 2, "W2": 2}},
		want:   []wantDiag{{"B204", 2}},
		verify: "holds", witness: "no-witness", reason: "no-asserts",
	},
	{
		// Mixed per-step outcomes (false at steps 0-1, true after): no
		// B104/B105 site diagnostic, verify undecided — but the witness
		// query is still decided, because an unconditionally-reached
		// falsified instance rules out every all-asserts-hold execution.
		file: "late_witness.buffy", opts: sema.Options{T: 4},
		want:    nil,
		witness: "no-witness", reason: "assert-never-holds",
	},
	{
		file: "type_error.buffy", opts: sema.Options{T: 4},
		want:     []wantDiag{{"B040", 4}},
		rejected: true, skipDifferential: true,
	},
	{
		file: "parse_error.buffy", opts: sema.Options{T: 4},
		want:     []wantDiag{{"B030", 3}},
		rejected: true, skipDifferential: true,
	},
}

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func diagKeys(ds []wantDiag) []string {
	keys := make([]string, len(ds))
	for i, d := range ds {
		keys[i] = fmt.Sprintf("%s@%d", d.code, d.line)
	}
	sort.Strings(keys)
	return keys
}

func TestVetTestdataCorpus(t *testing.T) {
	for _, tc := range vetCases {
		t.Run(tc.file, func(t *testing.T) {
			res := vet.Source(readTestdata(t, tc.file), tc.opts)
			rep := res.Report

			got := make([]wantDiag, len(rep.Diags))
			for i, d := range rep.Diags {
				got[i] = wantDiag{d.Code, d.Pos.Line}
				if d.Pos.Col <= 0 {
					t.Errorf("%s at line %d: column %d, want >= 1", d.Code, d.Pos.Line, d.Pos.Col)
				}
				if d.Msg == "" {
					t.Errorf("%s at line %d: empty message", d.Code, d.Pos.Line)
				}
			}
			gotKeys, wantKeys := diagKeys(got), diagKeys(tc.want)
			if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
				t.Errorf("diagnostics = %v, want %v\nreport: %+v", gotKeys, wantKeys, rep.Diags)
			}

			if rep.HasErrors() != tc.rejected {
				t.Errorf("rejected = %v, want %v", rep.HasErrors(), tc.rejected)
			}
			v := rep.Verdict
			if v.Verify != tc.verify || v.Witness != tc.witness || v.Reason != tc.reason {
				t.Errorf("verdict = {verify:%q witness:%q reason:%q}, want {%q %q %q}",
					v.Verify, v.Witness, v.Reason, tc.verify, tc.witness, tc.reason)
			}
		})
	}
}

// TestQMModelsVetClean vets every shipped queueing model: the corpus
// must produce zero error- and warning-severity findings, and each vet
// query must answer in well under a millisecond (it is an always-on
// pre-solve gate).
func TestQMModelsVetClean(t *testing.T) {
	models, err := filepath.Glob(filepath.Join("..", "..", "qm", "models", "*.buffy"))
	if err != nil || len(models) == 0 {
		t.Fatalf("no qm models found: %v", err)
	}
	for _, path := range models {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Best of three: a single cold run can eat a scheduler blip.
			best := time.Duration(1 << 62)
			var res *vet.Result
			for range 3 {
				start := time.Now()
				res = vet.Source(string(src), sema.Options{T: 4})
				if d := time.Since(start); d < best {
					best = d
				}
			}
			if !res.Report.Clean() {
				t.Errorf("model is not vet-clean:\n%+v", res.Report.Diags)
			}
			if best > time.Millisecond {
				t.Errorf("vet latency %v, want < 1ms", best)
			}
		})
	}
}
