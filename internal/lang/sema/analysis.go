package sema

// The interval abstract-interpretation pass: execute the program's T
// unrolled steps over the interval domain, mirroring the ir/buffer
// semantics (arrivals clamp at capacity, move-p takes max(0, min(n,
// backlog)) out of the source and drops what the destination cannot
// accept, locals zero at each step, globals and monitors persist).
// Everything nondeterministic — arrivals, havocs, unbound parameters —
// starts at top, so the abstract run over-approximates every concrete
// execution the solver could exhibit.

import (
	"fmt"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/token"
	"buffy/internal/lang/typecheck"
)

// maxUnrollIters bounds concrete unrolling of a single for loop; larger
// (or unknown) trip counts fall back to a widening fixpoint.
const maxUnrollIters = 256

// maxFixIters bounds the widening fixpoint before the state is forced to
// top.
const maxFixIters = 12

// absState is one abstract program state.
type absState struct {
	vars       map[string]ival // scalars; array elems "name[i]"; summaries "name[*]"
	bufs       map[string]ival // buffer backlogs (packets), same key scheme
	lists      map[string]ival // list sizes
	infeasible bool
}

func (s *absState) clone() *absState {
	c := &absState{
		vars:       make(map[string]ival, len(s.vars)),
		bufs:       make(map[string]ival, len(s.bufs)),
		lists:      make(map[string]ival, len(s.lists)),
		infeasible: s.infeasible,
	}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	for k, v := range s.bufs {
		c.bufs[k] = v
	}
	for k, v := range s.lists {
		c.lists[k] = v
	}
	return c
}

func joinStates(a, b *absState) *absState {
	if a.infeasible {
		return b
	}
	if b.infeasible {
		return a
	}
	j := a.clone()
	for k, v := range b.vars {
		j.vars[k] = join(j.vars[k], v)
	}
	for k, v := range b.bufs {
		j.bufs[k] = join(j.bufs[k], v)
	}
	for k, v := range b.lists {
		j.lists[k] = join(j.lists[k], v)
	}
	return j
}

func (s *absState) equal(o *absState) bool {
	if s.infeasible != o.infeasible || len(s.vars) != len(o.vars) ||
		len(s.bufs) != len(o.bufs) || len(s.lists) != len(o.lists) {
		return false
	}
	for k, v := range s.vars {
		if o.vars[k] != v {
			return false
		}
	}
	for k, v := range s.bufs {
		if o.bufs[k] != v {
			return false
		}
	}
	for k, v := range s.lists {
		if o.lists[k] != v {
			return false
		}
	}
	return true
}

// agg aggregates one syntactic site's evaluations across all unrolled
// steps and loop iterations: a finding like "condition always true" must
// hold over every dynamic instance of the site, not just one.
type agg struct{ t, f, u int }

func (a *agg) record(tv tri) {
	switch tv {
	case triTrue:
		a.t++
	case triFalse:
		a.f++
	default:
		a.u++
	}
}

// bufInfo describes one buffer parameter's abstract layout.
type bufInfo struct {
	param *ast.BufferParam
	keys  []string // instance keys, or the one summary key "name[*]"
	cap   int64    // per-instance capacity
	summ  bool     // summarized (size unknown or too large): weak updates only
}

type analyzer struct {
	info *typecheck.Info
	opts Options
	d    dom
	rep  *Report

	bufs     map[string]*bufInfo // by parameter name
	arrSize  map[string]int64    // known var-array sizes by name (-1 = summarized)
	listCap  int64               // -1 when unknown (no upper clamp)
	loopVars map[string]ival

	curT  ival
	depth int // enclosing unknown-branch / widened-loop nesting

	condAgg    map[token.Pos]*agg
	assertAgg  map[token.Pos]*agg
	negMoveAgg map[token.Pos]*agg
	overflowAt map[token.Pos]bool
	contraAt   map[token.Pos]Severity

	// Per-instance assert outcomes across the whole unrolled horizon.
	// The witness query (smtbe.Witness) asks for an execution where ALL
	// reached assert instances hold and at least one is reached — so a
	// single instance that every execution reaches (depth 0, feasible
	// path) and definitely falsifies rules out every witness.
	assertInstances   int
	assertDefTrue     int
	assertUncondFalse bool
	contradiction     bool
	contradictionStep int
}

// runIntervals drives the abstract execution of all T steps and then
// converts site aggregates into diagnostics. It reports the verdict
// ingredients for Analyze to assemble.
func (a *analyzer) runIntervals() {
	st := a.initialState()
	for step := 0; step < a.opts.T; step++ {
		a.curT = single(int64(step))
		a.stepArrivals(st)
		a.resetLocals(st)
		a.execBlock(a.info.Prog.Body, st)
		if st.infeasible {
			// No execution survives this step's assumptions: the whole
			// query space is empty from here on.
			a.contradiction = true
			a.contradictionStep = step
			break
		}
	}
	a.finishDiags()
}

func (a *analyzer) initialState() *absState {
	st := &absState{
		vars:  make(map[string]ival),
		bufs:  make(map[string]ival),
		lists: make(map[string]ival),
	}
	for _, bi := range a.bufs {
		for _, k := range bi.keys {
			st.bufs[k] = single(0)
		}
	}
	decl := func(d *ast.VarDecl) {
		if d.Type.Kind == ast.TList {
			st.lists[d.Name] = single(0)
			return
		}
		init := single(0)
		if d.Init != nil {
			init = a.constIval(d.Init)
		}
		a.forEachVarKey(d, func(key string) { st.vars[key] = init })
	}
	for _, d := range a.info.Globals {
		decl(d)
	}
	for _, d := range a.info.Monitors {
		decl(d)
	}
	for _, d := range a.info.Locals {
		decl(d)
	}
	return st
}

func (a *analyzer) forEachVarKey(d *ast.VarDecl, f func(key string)) {
	if !d.Type.IsArray() {
		f(d.Name)
		return
	}
	n, ok := a.arrSize[d.Name]
	if !ok || n < 0 {
		f(d.Name + "[*]")
		return
	}
	for i := int64(0); i < n; i++ {
		f(fmt.Sprintf("%s[%d]", d.Name, i))
	}
}

// constIval folds a compile-time-constant expression (initializers, loop
// bounds) to an interval; unbound parameters yield top.
func (a *analyzer) constIval(e ast.Expr) ival {
	if v, ok := a.constEval(e); ok {
		return a.d.konst(v)
	}
	return a.d.top()
}

// constEval evaluates strictly-constant expressions with the bound
// parameter values, mirroring ir's constant folding.
func (a *analyzer) constEval(e ast.Expr) (int64, bool) {
	switch n := e.(type) {
	case *ast.IntLit:
		return n.Value, true
	case *ast.BoolLit:
		if n.Value {
			return 1, true
		}
		return 0, true
	case *ast.Ident:
		if n.Name == "T" {
			return int64(a.opts.T), true
		}
		if iv, ok := a.loopVars[n.Name]; ok && iv.isConst() {
			return iv.lo, true
		}
		if v, ok := a.opts.Params[n.Name]; ok {
			return v, true
		}
		return 0, false
	case *ast.Unary:
		if n.Op == ast.OpNegate {
			if v, ok := a.constEval(n.X); ok {
				return -v, true
			}
		}
		return 0, false
	case *ast.Binary:
		x, okx := a.constEval(n.X)
		y, oky := a.constEval(n.Y)
		if !okx || !oky {
			return 0, false
		}
		switch n.Op {
		case ast.OpAdd:
			return x + y, true
		case ast.OpSub:
			return x - y, true
		case ast.OpMul:
			return x * y, true
		case ast.OpDiv:
			if y != 0 {
				return x / y, true
			}
		case ast.OpMod:
			if y != 0 {
				return x % y, true
			}
		}
	}
	return 0, false
}

// stepArrivals models the symbolic arrivals ir injects at the start of
// each step: every input-buffer instance gains up to ArrivalsPerStep
// packets, clamped at its capacity (arrivals beyond capacity drop).
func (a *analyzer) stepArrivals(st *absState) {
	for _, bi := range a.bufs {
		if bi.param.Dir != ast.DirIn {
			continue
		}
		for _, k := range bi.keys {
			b := st.bufs[k]
			b.hi = minI(b.hi+int64(a.opts.ArrivalsPerStep), bi.cap)
			b.lo = minI(b.lo, b.hi)
			st.bufs[k] = b
		}
	}
}

func (a *analyzer) resetLocals(st *absState) {
	for _, d := range a.info.Locals {
		if d.Type.Kind == ast.TList {
			continue // typecheck forbids local lists
		}
		a.forEachVarKey(d, func(key string) { st.vars[key] = single(0) })
	}
}

func (a *analyzer) execBlock(stmts []ast.Stmt, st *absState) {
	for _, s := range stmts {
		if st.infeasible {
			return
		}
		a.execStmt(s, st)
	}
}

func (a *analyzer) execStmt(s ast.Stmt, st *absState) {
	switch n := s.(type) {
	case *ast.VarDecl:
		// Hoisted by the parser; nothing to execute.
	case *ast.Assign:
		a.execAssign(n, st)
	case *ast.PushBack:
		if name, ok := listName(n.List); ok {
			sz := st.lists[name]
			sz.lo, sz.hi = sz.lo+1, sz.hi+1
			if a.listCap >= 0 {
				sz.lo, sz.hi = minI(sz.lo, a.listCap), minI(sz.hi, a.listCap)
			} else {
				sz = a.d.norm(sz)
			}
			st.lists[name] = sz
		}
	case *ast.Move:
		a.execMove(n, st)
	case *ast.If:
		a.execIf(n, st)
	case *ast.For:
		a.execFor(n, st)
	case *ast.Assert:
		a.execAssert(n, st)
	case *ast.Assume:
		a.execAssume(n, st)
	case *ast.Havoc:
		if sym := a.info.Symbols[n.Target]; sym != nil && sym.Kind == typecheck.SymVar {
			st.vars[n.Target.Name] = a.d.top()
		}
	}
}

func (a *analyzer) execAssign(n *ast.Assign, st *absState) {
	var val ival
	if pf, ok := n.RHS.(*ast.PopFront); ok {
		val = a.d.top() // list element values are not tracked
		if name, ok := listName(pf.List); ok {
			sz := st.lists[name]
			sz.lo, sz.hi = maxI(0, sz.lo-1), maxI(0, sz.hi-1)
			st.lists[name] = sz
		}
	} else {
		val = a.evalExpr(n.RHS, st)
	}
	switch lhs := n.LHS.(type) {
	case *ast.Ident:
		if _, exists := st.vars[lhs.Name]; exists {
			st.vars[lhs.Name] = val
		}
	case *ast.Index:
		base, ok := lhs.X.(*ast.Ident)
		if !ok {
			return
		}
		keys, exact := a.varElemKeys(base.Name, a.evalExpr(lhs.Idx, st))
		for _, k := range keys {
			if exact {
				st.vars[k] = val
			} else {
				st.vars[k] = join(st.vars[k], val) // weak update
			}
		}
	}
}

// varElemKeys resolves an array access to candidate element keys; exact
// reports a single, certainly-addressed element (strong update allowed).
func (a *analyzer) varElemKeys(name string, idx ival) ([]string, bool) {
	n, ok := a.arrSize[name]
	if !ok || n < 0 {
		return []string{name + "[*]"}, false
	}
	lo, hi := maxI(0, idx.lo), minI(n-1, idx.hi)
	if lo > hi {
		return nil, false
	}
	if lo == hi && idx.isConst() {
		return []string{fmt.Sprintf("%s[%d]", name, lo)}, true
	}
	keys := make([]string, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		keys = append(keys, fmt.Sprintf("%s[%d]", name, i))
	}
	return keys, false
}

// resolveBuf resolves a buffer expression to instance keys. exact means
// exactly one certainly-addressed instance; filtered means the view is a
// filtered sub-buffer (moves from it cannot be bounded below).
func (a *analyzer) resolveBuf(e ast.Expr, st *absState) (bi *bufInfo, keys []string, exact, filtered bool) {
	switch n := e.(type) {
	case *ast.Ident:
		b := a.bufs[n.Name]
		if b == nil {
			return nil, nil, false, false
		}
		if b.param.Size == nil {
			return b, b.keys, true, false
		}
		return b, b.keys, false, false
	case *ast.Index:
		base, ok := n.X.(*ast.Ident)
		if !ok {
			return nil, nil, false, false
		}
		b := a.bufs[base.Name]
		if b == nil {
			return nil, nil, false, false
		}
		if b.summ {
			return b, b.keys, false, false
		}
		idx := a.evalExpr(n.Idx, st)
		size := int64(len(b.keys))
		lo, hi := maxI(0, idx.lo), minI(size-1, idx.hi)
		if lo > hi {
			return b, nil, false, false
		}
		if lo == hi && idx.isConst() {
			return b, []string{b.keys[lo]}, true, false
		}
		return b, b.keys[lo : hi+1], false, false
	case *ast.Filter:
		b, ks, ex, _ := a.resolveBuf(n.Buf, st)
		return b, ks, ex, true
	}
	return nil, nil, false, false
}

// execMove mirrors buffer.MoveP/MoveB: moved = max(0, min(count,
// src.backlog)) leaves the source; the destination accepts up to its free
// space and drops the rest.
func (a *analyzer) execMove(n *ast.Move, st *absState) {
	cnt := a.evalExpr(n.Count, st)
	if ag := a.siteAgg(a.negMoveAgg, n.KwPos); ag != nil {
		switch {
		case cnt.hi < 0:
			ag.record(triTrue) // count always negative at this eval
		case cnt.lo >= 0:
			ag.record(triFalse)
		default:
			ag.record(triUnknown)
		}
	}

	sbi, srcKeys, srcExact, filtered := a.resolveBuf(n.Src, st)
	dbi, dstKeys, dstExact, _ := a.resolveBuf(n.Dst, st)
	if sbi == nil || dbi == nil || len(srcKeys) == 0 || len(dstKeys) == 0 {
		return
	}

	// The amount taken out of the source, per candidate instance.
	movedFor := func(src ival) ival {
		m := ival{maxI(0, minI(cnt.lo, src.lo)), maxI(0, minI(cnt.hi, src.hi))}
		if filtered {
			m.lo = 0 // the filtered sub-backlog may be empty
		}
		return m
	}

	// Join of all possible moved amounts (for destination updates when
	// the source is ambiguous).
	var movedAny ival
	first := true
	for _, sk := range srcKeys {
		m := movedFor(st.bufs[sk])
		if first {
			movedAny, first = m, false
		} else {
			movedAny = join(movedAny, m)
		}
	}
	if !srcExact {
		movedAny.lo = 0 // any single instance might not be the one moved from
	}

	// Source updates.
	for _, sk := range srcKeys {
		src := st.bufs[sk]
		m := movedFor(src)
		out := meet(ival{src.lo - m.hi, src.hi - m.lo}, ival{0, sbi.cap})
		if srcExact {
			st.bufs[sk] = out
		} else {
			st.bufs[sk] = join(src, out)
		}
	}

	// Destination updates (+ guaranteed-overflow detection).
	for _, dk := range dstKeys {
		dst := st.bufs[dk]
		if dstExact && srcExact && a.depth == 0 && !st.infeasible &&
			dbi.cap < a.d.max && movedAny.lo+dst.lo > dbi.cap {
			a.overflowAt[n.KwPos] = true
		}
		free := ival{maxI(0, dbi.cap-dst.hi), maxI(0, dbi.cap-dst.lo)}
		accepted := ival{minI(movedAny.lo, free.lo), minI(movedAny.hi, free.hi)}
		in := meet(ival{dst.lo + accepted.lo, dst.hi + accepted.hi}, ival{0, dbi.cap})
		if dstExact {
			st.bufs[dk] = in
		} else {
			st.bufs[dk] = join(dst, in)
		}
	}
}

func (a *analyzer) execIf(n *ast.If, st *absState) {
	tv := a.evalExpr(n.Cond, st).truth()
	if ag := a.siteAgg(a.condAgg, n.Cond.Pos()); ag != nil && !st.infeasible {
		ag.record(tv)
	}
	switch tv {
	case triTrue:
		a.execBlock(n.Then, st)
	case triFalse:
		a.execBlock(n.Else, st)
	default:
		thenSt := st.clone()
		elseSt := st.clone()
		a.depth++
		if a.refine(thenSt, n.Cond, true) {
			a.execBlock(n.Then, thenSt)
		} else {
			thenSt.infeasible = true
		}
		if a.refine(elseSt, n.Cond, false) {
			a.execBlock(n.Else, elseSt)
		} else {
			elseSt.infeasible = true
		}
		a.depth--
		j := joinStates(thenSt, elseSt)
		if thenSt.infeasible && elseSt.infeasible {
			j = thenSt
		}
		*st = *j
	}
}

func (a *analyzer) execFor(n *ast.For, st *absState) {
	lo, okLo := a.constEval(n.Lo)
	hi, okHi := a.constEval(n.Hi)
	if okLo && okHi {
		if hi <= lo {
			return // zero iterations
		}
		if hi-lo <= maxUnrollIters {
			for i := lo; i < hi; i++ {
				a.loopVars[n.Var] = single(i)
				a.execBlock(n.Body, st)
				if st.infeasible {
					break
				}
			}
			delete(a.loopVars, n.Var)
			return
		}
	}

	// Unknown or oversized trip count: widening fixpoint. The body is a
	// conditional context (the loop may run zero times for all we know),
	// so findings inside are never "unconditional".
	iv := a.d.top()
	if okLo {
		iv.lo = maxI(iv.lo, lo)
	}
	if okHi {
		iv.hi = minI(iv.hi, hi-1)
	}
	if iv.empty() {
		return
	}
	a.loopVars[n.Var] = iv
	a.depth++
	prev := st.clone()
	for iter := 0; ; iter++ {
		body := prev.clone()
		a.execBlock(n.Body, body)
		next := joinStates(prev, body)
		if next.equal(prev) {
			break
		}
		if iter >= maxFixIters {
			// Force a post-fixpoint: top is absorbing under join.
			for k := range prev.vars {
				prev.vars[k] = a.d.top()
			}
			for k := range prev.bufs {
				cap := a.capOfKey(k)
				prev.bufs[k] = ival{0, cap}
			}
			for k := range prev.lists {
				hi := a.d.max
				if a.listCap >= 0 {
					hi = a.listCap
				}
				prev.lists[k] = ival{0, hi}
			}
			break
		}
		prev = next
	}
	a.depth--
	delete(a.loopVars, n.Var)
	*st = *prev
}

func (a *analyzer) capOfKey(key string) int64 {
	for _, bi := range a.bufs {
		for _, k := range bi.keys {
			if k == key {
				return bi.cap
			}
		}
	}
	return a.d.max
}

func (a *analyzer) execAssert(n *ast.Assert, st *absState) {
	if st.infeasible {
		return
	}
	tv := a.evalExpr(n.Cond, st).truth()
	if ag := a.siteAgg(a.assertAgg, n.KwPos); ag != nil {
		ag.record(tv)
	}
	a.assertInstances++
	switch tv {
	case triTrue:
		a.assertDefTrue++
	case triFalse:
		// Depth 0 only: outside any unknown-condition fork (and outside
		// widened loops), every execution reaches this instance, so a
		// definitely-false condition here falsifies AssertHolds on every
		// execution. Inside a fork the instance might be avoidable and
		// says nothing about executions taking the other branch.
		if a.depth == 0 {
			a.assertUncondFalse = true
		}
	}
}

func (a *analyzer) execAssume(n *ast.Assume, st *absState) {
	if st.infeasible {
		return
	}
	tv := a.evalExpr(n.Cond, st).truth()
	ok := tv != triFalse && a.refine(st, n.Cond, true)
	if !ok {
		sev := Warn
		if a.depth == 0 {
			sev = Error
		}
		if prev, seen := a.contraAt[n.KwPos]; !seen || sev < prev {
			a.contraAt[n.KwPos] = sev
		}
		st.infeasible = true
	}
}

func (a *analyzer) siteAgg(m map[token.Pos]*agg, pos token.Pos) *agg {
	if !pos.IsValid() {
		return nil
	}
	ag := m[pos]
	if ag == nil {
		ag = &agg{}
		m[pos] = ag
	}
	return ag
}

// ----- expression evaluation -----

func (a *analyzer) evalExpr(e ast.Expr, st *absState) ival {
	switch n := e.(type) {
	case *ast.IntLit:
		return a.d.konst(n.Value)
	case *ast.BoolLit:
		if n.Value {
			return single(1)
		}
		return single(0)
	case *ast.Ident:
		return a.evalIdent(n, st)
	case *ast.Unary:
		x := a.evalExpr(n.X, st)
		if n.Op == ast.OpNot {
			return boolIval(triNot(x.truth()))
		}
		return a.d.neg(x)
	case *ast.Binary:
		return a.evalBinary(n, st)
	case *ast.Index:
		base, ok := n.X.(*ast.Ident)
		if !ok {
			return a.d.top()
		}
		if bi := a.bufs[base.Name]; bi != nil {
			return a.d.top() // raw buffer value: not an integer
		}
		keys, _ := a.varElemKeys(base.Name, a.evalExpr(n.Idx, st))
		if len(keys) == 0 {
			return a.d.top()
		}
		v := st.vars[keys[0]]
		for _, k := range keys[1:] {
			v = join(v, st.vars[k])
		}
		return v
	case *ast.Backlog:
		bi, keys, _, filtered := a.resolveBuf(n.Buf, st)
		if bi == nil || len(keys) == 0 {
			return ival{0, a.d.max}
		}
		b := st.bufs[keys[0]]
		for _, k := range keys[1:] {
			b = join(b, st.bufs[k])
		}
		if filtered {
			b.lo = 0 // the filtered subset can be empty
		}
		if n.Bytes {
			// Packets weigh in [1, MaxBytes] bytes, but arrivals under
			// havoc can weigh less than max — only the range is safe.
			return a.d.norm(ival{b.lo, b.hi * int64(maxI(1, int64(a.opts.MaxBytes)))})
		}
		return b
	case *ast.Filter:
		return a.d.top() // buffer-valued; only meaningful under Backlog
	case *ast.ListQuery:
		name, ok := listName(n.List)
		if !ok {
			return a.d.top()
		}
		sz := st.lists[name]
		switch n.Op {
		case ast.ListSize:
			return sz
		case ast.ListEmpty:
			return boolIval(cmpEq(sz, single(0)))
		case ast.ListHas:
			if sz.hi == 0 {
				return single(0) // empty list has nothing
			}
			return ival{0, 1}
		}
	case *ast.PopFront:
		return a.d.top()
	}
	return a.d.top()
}

func (a *analyzer) evalIdent(n *ast.Ident, st *absState) ival {
	if iv, ok := a.loopVars[n.Name]; ok {
		return iv
	}
	if n.Name == "t" {
		return a.curT
	}
	if n.Name == "T" {
		return a.d.konst(int64(a.opts.T))
	}
	if v, ok := st.vars[n.Name]; ok {
		return v
	}
	if v, ok := st.vars[n.Name+"[*]"]; ok {
		return v
	}
	if v, ok := a.opts.Params[n.Name]; ok {
		return a.d.konst(v)
	}
	return a.d.top()
}

func (a *analyzer) evalBinary(n *ast.Binary, st *absState) ival {
	x := a.evalExpr(n.X, st)
	y := a.evalExpr(n.Y, st)
	switch n.Op {
	case ast.OpAdd:
		return a.d.add(x, y)
	case ast.OpSub:
		return a.d.sub(x, y)
	case ast.OpMul:
		return a.d.mul(x, y)
	case ast.OpDiv:
		return a.d.div(x, y)
	case ast.OpMod:
		return a.d.mod(x, y)
	case ast.OpLt:
		return boolIval(cmpLt(x, y))
	case ast.OpLe:
		return boolIval(cmpLe(x, y))
	case ast.OpGt:
		return boolIval(cmpLt(y, x))
	case ast.OpGe:
		return boolIval(cmpLe(y, x))
	case ast.OpEq:
		return boolIval(cmpEq(x, y))
	case ast.OpNeq:
		return boolIval(triNot(cmpEq(x, y)))
	case ast.OpAnd:
		return boolIval(triAnd(x.truth(), y.truth()))
	case ast.OpOr:
		return boolIval(triOr(x.truth(), y.truth()))
	}
	return a.d.top()
}

// ----- refinement -----

// refine narrows st under the assumption that e evaluates to want.
// It returns false when the constraint is unsatisfiable in st.
func (a *analyzer) refine(st *absState, e ast.Expr, want bool) bool {
	switch n := e.(type) {
	case *ast.BoolLit:
		return n.Value == want
	case *ast.Unary:
		if n.Op == ast.OpNot {
			return a.refine(st, n.X, !want)
		}
	case *ast.Ident:
		if v, ok := st.vars[n.Name]; ok {
			wantIv := single(0)
			if want {
				wantIv = single(1)
			}
			m := meet(v, wantIv)
			if m.empty() {
				return false
			}
			st.vars[n.Name] = m
		}
	case *ast.ListQuery:
		if n.Op == ast.ListEmpty {
			if name, ok := listName(n.List); ok {
				sz := st.lists[name]
				if want {
					sz = meet(sz, single(0))
				} else {
					sz = meet(sz, ival{1, a.d.max})
				}
				if sz.empty() {
					return false
				}
				st.lists[name] = sz
			}
		}
	case *ast.Binary:
		switch n.Op {
		case ast.OpAnd:
			if want {
				return a.refine(st, n.X, true) && a.refine(st, n.Y, true)
			}
		case ast.OpOr:
			if !want {
				return a.refine(st, n.X, false) && a.refine(st, n.Y, false)
			}
		case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe, ast.OpEq, ast.OpNeq:
			return a.refineCmp(st, n, want)
		}
	}
	return true
}

// loc is a refinable location: a scalar variable, a single buffer
// instance's packet backlog, or a list size.
type loc struct {
	kind byte // 'v', 'b', 'l'
	key  string
}

func (a *analyzer) asLoc(e ast.Expr, st *absState) (loc, bool) {
	switch n := e.(type) {
	case *ast.Ident:
		if _, ok := st.vars[n.Name]; ok {
			return loc{'v', n.Name}, true
		}
	case *ast.Backlog:
		if n.Bytes {
			return loc{}, false
		}
		_, keys, exact, filtered := a.resolveBuf(n.Buf, st)
		if exact && !filtered && len(keys) == 1 {
			return loc{'b', keys[0]}, true
		}
	case *ast.ListQuery:
		if n.Op == ast.ListSize {
			if name, ok := listName(n.List); ok {
				return loc{'l', name}, true
			}
		}
	}
	return loc{}, false
}

func (a *analyzer) locGet(l loc, st *absState) ival {
	switch l.kind {
	case 'v':
		return st.vars[l.key]
	case 'b':
		return st.bufs[l.key]
	}
	return st.lists[l.key]
}

func (a *analyzer) locSet(l loc, st *absState, v ival) {
	switch l.kind {
	case 'v':
		st.vars[l.key] = v
	case 'b':
		st.bufs[l.key] = v
	default:
		st.lists[l.key] = v
	}
}

func (a *analyzer) refineCmp(st *absState, n *ast.Binary, want bool) bool {
	// Normalize to op over (X, Y) with want=true.
	op := n.Op
	if !want {
		switch op {
		case ast.OpLt:
			op = ast.OpGe
		case ast.OpLe:
			op = ast.OpGt
		case ast.OpGt:
			op = ast.OpLe
		case ast.OpGe:
			op = ast.OpLt
		case ast.OpEq:
			op = ast.OpNeq
		case ast.OpNeq:
			op = ast.OpEq
		}
	}
	x := a.evalExpr(n.X, st)
	y := a.evalExpr(n.Y, st)

	// Tighten one side against the other's current interval.
	tighten := func(l loc, cur ival, other ival, rel ast.BinOp) bool {
		var nv ival
		switch rel {
		case ast.OpLt:
			nv = meet(cur, ival{a.d.min, other.hi - 1})
		case ast.OpLe:
			nv = meet(cur, ival{a.d.min, other.hi})
		case ast.OpGt:
			nv = meet(cur, ival{other.lo + 1, a.d.max})
		case ast.OpGe:
			nv = meet(cur, ival{other.lo, a.d.max})
		case ast.OpEq:
			nv = meet(cur, other)
		case ast.OpNeq:
			nv = cur
			if other.isConst() {
				if nv.lo == other.lo {
					nv.lo++
				}
				if nv.hi == other.lo {
					nv.hi--
				}
			}
		default:
			return true
		}
		if nv.empty() {
			return false
		}
		a.locSet(l, st, nv)
		return true
	}

	flip := func(rel ast.BinOp) ast.BinOp {
		switch rel {
		case ast.OpLt:
			return ast.OpGt
		case ast.OpLe:
			return ast.OpGe
		case ast.OpGt:
			return ast.OpLt
		case ast.OpGe:
			return ast.OpLe
		}
		return rel
	}

	ok := true
	if lx, isLoc := a.asLoc(n.X, st); isLoc {
		ok = ok && tighten(lx, x, y, op)
	}
	if ly, isLoc := a.asLoc(n.Y, st); isLoc {
		ok = ok && tighten(ly, y, x, flip(op))
	}
	if !ok {
		return false
	}
	// Even without a refinable location, a relation that is already
	// definitely false over the current intervals is a contradiction.
	switch op {
	case ast.OpLt:
		return cmpLt(x, y) != triFalse
	case ast.OpLe:
		return cmpLe(x, y) != triFalse
	case ast.OpGt:
		return cmpLt(y, x) != triFalse
	case ast.OpGe:
		return cmpLe(y, x) != triFalse
	case ast.OpEq:
		return cmpEq(x, y) != triFalse
	case ast.OpNeq:
		return cmpEq(x, y) != triTrue
	}
	return true
}

func listName(e ast.Expr) (string, bool) {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// ----- diagnostics from aggregates -----

func (a *analyzer) finishDiags() {
	for pos, ag := range a.condAgg {
		total := ag.t + ag.f + ag.u
		if total == 0 {
			continue
		}
		if ag.t == total {
			a.rep.add(Diagnostic{
				Code: CodeCondTrue, Severity: Warn, Pos: pos,
				Msg:  "condition is always true within the horizon",
				Hint: "the else branch (if any) is dead; drop the test or fix the guard",
			})
		}
		if ag.f == total {
			a.rep.add(Diagnostic{
				Code: CodeCondFalse, Severity: Warn, Pos: pos,
				Msg:  "condition is always false within the horizon",
				Hint: "the then branch is unreachable; drop it or fix the guard",
			})
		}
	}
	for pos, ag := range a.assertAgg {
		total := ag.t + ag.f + ag.u
		if total == 0 {
			continue
		}
		if ag.t == total {
			a.rep.add(Diagnostic{
				Code: CodeDeadAssert, Severity: Info, Pos: pos,
				Msg:  "assert always holds within the horizon (dead constraint)",
				Hint: "the solver proves this without search; consider removing it or strengthening the query",
			})
		}
		if ag.f == total {
			a.rep.add(Diagnostic{
				Code: CodeNeverAssert, Severity: Warn, Pos: pos,
				Msg:  "assert can never hold within the horizon",
				Hint: "no execution satisfies this query; a witness search is guaranteed to fail",
			})
		}
	}
	for pos, ag := range a.negMoveAgg {
		if ag.t > 0 && ag.f == 0 && ag.u == 0 {
			a.rep.add(Diagnostic{
				Code: CodeNegativeMove, Severity: Info, Pos: pos,
				Msg:  "move count is always negative; the move never transfers anything",
				Hint: "negative counts clamp to zero — use a non-negative expression",
			})
		}
	}
	for pos := range a.overflowAt {
		a.rep.add(Diagnostic{
			Code: CodeOverflow, Severity: Warn, Pos: pos,
			Msg:  "guaranteed buffer capacity violation: every execution drops packets here",
			Hint: "the destination cannot absorb the guaranteed inflow; raise its capacity or shrink the move",
		})
	}
	for pos, sev := range a.contraAt {
		msg := "assumption is unsatisfiable on this path"
		hint := "the path guarded by this assume admits no execution"
		if sev == Error {
			msg = "workload assumptions are contradictory: no execution satisfies them"
			hint = "every query over this program is vacuous; fix the assume constraints"
		}
		a.rep.add(Diagnostic{Code: CodeContradiction, Severity: sev, Pos: pos, Msg: msg, Hint: hint})
	}
	if a.contradiction {
		hasErr := false
		for _, sev := range a.contraAt {
			if sev == Error {
				hasErr = true
			}
		}
		if !hasErr {
			a.rep.add(Diagnostic{
				Code: CodeContradiction, Severity: Error, Pos: a.info.Prog.NamePos,
				Msg: fmt.Sprintf("workload assumptions become contradictory at step %d: no execution completes the horizon", a.contradictionStep),
			})
		}
	}
}
