// Package token defines the lexical tokens of the Buffy language and
// source-position tracking. The token set follows Figure 3 of the paper:
// a small imperative core (variables, assignments, conditionals, bounded
// loops) plus buffer-centric constructs (backlog-p, backlog-b, move-p,
// move-b, the |> filter operator) and list operations.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT // fq, nq, head
	INT   // 42
	FIELD // field name after |> (lexically an IDENT; parser distinguishes)

	// Operators and delimiters.
	ASSIGN    // =
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	EQ        // ==
	NEQ       // !=
	LT        // <
	LE        // <=
	GT        // >
	GE        // >=
	NOT       // !
	AND       // & or &&
	OR        // | or ||
	PIPE      // |> (buffer filter)
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	DOT       // .
	DOTDOT    // ..
	COLON     // :

	// Keywords.
	KwProgram
	KwBuffer
	KwInt
	KwBool
	KwList
	KwGlobal
	KwLocal
	KwMonitor
	KwIf
	KwElse
	KwFor
	KwIn
	KwOut
	KwDo
	KwTrue
	KwFalse
	KwAssert
	KwAssume
	KwBacklogP // backlog-p
	KwBacklogB // backlog-b
	KwMoveP    // move-p
	KwMoveB    // move-b
	KwFields
	KwParam
	KwHavoc
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT", FIELD: "FIELD",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	EQ: "==", NEQ: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	NOT: "!", AND: "&", OR: "|", PIPE: "|>",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMICOLON: ";",
	DOT: ".", DOTDOT: "..", COLON: ":",
	KwProgram: "program", KwBuffer: "buffer", KwInt: "int", KwBool: "bool",
	KwList: "list", KwGlobal: "global", KwLocal: "local", KwMonitor: "monitor",
	KwIf: "if", KwElse: "else", KwFor: "for", KwIn: "in", KwOut: "out",
	KwDo: "do", KwTrue: "true", KwFalse: "false",
	KwAssert: "assert", KwAssume: "assume",
	KwBacklogP: "backlog-p", KwBacklogB: "backlog-b",
	KwMoveP: "move-p", KwMoveB: "move-b",
	KwFields: "fields", KwParam: "param", KwHavoc: "havoc",
}

func (k Kind) String() string {
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps spellings to keyword kinds. The hyphenated buffer keywords
// (backlog-p etc.) are matched by the lexer before generic identifiers.
var Keywords = map[string]Kind{
	"program": KwProgram, "buffer": KwBuffer, "int": KwInt, "bool": KwBool,
	"list": KwList, "global": KwGlobal, "local": KwLocal, "monitor": KwMonitor,
	"if": KwIf, "else": KwElse, "for": KwFor, "in": KwIn, "out": KwOut,
	"do": KwDo, "true": KwTrue, "false": KwFalse,
	"assert": KwAssert, "assume": KwAssume,
	"backlog-p": KwBacklogP, "backlog-b": KwBacklogB,
	"move-p": KwMoveP, "move-b": KwMoveB,
	// Underscore spellings are accepted as aliases for convenience.
	"backlog_p": KwBacklogP, "backlog_b": KwBacklogB,
	"move_p": KwMoveP, "move_b": KwMoveB,
	"fields": KwFields, "param": KwParam, "havoc": KwHavoc,
}

// Pos is a position in a source file.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexical token with its position and literal text.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT/INT; empty otherwise
	Pos  Pos
}

func (t Token) String() string {
	if t.Lit != "" {
		return fmt.Sprintf("%v(%s)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
