package parser

import (
	"strings"
	"testing"

	"buffy/internal/lang/ast"
)

// fig4 is the buggy fair-queuing scheduler exactly as printed in Figure 4
// of the paper.
const fig4 = `
fq(buffer[N] ibs, buffer ob){
  global list nq; global list oq;
  // update new queues
  for (i in 0..N) do{
    if ( backlog-p(ibs[i]) > 0 & !oq.has(i) & !nq.has(i))
      nq.enq(i);}
  // decide which input queue should transmit
  local bool dequeued; local int head;
  local dequeued = false;
  for (i in 0..N) do {
    if (!dequeued) {
      head = -1;
      if (!nq.empty()) { head = nq.pop_front();}
      else {
        if (!oq.empty()) { head = oq.pop_front();}}
      if (head != -1) {
        if ( backlog-p(ibs[head]) > 1) {
          oq.push_back(head);}
        if ( backlog-p(ibs[head]) > 0) {
          move-p(ibs[head], ob, 1);
          dequeued = true;}}}}}
`

func TestParseFigure4(t *testing.T) {
	prog, err := Parse(fig4)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if prog.Name != "fq" {
		t.Errorf("name = %q, want fq", prog.Name)
	}
	if len(prog.Params) != 2 {
		t.Fatalf("params = %d, want 2", len(prog.Params))
	}
	if prog.Params[0].Dir != ast.DirIn || prog.Params[0].Name != "ibs" {
		t.Errorf("param 0 = %v, want in ibs", prog.Params[0])
	}
	if prog.Params[0].Size == nil {
		t.Error("ibs should be a buffer array")
	}
	if prog.Params[1].Dir != ast.DirOut || prog.Params[1].Name != "ob" {
		t.Errorf("param 1 = %v, want out ob (inferred)", prog.Params[1])
	}
	if len(prog.Decls) != 4 {
		t.Errorf("decls = %d, want 4 (nq, oq, dequeued, head)", len(prog.Decls))
	}
	// Body: for, assign (local dequeued = false), for.
	if len(prog.Body) != 3 {
		t.Fatalf("body stmts = %d, want 3", len(prog.Body))
	}
	if _, ok := prog.Body[0].(*ast.For); !ok {
		t.Errorf("body[0] is %T, want *ast.For", prog.Body[0])
	}
	if _, ok := prog.Body[1].(*ast.Assign); !ok {
		t.Errorf("body[1] is %T, want *ast.Assign", prog.Body[1])
	}
}

func TestParseExplicitDirections(t *testing.T) {
	src := `p(in buffer a, in buffer b, out buffer c) { move-p(a, c, 1); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	dirs := []ast.Direction{ast.DirIn, ast.DirIn, ast.DirOut}
	for i, d := range dirs {
		if prog.Params[i].Dir != d {
			t.Errorf("param %d dir = %v, want %v", i, prog.Params[i].Dir, d)
		}
	}
}

func TestParseProgramKeywordOptional(t *testing.T) {
	for _, src := range []string{
		`program p(buffer a, buffer b) { move-p(a, b, 1); }`,
		`p(buffer a, buffer b) { move-p(a, b, 1); }`,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestParseFilter(t *testing.T) {
	src := `p(buffer a, buffer b) {
		fields flow, prio;
		local int n;
		n = backlog-p(a |> flow == 3);
		move-p(a |> prio == 1, b, n);
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prog.Fields); got != 2 {
		t.Errorf("fields = %d, want 2", got)
	}
	asn := prog.Body[0].(*ast.Assign)
	bl := asn.RHS.(*ast.Backlog)
	f, ok := bl.Buf.(*ast.Filter)
	if !ok {
		t.Fatalf("backlog arg is %T, want *ast.Filter", bl.Buf)
	}
	if f.Field != "flow" {
		t.Errorf("filter field = %q, want flow", f.Field)
	}
	mv := prog.Body[1].(*ast.Move)
	if _, ok := mv.Src.(*ast.Filter); !ok {
		t.Errorf("move source is %T, want *ast.Filter", mv.Src)
	}
}

func TestParseChainedFilters(t *testing.T) {
	src := `p(buffer a, buffer b) {
		fields flow, prio;
		local int n;
		n = backlog-p(a |> flow == 1 |> prio == 2);
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	bl := prog.Body[0].(*ast.Assign).RHS.(*ast.Backlog)
	outer := bl.Buf.(*ast.Filter)
	if outer.Field != "prio" {
		t.Errorf("outer filter = %q, want prio", outer.Field)
	}
	inner := outer.Buf.(*ast.Filter)
	if inner.Field != "flow" {
		t.Errorf("inner filter = %q, want flow", inner.Field)
	}
}

func TestParseMoveBytes(t *testing.T) {
	src := `p(buffer a, buffer b) { move-b(a, b, backlog-b(a)); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mv := prog.Body[0].(*ast.Move)
	if !mv.Bytes {
		t.Error("move-b should set Bytes")
	}
	if bl := mv.Count.(*ast.Backlog); !bl.Bytes {
		t.Error("backlog-b should set Bytes")
	}
}

func TestParseAssertAssume(t *testing.T) {
	src := `p(buffer a, buffer b) {
		monitor int served;
		assume(backlog-p(a) <= 5);
		move-p(a, b, 1);
		served = served + 1;
		if (t == T-1) { assert(served >= T/2); }
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Body[0].(*ast.Assume); !ok {
		t.Errorf("body[0] is %T, want *ast.Assume", prog.Body[0])
	}
	ifStmt := prog.Body[3].(*ast.If)
	if _, ok := ifStmt.Then[0].(*ast.Assert); !ok {
		t.Errorf("then[0] is %T, want *ast.Assert", ifStmt.Then[0])
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	src := `p(buffer a, buffer b) {
		local bool x;
		x = 1 + 2 * 3 == 7 & true | false;
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: ((((1 + (2*3)) == 7) & true) | false)
	rhs := prog.Body[0].(*ast.Assign).RHS
	want := "((((1 + (2 * 3)) == 7) & true) | false)"
	if got := rhs.String(); got != want {
		t.Errorf("precedence: got %s, want %s", got, want)
	}
}

func TestParseUnderscoreAliases(t *testing.T) {
	src := `p(buffer a, buffer b) {
		local int n;
		n = backlog_p(a);
		move_p(a, b, n);
	}`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseHyphenIsStillMinus(t *testing.T) {
	src := `p(buffer a, buffer b) {
		local int backlog; local int x;
		x = backlog - 1;
		move-p(a, b, x);
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	bin := prog.Body[0].(*ast.Assign).RHS.(*ast.Binary)
	if bin.Op != ast.OpSub {
		t.Errorf("op = %v, want -", bin.Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`p(buffer a, buffer b) { x = l.push_back(1) + 2; }`, "push_back is a statement"},
		{`p(buffer a, buffer b) { 3 = 4; }`, "expected"},
		{`p(buffer a, buffer b) { move-p(a, b); }`, "expected"},
		{`p(buffer a, buffer b) { if x { } }`, "expected ("},
		{``, "no program found"},
		{`p(buffer a, buffer b) { l.frobnicate(); }`, "unknown method"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got none", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseMultiplePrograms(t *testing.T) {
	src := `
a(buffer x, buffer y) { move-p(x, y, 1); }
b(buffer x, buffer y) { move-p(x, y, 2); }
`
	progs, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 || progs[0].Name != "a" || progs[1].Name != "b" {
		t.Errorf("got %d programs", len(progs))
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `p(buffer a, buffer b) {
		local int x;
		if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Body[0].(*ast.If)
	if len(ifs.Else) != 1 {
		t.Fatalf("else arm has %d stmts", len(ifs.Else))
	}
	if _, ok := ifs.Else[0].(*ast.If); !ok {
		t.Errorf("else-if not chained: %T", ifs.Else[0])
	}
}

func TestParseDefaultField(t *testing.T) {
	prog, err := Parse(`p(buffer a, buffer b) { move-p(a, b, 1); }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Fields) != 1 || prog.Fields[0] != "flow" {
		t.Errorf("default fields = %v, want [flow]", prog.Fields)
	}
}
