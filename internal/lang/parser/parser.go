// Package parser implements a recursive-descent parser for the Buffy
// language. It accepts the paper's surface syntax (Figure 4) — including
// optional in/out buffer qualifiers (when omitted, the last buffer parameter
// is the output buffer, matching the paper's convention), the optional
// `do` after bounded-for headers, braceless single-statement if bodies, and
// the `local x = e;` re-assignment spelling.
package parser

import (
	"fmt"
	"strconv"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/lexer"
	"buffy/internal/lang/token"
)

// Error is a parse error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// Parser parses Buffy source text.
type Parser struct {
	lx   *lexer.Lexer
	tok  token.Token
	next token.Token
	errs []*Error

	// inFilterValue suppresses |> in postfix position while parsing the
	// value of a filter, so `a |> f == 1 |> g == 2` chains the second
	// filter onto the buffer rather than onto the literal 1.
	inFilterValue bool
}

// pushCall marks `l.push_back(e)` / `l.enq(e)` while the parser decides
// whether it occurs in statement position; it never escapes this package.
type pushCall struct {
	list ast.Expr
	arg  ast.Expr
}

func (p *pushCall) Pos() token.Pos { return p.list.Pos() }
func (p *pushCall) String() string { return fmt.Sprintf("%s.push_back(%s)", p.list, p.arg) }
func (p *pushCall) exprMarker()    {}

// pushCall deliberately does not implement ast.Expr (no exprNode method);
// the parser wraps it in exprOrPush below.

// ParseFile parses a file that may contain several programs.
func ParseFile(src string) ([]*ast.Program, error) {
	p := &Parser{lx: lexer.New(src)}
	p.tok = p.lx.Next()
	p.next = p.lx.Next()
	var progs []*ast.Program
	for p.tok.Kind != token.EOF {
		prog := p.parseProgram()
		if prog != nil {
			progs = append(progs, prog)
		}
		if len(p.errs) > 0 {
			break
		}
	}
	if errs := p.lx.Errors(); len(errs) > 0 {
		return nil, errs[0]
	}
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	if len(progs) == 0 {
		return nil, &Error{Pos: token.Pos{Line: 1, Col: 1}, Msg: "no program found"}
	}
	return progs, nil
}

// Parse parses a single program (the first in the file).
func Parse(src string) (*ast.Program, error) {
	progs, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	return progs[0], nil
}

func (p *Parser) advance() {
	p.tok = p.next
	p.next = p.lx.Next()
}

func (p *Parser) errorf(pos token.Pos, format string, args ...interface{}) {
	if len(p.errs) < 20 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *Parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %v, found %v", k, t)
		// Do not consume: let the caller's structure re-synchronize.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.advance()
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

// bail reports whether too many errors accumulated to continue sensibly.
func (p *Parser) bail() bool { return len(p.errs) > 0 }

// ----- program -----

func (p *Parser) parseProgram() *ast.Program {
	p.accept(token.KwProgram) // optional keyword
	name := p.expect(token.IDENT)
	prog := &ast.Program{Name: name.Lit, NamePos: name.Pos}
	p.expect(token.LPAREN)
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		prog.Params = append(prog.Params, p.parseBufferParam())
		if !p.accept(token.COMMA) {
			break
		}
		if p.bail() {
			return nil
		}
	}
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if p.bail() {
			return nil
		}
		switch p.tok.Kind {
		case token.KwFields:
			p.parseFields(prog)
		default:
			s := p.parseStmt()
			if s != nil {
				if d, ok := s.(*ast.VarDecl); ok {
					prog.Decls = append(prog.Decls, d)
				} else {
					prog.Body = append(prog.Body, s)
				}
			}
		}
	}
	p.expect(token.RBRACE)
	inferDirections(prog)
	if len(prog.Fields) == 0 {
		prog.Fields = []string{"flow"}
	}
	return prog
}

// inferDirections applies the paper's convention when no in/out qualifiers
// are given: the last buffer parameter is the output buffer.
func inferDirections(prog *ast.Program) {
	anyExplicit := false
	for _, pr := range prog.Params {
		if pr.Explicit {
			anyExplicit = true
		}
	}
	if anyExplicit || len(prog.Params) < 2 {
		return
	}
	for i, pr := range prog.Params {
		if i == len(prog.Params)-1 {
			pr.Dir = ast.DirOut
		} else {
			pr.Dir = ast.DirIn
		}
	}
}

func (p *Parser) parseBufferParam() *ast.BufferParam {
	bp := &ast.BufferParam{}
	switch p.tok.Kind {
	case token.KwIn:
		bp.Dir, bp.Explicit = ast.DirIn, true
		p.advance()
	case token.KwOut:
		bp.Dir, bp.Explicit = ast.DirOut, true
		p.advance()
	}
	p.expect(token.KwBuffer)
	if p.accept(token.LBRACKET) {
		bp.Size = p.parseExpr()
		p.expect(token.RBRACKET)
	}
	name := p.expect(token.IDENT)
	bp.Name, bp.NamePos = name.Lit, name.Pos
	return bp
}

func (p *Parser) parseFields(prog *ast.Program) {
	p.expect(token.KwFields)
	for {
		f := p.expect(token.IDENT)
		prog.Fields = append(prog.Fields, f.Lit)
		prog.FieldsPos = append(prog.FieldsPos, f.Pos)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMICOLON)
}

// ----- statements -----

func (p *Parser) parseBlockOrStmt() []ast.Stmt {
	if p.accept(token.LBRACE) {
		var out []ast.Stmt
		for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
			if p.bail() {
				return out
			}
			if s := p.parseStmt(); s != nil {
				out = append(out, s)
			}
		}
		p.expect(token.RBRACE)
		return out
	}
	// Braceless single statement (Figure 4 line 6 style).
	if s := p.parseStmt(); s != nil {
		return []ast.Stmt{s}
	}
	return nil
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.KwGlobal, token.KwLocal, token.KwMonitor:
		return p.parseDeclOrQualifiedAssign()
	case token.KwIf:
		return p.parseIf()
	case token.KwFor:
		return p.parseFor()
	case token.KwAssert, token.KwAssume:
		return p.parseAssertAssume()
	case token.KwMoveP, token.KwMoveB:
		return p.parseMove()
	case token.KwHavoc:
		kw := p.tok
		p.advance()
		name := p.expect(token.IDENT)
		p.expect(token.SEMICOLON)
		return &ast.Havoc{Target: &ast.Ident{Name: name.Lit, IdPos: name.Pos}, KwPos: kw.Pos}
	case token.SEMICOLON:
		p.advance()
		return nil
	case token.IDENT:
		return p.parseSimpleStmt()
	}
	p.errorf(p.tok.Pos, "unexpected %v at statement start", p.tok)
	p.advance()
	return nil
}

func (p *Parser) parseDeclOrQualifiedAssign() ast.Stmt {
	var storage ast.StorageClass
	switch p.tok.Kind {
	case token.KwGlobal:
		storage = ast.Global
	case token.KwLocal:
		storage = ast.Local
	case token.KwMonitor:
		storage = ast.Monitor
	}
	p.advance()

	// `local x = e;` — storage-qualified re-assignment (Figure 4, line 9).
	if p.tok.Kind == token.IDENT && p.next.Kind == token.ASSIGN {
		lhs := &ast.Ident{Name: p.tok.Lit, IdPos: p.tok.Pos}
		p.advance()
		p.expect(token.ASSIGN)
		rhs := p.parseAssignRHS()
		p.expect(token.SEMICOLON)
		return &ast.Assign{LHS: lhs, RHS: rhs}
	}

	typ := p.parseType()
	name := p.expect(token.IDENT)
	d := &ast.VarDecl{Storage: storage, Type: typ, Name: name.Lit, NamePos: name.Pos}
	if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	return d
}

func (p *Parser) parseType() ast.Type {
	var t ast.Type
	switch p.tok.Kind {
	case token.KwInt:
		t.Kind = ast.TInt
	case token.KwBool:
		t.Kind = ast.TBool
	case token.KwList:
		t.Kind = ast.TList
	case token.KwBuffer:
		t.Kind = ast.TBuffer
	default:
		p.errorf(p.tok.Pos, "expected type, found %v", p.tok)
		return t
	}
	p.advance()
	if p.accept(token.LBRACKET) {
		t.Size = p.parseExpr()
		p.expect(token.RBRACKET)
	}
	return t
}

func (p *Parser) parseIf() ast.Stmt {
	kw := p.expect(token.KwIf)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlockOrStmt()
	var els []ast.Stmt
	if p.accept(token.KwElse) {
		if p.tok.Kind == token.KwIf {
			els = []ast.Stmt{p.parseIf()} // else-if chain
		} else {
			els = p.parseBlockOrStmt()
		}
	}
	return &ast.If{Cond: cond, Then: then, Else: els, KwPos: kw.Pos}
}

func (p *Parser) parseFor() ast.Stmt {
	kw := p.expect(token.KwFor)
	p.expect(token.LPAREN)
	v := p.expect(token.IDENT)
	p.expect(token.KwIn)
	lo := p.parseExpr()
	p.expect(token.DOTDOT)
	hi := p.parseExpr()
	p.expect(token.RPAREN)
	p.accept(token.KwDo) // optional
	body := p.parseBlockOrStmt()
	return &ast.For{Var: v.Lit, Lo: lo, Hi: hi, Body: body, KwPos: kw.Pos}
}

func (p *Parser) parseAssertAssume() ast.Stmt {
	kw := p.tok
	p.advance()
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.SEMICOLON)
	if kw.Kind == token.KwAssert {
		return &ast.Assert{Cond: cond, KwPos: kw.Pos}
	}
	return &ast.Assume{Cond: cond, KwPos: kw.Pos}
}

func (p *Parser) parseMove() ast.Stmt {
	kw := p.tok
	p.advance()
	p.expect(token.LPAREN)
	src := p.parseExpr()
	p.expect(token.COMMA)
	dst := p.parseExpr()
	p.expect(token.COMMA)
	count := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.SEMICOLON)
	return &ast.Move{
		Bytes: kw.Kind == token.KwMoveB,
		Src:   src, Dst: dst, Count: count, KwPos: kw.Pos,
	}
}

// parseSimpleStmt handles assignments and list-mutation calls.
func (p *Parser) parseSimpleStmt() ast.Stmt {
	lhs, push := p.parsePostfixOrPush()
	if push != nil {
		p.expect(token.SEMICOLON)
		return &ast.PushBack{List: push.list, Arg: push.arg}
	}
	if p.tok.Kind == token.ASSIGN {
		p.advance()
		rhs := p.parseAssignRHS()
		p.expect(token.SEMICOLON)
		switch lhs.(type) {
		case *ast.Ident, *ast.Index:
		default:
			p.errorf(lhs.Pos(), "invalid assignment target %s", lhs)
		}
		return &ast.Assign{LHS: lhs, RHS: rhs}
	}
	p.errorf(p.tok.Pos, "expected '=' or method-call statement, found %v", p.tok)
	p.advance()
	return nil
}

// parseAssignRHS parses an expression or an l.pop_front() call.
func (p *Parser) parseAssignRHS() ast.Expr {
	e := p.parseExpr()
	return e
}

// ----- expressions -----

// parseExpr parses at the lowest precedence level (|).
func (p *Parser) parseExpr() ast.Expr {
	e := p.parseAnd()
	for p.tok.Kind == token.OR {
		p.advance()
		y := p.parseAnd()
		e = &ast.Binary{Op: ast.OpOr, X: e, Y: y}
	}
	return e
}

func (p *Parser) parseAnd() ast.Expr {
	e := p.parseComparison()
	for p.tok.Kind == token.AND {
		p.advance()
		y := p.parseComparison()
		e = &ast.Binary{Op: ast.OpAnd, X: e, Y: y}
	}
	return e
}

var cmpOps = map[token.Kind]ast.BinOp{
	token.EQ: ast.OpEq, token.NEQ: ast.OpNeq,
	token.LT: ast.OpLt, token.LE: ast.OpLe,
	token.GT: ast.OpGt, token.GE: ast.OpGe,
}

func (p *Parser) parseComparison() ast.Expr {
	e := p.parseAdditive()
	if op, ok := cmpOps[p.tok.Kind]; ok {
		p.advance()
		y := p.parseAdditive()
		e = &ast.Binary{Op: op, X: e, Y: y}
	}
	return e
}

func (p *Parser) parseAdditive() ast.Expr {
	e := p.parseMultiplicative()
	for p.tok.Kind == token.PLUS || p.tok.Kind == token.MINUS {
		op := ast.OpAdd
		if p.tok.Kind == token.MINUS {
			op = ast.OpSub
		}
		p.advance()
		y := p.parseMultiplicative()
		e = &ast.Binary{Op: op, X: e, Y: y}
	}
	return e
}

func (p *Parser) parseMultiplicative() ast.Expr {
	e := p.parseUnary()
	for p.tok.Kind == token.STAR || p.tok.Kind == token.SLASH || p.tok.Kind == token.PERCENT {
		var op ast.BinOp
		switch p.tok.Kind {
		case token.STAR:
			op = ast.OpMul
		case token.SLASH:
			op = ast.OpDiv
		default:
			op = ast.OpMod
		}
		p.advance()
		y := p.parseUnary()
		e = &ast.Binary{Op: op, X: e, Y: y}
	}
	return e
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.NOT:
		pos := p.tok.Pos
		p.advance()
		return &ast.Unary{Op: ast.OpNot, X: p.parseUnary(), OpPos: pos}
	case token.MINUS:
		pos := p.tok.Pos
		p.advance()
		return &ast.Unary{Op: ast.OpNegate, X: p.parseUnary(), OpPos: pos}
	}
	e, push := p.parsePostfixOrPush()
	if push != nil {
		p.errorf(push.Pos(), "push_back is a statement, not an expression")
		return &ast.IntLit{Value: 0, LitPos: push.Pos()}
	}
	return e
}

// parsePostfixOrPush parses a primary followed by postfix operations:
// indexing, method calls, and buffer filters. If the final postfix is a
// push_back/enq call, it is returned separately so only statement position
// accepts it.
func (p *Parser) parsePostfixOrPush() (ast.Expr, *pushCall) {
	e := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.LBRACKET:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			e = &ast.Index{X: e, Idx: idx}
		case token.DOT:
			p.advance()
			m := p.expect(token.IDENT)
			p.expect(token.LPAREN)
			var arg ast.Expr
			if p.tok.Kind != token.RPAREN {
				arg = p.parseExpr()
			}
			p.expect(token.RPAREN)
			switch m.Lit {
			case "has":
				if arg == nil {
					p.errorf(m.Pos, "has requires an argument")
					arg = &ast.IntLit{Value: 0, LitPos: m.Pos}
				}
				e = &ast.ListQuery{List: e, Op: ast.ListHas, Arg: arg}
			case "empty":
				e = &ast.ListQuery{List: e, Op: ast.ListEmpty}
			case "size":
				e = &ast.ListQuery{List: e, Op: ast.ListSize}
			case "pop_front":
				e = &ast.PopFront{List: e}
			case "push_back", "enq":
				if arg == nil {
					p.errorf(m.Pos, "%s requires an argument", m.Lit)
					arg = &ast.IntLit{Value: 0, LitPos: m.Pos}
				}
				return nil, &pushCall{list: e, arg: arg}
			default:
				p.errorf(m.Pos, "unknown method %q (want has/empty/size/pop_front/push_back/enq)", m.Lit)
			}
		case token.PIPE:
			if p.inFilterValue {
				return e, nil
			}
			p.advance()
			f := p.expect(token.IDENT)
			p.expect(token.EQ)
			p.inFilterValue = true
			v := p.parseAdditive()
			p.inFilterValue = false
			e = &ast.Filter{Buf: e, Field: f.Lit, Value: v}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.tok
	switch t.Kind {
	case token.INT:
		p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer %q", t.Lit)
		}
		return &ast.IntLit{Value: v, LitPos: t.Pos}
	case token.KwTrue:
		p.advance()
		return &ast.BoolLit{Value: true, LitPos: t.Pos}
	case token.KwFalse:
		p.advance()
		return &ast.BoolLit{Value: false, LitPos: t.Pos}
	case token.IDENT:
		p.advance()
		return &ast.Ident{Name: t.Lit, IdPos: t.Pos}
	case token.LPAREN:
		p.advance()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.KwBacklogP, token.KwBacklogB:
		p.advance()
		p.expect(token.LPAREN)
		buf := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.Backlog{Bytes: t.Kind == token.KwBacklogB, Buf: buf, KwPos: t.Pos}
	}
	p.errorf(t.Pos, "unexpected %v in expression", t)
	p.advance()
	return &ast.IntLit{Value: 0, LitPos: t.Pos}
}
