// Package ast defines the abstract syntax tree of the Buffy language. The
// node set mirrors Figure 3 of the paper: expressions over ints, bools,
// buffers (with backlog and filter operations) and lists, and commands for
// moving packets/bytes between buffers, list manipulation, assignment,
// conditionals and bounded loops, plus assume/assert for workload
// assumptions and performance queries.
package ast

import (
	"fmt"
	"strings"

	"buffy/internal/lang/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
	String() string
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement (command) node.
type Stmt interface {
	Node
	stmtNode()
}

// ----- types -----

// TypeKind enumerates Buffy's primitive and structured types.
type TypeKind int

// Buffy types (§7: integers, booleans, buffers, arrays, lists).
const (
	TInt TypeKind = iota
	TBool
	TBuffer
	TList
)

func (k TypeKind) String() string {
	switch k {
	case TInt:
		return "int"
	case TBool:
		return "bool"
	case TBuffer:
		return "buffer"
	case TList:
		return "list"
	}
	return fmt.Sprintf("type(%d)", int(k))
}

// Type is a (possibly array-shaped) Buffy type. Size is the array length
// expression (nil for scalars); per §7 it must resolve to a compile-time
// constant.
type Type struct {
	Kind TypeKind
	Size Expr // nil for non-array
}

func (t Type) String() string {
	if t.Size != nil {
		return fmt.Sprintf("%v[%s]", t.Kind, t.Size)
	}
	return t.Kind.String()
}

// IsArray reports whether the type has an array dimension.
func (t Type) IsArray() bool { return t.Size != nil }

// ----- program structure -----

// Program is a complete Buffy program: one time step of behaviour over a
// set of input and output buffers.
type Program struct {
	Name    string
	NamePos token.Pos
	Params  []*BufferParam
	Fields  []string // packet field names; defaults to ["flow"]
	// FieldsPos are the source positions of the names in Fields, parallel
	// to it (empty when the fields clause was defaulted), so diagnostics
	// about a field can point at the field itself.
	FieldsPos []token.Pos
	Decls     []*VarDecl
	Body      []Stmt
}

func (p *Program) Pos() token.Pos { return p.NamePos }

func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s(", p.Name)
	for i, pr := range p.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(pr.String())
	}
	b.WriteString(") { ... }")
	return b.String()
}

// Direction marks a buffer parameter as program input or output.
type Direction int

// Buffer parameter directions.
const (
	DirIn Direction = iota
	DirOut
)

func (d Direction) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// BufferParam is one buffer parameter of a program, e.g. `in buffer[N] ibs`.
type BufferParam struct {
	Dir      Direction
	Explicit bool // direction was written in the source
	Name     string
	Size     Expr // nil for a single buffer; else the array length
	NamePos  token.Pos
}

func (p *BufferParam) Pos() token.Pos { return p.NamePos }

func (p *BufferParam) String() string {
	if p.Size != nil {
		return fmt.Sprintf("%v buffer[%s] %s", p.Dir, p.Size, p.Name)
	}
	return fmt.Sprintf("%v buffer %s", p.Dir, p.Name)
}

// StorageClass says how long a variable lives (§3: globals persist across
// time steps, locals are per-step, monitors are ghost globals).
type StorageClass int

// Variable storage classes.
const (
	Global StorageClass = iota
	Local
	Monitor
)

func (s StorageClass) String() string {
	switch s {
	case Global:
		return "global"
	case Local:
		return "local"
	case Monitor:
		return "monitor"
	}
	return fmt.Sprintf("storage(%d)", int(s))
}

// VarDecl declares a global, local or monitor variable.
type VarDecl struct {
	Storage StorageClass
	Type    Type
	Name    string
	NamePos token.Pos
	Init    Expr // optional initializer (globals: value before step 0)
}

func (d *VarDecl) Pos() token.Pos { return d.NamePos }
func (d *VarDecl) String() string {
	s := fmt.Sprintf("%v %v %s", d.Storage, d.Type, d.Name)
	if d.Init != nil {
		s += " = " + d.Init.String()
	}
	return s + ";"
}
func (d *VarDecl) stmtNode() {}

// ----- expressions -----

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	LitPos token.Pos
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }
func (e *IntLit) exprNode()      {}

// BoolLit is true or false.
type BoolLit struct {
	Value  bool
	LitPos token.Pos
}

func (e *BoolLit) Pos() token.Pos { return e.LitPos }
func (e *BoolLit) String() string { return fmt.Sprintf("%t", e.Value) }
func (e *BoolLit) exprNode()      {}

// Ident is a variable, parameter or compile-time constant reference.
type Ident struct {
	Name  string
	IdPos token.Pos
}

func (e *Ident) Pos() token.Pos { return e.IdPos }
func (e *Ident) String() string { return e.Name }
func (e *Ident) exprNode()      {}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv // compile-time constant operands only (§7 keeps solving simple)
	OpMod // compile-time constant operands only
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&", OpOr: "|",
}

func (op BinOp) String() string { return binOpNames[op] }

// Binary is a binary expression.
type Binary struct {
	Op   BinOp
	X, Y Expr
}

func (e *Binary) Pos() token.Pos { return e.X.Pos() }
func (e *Binary) String() string {
	return fmt.Sprintf("(%s %v %s)", e.X, e.Op, e.Y)
}
func (e *Binary) exprNode() {}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota
	OpNegate
)

func (op UnOp) String() string {
	if op == OpNot {
		return "!"
	}
	return "-"
}

// Unary is a unary expression.
type Unary struct {
	Op    UnOp
	X     Expr
	OpPos token.Pos
}

func (e *Unary) Pos() token.Pos { return e.OpPos }
func (e *Unary) String() string { return fmt.Sprintf("(%v%s)", e.Op, e.X) }
func (e *Unary) exprNode()      {}

// Index is arr[i] or ibs[i] (array or buffer-array indexing).
type Index struct {
	X   Expr
	Idx Expr
}

func (e *Index) Pos() token.Pos { return e.X.Pos() }
func (e *Index) String() string { return fmt.Sprintf("%s[%s]", e.X, e.Idx) }
func (e *Index) exprNode()      {}

// Backlog is backlog-p(B) or backlog-b(B).
type Backlog struct {
	Bytes bool // true for backlog-b
	Buf   Expr // buffer-typed expression (possibly filtered)
	KwPos token.Pos
}

func (e *Backlog) Pos() token.Pos { return e.KwPos }
func (e *Backlog) String() string {
	op := "backlog-p"
	if e.Bytes {
		op = "backlog-b"
	}
	return fmt.Sprintf("%s(%s)", op, e.Buf)
}
func (e *Backlog) exprNode() {}

// Filter is B |> f == n: the sub-buffer of B whose packets have field f
// equal to n.
type Filter struct {
	Buf   Expr // buffer-typed
	Field string
	Value Expr // integer
}

func (e *Filter) Pos() token.Pos { return e.Buf.Pos() }
func (e *Filter) String() string {
	return fmt.Sprintf("(%s |> %s == %s)", e.Buf, e.Field, e.Value)
}
func (e *Filter) exprNode() {}

// ListOpKind enumerates list methods usable in expression position.
type ListOpKind int

// List query methods.
const (
	ListHas ListOpKind = iota
	ListEmpty
	ListSize
)

func (k ListOpKind) String() string {
	switch k {
	case ListHas:
		return "has"
	case ListEmpty:
		return "empty"
	case ListSize:
		return "size"
	}
	return "?"
}

// ListQuery is l.has(E), l.empty() or l.size().
type ListQuery struct {
	List Expr
	Op   ListOpKind
	Arg  Expr // only for has
}

func (e *ListQuery) Pos() token.Pos { return e.List.Pos() }
func (e *ListQuery) String() string {
	if e.Arg != nil {
		return fmt.Sprintf("%s.%v(%s)", e.List, e.Op, e.Arg)
	}
	return fmt.Sprintf("%s.%v()", e.List, e.Op)
}
func (e *ListQuery) exprNode() {}

// ----- statements -----

// Assign is x = E, arr[i] = E, or x = l.pop_front().
type Assign struct {
	LHS Expr // Ident or Index
	RHS Expr // ordinary expression, or PopFront
}

func (s *Assign) Pos() token.Pos { return s.LHS.Pos() }
func (s *Assign) String() string { return fmt.Sprintf("%s = %s;", s.LHS, s.RHS) }
func (s *Assign) stmtNode()      {}

// PopFront is the RHS form l.pop_front(); it both yields the head and
// mutates the list, so it is only legal directly on an assignment RHS.
type PopFront struct {
	List Expr
}

func (e *PopFront) Pos() token.Pos { return e.List.Pos() }
func (e *PopFront) String() string { return fmt.Sprintf("%s.pop_front()", e.List) }
func (e *PopFront) exprNode()      {}

// PushBack is l.push_back(E) (alias: l.enq(E)).
type PushBack struct {
	List Expr
	Arg  Expr
}

func (s *PushBack) Pos() token.Pos { return s.List.Pos() }
func (s *PushBack) String() string { return fmt.Sprintf("%s.push_back(%s);", s.List, s.Arg) }
func (s *PushBack) stmtNode()      {}

// Move is move-p(src, dst, E) or move-b(src, dst, E): move E packets/bytes
// from src to dst.
type Move struct {
	Bytes    bool
	Src, Dst Expr // buffer-typed
	Count    Expr // integer
	KwPos    token.Pos
}

func (s *Move) Pos() token.Pos { return s.KwPos }
func (s *Move) String() string {
	op := "move-p"
	if s.Bytes {
		op = "move-b"
	}
	return fmt.Sprintf("%s(%s, %s, %s);", op, s.Src, s.Dst, s.Count)
}
func (s *Move) stmtNode() {}

// If is a conditional command.
type If struct {
	Cond  Expr
	Then  []Stmt
	Else  []Stmt // nil if absent
	KwPos token.Pos
}

func (s *If) Pos() token.Pos { return s.KwPos }
func (s *If) String() string { return fmt.Sprintf("if (%s) {...}", s.Cond) }
func (s *If) stmtNode()      {}

// For is the bounded loop `for (i in lo..hi) do { body }`; the bounds must
// be compile-time constants (§7) and the loop runs for i in [lo, hi).
type For struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	KwPos  token.Pos
}

func (s *For) Pos() token.Pos { return s.KwPos }
func (s *For) String() string {
	return fmt.Sprintf("for (%s in %s..%s) {...}", s.Var, s.Lo, s.Hi)
}
func (s *For) stmtNode() {}

// Assert is a performance query check (§3: monitors + assert).
type Assert struct {
	Cond  Expr
	KwPos token.Pos
}

func (s *Assert) Pos() token.Pos { return s.KwPos }
func (s *Assert) String() string { return fmt.Sprintf("assert(%s);", s.Cond) }
func (s *Assert) stmtNode()      {}

// Assume restricts the considered executions (workload assumptions).
type Assume struct {
	Cond  Expr
	KwPos token.Pos
}

func (s *Assume) Pos() token.Pos { return s.KwPos }
func (s *Assume) String() string { return fmt.Sprintf("assume(%s);", s.Cond) }
func (s *Assume) stmtNode()      {}

// Havoc assigns a nondeterministic value to a variable (§6: "havocs —
// symbolic variables with non-deterministic values that can be constrained
// using assume statements").
type Havoc struct {
	Target *Ident
	KwPos  token.Pos
}

func (s *Havoc) Pos() token.Pos { return s.KwPos }
func (s *Havoc) String() string { return fmt.Sprintf("havoc %s;", s.Target) }
func (s *Havoc) stmtNode()      {}

// Walk traverses the statement tree in depth-first order, calling f for
// every statement.
func Walk(stmts []Stmt, f func(Stmt)) {
	for _, s := range stmts {
		f(s)
		switch n := s.(type) {
		case *If:
			Walk(n.Then, f)
			Walk(n.Else, f)
		case *For:
			Walk(n.Body, f)
		}
	}
}

// WalkExprs traverses every expression in the statement tree.
func WalkExprs(stmts []Stmt, f func(Expr)) {
	var we func(Expr)
	we = func(e Expr) {
		if e == nil {
			return
		}
		f(e)
		switch n := e.(type) {
		case *Binary:
			we(n.X)
			we(n.Y)
		case *Unary:
			we(n.X)
		case *Index:
			we(n.X)
			we(n.Idx)
		case *Backlog:
			we(n.Buf)
		case *Filter:
			we(n.Buf)
			we(n.Value)
		case *ListQuery:
			we(n.List)
			we(n.Arg)
		case *PopFront:
			we(n.List)
		}
	}
	Walk(stmts, func(s Stmt) {
		switch n := s.(type) {
		case *Assign:
			we(n.LHS)
			we(n.RHS)
		case *PushBack:
			we(n.List)
			we(n.Arg)
		case *Move:
			we(n.Src)
			we(n.Dst)
			we(n.Count)
		case *If:
			we(n.Cond)
		case *For:
			we(n.Lo)
			we(n.Hi)
		case *Assert:
			we(n.Cond)
		case *Assume:
			we(n.Cond)
		case *VarDecl:
			we(n.Init)
		}
	})
}
