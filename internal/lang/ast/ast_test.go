package ast_test

import (
	"strings"
	"testing"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/parser"
	"buffy/internal/qm"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// Round-trip property: Format output reparses to a structurally identical
// program (Format is a fixed point after one iteration).
func TestFormatRoundTrip(t *testing.T) {
	sources := map[string]string{
		"fq":      qm.FQBuggySrc,
		"fqq":     qm.FQBuggyQuerySrc,
		"fqf":     qm.FQFixedQuerySrc,
		"rr":      qm.RRSrc,
		"rrq":     qm.RRQuerySrc,
		"sp":      qm.SPSrc,
		"spq":     qm.SPQuerySrc,
		"path":    qm.PathServerSrc,
		"delay":   qm.DelaySrc,
		"aimd":    qm.AIMDSrc,
		"filters": `p(buffer a, buffer b) { fields flow, prio; local int n; n = backlog-b(a |> flow == 1 |> prio == 2); move-b(a |> flow == 1, b, n); }`,
		"arrays":  `p(buffer a, buffer b) { global int[4] arr; local int i; arr[i+1] = arr[0] * 2; move-p(a, b, arr[3]); }`,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			p1 := parse(t, src)
			out1 := ast.Format(p1)
			p2 := parse(t, out1)
			out2 := ast.Format(p2)
			if out1 != out2 {
				t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
			}
			if !ast.Equal(p1, p2) {
				t.Fatal("reparsed program differs structurally")
			}
		})
	}
}

func TestFormatPreservesExplicitDirections(t *testing.T) {
	p := parse(t, `p(in buffer a, out buffer b, out buffer c) { move-p(a, b, 1); }`)
	out := ast.Format(p)
	if !strings.Contains(out, "in buffer a") || !strings.Contains(out, "out buffer c") {
		t.Errorf("directions lost:\n%s", out)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	p := parse(t, qm.FQBuggySrc)
	var ifs, fors, moves, pushes int
	ast.Walk(p.Body, func(s ast.Stmt) {
		switch s.(type) {
		case *ast.If:
			ifs++
		case *ast.For:
			fors++
		case *ast.Move:
			moves++
		case *ast.PushBack:
			pushes++
		}
	})
	if fors != 2 {
		t.Errorf("fors = %d, want 2", fors)
	}
	if ifs < 5 {
		t.Errorf("ifs = %d, want >= 5", ifs)
	}
	if moves != 1 || pushes != 2 {
		t.Errorf("moves=%d pushes=%d", moves, pushes)
	}
}

func TestWalkExprsVisitsNested(t *testing.T) {
	p := parse(t, `p(buffer a, buffer b) {
		local int x;
		x = backlog-p(a |> flow == (1 + 2));
		move-p(a, b, x * 3);
	}`)
	var backlogs, filters, binaries int
	ast.WalkExprs(p.Body, func(e ast.Expr) {
		switch e.(type) {
		case *ast.Backlog:
			backlogs++
		case *ast.Filter:
			filters++
		case *ast.Binary:
			binaries++
		}
	})
	if backlogs != 1 || filters != 1 {
		t.Errorf("backlogs=%d filters=%d", backlogs, filters)
	}
	if binaries < 2 { // (1+2) and x*3
		t.Errorf("binaries = %d, want >= 2", binaries)
	}
}

func TestStringMethods(t *testing.T) {
	p := parse(t, qm.SPSrc)
	if got := p.String(); !strings.Contains(got, "sp(") {
		t.Errorf("program string = %q", got)
	}
	if ast.Global.String() != "global" || ast.Monitor.String() != "monitor" {
		t.Error("storage class strings")
	}
	if ast.TBuffer.String() != "buffer" || ast.TList.String() != "list" {
		t.Error("type kind strings")
	}
	if ast.DirIn.String() != "in" || ast.DirOut.String() != "out" {
		t.Error("direction strings")
	}
}

func TestTypeString(t *testing.T) {
	p := parse(t, `p(buffer a, buffer b) { global int[3] xs; move-p(a, b, xs[0]); }`)
	d := p.Decls[0]
	if got := d.Type.String(); got != "int[3]" {
		t.Errorf("type string = %q", got)
	}
	if !d.Type.IsArray() {
		t.Error("IsArray should be true")
	}
}
