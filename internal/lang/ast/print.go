package ast

import (
	"fmt"
	"strings"
)

// Format renders a program back to parseable Buffy source. The output is
// normalized (canonical spacing, explicit braces, declarations hoisted to
// the top) rather than a byte-for-byte reproduction of the input; parsing
// the output yields a structurally identical program.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", p.Name)
	for i, pr := range p.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if pr.Explicit {
			fmt.Fprintf(&b, "%v ", pr.Dir)
		}
		if pr.Size != nil {
			fmt.Fprintf(&b, "buffer[%s] %s", formatExpr(pr.Size), pr.Name)
		} else {
			fmt.Fprintf(&b, "buffer %s", pr.Name)
		}
	}
	b.WriteString(") {\n")
	if len(p.Fields) > 0 && !(len(p.Fields) == 1 && p.Fields[0] == "flow") {
		fmt.Fprintf(&b, "  fields %s;\n", strings.Join(p.Fields, ", "))
	}
	for _, d := range p.Decls {
		b.WriteString("  ")
		b.WriteString(formatDecl(d))
		b.WriteByte('\n')
	}
	formatStmts(&b, p.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func formatDecl(d *VarDecl) string {
	s := fmt.Sprintf("%v %v %s", d.Storage, d.Type, d.Name)
	if d.Init != nil {
		s += " = " + formatExpr(d.Init)
	}
	return s + ";"
}

func indent(b *strings.Builder, level int) {
	for i := 0; i < level; i++ {
		b.WriteString("  ")
	}
}

func formatStmts(b *strings.Builder, stmts []Stmt, level int) {
	for _, s := range stmts {
		formatStmt(b, s, level)
	}
}

func formatStmt(b *strings.Builder, s Stmt, level int) {
	indent(b, level)
	switch n := s.(type) {
	case *Assign:
		fmt.Fprintf(b, "%s = %s;\n", formatExpr(n.LHS), formatExpr(n.RHS))
	case *PushBack:
		fmt.Fprintf(b, "%s.push_back(%s);\n", formatExpr(n.List), formatExpr(n.Arg))
	case *Move:
		op := "move-p"
		if n.Bytes {
			op = "move-b"
		}
		fmt.Fprintf(b, "%s(%s, %s, %s);\n", op, formatExpr(n.Src), formatExpr(n.Dst), formatExpr(n.Count))
	case *If:
		fmt.Fprintf(b, "if (%s) {\n", formatExpr(n.Cond))
		formatStmts(b, n.Then, level+1)
		if len(n.Else) > 0 {
			indent(b, level)
			b.WriteString("} else {\n")
			formatStmts(b, n.Else, level+1)
		}
		indent(b, level)
		b.WriteString("}\n")
	case *For:
		fmt.Fprintf(b, "for (%s in %s..%s) {\n", n.Var, formatExpr(n.Lo), formatExpr(n.Hi))
		formatStmts(b, n.Body, level+1)
		indent(b, level)
		b.WriteString("}\n")
	case *Assert:
		fmt.Fprintf(b, "assert(%s);\n", formatExpr(n.Cond))
	case *Assume:
		fmt.Fprintf(b, "assume(%s);\n", formatExpr(n.Cond))
	case *Havoc:
		fmt.Fprintf(b, "havoc %s;\n", n.Target.Name)
	case *VarDecl:
		fmt.Fprintf(b, "%s\n", formatDecl(n))
	default:
		fmt.Fprintf(b, "/* unhandled %T */\n", s)
	}
}

func formatExpr(e Expr) string {
	switch n := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", n.Value)
	case *BoolLit:
		return fmt.Sprintf("%t", n.Value)
	case *Ident:
		return n.Name
	case *Binary:
		return fmt.Sprintf("(%s %v %s)", formatExpr(n.X), n.Op, formatExpr(n.Y))
	case *Unary:
		return fmt.Sprintf("%v%s", n.Op, formatExpr(n.X))
	case *Index:
		return fmt.Sprintf("%s[%s]", formatExpr(n.X), formatExpr(n.Idx))
	case *Backlog:
		op := "backlog-p"
		if n.Bytes {
			op = "backlog-b"
		}
		return fmt.Sprintf("%s(%s)", op, formatExpr(n.Buf))
	case *Filter:
		return fmt.Sprintf("%s |> %s == %s", formatExpr(n.Buf), n.Field, formatExpr(n.Value))
	case *ListQuery:
		if n.Arg != nil {
			return fmt.Sprintf("%s.%v(%s)", formatExpr(n.List), n.Op, formatExpr(n.Arg))
		}
		return fmt.Sprintf("%s.%v()", formatExpr(n.List), n.Op)
	case *PopFront:
		return fmt.Sprintf("%s.pop_front()", formatExpr(n.List))
	}
	return fmt.Sprintf("/* unhandled %T */", e)
}

// Equal reports structural equality of two programs, ignoring positions.
// It is the check behind the parse/print round-trip property.
func Equal(a, b *Program) bool {
	return Format(a) == Format(b)
}
