package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTrace("t1")
	ctx := WithTrace(context.Background(), tr)

	ctx2, root := StartSpan(ctx, "job")
	ctx3, enc := StartSpan(ctx2, "encode")
	_, bb := StartSpan(ctx3, "bitblast")
	bb.SetAttrs(Int("clauses", 42))
	bb.End()
	enc.End()
	_, search := StartSpan(ctx2, "search")
	search.End()
	root.End()

	v := tr.Snapshot()
	if v.ID != "t1" || v.NumSpans != 4 {
		t.Fatalf("snapshot: %+v", v)
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != "job" {
		t.Fatalf("want one root span 'job', got %+v", v.Spans)
	}
	job := v.Spans[0]
	if len(job.Spans) != 2 || job.Spans[0].Name != "encode" || job.Spans[1].Name != "search" {
		t.Fatalf("job children: %+v", job.Spans)
	}
	if len(job.Spans[0].Spans) != 1 || job.Spans[0].Spans[0].Name != "bitblast" {
		t.Fatalf("encode children: %+v", job.Spans[0].Spans)
	}
	if got := job.Spans[0].Spans[0].Attrs["clauses"]; got != int64(42) {
		t.Errorf("bitblast attrs: %v", job.Spans[0].Spans[0].Attrs)
	}
	for _, s := range []*SpanView{job, job.Spans[0], job.Spans[1]} {
		if !s.Ended {
			t.Errorf("span %s not marked ended", s.Name)
		}
	}
	if !strings.Contains(v.Render(), "bitblast") {
		t.Errorf("render missing span:\n%s", v.Render())
	}
}

// TestNilSafety pins the zero-cost-when-disabled contract: every
// operation on a nil trace/span (including children of dropped spans)
// must be a silent no-op.
func TestNilSafety(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "x") // no trace attached
	if sp != nil {
		t.Fatal("StartSpan without a trace must return a nil span")
	}
	sp.SetAttrs(String("k", "v"))
	sp.End()
	sp.Child("y").End()
	var tr *Trace
	if tr.StartSpan(nil, "z") != nil {
		t.Fatal("nil trace must produce nil spans")
	}
	tr.Snapshot()
	tr.Durations()
	if FromContext(ctx) != nil || SpanFromContext(ctx) != nil {
		t.Fatal("empty context must carry no trace/span")
	}
}

// TestBoundedSpans pins the memory bound: past max, StartSpan drops (and
// counts) instead of growing.
func TestBoundedSpans(t *testing.T) {
	tr := NewTraceN("b", 3)
	for i := 0; i < 10; i++ {
		tr.StartSpan(nil, "s").End()
	}
	v := tr.Snapshot()
	if v.NumSpans != 3 || v.Dropped != 7 {
		t.Fatalf("bound not enforced: spans=%d dropped=%d", v.NumSpans, v.Dropped)
	}
	// A context StartSpan on a full trace keeps the previous current span.
	ctx := WithTrace(context.Background(), tr)
	ctx2, sp := StartSpan(ctx, "over")
	if sp != nil || SpanFromContext(ctx2) != nil {
		t.Fatal("span on a full trace must be nil")
	}
}

// TestConcurrentSpans exercises the portfolio pattern: N goroutines
// recording spans into one trace while another goroutine snapshots it.
// Run under -race in CI.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTraceN("c", 4096)
	root := tr.StartSpan(nil, "race")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
				tr.Durations()
			}
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := root.Child("config")
				sp.SetAttrs(Int("i", int64(i)))
				sp.End()
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	root.End()
	if d := tr.Durations()["config"]; d < 0 {
		t.Fatalf("negative aggregate duration %v", d)
	}
	if n := tr.Snapshot().NumSpans; n != 801 {
		t.Fatalf("span count %d, want 801", n)
	}
}

func TestDurations(t *testing.T) {
	tr := NewTrace("d")
	a := tr.StartSpan(nil, "stage")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := tr.StartSpan(nil, "stage")
	time.Sleep(2 * time.Millisecond)
	b.End()
	tr.StartSpan(nil, "open") // never ended: excluded
	d := tr.Durations()
	if d["stage"] < 4*time.Millisecond {
		t.Errorf("stage duration %v, want >= 4ms", d["stage"])
	}
	if _, ok := d["open"]; ok {
		t.Error("unended span must not contribute a duration")
	}
}
