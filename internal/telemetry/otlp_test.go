package telemetry

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// otlpTestView is a fully deterministic trace snapshot: fixed start
// time, fixed span offsets/durations, one attribute of every type the
// tracer's constructors produce, one in-flight span.
func otlpTestView() View {
	return View{
		ID:        "j00000001",
		StartedAt: time.Unix(1754000000, 0).UTC(),
		NumSpans:  3,
		Spans: []*SpanView{
			{
				ID: 1, Name: "job", StartUS: 0, DurUS: 5000, Ended: true,
				Attrs: map[string]any{
					"kind":   "verify",
					"t":      int64(6),
					"cached": false,
					"ratio":  0.5,
				},
				Spans: []*SpanView{
					{ID: 2, Parent: 1, Name: "parse", StartUS: 10, DurUS: 200, Ended: true},
					{ID: 3, Parent: 1, Name: "search", StartUS: 300, DurUS: 4000, Ended: false},
				},
			},
		},
	}
}

// TestOTLPGolden pins the full wire shape byte-for-byte: id formats,
// 64-bit-ints-as-strings, tagged-union attribute values, nesting
// flattened with parentSpanId. Regenerate with -update-golden after a
// deliberate format change.
func TestOTLPGolden(t *testing.T) {
	rs := OTLPFromView(otlpTestView(),
		String("service.name", "buffy-serve"), String("service.version", "0.6.0-dev"))
	got, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "otlp_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("OTLP JSON drifted from golden.\n got: %s\nwant: %s", got, want)
	}
}

func TestOTLPIDFormats(t *testing.T) {
	rs := OTLPFromView(otlpTestView())
	spans := rs.ScopeSpans[0].Spans
	if len(spans) != 3 {
		t.Fatalf("want 3 flattened spans, got %d", len(spans))
	}
	traceIDRe := regexp.MustCompile(`^[0-9a-f]{32}$`)
	spanIDRe := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, sp := range spans {
		if !traceIDRe.MatchString(sp.TraceID) {
			t.Errorf("span %s: traceId %q not 32 lowercase hex chars", sp.Name, sp.TraceID)
		}
		if !spanIDRe.MatchString(sp.SpanID) {
			t.Errorf("span %s: spanId %q not 16 hex chars", sp.Name, sp.SpanID)
		}
		if sp.TraceID != spans[0].TraceID {
			t.Errorf("span %s: traceId differs within one trace", sp.Name)
		}
		if sp.SpanID == "0000000000000000" {
			t.Errorf("span %s: all-zero span id is invalid OTLP", sp.Name)
		}
	}
	// Deterministic: same snapshot, same ids; different start, new trace.
	v := otlpTestView()
	if again := OTLPFromView(v); again.ScopeSpans[0].Spans[0].TraceID != spans[0].TraceID {
		t.Error("trace id not deterministic for identical snapshots")
	}
	v.StartedAt = v.StartedAt.Add(time.Second)
	if moved := OTLPFromView(v); moved.ScopeSpans[0].Spans[0].TraceID == spans[0].TraceID {
		t.Error("trace id ignores the start time; restarts would collide")
	}
}

func TestOTLPParentage(t *testing.T) {
	spans := OTLPFromView(otlpTestView()).ScopeSpans[0].Spans
	byName := map[string]OTLPSpan{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if root := byName["job"]; root.ParentSpanID != "" {
		t.Errorf("root span has parentSpanId %q, want none", root.ParentSpanID)
	}
	for _, child := range []string{"parse", "search"} {
		if byName[child].ParentSpanID != byName["job"].SpanID {
			t.Errorf("%s parentSpanId = %q, want job's %q",
				child, byName[child].ParentSpanID, byName["job"].SpanID)
		}
	}
	if byName["job"].Kind != 1 {
		t.Errorf("kind = %d, want 1 (SPAN_KIND_INTERNAL)", byName["job"].Kind)
	}
}

func TestOTLPAttributeTyping(t *testing.T) {
	spans := OTLPFromView(otlpTestView()).ScopeSpans[0].Spans
	attrs := map[string]OTLPValue{}
	var searchAttrs []OTLPKeyValue
	for _, sp := range spans {
		if sp.Name == "job" {
			for _, kv := range sp.Attributes {
				attrs[kv.Key] = kv.Value
			}
		}
		if sp.Name == "search" {
			searchAttrs = sp.Attributes
		}
	}
	if v := attrs["kind"]; v.StringValue == nil || *v.StringValue != "verify" {
		t.Errorf("string attr mapped to %+v", v)
	}
	if v := attrs["t"]; v.IntValue == nil || *v.IntValue != "6" {
		t.Errorf("int64 attr must be a JSON string intValue, got %+v", v)
	}
	if v := attrs["cached"]; v.BoolValue == nil || *v.BoolValue {
		t.Errorf("bool attr mapped to %+v", v)
	}
	if v := attrs["ratio"]; v.DoubleValue == nil || *v.DoubleValue != 0.5 {
		t.Errorf("float attr mapped to %+v", v)
	}
	if v := attrs["buffy.trace_id"]; v.StringValue == nil || *v.StringValue != "j00000001" {
		t.Errorf("every span must carry the job id, got %+v", v)
	}
	// The unended search span carries the in-flight marker.
	found := false
	for _, kv := range searchAttrs {
		if kv.Key == "buffy.in_flight" && kv.Value.BoolValue != nil && *kv.Value.BoolValue {
			found = true
		}
	}
	if !found {
		t.Error("unended span missing buffy.in_flight marker")
	}
}

func TestOTLPDroppedSpansResourceAttr(t *testing.T) {
	v := otlpTestView()
	v.Dropped = 7
	rs := OTLPFromView(v, String("service.name", "buffy-serve"))
	found := false
	for _, kv := range rs.Resource.Attributes {
		if kv.Key == "buffy.dropped_spans" {
			found = true
			if kv.Value.IntValue == nil || *kv.Value.IntValue != "7" {
				t.Errorf("dropped_spans = %+v, want intValue \"7\"", kv.Value)
			}
		}
	}
	if !found {
		t.Error("truncated trace exports without the buffy.dropped_spans resource attribute")
	}
	if rs2 := OTLPFromView(otlpTestView()); len(rs2.Resource.Attributes) != 0 {
		t.Errorf("untruncated trace grew resource attrs: %+v", rs2.Resource.Attributes)
	}
}

// TestOTLPTimestamps pins the ns arithmetic: span start = trace start +
// StartUS, end = start + DurUS.
func TestOTLPTimestamps(t *testing.T) {
	spans := OTLPFromView(otlpTestView()).ScopeSpans[0].Spans
	base := time.Unix(1754000000, 0).UTC().UnixNano()
	for _, sp := range spans {
		if sp.Name != "parse" {
			continue
		}
		wantStart := base + 10*1000
		wantEnd := wantStart + 200*1000
		if sp.StartTimeUnixNano != jsonInt(wantStart) || sp.EndTimeUnixNano != jsonInt(wantEnd) {
			t.Errorf("parse start/end = %s/%s, want %d/%d",
				sp.StartTimeUnixNano, sp.EndTimeUnixNano, wantStart, wantEnd)
		}
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
