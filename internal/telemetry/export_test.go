package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// collectStub is an httptest OTLP collector that decodes every push.
type collectStub struct {
	mu       chan struct{}
	requests [][]OTLPResourceSpans
}

func newCollectStub(t *testing.T, status int) (*collectStub, *httptest.Server) {
	t.Helper()
	c := &collectStub{mu: make(chan struct{}, 1)}
	c.mu <- struct{}{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req OTLPExportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("collector received undecodable body: %v", err)
		}
		<-c.mu
		c.requests = append(c.requests, req.ResourceSpans)
		c.mu <- struct{}{}
		w.WriteHeader(status)
	}))
	t.Cleanup(srv.Close)
	return c, srv
}

func (c *collectStub) all() []OTLPResourceSpans {
	<-c.mu
	defer func() { c.mu <- struct{}{} }()
	var out []OTLPResourceSpans
	for _, rss := range c.requests {
		out = append(out, rss...)
	}
	return out
}

// TestExporterPushesToCollector drives a snapshot through the full
// path: Enqueue -> batch -> OTLP conversion -> HTTP push, and asserts
// the stub collector received well-formed ResourceSpans.
func TestExporterPushesToCollector(t *testing.T) {
	stub, srv := newCollectStub(t, http.StatusOK)
	e, err := NewExporter(ExportOptions{
		Endpoint: srv.URL,
		Resource: []Attr{String("service.name", "buffy-serve")},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Enqueue(otlpTestView(), String("buffy.job_kind", "verify"))
	e.Close()

	rss := stub.all()
	if len(rss) != 1 {
		t.Fatalf("collector received %d ResourceSpans, want 1", len(rss))
	}
	keys := map[string]bool{}
	for _, kv := range rss[0].Resource.Attributes {
		keys[kv.Key] = true
	}
	if !keys["service.name"] || !keys["buffy.job_kind"] {
		t.Errorf("resource attrs missing service.name/buffy.job_kind: %+v", rss[0].Resource.Attributes)
	}
	spans := rss[0].ScopeSpans[0].Spans
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	if len(spans[0].TraceID) != 32 || len(spans[0].SpanID) != 16 {
		t.Errorf("malformed ids: trace %q span %q", spans[0].TraceID, spans[0].SpanID)
	}
	st := e.Stats()
	if st.Traces != 1 || st.Pushed != 1 || st.Dropped != 0 || st.PushFailed != 0 {
		t.Errorf("stats = %+v, want 1 trace pushed cleanly", st)
	}
}

// TestExporterEndpointDownNeverBlocks is the core non-interference
// guarantee: with the collector unreachable, Enqueue stays O(1) — the
// queue fills, overflow is dropped and counted, and the caller never
// waits on the network.
func TestExporterEndpointDownNeverBlocks(t *testing.T) {
	// A hijack-then-hang server would still accept connects; a closed
	// port refuses instantly, but retry sleeps happen on the worker. The
	// caller-visible property is the same either way: Enqueue returns
	// immediately regardless of what the worker is stuck on.
	e, err := NewExporter(ExportOptions{
		Endpoint:     "http://127.0.0.1:1/v1/traces", // reserved port: refused
		QueueSize:    4,
		Retries:      2,
		RetryBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 200
	for i := 0; i < n; i++ {
		e.Enqueue(otlpTestView())
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("200 Enqueues with the collector down took %v; must be non-blocking", el)
	}
	st := e.Stats()
	if st.Traces+st.Dropped != n {
		t.Errorf("accounting leak: traces %d + dropped %d != %d", st.Traces, st.Dropped, n)
	}
	if st.Dropped == 0 {
		t.Errorf("queue of 4 accepted all %d snapshots; backpressure should drop", n)
	}
	e.Close()
	if st := e.Stats(); st.PushFailed == 0 {
		t.Errorf("no push recorded as failed with the collector down: %+v", st)
	}
}

// TestExporter4xxIsPermanent pins the failure taxonomy: a 4xx response
// means the batch itself is bad, so it is dropped without retries.
func TestExporter4xxIsPermanent(t *testing.T) {
	_, srv := newCollectStub(t, http.StatusBadRequest)
	e, err := NewExporter(ExportOptions{Endpoint: srv.URL, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.Enqueue(otlpTestView())
	e.Close()
	st := e.Stats()
	if st.PushFailed != 1 || st.PushRetries != 0 || st.Pushed != 0 {
		t.Errorf("4xx: stats %+v, want 1 failed / 0 retries", st)
	}
}

// TestExporter5xxRetries pins the other half: 5xx is transient and
// retried with backoff before the batch is abandoned.
func TestExporter5xxRetries(t *testing.T) {
	_, srv := newCollectStub(t, http.StatusServiceUnavailable)
	e, err := NewExporter(ExportOptions{
		Endpoint: srv.URL, Retries: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Enqueue(otlpTestView())
	e.Close()
	st := e.Stats()
	if st.PushRetries != 2 || st.PushFailed != 1 {
		t.Errorf("5xx: stats %+v, want 2 retries then 1 failure", st)
	}
}

// TestExporterSpool checks the -trace-dir path: one NDJSON line per
// ResourceSpans, each independently decodable.
func TestExporterSpool(t *testing.T) {
	dir := t.TempDir()
	e, err := NewExporter(ExportOptions{Dir: dir, Resource: []Attr{String("service.name", "buffy-serve")}})
	if err != nil {
		t.Fatal(err)
	}
	e.Enqueue(otlpTestView())
	e.Enqueue(otlpTestView())
	e.Close()

	files, err := filepath.Glob(filepath.Join(dir, "traces-*.ndjson"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spool files = %v (err %v), want exactly one", files, err)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rs OTLPResourceSpans
		if err := json.Unmarshal(sc.Bytes(), &rs); err != nil {
			t.Fatalf("spool line %d not valid ResourceSpans JSON: %v", lines+1, err)
		}
		if len(rs.ScopeSpans) == 0 || len(rs.ScopeSpans[0].Spans) == 0 {
			t.Fatalf("spool line %d has no spans", lines+1)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("spool holds %d lines, want 2", lines)
	}
	if st := e.Stats(); st.Spooled != 2 || st.SpoolErrors != 0 {
		t.Errorf("spool stats %+v, want 2 spooled cleanly", st)
	}
}

// TestExporterValidation pins the fail-fast contract: bad endpoints and
// unusable spool dirs are construction errors, not silent runtime drops.
func TestExporterValidation(t *testing.T) {
	for _, bad := range []string{
		"localhost:4318/v1/traces", // no scheme
		"ftp://collector/v1/traces",
		"http://",
		"://nope",
	} {
		if err := ValidateEndpoint(bad); err == nil {
			t.Errorf("ValidateEndpoint(%q) accepted a bad URL", bad)
		}
	}
	if err := ValidateEndpoint("http://localhost:4318/v1/traces"); err != nil {
		t.Errorf("valid endpoint rejected: %v", err)
	}
	if _, err := NewExporter(ExportOptions{}); err == nil {
		t.Error("exporter with no targets must fail construction")
	}
	if _, err := NewExporter(ExportOptions{Endpoint: "ftp://x"}); err == nil {
		t.Error("bad endpoint scheme must fail construction")
	}
	// A path through a regular file cannot become a directory — this
	// fails even when running as root, unlike permission-based checks.
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExporter(ExportOptions{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Error("unusable spool dir must fail construction")
	}
	if !strings.Contains(ValidateEndpoint("ftp://x").Error(), "scheme") {
		t.Error("scheme error should name the problem")
	}
}

// TestExporterNilSafe: an unconfigured *Exporter is a no-op, so callers
// hold one without guarding.
func TestExporterNilSafe(t *testing.T) {
	var e *Exporter
	e.Enqueue(otlpTestView())
	e.Close()
	if st := e.Stats(); st != (ExportStats{}) {
		t.Errorf("nil exporter stats %+v", st)
	}
}
