// Package telemetry is a dependency-free span tracer for the analysis
// pipeline. A Trace is a bounded collection of spans — named, timed
// regions with typed attributes, linked parent→child — threaded through
// the stack via context.Context. Every layer of the pipeline (parse, IR
// compile, bit-blast, CDCL search, fperf iterations, portfolio configs)
// opens a span around its work, so a slow analysis decomposes into a
// per-stage cost breakdown instead of one opaque wall-clock number.
//
// The design constraints, in order:
//
//   - Zero cost when disabled: every operation is nil-safe, so code can
//     instrument unconditionally (`_, sp := telemetry.StartSpan(ctx, ...)`;
//     `defer sp.End()`) and pay only a context lookup when no trace is
//     attached.
//   - Safe under concurrency: portfolio races record spans from N
//     goroutines into one trace; the trace serializes appends with a
//     mutex and each span guards its own mutable fields.
//   - Bounded: a trace holds at most its configured span count. Past the
//     limit new spans are dropped (counted, not silently lost) so a
//     pathological search with tens of thousands of restarts cannot
//     balloon a request's memory.
package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultMaxSpans bounds a trace's span count when NewTrace is used.
const DefaultMaxSpans = 512

// Trace is one analysis run's collection of spans. Create with NewTrace,
// attach to a context with WithTrace, and read back with Snapshot. All
// methods are safe for concurrent use and nil-safe.
type Trace struct {
	id    string
	start time.Time
	max   int

	mu      sync.Mutex
	spans   []*Span
	nextID  uint64
	dropped int
}

// NewTrace returns an empty trace bounded at DefaultMaxSpans spans.
func NewTrace(id string) *Trace { return NewTraceN(id, DefaultMaxSpans) }

// NewTraceN returns an empty trace holding at most max spans (max <= 0
// falls back to DefaultMaxSpans).
func NewTraceN(id string, max int) *Trace {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Trace{id: id, start: time.Now(), max: max}
}

// ID returns the trace's identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a span under parent (nil parent = a root span). It
// returns nil — a valid no-op span — when the trace is nil or full.
func (t *Trace) StartSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	t.nextID++
	s := &Span{tr: t, id: t.nextID, name: name, start: time.Now()}
	if parent != nil {
		s.parent = parent.id
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one named, timed region of a trace. A nil *Span is a valid
// no-op: every method checks the receiver, so instrumentation sites never
// need to guard on whether tracing is enabled.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	dur   time.Duration
	ended bool
	attrs []Attr
}

// Child opens a sub-span of s. On a nil receiver it returns nil (still a
// valid no-op span), so call chains degrade gracefully.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpan(s, name)
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Attr is one typed span attribute.
type Attr struct {
	Key   string
	Value any
}

// String / Int / Bool / Float build typed attributes.
func String(k, v string) Attr        { return Attr{k, v} }
func Int(k string, v int64) Attr     { return Attr{k, v} }
func Bool(k string, v bool) Attr     { return Attr{k, v} }
func Float(k string, v float64) Attr { return Attr{k, v} }

// SetAttrs appends attributes to the span. Setting attributes on an
// already-ended span is allowed (the portfolio annotates the winner after
// the race settles).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// --- context plumbing ---

type traceKey struct{}
type spanKey struct{}

// WithTrace attaches a trace to the context. Spans subsequently started
// through StartSpan on that context are recorded into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace (nil when none is attached).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanFromContext returns the context's current span (nil when none).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name under the context's current span (a
// root span when there is none) and returns a derived context carrying
// the new span as current. With no trace attached it returns (ctx, nil) —
// the nil span is a valid no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	s := t.StartSpan(SpanFromContext(ctx), name)
	if s == nil {
		return ctx, nil // trace full: drop, keep the previous current span
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// --- snapshots ---

// SpanView is a span's immutable wire representation. Children are
// nested, in start order.
type SpanView struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"` // offset from trace start
	DurUS   int64          `json:"duration_us"`
	Ended   bool           `json:"ended"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Spans   []*SpanView    `json:"spans,omitempty"`
}

// View is a whole trace's wire representation: the span tree plus
// bookkeeping.
type View struct {
	ID        string      `json:"id"`
	StartedAt time.Time   `json:"started_at"`
	NumSpans  int         `json:"num_spans"`
	Dropped   int         `json:"dropped_spans,omitempty"`
	Spans     []*SpanView `json:"spans"`
}

// Snapshot renders the trace's current state as a span tree. In-flight
// spans appear with Ended=false and their duration so far. Safe to call
// while spans are still being recorded (the live-trace endpoint does).
func (t *Trace) Snapshot() View {
	if t == nil {
		return View{}
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	v := View{ID: t.id, StartedAt: t.start, NumSpans: len(spans), Dropped: t.dropped}
	t.mu.Unlock()

	views := make(map[uint64]*SpanView, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		sv := &SpanView{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartUS: s.start.Sub(t.start).Microseconds(),
			Ended:   s.ended,
		}
		if s.ended {
			sv.DurUS = s.dur.Microseconds()
		} else {
			sv.DurUS = time.Since(s.start).Microseconds()
		}
		if len(s.attrs) > 0 {
			sv.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				sv.Attrs[a.Key] = a.Value
			}
		}
		s.mu.Unlock()
		views[sv.ID] = sv
	}
	// Spans were appended in start order, so children always follow their
	// parent and one pass builds the tree.
	for _, s := range spans {
		sv := views[s.id]
		if p, ok := views[sv.Parent]; ok && sv.Parent != 0 {
			p.Spans = append(p.Spans, sv)
		} else {
			v.Spans = append(v.Spans, sv)
		}
	}
	return v
}

// Durations sums the duration of every *ended* span by name. Callers use
// it to derive per-stage cost breakdowns (stage histograms, the -exp
// stages report); in-flight spans are excluded so sums are stable.
func (t *Trace) Durations() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	out := make(map[string]time.Duration)
	for _, s := range spans {
		s.mu.Lock()
		if s.ended {
			out[s.name] += s.dur
		}
		s.mu.Unlock()
	}
	return out
}

// Render pretty-prints the span tree with durations and attributes, for
// CLI output (buffyc -trace).
func (v View) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans", v.ID, v.NumSpans)
	if v.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", v.Dropped)
	}
	b.WriteString(")\n")
	var walk func(spans []*SpanView, depth int)
	walk = func(spans []*SpanView, depth int) {
		for _, s := range spans {
			fmt.Fprintf(&b, "%s%-*s %9.3fms", strings.Repeat("  ", depth+1), 24-2*depth, s.Name,
				float64(s.DurUS)/1e3)
			if len(s.Attrs) > 0 {
				keys := make([]string, 0, len(s.Attrs))
				for k := range s.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, " %s=%v", k, s.Attrs[k])
				}
			}
			if !s.Ended {
				b.WriteString(" (running)")
			}
			b.WriteString("\n")
			walk(s.Spans, depth+1)
		}
	}
	walk(v.Spans, 0)
	return b.String()
}
