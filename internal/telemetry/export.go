package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Exporter ships finished trace snapshots out of the process as
// OTLP-shaped JSON: batched HTTP pushes to a collector endpoint
// (-otlp-endpoint) and/or NDJSON spool files in a directory (-trace-dir).
//
// The contract that matters: Enqueue NEVER blocks and NEVER fails the
// caller. The analysis path hands a finished job's trace to a bounded
// queue and moves on; a single background worker batches, converts and
// ships. When the queue is full (collector down, disk slow) snapshots
// are dropped and counted — the same write-behind discipline as the
// durable store's storePutAsync. Push failures follow the service's
// failure taxonomy: transport errors and 5xx are transient (retried with
// exponential backoff), 4xx are permanent (the batch is dropped —
// retrying a malformed request cannot heal it).
type Exporter struct {
	opts  ExportOptions
	queue chan exportItem
	spool *os.File

	traces      atomic.Int64 // snapshots accepted into the queue
	dropped     atomic.Int64 // snapshots dropped: queue full
	batches     atomic.Int64 // batches shipped (pushed and/or spooled)
	pushed      atomic.Int64 // successful HTTP pushes
	pushRetries atomic.Int64 // retried HTTP attempts
	pushFailed  atomic.Int64 // batches abandoned after retries / on 4xx
	spooled     atomic.Int64 // ResourceSpans lines written to the spool
	spoolErrors atomic.Int64

	wg        sync.WaitGroup
	closeOnce sync.Once
}

type exportItem struct {
	view     View
	resource []Attr
}

// ExportOptions configures an Exporter. At least one of Endpoint and Dir
// must be set.
type ExportOptions struct {
	// Endpoint is the OTLP/HTTP traces URL, e.g.
	// http://localhost:4318/v1/traces. Validated at construction: a bad
	// URL must fail startup, not drop every batch at runtime.
	Endpoint string
	// Dir, when set, receives NDJSON spool files (one ResourceSpans JSON
	// per line) named traces-<unixnano>.ndjson. Validated writable at
	// construction.
	Dir string
	// Resource attributes stamped on every export (service.name, ...).
	Resource []Attr
	// BatchSize caps snapshots per push (default 16).
	BatchSize int
	// FlushInterval bounds how long a non-full batch waits (default 2s).
	FlushInterval time.Duration
	// QueueSize bounds the number of snapshots awaiting export
	// (default 256); overflow is dropped and counted.
	QueueSize int
	// Retries is how many times a transiently-failed push is retried
	// (default 3), with exponential backoff starting at RetryBackoff
	// (default 250ms).
	Retries      int
	RetryBackoff time.Duration
	// Timeout bounds one HTTP push attempt (default 5s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// OnError, when set, observes shipping failures (for logging).
	// Called from the worker goroutine.
	OnError func(err error)
}

func (o ExportOptions) withDefaults() ExportOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Second
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 256
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	return o
}

// ExportStats is a point-in-time snapshot of exporter counters,
// JSON-shaped for the /metrics endpoint.
type ExportStats struct {
	Traces      int64 `json:"traces"`
	Dropped     int64 `json:"dropped"`
	Batches     int64 `json:"batches"`
	Pushed      int64 `json:"pushed"`
	PushRetries int64 `json:"push_retries"`
	PushFailed  int64 `json:"push_failed"`
	Spooled     int64 `json:"spooled"`
	SpoolErrors int64 `json:"spool_errors"`
}

// ValidateEndpoint checks that s is a usable OTLP/HTTP URL. Exposed so
// flag validation can fail fast with the same rule the exporter applies.
func ValidateEndpoint(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return fmt.Errorf("otlp endpoint %q: %w", s, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("otlp endpoint %q: scheme must be http or https, got %q", s, u.Scheme)
	}
	if u.Host == "" {
		return fmt.Errorf("otlp endpoint %q: missing host", s)
	}
	return nil
}

// NewExporter validates the targets and starts the background worker.
// Construction fails (rather than silently dropping every batch later)
// when the endpoint URL is malformed or the spool directory cannot be
// created/written — callers treat that like any other bad flag and exit.
func NewExporter(opts ExportOptions) (*Exporter, error) {
	opts = opts.withDefaults()
	if opts.Endpoint == "" && opts.Dir == "" {
		return nil, errors.New("telemetry: exporter needs an endpoint or a spool dir")
	}
	if opts.Endpoint != "" {
		if err := ValidateEndpoint(opts.Endpoint); err != nil {
			return nil, err
		}
	}
	e := &Exporter{opts: opts, queue: make(chan exportItem, opts.QueueSize)}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("trace dir %q: %w", opts.Dir, err)
		}
		name := filepath.Join(opts.Dir, fmt.Sprintf("traces-%d.ndjson", time.Now().UnixNano()))
		f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("trace dir %q not writable: %w", opts.Dir, err)
		}
		e.spool = f
	}
	if e.opts.Client == nil {
		e.opts.Client = &http.Client{Timeout: opts.Timeout}
	}
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// Enqueue offers a trace snapshot for export. Non-blocking: a full
// queue drops the snapshot and counts it. Nil-safe so callers can hold
// an optional *Exporter without guarding.
func (e *Exporter) Enqueue(v View, resource ...Attr) {
	if e == nil {
		return
	}
	res := resource
	if len(e.opts.Resource) > 0 {
		res = append(append([]Attr(nil), e.opts.Resource...), resource...)
	}
	select {
	case e.queue <- exportItem{view: v, resource: res}:
		e.traces.Add(1)
	default:
		e.dropped.Add(1)
	}
}

// Stats snapshots the exporter's counters. Nil-safe.
func (e *Exporter) Stats() ExportStats {
	if e == nil {
		return ExportStats{}
	}
	return ExportStats{
		Traces:      e.traces.Load(),
		Dropped:     e.dropped.Load(),
		Batches:     e.batches.Load(),
		Pushed:      e.pushed.Load(),
		PushRetries: e.pushRetries.Load(),
		PushFailed:  e.pushFailed.Load(),
		Spooled:     e.spooled.Load(),
		SpoolErrors: e.spoolErrors.Load(),
	}
}

// Close stops accepting snapshots, ships what is queued, and closes the
// spool file. Idempotent and nil-safe.
func (e *Exporter) Close() {
	if e == nil {
		return
	}
	e.closeOnce.Do(func() {
		close(e.queue)
		e.wg.Wait()
		if e.spool != nil {
			e.spool.Close()
		}
	})
}

// run is the single shipping worker: gather up to BatchSize snapshots
// (or whatever arrived within FlushInterval), convert, spool, push.
func (e *Exporter) run() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.opts.FlushInterval)
	defer ticker.Stop()
	var batch []exportItem
	flush := func() {
		if len(batch) > 0 {
			e.ship(batch)
			batch = batch[:0]
		}
	}
	for {
		select {
		case it, ok := <-e.queue:
			if !ok {
				flush()
				return
			}
			batch = append(batch, it)
			if len(batch) >= e.opts.BatchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		}
	}
}

// ship converts one batch and sends it to every configured target.
func (e *Exporter) ship(batch []exportItem) {
	req := OTLPExportRequest{ResourceSpans: make([]OTLPResourceSpans, 0, len(batch))}
	for _, it := range batch {
		req.ResourceSpans = append(req.ResourceSpans, OTLPFromView(it.view, it.resource...))
	}
	e.batches.Add(1)
	if e.spool != nil {
		e.writeSpool(req.ResourceSpans)
	}
	if e.opts.Endpoint != "" {
		e.push(req)
	}
}

// writeSpool appends one NDJSON line per ResourceSpans.
func (e *Exporter) writeSpool(rss []OTLPResourceSpans) {
	var buf bytes.Buffer
	for _, rs := range rss {
		line, err := json.Marshal(rs)
		if err != nil {
			e.spoolErrors.Add(1)
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := e.spool.Write(buf.Bytes()); err != nil {
		e.spoolErrors.Add(1)
		e.reportErr(fmt.Errorf("trace spool write: %w", err))
		return
	}
	e.spooled.Add(int64(len(rss)))
}

// push POSTs the batch, retrying transient failures with exponential
// backoff. The worker sleeping here only delays later exports (and, at
// worst, fills the queue so snapshots drop) — it can never block a solve.
func (e *Exporter) push(req OTLPExportRequest) {
	body, err := json.Marshal(req)
	if err != nil {
		e.pushFailed.Add(1)
		return
	}
	backoff := e.opts.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := e.pushOnce(body)
		if err == nil {
			e.pushed.Add(1)
			return
		}
		var pe *permanentPushError
		if errors.As(err, &pe) || attempt >= e.opts.Retries {
			e.pushFailed.Add(1)
			e.reportErr(fmt.Errorf("otlp push failed: %w", err))
			return
		}
		e.pushRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// permanentPushError marks 4xx responses: retrying cannot heal them.
type permanentPushError struct{ status int }

func (e *permanentPushError) Error() string {
	return fmt.Sprintf("collector rejected batch: HTTP %d", e.status)
}

func (e *Exporter) pushOnce(body []byte) error {
	resp, err := e.opts.Client.Post(e.opts.Endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return &permanentPushError{status: resp.StatusCode}
	default:
		return fmt.Errorf("collector returned HTTP %d", resp.StatusCode)
	}
}

func (e *Exporter) reportErr(err error) {
	if e.opts.OnError != nil {
		e.opts.OnError(err)
	}
}
