package telemetry

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
)

// OTLP-shaped JSON for trace export, hand-rolled to the OTLP/HTTP JSON
// mapping (opentelemetry-proto trace v1) so collectors (Jaeger, Tempo,
// the otel-collector) ingest Buffy traces without this repo depending on
// the OpenTelemetry SDK. The mapping's sharp edges, honored here:
//
//   - trace ids are 16 bytes / 32 lowercase hex chars, span ids 8 bytes
//     / 16 hex chars (proto `bytes` fields are hex in the JSON mapping,
//     not base64, per the OTLP spec's special case);
//   - 64-bit integers (timestamps, intValue) are JSON *strings*;
//   - attribute values are tagged unions ({"stringValue": ...} etc).
//
// Buffy span ids are small sequential uint64s unique within one trace;
// they become OTLP span ids verbatim (big-endian). The OTLP trace id is
// derived deterministically from the job id and trace start time, so
// re-exporting the same trace is idempotent and tests are golden-stable.

// OTLPExportRequest is the body of an OTLP/HTTP traces POST
// (ExportTraceServiceRequest).
type OTLPExportRequest struct {
	ResourceSpans []OTLPResourceSpans `json:"resourceSpans"`
}

// OTLPResourceSpans groups one resource (the buffy-serve process) with
// the spans it produced.
type OTLPResourceSpans struct {
	Resource   OTLPResource     `json:"resource"`
	ScopeSpans []OTLPScopeSpans `json:"scopeSpans"`
}

// OTLPResource carries identifying attributes (service.name & co).
type OTLPResource struct {
	Attributes []OTLPKeyValue `json:"attributes,omitempty"`
}

// OTLPScopeSpans groups spans by instrumentation scope.
type OTLPScopeSpans struct {
	Scope OTLPScope  `json:"scope"`
	Spans []OTLPSpan `json:"spans"`
}

// OTLPScope names the instrumentation that produced the spans.
type OTLPScope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// OTLPSpan is one span in OTLP JSON form.
type OTLPSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"` // 1 = SPAN_KIND_INTERNAL
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []OTLPKeyValue `json:"attributes,omitempty"`
	Status            OTLPStatus     `json:"status"`
}

// OTLPStatus is the span status; code 0 (UNSET) throughout — Buffy
// records failure classes as attributes, not span status.
type OTLPStatus struct {
	Code int `json:"code,omitempty"`
}

// OTLPKeyValue is one attribute.
type OTLPKeyValue struct {
	Key   string    `json:"key"`
	Value OTLPValue `json:"value"`
}

// OTLPValue is the OTLP AnyValue tagged union; exactly one field is set.
type OTLPValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // 64-bit: JSON string
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

func otlpString(v string) OTLPValue { return OTLPValue{StringValue: &v} }
func otlpBool(v bool) OTLPValue     { return OTLPValue{BoolValue: &v} }
func otlpDouble(v float64) OTLPValue {
	return OTLPValue{DoubleValue: &v}
}
func otlpInt(v int64) OTLPValue {
	s := strconv.FormatInt(v, 10)
	return OTLPValue{IntValue: &s}
}

// otlpValue maps the tracer's loosely-typed attribute values onto the
// tagged union. The tracer's constructors only produce string / int64 /
// bool / float64; anything else is stringified defensively.
func otlpValue(v any) OTLPValue {
	switch x := v.(type) {
	case string:
		return otlpString(x)
	case int64:
		return otlpInt(x)
	case int:
		return otlpInt(int64(x))
	case bool:
		return otlpBool(x)
	case float64:
		return otlpDouble(x)
	default:
		return otlpString(fmt.Sprint(x))
	}
}

// OTLPTraceID derives the 32-hex-char OTLP trace id for a trace: the
// first 16 bytes of sha256(id ":" startUnixNano). Deterministic so the
// same job snapshot always exports under the same id, and collision-safe
// across jobs because job ids are unique per process and the start time
// disambiguates across restarts.
func OTLPTraceID(id string, startUnixNano int64) string {
	h := sha256.New()
	h.Write([]byte(id))
	h.Write([]byte(":"))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(startUnixNano))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// otlpSpanID renders a tracer span id (sequential uint64, never zero for
// a recorded span) as the 16-hex-char OTLP span id.
func otlpSpanID(id uint64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], id)
	return hex.EncodeToString(buf[:])
}

// OTLPFromView converts one trace snapshot into a ResourceSpans. The
// resource attributes identify the exporting process (service.name,
// service.version, ...); the trace's own id lands in the buffy.trace_id
// span attribute of every span so collectors can search by job id.
// In-flight spans (Ended=false) are exported with their duration so far
// and a buffy.in_flight marker.
func OTLPFromView(v View, resource ...Attr) OTLPResourceSpans {
	traceID := OTLPTraceID(v.ID, v.StartedAt.UnixNano())
	startNano := v.StartedAt.UnixNano()

	var spans []OTLPSpan
	var walk func(svs []*SpanView, parent uint64)
	walk = func(svs []*SpanView, parent uint64) {
		for _, sv := range svs {
			start := startNano + sv.StartUS*1000
			end := start + sv.DurUS*1000
			sp := OTLPSpan{
				TraceID:           traceID,
				SpanID:            otlpSpanID(sv.ID),
				Name:              sv.Name,
				Kind:              1, // SPAN_KIND_INTERNAL
				StartTimeUnixNano: strconv.FormatInt(start, 10),
				EndTimeUnixNano:   strconv.FormatInt(end, 10),
			}
			if parent != 0 {
				sp.ParentSpanID = otlpSpanID(parent)
			}
			sp.Attributes = append(sp.Attributes, OTLPKeyValue{Key: "buffy.trace_id", Value: otlpString(v.ID)})
			if !sv.Ended {
				sp.Attributes = append(sp.Attributes, OTLPKeyValue{Key: "buffy.in_flight", Value: otlpBool(true)})
			}
			for _, k := range sortedAttrKeys(sv.Attrs) {
				sp.Attributes = append(sp.Attributes, OTLPKeyValue{Key: k, Value: otlpValue(sv.Attrs[k])})
			}
			spans = append(spans, sp)
			walk(sv.Spans, sv.ID)
		}
	}
	walk(v.Spans, 0)

	rs := OTLPResourceSpans{
		ScopeSpans: []OTLPScopeSpans{{
			Scope: OTLPScope{Name: "buffy/internal/telemetry"},
			Spans: spans,
		}},
	}
	for _, a := range resource {
		rs.Resource.Attributes = append(rs.Resource.Attributes, OTLPKeyValue{Key: a.Key, Value: otlpValue(a.Value)})
	}
	if v.Dropped > 0 {
		rs.Resource.Attributes = append(rs.Resource.Attributes,
			OTLPKeyValue{Key: "buffy.dropped_spans", Value: otlpInt(int64(v.Dropped))})
	}
	return rs
}

// sortedAttrKeys gives attribute maps a stable export order.
func sortedAttrKeys(m map[string]any) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort; attr maps are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
