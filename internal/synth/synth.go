// Package synth implements invariant synthesis in the style §5 lays out:
// a grammar of "suitably expressive predicates on buffers" generates
// candidate interface specifications, and the Houdini algorithm [Flanagan,
// Joshi, Leino 2001] — guess-and-check with a verifier in the loop —
// iteratively prunes the candidates down to their largest inductive
// subset. The surviving invariants can be handed to the transition-system
// back-end as auxiliary lemmas, which is exactly how the paper's CCAC case
// study benefits from its path server's user-provided conditions (§6.2).
package synth

import (
	"fmt"
	"time"

	"buffy/internal/backend/ts"
	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/lang/ast"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// Candidate is a named candidate invariant.
type Candidate struct {
	Name string
	Prop ts.Prop
}

// GrammarOptions bounds candidate generation.
type GrammarOptions struct {
	// Consts are the constants compared against (default {0, 1, Cap}).
	Consts []int64
	// BufferCap mirrors ir.Options.BufferCap for the cap constant.
	BufferCap int
}

// Grammar generates candidate invariants over the program's state: bounds
// on buffer backlogs and drop counters, bounds on integer globals, and
// list-size bounds. The probe machine supplies the state shape.
func Grammar(info *typecheck.Info, probe *ir.Machine, opts GrammarOptions) []Candidate {
	if opts.BufferCap <= 0 {
		opts.BufferCap = 8
	}
	consts := opts.Consts
	if len(consts) == 0 {
		consts = []int64{0, 1, int64(opts.BufferCap)}
	}
	var out []Candidate
	for _, name := range probe.BufferNames() {
		name := name
		out = append(out, Candidate{
			Name: fmt.Sprintf("dropped(%s) == 0", name),
			Prop: func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
				b := ctx.B
				return b.Eq(m.Buffers()[name].Dropped(), b.IntConst(0))
			},
		})
		for _, k := range consts {
			k := k
			out = append(out, Candidate{
				Name: fmt.Sprintf("backlog(%s) <= %d", name, k),
				Prop: func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
					b := ctx.B
					return b.Le(m.Buffers()[name].BacklogP(ctx), b.IntConst(k))
				},
			})
		}
	}
	for _, d := range info.Globals {
		if d.Type.Kind != ast.TInt || d.Type.IsArray() {
			continue
		}
		vname := d.Name
		out = append(out, Candidate{
			Name: fmt.Sprintf("%s >= 0", vname),
			Prop: func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
				b := ctx.B
				return b.Le(b.IntConst(0), m.Var(vname))
			},
		})
		for _, k := range consts {
			k := k
			out = append(out, Candidate{
				Name: fmt.Sprintf("%s <= %d", vname, k),
				Prop: func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
					b := ctx.B
					return b.Le(m.Var(vname), b.IntConst(k))
				},
			})
		}
	}
	for _, lname := range probe.ListNames() {
		lname := lname
		out = append(out, Candidate{
			Name: fmt.Sprintf("size(%s) >= 0", lname),
			Prop: func(m *ir.Machine, ctx *buffer.Ctx) *term.Term {
				b := ctx.B
				_, size := m.List(lname)
				return b.Le(b.IntConst(0), size)
			},
		})
	}
	return out
}

// HoudiniResult reports the pruning run.
type HoudiniResult struct {
	// Survivors is the largest subset of the candidates that is mutually
	// inductive and true initially.
	Survivors []Candidate
	// Dropped lists eliminated candidates in elimination order.
	Dropped []Candidate
	// Rounds is the number of fixpoint iterations.
	Rounds   int
	Checks   int
	Duration time.Duration
}

// Names renders candidate names.
func Names(cs []Candidate) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

// Houdini prunes candidates to their largest mutually-inductive subset:
// first dropping candidates false in the initial state, then repeatedly
// dropping any candidate not preserved by one transition under the
// assumption of all remaining candidates, until a fixpoint.
func Houdini(info *typecheck.Info, opts ts.Options, cands []Candidate) (*HoudiniResult, error) {
	start := time.Now()
	res := &HoudiniResult{}
	if opts.IR.T == 0 {
		opts.IR.T = 1
	}

	// ---- Initial-state filter (concrete evaluation: the initial state is
	// the empty state, so candidate terms fold to constants).
	{
		sv := solver.New(opts.Solver)
		b := sv.Builder()
		m, err := ir.NewMachine(info, b, opts.IR)
		if err != nil {
			return nil, err
		}
		ctx := &buffer.Ctx{B: b, Assume: func(*term.Term) {}, Prefix: "houdini0"}
		var keep []Candidate
		for _, c := range cands {
			t := c.Prop(m, ctx)
			if t == b.False() {
				res.Dropped = append(res.Dropped, c)
				continue
			}
			if t != b.True() {
				// Not constant in the initial state (should not happen for
				// the empty state); check with the solver.
				res.Checks++
				if sv.CheckAssuming(b.Not(t)) != solver.Unsat {
					res.Dropped = append(res.Dropped, c)
					continue
				}
			}
			keep = append(keep, c)
		}
		cands = keep
	}

	// ---- Inductive fixpoint over one shared symbolic transition.
	sv := solver.New(opts.Solver)
	b := sv.Builder()
	m, err := ir.NewMachine(info, b, opts.IR)
	if err != nil {
		return nil, err
	}
	ctx := &buffer.Ctx{B: b, Assume: func(*term.Term) {}, Prefix: "houdini"}
	ts.Symbolize(m, b, "hd")
	pre := make([]*term.Term, len(cands))
	for i, c := range cands {
		pre[i] = c.Prop(m, ctx)
	}
	if err := m.RunStep(0); err != nil {
		return nil, err
	}
	post := make([]*term.Term, len(cands))
	for i, c := range cands {
		post[i] = c.Prop(m, ctx)
	}
	for _, a := range m.Assumes() {
		sv.Assert(a)
	}

	active := make([]bool, len(cands))
	for i := range active {
		active[i] = true
	}
	for {
		res.Rounds++
		changed := false
		// Antecedent: all active pre-conditions.
		var ant []*term.Term
		for i, on := range active {
			if on {
				ant = append(ant, pre[i])
			}
		}
		antT := b.And(ant...)
		for i, on := range active {
			if !on {
				continue
			}
			res.Checks++
			if sv.CheckAssuming(b.And(antT, b.Not(post[i]))) != solver.Unsat {
				active[i] = false
				res.Dropped = append(res.Dropped, cands[i])
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for i, on := range active {
		if on {
			res.Survivors = append(res.Survivors, cands[i])
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}
