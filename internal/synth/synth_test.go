package synth

import (
	"strings"
	"testing"

	"buffy/internal/backend/ts"
	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
)

func TestGrammarShape(t *testing.T) {
	info, err := qm.Load(qm.PathServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	sv := solver.New(solver.Options{})
	probe, err := ir.NewMachine(info, sv.Builder(), ir.Options{Params: map[string]int64{"C": 2, "B": 2}})
	if err != nil {
		t.Fatal(err)
	}
	cands := Grammar(info, probe, GrammarOptions{Consts: []int64{0, 4, 8}})
	if len(cands) < 6 {
		t.Fatalf("grammar produced only %d candidates", len(cands))
	}
	names := strings.Join(Names(cands), "\n")
	for _, want := range []string{
		"tokens >= 0", "tokens <= 4", "dropped(pin) == 0", "backlog(pin) <= 8",
	} {
		if !strings.Contains(names, want) {
			t.Errorf("grammar missing candidate %q\n%s", want, names)
		}
	}
}

// The Houdini run on the path server must keep the true token-bucket
// invariants and drop the false ones — the A3 experiment.
func TestHoudiniPathServer(t *testing.T) {
	info, err := qm.Load(qm.PathServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := ts.Options{IR: ir.Options{Params: map[string]int64{"C": 2, "B": 2}, BufferCap: 8}}
	sv := solver.New(solver.Options{})
	probe, err := ir.NewMachine(info, sv.Builder(), opts.IR)
	if err != nil {
		t.Fatal(err)
	}
	cands := Grammar(info, probe, GrammarOptions{Consts: []int64{0, 1, 4, 8}, BufferCap: 8})
	res, err := Houdini(info, opts, cands)
	if err != nil {
		t.Fatal(err)
	}
	surv := strings.Join(Names(res.Survivors), "\n")
	drop := strings.Join(Names(res.Dropped), "\n")
	for _, want := range []string{"tokens >= 0", "tokens <= 4", "backlog(pin) <= 8"} {
		if !strings.Contains(surv, want) {
			t.Errorf("survivor missing: %q\nsurvivors:\n%s", want, surv)
		}
	}
	for _, gone := range []string{"tokens <= 1", "dropped(pin) == 0", "backlog(pin) <= 1"} {
		if !strings.Contains(drop, gone) {
			t.Errorf("should have been dropped: %q\ndropped:\n%s", gone, drop)
		}
	}
	if res.Rounds < 1 || res.Checks == 0 {
		t.Error("expected at least one round and some checks")
	}

	// The survivors must actually be a mutually inductive set: feeding
	// them back into a k-induction proof of each one succeeds.
	for _, c := range res.Survivors {
		var aux []ts.Prop
		for _, o := range res.Survivors {
			if o.Name != c.Name {
				aux = append(aux, o.Prop)
			}
		}
		pres, err := ts.ProveInvariant(info, ts.Options{IR: opts.IR, Aux: aux}, c.Prop)
		if err != nil {
			t.Fatal(err)
		}
		if !pres.Proved {
			t.Errorf("survivor %q is not inductive with the others as lemmas", c.Name)
		}
	}
}

// Houdini drops mutually-dependent false candidates transitively.
func TestHoudiniTransitiveDrop(t *testing.T) {
	info, err := qm.Load(`p(buffer a, buffer b) {
		global int x; global int y;
		x = x + 1;
		if (x > 3) { x = 0; }
		y = x;
		move-p(a, b, 1);
	}`)
	if err != nil {
		t.Fatal(err)
	}
	opts := ts.Options{IR: ir.Options{}}
	sv := solver.New(solver.Options{})
	probe, err := ir.NewMachine(info, sv.Builder(), opts.IR)
	if err != nil {
		t.Fatal(err)
	}
	cands := Grammar(info, probe, GrammarOptions{Consts: []int64{0, 3, 8}})
	res, err := Houdini(info, opts, cands)
	if err != nil {
		t.Fatal(err)
	}
	surv := strings.Join(Names(res.Survivors), "\n")
	// x cycles 1,2,3,0: x <= 3 and x >= 0 must survive; x <= 0 must not.
	for _, want := range []string{"x <= 3", "x >= 0", "y <= 3", "y >= 0"} {
		if !strings.Contains(surv, want) {
			t.Errorf("missing survivor %q\n%s", want, surv)
		}
	}
	if strings.Contains(surv, "x <= 0") {
		t.Errorf("x <= 0 should be dropped\n%s", surv)
	}
}
