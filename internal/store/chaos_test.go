//go:build faultinject

package store

import (
	"syscall"
	"testing"

	"buffy/internal/faultinject"
)

// The chaos contract for the durable tier, at the store layer: any
// injected filesystem fault — full disk, torn write, bit rot, read
// error — degrades to a counted write failure or a cache miss. A fault
// never surfaces as a served-but-wrong payload.

func TestChaosENOSPCWriteFails(t *testing.T) {
	defer faultReset(t)
	s := mustOpen(t, Options{Dir: t.TempDir(), Fingerprint: "fp1"})
	k := key("q")

	arm(t, PointStoreWrite, Fault{Err: syscall.ENOSPC, Times: 1})
	if err := s.Put(k, []byte(`{"status":"holds"}`)); err == nil {
		t.Fatal("Put succeeded under ENOSPC")
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("failed write left a servable entry")
	}
	st := s.Stats()
	if st.WriteErrors != 1 || st.Writes != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want the failed write counted and nothing resident", st)
	}

	// Fault spent: the same write now lands and serves.
	mustPut(t, s, k, []byte(`{"status":"holds"}`))
	if _, ok := s.Get(k); !ok {
		t.Fatal("store did not recover once ENOSPC cleared")
	}
}

func TestChaosEROFSWriteFails(t *testing.T) {
	defer faultReset(t)
	s := mustOpen(t, Options{Dir: t.TempDir(), Fingerprint: "fp1"})
	arm(t, PointStoreWrite, Fault{Err: syscall.EROFS, Times: 1})
	if err := s.Put(key("q"), []byte("{}")); err == nil {
		t.Fatal("Put succeeded under EROFS")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1", st.WriteErrors)
	}
}

func TestChaosTornWriteDegradesToMiss(t *testing.T) {
	defer faultReset(t)
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	k := key("q")

	// The write is acknowledged but only half the bytes reach the disk —
	// the worst case the recovery scan and read-path checks exist for.
	full := len(encodeEntry("fp1", k, []byte(`{"status":"holds"}`)))
	arm(t, PointStoreCorrupt, Fault{TearAfter: full / 2, Times: 1})
	mustPut(t, s, k, []byte(`{"status":"holds"}`))

	if _, ok := s.Get(k); ok {
		t.Fatal("torn entry served")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	s.Close()

	// And a restart over the torn store must come up clean and empty.
	s2 := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	if _, ok := s2.Get(k); ok {
		t.Fatal("torn entry served after restart")
	}
}

func TestChaosBitRotDegradesToMiss(t *testing.T) {
	defer faultReset(t)
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	k := key("q")
	payload := []byte(`{"status":"holds"}`)

	// Flip one bit inside the payload region (the tail of the entry).
	full := len(encodeEntry("fp1", k, payload))
	arm(t, PointStoreCorrupt, Fault{Flip: true, FlipAt: full - 2, Times: 1})
	mustPut(t, s, k, payload)

	if _, ok := s.Get(k); ok {
		t.Fatal("bit-rotted entry served")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if n := quarantineCount(t, dir); n != 1 {
		t.Fatalf("quarantine dir holds %d files, want 1", n)
	}
}

func TestChaosHeaderRotDegradesToMiss(t *testing.T) {
	defer faultReset(t)
	s := mustOpen(t, Options{Dir: t.TempDir(), Fingerprint: "fp1"})
	k := key("q")

	// Flip a bit in the header (the magic): strict parsing must reject it.
	arm(t, PointStoreCorrupt, Fault{Flip: true, FlipAt: 0, Times: 1})
	mustPut(t, s, k, []byte(`{"status":"holds"}`))
	if _, ok := s.Get(k); ok {
		t.Fatal("header-rotted entry served")
	}
}

func TestChaosReadErrorIsMissNotQuarantine(t *testing.T) {
	defer faultReset(t)
	s := mustOpen(t, Options{Dir: t.TempDir(), Fingerprint: "fp1"})
	k := key("q")
	mustPut(t, s, k, []byte(`{"status":"holds"}`))

	// A transient I/O error says nothing about the entry's integrity:
	// miss now, serve fine once the fault clears.
	arm(t, PointStoreRead, Fault{Err: syscall.EIO, Times: 1})
	if _, ok := s.Get(k); ok {
		t.Fatal("Get served through an injected read error")
	}
	st := s.Stats()
	if st.ReadErrors != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want 1 read error and no quarantine", st)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("intact entry lost after a transient read error")
	}
}

func arm(t *testing.T, point string, f Fault) {
	t.Helper()
	faultinject.Enable(point, f)
}

func faultReset(t *testing.T) {
	t.Helper()
	faultinject.Reset()
}

// Aliases so the chaos tests read at the store's level of abstraction
// while the faults live in the shared harness.
type Fault = faultinject.Fault

const (
	PointStoreWrite   = faultinject.PointStoreWrite
	PointStoreCorrupt = faultinject.PointStoreCorrupt
	PointStoreRead    = faultinject.PointStoreRead
)
