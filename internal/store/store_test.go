package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func mustPut(t *testing.T, s *Store, k string, payload []byte) {
	t.Helper()
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put(%s): %v", k, err)
	}
}

func quarantineCount(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(filepath.Join(dir, "quarantine"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk quarantine: %v", err)
	}
	return n
}

func TestPutGetRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	k := key("q1")
	payload := []byte(`{"status":"holds"}`)
	mustPut(t, s, k, payload)

	got, ok := s.Get(k)
	if !ok {
		t.Fatal("Get missed a just-written entry")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	if _, ok := s.Get(key("other")); ok {
		t.Fatal("Get hit an absent key")
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 write / 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes <= int64(len(payload)) {
		t.Fatalf("bytes = %d, want payload plus header", st.Bytes)
	}
}

func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	keys := make([]string, 5)
	for i := range keys {
		keys[i] = key(fmt.Sprintf("q%d", i))
		mustPut(t, s, keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	s.Close()

	// A new Open over the same directory must serve every entry.
	s2 := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	for i, k := range keys {
		got, ok := s2.Get(k)
		if !ok {
			t.Fatalf("entry %d lost across restart", i)
		}
		if want := fmt.Sprintf(`{"i":%d}`, i); string(got) != want {
			t.Fatalf("entry %d payload = %q, want %q", i, got, want)
		}
	}
	if st := s2.Stats(); st.Entries != 5 || st.Quarantined != 0 {
		t.Fatalf("stats after restart = %+v, want 5 clean entries", st)
	}
}

func TestRecoveryQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	good, torn, rotted := key("good"), key("torn"), key("rotted")
	for _, k := range []string{good, torn, rotted} {
		mustPut(t, s, k, []byte(`{"ok":true}`))
	}
	s.Close()

	// Tear one entry, flip a payload bit in another, and leave a stale
	// temp file — the recovery scan must quarantine all three casualties
	// and keep serving the untouched entry.
	tearFile(t, filepath.Join(dir, "entries", torn))
	flipLastByte(t, filepath.Join(dir, "entries", rotted))
	if err := os.WriteFile(filepath.Join(dir, "entries", ".tmp-stale"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	if _, ok := s2.Get(good); !ok {
		t.Fatal("intact entry lost in recovery")
	}
	for _, k := range []string{torn, rotted} {
		if _, ok := s2.Get(k); ok {
			t.Fatalf("corrupt entry %s served after recovery", k)
		}
	}
	if st := s2.Stats(); st.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want 3 (torn + rotted + stale tmp)", st.Quarantined)
	}
	if n := quarantineCount(t, dir); n != 3 {
		t.Fatalf("quarantine dir holds %d files, want 3 — corruption must be preserved, not deleted", n)
	}
}

func TestGetQuarantinesBitRot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	k := key("q")
	mustPut(t, s, k, []byte(`{"status":"holds"}`))

	// Rot the entry underneath a live store: the read-path checksum must
	// catch it.
	flipLastByte(t, filepath.Join(dir, "entries", k))
	if _, ok := s.Get(k); ok {
		t.Fatal("bit-rotted entry served")
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("quarantined entry served on re-read")
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if n := quarantineCount(t, dir); n != 1 {
		t.Fatalf("quarantine dir holds %d files, want 1", n)
	}
}

func TestFingerprintInvalidation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "encoder-v1"})
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = key(fmt.Sprintf("q%d", i))
		mustPut(t, s, keys[i], []byte(`{"status":"holds"}`))
	}
	s.Close()

	// Same directory, bumped fingerprint: every prior entry must be a
	// miss, and quarantined rather than deleted.
	s2 := mustOpen(t, Options{Dir: dir, Fingerprint: "encoder-v2"})
	for _, k := range keys {
		if _, ok := s2.Get(k); ok {
			t.Fatal("entry from the old pipeline fingerprint served")
		}
	}
	st := s2.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want all 3 superseded entries", st.Quarantined)
	}
	if n := quarantineCount(t, dir); n != 3 {
		t.Fatalf("quarantine dir holds %d files, want 3", n)
	}

	// New-generation writes serve normally, and survive another restart
	// under the same fingerprint.
	mustPut(t, s2, keys[0], []byte(`{"status":"holds","v":2}`))
	if got, ok := s2.Get(keys[0]); !ok || !strings.Contains(string(got), `"v":2`) {
		t.Fatalf("new-generation entry not served (ok=%v, got=%q)", ok, got)
	}
	s2.Close()
	s3 := mustOpen(t, Options{Dir: dir, Fingerprint: "encoder-v2"})
	if _, ok := s3.Get(keys[0]); !ok {
		t.Fatal("new-generation entry lost across restart")
	}
	if st := s3.Stats(); st.Invalidations != 0 {
		t.Fatalf("matching fingerprint re-open invalidated (%d times)", st.Invalidations)
	}
}

func TestEntryKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	a, b := key("a"), key("b")
	mustPut(t, s, a, []byte(`{"q":"a"}`))
	s.Close()

	// Copy entry a's bytes under entry b's name: checksum-clean, but the
	// embedded key no longer matches the filename — the wrong answer for
	// the content address. Must never be served.
	data, err := os.ReadFile(filepath.Join(dir, "entries", a))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "entries", b), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	if _, ok := s2.Get(b); ok {
		t.Fatal("entry with mismatched embedded key served")
	}
	if _, ok := s2.Get(a); !ok {
		t.Fatal("legitimate entry lost")
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
}

func TestGCEnforcesByteBudget(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("x", 1024))
	one := len(encodeEntry("fp1", key("probe"), payload))
	// Budget for ~4 entries; write 10.
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1", MaxBytes: int64(4 * one)})
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = key(fmt.Sprintf("q%d", i))
		mustPut(t, s, keys[i], payload)
	}
	s.gc() // deterministic: don't wait for the background kick

	st := s.Stats()
	if st.Bytes > int64(4*one) {
		t.Fatalf("bytes = %d, over the %d budget after gc", st.Bytes, 4*one)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// LRU: the newest writes survive, the oldest were evicted.
	if _, ok := s.Get(keys[9]); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("oldest entry survived a 4-entry budget")
	}
	// Evictions are deletions, not quarantines: the entries were valid.
	if n := quarantineCount(t, dir); n != 0 {
		t.Fatalf("eviction quarantined %d files, want 0", n)
	}
	if st.Quarantined != 0 {
		t.Fatalf("quarantined = %d, want 0", st.Quarantined)
	}
}

func TestReadOnlyMode(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	k := key("q")
	mustPut(t, s, k, []byte(`{"status":"holds"}`))
	s.Close()

	s2 := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1", ReadOnly: true})
	if !s2.ReadOnly() {
		t.Fatal("store not read-only")
	}
	if _, ok := s2.Get(k); !ok {
		t.Fatal("read-only store must serve verified entries")
	}
	if err := s2.Put(key("new"), []byte("{}")); err == nil {
		t.Fatal("Put succeeded on a read-only store")
	}
	if st := s2.Stats(); st.WriteErrors != 1 || !st.ReadOnly {
		t.Fatalf("stats = %+v, want 1 write error and read_only", st)
	}
}

func TestReadOnlyFingerprintMismatchServesNothing(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	k := key("q")
	mustPut(t, s, k, []byte(`{"status":"holds"}`))
	s.Close()

	// Read-only + wrong fingerprint: the store can neither serve the old
	// entries nor invalidate them — it must serve nothing.
	s2 := mustOpen(t, Options{Dir: dir, Fingerprint: "fp2", ReadOnly: true})
	if _, ok := s2.Get(k); ok {
		t.Fatal("mismatched-fingerprint entry served from read-only store")
	}
	if st := s2.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	// And the old entries must still be on disk, untouched.
	if _, err := os.Stat(filepath.Join(dir, "entries", k)); err != nil {
		t.Fatalf("read-only invalidation touched the disk: %v", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Fingerprint: "fp1"})
	for _, k := range []string{"", ".hidden", "../escape", "a/b", "a b", strings.Repeat("k", 300)} {
		if err := s.Put(k, []byte("{}")); err == nil {
			t.Fatalf("Put accepted invalid key %q", k)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("Get hit invalid key %q", k)
		}
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Fingerprint: "fp1", MaxBytes: 128})
	if err := s.Put(key("big"), []byte(strings.Repeat("x", 4096))); err == nil {
		t.Fatal("Put accepted an entry larger than the whole store budget")
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 write error, 0 entries", st)
	}
}

func TestLRURecencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1"})
	old, fresh := key("old"), key("fresh")
	mustPut(t, s, old, []byte(`{"a":1}`))
	mustPut(t, s, fresh, []byte(`{"b":2}`))
	// Backdate the old entry well past any mtime granularity, then touch
	// it via Get so its recency is restored before the restart.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "entries", old), past, past); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(old); !ok {
		t.Fatal("Get(old) missed")
	}
	s.Close()

	// After restart the Get-refreshed mtime orders "old" as most recent;
	// with a one-entry budget the GC must evict "fresh", not "old".
	one := int64(len(encodeEntry("fp1", old, []byte(`{"a":1}`))))
	s2 := mustOpen(t, Options{Dir: dir, Fingerprint: "fp1", MaxBytes: one})
	s2.gc()
	if _, ok := s2.Get(old); !ok {
		t.Fatal("recently-used entry evicted: LRU recency lost across restart")
	}
	if _, ok := s2.Get(fresh); ok {
		t.Fatal("least-recently-used entry survived a one-entry budget")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Fingerprint: "fp1"})
	s.Close()
	s.Close() // second Close must not panic or hang
}

func TestDecodeEntryRejectsEveryCorruption(t *testing.T) {
	fp, k := "fp1", key("q")
	good := encodeEntry(fp, k, []byte(`{"status":"holds"}`))
	if _, err := decodeEntry(good, fp, k); err != nil {
		t.Fatalf("clean entry rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		reason string
	}{
		{"empty", func(b []byte) []byte { return nil }, "format"},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "format"},
		{"bad version", func(b []byte) []byte { b[4] ^= 0xFF; return b }, "format"},
		{"truncated header", func(b []byte) []byte { return b[:10] }, "torn"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }, "torn"},
		{"payload bit rot", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, "checksum"},
		{"checksum bit rot", func(b []byte) []byte { b[len(b)-20] ^= 0x01; return b }, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(append([]byte(nil), good...))
			_, err := decodeEntry(buf, fp, k)
			if err == nil {
				t.Fatal("corrupt entry decoded")
			}
			if got := reasonOf(err); got != tc.reason {
				t.Fatalf("reason = %q, want %q (err: %v)", got, tc.reason, err)
			}
		})
	}
	if _, err := decodeEntry(good, "fp2", k); reasonOf(err) != "fingerprint" {
		t.Fatalf("fingerprint mismatch reason = %q, want fingerprint", reasonOf(err))
	}
	if _, err := decodeEntry(good, fp, key("other")); reasonOf(err) != "key" {
		t.Fatalf("key mismatch reason = %q, want key", reasonOf(err))
	}
}

// tearFile truncates a file to half its size: an acknowledged write that
// only partially reached the disk.
func tearFile(t *testing.T, path string) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
}

// flipLastByte XORs one bit of a file's final byte (inside the payload):
// silent bit rot.
func flipLastByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
