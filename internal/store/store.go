// Package store is Buffy's durable result tier: a content-addressed,
// crash-safe on-disk cache of analysis results that sits under the
// service's in-memory LRU, so restarts (and, eventually, scale-out
// peers) keep their hit rate.
//
// The store's single invariant is that a stored answer is only ever
// served if it provably matches what the current pipeline would compute:
//
//   - Entries are written atomically: temp file in the same directory,
//     fsync, rename over the final name, fsync of the directory. A crash
//     mid-write leaves a temp file, never a half-visible entry.
//   - Every entry carries a sha256 checksum of its payload and the
//     version fingerprint of the pipeline that produced it; both are
//     verified on every read, so torn writes and bit rot degrade to
//     cache misses, never to wrong answers.
//   - A fingerprint mismatch at Open invalidates the whole entry set
//     wholesale (the encoder/solver/sema/netcalc semantics changed, so
//     every stored answer is suspect).
//   - Integrity failures are never deleted silently: bad entries are
//     moved to a quarantine directory for operator inspection. Only
//     LRU budget evictions — entries that are valid but cold — delete.
//
// Opening runs a recovery scan that verifies every entry and quarantines
// the casualties; a background GC enforces the byte budget with LRU
// eviction (recency survives restarts via file mtimes).
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"buffy/internal/faultinject"
)

// FormatVersion is the on-disk entry format version; bumping it
// invalidates every existing entry (they fail the format check and are
// quarantined at the next recovery scan).
const FormatVersion = 1

// manifestName is the store's root metadata file recording the pipeline
// fingerprint the resident entries were written under.
const manifestName = "MANIFEST"

// ErrReadOnly is returned by Put when the store is running degraded on a
// non-writable directory: reads (of a fingerprint-verified entry set)
// still work, writes degrade to counted failures.
var ErrReadOnly = errors.New("store: read-only")

// Options configures Open.
type Options struct {
	// Dir is the store's root directory (created if absent).
	Dir string
	// Fingerprint is the version fingerprint of everything answer-relevant
	// in the pipeline. Entries written under a different fingerprint are
	// never served.
	Fingerprint string
	// MaxBytes bounds the live entry set; the GC evicts least-recently-used
	// entries beyond it (<= 0: unlimited).
	MaxBytes int64
	// ReadOnly forces degraded read-only mode (also entered automatically
	// when Dir is not writable).
	ReadOnly bool
	// Logger receives recovery/quarantine/eviction logs (default: discard).
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	Hits          int64  `json:"hits"`
	Misses        int64  `json:"misses"`
	Writes        int64  `json:"writes"`
	WriteErrors   int64  `json:"write_errors"`
	ReadErrors    int64  `json:"read_errors"`
	Quarantined   int64  `json:"quarantined"`
	Evictions     int64  `json:"evictions"`
	Invalidations int64  `json:"invalidations"`
	ReadOnly      bool   `json:"read_only"`
	Fingerprint   string `json:"fingerprint"`
}

// Store is the durable result tier. All methods are safe for concurrent
// use.
type Store struct {
	dir        string
	entriesDir string
	quarDir    string
	fp         string
	maxBytes   int64
	log        *slog.Logger
	readOnly   bool

	mu     sync.Mutex
	index  map[string]*list.Element // key → element; values are *entryMeta
	order  *list.List               // front = most recently used
	bytes  int64
	deny   map[string]bool // keys whose bad file could not be quarantined; never served
	closed bool

	gcKick chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	hits, misses, writes   atomic.Int64
	writeErrors, readErrs  atomic.Int64
	quarantined, evictions atomic.Int64
	invalidations          atomic.Int64
	qseq                   atomic.Int64
}

type entryMeta struct {
	key  string
	size int64
}

type manifest struct {
	Format      int    `json:"format"`
	Fingerprint string `json:"fingerprint"`
}

// Open opens (or initializes) a store rooted at opts.Dir, running the
// recovery scan: fingerprint check, wholesale invalidation on mismatch,
// per-entry integrity verification with quarantine of torn or bit-rotted
// entries, and GC to the byte budget. A non-writable directory degrades
// to read-only mode rather than failing, provided a verified entry set
// exists; structural impossibility (the path is a file, the directory is
// unreadable) is an error.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: empty directory")
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Store{
		dir:        opts.Dir,
		entriesDir: filepath.Join(opts.Dir, "entries"),
		quarDir:    filepath.Join(opts.Dir, "quarantine"),
		fp:         opts.Fingerprint,
		maxBytes:   opts.MaxBytes,
		log:        log,
		readOnly:   opts.ReadOnly,
		index:      make(map[string]*list.Element),
		order:      list.New(),
		deny:       make(map[string]bool),
		gcKick:     make(chan struct{}, 1),
		done:       make(chan struct{}),
	}

	mkErr := errors.Join(
		os.MkdirAll(s.entriesDir, 0o755),
		os.MkdirAll(s.quarDir, 0o755),
	)
	if !s.readOnly {
		// Probe writability instead of trusting MkdirAll: an existing
		// layout on a read-only mount creates nothing yet writes nothing.
		if probe, err := os.CreateTemp(s.entriesDir, ".probe-*"); err == nil {
			probe.Close()
			os.Remove(probe.Name())
		} else {
			s.readOnly = true
			s.log.Warn("store: directory not writable; degrading to read-only", "dir", s.dir, "err", err.Error())
		}
	}
	if _, err := os.Stat(s.entriesDir); err != nil {
		return nil, fmt.Errorf("store: no usable entries directory: %w", errors.Join(err, mkErr))
	}

	man, manErr := readManifest(filepath.Join(s.dir, manifestName))
	compatible := manErr == nil && man.Format == FormatVersion && man.Fingerprint == s.fp
	switch {
	case compatible:
		s.recoverScan()
	case s.readOnly:
		// The resident entries cannot be trusted (wrong or unknown
		// fingerprint) and cannot be invalidated (no writes): serve
		// nothing. Every Get is a miss; no entry is ever served stale.
		s.invalidations.Add(1)
		s.log.Warn("store: fingerprint mismatch on read-only store; serving nothing",
			"dir", s.dir, "err", errString(manErr))
	default:
		s.invalidateAll(errString(manErr))
		if err := writeManifest(filepath.Join(s.dir, manifestName), manifest{Format: FormatVersion, Fingerprint: s.fp}); err != nil {
			// Without a durable manifest the next Open would mistrust
			// everything we write; degrade to read-only and serve nothing.
			s.readOnly = true
			s.log.Warn("store: cannot persist manifest; degrading to read-only", "err", err.Error())
		} else {
			s.recoverScan()
		}
	}

	s.wg.Add(1)
	go s.gcLoop()
	s.kickGC()
	return s, nil
}

// errString renders an error for a log attr ("" for nil — here meaning
// "manifest fine, fingerprint different").
func errString(err error) string {
	if err == nil {
		return "fingerprint mismatch"
	}
	return err.Error()
}

// invalidateAll quarantines the entire entry set in one directory rename
// — the fingerprint changed, so every stored answer is suspect. Nothing
// is deleted: the superseded generation lands under quarantine/ for
// inspection.
func (s *Store) invalidateAll(why string) {
	des, err := os.ReadDir(s.entriesDir)
	if err != nil || len(des) == 0 {
		if err == nil && why != "fingerprint mismatch" {
			return // empty store, no manifest yet: a fresh init, not an invalidation
		}
		if len(des) == 0 {
			return
		}
	}
	dest := filepath.Join(s.quarDir, fmt.Sprintf("invalidated.%d.%d", time.Now().UnixNano(), s.qseq.Add(1)))
	if err := os.Rename(s.entriesDir, dest); err != nil {
		s.log.Warn("store: wholesale invalidation rename failed; entries will be quarantined one by one", "err", err.Error())
		// Fall back to per-file quarantine so nothing mismatched survives.
		for _, de := range des {
			s.quarantineFile(filepath.Join(s.entriesDir, de.Name()), "fingerprint")
		}
	} else {
		s.quarantined.Add(int64(len(des)))
	}
	s.invalidations.Add(1)
	s.log.Warn("store: fingerprint changed; invalidated entry set wholesale",
		"entries", len(des), "quarantine", dest, "reason", why)
	if err := os.MkdirAll(s.entriesDir, 0o755); err != nil {
		s.readOnly = true
		s.log.Warn("store: cannot recreate entries directory; degrading to read-only", "err", err.Error())
	}
}

// recoverScan verifies every resident entry — magic, format, lengths,
// fingerprint, checksum — quarantining the casualties (including crash
// leftovers of interrupted writes) and seeding the LRU order from file
// mtimes so recency survives restarts.
func (s *Store) recoverScan() {
	des, err := os.ReadDir(s.entriesDir)
	if err != nil {
		s.log.Warn("store: recovery scan cannot list entries", "err", err.Error())
		return
	}
	type cand struct {
		key   string
		size  int64
		mtime time.Time
	}
	var good []cand
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(s.entriesDir, name)
		if strings.HasPrefix(name, ".") {
			// An interrupted write's temp file: never published, but never
			// silently discarded either.
			s.quarantineFile(path, "orphan-tmp")
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			s.readErrs.Add(1)
			s.quarantineFile(path, "unreadable")
			continue
		}
		if _, err := decodeEntry(data, s.fp, name); err != nil {
			s.quarantineFile(path, reasonOf(err))
			continue
		}
		info, ierr := de.Info()
		var mt time.Time
		if ierr == nil {
			mt = info.ModTime()
		}
		good = append(good, cand{key: name, size: int64(len(data)), mtime: mt})
	}
	sort.Slice(good, func(i, j int) bool { return good[i].mtime.Before(good[j].mtime) })
	s.mu.Lock()
	for _, c := range good {
		// Oldest first, each pushed to the front: newest ends up MRU.
		s.index[c.key] = s.order.PushFront(&entryMeta{key: c.key, size: c.size})
		s.bytes += c.size
	}
	s.mu.Unlock()
	if len(good) > 0 || len(des) > 0 {
		s.log.Info("store: recovery scan complete",
			"entries", len(good), "bytes", s.bytes, "quarantined", s.quarantined.Load())
	}
}

// Get returns the payload stored under key, verifying fingerprint and
// checksum on every read. Any integrity failure quarantines the entry
// and reports a miss — corruption can cost a re-solve, never a wrong
// answer.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	_, ok := s.index[key]
	denied := s.deny[key]
	s.mu.Unlock()
	if !ok || denied {
		s.misses.Add(1)
		return nil, false
	}

	if err := faultinject.ErrAt(faultinject.PointStoreRead); err != nil {
		// Transient I/O error: the entry may be fine — degrade to a miss
		// without quarantining.
		s.readErrs.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		if el, ok := s.index[key]; ok {
			s.removeLocked(el)
		}
		s.mu.Unlock()
		if !errors.Is(err, fs.ErrNotExist) {
			s.readErrs.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(data, s.fp, key)
	if err != nil {
		s.Quarantine(key, reasonOf(err))
		s.misses.Add(1)
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort: LRU recency survives restarts
	s.mu.Lock()
	if el, ok := s.index[key]; ok {
		s.order.MoveToFront(el)
	}
	s.mu.Unlock()
	s.hits.Add(1)
	return payload, true
}

// Put stores payload under key atomically: temp file + fsync + rename +
// directory fsync. Errors (full disk, read-only mode) are counted and
// returned; the caller's in-memory answer is unaffected.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: invalid key %q", key)
	}
	if s.readOnly {
		s.writeErrors.Add(1)
		return ErrReadOnly
	}
	buf := encodeEntry(s.fp, key, payload)
	if s.maxBytes > 0 && int64(len(buf)) > s.maxBytes {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: entry %s (%d bytes) exceeds the store budget (%d)", key, len(buf), s.maxBytes)
	}
	if err := faultinject.ErrAt(faultinject.PointStoreWrite); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	buf = faultinject.MutateBytes(faultinject.PointStoreCorrupt, buf)

	tmp, err := os.CreateTemp(s.entriesDir, ".tmp-*")
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	_, werr := tmp.Write(buf)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp.Name())
		s.writeErrors.Add(1)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.entryPath(key)); err != nil {
		os.Remove(tmp.Name())
		s.writeErrors.Add(1)
		return fmt.Errorf("store: publish %s: %w", key, err)
	}
	s.syncDir(s.entriesDir)

	size := int64(len(buf))
	s.mu.Lock()
	delete(s.deny, key) // a fresh atomic write supersedes any denied file
	if el, ok := s.index[key]; ok {
		meta := el.Value.(*entryMeta)
		s.bytes += size - meta.size
		meta.size = size
		s.order.MoveToFront(el)
	} else {
		s.index[key] = s.order.PushFront(&entryMeta{key: key, size: size})
		s.bytes += size
	}
	over := s.maxBytes > 0 && s.bytes > s.maxBytes
	s.mu.Unlock()
	s.writes.Add(1)
	if over {
		s.kickGC()
	}
	return nil
}

// Quarantine withdraws an entry from service and moves its file into the
// quarantine directory. The store calls it on its own integrity failures;
// callers use it when they detect a bad entry the checksum cannot see
// (e.g. an undecodable payload). If the file cannot be moved (read-only
// disk), the key is denied in memory instead — quarantine may fail, but
// serving the entry never happens.
func (s *Store) Quarantine(key, reason string) {
	s.mu.Lock()
	el, ok := s.index[key]
	if ok {
		s.removeLocked(el)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	if !s.quarantineFile(s.entryPath(key), reason) {
		s.mu.Lock()
		s.deny[key] = true
		s.mu.Unlock()
	}
}

// quarantineFile moves a file into the quarantine directory, reporting
// whether it is gone from its original location (moved, or already
// absent). false means the file is still in place and the caller must
// deny it in memory.
func (s *Store) quarantineFile(path, reason string) bool {
	dest := filepath.Join(s.quarDir, fmt.Sprintf("%s.%s.%d", filepath.Base(path), reason, s.qseq.Add(1)))
	err := os.Rename(path, dest)
	switch {
	case err == nil:
		s.quarantined.Add(1)
		s.log.Warn("store: quarantined entry", "entry", filepath.Base(path), "reason", reason)
		return true
	case errors.Is(err, fs.ErrNotExist):
		return true // already evicted or quarantined concurrently
	default:
		s.quarantined.Add(1)
		s.log.Warn("store: quarantine move failed; denying entry in memory",
			"entry", filepath.Base(path), "reason", reason, "err", err.Error())
		return false
	}
}

// kickGC nudges the background GC (non-blocking).
func (s *Store) kickGC() {
	select {
	case s.gcKick <- struct{}{}:
	default:
	}
}

func (s *Store) gcLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(time.Minute)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-s.gcKick:
		case <-tick.C:
		}
		s.gc()
	}
}

// gc enforces the byte budget with LRU eviction. Eviction is policy, not
// data loss: the entry was valid, the budget is just full — deleting
// (rather than quarantining) is correct here.
func (s *Store) gc() {
	if s.maxBytes <= 0 {
		return
	}
	for {
		s.mu.Lock()
		if s.bytes <= s.maxBytes || s.order.Len() == 0 {
			s.mu.Unlock()
			return
		}
		el := s.order.Back()
		meta := el.Value.(*entryMeta)
		s.removeLocked(el)
		s.mu.Unlock()
		if err := os.Remove(s.entryPath(meta.key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			s.log.Warn("store: eviction remove failed", "key", meta.key, "err", err.Error())
		}
		s.evictions.Add(1)
	}
}

// removeLocked detaches an entry from the index and the byte accounting.
func (s *Store) removeLocked(el *list.Element) {
	meta := el.Value.(*entryMeta)
	s.order.Remove(el)
	delete(s.index, meta.key)
	s.bytes -= meta.size
}

// Stats returns a point-in-time snapshot of all counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := s.order.Len(), s.bytes
	s.mu.Unlock()
	return Stats{
		Entries:       entries,
		Bytes:         bytes,
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Writes:        s.writes.Load(),
		WriteErrors:   s.writeErrors.Load(),
		ReadErrors:    s.readErrs.Load(),
		Quarantined:   s.quarantined.Load(),
		Evictions:     s.evictions.Load(),
		Invalidations: s.invalidations.Load(),
		ReadOnly:      s.readOnly,
		Fingerprint:   s.fp,
	}
}

// ReadOnly reports whether the store is running degraded (writes fail
// fast).
func (s *Store) ReadOnly() bool { return s.readOnly }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close stops the background GC. It is idempotent; resident entries stay
// on disk for the next Open.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
}

func (s *Store) entryPath(key string) string { return filepath.Join(s.entriesDir, key) }

// validKey accepts exactly the keys the service produces (hex content
// addresses) plus benign test keys; anything that could escape the
// entries directory or collide with temp files is rejected.
func validKey(key string) bool {
	if len(key) == 0 || len(key) > 250 || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// syncDir fsyncs a directory so a just-published rename is durable.
func (s *Store) syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func readManifest(path string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("store: corrupt manifest: %w", err)
	}
	return m, nil
}

func writeManifest(path string, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ---- entry encoding ----
//
// magic(4) | format u32 | fpLen u32 | fp | keyLen u32 | key |
// payloadLen u64 | sha256(payload) (32) | payload
//
// Little-endian throughout. The checksum covers the payload; the header
// is protected by strict parsing (any flipped header byte fails the
// magic/format/length/fingerprint/key checks).

var entryMagic = [4]byte{'B', 'F', 'S', '1'}

// headerFieldMax bounds the fp/key length fields so a corrupt header
// cannot drive a huge allocation.
const headerFieldMax = 4096

func encodeEntry(fp, key string, payload []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(entryMagic) + 20 + len(fp) + len(key) + sha256.Size + len(payload))
	b.Write(entryMagic[:])
	writeU32(&b, FormatVersion)
	writeU32(&b, uint32(len(fp)))
	b.WriteString(fp)
	writeU32(&b, uint32(len(key)))
	b.WriteString(key)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(payload)))
	b.Write(u64[:])
	sum := sha256.Sum256(payload)
	b.Write(sum[:])
	b.Write(payload)
	return b.Bytes()
}

func writeU32(b *bytes.Buffer, v uint32) {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], v)
	b.Write(u32[:])
}

// integrityError carries the quarantine reason label for a failed decode.
type integrityError struct {
	reason string
	detail string
}

func (e *integrityError) Error() string { return "store: " + e.reason + ": " + e.detail }

// reasonOf maps a decode error to its quarantine/metric label.
func reasonOf(err error) string {
	var ie *integrityError
	if errors.As(err, &ie) {
		return ie.reason
	}
	return "corrupt"
}

// decodeEntry parses and verifies one entry: magic, format version,
// bounded lengths, fingerprint and key match, payload checksum. It
// returns the payload or an integrityError naming what failed.
func decodeEntry(data []byte, wantFP, wantKey string) ([]byte, error) {
	rd := data
	take := func(n int) ([]byte, bool) {
		if n < 0 || len(rd) < n {
			return nil, false
		}
		out := rd[:n]
		rd = rd[n:]
		return out, true
	}
	mag, ok := take(4)
	if !ok || !bytes.Equal(mag, entryMagic[:]) {
		return nil, &integrityError{"format", "bad magic"}
	}
	verB, ok := take(4)
	if !ok {
		return nil, &integrityError{"torn", "truncated header"}
	}
	if v := binary.LittleEndian.Uint32(verB); v != FormatVersion {
		return nil, &integrityError{"format", fmt.Sprintf("format version %d, want %d", v, FormatVersion)}
	}
	fpLenB, ok := take(4)
	if !ok {
		return nil, &integrityError{"torn", "truncated header"}
	}
	fpLen := binary.LittleEndian.Uint32(fpLenB)
	if fpLen > headerFieldMax {
		return nil, &integrityError{"format", "oversized fingerprint field"}
	}
	fp, ok := take(int(fpLen))
	if !ok {
		return nil, &integrityError{"torn", "truncated fingerprint"}
	}
	keyLenB, ok := take(4)
	if !ok {
		return nil, &integrityError{"torn", "truncated header"}
	}
	keyLen := binary.LittleEndian.Uint32(keyLenB)
	if keyLen > headerFieldMax {
		return nil, &integrityError{"format", "oversized key field"}
	}
	key, ok := take(int(keyLen))
	if !ok {
		return nil, &integrityError{"torn", "truncated key"}
	}
	plenB, ok := take(8)
	if !ok {
		return nil, &integrityError{"torn", "truncated header"}
	}
	plen := binary.LittleEndian.Uint64(plenB)
	sum, ok := take(sha256.Size)
	if !ok {
		return nil, &integrityError{"torn", "truncated checksum"}
	}
	if plen != uint64(len(rd)) {
		return nil, &integrityError{"torn", fmt.Sprintf("payload length %d, %d bytes present", plen, len(rd))}
	}
	payload := rd
	if got := sha256.Sum256(payload); !bytes.Equal(got[:], sum) {
		return nil, &integrityError{"checksum", "payload checksum mismatch"}
	}
	// Checksum-clean content checks last: a failed fingerprint/key match
	// on an intact entry means it was written by a different pipeline
	// version (or landed under the wrong name) — never serve it.
	if string(fp) != wantFP {
		return nil, &integrityError{"fingerprint", "entry written under a different pipeline fingerprint"}
	}
	if string(key) != wantKey {
		return nil, &integrityError{"key", "entry key does not match its filename"}
	}
	return payload, nil
}
