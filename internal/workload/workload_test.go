package workload

import (
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/core"
	"buffy/internal/qm"
)

func TestConstantRate(t *testing.T) {
	p := ConstantRate(3, []string{"a", "b"}, 2)
	if p.Total() != 12 {
		t.Errorf("total = %d, want 12", p.Total())
	}
	pkts := p.At(1, "b")
	if len(pkts) != 2 || pkts[0].Flow != 1 {
		t.Errorf("At(1, b) = %v", pkts)
	}
}

func TestOnOff(t *testing.T) {
	p := OnOff(6, []string{"a"}, 3, 2)
	// bursts at t=0,2,4 of size 3
	if p.Total() != 9 {
		t.Errorf("total = %d, want 9", p.Total())
	}
	if len(p.At(1, "a")) != 0 || len(p.At(2, "a")) != 3 {
		t.Error("burst schedule wrong")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(5, []string{"x", "y"}, 3, 2, 42)
	b := Random(5, []string{"x", "y"}, 3, 2, 42)
	if a.Total() != b.Total() {
		t.Error("same seed should give same plan")
	}
	c := Random(5, []string{"x", "y"}, 3, 2, 43)
	if a.Total() == c.Total() && a.Total() != 0 {
		// Extremely unlikely to coincide exactly in every slot; compare a slot.
		same := true
		for t2 := 0; t2 < 5; t2++ {
			if len(a.At(t2, "x")) != len(c.At(t2, "x")) {
				same = false
			}
		}
		if same {
			t.Log("different seeds produced identical plans (allowed but suspicious)")
		}
	}
	for k, ps := range a.Arrives {
		for _, p := range ps {
			if p.Flow < 0 || p.Flow >= 2 {
				t.Errorf("flow out of range in %s: %d", k, p.Flow)
			}
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := ConstantRate(2, []string{"a"}, 1)
	p.Add(1, "a", Packet{Flow: 3, Bytes: 2})
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.T != p.T || q.Total() != p.Total() {
		t.Errorf("round trip lost data: %d vs %d", q.Total(), p.Total())
	}
	got := q.At(1, "a")
	if len(got) != 2 || got[1].Bytes != 2 {
		t.Errorf("At(1,a) = %v", got)
	}
}

func TestDefaultBytes(t *testing.T) {
	p := NewPlan(1)
	p.Add(0, "a", Packet{Flow: 0}) // Bytes omitted
	if p.At(0, "a")[0].Bytes != 1 {
		t.Error("default packet size should be 1")
	}
}

func TestFromTrace(t *testing.T) {
	tr := &smtbe.Trace{
		T: 2,
		Packets: []smtbe.PacketEvent{
			{Step: 0, Buffer: "in0", Fields: []int64{1}, Bytes: 1},
			{Step: 1, Buffer: "in0", Fields: []int64{2}, Bytes: 3},
		},
	}
	p := FromTrace(tr)
	if p.Total() != 2 || p.At(1, "in0")[0].Flow != 2 {
		t.Errorf("plan = %+v", p)
	}
}

// The FQ starvation plan drives the buggy scheduler into the bug when
// replayed through the full simulation API.
func TestFQStarvationPlanTriggersBug(t *testing.T) {
	prog, err := core.Parse(qm.FQBuggySrc)
	if err != nil {
		t.Fatal(err)
	}
	const T = 8
	plan := FQStarvation(T, "ibs[0]", "ibs[1]")
	m, err := prog.Simulate(core.Analysis{T: T, Params: map[string]int64{"N": 3}}, plan.Generator())
	if err != nil {
		t.Fatal(err)
	}
	// Queue 1 still has one of its two packets: it was served only once.
	if got := m.Buffer("ibs[1]").BacklogP(); got != 1 {
		t.Errorf("queue 1 backlog = %d, want 1 (starved)", got)
	}
	if got := m.Buffer("ob").BacklogP(); got != T {
		t.Errorf("output = %d, want %d (work conserving)", got, T)
	}
}
