// Package workload provides concrete traffic generators for driving Buffy
// programs in simulation (the interp package) and for sizing benchmark
// scenarios: constant-rate flows, on/off bursts, random traffic, and the
// adversarial pattern behind the FQ-CoDel starvation bug. A Plan can also
// be serialized, so a trace found by a solver back-end can be saved and
// replayed by the buffy-run tool.
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"buffy/internal/backend/smtbe"
	"buffy/internal/interp"
)

// Packet is one concrete packet in a plan.
type Packet struct {
	Flow  int64 `json:"flow"`
	Bytes int64 `json:"bytes"`
}

// Plan maps (step, input buffer) to the packets arriving there.
type Plan struct {
	T       int                 `json:"t"`
	Arrives map[string][]Packet `json:"arrives"` // key: "<step>/<buffer>"
}

// NewPlan returns an empty plan over T steps.
func NewPlan(T int) *Plan {
	return &Plan{T: T, Arrives: make(map[string][]Packet)}
}

func key(step int, buf string) string { return fmt.Sprintf("%d/%s", step, buf) }

// Add schedules a packet arrival.
func (p *Plan) Add(step int, buf string, pkt Packet) {
	if pkt.Bytes <= 0 {
		pkt.Bytes = 1
	}
	k := key(step, buf)
	p.Arrives[k] = append(p.Arrives[k], pkt)
}

// At returns the packets arriving at (step, buf).
func (p *Plan) At(step int, buf string) []Packet { return p.Arrives[key(step, buf)] }

// Total counts all packets in the plan.
func (p *Plan) Total() int {
	n := 0
	for _, ps := range p.Arrives {
		n += len(ps)
	}
	return n
}

// Generator renders the plan as a core.Simulate/interp arrival source.
func (p *Plan) Generator() func(step int, input string) []interp.Packet {
	return func(step int, input string) []interp.Packet {
		var out []interp.Packet
		for _, pkt := range p.At(step, input) {
			out = append(out, interp.Packet{Fields: []int64{pkt.Flow}, Bytes: pkt.Bytes})
		}
		return out
	}
}

// MarshalJSON / UnmarshalJSON round-trip through the plain struct.
func (p *Plan) Marshal() ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// Unmarshal parses a serialized plan.
func Unmarshal(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	if p.Arrives == nil {
		p.Arrives = make(map[string][]Packet)
	}
	return &p, nil
}

// FromTrace converts a solver trace's arrival events into a replayable plan.
func FromTrace(tr *smtbe.Trace) *Plan {
	p := NewPlan(tr.T)
	for _, ev := range tr.Packets {
		flow := int64(0)
		if len(ev.Fields) > 0 {
			flow = ev.Fields[0]
		}
		p.Add(ev.Step, ev.Buffer, Packet{Flow: flow, Bytes: ev.Bytes})
	}
	return p
}

// ConstantRate schedules `rate` packets per step into each listed buffer,
// with the packet flow matching the buffer's index in the list.
func ConstantRate(T int, buffers []string, rate int) *Plan {
	p := NewPlan(T)
	for t := 0; t < T; t++ {
		for i, b := range buffers {
			for k := 0; k < rate; k++ {
				p.Add(t, b, Packet{Flow: int64(i), Bytes: 1})
			}
		}
	}
	return p
}

// OnOff schedules bursts: `burst` packets every `period` steps (starting
// at the buffer's index, staggering flows).
func OnOff(T int, buffers []string, burst, period int) *Plan {
	if period <= 0 {
		period = 1
	}
	p := NewPlan(T)
	for i, b := range buffers {
		for t := i % period; t < T; t += period {
			for k := 0; k < burst; k++ {
				p.Add(t, b, Packet{Flow: int64(i), Bytes: 1})
			}
		}
	}
	return p
}

// Random schedules 0..maxPerStep packets per buffer per step with random
// flows below numClasses, using a deterministic seed.
func Random(T int, buffers []string, maxPerStep, numClasses int, seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := NewPlan(T)
	for t := 0; t < T; t++ {
		for _, b := range buffers {
			n := rng.Intn(maxPerStep + 1)
			for k := 0; k < n; k++ {
				p.Add(t, b, Packet{Flow: int64(rng.Intn(numClasses)), Bytes: 1})
			}
		}
	}
	return p
}

// FQStarvation builds the adversarial pattern of the FQ-CoDel bug
// (RFC 8290: a flow that "transmits at just the right rate"): queue 0
// sends exactly one packet per step — except one skipped step so its
// backlog stays at 1 — while queue 1 gets standing demand up front.
func FQStarvation(T int, q0, q1 string) *Plan {
	p := NewPlan(T)
	for t := 0; t < T; t++ {
		if t != 2 {
			p.Add(t, q0, Packet{Flow: 0, Bytes: 1})
		}
	}
	p.Add(0, q1, Packet{Flow: 1, Bytes: 1})
	p.Add(0, q1, Packet{Flow: 1, Bytes: 1})
	return p
}
