package bitblast

import (
	"testing"

	"buffy/internal/smt/sat"
	"buffy/internal/smt/term"
)

// solveValue pins vars to constants, asserts out == expr, solves and reads
// out — the harness for exhaustive small-width checks.
func evalViaSolver(t *testing.T, width int, build func(b *term.Builder) *term.Term) int64 {
	t.Helper()
	s := sat.New()
	bl := New(width, s)
	b := term.NewBuilder()
	e := build(b)
	out := b.Var("out", term.Int)
	bl.Assert(b.Eq(out, e))
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("expected sat, got %v", got)
	}
	return bl.IntValue(out)
}

func wrap(v int64, w int) int64 {
	mask := int64(1)<<uint(w) - 1
	v &= mask
	if v&(1<<uint(w-1)) != 0 {
		v -= 1 << uint(w)
	}
	return v
}

// Exhaustive 4-bit arithmetic against the reference semantics.
func TestExhaustiveArith4Bit(t *testing.T) {
	const w = 4
	for x := int64(-8); x < 8; x++ {
		for y := int64(-8); y < 8; y++ {
			x, y := x, y
			checks := []struct {
				name string
				want int64
				mk   func(b *term.Builder) *term.Term
			}{
				{"add", wrap(x+y, w), func(b *term.Builder) *term.Term {
					return b.Add(b.Var("x", term.Int), b.Var("y", term.Int))
				}},
				{"sub", wrap(x-y, w), func(b *term.Builder) *term.Term {
					return b.Sub(b.Var("x", term.Int), b.Var("y", term.Int))
				}},
				{"mul", wrap(x*y, w), func(b *term.Builder) *term.Term {
					return b.Mul(b.Var("x", term.Int), b.Var("y", term.Int))
				}},
			}
			for _, c := range checks {
				s := sat.New()
				bl := New(w, s)
				b := term.NewBuilder()
				xv, yv := b.Var("x", term.Int), b.Var("y", term.Int)
				bl.Assert(b.Eq(xv, b.IntConst(x)))
				bl.Assert(b.Eq(yv, b.IntConst(y)))
				out := b.Var("out", term.Int)
				bl.Assert(b.Eq(out, c.mk(b)))
				if got := s.Solve(); got != sat.Sat {
					t.Fatalf("%s(%d,%d): %v", c.name, x, y, got)
				}
				if got := bl.IntValue(out); got != c.want {
					t.Fatalf("%s(%d,%d) = %d, want %d", c.name, x, y, got, c.want)
				}
			}
		}
	}
}

// Exhaustive 4-bit comparisons.
func TestExhaustiveCompare4Bit(t *testing.T) {
	const w = 4
	for x := int64(-8); x < 8; x++ {
		for y := int64(-8); y < 8; y++ {
			s := sat.New()
			bl := New(w, s)
			b := term.NewBuilder()
			xv, yv := b.Var("x", term.Int), b.Var("y", term.Int)
			bl.Assert(b.Eq(xv, b.IntConst(x)))
			bl.Assert(b.Eq(yv, b.IntConst(y)))
			lt := b.Var("lt", term.Bool)
			le := b.Var("le", term.Bool)
			eq := b.Var("eq", term.Bool)
			bl.Assert(b.Iff(lt, b.Lt(xv, yv)))
			bl.Assert(b.Iff(le, b.Le(xv, yv)))
			bl.Assert(b.Iff(eq, b.Eq(xv, yv)))
			if got := s.Solve(); got != sat.Sat {
				t.Fatalf("(%d,%d): %v", x, y, got)
			}
			if bl.BoolValue(lt) != (x < y) || bl.BoolValue(le) != (x <= y) || bl.BoolValue(eq) != (x == y) {
				t.Fatalf("compare(%d,%d): lt=%v le=%v eq=%v",
					x, y, bl.BoolValue(lt), bl.BoolValue(le), bl.BoolValue(eq))
			}
		}
	}
}

func TestNegAndIte(t *testing.T) {
	got := evalViaSolver(t, 6, func(b *term.Builder) *term.Term {
		x := b.IntConst(13)
		return b.Neg(x)
	})
	if got != -13 {
		t.Errorf("neg: got %d", got)
	}
	got = evalViaSolver(t, 6, func(b *term.Builder) *term.Term {
		return b.Ite(b.Lt(b.IntConst(2), b.IntConst(3)), b.IntConst(10), b.IntConst(20))
	})
	if got != 10 {
		t.Errorf("ite: got %d", got)
	}
}

func TestRange(t *testing.T) {
	s := sat.New()
	bl := New(8, s)
	if bl.MinInt() != -128 || bl.MaxInt() != 127 {
		t.Errorf("range = [%d, %d]", bl.MinInt(), bl.MaxInt())
	}
}

func TestSharedSubtermsEncodedOnce(t *testing.T) {
	s := sat.New()
	bl := New(12, s)
	b := term.NewBuilder()
	x := b.Var("x", term.Int)
	sum := b.Add(x, b.IntConst(1))
	bl.Assert(b.Le(sum, b.IntConst(10)))
	n1 := s.NumVarsAllocated()
	// Asserting the identical term again must be free (full cache hit).
	bl.Assert(b.Le(sum, b.IntConst(10)))
	if n2 := s.NumVarsAllocated(); n2 != n1 {
		t.Errorf("identical assertion allocated %d new vars", n2-n1)
	}
	// A new comparison over the same sum may allocate comparator gates,
	// but not re-blast the adder (~3 gates/bit): well under 2 vars/bit.
	bl.Assert(b.Le(b.IntConst(-10), sum))
	if n3 := s.NumVarsAllocated(); n3-n1 > 2*bl.W {
		t.Errorf("sum re-encoded: %d new vars", n3-n1)
	}
}

func TestUnsupportedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width 1")
		}
	}()
	New(1, sat.New())
}
