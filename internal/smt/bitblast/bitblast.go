// Package bitblast lowers term DAGs over booleans and bounded integers to
// CNF. Integers become W-bit two's-complement bitvectors; boolean structure
// becomes Tseitin-encoded gates. Because terms are hash-consed, the blaster
// caches per term node, so shared subterms are encoded once. Internal gates
// (adder carries, comparator chains) are additionally deduplicated through a
// small structural gate cache.
//
// All Buffy analyses are bounded (bounded loops, bounded buffers, bounded
// time horizon), so this lowering is a complete decision procedure for them:
// it is the same reduction FPerf relies on Z3's QF_BV/QF_LIA engines for.
package bitblast

import (
	"fmt"
	"maps"

	"buffy/internal/smt/cnf"
	"buffy/internal/smt/sat"
	"buffy/internal/smt/term"
)

// DefaultWidth is the default two's-complement integer width. Twelve bits
// (range -2048..2047) comfortably covers packet counts, byte counts and
// queue indices in every model in this repository.
const DefaultWidth = 12

// MinWidth and MaxWidth bound the supported integer widths: below two bits
// two's complement degenerates, above 62 bits intermediate int64 arithmetic
// in the encoder would overflow. New panics outside this range, so callers
// accepting untrusted widths must validate against these bounds first.
const (
	MinWidth = 2
	MaxWidth = 62
)

type gateKey struct {
	op   uint8
	a, b cnf.Lit
}

const (
	gAnd uint8 = iota
	gOr
	gXor
)

// Blaster encodes terms into a sat.Solver.
type Blaster struct {
	W int
	s *sat.Solver

	boolCache map[*term.Term]cnf.Lit
	bitsCache map[*term.Term][]cnf.Lit
	gateCache map[gateKey]cnf.Lit

	trueLit  cnf.Lit
	falseLit cnf.Lit
}

// New returns a Blaster with the given integer width emitting clauses into s.
func New(width int, s *sat.Solver) *Blaster {
	if width < MinWidth || width > MaxWidth {
		panic(fmt.Sprintf("bitblast: unsupported width %d", width))
	}
	bl := &Blaster{
		W:         width,
		s:         s,
		boolCache: make(map[*term.Term]cnf.Lit, 1024),
		bitsCache: make(map[*term.Term][]cnf.Lit, 1024),
		gateCache: make(map[gateKey]cnf.Lit, 4096),
	}
	vt := s.NewVar()
	bl.trueLit = cnf.PosLit(vt)
	bl.falseLit = cnf.NegLit(vt)
	s.AddClause(bl.trueLit)
	return bl
}

// Fork returns a Blaster over ns that reuses this blaster's encoding
// work: ns must be a CloneProblem of this blaster's solver so variable
// numbering matches, and the caches are copied so already-encoded terms
// resolve to the same literals while anything the fork encodes afterwards
// stays private to it. Forking is read-only on the receiver, so multiple
// forks may be taken concurrently between encodes.
func (bl *Blaster) Fork(ns *sat.Solver) *Blaster {
	return &Blaster{
		W:         bl.W,
		s:         ns,
		boolCache: maps.Clone(bl.boolCache),
		bitsCache: maps.Clone(bl.bitsCache),
		gateCache: maps.Clone(bl.gateCache),
		trueLit:   bl.trueLit,
		falseLit:  bl.falseLit,
	}
}

// Assert adds clauses forcing t (a boolean term) to hold.
func (bl *Blaster) Assert(t *term.Term) {
	if t.Sort() != term.Bool {
		panic("bitblast: Assert on non-boolean term")
	}
	// Top-level conjunctions assert each conjunct: cheaper than a gate.
	if t.Kind() == term.KindAnd {
		for _, a := range t.Args() {
			bl.Assert(a)
		}
		return
	}
	// Top-level disjunctions become a single clause of operand literals.
	if t.Kind() == term.KindOr {
		lits := make([]cnf.Lit, t.NumArgs())
		for i, a := range t.Args() {
			lits[i] = bl.Bool(a)
		}
		bl.s.AddClause(lits...)
		return
	}
	bl.s.AddClause(bl.Bool(t))
}

// Bool returns the literal representing boolean term t.
func (bl *Blaster) Bool(t *term.Term) cnf.Lit {
	if t.Sort() != term.Bool {
		panic(fmt.Sprintf("bitblast: Bool on %v-sorted term", t.Sort()))
	}
	if l, ok := bl.boolCache[t]; ok {
		return l
	}
	var l cnf.Lit
	switch t.Kind() {
	case term.KindBoolConst:
		if t.BoolVal() {
			l = bl.trueLit
		} else {
			l = bl.falseLit
		}
	case term.KindVar:
		l = cnf.PosLit(bl.s.NewVar())
	case term.KindNot:
		l = bl.Bool(t.Arg(0)).Neg()
	case term.KindAnd:
		l = bl.andN(bl.boolArgs(t))
	case term.KindOr:
		l = bl.orN(bl.boolArgs(t))
	case term.KindXor:
		l = bl.xor2(bl.Bool(t.Arg(0)), bl.Bool(t.Arg(1)))
	case term.KindImplies:
		l = bl.orN([]cnf.Lit{bl.Bool(t.Arg(0)).Neg(), bl.Bool(t.Arg(1))})
	case term.KindIff:
		l = bl.xor2(bl.Bool(t.Arg(0)), bl.Bool(t.Arg(1))).Neg()
	case term.KindEq:
		if t.Arg(0).Sort() == term.Bool {
			l = bl.xor2(bl.Bool(t.Arg(0)), bl.Bool(t.Arg(1))).Neg()
		} else {
			l = bl.eqBits(bl.Bits(t.Arg(0)), bl.Bits(t.Arg(1)))
		}
	case term.KindLt:
		l = bl.signedLt(bl.Bits(t.Arg(0)), bl.Bits(t.Arg(1)))
	case term.KindLe:
		l = bl.signedLt(bl.Bits(t.Arg(1)), bl.Bits(t.Arg(0))).Neg()
	case term.KindIte:
		c := bl.Bool(t.Arg(0))
		l = bl.mux(c, bl.Bool(t.Arg(1)), bl.Bool(t.Arg(2)))
	default:
		panic(fmt.Sprintf("bitblast: unhandled bool kind %v", t.Kind()))
	}
	bl.boolCache[t] = l
	return l
}

func (bl *Blaster) boolArgs(t *term.Term) []cnf.Lit {
	lits := make([]cnf.Lit, t.NumArgs())
	for i, a := range t.Args() {
		lits[i] = bl.Bool(a)
	}
	return lits
}

// Bits returns the W-bit little-endian encoding of integer term t.
func (bl *Blaster) Bits(t *term.Term) []cnf.Lit {
	if t.Sort() != term.Int {
		panic(fmt.Sprintf("bitblast: Bits on %v-sorted term", t.Sort()))
	}
	if bs, ok := bl.bitsCache[t]; ok {
		return bs
	}
	var bs []cnf.Lit
	switch t.Kind() {
	case term.KindIntConst:
		bs = bl.constBits(t.IntVal())
	case term.KindVar:
		bs = make([]cnf.Lit, bl.W)
		for i := range bs {
			bs[i] = cnf.PosLit(bl.s.NewVar())
		}
	case term.KindAdd:
		args := t.Args()
		bs = bl.Bits(args[0])
		for _, a := range args[1:] {
			bs = bl.adder(bs, bl.Bits(a), bl.falseLit)
		}
	case term.KindSub:
		a, b := bl.Bits(t.Arg(0)), bl.Bits(t.Arg(1))
		nb := make([]cnf.Lit, bl.W)
		for i := range nb {
			nb[i] = b[i].Neg()
		}
		bs = bl.adder(a, nb, bl.trueLit)
	case term.KindNeg:
		a := bl.Bits(t.Arg(0))
		na := make([]cnf.Lit, bl.W)
		for i := range na {
			na[i] = a[i].Neg()
		}
		bs = bl.adder(bl.constBits(0), na, bl.trueLit)
	case term.KindMul:
		bs = bl.multiplier(bl.Bits(t.Arg(0)), bl.Bits(t.Arg(1)))
	case term.KindIte:
		c := bl.Bool(t.Arg(0))
		x, y := bl.Bits(t.Arg(1)), bl.Bits(t.Arg(2))
		bs = make([]cnf.Lit, bl.W)
		for i := range bs {
			bs[i] = bl.mux(c, x[i], y[i])
		}
	default:
		panic(fmt.Sprintf("bitblast: unhandled int kind %v", t.Kind()))
	}
	bl.bitsCache[t] = bs
	return bs
}

func (bl *Blaster) constBits(v int64) []cnf.Lit {
	bs := make([]cnf.Lit, bl.W)
	for i := 0; i < bl.W; i++ {
		if v&(1<<uint(i)) != 0 {
			bs[i] = bl.trueLit
		} else {
			bs[i] = bl.falseLit
		}
	}
	return bs
}

// --- gates ---

func (bl *Blaster) and2(a, b cnf.Lit) cnf.Lit {
	// Constant folding against the true/false literals.
	switch {
	case a == bl.falseLit || b == bl.falseLit:
		return bl.falseLit
	case a == bl.trueLit:
		return b
	case b == bl.trueLit:
		return a
	case a == b:
		return a
	case a == b.Neg():
		return bl.falseLit
	}
	if a > b {
		a, b = b, a
	}
	k := gateKey{gAnd, a, b}
	if y, ok := bl.gateCache[k]; ok {
		return y
	}
	y := cnf.PosLit(bl.s.NewVar())
	bl.s.AddClause(y.Neg(), a)
	bl.s.AddClause(y.Neg(), b)
	bl.s.AddClause(y, a.Neg(), b.Neg())
	bl.gateCache[k] = y
	return y
}

func (bl *Blaster) or2(a, b cnf.Lit) cnf.Lit {
	return bl.and2(a.Neg(), b.Neg()).Neg()
}

func (bl *Blaster) xor2(a, b cnf.Lit) cnf.Lit {
	switch {
	case a == bl.falseLit:
		return b
	case b == bl.falseLit:
		return a
	case a == bl.trueLit:
		return b.Neg()
	case b == bl.trueLit:
		return a.Neg()
	case a == b:
		return bl.falseLit
	case a == b.Neg():
		return bl.trueLit
	}
	// Normalize: cache on positive phase of the smaller literal.
	neg := false
	if a.Sign() {
		a, neg = a.Neg(), !neg
	}
	if b.Sign() {
		b, neg = b.Neg(), !neg
	}
	if a > b {
		a, b = b, a
	}
	k := gateKey{gXor, a, b}
	y, ok := bl.gateCache[k]
	if !ok {
		y = cnf.PosLit(bl.s.NewVar())
		bl.s.AddClause(y.Neg(), a, b)
		bl.s.AddClause(y.Neg(), a.Neg(), b.Neg())
		bl.s.AddClause(y, a.Neg(), b)
		bl.s.AddClause(y, a, b.Neg())
		bl.gateCache[k] = y
	}
	if neg {
		return y.Neg()
	}
	return y
}

func (bl *Blaster) andN(lits []cnf.Lit) cnf.Lit {
	out := make([]cnf.Lit, 0, len(lits))
	for _, l := range lits {
		if l == bl.falseLit {
			return bl.falseLit
		}
		if l == bl.trueLit {
			continue
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		return bl.trueLit
	case 1:
		return out[0]
	case 2:
		return bl.and2(out[0], out[1])
	}
	y := cnf.PosLit(bl.s.NewVar())
	big := make([]cnf.Lit, 0, len(out)+1)
	big = append(big, y)
	for _, l := range out {
		bl.s.AddClause(y.Neg(), l)
		big = append(big, l.Neg())
	}
	bl.s.AddClause(big...)
	return y
}

func (bl *Blaster) orN(lits []cnf.Lit) cnf.Lit {
	neg := make([]cnf.Lit, len(lits))
	for i, l := range lits {
		neg[i] = l.Neg()
	}
	return bl.andN(neg).Neg()
}

// mux returns c ? x : y.
func (bl *Blaster) mux(c, x, y cnf.Lit) cnf.Lit {
	switch {
	case c == bl.trueLit:
		return x
	case c == bl.falseLit:
		return y
	case x == y:
		return x
	}
	return bl.or2(bl.and2(c, x), bl.and2(c.Neg(), y))
}

// --- arithmetic ---

// adder returns a + b + cin truncated to W bits.
func (bl *Blaster) adder(a, b []cnf.Lit, cin cnf.Lit) []cnf.Lit {
	out := make([]cnf.Lit, bl.W)
	c := cin
	for i := 0; i < bl.W; i++ {
		axb := bl.xor2(a[i], b[i])
		out[i] = bl.xor2(axb, c)
		if i < bl.W-1 { // last carry is discarded
			c = bl.or2(bl.and2(a[i], b[i]), bl.and2(axb, c))
		}
	}
	return out
}

// multiplier returns a*b truncated to W bits (shift-add).
func (bl *Blaster) multiplier(a, b []cnf.Lit) []cnf.Lit {
	acc := bl.constBits(0)
	for i := 0; i < bl.W; i++ {
		// partial = b[i] ? (a << i) : 0
		partial := make([]cnf.Lit, bl.W)
		for j := 0; j < bl.W; j++ {
			if j < i {
				partial[j] = bl.falseLit
			} else {
				partial[j] = bl.and2(b[i], a[j-i])
			}
		}
		acc = bl.adder(acc, partial, bl.falseLit)
	}
	return acc
}

func (bl *Blaster) eqBits(a, b []cnf.Lit) cnf.Lit {
	diffs := make([]cnf.Lit, bl.W)
	for i := 0; i < bl.W; i++ {
		diffs[i] = bl.xor2(a[i], b[i])
	}
	return bl.orN(diffs).Neg()
}

// signedLt returns a < b for two's-complement vectors: unsigned comparison
// with the sign bits flipped.
func (bl *Blaster) signedLt(a, b []cnf.Lit) cnf.Lit {
	lt := bl.falseLit
	for i := 0; i < bl.W; i++ {
		ai, bi := a[i], b[i]
		if i == bl.W-1 { // flip sign bits
			ai, bi = ai.Neg(), bi.Neg()
		}
		// lt = (¬ai ∧ bi) ∨ ((ai ↔ bi) ∧ lt)
		eq := bl.xor2(ai, bi).Neg()
		lt = bl.or2(bl.and2(ai.Neg(), bi), bl.and2(eq, lt))
	}
	return lt
}

// --- model extraction ---

// BoolValue reads the model value of boolean term t after a Sat result.
// Terms never blasted are evaluated structurally where possible.
func (bl *Blaster) BoolValue(t *term.Term) bool {
	return bl.s.LitTrue(bl.Bool(t))
}

// IntValue reads the model value of integer term t after a Sat result.
func (bl *Blaster) IntValue(t *term.Term) int64 {
	bs := bl.Bits(t)
	var v int64
	for i, b := range bs {
		if bl.s.LitTrue(b) {
			v |= 1 << uint(i)
		}
	}
	if v&(1<<uint(bl.W-1)) != 0 {
		v -= 1 << uint(bl.W)
	}
	return v
}

// MinInt and MaxInt return the representable signed range.
func (bl *Blaster) MinInt() int64 { return -(1 << uint(bl.W-1)) }

// MaxInt returns the largest representable signed value.
func (bl *Blaster) MaxInt() int64 { return 1<<uint(bl.W-1) - 1 }
