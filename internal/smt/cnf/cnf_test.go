package cnf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	v := Var(7)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Error("Var round-trip failed")
	}
	if p.Sign() || !n.Sign() {
		t.Error("sign bits wrong")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Error("negation is not an involution step")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Error("MkLit mismatch")
	}
}

func TestQuickLitNegInvolution(t *testing.T) {
	f := func(raw uint16) bool {
		v := Var(raw%1000 + 1)
		for _, l := range []Lit{PosLit(v), NegLit(v)} {
			if l.Neg().Neg() != l || l.Neg().Var() != l.Var() || l.Neg().Sign() == l.Sign() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormulaBasics(t *testing.T) {
	f := New()
	a, b := f.NewVar(), f.NewVar()
	if f.NumVars() != 2 {
		t.Errorf("NumVars = %d", f.NumVars())
	}
	f.AddClause(PosLit(a), NegLit(b))
	if f.NumClauses() != 1 {
		t.Errorf("NumClauses = %d", f.NumClauses())
	}
}

func TestTautologyDropped(t *testing.T) {
	f := New()
	a := f.NewVar()
	f.AddClause(PosLit(a), NegLit(a))
	if f.NumClauses() != 0 {
		t.Error("tautological clause should be dropped")
	}
}

func TestDuplicateLiteralsRemoved(t *testing.T) {
	f := New()
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(PosLit(a), PosLit(a), NegLit(b))
	if got := len(f.Clauses[0]); got != 2 {
		t.Errorf("clause length = %d, want 2", got)
	}
}

func TestDimacs(t *testing.T) {
	f := New()
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(PosLit(a), NegLit(b))
	f.AddClause(NegLit(a))
	out := f.Dimacs()
	if !strings.HasPrefix(out, "p cnf 2 2\n") {
		t.Errorf("bad header: %q", out)
	}
	if !strings.Contains(out, "1 -2 0") || !strings.Contains(out, "-1 0") {
		t.Errorf("bad body: %q", out)
	}
}

func TestStringRendering(t *testing.T) {
	c := Clause{PosLit(3), NegLit(4)}
	if got := c.String(); got != "(3 -4)" {
		t.Errorf("clause string = %q", got)
	}
	if LitUndef.String() != "undef" {
		t.Error("undef rendering")
	}
}
