// Package cnf defines literals, clauses and formulas in conjunctive normal
// form, the input language of the CDCL SAT solver. Variables are dense
// positive integers; literals use the standard 2v / 2v+1 encoding so that a
// literal's negation is a single xor.
package cnf

import (
	"fmt"
	"strings"
)

// Var is a propositional variable, numbered from 1.
type Var int32

// Lit is a literal: variable 2v for positive, 2v+1 for negative.
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// MkLit returns the literal of v with the given sign (true = negated).
func MkLit(v Var, neg bool) Lit {
	if neg {
		return NegLit(v)
	}
	return PosLit(v)
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether the literal is negative.
func (l Lit) Sign() bool { return l&1 == 1 }

func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// Clause is a disjunction of literals.
type Clause []Lit

func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Formula is a CNF formula under construction: a set of clauses over
// variables 1..NumVars.
type Formula struct {
	numVars int32
	Clauses []Clause
}

// New returns an empty formula.
func New() *Formula { return &Formula{} }

// NumVars returns the highest variable number allocated.
func (f *Formula) NumVars() int { return int(f.numVars) }

// NewVar allocates a fresh variable.
func (f *Formula) NewVar() Var {
	f.numVars++
	return Var(f.numVars)
}

// AddClause appends a clause. The clause is copied; the caller may reuse the
// slice. Tautological clauses (containing l and ¬l) are dropped and
// duplicate literals removed.
func (f *Formula) AddClause(lits ...Lit) {
	seen := make(map[Lit]struct{}, len(lits))
	out := make(Clause, 0, len(lits))
	for _, l := range lits {
		if _, ok := seen[l.Neg()]; ok {
			return // tautology
		}
		if _, ok := seen[l]; ok {
			continue
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	f.Clauses = append(f.Clauses, out)
}

// NumClauses returns the clause count.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Dimacs renders the formula in DIMACS CNF format, the standard SAT solver
// interchange format.
func (f *Formula) Dimacs() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", f.numVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			if l.Sign() {
				fmt.Fprintf(&b, "-%d ", l.Var())
			} else {
				fmt.Fprintf(&b, "%d ", l.Var())
			}
		}
		b.WriteString("0\n")
	}
	return b.String()
}
