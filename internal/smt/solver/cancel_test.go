package solver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"buffy/internal/smt/term"
)

// hardInstance asserts a term-level pigeonhole principle PHP(10,9):
// unsat, and exponentially hard for CDCL without symmetry breaking, so a
// fresh solve reliably outlives the test's cancellation window.
func hardInstance(s *Solver) {
	const pigeons, holes = 10, 9
	b := s.Builder()
	p := make([][]*term.Term, pigeons)
	for i := range p {
		p[i] = make([]*term.Term, holes)
		for h := range p[i] {
			p[i][h] = b.Var(fmt.Sprintf("p%d_%d", i, h), term.Bool)
		}
		s.Assert(b.Or(p[i]...)) // each pigeon sits somewhere
	}
	for h := 0; h < holes; h++ {
		for i := 0; i < pigeons; i++ {
			for j := i + 1; j < pigeons; j++ {
				s.Assert(b.Not(b.And(p[i][h], p[j][h]))) // no sharing
			}
		}
	}
}

func TestCheckContextCancel(t *testing.T) {
	s := New(Options{Width: 12})
	hardInstance(s)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- s.CheckContext(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancelAt := time.Now()
	cancel()
	select {
	case got := <-done:
		// The instance is unsat; if the search finished before the cancel
		// landed, Unsat is the honest answer — both outcomes are legal,
		// what matters is that the call returned promptly.
		if got != Unknown && got != Unsat {
			t.Fatalf("got %v, want unknown or unsat", got)
		}
		if elapsed := time.Since(cancelAt); elapsed > 2*time.Second {
			t.Errorf("check took %v to honour cancellation", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CheckContext ignored cancellation")
	}
}

func TestCheckContextDeadline(t *testing.T) {
	s := New(Options{Width: 12})
	hardInstance(s)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	got := s.CheckContext(ctx)
	if got != Unknown && got != Unsat {
		t.Fatalf("got %v, want unknown or unsat", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline ignored: check ran %v", elapsed)
	}
}

// TestCheckAssumingContextBackground pins that the plain entry points
// still work through the context path (nil Done channel).
func TestCheckAssumingContextBackground(t *testing.T) {
	s := New(Options{Width: 12})
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Ge(x, b.IntConst(5)))
	if got := s.CheckAssumingContext(context.Background(), b.Le(x, b.IntConst(10))); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if got := s.CheckAssumingContext(context.Background(), b.Le(x, b.IntConst(4))); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}
