package solver

import (
	"context"
	"math/rand"
	"testing"

	"buffy/internal/smt/sat"
	"buffy/internal/smt/term"
)

func newSolver() *Solver { return New(Options{Width: 12}) }

func TestTrivialSat(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Eq(x, b.IntConst(42)))
	if got := s.Check(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if v := s.IntValue(x); v != 42 {
		t.Errorf("x = %d, want 42", v)
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Eq(x, b.IntConst(1)))
	s.Assert(b.Eq(x, b.IntConst(2)))
	if got := s.Check(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestArithmetic(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	y := b.Var("y", term.Int)
	// x + y == 10, x - y == 4  =>  x=7, y=3
	s.Assert(b.Eq(b.Add(x, y), b.IntConst(10)))
	s.Assert(b.Eq(b.Sub(x, y), b.IntConst(4)))
	if got := s.Check(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if xv, yv := s.IntValue(x), s.IntValue(y); xv != 7 || yv != 3 {
		t.Errorf("x=%d y=%d, want 7,3", xv, yv)
	}
}

func TestMultiplication(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	y := b.Var("y", term.Int)
	// Bound the factors so the product cannot wrap at width 12: without the
	// upper bounds, wrap-around solutions like 2013*2047 ≡ 35 (mod 4096)
	// are legitimate models.
	s.Assert(b.Eq(b.Mul(x, y), b.IntConst(35)))
	s.Assert(b.Lt(b.IntConst(1), x))
	s.Assert(b.Lt(x, y))
	s.Assert(b.Lt(y, b.IntConst(36)))
	if got := s.Check(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	xv, yv := s.IntValue(x), s.IntValue(y)
	if xv*yv != 35 || xv <= 1 || xv >= yv {
		t.Errorf("x=%d y=%d does not satisfy constraints", xv, yv)
	}
}

func TestSignedComparison(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Lt(x, b.IntConst(0)))
	s.Assert(b.Lt(b.IntConst(-5), x))
	if got := s.Check(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if v := s.IntValue(x); v <= -5 || v >= 0 {
		t.Errorf("x = %d, want -5 < x < 0", v)
	}
}

func TestWrapAround(t *testing.T) {
	// At width 12, 2047 + 1 wraps to -2048; the solver and term.Eval must
	// agree on this.
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Eq(x, b.Add(b.IntConst(2047), b.IntConst(1))))
	// Builder folds 2047+1 to the unbounded 2048 constant; blasting wraps it.
	if got := s.Check(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if v := s.IntValue(x); v != -2048 {
		t.Errorf("x = %d, want -2048", v)
	}
}

func TestIte(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	p := b.Var("p", term.Bool)
	x := b.Var("x", term.Int)
	s.Assert(b.Eq(x, b.Ite(p, b.IntConst(10), b.IntConst(20))))
	s.Assert(b.Eq(x, b.IntConst(20)))
	if got := s.Check(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if s.BoolValue(p) {
		t.Error("p must be false to select 20")
	}
}

func TestCheckAssuming(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Le(b.IntConst(0), x))
	s.Assert(b.Le(x, b.IntConst(10)))

	if got := s.CheckAssuming(b.Gt(x, b.IntConst(10))); got != Unsat {
		t.Fatalf("x>10 under 0<=x<=10: got %v, want unsat", got)
	}
	// Assumptions must not stick.
	if got := s.CheckAssuming(b.Eq(x, b.IntConst(10))); got != Sat {
		t.Fatalf("x==10: got %v, want sat", got)
	}
	if got := s.Check(); got != Sat {
		t.Fatalf("no assumptions: got %v, want sat", got)
	}
}

func TestIncrementalNarrowing(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Le(b.IntConst(0), x))
	s.Assert(b.Le(x, b.IntConst(3)))
	for v := int64(3); v >= 0; v-- {
		if got := s.Check(); got != Sat {
			t.Fatalf("narrowing at %d: got %v, want sat", v, got)
		}
		// Exclude the current model value of x.
		s.Assert(b.Neq(x, b.IntConst(s.IntValue(x))))
	}
	if got := s.Check(); got != Unsat {
		t.Fatalf("after excluding all 4 values: got %v, want unsat", got)
	}
}

func TestModelSatisfiesAssertions(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	y := b.Var("y", term.Int)
	p := b.Var("p", term.Bool)
	s.Assert(b.Or(b.Eq(b.Add(x, y), b.IntConst(12)), p))
	s.Assert(b.Not(p))
	s.Assert(b.Lt(x, y))
	if got := s.Check(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	m := s.Model()
	for _, a := range s.Assertions() {
		if v := term.Eval(a, m, s.Width()); !v.Bool {
			t.Errorf("assertion %s not satisfied by model", a)
		}
	}
}

func TestAssertFalse(t *testing.T) {
	s := newSolver()
	s.Assert(s.Builder().False())
	if got := s.Check(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

// randomExpr builds a random integer expression over the given variables.
func randomExpr(b *term.Builder, rng *rand.Rand, vars []*term.Term, depth int) *term.Term {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return b.IntConst(int64(rng.Intn(21) - 10))
	}
	x := randomExpr(b, rng, vars, depth-1)
	y := randomExpr(b, rng, vars, depth-1)
	switch rng.Intn(5) {
	case 0:
		return b.Add(x, y)
	case 1:
		return b.Sub(x, y)
	case 2:
		return b.Mul(x, y)
	case 3:
		return b.Neg(x)
	default:
		return b.Ite(b.Le(x, y), x, y)
	}
}

// TestSolverAgreesWithEval is the core differential property: for random
// expressions e and random concrete inputs, asserting (vars = inputs) and
// (r = e) must be Sat with r equal to term.Eval's wrapped result.
func TestSolverAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width = 12
	for iter := 0; iter < 60; iter++ {
		s := New(Options{Width: width})
		b := s.Builder()
		x := b.Var("x", term.Int)
		y := b.Var("y", term.Int)
		z := b.Var("z", term.Int)
		vars := []*term.Term{x, y, z}

		e := randomExpr(b, rng, vars, 4)
		asg := term.Assignment{}
		for _, v := range vars {
			val := int64(rng.Intn(41) - 20)
			asg[v] = term.IntValue(val)
			s.Assert(b.Eq(v, b.IntConst(val)))
		}
		r := b.Var("r", term.Int)
		s.Assert(b.Eq(r, e))
		if got := s.Check(); got != Sat {
			t.Fatalf("iter %d: got %v, want sat for %s", iter, got, e)
		}
		want := term.Eval(e, asg, width).Int
		if got := s.IntValue(r); got != want {
			t.Fatalf("iter %d: solver r=%d, eval=%d for %s under %v", iter, got, want, e, asg)
		}
	}
}

// TestSolverAgreesWithEvalBool does the same for boolean formulas.
func TestSolverAgreesWithEvalBool(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const width = 8
	for iter := 0; iter < 60; iter++ {
		s := New(Options{Width: width})
		b := s.Builder()
		x := b.Var("x", term.Int)
		y := b.Var("y", term.Int)
		vars := []*term.Term{x, y}

		e1 := randomExpr(b, rng, vars, 3)
		e2 := randomExpr(b, rng, vars, 3)
		var f *term.Term
		switch rng.Intn(4) {
		case 0:
			f = b.Lt(e1, e2)
		case 1:
			f = b.Le(e1, e2)
		case 2:
			f = b.Eq(e1, e2)
		default:
			f = b.And(b.Le(e1, e2), b.Neq(e1, e2))
		}
		asg := term.Assignment{}
		for _, v := range vars {
			val := int64(rng.Intn(31) - 15)
			asg[v] = term.IntValue(val)
			s.Assert(b.Eq(v, b.IntConst(val)))
		}
		p := b.Var("p", term.Bool)
		s.Assert(b.Iff(p, f))
		if got := s.Check(); got != Sat {
			t.Fatalf("iter %d: got %v, want sat", iter, got)
		}
		want := term.Eval(f, asg, width).Bool
		if got := s.BoolValue(p); got != want {
			t.Fatalf("iter %d: solver p=%v, eval=%v for %s", iter, got, want, f)
		}
	}
}

func TestStatsAndSizes(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Eq(b.Mul(x, x), b.IntConst(49)))
	s.Assert(b.Le(b.IntConst(-60), x))
	s.Assert(b.Le(x, b.IntConst(60))) // exclude wrap-around roots
	if s.Check() != Sat {
		t.Fatal("x*x=49 should be sat")
	}
	if v := s.IntValue(x); v != 7 && v != -7 {
		t.Errorf("x = %d, want ±7", v)
	}
	if s.NumClauses() == 0 || s.NumVars() == 0 {
		t.Error("expected nonzero clause/var counts")
	}
}

func BenchmarkMultiplicationFactoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(Options{Width: 12})
		bld := s.Builder()
		x := bld.Var("x", term.Int)
		y := bld.Var("y", term.Int)
		s.Assert(bld.Eq(bld.Mul(x, y), bld.IntConst(391))) // 17*23
		s.Assert(bld.Lt(bld.IntConst(1), x))
		s.Assert(bld.Lt(y, bld.IntConst(50)))
		s.Assert(bld.Le(x, y))
		if s.Check() != Sat {
			b.Fatal("expected sat")
		}
	}
}

// TestForkSharesEncoding pins the portfolio fork: forks decide the same
// asserted problem under their own heuristics, read independent models,
// and leave the parent untouched.
func TestForkSharesEncoding(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	y := b.Var("y", term.Int)
	s.Assert(b.Eq(b.Add(x, y), b.IntConst(10)))
	s.Assert(b.Eq(b.Sub(x, y), b.IntConst(4)))
	// Rule out wrap-around models so x=7, y=3 is the unique solution.
	s.Assert(b.Ge(x, b.IntConst(0)))
	s.Assert(b.Ge(y, b.IntConst(0)))

	f1 := s.Fork(sat.Options{InitPhase: true, GeomRestarts: true})
	f2 := s.Fork(sat.Options{RandSeed: 9, RandFreq: 0.2})
	for i, f := range []*Solver{f1, f2} {
		if got := f.CheckContextNoModel(context.Background()); got != Sat {
			t.Fatalf("fork %d: got %v, want sat", i, got)
		}
		f.SnapshotModel()
		if xv, yv := f.IntValue(x), f.IntValue(y); xv != 7 || yv != 3 {
			t.Errorf("fork %d: x=%d y=%d, want 7,3", i, xv, yv)
		}
		if f.NumClauses() == 0 {
			t.Errorf("fork %d inherited no clauses", i)
		}
	}
	// The parent still solves independently after its forks.
	if got := s.Check(); got != Sat {
		t.Fatalf("parent after forks: got %v, want sat", got)
	}
	if xv := s.IntValue(x); xv != 7 {
		t.Errorf("parent x = %d, want 7", xv)
	}
}

// TestForkOfUnsat pins that forks inherit top-level inconsistency.
func TestForkOfUnsat(t *testing.T) {
	s := newSolver()
	b := s.Builder()
	x := b.Var("x", term.Int)
	s.Assert(b.Eq(x, b.IntConst(1)))
	s.Assert(b.Eq(x, b.IntConst(2)))
	if got := s.Fork(sat.Options{}).Check(); got != Unsat {
		t.Fatalf("fork of unsat parent: got %v, want unsat", got)
	}
}
