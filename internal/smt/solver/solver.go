// Package solver provides the user-facing SMT interface: assert boolean
// terms, check satisfiability, extract models. It plays the role Z3's API
// plays for FPerf — but implemented entirely on this repository's
// bit-blasting and CDCL SAT substrate.
//
// The solver is incremental in the "assert more, check again" direction:
// each Check reuses all clauses (including learnt clauses) from previous
// checks. Hypothetical queries are supported through CheckAssuming, which
// solves under assumption literals without committing them — the workhorse
// of the Houdini and k-induction engines.
package solver

import (
	"context"
	"time"

	"buffy/internal/smt/bitblast"
	"buffy/internal/smt/cnf"
	"buffy/internal/smt/sat"
	"buffy/internal/smt/term"
	"buffy/internal/telemetry"
)

// Result is the outcome of a Check.
type Result int

// Check outcomes.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Options configures a Solver.
type Options struct {
	// Width is the two's-complement bit width for integers.
	// Zero means bitblast.DefaultWidth.
	Width int
	// MaxConflicts bounds each Check; zero means unlimited.
	MaxConflicts int64
	// MaxPropagations bounds each Check's unit propagations (the closest
	// deterministic proxy for a CPU budget); zero means unlimited.
	MaxPropagations int64
	// MaxLearntBytes bounds the estimated learnt-clause memory per Check;
	// zero means unlimited.
	MaxLearntBytes int64
	// Timeout bounds each Check's wall time; zero means unlimited.
	Timeout time.Duration
	// Search configures the CDCL heuristics (restart schedule, VSIDS
	// decay, polarity, random branching, learnt-DB limits). The zero
	// value is the classic configuration; the portfolio layer races
	// diversified Search settings against each other.
	Search sat.Options
	// Progress, when non-nil, receives live search-effort counters from
	// every Check. The service attaches one per job so in-flight solves
	// can be polled; forks inherit it, so a portfolio race aggregates all
	// configs' effort into the same Progress.
	Progress *sat.Progress
}

// Solver is an incremental SMT solver over booleans and bounded integers.
type Solver struct {
	b    *term.Builder
	sat  *sat.Solver
	bl   *bitblast.Blaster
	opts Options

	asserted []*term.Term
	unsat    bool // top-level inconsistency detected during blasting

	// model holds variable values snapshotted at the last Sat result.
	// Snapshotting (rather than lazily reading SAT literals) keeps Value
	// safe for terms that were never blasted: they are evaluated
	// structurally over the snapshot.
	model term.Assignment
}

// New returns a Solver with a fresh term builder.
func New(opts Options) *Solver {
	if opts.Width == 0 {
		opts.Width = bitblast.DefaultWidth
	}
	s := &Solver{b: term.NewBuilder(), opts: opts}
	s.sat = sat.NewWithOptions(opts.Search)
	s.bl = bitblast.New(opts.Width, s.sat)
	return s
}

// Builder returns the solver's term builder. All terms asserted must come
// from this builder.
func (s *Solver) Builder() *term.Builder { return s.b }

// Fork returns a solver over the same asserted problem searching under
// different CDCL heuristics: the CNF is cloned (problem clauses and
// top-level facts, not learnt clauses) and the bit-blasting caches are
// copied, so the expensive encoding is shared rather than redone. Forks
// exist for portfolio racing — they may Check and read models, but must
// not Assert, and forking is only safe while neither the parent nor any
// fork is mid-Check. Because forks share the parent's term builder,
// concurrent forks must serialize SnapshotModel and model reads (see
// CheckContextNoModel).
func (s *Solver) Fork(search sat.Options) *Solver {
	opts := s.opts
	opts.Search = search
	f := &Solver{b: s.b, opts: opts, asserted: s.asserted, unsat: s.unsat}
	f.sat = s.sat.CloneProblem(search)
	f.bl = s.bl.Fork(f.sat)
	return f
}

// Width returns the integer bit width.
func (s *Solver) Width() int { return s.opts.Width }

// SetProgress replaces the live-progress sink used by subsequent checks.
// A warm session answers queries for many jobs on one solver; each query
// attaches the requesting job's Progress for its duration. Not safe to
// call while a check is in flight.
func (s *Solver) SetProgress(p *sat.Progress) { s.opts.Progress = p }

// Assert adds a boolean term to the assertion set.
func (s *Solver) Assert(t *term.Term) {
	s.asserted = append(s.asserted, t)
	if t == s.b.False() {
		s.unsat = true
		return
	}
	s.bl.Assert(t)
}

// Assertions returns the asserted terms in order.
func (s *Solver) Assertions() []*term.Term { return s.asserted }

// Check decides satisfiability of the asserted set.
func (s *Solver) Check() Result {
	return s.CheckAssuming()
}

// CheckAssuming decides satisfiability of the asserted set together with
// the given boolean terms, without adding them permanently.
func (s *Solver) CheckAssuming(assumptions ...*term.Term) Result {
	return s.CheckAssumingContext(context.Background(), assumptions...)
}

// CheckContext is Check with cooperative cancellation: the SAT search
// aborts (returning Unknown) soon after ctx is cancelled, and the
// context's deadline — if earlier than Options.Timeout — bounds the call.
func (s *Solver) CheckContext(ctx context.Context) Result {
	return s.CheckAssumingContext(ctx)
}

// CheckContextNoModel is CheckContext without the automatic model
// snapshot after a Sat result: the caller invokes SnapshotModel itself
// before reading values. Portfolio forks need this split because they
// share one term builder — the search phases run concurrently, but the
// snapshot (which walks the shared builder's variables) must be
// serialized by the caller.
func (s *Solver) CheckContextNoModel(ctx context.Context) Result {
	return s.checkAssuming(ctx, false)
}

// SnapshotModel publishes the model of the last Sat result for Value
// reads. Check and CheckAssuming call it automatically; it is exported
// for CheckContextNoModel callers, which defer it.
func (s *Solver) SnapshotModel() { s.snapshotModel() }

// CheckAssumingContext is CheckAssuming with cooperative cancellation.
func (s *Solver) CheckAssumingContext(ctx context.Context, assumptions ...*term.Term) Result {
	return s.checkAssuming(ctx, true, assumptions...)
}

func (s *Solver) checkAssuming(ctx context.Context, snapshot bool, assumptions ...*term.Term) Result {
	if s.unsat {
		return Unsat
	}
	lits := make([]cnf.Lit, 0, len(assumptions))
	for _, a := range assumptions {
		if a == s.b.False() {
			return Unsat
		}
		if a == s.b.True() {
			continue
		}
		lits = append(lits, s.bl.Bool(a))
	}
	lim := sat.Limits{
		MaxConflicts:    s.opts.MaxConflicts,
		MaxPropagations: s.opts.MaxPropagations,
		MaxLearntBytes:  s.opts.MaxLearntBytes,
		Cancel:          ctx.Done(),
		Progress:        s.opts.Progress,
	}
	if s.opts.Timeout > 0 {
		lim.Deadline = time.Now().Add(s.opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (lim.Deadline.IsZero() || d.Before(lim.Deadline)) {
		lim.Deadline = d
	}
	_, span := telemetry.StartSpan(ctx, "search")
	lim.Span = span
	res := s.sat.SolveLimited(lim, lits...)
	if span != nil {
		st := s.sat.Stats()
		span.SetAttrs(
			telemetry.String("result", res.String()),
			telemetry.Int("conflicts", st.Conflicts),
			telemetry.Int("decisions", st.Decisions))
		span.End()
	}
	switch res {
	case sat.Sat:
		if snapshot {
			s.snapshotModel()
		}
		return Sat
	case sat.Unsat:
		return Unsat
	default:
		return Unknown
	}
}

// snapshotModel reads every builder variable's value out of the SAT
// assignment. Variables that never reached the SAT solver read as 0/false,
// which is a legal completion since they are unconstrained.
func (s *Solver) snapshotModel() {
	m := make(term.Assignment, 64)
	for _, v := range s.b.Vars() {
		if v.Sort() == term.Bool {
			m[v] = term.BoolValue(s.bl.BoolValue(v))
		} else {
			m[v] = term.IntValue(s.bl.IntValue(v))
		}
	}
	s.model = m
}

// BoolValue returns the model value of a boolean term after Sat. The term
// is evaluated over the snapshotted variable assignment, so any term built
// from this solver's builder may be queried, whether or not it was asserted.
func (s *Solver) BoolValue(t *term.Term) bool { return s.Value(t).Bool }

// IntValue returns the model value of an integer term after Sat.
func (s *Solver) IntValue(t *term.Term) int64 { return s.Value(t).Int }

// Value returns the model value of t after Sat.
func (s *Solver) Value(t *term.Term) term.Value {
	if s.model == nil {
		panic("solver: Value called before a Sat result")
	}
	return term.Eval(t, s.model, s.opts.Width)
}

// Model returns the values of all variables created in the builder as of
// the last Sat result, suitable for term.Eval-based validation.
func (s *Solver) Model() term.Assignment { return s.model }

// Stats returns the underlying SAT search statistics.
func (s *Solver) Stats() sat.Stats { return s.sat.Stats() }

// StopReason reports why the last Check returned Unknown (which resource
// budget fired, the deadline, or cancellation); sat.StopNone otherwise.
func (s *Solver) StopReason() sat.StopReason { return s.sat.StopReason() }

// NumClauses returns the number of problem clauses blasted so far.
func (s *Solver) NumClauses() int { return s.sat.NumClauses() }

// NumVars returns the number of SAT variables allocated so far.
func (s *Solver) NumVars() int { return s.sat.NumVarsAllocated() }
