package term

import "fmt"

// Value is a concrete value for a term: a bool or an int64.
type Value struct {
	Sort Sort
	Bool bool
	Int  int64
}

// BoolValue wraps a bool as a Value.
func BoolValue(v bool) Value { return Value{Sort: Bool, Bool: v} }

// IntValue wraps an int64 as a Value.
func IntValue(v int64) Value { return Value{Sort: Int, Int: v} }

func (v Value) String() string {
	if v.Sort == Bool {
		return fmt.Sprintf("%t", v.Bool)
	}
	return fmt.Sprintf("%d", v.Int)
}

// Assignment maps variables to concrete values.
type Assignment map[*Term]Value

// Eval evaluates t under the assignment. Unassigned variables default to
// false/0 (the solver's convention for don't-care variables). Integer
// arithmetic wraps to width bits in two's complement, matching the
// bit-blasted semantics; pass width <= 0 for unbounded evaluation.
func Eval(t *Term, a Assignment, width int) Value {
	cache := make(map[*Term]Value)
	return eval(t, a, width, cache)
}

func wrap(v int64, width int) int64 {
	if width <= 0 || width >= 64 {
		return v
	}
	mask := int64(1)<<uint(width) - 1
	v &= mask
	if v&(1<<uint(width-1)) != 0 {
		v -= 1 << uint(width)
	}
	return v
}

func eval(t *Term, a Assignment, width int, cache map[*Term]Value) Value {
	if v, ok := cache[t]; ok {
		return v
	}
	var v Value
	switch t.kind {
	case KindIntConst:
		v = IntValue(wrap(t.ival, width))
	case KindBoolConst:
		v = BoolValue(t.ival != 0)
	case KindVar:
		if av, ok := a[t]; ok {
			v = av
		} else if t.sort == Bool {
			v = BoolValue(false)
		} else {
			v = IntValue(0)
		}
	case KindNot:
		v = BoolValue(!eval(t.args[0], a, width, cache).Bool)
	case KindAnd:
		r := true
		for _, x := range t.args {
			r = r && eval(x, a, width, cache).Bool
		}
		v = BoolValue(r)
	case KindOr:
		r := false
		for _, x := range t.args {
			r = r || eval(x, a, width, cache).Bool
		}
		v = BoolValue(r)
	case KindXor:
		v = BoolValue(eval(t.args[0], a, width, cache).Bool != eval(t.args[1], a, width, cache).Bool)
	case KindImplies:
		v = BoolValue(!eval(t.args[0], a, width, cache).Bool || eval(t.args[1], a, width, cache).Bool)
	case KindIff:
		v = BoolValue(eval(t.args[0], a, width, cache).Bool == eval(t.args[1], a, width, cache).Bool)
	case KindEq:
		x, y := eval(t.args[0], a, width, cache), eval(t.args[1], a, width, cache)
		if x.Sort == Bool {
			v = BoolValue(x.Bool == y.Bool)
		} else {
			v = BoolValue(x.Int == y.Int)
		}
	case KindLt:
		v = BoolValue(eval(t.args[0], a, width, cache).Int < eval(t.args[1], a, width, cache).Int)
	case KindLe:
		v = BoolValue(eval(t.args[0], a, width, cache).Int <= eval(t.args[1], a, width, cache).Int)
	case KindAdd:
		var s int64
		for _, x := range t.args {
			s = wrap(s+eval(x, a, width, cache).Int, width)
		}
		v = IntValue(s)
	case KindSub:
		v = IntValue(wrap(eval(t.args[0], a, width, cache).Int-eval(t.args[1], a, width, cache).Int, width))
	case KindMul:
		v = IntValue(wrap(eval(t.args[0], a, width, cache).Int*eval(t.args[1], a, width, cache).Int, width))
	case KindNeg:
		v = IntValue(wrap(-eval(t.args[0], a, width, cache).Int, width))
	case KindIte:
		if eval(t.args[0], a, width, cache).Bool {
			v = eval(t.args[1], a, width, cache)
		} else {
			v = eval(t.args[2], a, width, cache)
		}
	default:
		panic(fmt.Sprintf("term: Eval: unhandled kind %v", t.kind))
	}
	cache[t] = v
	return v
}
