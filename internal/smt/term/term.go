// Package term implements a hash-consed term DAG for quantifier-free
// formulas over booleans and bounded integers. It is the common currency of
// the Buffy compiler: every back-end either consumes terms directly (the
// bit-blasting solver) or pretty-prints them (the SMT-LIB printer).
//
// Terms are immutable and created through a Builder, which interns
// structurally identical terms so that pointer equality coincides with
// structural equality. The Builder also performs light local simplification
// (constant folding, neutral-element elimination, double negation) so that
// downstream encodings stay small.
package term

import (
	"fmt"
	"strings"
)

// Sort is the type of a term.
type Sort uint8

// The two sorts of the Buffy term language. Integers are conceptually
// unbounded here; the bit-blasting layer fixes a two's-complement width.
const (
	Bool Sort = iota
	Int
)

func (s Sort) String() string {
	switch s {
	case Bool:
		return "Bool"
	case Int:
		return "Int"
	}
	return fmt.Sprintf("Sort(%d)", uint8(s))
}

// Kind identifies the operator at the root of a term.
type Kind uint8

// Term kinds. Comparison operators are normalized by the Builder so that
// only Eq, Lt and Le appear in built terms.
const (
	KindInvalid Kind = iota
	KindIntConst
	KindBoolConst
	KindVar

	KindNot
	KindAnd
	KindOr
	KindXor
	KindImplies
	KindIff

	KindEq // polymorphic: both args same sort
	KindLt
	KindLe

	KindAdd
	KindSub
	KindMul
	KindNeg

	KindIte // args: cond, then, else (then/else same sort)
)

var kindNames = map[Kind]string{
	KindIntConst:  "int",
	KindBoolConst: "bool",
	KindVar:       "var",
	KindNot:       "not",
	KindAnd:       "and",
	KindOr:        "or",
	KindXor:       "xor",
	KindImplies:   "=>",
	KindIff:       "iff",
	KindEq:        "=",
	KindLt:        "<",
	KindLe:        "<=",
	KindAdd:       "+",
	KindSub:       "-",
	KindMul:       "*",
	KindNeg:       "neg",
	KindIte:       "ite",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Term is a node in the hash-consed DAG. Do not construct Terms directly;
// use a Builder. Two terms built by the same Builder are structurally equal
// iff they are pointer-equal.
type Term struct {
	kind Kind
	sort Sort
	args []*Term
	ival int64  // KindIntConst value, or 1/0 for KindBoolConst
	name string // KindVar name
	id   int32  // unique per Builder, creation order
}

// Kind returns the root operator.
func (t *Term) Kind() Kind { return t.kind }

// Sort returns the term's sort.
func (t *Term) Sort() Sort { return t.sort }

// Args returns the operand slice. Callers must not mutate it.
func (t *Term) Args() []*Term { return t.args }

// Arg returns the i-th operand.
func (t *Term) Arg(i int) *Term { return t.args[i] }

// NumArgs returns the operand count.
func (t *Term) NumArgs() int { return len(t.args) }

// IntVal returns the value of an integer constant term.
func (t *Term) IntVal() int64 { return t.ival }

// BoolVal returns the value of a boolean constant term.
func (t *Term) BoolVal() bool { return t.ival != 0 }

// Name returns the name of a variable term.
func (t *Term) Name() string { return t.name }

// ID returns the builder-unique id (creation order). Useful as a dense map
// key in downstream passes.
func (t *Term) ID() int32 { return t.id }

// IsConst reports whether the term is an integer or boolean constant.
func (t *Term) IsConst() bool { return t.kind == KindIntConst || t.kind == KindBoolConst }

// String renders the term as an s-expression. Intended for debugging; the
// smtlib package produces standard-conforming output.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	switch t.kind {
	case KindIntConst:
		fmt.Fprintf(b, "%d", t.ival)
	case KindBoolConst:
		fmt.Fprintf(b, "%t", t.ival != 0)
	case KindVar:
		b.WriteString(t.name)
	default:
		b.WriteByte('(')
		b.WriteString(t.kind.String())
		for _, a := range t.args {
			b.WriteByte(' ')
			a.write(b)
		}
		b.WriteByte(')')
	}
}

// key is the interning key for a term.
type key struct {
	kind Kind
	sort Sort
	ival int64
	name string
	a0   *Term
	a1   *Term
	a2   *Term
	rest string // ids of args beyond 3, rare
}

// Builder interns terms and performs local simplification. The zero value is
// not usable; call NewBuilder.
type Builder struct {
	interned map[key]*Term
	vars     map[string]*Term
	next     int32

	trueT  *Term
	falseT *Term
}

// NewBuilder returns an empty Builder with interned true/false constants.
func NewBuilder() *Builder {
	b := &Builder{
		interned: make(map[key]*Term, 1024),
		vars:     make(map[string]*Term, 64),
	}
	b.trueT = b.mk(KindBoolConst, Bool, nil, 1, "")
	b.falseT = b.mk(KindBoolConst, Bool, nil, 0, "")
	return b
}

// NumTerms returns the number of distinct terms created so far.
func (b *Builder) NumTerms() int { return int(b.next) }

func (b *Builder) mk(k Kind, s Sort, args []*Term, ival int64, name string) *Term {
	ky := key{kind: k, sort: s, ival: ival, name: name}
	switch len(args) {
	case 0:
	case 1:
		ky.a0 = args[0]
	case 2:
		ky.a0, ky.a1 = args[0], args[1]
	case 3:
		ky.a0, ky.a1, ky.a2 = args[0], args[1], args[2]
	default:
		ky.a0, ky.a1, ky.a2 = args[0], args[1], args[2]
		var sb strings.Builder
		for _, a := range args[3:] {
			fmt.Fprintf(&sb, "%d,", a.id)
		}
		ky.rest = sb.String()
	}
	if t, ok := b.interned[ky]; ok {
		return t
	}
	t := &Term{kind: k, sort: s, args: args, ival: ival, name: name, id: b.next}
	b.next++
	b.interned[ky] = t
	return t
}

// True returns the boolean constant true.
func (b *Builder) True() *Term { return b.trueT }

// False returns the boolean constant false.
func (b *Builder) False() *Term { return b.falseT }

// BoolConst returns the boolean constant v.
func (b *Builder) BoolConst(v bool) *Term {
	if v {
		return b.trueT
	}
	return b.falseT
}

// IntConst returns the integer constant v.
func (b *Builder) IntConst(v int64) *Term {
	return b.mk(KindIntConst, Int, nil, v, "")
}

// Var returns the variable with the given name and sort, creating it on
// first use. Re-declaring a name with a different sort panics: variable
// names are the interface between compiler passes and must stay consistent.
func (b *Builder) Var(name string, s Sort) *Term {
	if t, ok := b.vars[name]; ok {
		if t.sort != s {
			panic(fmt.Sprintf("term: variable %q redeclared with sort %v (was %v)", name, s, t.sort))
		}
		return t
	}
	t := b.mk(KindVar, s, nil, 0, name)
	b.vars[name] = t
	return t
}

// LookupVar returns the variable with the given name, or nil.
func (b *Builder) LookupVar(name string) *Term { return b.vars[name] }

// Vars returns all variables created so far, in creation order.
func (b *Builder) Vars() []*Term {
	out := make([]*Term, 0, len(b.vars))
	for _, v := range b.vars {
		out = append(out, v)
	}
	// creation order
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].id > out[j].id; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Not returns the negation of t, folding constants and double negation.
func (b *Builder) Not(t *Term) *Term {
	mustSort(t, Bool)
	switch {
	case t == b.trueT:
		return b.falseT
	case t == b.falseT:
		return b.trueT
	case t.kind == KindNot:
		return t.args[0]
	}
	return b.mk(KindNot, Bool, []*Term{t}, 0, "")
}

// And returns the conjunction of ts, dropping true operands and
// short-circuiting on false. And() is true.
func (b *Builder) And(ts ...*Term) *Term {
	flat := make([]*Term, 0, len(ts))
	for _, t := range ts {
		mustSort(t, Bool)
		switch {
		case t == b.falseT:
			return b.falseT
		case t == b.trueT:
			// drop
		case t.kind == KindAnd:
			flat = append(flat, t.args...)
		default:
			flat = append(flat, t)
		}
	}
	flat = dedup(flat)
	switch len(flat) {
	case 0:
		return b.trueT
	case 1:
		return flat[0]
	}
	return b.mk(KindAnd, Bool, flat, 0, "")
}

// Or returns the disjunction of ts, dropping false operands and
// short-circuiting on true. Or() is false.
func (b *Builder) Or(ts ...*Term) *Term {
	flat := make([]*Term, 0, len(ts))
	for _, t := range ts {
		mustSort(t, Bool)
		switch {
		case t == b.trueT:
			return b.trueT
		case t == b.falseT:
			// drop
		case t.kind == KindOr:
			flat = append(flat, t.args...)
		default:
			flat = append(flat, t)
		}
	}
	flat = dedup(flat)
	switch len(flat) {
	case 0:
		return b.falseT
	case 1:
		return flat[0]
	}
	return b.mk(KindOr, Bool, flat, 0, "")
}

// Xor returns exclusive or.
func (b *Builder) Xor(x, y *Term) *Term {
	mustSort(x, Bool)
	mustSort(y, Bool)
	switch {
	case x == b.falseT:
		return y
	case y == b.falseT:
		return x
	case x == b.trueT:
		return b.Not(y)
	case y == b.trueT:
		return b.Not(x)
	case x == y:
		return b.falseT
	}
	if x.id > y.id {
		x, y = y, x
	}
	return b.mk(KindXor, Bool, []*Term{x, y}, 0, "")
}

// Implies returns x => y.
func (b *Builder) Implies(x, y *Term) *Term {
	mustSort(x, Bool)
	mustSort(y, Bool)
	switch {
	case x == b.trueT:
		return y
	case x == b.falseT, y == b.trueT:
		return b.trueT
	case y == b.falseT:
		return b.Not(x)
	case x == y:
		return b.trueT
	}
	return b.mk(KindImplies, Bool, []*Term{x, y}, 0, "")
}

// Iff returns x <=> y.
func (b *Builder) Iff(x, y *Term) *Term {
	mustSort(x, Bool)
	mustSort(y, Bool)
	switch {
	case x == y:
		return b.trueT
	case x == b.trueT:
		return y
	case y == b.trueT:
		return x
	case x == b.falseT:
		return b.Not(y)
	case y == b.falseT:
		return b.Not(x)
	}
	if x.id > y.id {
		x, y = y, x
	}
	return b.mk(KindIff, Bool, []*Term{x, y}, 0, "")
}

// Eq returns x == y for two terms of the same sort.
func (b *Builder) Eq(x, y *Term) *Term {
	if x.sort != y.sort {
		panic(fmt.Sprintf("term: Eq sort mismatch: %v vs %v", x.sort, y.sort))
	}
	if x == y {
		return b.trueT
	}
	if x.sort == Bool {
		return b.Iff(x, y)
	}
	if x.kind == KindIntConst && y.kind == KindIntConst {
		return b.BoolConst(x.ival == y.ival)
	}
	if x.id > y.id {
		x, y = y, x
	}
	return b.mk(KindEq, Bool, []*Term{x, y}, 0, "")
}

// Neq returns x != y.
func (b *Builder) Neq(x, y *Term) *Term { return b.Not(b.Eq(x, y)) }

// Lt returns x < y (signed).
func (b *Builder) Lt(x, y *Term) *Term {
	mustSort(x, Int)
	mustSort(y, Int)
	if x == y {
		return b.falseT
	}
	if x.kind == KindIntConst && y.kind == KindIntConst {
		return b.BoolConst(x.ival < y.ival)
	}
	return b.mk(KindLt, Bool, []*Term{x, y}, 0, "")
}

// Le returns x <= y (signed).
func (b *Builder) Le(x, y *Term) *Term {
	mustSort(x, Int)
	mustSort(y, Int)
	if x == y {
		return b.trueT
	}
	if x.kind == KindIntConst && y.kind == KindIntConst {
		return b.BoolConst(x.ival <= y.ival)
	}
	return b.mk(KindLe, Bool, []*Term{x, y}, 0, "")
}

// Gt returns x > y, normalized to Lt.
func (b *Builder) Gt(x, y *Term) *Term { return b.Lt(y, x) }

// Ge returns x >= y, normalized to Le.
func (b *Builder) Ge(x, y *Term) *Term { return b.Le(y, x) }

// Add returns the sum of ts. Add() is 0.
func (b *Builder) Add(ts ...*Term) *Term {
	var cst int64
	flat := make([]*Term, 0, len(ts))
	for _, t := range ts {
		mustSort(t, Int)
		switch {
		case t.kind == KindIntConst:
			cst += t.ival
		case t.kind == KindAdd:
			for _, a := range t.args {
				if a.kind == KindIntConst {
					cst += a.ival
				} else {
					flat = append(flat, a)
				}
			}
		default:
			flat = append(flat, t)
		}
	}
	if cst != 0 || len(flat) == 0 {
		flat = append(flat, b.IntConst(cst))
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return b.mk(KindAdd, Int, flat, 0, "")
}

// Sub returns x - y.
func (b *Builder) Sub(x, y *Term) *Term {
	mustSort(x, Int)
	mustSort(y, Int)
	if x.kind == KindIntConst && y.kind == KindIntConst {
		return b.IntConst(x.ival - y.ival)
	}
	if y.kind == KindIntConst && y.ival == 0 {
		return x
	}
	if x == y {
		return b.IntConst(0)
	}
	return b.mk(KindSub, Int, []*Term{x, y}, 0, "")
}

// Mul returns x * y.
func (b *Builder) Mul(x, y *Term) *Term {
	mustSort(x, Int)
	mustSort(y, Int)
	if x.kind == KindIntConst && y.kind == KindIntConst {
		return b.IntConst(x.ival * y.ival)
	}
	if x.kind == KindIntConst {
		x, y = y, x
	}
	if y.kind == KindIntConst {
		switch y.ival {
		case 0:
			return b.IntConst(0)
		case 1:
			return x
		}
	}
	if x.id > y.id {
		x, y = y, x
	}
	return b.mk(KindMul, Int, []*Term{x, y}, 0, "")
}

// Neg returns -x.
func (b *Builder) Neg(x *Term) *Term {
	mustSort(x, Int)
	if x.kind == KindIntConst {
		return b.IntConst(-x.ival)
	}
	if x.kind == KindNeg {
		return x.args[0]
	}
	return b.mk(KindNeg, Int, []*Term{x}, 0, "")
}

// Ite returns if cond then x else y. x and y must share a sort.
func (b *Builder) Ite(cond, x, y *Term) *Term {
	mustSort(cond, Bool)
	if x.sort != y.sort {
		panic(fmt.Sprintf("term: Ite branch sorts differ: %v vs %v", x.sort, y.sort))
	}
	switch {
	case cond == b.trueT:
		return x
	case cond == b.falseT:
		return y
	case x == y:
		return x
	}
	if x.sort == Bool {
		if x == b.trueT && y == b.falseT {
			return cond
		}
		if x == b.falseT && y == b.trueT {
			return b.Not(cond)
		}
	}
	return b.mk(KindIte, x.sort, []*Term{cond, x, y}, 0, "")
}

// Min returns the smaller of x and y, encoded with Ite.
func (b *Builder) Min(x, y *Term) *Term { return b.Ite(b.Le(x, y), x, y) }

// Max returns the larger of x and y, encoded with Ite.
func (b *Builder) Max(x, y *Term) *Term { return b.Ite(b.Le(x, y), y, x) }

func mustSort(t *Term, s Sort) {
	if t.sort != s {
		panic(fmt.Sprintf("term: expected sort %v, got %v in %s", s, t.sort, t))
	}
}

// dedup removes duplicate operands in place, preserving first occurrence.
func dedup(ts []*Term) []*Term {
	if len(ts) < 2 {
		return ts
	}
	seen := make(map[*Term]struct{}, len(ts))
	out := ts[:0]
	for _, t := range ts {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
