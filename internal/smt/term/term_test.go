package term

import (
	"testing"
	"testing/quick"
)

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	y := b.Var("y", Int)
	if b.Add(x, y) != b.Add(x, y) {
		t.Error("identical Add terms should be pointer-equal")
	}
	if b.And(b.Lt(x, y), b.Lt(x, y)) != b.Lt(x, y) {
		t.Error("And should deduplicate identical conjuncts")
	}
	if b.IntConst(5) != b.IntConst(5) {
		t.Error("identical constants should be pointer-equal")
	}
}

func TestVarRedeclarationPanics(t *testing.T) {
	b := NewBuilder()
	b.Var("x", Int)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on sort-changing redeclaration")
		}
	}()
	b.Var("x", Bool)
}

func TestBooleanSimplification(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", Bool)
	q := b.Var("q", Bool)

	cases := []struct {
		got, want *Term
		name      string
	}{
		{b.Not(b.Not(p)), p, "double negation"},
		{b.And(p, b.True()), p, "and true"},
		{b.And(p, b.False()), b.False(), "and false"},
		{b.Or(p, b.False()), p, "or false"},
		{b.Or(p, b.True()), b.True(), "or true"},
		{b.And(), b.True(), "empty and"},
		{b.Or(), b.False(), "empty or"},
		{b.Implies(b.True(), q), q, "true implies"},
		{b.Implies(p, p), b.True(), "self implication"},
		{b.Xor(p, p), b.False(), "xor self"},
		{b.Xor(p, b.False()), p, "xor false"},
		{b.Iff(p, p), b.True(), "iff self"},
		{b.Eq(p, q), b.Iff(p, q), "bool eq is iff"},
		{b.Ite(b.True(), p, q), p, "ite true"},
		{b.Ite(b.False(), p, q), q, "ite false"},
		{b.Ite(p, b.True(), b.False()), p, "ite as identity"},
		{b.Ite(p, b.False(), b.True()), b.Not(p), "ite as negation"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

func TestArithmeticFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)

	if got := b.Add(b.IntConst(2), b.IntConst(3)); got != b.IntConst(5) {
		t.Errorf("2+3 folded to %s", got)
	}
	if got := b.Add(x, b.IntConst(0)); got != x {
		t.Errorf("x+0 folded to %s", got)
	}
	if got := b.Mul(x, b.IntConst(1)); got != x {
		t.Errorf("x*1 folded to %s", got)
	}
	if got := b.Mul(x, b.IntConst(0)); got != b.IntConst(0) {
		t.Errorf("x*0 folded to %s", got)
	}
	if got := b.Sub(x, x); got != b.IntConst(0) {
		t.Errorf("x-x folded to %s", got)
	}
	if got := b.Neg(b.Neg(x)); got != x {
		t.Errorf("--x folded to %s", got)
	}
	if got := b.Sub(b.IntConst(7), b.IntConst(9)); got != b.IntConst(-2) {
		t.Errorf("7-9 folded to %s", got)
	}
	// Nested adds flatten and fold constants.
	sum := b.Add(b.Add(x, b.IntConst(1)), b.IntConst(2))
	want := b.Add(x, b.IntConst(3))
	if sum != want {
		t.Errorf("nested add: got %s, want %s", sum, want)
	}
}

func TestComparisonFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	if b.Lt(b.IntConst(1), b.IntConst(2)) != b.True() {
		t.Error("1<2 should fold to true")
	}
	if b.Le(b.IntConst(3), b.IntConst(2)) != b.False() {
		t.Error("3<=2 should fold to false")
	}
	if b.Le(x, x) != b.True() {
		t.Error("x<=x should fold to true")
	}
	if b.Lt(x, x) != b.False() {
		t.Error("x<x should fold to false")
	}
	if b.Gt(x, b.IntConst(0)) != b.Lt(b.IntConst(0), x) {
		t.Error("Gt should normalize to Lt")
	}
	if b.Eq(b.IntConst(4), b.IntConst(4)) != b.True() {
		t.Error("4==4 should fold to true")
	}
}

func TestEval(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	y := b.Var("y", Int)
	p := b.Var("p", Bool)

	a := Assignment{x: IntValue(5), y: IntValue(-3), p: BoolValue(true)}

	e := b.Ite(p, b.Add(x, y), b.Mul(x, y))
	if got := Eval(e, a, 0); got.Int != 2 {
		t.Errorf("ite eval: got %d, want 2", got.Int)
	}
	a[p] = BoolValue(false)
	if got := Eval(e, a, 0); got.Int != -15 {
		t.Errorf("ite eval: got %d, want -15", got.Int)
	}

	c := b.And(b.Le(y, x), b.Not(b.Eq(x, y)))
	if got := Eval(c, a, 0); !got.Bool {
		t.Error("-3 <= 5 && 5 != -3 should be true")
	}
}

func TestEvalWrapSemantics(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	a := Assignment{x: IntValue(2047)} // max for width 12
	inc := b.Add(x, b.IntConst(1))
	if got := Eval(inc, a, 12); got.Int != -2048 {
		t.Errorf("2047+1 at width 12: got %d, want -2048 (wrap)", got.Int)
	}
	if got := Eval(inc, a, 0); got.Int != 2048 {
		t.Errorf("2047+1 unbounded: got %d, want 2048", got.Int)
	}
}

func TestEvalUnassignedDefaults(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	p := b.Var("p", Bool)
	if got := Eval(b.Add(x, b.IntConst(3)), Assignment{}, 0); got.Int != 3 {
		t.Errorf("unassigned int should read 0; got %d", got.Int)
	}
	if got := Eval(p, Assignment{}, 0); got.Bool {
		t.Error("unassigned bool should read false")
	}
}

func TestMinMax(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	y := b.Var("y", Int)
	a := Assignment{x: IntValue(4), y: IntValue(9)}
	if got := Eval(b.Min(x, y), a, 0); got.Int != 4 {
		t.Errorf("min: got %d", got.Int)
	}
	if got := Eval(b.Max(x, y), a, 0); got.Int != 9 {
		t.Errorf("max: got %d", got.Int)
	}
}

func TestVarsOrderedByCreation(t *testing.T) {
	b := NewBuilder()
	names := []string{"c", "a", "b"}
	for _, n := range names {
		b.Var(n, Int)
	}
	vars := b.Vars()
	if len(vars) != 3 {
		t.Fatalf("got %d vars", len(vars))
	}
	for i, n := range names {
		if vars[i].Name() != n {
			t.Errorf("vars[%d] = %s, want %s", i, vars[i].Name(), n)
		}
	}
}

// Property: builder folding never changes the evaluated meaning of an
// expression built two ways.
func TestQuickAddCommutes(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	y := b.Var("y", Int)
	f := func(xv, yv int32) bool {
		a := Assignment{x: IntValue(int64(xv)), y: IntValue(int64(yv))}
		l := Eval(b.Add(x, y), a, 0)
		r := Eval(b.Add(y, x), a, 0)
		return l.Int == r.Int
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", Bool)
	q := b.Var("q", Bool)
	f := func(pv, qv bool) bool {
		a := Assignment{p: BoolValue(pv), q: BoolValue(qv)}
		l := Eval(b.Not(b.And(p, q)), a, 0)
		r := Eval(b.Or(b.Not(p), b.Not(q)), a, 0)
		return l.Bool == r.Bool
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	s := b.Le(b.Add(x, b.IntConst(1)), b.IntConst(10)).String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	if want := "(<= (+ x 1) 10)"; s != want {
		t.Errorf("got %q, want %q", s, want)
	}
}

// More algebraic laws checked by evaluation over random inputs.
func TestQuickAlgebraicLaws(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	y := b.Var("y", Int)
	z := b.Var("z", Int)
	p := b.Var("p", Bool)

	asg := func(xv, yv, zv int32, pv bool) Assignment {
		return Assignment{
			x: IntValue(int64(xv)), y: IntValue(int64(yv)),
			z: IntValue(int64(zv)), p: BoolValue(pv),
		}
	}
	laws := []struct {
		name string
		l, r *Term
	}{
		{"add assoc", b.Add(b.Add(x, y), z), b.Add(x, b.Add(y, z))},
		{"mul comm", b.Mul(x, y), b.Mul(y, x)},
		{"sub as add-neg", b.Sub(x, y), b.Add(x, b.Neg(y))},
		{"min/max sum", b.Add(b.Min(x, y), b.Max(x, y)), b.Add(x, y)},
		{"ite push", b.Add(b.Ite(p, x, y), z), b.Ite(p, b.Add(x, z), b.Add(y, z))},
	}
	for _, law := range laws {
		law := law
		f := func(xv, yv, zv int32, pv bool) bool {
			a := asg(xv%1000, yv%1000, zv%1000, pv)
			return Eval(law.l, a, 0).Int == Eval(law.r, a, 0).Int
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", law.name, err)
		}
	}

	boolLaws := []struct {
		name string
		l, r *Term
	}{
		{"implies as or", b.Implies(p, b.Lt(x, y)), b.Or(b.Not(p), b.Lt(x, y))},
		{"iff as two implies", b.Iff(p, b.Lt(x, y)),
			b.And(b.Implies(p, b.Lt(x, y)), b.Implies(b.Lt(x, y), p))},
		{"le antisym", b.And(b.Le(x, y), b.Le(y, x)), b.Eq(x, y)},
	}
	for _, law := range boolLaws {
		law := law
		f := func(xv, yv, zv int32, pv bool) bool {
			a := asg(xv%50, yv%50, zv%50, pv)
			return Eval(law.l, a, 0).Bool == Eval(law.r, a, 0).Bool
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", law.name, err)
		}
	}
}

// Wrap semantics are a ring homomorphism: evaluating wrapped matches
// wrapping the unbounded result, for +, -, *.
func TestQuickWrapHomomorphism(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", Int)
	y := b.Var("y", Int)
	const w = 8
	wrapRef := func(v int64) int64 {
		v &= 0xff
		if v >= 128 {
			v -= 256
		}
		return v
	}
	ops := map[string]*Term{
		"add": b.Add(x, y), "sub": b.Sub(x, y), "mul": b.Mul(x, y),
	}
	refs := map[string]func(a, c int64) int64{
		"add": func(a, c int64) int64 { return a + c },
		"sub": func(a, c int64) int64 { return a - c },
		"mul": func(a, c int64) int64 { return a * c },
	}
	for name, e := range ops {
		name, e := name, e
		f := func(xv, yv int16) bool {
			a := Assignment{x: IntValue(wrapRef(int64(xv))), y: IntValue(wrapRef(int64(yv)))}
			got := Eval(e, a, w).Int
			want := wrapRef(refs[name](a[x].Int, a[y].Int))
			return got == want
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
