// Package smtlib renders term-level assertion sets in the SMT-LIB v2
// standard format (§4 of the paper: "The SMT problem can be written in the
// standard SMT-LIB format supported by different SMT solvers"). The output
// uses the Int sort (QF_LIA-style), which external solvers such as Z3 or
// cvc5 accept directly; this repository's own solver consumes the term DAG
// without going through text.
package smtlib

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"buffy/internal/smt/term"
)

// Print writes a complete SMT-LIB v2 script: logic declaration, one
// declare-const per variable occurring in the assertions, one assert per
// term, and a final (check-sat)(get-model).
func Print(w io.Writer, assertions []*term.Term) error {
	vars := collectVars(assertions)
	if _, err := fmt.Fprintln(w, "(set-logic QF_LIA)"); err != nil {
		return err
	}
	for _, v := range vars {
		sortName := "Int"
		if v.Sort() == term.Bool {
			sortName = "Bool"
		}
		if _, err := fmt.Fprintf(w, "(declare-const %s %s)\n", Symbol(v.Name()), sortName); err != nil {
			return err
		}
	}
	for _, a := range assertions {
		if _, err := fmt.Fprintf(w, "(assert %s)\n", TermString(a)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "(check-sat)"); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "(get-model)")
	return err
}

// Script returns the SMT-LIB script as a string.
func Script(assertions []*term.Term) string {
	var b strings.Builder
	_ = Print(&b, assertions)
	return b.String()
}

// Symbol sanitizes a Buffy variable name into a legal SMT-LIB simple symbol,
// quoting with |...| when the name contains characters outside the simple
// symbol alphabet (Buffy names contain '[', ']' and '.' from SSA and buffer
// slot naming).
func Symbol(name string) string {
	simple := true
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case strings.ContainsRune("~!@$%^&*_-+=<>.?/", r):
		default:
			simple = false
		}
	}
	if simple && len(name) > 0 && !(name[0] >= '0' && name[0] <= '9') {
		return name
	}
	return "|" + strings.ReplaceAll(name, "|", "_") + "|"
}

// TermString renders a single term as an SMT-LIB s-expression.
func TermString(t *term.Term) string {
	var b strings.Builder
	writeTerm(&b, t)
	return b.String()
}

func writeTerm(b *strings.Builder, t *term.Term) {
	switch t.Kind() {
	case term.KindIntConst:
		v := t.IntVal()
		if v < 0 {
			fmt.Fprintf(b, "(- %d)", -v)
		} else {
			fmt.Fprintf(b, "%d", v)
		}
	case term.KindBoolConst:
		if t.BoolVal() {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case term.KindVar:
		b.WriteString(Symbol(t.Name()))
	default:
		b.WriteByte('(')
		b.WriteString(opName(t.Kind()))
		for _, a := range t.Args() {
			b.WriteByte(' ')
			writeTerm(b, a)
		}
		b.WriteByte(')')
	}
}

func opName(k term.Kind) string {
	switch k {
	case term.KindNot:
		return "not"
	case term.KindAnd:
		return "and"
	case term.KindOr:
		return "or"
	case term.KindXor:
		return "xor"
	case term.KindImplies:
		return "=>"
	case term.KindIff, term.KindEq:
		return "="
	case term.KindLt:
		return "<"
	case term.KindLe:
		return "<="
	case term.KindAdd:
		return "+"
	case term.KindSub:
		return "-"
	case term.KindMul:
		return "*"
	case term.KindNeg:
		return "-"
	case term.KindIte:
		return "ite"
	}
	return fmt.Sprintf("?op%d", k)
}

func collectVars(assertions []*term.Term) []*term.Term {
	seen := make(map[*term.Term]bool)
	var vars []*term.Term
	var walk func(t *term.Term)
	walk = func(t *term.Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		if t.Kind() == term.KindVar {
			vars = append(vars, t)
			return
		}
		for _, a := range t.Args() {
			walk(a)
		}
	}
	for _, a := range assertions {
		walk(a)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].ID() < vars[j].ID() })
	return vars
}
