package smtlib

import (
	"strings"
	"testing"

	"buffy/internal/smt/term"
)

func TestScriptStructure(t *testing.T) {
	b := term.NewBuilder()
	x := b.Var("x", term.Int)
	p := b.Var("p", term.Bool)
	asserts := []*term.Term{
		b.Le(b.IntConst(0), x),
		b.Implies(p, b.Eq(x, b.IntConst(5))),
	}
	out := Script(asserts)
	for _, w := range []string{
		"(set-logic QF_LIA)",
		"(declare-const x Int)",
		"(declare-const p Bool)",
		"(assert (<= 0 x))",
		"(assert (=> p (= x 5)))",
		"(check-sat)",
		"(get-model)",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in:\n%s", w, out)
		}
	}
}

func TestNegativeConstants(t *testing.T) {
	b := term.NewBuilder()
	x := b.Var("x", term.Int)
	out := TermString(b.Eq(x, b.IntConst(-7)))
	if !strings.Contains(out, "(- 7)") {
		t.Errorf("negative literal not SMT-LIB-safe: %s", out)
	}
}

func TestSymbolQuoting(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		"with.dots":    "with.dots",
		"a[0]":         "|a[0]|",
		"fq!in!t0":     "fq!in!t0",
		"has space":    "|has space|",
		"0startsDigit": "|0startsDigit|",
		"pipe|bar":     "|pipe_bar|",
	}
	for in, want := range cases {
		if got := Symbol(in); got != want {
			t.Errorf("Symbol(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOperatorRendering(t *testing.T) {
	b := term.NewBuilder()
	x := b.Var("x", term.Int)
	y := b.Var("y", term.Int)
	p := b.Var("p", term.Bool)
	q := b.Var("q", term.Bool)
	cases := []struct {
		t    *term.Term
		want string
	}{
		{b.Add(x, y), "(+"},
		{b.Sub(x, y), "(- "},
		{b.Mul(x, y), "(* "},
		{b.Neg(x), "(- "},
		{b.Lt(x, y), "(< "},
		{b.Le(x, y), "(<= "},
		{b.And(p, q), "(and "},
		{b.Or(p, q), "(or "},
		{b.Not(p), "(not "},
		{b.Xor(p, q), "(xor "},
		{b.Iff(p, q), "(= "},
		{b.Ite(p, x, y), "(ite "},
	}
	for _, c := range cases {
		if got := TermString(c.t); !strings.Contains(got, c.want) {
			t.Errorf("TermString(%s) = %q, want op %q", c.t, got, c.want)
		}
	}
}

func TestVarsDeclaredOnceInCreationOrder(t *testing.T) {
	b := term.NewBuilder()
	x := b.Var("x", term.Int)
	y := b.Var("y", term.Int)
	out := Script([]*term.Term{b.Lt(x, y), b.Lt(y, x)})
	ix := strings.Index(out, "declare-const x")
	iy := strings.Index(out, "declare-const y")
	if ix < 0 || iy < 0 || ix > iy {
		t.Errorf("declarations missing or misordered:\n%s", out)
	}
	if strings.Count(out, "declare-const x") != 1 {
		t.Error("x declared more than once")
	}
}

func TestBoolConstants(t *testing.T) {
	b := term.NewBuilder()
	p := b.Var("p", term.Bool)
	out := TermString(b.Ite(p, b.True(), b.False()))
	// The builder folds ite(p, true, false) to p.
	if out != "p" {
		t.Errorf("got %q", out)
	}
	if TermString(b.True()) != "true" || TermString(b.False()) != "false" {
		t.Error("boolean constant rendering")
	}
}
